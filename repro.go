// Package repro is a complete distributed garbage collector (DGC) for
// activities, reproducing Caromel, Chazarain & Henrio, "Garbage Collecting
// the Grid: A Complete DGC for Activities" (Middleware 2007).
//
// The package offers the middleware the paper builds on — an active-object
// runtime with asynchronous calls and futures — with the paper's DGC wired
// in: acyclic garbage is reclaimed by heartbeat reference listing
// (TTB/TTA), and cyclic garbage by a consensus on a named Lamport
// "activity clock" over a reverse spanning tree, needing no connectivity
// beyond what the application already has.
//
// Quickstart (the typed v2 API):
//
//	type GreetReq struct{ Name string }
//	type GreetResp struct{ Text string }
//
//	env := repro.NewEnv(repro.Config{})
//	defer env.Close()
//	node := env.NewNode()
//	h := node.NewActive("greeter", repro.NewService(
//		repro.Method("greet", func(ctx *repro.Context, req GreetReq) (GreetResp, error) {
//			return GreetResp{Text: "hello, " + req.Name}, nil
//		})))
//	stub := repro.NewStub[GreetReq, GreetResp](h, "greet")
//	resp, _ := stub.CallSync(GreetReq{Name: "grid"}, time.Second)
//	h.Release() // the activity is garbage now; the DGC reclaims it
//
// Stub.Call returns a TypedFuture resolving to the response struct;
// NewGroup fans one method out over many activities (Broadcast/Scatter)
// and collects the replies in a FutureGroup. Marshal/Unmarshal map Go
// structs onto the closed wire value model, so remote references (Value
// refs or ActivityID fields) always stay visible to the collector —
// the typed façade cannot hide an edge from the DGC.
//
// Futures are first-class (paper §5–§6): a *Future or *TypedFuture can
// travel inside call arguments and results before it resolves — receive
// it as a FutureRef (or Value) field and lift it with Context.Future /
// FutureFor — and wait-by-necessity happens only at the activity that
// finally touches the value; the runtime propagates resolutions (and
// remote failures) to every forwarding hop and flattens future-of-future
// chains. The serve loop is policy-driven: FIFO (default), LIFO,
// PriorityByMethod and ServeOldest select which pending request an
// activity serves next (Config.ServicePolicy, WithPolicy), and
// Context.ServeNext serves selectively mid-service.
//
// The dynamic substrate remains available: a Behavior serves raw
// (method string, args Value) pairs, Handle.Call/CallSync speak it, and
// a *Service is itself a Behavior, so both surfaces interoperate on the
// same activity.
//
// Activities form reference graphs through the values they exchange:
// storing a reference (Context.Store) creates an edge, dropping it
// (Context.Delete, or simply not storing it) lets the local collector
// reclaim the stub and the DGC remove the edge. Cycles — including
// distributed ones — are collected once every activity in the cycle's
// referencer closure is idle, which is the paper's Garbage property.
//
// The network substrate is pluggable: Config.Transport selects the
// backend behind the runtime — nil means the in-memory simulated network
// (internal/simnet), and NewTCPTransport gives real TCP connections
// (internal/tcpnet) with identical FIFO, exchange and accounting
// semantics, so the same program runs single-process, multi-process or
// multi-machine (see examples/tcpdemo and Config.FirstNode).
//
// Config.Cluster makes the deployment elastic: processes join through a
// seed at runtime (Env.Join) and lease disjoint node-ID blocks, failure
// detection piggybacks on the DGC's own heartbeat traffic (no dedicated
// liveness messages on the healthy path), and a confirmed crash fails
// the dead node's owed futures with ErrNodeDead, purges its routing
// state and lets the DGC reclaim the subgraphs it orphaned. Node.Leave
// departs gracefully, draining every hosted activity to a surviving
// node via live migration first. Env.ClusterMembers and Env.NodeHealth
// expose the membership view.
//
// The deeper machinery lives in internal packages: internal/core is the
// collector state machine (Algorithms 1–4), internal/active the live
// goroutine runtime, internal/transport the substrate contract,
// internal/sim a deterministic discrete-event harness at paper scale,
// internal/nas and internal/torture the evaluation workloads. See
// ARCHITECTURE.md for the package map and message flow, DESIGN.md for
// the design record, WIRE.md for the wire formats, and EXPERIMENTS.md
// for the paper-vs-measured record.
package repro

import (
	"time"

	"repro/internal/active"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/store"
	"repro/internal/tcpnet"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Re-exported core types. See the internal packages for full
// documentation.
type (
	// Config parameterizes an environment (TTB, TTA, clock, topology —
	// and the hot-path batching knobs Config.BatchWindow/Config.BatchBytes:
	// a positive BatchWindow routes each node's outbound traffic through a
	// per-destination flusher that packs co-destination messages into one
	// frame, see WIRE.md §5).
	Config = active.Config
	// Env is one distributed system: nodes, network, registry, DGC.
	Env = active.Env
	// Node is one process hosting activities.
	Node = active.Node
	// Handle lets non-active code reference and call an activity; it acts
	// as a DGC root until released.
	Handle = active.Handle
	// Future is the placeholder for an asynchronous call's result.
	Future = active.Future
	// Context is the API available to a Behavior during a service.
	Context = active.Context
	// Behavior is the application code of an activity.
	Behavior = active.Behavior
	// BehaviorFunc adapts a function to Behavior.
	BehaviorFunc = active.BehaviorFunc
	// Value is the closed value model exchanged between activities.
	Value = wire.Value
	// ActivityID identifies an activity.
	ActivityID = ids.ActivityID
	// NodeID identifies a node.
	NodeID = ids.NodeID
	// Stats summarizes collections.
	Stats = active.Stats
	// Event is a DGC trace event.
	Event = core.Event
	// Reason explains a termination.
	Reason = core.Reason
	// Topology models a multi-site grid deployment.
	Topology = grid.Topology
	// Transport is the pluggable network substrate contract: per-pair
	// FIFO delivery, caller-opened request/response exchanges, per-class
	// traffic accounting. Config.Transport selects the backend; nil means
	// the in-memory simulated network, NewTCPTransport gives real TCP.
	Transport = transport.Transport
	// Class partitions accounted traffic (application, DGC, futures).
	Class = transport.Class
	// Counters is a per-class traffic snapshot (Env.Network().Snapshot()).
	Counters = transport.Counters
	// TCPConfig parameterizes the TCP transport backend.
	TCPConfig = tcpnet.Config
	// TCPTransport is the TCP Transport implementation: one process's
	// listener plus its persistent per-pair connections. Its Addr and
	// AddPeer methods wire multi-process deployments together.
	TCPTransport = tcpnet.Network
	// Service is a typed method registry implementing Behavior.
	Service = active.Service
	// ServiceMethod is one declared, typed operation of a Service.
	ServiceMethod = active.ServiceMethod
	// CallOption is a per-call option of the typed API (WithTimeout,
	// WithNoReply).
	CallOption = active.CallOption
	// FutureID identifies a future on its home node; futures are
	// first-class wire citizens (paper §5–§6), so the identity is global.
	FutureID = ids.FutureID
	// FutureRef is the wire identity a first-class future travels under
	// when passed in call arguments, results or group scatters. Receive
	// one in a request struct field and lift it with Context.Future (or
	// FutureFor for the typed form) to wait-by-necessity at the activity
	// that finally touches the value.
	FutureRef = wire.FutureRef
	// ServicePolicy selects which pending request an activity serves next
	// (FIFO, LIFO, PriorityByMethod, ServeOldest, or your own).
	ServicePolicy = active.ServicePolicy
	// RequestInfo describes one pending request to a ServicePolicy.
	RequestInfo = active.RequestInfo
	// SpawnOption configures an activity at creation (WithPolicy).
	SpawnOption = active.SpawnOption
	// ClusterConfig enables the elastic cluster runtime of an environment
	// (Config.Cluster): membership with seed bootstrap and join/leave,
	// failure detection piggybacked on DGC heartbeat traffic, and crash
	// cleanup (ErrNodeDead fan-out to pending futures, fast-fail routing).
	ClusterConfig = active.ClusterConfig
	// Member is one entry of the cluster membership view
	// (Env.ClusterMembers): node, hosting process address, health state.
	Member = active.Member
	// NodeState is a member's health as seen from this process: alive,
	// suspect, dead (tombstone) or left (graceful tombstone).
	NodeState = cluster.State
	// Store is the pluggable checkpoint store contract (Config.Store):
	// a durable map from activity identity to its latest checkpoint
	// payload. NewFileStore gives the crash-tolerant file backend,
	// NewMemStore the in-memory one for tests.
	Store = store.Store
	// FileStore is the file-backed Store: per-node append-only logs with
	// CRC-protected record framing (WIRE.md §11), atomic segment rotation
	// and background compaction. Replay after a crash keeps the longest
	// valid prefix of each log.
	FileStore = store.FileStore
	// MemStore is the in-memory Store used by tests and the restart
	// chaos arm of the load generator.
	MemStore = store.MemStore
)

// Generic aliases of the typed calling surface.
type (
	// Stub is a typed, single-method view of a Handle.
	Stub[Req, Resp any] = active.Stub[Req, Resp]
	// TypedFuture resolves to an unmarshaled Resp.
	TypedFuture[Resp any] = active.TypedFuture[Resp]
	// Group is a typed one-to-many handle (Broadcast/Scatter).
	Group[Req, Resp any] = active.Group[Req, Resp]
	// FutureGroup collects the futures of one group fan-out.
	FutureGroup[Resp any] = active.FutureGroup[Resp]
)

// Sentinel errors of the calling API (check with errors.Is).
var (
	// ErrHandleReleased reports a call through a released handle.
	ErrHandleReleased = active.ErrHandleReleased
	// ErrUnknownMethod reports a method a Service does not declare.
	ErrUnknownMethod = active.ErrUnknownMethod
	// ErrGroupArity reports a Scatter arity mismatch.
	ErrGroupArity = active.ErrGroupArity
	// ErrEmptyGroup reports a group operation on zero members.
	ErrEmptyGroup = active.ErrEmptyGroup
	// ErrFutureTimeout reports that a Wait gave up.
	ErrFutureTimeout = active.ErrFutureTimeout
	// ErrRemoteFailure wraps an error returned by a callee's behavior.
	ErrRemoteFailure = active.ErrRemoteFailure
	// ErrFutureUnavailable reports a first-class future whose value can no
	// longer be obtained (its home entry was reclaimed).
	ErrFutureUnavailable = active.ErrFutureUnavailable
	// ErrNotAFuture reports a value that should have been a future.
	ErrNotAFuture = active.ErrNotAFuture
	// ErrNotMigratable reports a migration attempt on an activity that was
	// not created from a registered behavior kind.
	ErrNotMigratable = active.ErrNotMigratable
	// ErrUnknownBehaviorKind reports a migration toward a process that
	// never registered the activity's behavior kind.
	ErrUnknownBehaviorKind = active.ErrUnknownBehaviorKind
	// ErrMigrationFailed wraps a destination-side migration failure; the
	// activity keeps serving at its old home.
	ErrMigrationFailed = active.ErrMigrationFailed
	// ErrNodeDead reports an operation against a node the cluster declared
	// failed: new sends toward it fail fast and the futures it owed
	// results resolve to this error instead of hanging.
	ErrNodeDead = active.ErrNodeDead
	// ErrRecovered resolves the futures of requests that were pending
	// inside a checkpoint when the activity was recovered: the runtime
	// never replays checkpointed requests (at-most-once, DESIGN.md §9),
	// it fails them so callers can retry idempotently.
	ErrRecovered = active.ErrRecovered
	// ErrNoStore reports a checkpoint or recovery attempt on an
	// environment whose Config.Store is nil.
	ErrNoStore = active.ErrNoStore
	// ErrNotDurable reports a checkpoint attempt on an activity without a
	// registered behavior kind; like migration, durability rides on the
	// kind registry to re-instantiate behaviors after a crash.
	ErrNotDurable = active.ErrNotDurable
)

// Method declares a typed service operation; see active.Method.
func Method[Req, Resp any](name string, fn func(ctx *Context, req Req) (Resp, error)) ServiceMethod {
	return active.Method(name, fn)
}

// NewService builds a Service from typed method descriptors.
func NewService(methods ...ServiceMethod) *Service {
	return active.NewService(methods...)
}

// NewStub types the given handle's method.
func NewStub[Req, Resp any](h *Handle, method string) Stub[Req, Resp] {
	return active.NewStub[Req, Resp](h, method)
}

// NewGroup types the given handles' method into a one-to-many group.
func NewGroup[Req, Resp any](method string, members ...*Handle) *Group[Req, Resp] {
	return active.NewGroup[Req, Resp](method, members...)
}

// CallTyped performs a typed asynchronous call from inside a behavior.
func CallTyped[Resp any](ctx *Context, target Value, method string, req any, opts ...CallOption) (*TypedFuture[Resp], error) {
	return active.CallTyped[Resp](ctx, target, method, req, opts...)
}

// SendTyped performs a typed one-way call from inside a behavior.
func SendTyped(ctx *Context, target Value, method string, req any) error {
	return active.SendTyped(ctx, target, method, req)
}

// WithTimeout sets a per-call default wait budget.
func WithTimeout(d time.Duration) CallOption { return active.WithTimeout(d) }

// WithNoReply turns a call into a fire-and-forget send.
func WithNoReply() CallOption { return active.WithNoReply() }

// FutureFor lifts a first-class future value into a typed future on the
// context's node: wait-by-necessity at the activity that finally touches
// the value.
func FutureFor[Resp any](ctx *Context, v Value) (*TypedFuture[Resp], error) {
	return active.FutureFor[Resp](ctx, v)
}

// Typed wraps an untyped Future (e.g. from Handle.Future) in a typed view.
func Typed[Resp any](fut *Future) *TypedFuture[Resp] { return active.Typed[Resp](fut) }

// Service policies: the request-selection disciplines of the serve loop
// (paper §5–§6 serve primitives). Configure per environment via
// Config.ServicePolicy, per activity via WithPolicy, or serve selectively
// mid-service with Context.ServeNext.

// FIFO returns the default arrival-order policy.
func FIFO() ServicePolicy { return active.FIFO() }

// LIFO returns the newest-first policy.
func LIFO() ServicePolicy { return active.LIFO() }

// PriorityByMethod returns a policy serving the highest-priority method
// first (FIFO within equal priorities; unlisted methods have priority 0).
func PriorityByMethod(prio map[string]int) ServicePolicy { return active.PriorityByMethod(prio) }

// ServeOldest returns the paper's serveOldest primitive: the oldest
// pending request among the given methods; everything else is held.
func ServeOldest(methods ...string) ServicePolicy { return active.ServeOldest(methods...) }

// WithPolicy sets one activity's standing service policy at creation.
func WithPolicy(p ServicePolicy) SpawnOption { return active.WithPolicy(p) }

// Live activity migration (WIRE.md §7). An activity created from a
// registered behavior kind can move between nodes — same process or
// another one over TCP — with Handle.Migrate / Context.MigrateTo. Its
// state (Context.Store entries), pending request queue and first-class
// futures follow it; a forwarder under the old identity relays requests,
// answers DGC heartbeats and pushes redirects until every holder has
// rebound to the new reference, then reclaims itself through the
// ordinary TTA sweep. See examples/migration for the end-to-end shape.

// RegisterBehavior registers a migratable behavior kind: the factory (and
// spawn options, e.g. WithPolicy) every instance is created with — at
// Node.SpawnKind and again at every migration destination. The registry
// is process-global, so processes sharing a TCP deployment register the
// same kinds and activities migrate freely between them.
func RegisterBehavior(kind string, factory func() Behavior, opts ...SpawnOption) {
	active.RegisterBehavior(kind, factory, opts...)
}

// WithKind tags an activity with a registered behavior kind at creation,
// making it migratable (Node.SpawnKind applies it automatically).
func WithKind(kind string) SpawnOption { return active.WithKind(kind) }

// Durable activities (WIRE.md §11, DESIGN.md §9). An activity created
// from a registered behavior kind can be checkpointed to a Store
// (Config.Store): its state, registered names and pending request queue
// are captured between services and persisted under its identity.
// Checkpoints are taken explicitly (Handle.Checkpoint, Context.Checkpoint)
// or on a cadence (Config.CheckpointEvery). After a crash, Env.Recover
// re-instantiates every checkpointed activity under its old identity,
// re-registers its names, and fails the checkpointed in-flight requests
// with ErrRecovered — requests are never replayed (at-most-once). With
// Config.Cluster.Failover enabled, the lowest-ID surviving member adopts a
// dead node's checkpoints under new identities and gossips the rebinds,
// so names and old references keep resolving. See examples/durability.

// NewFileStore opens the file-backed checkpoint store rooted at dir:
// per-node append-only logs with CRC-protected records, atomic segment
// rotation and compaction. Replaying an existing dir restores the longest
// valid prefix of each log, so a torn final write costs at most the last
// checkpoint, never the log.
func NewFileStore(dir string) (*FileStore, error) { return store.NewFileStore(dir) }

// NewMemStore returns an in-memory checkpoint store for tests and
// single-process experiments.
func NewMemStore() *MemStore { return store.NewMemStore() }

// Marshal maps a Go value onto the closed wire value model.
func Marshal(v any) (Value, error) { return wire.Marshal(v) }

// Unmarshal maps a wire value back onto a Go value.
func Unmarshal(v Value, out any) error { return wire.Unmarshal(v, out) }

// Termination reasons (see internal/core).
const (
	// ReasonAcyclic is a TTA-expiry (reference-listing) termination.
	ReasonAcyclic = core.ReasonAcyclic
	// ReasonCyclic is a cyclic-consensus termination.
	ReasonCyclic = core.ReasonCyclic
	// ReasonNotified is a dying-wave (§4.3) termination.
	ReasonNotified = core.ReasonNotified
)

// Traffic classes of the accounting counters (see internal/transport).
const (
	// ClassApp is application traffic: requests and their payloads.
	ClassApp = transport.ClassApp
	// ClassDGC is DGC messages and DGC responses.
	ClassDGC = transport.ClassDGC
	// ClassFuture is future-update traffic (results flowing back).
	ClassFuture = transport.ClassFuture
	// ClassCluster is membership and failure-detection traffic (join and
	// lease exchanges, gossip, suspect-path probes).
	ClassCluster = transport.ClassCluster
)

// Member health states of the cluster failure detector (Env.NodeHealth,
// Member.State).
const (
	// NodeUnknown: the node is not tracked by this process.
	NodeUnknown = cluster.StateUnknown
	// NodeAlive: recent contact observed.
	NodeAlive = cluster.StateAlive
	// NodeSuspect: silent or failing beyond SuspectAfter; being probed.
	NodeSuspect = cluster.StateSuspect
	// NodeDead: declared failed (final; identifiers are never reused).
	NodeDead = cluster.StateDead
	// NodeLeft: departed gracefully via Node.Leave (final).
	NodeLeft = cluster.StateLeft
)

// NewTCPTransport creates the real-network substrate: a TCP listener for
// this process's nodes plus persistent, FIFO, per-(source, destination)
// connections to every peer. Put the result in Config.Transport and the
// runtime — calls, futures, the complete DGC — runs unchanged across
// processes and machines:
//
//	tr, err := repro.NewTCPTransport(repro.TCPConfig{Listen: ":7000"})
//	env := repro.NewEnv(repro.Config{Transport: tr, FirstNode: 100})
//
// Processes sharing a deployment give each other disjoint Config.FirstNode
// ranges and exchange listener addresses via TCPConfig.Peers or AddPeer.
// The environment owns the transport and closes it in Env.Close.
func NewTCPTransport(cfg TCPConfig) (*TCPTransport, error) {
	return tcpnet.New(cfg)
}

// NewEnv creates an environment. The zero Config gives a single-site,
// zero-latency system with TTB = 30ms and a conforming TTA (the paper's
// parameters compressed ×1000).
func NewEnv(cfg Config) *Env {
	return active.NewEnv(cfg)
}

// Grid5000 returns the paper's §5.1 testbed topology (128 nodes on three
// sites with the measured RTTs); use Topology.Latency and
// Topology.MaxComm in Config to deploy on it, and Topology.Scaled for
// laptop-scale variants.
func Grid5000() *Topology {
	return grid.Grid5000()
}

// ScaledClock returns a clock running factor× faster than wall time, for
// running paper-scale TTB/TTA values (30 s/61 s) in compressed time.
func ScaledClock(factor int64) vclock.Clock {
	return vclock.NewScaled(factor)
}

// Value constructors, re-exported from the wire model.

// Null returns the null value.
func Null() Value { return wire.Null() }

// Bool returns a boolean value.
func Bool(v bool) Value { return wire.Bool(v) }

// Int returns an integer value.
func Int(v int64) Value { return wire.Int(v) }

// Float returns a floating-point value.
func Float(v float64) Value { return wire.Float(v) }

// String returns a string value.
func String(v string) Value { return wire.String(v) }

// Bytes returns a byte-blob value.
func Bytes(v []byte) Value { return wire.Bytes(v) }

// Floats packs a []float64 into a blob value.
func Floats(v []float64) Value { return wire.Floats(v) }

// List returns a list value.
func List(elems ...Value) Value { return wire.List(elems...) }

// Dict returns a dictionary value.
func Dict(m map[string]Value) Value { return wire.Dict(m) }

// Ref returns a reference value designating an activity.
func Ref(target ActivityID) Value { return wire.Ref(target) }

// FutureVal returns a first-class future value from its wire identity
// (the dynamic-API counterpart of marshaling a *Future or *TypedFuture).
func FutureVal(fr FutureRef) Value { return wire.FutureVal(fr) }

// Compressed defaults used when Config leaves the periods zero.
const (
	// DefaultTTB is the default heartbeat period (the paper's 30s, ×1000).
	DefaultTTB = 30 * time.Millisecond
	// DefaultTTA is the default TimeToAlone conforming to the §3.1 formula.
	DefaultTTA = 75 * time.Millisecond
	// DefaultBatchWindow is a good batching window for throughput-bound
	// deployments (Config.BatchWindow; zero keeps batching off). Only
	// plain one-way sends ever wait this long — requests, replies and
	// group fan-outs flush immediately and batch only with messages
	// already in flight.
	DefaultBatchWindow = 200 * time.Microsecond
	// DefaultBatchBytes is the per-frame payload cap the runtime uses when
	// batching is enabled and Config.BatchBytes is zero.
	DefaultBatchBytes = 64 << 10
)
