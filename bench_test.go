// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus ablations for the design choices called out in
// DESIGN.md. Absolute numbers depend on the simulated substrate; the
// quantities to compare with the paper are the *shapes* recorded in
// EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/internal/cdmdgc"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/lamport"
	"repro/internal/localgc"
	"repro/internal/nas"
	"repro/internal/rmidgc"
	"repro/internal/sim"
	"repro/internal/torture"
	"repro/internal/wire"
)

// benchKernelConfig returns paper-parameter NAS runs compressed so a full
// table regenerates in seconds. The compression factor is bounded by the
// paper's §4.2 hard-real-time caveat: scaling shrinks the *real* TTA
// deadline while queueing and compute delays do not shrink with it, so
// too aggressive a factor makes a loaded benchmark machine miss deadlines
// and wrongly collect busy activities — the exact failure mode the paper
// warns about (and the reason RMI's default lease went from one minute to
// one hour). 250× keeps the real TTA at ~244 ms, a comfortable margin.
func benchKernelConfig(k nas.Kernel, dgc bool) nas.RunConfig {
	cfg := nas.PaperParams(k)
	cfg.ScaleFactor = 250
	cfg.DGC = dgc
	return cfg
}

// BenchmarkFig8BandwidthOverhead regenerates the Fig. 8 rows: total
// traffic without and with the DGC, per kernel. Reported metrics:
// MB_noDGC, MB_DGC, overhead_pct.
func BenchmarkFig8BandwidthOverhead(b *testing.B) {
	for _, k := range []nas.Kernel{nas.KernelCG, nas.KernelEP, nas.KernelFT} {
		k := k
		b.Run(string(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := nas.Run(benchKernelConfig(k, false))
				if err != nil {
					b.Fatal(err)
				}
				with, err := nas.Run(benchKernelConfig(k, true))
				if err != nil {
					b.Fatal(err)
				}
				if !base.Verified || !with.Verified {
					b.Fatal("kernel verification failed")
				}
				noDGC := float64(base.TotalBytes())
				withDGC := float64(with.TotalBytes())
				b.ReportMetric(noDGC/1e6, "MB_noDGC")
				b.ReportMetric(withDGC/1e6, "MB_DGC")
				b.ReportMetric((withDGC-noDGC)/noDGC*100, "overhead_pct")
			}
		})
	}
}

// BenchmarkFig9TimeOverhead regenerates the Fig. 9 rows: benchmark time
// without/with DGC and the time the DGC needs to collect all activities
// after the result. Reported metrics: s_noDGC, s_DGC, dgc_collect_s and
// collect_beats (the paper observes 15–17 beats for 256 activities).
func BenchmarkFig9TimeOverhead(b *testing.B) {
	for _, k := range []nas.Kernel{nas.KernelCG, nas.KernelEP, nas.KernelFT} {
		k := k
		b.Run(string(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := nas.Run(benchKernelConfig(k, false))
				if err != nil {
					b.Fatal(err)
				}
				with, err := nas.Run(benchKernelConfig(k, true))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(base.AppTime.Seconds(), "s_noDGC")
				b.ReportMetric(with.AppTime.Seconds(), "s_DGC")
				b.ReportMetric(with.DGCTime.Seconds(), "dgc_collect_s")
				b.ReportMetric(float64(with.DGCTime)/float64(30*time.Second), "collect_beats")
			}
		})
	}
}

// BenchmarkFig10aTorture regenerates Fig. 10(a): the full-scale 6 401-
// activity torture test with TTB=30s, TTA=150s, on the deterministic DES.
// Metrics: collect_done_s (paper: within the 2 400 s plot) and DGC_MB
// (paper: 1 699 MB over RMI).
func BenchmarkFig10aTorture(b *testing.B) {
	benchTorture(b, 30*time.Second, 150*time.Second)
}

// BenchmarkFig10bTorture regenerates Fig. 10(b): TTB=300s, TTA=1500s —
// the 10× slower beat stretches collection by roughly an order of
// magnitude (paper: ~18 000 s; 2 063 MB).
func BenchmarkFig10bTorture(b *testing.B) {
	benchTorture(b, 300*time.Second, 1500*time.Second)
}

func benchTorture(b *testing.B, ttb, tta time.Duration) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res := torture.Run(torture.PaperParams(ttb, tta))
		if !res.CollectedAll {
			b.Fatalf("torture incomplete: %v", res.Reasons)
		}
		b.ReportMetric(res.LastCollectedAt.Seconds(), "collect_done_s")
		b.ReportMetric(float64(res.Traffic.DGCBytes)/1e6, "DGC_MB")
		b.ReportMetric(float64(res.Traffic.AppBytes)/1e6, "app_MB")
	}
}

// BenchmarkDetectionLatencyVsHeight validates the §4.3 complexity claim:
// the time to detect and collect a garbage cycle grows as O(h·TTB) (+TTA),
// h being the spanning-tree height — rings of increasing size on the
// Grid'5000 latency matrix. Metric: collect_beats.
func BenchmarkDetectionLatencyVsHeight(b *testing.B) {
	topo := grid.Grid5000()
	for _, h := range []int{2, 4, 8, 16, 32, 64} {
		h := h
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := sim.NewWorld(sim.Config{
					TTB:     30 * time.Second,
					TTA:     150 * time.Second,
					Seed:    int64(i + 1),
					Latency: topo.Latency,
				})
				ring := make([]*sim.Activity, h)
				for j := range ring {
					ring[j] = w.NewActivity(ids.NodeID(j%topo.NumNodes() + 1))
				}
				for j := range ring {
					ring[j].Link(ring[(j+1)%h].ID())
				}
				ok, took := w.RunUntilCollected(h, 24*time.Hour)
				if !ok {
					b.Fatalf("ring of %d not collected", h)
				}
				b.ReportMetric(took.Seconds()/30, "collect_beats")
			}
		})
	}
}

// BenchmarkConsensusPropagationAblation quantifies the §4.3 dying-wave
// optimization: with the wave a compound cycle dies after one consensus;
// without it, each consensus frees only the detecting activity and the
// sub-cycles start over. Metric: collect_beats (and consensus count via
// events).
func BenchmarkConsensusPropagationAblation(b *testing.B) {
	run := func(b *testing.B, disable bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			var consensuses int
			w := sim.NewWorld(sim.Config{
				TTB:                         30 * time.Second,
				TTA:                         150 * time.Second,
				Seed:                        int64(i + 1),
				DisableConsensusPropagation: disable,
				OnEvent: func(ev core.Event) {
					if ev.Kind == core.EventConsensusDetected {
						consensuses++
					}
				},
			})
			const n = 24
			ring := make([]*sim.Activity, n)
			for j := range ring {
				ring[j] = w.NewActivity(ids.NodeID(j%8 + 1))
			}
			for j := range ring {
				ring[j].Link(ring[(j+1)%n].ID())
				if j%4 == 0 { // chords create sub-cycles
					ring[j].Link(ring[(j+n/2)%n].ID())
				}
			}
			ok, took := w.RunUntilCollected(n, 96*time.Hour)
			if !ok {
				b.Fatalf("not collected (disable=%v)", disable)
			}
			b.ReportMetric(took.Seconds()/30, "collect_beats")
			b.ReportMetric(float64(consensuses), "consensuses")
		}
	}
	b.Run("wave", func(b *testing.B) { run(b, false) })
	b.Run("no-wave", func(b *testing.B) { run(b, true) })
}

// BenchmarkBaselineRMICycleLeak compares the paper's collector with the
// RMI-style reference-listing baseline on the same workload: chains are
// collected by both, cycles only by the complete DGC. Metric: leaked
// activities after a generous grace period.
func BenchmarkBaselineRMICycleLeak(b *testing.B) {
	const (
		cycles    = 20
		cycleLen  = 4
		chains    = 20
		chainLen  = 4
		perNode   = 8
		graceTime = 4 * time.Hour
	)
	build := func(link func(fromIdx, toIdx int, cyclic bool), total *int) {
		idx := 0
		for c := 0; c < cycles; c++ {
			first := idx
			for k := 0; k < cycleLen; k++ {
				if k < cycleLen-1 {
					link(idx, idx+1, true)
				} else {
					link(idx, first, true)
				}
				idx++
			}
		}
		for c := 0; c < chains; c++ {
			for k := 0; k < chainLen; k++ {
				if k < chainLen-1 {
					link(idx, idx+1, false)
				}
				idx++
			}
		}
		*total = idx
	}

	b.Run("complete-dgc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := sim.NewWorld(sim.Config{TTB: 30 * time.Second, TTA: 150 * time.Second, Seed: 1})
			acts := make([]*sim.Activity, cycles*cycleLen+chains*chainLen)
			for j := range acts {
				acts[j] = w.NewActivity(ids.NodeID(j/perNode + 1))
			}
			var total int
			build(func(from, to int, _ bool) { acts[from].Link(acts[to].ID()) }, &total)
			w.RunFor(graceTime)
			leaked := w.Live()
			b.ReportMetric(float64(leaked), "leaked")
			if leaked != 0 {
				b.Fatalf("complete DGC leaked %d activities", leaked)
			}
		}
	})
	b.Run("rmi-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := rmidgc.NewWorld(rmidgc.Config{
				LeaseDuration: 60 * time.Second,
				RenewEvery:    30 * time.Second,
			}, 1, nil)
			acts := make([]*rmidgc.Activity, cycles*cycleLen+chains*chainLen)
			for j := range acts {
				acts[j] = w.NewActivity(ids.NodeID(j/perNode + 1))
			}
			var total int
			build(func(from, to int, _ bool) { acts[from].Link(acts[to].ID()) }, &total)
			w.RunFor(graceTime)
			leaked := w.Live()
			b.ReportMetric(float64(leaked), "leaked")
			if leaked != cycles*cycleLen {
				b.Fatalf("baseline leak = %d, want exactly the %d cycle members",
					leaked, cycles*cycleLen)
			}
		}
	})
}

// BenchmarkAdaptiveBeats quantifies the §7.1 future-work extension
// implemented here (dynamic TTB): a garbage 16-ring plus a busy
// root→chain under three beat policies. Adaptive approaches the fast
// fixed beat's collection latency while spending far fewer messages on
// the busy (uncollectable) part of the graph.
func BenchmarkAdaptiveBeats(b *testing.B) {
	run := func(b *testing.B, adaptive bool, fixedTTB time.Duration) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			cfg := sim.Config{TTB: fixedTTB, TTA: 300 * time.Second, Seed: int64(i + 1)}
			if adaptive {
				cfg.Adaptive = core.Adaptive{
					Enabled: true,
					MinTTB:  15 * time.Second,
					MaxTTB:  120 * time.Second,
				}
			}
			w := sim.NewWorld(cfg)
			const n = 16
			ring := make([]*sim.Activity, n)
			for j := range ring {
				ring[j] = w.NewActivity(ids.NodeID(j%8 + 1))
			}
			for j := range ring {
				ring[j].Link(ring[(j+1)%n].ID())
			}
			// A busy root holding a chain: permanent, uncollectable load.
			root := w.NewActivity(9)
			root.SetBusy()
			prev := root
			for j := 0; j < 8; j++ {
				next := w.NewActivity(ids.NodeID(10 + j%4))
				prev.Link(next.ID())
				prev = next
			}
			ok, took := w.RunUntilCollected(n, 48*time.Hour)
			if !ok {
				b.Fatal("ring not collected")
			}
			w.RunFor(2 * time.Hour) // steady-state traffic for the busy part
			b.ReportMetric(took.Seconds(), "collect_s")
			b.ReportMetric(float64(w.Traffic().DGCMessages), "dgc_msgs")
		}
	}
	b.Run("fixed-60s", func(b *testing.B) { run(b, false, 60*time.Second) })
	b.Run("fixed-15s", func(b *testing.B) { run(b, false, 15*time.Second) })
	b.Run("adaptive-15..120s", func(b *testing.B) { run(b, true, 60*time.Second) })
}

// BenchmarkCDMMessageGrowth quantifies the §6 comparison with Veiga &
// Ferreira-style cycle detection messages (internal/cdmdgc): their
// message size grows linearly with the traversed graph, while this
// paper's DGC messages stay at the fixed 25 bytes whatever the system
// size. Metrics: max_msg_B for the CDM comparator vs fixed_msg_B.
func BenchmarkCDMMessageGrowth(b *testing.B) {
	for _, n := range []int{8, 32, 128, 512} {
		n := n
		b.Run(fmt.Sprintf("cycle=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := cdmdgc.NewWorld(cdmdgc.Config{
					DetectEvery: 30 * time.Second,
					HopLatency:  10 * time.Millisecond,
					Seed:        int64(i + 1),
				})
				acts := make([]*cdmdgc.Activity, n)
				for j := range acts {
					acts[j] = w.NewActivity(ids.ActivityID{Node: 1, Seq: uint32(j + 1)})
				}
				for j := range acts {
					acts[j].Link(acts[(j+1)%n])
				}
				w.RunFor(48 * time.Hour)
				if w.Collected() != n {
					b.Fatalf("CDM comparator failed to collect the %d-ring", n)
				}
				b.ReportMetric(float64(w.MaxCDMBytes), "max_msg_B")
				b.ReportMetric(float64(core.MessageWireSize), "fixed_msg_B")
				b.ReportMetric(float64(w.CDMBytes)/1e3, "total_KB")
			}
		})
	}
}

// BenchmarkMinHeightTree quantifies the §7.2 extension on dense graphs:
// depth-aware re-adoption flattens the reverse spanning tree (metric:
// tree_height at collection) and with it the conjunction path to the
// originator (metric: collect_beats).
func BenchmarkMinHeightTree(b *testing.B) {
	run := func(b *testing.B, minHeight bool) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			w := sim.NewWorld(sim.Config{
				TTB:           30 * time.Second,
				TTA:           150 * time.Second,
				Seed:          int64(i + 1),
				MinHeightTree: minHeight,
			})
			const n = 24
			acts := make([]*sim.Activity, n)
			for j := range acts {
				acts[j] = w.NewActivity(ids.NodeID(j%8 + 1))
			}
			for j := range acts {
				for k := range acts {
					if j != k {
						acts[j].Link(acts[k].ID())
					}
				}
			}
			ok, took := w.RunUntilCollected(n, 8*time.Hour)
			if !ok {
				b.Fatal("complete graph not collected")
			}
			// Final tree height by walking parent chains.
			byID := make(map[ids.ActivityID]*sim.Activity, n)
			for _, a := range acts {
				byID[a.ID()] = a
			}
			height := 0
			for _, a := range acts {
				depth, cur := 0, a
				for !cur.Collector().Parent().IsNil() && depth <= n {
					next, okP := byID[cur.Collector().Parent()]
					if !okP {
						break
					}
					cur = next
					depth++
				}
				if depth > height {
					height = depth
				}
			}
			b.ReportMetric(float64(height), "tree_height")
			b.ReportMetric(took.Seconds()/30, "collect_beats")
		}
	}
	b.Run("fastest-response", func(b *testing.B) { run(b, false) })
	b.Run("min-height", func(b *testing.B) { run(b, true) })
}

// --- Micro-benchmarks of the hot paths --------------------------------------

// BenchmarkDGCMessageCodec measures the fixed-size DGC message encoding
// (§4.3 relies on fixed-size, cheap messages).
func BenchmarkDGCMessageCodec(b *testing.B) {
	msg := core.Message{
		Sender:    ids.ActivityID{Node: 3, Seq: 9},
		Clock:     lamport.Clock{Value: 77, Owner: ids.ActivityID{Node: 1, Seq: 2}},
		Consensus: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := core.EncodeMessage(msg)
		if _, err := core.DecodeMessage(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectorTick measures one full heartbeat round of a collector
// with 64 referencers and 64 referenced activities: receiving every
// referencer's message plus the local Tick (per-beat cost is linear in
// the neighbourhood, §4.3). The referencers never agree, so the collector
// stays live for any number of iterations.
func BenchmarkCollectorTick(b *testing.B) {
	now := time.Unix(0, 0)
	cfg := core.Config{TTB: 30 * time.Second, TTA: 150 * time.Second}
	self := ids.ActivityID{Node: 1, Seq: 1}
	c := core.New(self, cfg, func() bool { return true }, now)
	const peers = 64
	msgs := make([]core.Message, peers)
	for i := 0; i < peers; i++ {
		peer := ids.ActivityID{Node: 2, Seq: uint32(i + 1)}
		c.AddReferenced(peer, now)
		msgs[i] = core.Message{Sender: peer, Clock: lamport.Clock{Value: 1, Owner: peer}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(30 * time.Second)
		for _, m := range msgs {
			c.HandleMessage(m, now)
		}
		res := c.Tick(now)
		if res.Terminated {
			b.Fatal("collector terminated mid-benchmark")
		}
	}
}

// BenchmarkWireEncodeDecode measures the serialization boundary every
// inter-activity value crosses.
func BenchmarkWireEncodeDecode(b *testing.B) {
	v := wire.Dict(map[string]wire.Value{
		"vec":  wire.Floats(make([]float64, 256)),
		"meta": wire.List(wire.Int(1), wire.String("x"), wire.Ref(ids.ActivityID{Node: 1, Seq: 2})),
	})
	var d wire.Decoder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := wire.Encode(nil, v)
		if _, err := d.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeapSweep measures a local mark-and-sweep over 10k cells (the
// per-TTB local collection cost).
func BenchmarkHeapSweep(b *testing.B) {
	h := localgc.New(nil)
	owner := ids.ActivityID{Node: 1, Seq: 1}
	for i := 0; i < 1000; i++ {
		v := wire.List(
			wire.Int(int64(i)),
			wire.Ref(ids.ActivityID{Node: 2, Seq: uint32(i%64 + 1)}),
			wire.Dict(map[string]wire.Value{"s": wire.String("payload")}),
		)
		ref := h.Intern(owner, v)
		h.AddRoot(ref)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := h.Collect()
		if st.Freed != 0 {
			b.Fatal("rooted cells were freed")
		}
	}
}

// --- Dispatch-layer benchmarks (typed v2 API vs dynamic substrate) ----------

// benchCallEnv returns an environment tuned for dispatch measurement: the
// DGC is off so the numbers isolate the calling path (marshaling,
// envelope codec, queueing, future resolution), not collection beats.
func benchCallEnv(b *testing.B) *repro.Env {
	b.Helper()
	env := repro.NewEnv(repro.Config{DisableDGC: true})
	b.Cleanup(env.Close)
	return env
}

// benchReq/benchResp give the typed and dynamic benchmarks the same wire
// shape (a three-entry dict in, a two-entry dict out) so the delta is the
// reflection codec plus generic plumbing, nothing else.
type benchReq struct {
	A   int64  `wire:"a"`
	B   int64  `wire:"b"`
	Tag string `wire:"tag"`
}

type benchResp struct {
	Sum int64  `wire:"sum"`
	Tag string `wire:"tag"`
}

// BenchmarkDynamicCall measures a synchronous round-trip through the
// stringly-typed v1 surface: hand-rolled wire.Value dicts and
// switch-on-method-name dispatch.
func BenchmarkDynamicCall(b *testing.B) {
	env := benchCallEnv(b)
	h := env.NewNode().NewActive("dyn", repro.BehaviorFunc(
		func(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
			switch method {
			case "add":
				return repro.Dict(map[string]repro.Value{
					"sum": repro.Int(args.Get("a").AsInt() + args.Get("b").AsInt()),
					"tag": args.Get("tag"),
				}), nil
			default:
				return repro.Null(), fmt.Errorf("unknown method %q", method)
			}
		}))
	defer h.Release()
	args := repro.Dict(map[string]repro.Value{
		"a": repro.Int(19), "b": repro.Int(23), "tag": repro.String("bench"),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := h.CallSync("add", args, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if out.Get("sum").AsInt() != 42 {
			b.Fatalf("sum = %v", out.Get("sum"))
		}
	}
}

// BenchmarkTypedCall measures the same round-trip through the typed v2
// surface: generic stub, struct⇄wire codec, typed future. The difference
// to BenchmarkDynamicCall is the price of the typed façade.
func BenchmarkTypedCall(b *testing.B) {
	env := benchCallEnv(b)
	h := env.NewNode().NewActive("typed", repro.NewService(
		repro.Method("add", func(ctx *repro.Context, req benchReq) (benchResp, error) {
			return benchResp{Sum: req.A + req.B, Tag: req.Tag}, nil
		})))
	defer h.Release()
	stub := repro.NewStub[benchReq, benchResp](h, "add")
	req := benchReq{A: 19, B: 23, Tag: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := stub.CallSync(req, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Sum != 42 {
			b.Fatalf("sum = %d", resp.Sum)
		}
	}
}

// BenchmarkGroupBroadcast measures the group fan-out path: one Broadcast
// to 16 members across 4 nodes plus WaitAll on every reply.
func BenchmarkGroupBroadcast(b *testing.B) {
	env := benchCallEnv(b)
	nodes := []*repro.Node{env.NewNode(), env.NewNode(), env.NewNode(), env.NewNode()}
	svc := repro.NewService(
		repro.Method("add", func(ctx *repro.Context, req benchReq) (benchResp, error) {
			return benchResp{Sum: req.A + req.B, Tag: req.Tag}, nil
		}))
	const members = 16
	handles := make([]*repro.Handle, members)
	for i := range handles {
		handles[i] = nodes[i%len(nodes)].NewActive(fmt.Sprintf("g-%d", i), svc)
	}
	g := repro.NewGroup[benchReq, benchResp]("add", handles...)
	defer g.Release()
	req := benchReq{A: 19, B: 23, Tag: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fg, err := g.Broadcast(req)
		if err != nil {
			b.Fatal(err)
		}
		replies, err := fg.WaitAll(30 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if len(replies) != members || replies[members-1].Sum != 42 {
			b.Fatalf("replies = %v", replies)
		}
	}
	b.ReportMetric(float64(members), "fanout")
}

// benchCrossNodeCall measures a synchronous typed round-trip where the
// caller's handle is anchored on a different node than the callee, so
// every request and future update actually traverses the environment's
// transport (the same-node benchmarks above take the intra-node direct
// path and never touch it).
func benchCrossNodeCall(b *testing.B, env *repro.Env) {
	b.Helper()
	caller, callee := env.NewNode(), env.NewNode()
	h := callee.NewActive("remote", repro.NewService(
		repro.Method("add", func(ctx *repro.Context, req benchReq) (benchResp, error) {
			return benchResp{Sum: req.A + req.B, Tag: req.Tag}, nil
		})))
	defer h.Release()
	hc, err := caller.HandleFor(h.Ref())
	if err != nil {
		b.Fatal(err)
	}
	defer hc.Release()
	stub := repro.NewStub[benchReq, benchResp](hc, "add")
	req := benchReq{A: 19, B: 23, Tag: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := stub.CallSync(req, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Sum != 42 {
			b.Fatalf("sum = %d", resp.Sum)
		}
	}
}

// BenchmarkCrossNodeCall is the simnet baseline of the cross-node
// round-trip; BenchmarkTCPCall is the same exchange over real TCP.
func BenchmarkCrossNodeCall(b *testing.B) {
	benchCrossNodeCall(b, benchCallEnv(b))
}

// BenchmarkTCPCall measures the cross-node typed round-trip over the TCP
// backend: both the request and the future update cross a real loopback
// connection with length-prefixed framing.
func BenchmarkTCPCall(b *testing.B) {
	tr, err := repro.NewTCPTransport(repro.TCPConfig{})
	if err != nil {
		b.Fatal(err)
	}
	env := repro.NewEnv(repro.Config{DisableDGC: true, Transport: tr})
	b.Cleanup(env.Close)
	benchCrossNodeCall(b, env)
}

// benchBroadcast measures a one-to-many Broadcast plus WaitAll where the
// group handles are re-anchored on a dedicated caller node, so the fan-out
// and every reply traverse the transport.
func benchBroadcast(b *testing.B, env *repro.Env) {
	b.Helper()
	caller := env.NewNode()
	nodes := []*repro.Node{env.NewNode(), env.NewNode(), env.NewNode(), env.NewNode()}
	svc := repro.NewService(
		repro.Method("add", func(ctx *repro.Context, req benchReq) (benchResp, error) {
			return benchResp{Sum: req.A + req.B, Tag: req.Tag}, nil
		}))
	const members = 16
	handles := make([]*repro.Handle, members)
	for i := range handles {
		local := nodes[i%len(nodes)].NewActive(fmt.Sprintf("g-%d", i), svc)
		defer local.Release()
		remote, err := caller.HandleFor(local.Ref())
		if err != nil {
			b.Fatal(err)
		}
		handles[i] = remote
	}
	g := repro.NewGroup[benchReq, benchResp]("add", handles...)
	defer g.Release()
	req := benchReq{A: 19, B: 23, Tag: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fg, err := g.Broadcast(req)
		if err != nil {
			b.Fatal(err)
		}
		replies, err := fg.WaitAll(30 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if len(replies) != members || replies[members-1].Sum != 42 {
			b.Fatalf("replies = %v", replies)
		}
	}
	b.ReportMetric(float64(members), "fanout")
}

// BenchmarkCrossNodeBroadcast is the simnet baseline of the cross-node
// fan-out; BenchmarkTCPBroadcast is the same fan-out over real TCP.
func BenchmarkCrossNodeBroadcast(b *testing.B) {
	benchBroadcast(b, benchCallEnv(b))
}

// BenchmarkTCPBroadcast measures the 16-member cross-node Broadcast over
// the TCP backend: 16 requests and 16 future updates per iteration, each
// on its own persistent per-pair connection.
func BenchmarkTCPBroadcast(b *testing.B) {
	tr, err := repro.NewTCPTransport(repro.TCPConfig{})
	if err != nil {
		b.Fatal(err)
	}
	env := repro.NewEnv(repro.Config{DisableDGC: true, Transport: tr})
	b.Cleanup(env.Close)
	benchBroadcast(b, env)
}

// BenchmarkCrossNodeBroadcastBatched is the cross-node fan-out with the
// PR 3 batching path enabled: members sharing a destination node travel
// in one batch frame (4 frames for 16 members over 4 nodes), and future
// updates racing back over a busy pair coalesce the same way.
func BenchmarkCrossNodeBroadcastBatched(b *testing.B) {
	env := repro.NewEnv(repro.Config{DisableDGC: true, BatchWindow: 200 * time.Microsecond})
	b.Cleanup(env.Close)
	benchBroadcast(b, env)
}

// BenchmarkTCPBroadcastBatched is the batched fan-out over real TCP: the
// frame+syscall count per iteration drops from 32 writes to the number of
// distinct (pair, flush) windows.
func BenchmarkTCPBroadcastBatched(b *testing.B) {
	tr, err := repro.NewTCPTransport(repro.TCPConfig{})
	if err != nil {
		b.Fatal(err)
	}
	env := repro.NewEnv(repro.Config{DisableDGC: true, Transport: tr, BatchWindow: 200 * time.Microsecond})
	b.Cleanup(env.Close)
	benchBroadcast(b, env)
}

// BenchmarkTCPCallBatched measures the price a sequential round-trip pays
// for an enabled (but useless to it) batching path: requests and future
// updates are urgent, so the only overhead is the flusher's lane handoff.
func BenchmarkTCPCallBatched(b *testing.B) {
	tr, err := repro.NewTCPTransport(repro.TCPConfig{})
	if err != nil {
		b.Fatal(err)
	}
	env := repro.NewEnv(repro.Config{DisableDGC: true, Transport: tr, BatchWindow: 200 * time.Microsecond})
	b.Cleanup(env.Close)
	benchCrossNodeCall(b, env)
}

// BenchmarkSimBeat measures the DES harness: one TTB of a 512-activity
// complete-ring world.
func BenchmarkSimBeat(b *testing.B) {
	w := sim.NewWorld(sim.Config{TTB: 30 * time.Second, TTA: 150 * time.Second, Seed: 1})
	const n = 512
	acts := make([]*sim.Activity, n)
	for i := range acts {
		acts[i] = w.NewActivity(ids.NodeID(i%16 + 1))
	}
	for i := range acts {
		acts[i].Link(acts[(i+1)%n].ID())
	}
	// Keep one member busy so the ring never terminates.
	acts[0].SetBusy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.RunFor(30 * time.Second)
	}
}

// --- First-class future benchmarks (PR 4) -----------------------------------

// pipeWork is the per-stage work of the pipeline benchmarks: a blocking
// delay, modelling the I/O- or downstream-bound service time of a real
// middleware stage. The quantity under test is stage *occupancy* — how
// long one in-flight item monopolizes a stage's single-threaded serve
// loop — which is exactly what forwarded futures reclaim (and which a
// CPU spin could not show on a single-core runner).
const pipeStageDelay = 500 * time.Microsecond

func pipeWork(x int64) int64 {
	time.Sleep(pipeStageDelay)
	return x*1664525 + 1013904223
}

// pipeWire connects a stage to its successor.
type pipeWire struct {
	Next repro.Value `wire:"next"`
	Last bool        `wire:"last"`
}

// pipelineStage returns a 4-stage chain member. With forward=true a
// non-final stage returns the *future* of its downstream call (the
// first-class shape: the stage is free again after its own work); with
// forward=false it waits for the downstream result at every hop (the
// baseline the paper's §5–§6 improves on).
func pipelineStage(forward bool) *repro.Service {
	return repro.NewService(
		repro.Method("wire", func(ctx *repro.Context, req pipeWire) (struct{}, error) {
			ctx.Store("next", req.Next)
			ctx.Store("last", repro.Bool(req.Last))
			return struct{}{}, nil
		}),
		repro.Method("proc", func(ctx *repro.Context, x int64) (repro.Value, error) {
			y := pipeWork(x)
			if ctx.Load("last").AsBool() {
				return repro.Int(y), nil
			}
			fut, err := repro.CallTyped[int64](ctx, ctx.Load("next"), "proc", y)
			if err != nil {
				return repro.Null(), err
			}
			if !forward {
				v, err := fut.Wait(30 * time.Second)
				if err != nil {
					return repro.Null(), err
				}
				return repro.Int(v), nil
			}
			// Forwarded: hand the caller the unresolved future; the
			// runtime flattens the chain to the final concrete value.
			return repro.Marshal(fut)
		}),
	)
}

// benchPipeline drives concurrent items through a 4-stage cross-node
// chain. Throughput is bounded by the busiest stage: waiting at every hop
// keeps stage 0 occupied for the whole downstream round trip, while
// forwarding frees each stage after its own compute, pipelining the
// chain.
func benchPipeline(b *testing.B, forward bool) {
	b.Helper()
	env := repro.NewEnv(repro.Config{DisableDGC: true})
	b.Cleanup(env.Close)
	caller := env.NewNode()
	const stages = 4
	handles := make([]*repro.Handle, stages)
	for i := range handles {
		handles[i] = env.NewNode().NewActive(fmt.Sprintf("stage-%d", i), pipelineStage(forward))
	}
	for i, h := range handles {
		wire := repro.NewStub[pipeWire, struct{}](h, "wire")
		var next repro.Value
		if i < stages-1 {
			next = handles[i+1].Ref()
		} else {
			next = repro.Null()
		}
		if _, err := wire.CallSync(pipeWire{Next: next, Last: i == stages-1}, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	head, err := caller.HandleFor(handles[0].Ref())
	if err != nil {
		b.Fatal(err)
	}
	defer head.Release()
	proc := repro.NewStub[int64, int64](head, "proc")
	b.ReportAllocs()
	// Enough in-flight items to keep every stage of the chain busy; the
	// client side is pure waiting, so high parallelism costs nothing.
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := proc.CallSync(7, 30*time.Second); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(stages, "stages")
}

// BenchmarkPipelineWaitEveryHop is the baseline: every stage blocks on
// its downstream result, so one in-flight item occupies the whole chain.
func BenchmarkPipelineWaitEveryHop(b *testing.B) { benchPipeline(b, false) }

// BenchmarkPipelineForwarded is the first-class shape: stages forward
// futures and are immediately free; the chain pipelines and throughput
// approaches one item per stage-compute instead of one per chain
// round-trip (the PR 4 acceptance bar is ≥1.5× on 4-stage chains).
func BenchmarkPipelineForwarded(b *testing.B) { benchPipeline(b, true) }

// benchCounter is the migratable behavior of the migration benchmarks:
// its state is a single Store entry, so the envelope stays small and the
// measured cost is the protocol, not the payload.
type benchCounter struct{}

func (benchCounter) Serve(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
	switch method {
	case "add":
		total := ctx.Load("total").AsInt() + args.AsInt()
		ctx.Store("total", repro.Int(total))
		return repro.Int(total), nil
	}
	return repro.Null(), fmt.Errorf("benchCounter: unknown method %q", method)
}

func init() {
	repro.RegisterBehavior("bench/counter", func() repro.Behavior { return benchCounter{} })
}

// BenchmarkCallDuringMigration measures the per-call cost of calling an
// activity that keeps migrating between two nodes (one move per 100
// calls, awaited): the caller's reference goes stale on every move, pays
// the forwarder relay until the redirect rebinds it, and the DGC keeps
// running throughout. Compare with BenchmarkCrossNodeCall for the
// steady-state baseline the migration churn is added on top of.
func BenchmarkCallDuringMigration(b *testing.B) {
	env := repro.NewEnv(repro.Config{})
	b.Cleanup(env.Close)
	caller := env.NewNode()
	homes := []*repro.Node{env.NewNode(), env.NewNode()}
	h, err := homes[0].SpawnKind("roamer", "bench/counter")
	if err != nil {
		b.Fatal(err)
	}
	defer h.Release()
	remote, err := caller.HandleFor(h.Ref())
	if err != nil {
		b.Fatal(err)
	}
	defer remote.Release()
	arg := repro.Int(1)
	b.ReportAllocs()
	b.ResetTimer()
	moves := 0
	for i := 0; i < b.N; i++ {
		if i%100 == 99 {
			moves++
			mfut, err := h.Migrate(homes[moves%2].ID())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mfut.Wait(30 * time.Second); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := remote.CallSync("add", arg, 30*time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(moves), "migrations")
}
