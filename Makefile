GO ?= go

# Tier-1 verification: everything a PR must keep green.
.PHONY: verify
verify: build vet fmt-check test

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# -shuffle=on randomizes test order within each package so ordering
# dependencies between tests surface in CI instead of in the field.
.PHONY: test
test:
	$(GO) test -shuffle=on ./...

# Full tree under the race detector (CI runs this too).
.PHONY: race
race:
	$(GO) test -race -shuffle=on ./...

# Per-package timings + coverage summary from one full suite run. CI's
# verify job runs this and uploads test-report.txt as an artifact; the
# pipe stays a gate because cmd/testreport exits nonzero on any failed
# package (and the shell runs with pipefail in CI).
.PHONY: test-report
test-report:
	$(GO) test -json -cover -shuffle=on ./... | $(GO) run ./cmd/testreport -out test-report.txt

# Static analysis beyond vet, exactly as CI runs it: staticcheck (pinned,
# so local and CI agree) and govulncheck (latest: the vulnerability
# database moves regardless of what we pin). Both run via `go run`, so no
# tool installation or PATH setup is needed — only network access on the
# first run.
STATICCHECK_VERSION ?= 2025.1.1
.PHONY: lint
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# Regenerate the messaging trajectory via the loadgen/soak subsystem.
BENCH_DURATION ?= 2s
.PHONY: bench
bench:
	$(GO) run ./cmd/loadgen -suite -duration $(BENCH_DURATION) -out BENCH_messaging.json

# The paper-figure and dispatch micro-benchmarks (EXPERIMENTS.md tables),
# over the whole tree: the root package's paper figures plus the
# internal/active, internal/tcpnet and internal/transport hot-path
# benches.
.PHONY: bench-go
bench-go:
	$(GO) test -run xxx -bench . -benchmem ./...

# Short fuzz pass over every fuzzable decoder (longer runs: raise
# FUZZTIME).
FUZZTIME ?= 15s
.PHONY: fuzz
fuzz:
	$(GO) test -run xxx -fuzz FuzzPlanCodecParity -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzCodecDecodeUnmarshal -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzUnmarshal -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzFutureValue -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzFrameDecode$$ -fuzztime $(FUZZTIME) ./internal/tcpnet/
	$(GO) test -run xxx -fuzz FuzzFrameDecodeReuse -fuzztime $(FUZZTIME) ./internal/tcpnet/
	$(GO) test -run xxx -fuzz FuzzWalkBatch -fuzztime $(FUZZTIME) ./internal/transport/
	$(GO) test -run xxx -fuzz FuzzMigrationEnvelope -fuzztime $(FUZZTIME) ./internal/active/
	$(GO) test -run xxx -fuzz FuzzFanOutEnvelope -fuzztime $(FUZZTIME) ./internal/active/
	$(GO) test -run xxx -fuzz FuzzLocationEnvelope -fuzztime $(FUZZTIME) ./internal/location/
	$(GO) test -run xxx -fuzz FuzzCheckpointRecord -fuzztime $(FUZZTIME) ./internal/store/

# Cluster chaos pass, exactly as the CI chaos job runs it: the
# node-kill + join/leave conformance scenarios under the race detector
# on both backends (the Kill tests exist in Sim and TCP variants), the
# kill-and-restart / kill-and-failover recovery scenarios, the
# internal/cluster and internal/store building blocks, a loadgen churn +
# node-kill smoke that hard-kills a node every 300ms under a live
# call/churn mix, and a crash-restart smoke that kills and recovers the
# durable node every 300ms (gated on zero lost registered identities).
CHAOS_DURATION ?= 3s
.PHONY: chaos
chaos:
	$(GO) test -race -run 'TestConformanceClusterKill|TestCluster|TestConformanceRecover|TestConformanceFailover' ./internal/active/
	$(GO) test -race ./internal/cluster/ ./internal/store/
	$(GO) test -race -run 'TestRunNodeKillChaos|TestRunRestartChaos' ./internal/loadgen/
	$(GO) run ./cmd/loadgen -duration $(CHAOS_DURATION) -mix 4:0:2 -kill-every 300ms
	$(GO) run ./cmd/loadgen -duration $(CHAOS_DURATION) -mix 4:0:2 -restart-every 300ms

# CI perf gate, runnable locally: measure a fresh suite and compare it
# against the checked-in trajectory (fails on >20% p50/call-rate regress,
# on the sends-1m-local scenario dropping under 10^6 ops/s, and on the
# tree fan-out losing its ≥2× speedup over flat).
MAX_REGRESS ?= 20
.PHONY: perf-gate
perf-gate:
	$(GO) run ./cmd/loadgen -suite -duration 2s -out /tmp/bench.json
	$(GO) run ./cmd/loadgen -compare -candidate /tmp/bench.json -max-regress $(MAX_REGRESS)

# Local before/after comparison: run the suite on the working tree and
# print the per-scenario delta table against the checked-in baseline
# (BENCH_messaging.json, or BASELINE=<file>). Exits nonzero when a delta
# crosses the perf-gate thresholds — the same plumbing CI uses.
BASELINE ?= BENCH_messaging.json
.PHONY: bench-compare
bench-compare:
	$(GO) run ./cmd/loadgen -suite -duration $(BENCH_DURATION) -out /tmp/bench-candidate.json
	$(GO) run ./cmd/loadgen -compare -baseline $(BASELINE) -candidate /tmp/bench-candidate.json -max-regress $(MAX_REGRESS)

.PHONY: examples
examples:
	@for ex in examples/*; do \
		echo "== $$ex"; $(GO) run ./$$ex || exit 1; done
