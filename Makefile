GO ?= go

# Tier-1 verification: everything a PR must keep green.
.PHONY: verify
verify: build vet fmt-check test

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

.PHONY: test
test:
	$(GO) test ./...

# Full tree under the race detector (CI runs this too).
.PHONY: race
race:
	$(GO) test -race ./...

# Regenerate the messaging trajectory via the loadgen/soak subsystem.
BENCH_DURATION ?= 2s
.PHONY: bench
bench:
	$(GO) run ./cmd/loadgen -suite -duration $(BENCH_DURATION) -out BENCH_messaging.json

# The paper-figure and dispatch micro-benchmarks (EXPERIMENTS.md tables).
.PHONY: bench-go
bench-go:
	$(GO) test -run xxx -bench . -benchmem .

# Short fuzz pass over every fuzzable decoder (longer runs: raise
# FUZZTIME).
FUZZTIME ?= 15s
.PHONY: fuzz
fuzz:
	$(GO) test -run xxx -fuzz FuzzCodecDecodeUnmarshal -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzUnmarshal -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzFutureValue -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) test -run xxx -fuzz FuzzFrameDecode$$ -fuzztime $(FUZZTIME) ./internal/tcpnet/
	$(GO) test -run xxx -fuzz FuzzFrameDecodeReuse -fuzztime $(FUZZTIME) ./internal/tcpnet/
	$(GO) test -run xxx -fuzz FuzzWalkBatch -fuzztime $(FUZZTIME) ./internal/transport/

.PHONY: examples
examples:
	@for ex in examples/*; do \
		echo "== $$ex"; $(GO) run ./$$ex || exit 1; done
