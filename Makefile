GO ?= go

# Tier-1 verification: everything a PR must keep green.
.PHONY: verify
verify: build vet fmt-check test

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

.PHONY: test
test:
	$(GO) test ./...

.PHONY: bench
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Short fuzz pass over the wire codec (longer runs: raise FUZZTIME).
FUZZTIME ?= 15s
.PHONY: fuzz
fuzz:
	$(GO) test -run xxx -fuzz FuzzCodecDecodeUnmarshal -fuzztime $(FUZZTIME) ./internal/wire/

.PHONY: examples
examples:
	@for ex in examples/*; do \
		echo "== $$ex"; $(GO) run ./$$ex || exit 1; done
