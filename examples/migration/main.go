// Command migration demonstrates live activity migration (WIRE.md §7):
// a stateful activity moves between nodes while a client keeps calling it
// through a reference that predates the move. The forwarder left at the
// old location relays the in-flight traffic, teaches the caller the new
// address with a redirect, keeps the migrated activity alive in the DGC's
// reference graph until every holder has rebound — and then reclaims
// itself through the ordinary TTA sweep, leaving no trace.
//
// This is the ProActive/ASP capability the paper's DGC is explicitly
// designed around: references stay valid and collectable while the
// objects they designate change nodes.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

// counter is the migratable behavior: all its state lives in
// Context.Store entries, so the whole activity is wire-expressible.
type counter struct{}

func (counter) Serve(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
	switch method {
	case "add":
		total := ctx.Load("total").AsInt() + args.AsInt()
		ctx.Store("total", repro.Int(total))
		return repro.Int(total), nil
	case "total":
		return ctx.Load("total"), nil
	}
	return repro.Null(), fmt.Errorf("counter: unknown method %q", method)
}

func init() {
	// Both ends of a migration must know how to build the behavior; the
	// registry is process-global, so over TCP each process registers the
	// same kinds and activities roam between them.
	repro.RegisterBehavior("example/counter", func() repro.Behavior { return counter{} })
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()
	home, away, client := env.NewNode(), env.NewNode(), env.NewNode()

	fmt.Println("spawning a migratable counter on", home.ID())
	h, err := home.SpawnKind("counter", "example/counter")
	if err != nil {
		return err
	}
	defer h.Release()
	caller, err := client.HandleFor(h.Ref())
	if err != nil {
		return err
	}
	defer caller.Release()

	// A client hammering the counter from a third node, oblivious to the
	// move that is about to happen under its feet.
	done := make(chan error, 1)
	const calls = 200
	go func() {
		for i := 0; i < calls; i++ {
			if _, err := caller.CallSync("add", repro.Int(1), 10*time.Second); err != nil {
				done <- fmt.Errorf("call %d: %w", i, err)
				return
			}
		}
		done <- nil
	}()

	time.Sleep(3 * time.Millisecond)
	fmt.Println("migrating it to", away.ID(), "with calls in flight...")
	mfut, err := h.Migrate(away.ID())
	if err != nil {
		return err
	}
	newRef, err := mfut.Wait(10 * time.Second)
	if err != nil {
		return err
	}
	newID, _ := newRef.AsRef()
	fmt.Println("activity re-homed as", newID, "— a forwarder holds the old address")

	if err := <-done; err != nil {
		return err
	}
	total, err := caller.CallSync("total", repro.Null(), 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("every call accounted for across the move: total = %d (want %d)\n",
		total.AsInt(), calls)

	// The caller has been redirected by now: its reference-graph edge
	// points at the new identity and its beats go to the new node. The
	// forwarder, alone, collects itself via the ordinary TTA sweep.
	start := time.Now()
	for home.LiveActivities() > 0 && time.Since(start) < 10*time.Second {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("forwarder collapsed after %v: the old node hosts nothing anymore\n",
		time.Since(start).Round(time.Millisecond))

	// Tear everything down: releasing the handles makes the migrated
	// activity ordinary garbage, collected like any other.
	caller.Release()
	h.Release()
	if _, err := env.WaitCollected(0, 30*time.Second); err != nil {
		return err
	}
	fmt.Println("migrated activity reclaimed by the DGC after release — nothing leaked")
	return nil
}
