// Command durability walks both durable-activity shapes (DESIGN.md §9,
// WIRE.md §11) on the public API:
//
//  1. Kill-and-restart: a process checkpoints a named activity to a
//     file-backed store, "crashes" (some work never checkpointed), and a
//     restarted process replays the log, recovers the activity under its
//     old identity and re-registers its name. The uncheckpointed tail is
//     gone — at-most-once, callers retry idempotent operations.
//  2. Kill-and-failover: two cluster members share a checkpoint store;
//     when one is hard-killed, the failure detector declares it dead and
//     the surviving member adopts its checkpointed activity under a new
//     identity, gossiping rebinds — the dead process's name and even a
//     stale reference to the dead identity keep resolving.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

// account is the durable behavior: like a migratable one, all its state
// lives in Context.Store entries, so the checkpoint envelope captures
// the whole activity.
type account struct{}

func (account) Serve(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
	switch method {
	case "add":
		total := ctx.Load("total").AsInt() + args.AsInt()
		ctx.Store("total", repro.Int(total))
		return repro.Int(total), nil
	case "total":
		return ctx.Load("total"), nil
	}
	return repro.Null(), fmt.Errorf("account: unknown method %q", method)
}

func init() {
	// Durability rides on the behavior-kind registry exactly like
	// migration: recovery re-instantiates the kind from this registry,
	// in whichever process performs it.
	repro.RegisterBehavior("example/account", func() repro.Behavior { return account{} })
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	if err := restartDemo(); err != nil {
		return fmt.Errorf("kill-and-restart: %w", err)
	}
	if err := failoverDemo(); err != nil {
		return fmt.Errorf("kill-and-failover: %w", err)
	}
	return nil
}

// restartDemo is shape 1: one process dies, its successor re-opens the
// store and resumes the checkpointed world.
func restartDemo() error {
	fmt.Println("— kill-and-restart —")
	dir, err := os.MkdirTemp("", "durability-ckpt")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// First process lifetime. The store is crash-tolerant: every
	// acknowledged checkpoint is fsynced behind a CRC-framed record.
	st, err := repro.NewFileStore(dir)
	if err != nil {
		return err
	}
	env := repro.NewEnv(repro.Config{Store: st})
	node := env.NewNode()
	h, err := node.SpawnKind("acct", "example/account")
	if err != nil {
		return err
	}
	if err := env.RegisterName("bank/acct", h.Ref()); err != nil {
		return err
	}
	if _, err := h.CallSync("add", repro.Int(42), 10*time.Second); err != nil {
		return err
	}
	fut, err := h.Checkpoint() // explicit; Config.CheckpointEvery gives a cadence
	if err != nil {
		return err
	}
	if _, err := fut.Wait(10 * time.Second); err != nil {
		return err
	}
	fmt.Println("checkpointed at total=42; adding 58 more without a checkpoint...")
	if _, err := h.CallSync("add", repro.Int(58), 10*time.Second); err != nil {
		return err
	}
	// Crash. No graceful teardown of the activity — a graceful destroy
	// (unregister + release + collection) would retire the checkpoint.
	env.Close()
	st.Close()
	fmt.Println("process crashed at total=100 (58 units never acknowledged)")

	// Second process lifetime: replay the log, recover, look the name up.
	st2, err := repro.NewFileStore(dir)
	if err != nil {
		return err
	}
	defer st2.Close()
	env2 := repro.NewEnv(repro.Config{Store: st2})
	defer env2.Close()
	restored, err := env2.Recover()
	if err != nil {
		return err
	}
	ref, err := env2.Lookup("bank/acct")
	if err != nil {
		return err
	}
	client := env2.NewNode()
	caller, err := client.HandleFor(ref)
	if err != nil {
		return err
	}
	defer caller.Release()
	total, err := caller.CallSync("total", repro.Null(), 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("restart recovered %d activity under its old identity: total = %d\n",
		restored, total.AsInt())
	fmt.Println("the uncheckpointed 58 died with the process — at-most-once;")
	fmt.Println("requests checkpointed in flight would have failed with ErrRecovered")
	return nil
}

// failoverDemo is shape 2: two cluster members (two envs standing in for
// two processes), a shared checkpoint store, and a hard kill healed by
// the survivor instead of a restart.
func failoverDemo() error {
	fmt.Println("— kill-and-failover —")
	// A MemStore stands in for storage both members can reach (a shared
	// or replicated file store works the same way).
	st := repro.NewMemStore()
	newMember := func(seed string) (*repro.Env, error) {
		tr, err := repro.NewTCPTransport(repro.TCPConfig{})
		if err != nil {
			return nil, err
		}
		return repro.NewEnv(repro.Config{
			// The paper's parameters compressed so death is declared in
			// tens of milliseconds instead of minutes.
			TTB: 10 * time.Millisecond, TTA: 40 * time.Millisecond,
			Transport: tr, Store: st,
			Cluster: repro.ClusterConfig{Enabled: true, Seed: seed, Failover: true},
		}), nil
	}

	seedEnv, err := newMember("")
	if err != nil {
		return err
	}
	defer seedEnv.Close()
	seedAddr := seedEnv.Network().(*repro.TCPTransport).Addr()
	survivor := seedEnv.NewNode()

	joinEnv, err := newMember(seedAddr)
	if err != nil {
		return err
	}
	defer joinEnv.Close()
	if err := joinEnv.Join(); err != nil {
		return err
	}
	doomed := joinEnv.NewNode()

	h, err := doomed.SpawnKind("acct", "example/account")
	if err != nil {
		return err
	}
	if err := joinEnv.RegisterName("bank/acct", h.Ref()); err != nil {
		return err
	}
	// A client on the seed member holds a reference to the doomed
	// identity and checkpoints it across the wire.
	caller, err := survivor.HandleFor(h.Ref())
	if err != nil {
		return err
	}
	defer caller.Release()
	if _, err := callRetry(caller, "add", repro.Int(7), 10*time.Second); err != nil {
		return err
	}
	fut, err := caller.Checkpoint()
	if err != nil {
		return err
	}
	if _, err := fut.Wait(10 * time.Second); err != nil {
		return err
	}

	fmt.Printf("hard-killing the member hosting %v (total=7 checkpointed)...\n", doomed.ID())
	joinEnv.Network().Close()
	start := time.Now()
	for seedEnv.NodeHealth(doomed.ID()) != repro.NodeDead {
		if time.Since(start) > 10*time.Second {
			return errors.New("failure detector never declared the member dead")
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("failure detector declared it dead after %v; survivor adopts...\n",
		time.Since(start).Round(time.Millisecond))

	// The name was registered only in the dead process — the survivor
	// learns it from the checkpoint and re-binds it to the adoptee.
	start = time.Now()
	for {
		if ref, err := seedEnv.Lookup("bank/acct"); err == nil {
			if id, ok := ref.AsRef(); ok && id.Node == survivor.ID() {
				fmt.Printf("name re-bound to adopted identity %v on the survivor\n", id)
				break
			}
		}
		if time.Since(start) > 10*time.Second {
			return errors.New("adoption never re-bound the name")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The client still holds the DEAD identity; the gossiped rebind
	// routes it, exactly as after a live migration.
	total, err := callRetry(caller, "total", repro.Null(), 10*time.Second)
	if err != nil {
		return err
	}
	after, err := callRetry(caller, "add", repro.Int(3), 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("stale reference still works: total was %d, %d after one more add\n",
		total.AsInt(), after.AsInt())
	return nil
}

// callRetry retries a call with a short per-attempt timeout. Around a
// kill, a one-way request can land in a connection that has not yet
// observed the peer's death and be lost with it; retrying is the
// documented contract (idempotent here: "total", and "add" only after
// its outcome is checked).
func callRetry(h *repro.Handle, method string, args repro.Value, budget time.Duration) (repro.Value, error) {
	deadline := time.Now().Add(budget)
	for {
		v, err := h.CallSync(method, args, time.Second)
		if err == nil {
			return v, nil
		}
		if time.Now().After(deadline) {
			return repro.Null(), fmt.Errorf("%s: %w", method, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
