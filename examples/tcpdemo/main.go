// Command tcpdemo runs the runtime multi-process: it re-executes itself
// as a server process, then talks to it over real TCP connections — typed
// calls, future updates and DGC heartbeats all crossing the process
// boundary through the internal/tcpnet substrate.
//
// The choreography demonstrates the full cross-process DGC loop:
//
//  1. the server process creates a counter activity, publishes it in its
//     registry (a DGC root, §4.1) and drops its own handle;
//  2. the client process references the activity purely by identifier —
//     the server's first node is agreed to be node 100, so the counter is
//     A100.1 — and calls it through a typed stub;
//  3. while the client holds its handle, its dummy activity heartbeats
//     the server's counter across TCP every TTB;
//  4. the client releases the handle and closes the server's stdin; the
//     server unregisters the name, and with no referencer left the
//     counter stops hearing beats, goes TTA-idle and collects itself.
//
// No step needed connectivity from the server back to the client beyond
// the future updates: DGC responses ride the connections the client
// opened (§2.2).
package main

import (
	"bufio"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro"
)

// serverFirstNode is the node-identifier range split: the client process
// allocates nodes from 1, the server from 100. Both processes know it, so
// the client can name the server's first activity without a lookup.
const serverFirstNode = 100

// counterID is the server's counter activity: the first activity created
// on the server's first node.
var counterID = repro.ActivityID{Node: serverFirstNode, Seq: 1}

// addReq asks the counter to add N to its running total.
type addReq struct {
	N int64 `wire:"n"`
}

// counterService returns the typed service of the shared counter.
func counterService() *repro.Service {
	return repro.NewService(
		repro.Method("add", func(ctx *repro.Context, req addReq) (int64, error) {
			total := ctx.Load("total").AsInt() + req.N
			ctx.Store("total", repro.Int(total))
			return total, nil
		}),
	)
}

func main() {
	log.SetFlags(0)
	var err error
	if os.Getenv("TCPDEMO_ROLE") == "server" {
		err = runServer(os.Getenv("TCPDEMO_CLIENT_ADDR"))
	} else {
		err = runClient()
	}
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

// runServer is the child process: it hosts the counter until its stdin
// closes, then waits for the DGC to reclaim it.
func runServer(clientAddr string) error {
	tr, err := repro.NewTCPTransport(repro.TCPConfig{
		// The client's nodes start at 1; its address is needed for the
		// return path of future updates.
		Peers: map[repro.NodeID]string{1: clientAddr},
	})
	if err != nil {
		return err
	}
	env := repro.NewEnv(repro.Config{Transport: tr, FirstNode: serverFirstNode})
	defer env.Close()

	node := env.NewNode()
	h := node.NewActive("counter", counterService())
	if ref, _ := h.Ref().AsRef(); ref != counterID {
		return fmt.Errorf("server: counter is %v, want %v", ref, counterID)
	}
	// Root the counter in the registry, then drop the local handle: from
	// here on only the registration and remote referencers keep it alive.
	if err := env.RegisterName("counter", h.Ref()); err != nil {
		return err
	}
	h.Release()

	// Tell the parent where we listen. It parses this exact line.
	fmt.Printf("READY addr=%s\n", tr.Addr())

	// Serve until the parent closes our stdin.
	if _, err := io.Copy(io.Discard, os.Stdin); err != nil {
		return err
	}

	// The client has released its handle. Unregister the root and watch
	// the DGC reclaim the now-unreferenced counter.
	env.Unregister("counter")
	took, err := env.WaitCollected(0, 10*time.Second)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	snap := env.Network().Snapshot()
	fmt.Printf("counter collected %v after unregister (reasons %v)\n",
		took.Round(time.Millisecond), env.Stats().Collected)
	fmt.Printf("server-side traffic: app=%dB dgc=%dB future=%dB\n",
		snap.Bytes[repro.ClassApp], snap.Bytes[repro.ClassDGC], snap.Bytes[repro.ClassFuture])
	return nil
}

// runClient is the parent process: it spawns the server, calls the
// counter across TCP, then releases everything and reports both sides.
func runClient() error {
	tr, err := repro.NewTCPTransport(repro.TCPConfig{})
	if err != nil {
		return err
	}
	env := repro.NewEnv(repro.Config{Transport: tr})
	defer env.Close()
	node := env.NewNode()

	// Re-execute ourselves as the server process.
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"TCPDEMO_ROLE=server",
		"TCPDEMO_CLIENT_ADDR="+tr.Addr(),
	)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() { _ = cmd.Process.Kill() }()

	// Wait for the server's READY line, then relay its further output.
	lines := bufio.NewScanner(stdout)
	var serverAddr string
	for lines.Scan() {
		if addr, ok := strings.CutPrefix(lines.Text(), "READY addr="); ok {
			serverAddr = addr
			break
		}
	}
	if serverAddr == "" {
		return fmt.Errorf("server never became ready")
	}
	relayed := make(chan struct{})
	go func() {
		defer close(relayed)
		for lines.Scan() {
			fmt.Println("[server]", lines.Text())
		}
	}()
	tr.AddPeer(serverFirstNode, serverAddr)
	fmt.Println("server process up at", serverAddr)

	// Reference the server's counter purely by identifier and call it.
	h, err := node.HandleFor(repro.Ref(counterID))
	if err != nil {
		return err
	}
	add := repro.NewStub[addReq, int64](h, "add")
	for i := int64(1); i <= 4; i++ {
		total, err := add.CallSync(addReq{N: i}, 5*time.Second)
		if err != nil {
			return fmt.Errorf("add(%d): %w", i, err)
		}
		fmt.Printf("add(%d) -> running total %d (computed in the server process)\n", i, total)
	}

	// Let a few heartbeats cross the wire, then drop the reference.
	time.Sleep(100 * time.Millisecond)
	snap := env.Network().Snapshot()
	fmt.Printf("client-side traffic: app=%dB dgc=%dB future=%dB\n",
		snap.Bytes[repro.ClassApp], snap.Bytes[repro.ClassDGC], snap.Bytes[repro.ClassFuture])
	if snap.Bytes[repro.ClassDGC] == 0 {
		return fmt.Errorf("no DGC heartbeats crossed the process boundary")
	}
	h.Release()
	fmt.Println("handle released — signalling the server and awaiting collection")

	// Closing stdin tells the server to unregister and collect.
	if err := stdin.Close(); err != nil {
		return err
	}
	<-relayed
	return cmd.Wait()
}
