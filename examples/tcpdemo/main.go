// Command tcpdemo runs the runtime multi-process as an elastic cluster:
// it re-executes itself as a joiner process that enters the cluster
// through the seed at runtime — no pre-agreed node-ID ranges, no
// out-of-band address books — then crashes it and watches the failure
// detector and the DGC clean up.
//
// The choreography demonstrates the full elastic lifecycle:
//
//  1. the parent process bootstraps as the cluster seed (Config.Cluster
//     with no Seed address), hosts a counter activity and publishes it
//     in its registry (a DGC root, §4.1);
//  2. the child process joins via the seed's address (Config.Cluster.Seed
//     + Env.Join): it receives a node-ID lease and the member map, so
//     its first node gets a cluster-unique identifier and the route to
//     the seed's nodes without any AddPeer calls;
//  3. the joiner calls the counter across TCP through a typed stub, and
//     hosts a worker activity of its own — membership gossip teaches the
//     seed the joiner's address, so the seed can call the worker back;
//  4. the joiner process is killed abruptly (a crash, not a goodbye);
//     the seed's own DGC heartbeats toward it start failing, the failure
//     detector walks alive → suspect → dead, and the death is final;
//  5. on the seed, new calls toward the dead node fail fast with
//     ErrNodeDead instead of hanging, the membership view keeps the
//     tombstone, and the DGC reclaims the counter once its only
//     referencer died with the joiner.
//
// No step needed connectivity from the seed back to the joiner beyond
// what membership gossip taught it at join time (§2.2 still holds for
// the DGC traffic: responses ride the referencer's connections).
package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"time"

	"repro"
)

// counterID names the seed's counter activity by convention: the seed
// leases the first node-ID block for itself starting at 1, so its first
// activity is A1.1. The joiner needs no registry lookup to reference it.
var counterID = repro.ActivityID{Node: 1, Seq: 1}

// addReq asks the counter to add N to its running total.
type addReq struct {
	N int64 `wire:"n"`
}

// counterService returns the typed service of the shared counter.
func counterService() *repro.Service {
	return repro.NewService(
		repro.Method("add", func(ctx *repro.Context, req addReq) (int64, error) {
			total := ctx.Load("total").AsInt() + req.N
			ctx.Store("total", repro.Int(total))
			return total, nil
		}),
	)
}

func main() {
	log.SetFlags(0)
	var err error
	if os.Getenv("TCPDEMO_ROLE") == "joiner" {
		err = runJoiner(os.Getenv("TCPDEMO_SEED_ADDR"))
	} else {
		err = runSeed()
	}
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
}

// runJoiner is the child process: it joins the cluster through the seed,
// works, and then dies without saying goodbye.
func runJoiner(seedAddr string) error {
	tr, err := repro.NewTCPTransport(repro.TCPConfig{})
	if err != nil {
		return err
	}
	env := repro.NewEnv(repro.Config{
		Transport: tr,
		Cluster:   repro.ClusterConfig{Enabled: true, Seed: seedAddr},
	})
	// No deferred env.Close(): this process exits abruptly below, standing
	// in for a crashed machine.
	if err := env.Join(); err != nil {
		return err
	}
	node := env.NewNode()
	fmt.Printf("JOINED node=%d\n", node.ID())
	for _, m := range env.ClusterMembers() {
		fmt.Printf("member node-%d state=%v addr=%s\n", m.Node, m.State, m.Addr)
	}

	// Call the seed's counter: the join handed us the route to node 1.
	h, err := node.HandleFor(repro.Ref(counterID))
	if err != nil {
		return err
	}
	add := repro.NewStub[addReq, int64](h, "add")
	for i := int64(1); i <= 4; i++ {
		total, err := add.CallSync(addReq{N: i}, 5*time.Second)
		if err != nil {
			return fmt.Errorf("add(%d): %w", i, err)
		}
		fmt.Printf("add(%d) -> running total %d (computed in the seed process)\n", i, total)
	}

	// Host a worker of our own and tell the seed where it lives; node-up
	// gossip already taught the seed process how to dial us.
	worker := node.NewActive("worker", counterService())
	ref, _ := worker.Ref().AsRef()
	fmt.Printf("WORKER node=%d seq=%d\n", ref.Node, ref.Seq)

	// Work until the parent closes stdin, then crash: no Leave, no
	// Close, no released handles — the failure detector's problem now.
	_, _ = io.Copy(io.Discard, os.Stdin)
	os.Exit(0)
	return nil
}

// runSeed is the parent process: it bootstraps the cluster, spawns and
// later kills the joiner, and watches detection and reclamation.
func runSeed() error {
	tr, err := repro.NewTCPTransport(repro.TCPConfig{})
	if err != nil {
		return err
	}
	env := repro.NewEnv(repro.Config{
		Transport: tr,
		Cluster:   repro.ClusterConfig{Enabled: true},
	})
	defer env.Close()
	node := env.NewNode()

	h := node.NewActive("counter", counterService())
	if ref, _ := h.Ref().AsRef(); ref != counterID {
		return fmt.Errorf("seed: counter is %v, want %v", ref, counterID)
	}
	// Root the counter in the registry, then drop the local handle: from
	// here on only the registration and remote referencers keep it alive.
	if err := env.RegisterName("counter", h.Ref()); err != nil {
		return err
	}
	h.Release()

	// Re-execute ourselves as the joiner process, pointing it at our
	// listener: that address is the only bootstrap information it needs.
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"TCPDEMO_ROLE=joiner",
		"TCPDEMO_SEED_ADDR="+tr.Addr(),
	)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() { _ = cmd.Process.Kill() }()
	fmt.Println("seed up at", tr.Addr(), "— joiner spawned")

	// Relay the joiner's output, picking out its node and worker IDs.
	lines := bufio.NewScanner(stdout)
	var joinerNode repro.NodeID
	var workerID repro.ActivityID
	for lines.Scan() {
		line := lines.Text()
		fmt.Println("[joiner]", line)
		if _, err := fmt.Sscanf(line, "JOINED node=%d", &joinerNode); err == nil {
			continue
		}
		if _, err := fmt.Sscanf(line, "WORKER node=%d seq=%d", &workerID.Node, &workerID.Seq); err == nil {
			break
		}
	}
	if joinerNode == 0 || workerID == (repro.ActivityID{}) {
		return fmt.Errorf("joiner never reported its node and worker")
	}
	relayed := make(chan struct{})
	go func() {
		defer close(relayed)
		for lines.Scan() {
			fmt.Println("[joiner]", lines.Text())
		}
	}()

	// Call the joiner's worker back: membership gossip taught this
	// process the joiner's address when its node came up.
	wh, err := node.HandleFor(repro.Ref(workerID))
	if err != nil {
		return err
	}
	total, err := repro.NewStub[addReq, int64](wh, "add").CallSync(addReq{N: 7}, 5*time.Second)
	if err != nil {
		return fmt.Errorf("call worker on joiner: %w", err)
	}
	fmt.Printf("worker add(7) -> %d (computed in the joiner process)\n", total)

	// Let a few DGC heartbeats cross the process boundary — the same
	// traffic the failure detector piggybacks on.
	time.Sleep(100 * time.Millisecond)
	if snap := env.Network().Snapshot(); snap.Bytes[repro.ClassDGC] == 0 {
		return fmt.Errorf("no DGC heartbeats crossed the process boundary")
	}

	// Kill the joiner mid-conversation. Closing stdin makes it exit
	// without releasing anything — an abrupt machine death as far as
	// this process can tell.
	if err := stdin.Close(); err != nil {
		return err
	}
	<-relayed
	_ = cmd.Wait()
	fmt.Println("joiner process gone — waiting for the failure detector")

	// This process still holds a handle on the worker, so its own DGC
	// heartbeats toward the joiner now fail: alive → suspect → dead with
	// no dedicated liveness traffic.
	deadline := time.Now().Add(10 * time.Second)
	for env.NodeHealth(joinerNode) != repro.NodeDead {
		if time.Now().After(deadline) {
			return fmt.Errorf("joiner node-%d never declared dead (state %v)",
				joinerNode, env.NodeHealth(joinerNode))
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("node-%d declared dead\n", joinerNode)
	for _, m := range env.ClusterMembers() {
		fmt.Printf("member node-%d state=%v\n", m.Node, m.State)
	}

	// New calls toward the dead node fail fast with ErrNodeDead instead
	// of hanging on a connection that will never answer.
	start := time.Now()
	_, err = repro.NewStub[addReq, int64](wh, "add").CallSync(addReq{N: 1}, 5*time.Second)
	if !errors.Is(err, repro.ErrNodeDead) {
		return fmt.Errorf("call to dead node = %v, want ErrNodeDead", err)
	}
	fmt.Printf("call to dead node failed fast (%v): %v\n", time.Since(start).Round(time.Millisecond), err)
	wh.Release()

	// The counter's only referencer died with the joiner: unregister the
	// root and the DGC reclaims everything on the surviving node.
	env.Unregister("counter")
	took, err := env.WaitCollected(0, 10*time.Second)
	if err != nil {
		return fmt.Errorf("seed: %w", err)
	}
	snap := env.Network().Snapshot()
	fmt.Printf("counter collected %v after the crash (reasons %v)\n",
		took.Round(time.Millisecond), env.Stats().Collected)
	fmt.Printf("seed-side traffic: app=%dB dgc=%dB future=%dB cluster=%dB\n",
		snap.Bytes[repro.ClassApp], snap.Bytes[repro.ClassDGC],
		snap.Bytes[repro.ClassFuture], snap.Bytes[repro.ClassCluster])
	return nil
}
