// Command registry demonstrates DGC roots (§4.1) with a typed service: a
// registered service is never idle for the collector, so it survives with
// no referencers at all; the moment it is unregistered it becomes
// ordinary garbage. It also shows the dummy-referencer handles non-active
// code gets, and the released-handle sentinel of the hardened lifecycle.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

// counterService is a typed counter: "add" bumps by a delta and returns
// the new total, "read" returns it.
func counterService() *repro.Service {
	return repro.NewService(
		repro.Method("add", func(ctx *repro.Context, delta int64) (int64, error) {
			n := ctx.Load("n").AsInt() + delta
			ctx.Store("n", repro.Int(n))
			return n, nil
		}),
		repro.Method("read", func(ctx *repro.Context, _ struct{}) (int64, error) {
			return ctx.Load("n").AsInt(), nil
		}),
	)
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()
	serverNode := env.NewNode()
	clientNode := env.NewNode()

	h := serverNode.NewActive("counter", counterService())
	if err := env.RegisterName("service/counter", h.Ref()); err != nil {
		return err
	}
	// The deployer walks away entirely; the registry root keeps the
	// service alive.
	h.Release()

	time.Sleep(10 * repro.DefaultTTA)
	fmt.Println("after many TTA periods with zero referencers, live activities:",
		env.LiveActivities(), "(registry pins it)")

	// A client discovers the service by name and types its methods.
	ref, err := env.Lookup("service/counter")
	if err != nil {
		return err
	}
	client, err := clientNode.HandleFor(ref)
	if err != nil {
		return err
	}
	add := repro.NewStub[int64, int64](client, "add")
	for i := int64(1); i <= 3; i++ {
		total, err := add.CallSync(i, 5*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("add(%d) → %d\n", i, total)
	}
	client.Release()

	// The hardened lifecycle: calling through the released handle fails
	// with a sentinel instead of resurrecting the reference.
	if _, err := add.CallSync(1, time.Second); errors.Is(err, repro.ErrHandleReleased) {
		fmt.Println("call after Release correctly refused:", err)
	} else {
		return fmt.Errorf("released handle answered a call (err=%v)", err)
	}

	fmt.Println("\nunregistering — the service loses its root status")
	env.Unregister("service/counter")
	took, err := env.WaitCollected(0, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("service reclaimed %v after unregister: %v\n",
		took.Round(time.Millisecond), env.Stats().Collected)
	return nil
}
