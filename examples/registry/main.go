// Command registry demonstrates DGC roots (§4.1): a registered service is
// never idle for the collector, so it survives with no referencers at all;
// the moment it is unregistered it becomes ordinary garbage. It also shows
// the dummy-referencer handles non-active code gets.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()
	serverNode := env.NewNode()
	clientNode := env.NewNode()

	// A counter service, registered under a well-known name.
	counter := repro.BehaviorFunc(
		func(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
			switch method {
			case "add":
				n := ctx.Load("n").AsInt() + args.AsInt()
				ctx.Store("n", repro.Int(n))
				return repro.Int(n), nil
			case "read":
				return ctx.Load("n"), nil
			default:
				return repro.Null(), fmt.Errorf("unknown method %q", method)
			}
		})
	h := serverNode.NewActive("counter", counter)
	if err := env.RegisterName("service/counter", h.Ref()); err != nil {
		return err
	}
	// The deployer walks away entirely; the registry root keeps the
	// service alive.
	h.Release()

	time.Sleep(10 * repro.DefaultTTA)
	fmt.Println("after many TTA periods with zero referencers, live activities:",
		env.LiveActivities(), "(registry pins it)")

	// A client discovers the service by name and uses it.
	ref, err := env.Lookup("service/counter")
	if err != nil {
		return err
	}
	client, err := clientNode.HandleFor(ref)
	if err != nil {
		return err
	}
	for i := int64(1); i <= 3; i++ {
		out, err := client.CallSync("add", repro.Int(i), 5*time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("add(%d) → %d\n", i, out.AsInt())
	}
	client.Release()

	fmt.Println("\nunregistering — the service loses its root status")
	env.Unregister("service/counter")
	took, err := env.WaitCollected(0, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("service reclaimed %v after unregister: %v\n",
		took.Round(time.Millisecond), env.Stats().Collected)
	return nil
}
