// Command griddeploy runs the library at the paper's own operating point:
// the Grid'5000 three-site topology of §5.1 (real measured RTTs between
// Bordeaux, Sophia and Rennes), the paper's TTB = 30 s / TTA = 150 s, on
// a 1000× compressed clock — so thirty paper-minutes fit in under two
// wall-seconds. A chain of inter-site service dependencies ending in a
// cross-site cycle is deployed, used, abandoned, and reclaimed.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	topo := repro.Grid5000().Scaled(16) // 4 + 3 + 3 nodes, real RTTs
	env := repro.NewEnv(repro.Config{
		TTB:     30 * time.Second,
		TTA:     150 * time.Second,
		Clock:   repro.ScaledClock(1000),
		Latency: topo.Latency,
		MaxComm: topo.MaxComm(),
	})
	defer env.Close()

	nodes := make([]*repro.Node, topo.NumNodes())
	for i := range nodes {
		nodes[i] = env.NewNode()
	}
	fmt.Printf("deployed %d nodes across 3 sites (max one-way latency %v)\n",
		len(nodes), topo.MaxComm())
	fmt.Printf("DGC: TTB=30s TTA=150s (paper values), clock x1000\n\n")

	// A service that forwards "resolve" down a dependency chain.
	service := repro.BehaviorFunc(
		func(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
			switch method {
			case "depend":
				ctx.Store("dep", args)
				return repro.Null(), nil
			case "resolve":
				dep := ctx.Load("dep")
				hops := args.AsInt()
				if dep.IsNull() || hops <= 0 {
					return repro.Int(hops), nil
				}
				fut, err := ctx.Call(dep, "resolve", repro.Int(hops-1))
				if err != nil {
					return repro.Null(), err
				}
				return fut.Wait(10 * time.Minute)
			default:
				return repro.Null(), fmt.Errorf("unknown method %q", method)
			}
		})

	// Chain across sites: bordeaux → sophia → rennes → bordeaux → ... and
	// close a cycle among the last three.
	const chainLen = 6
	handles := make([]*repro.Handle, chainLen)
	for i := range handles {
		node := nodes[(i*4)%len(nodes)] // hop across the site blocks
		handles[i] = node.NewActive(fmt.Sprintf("svc-%d", i), service)
	}
	for i := 0; i < chainLen-1; i++ {
		if _, err := handles[i].CallSync("depend", handles[i+1].Ref(), 5*time.Minute); err != nil {
			return err
		}
	}
	// Feedback edge: the tail depends on the middle — a cross-site cycle.
	if _, err := handles[chainLen-1].CallSync("depend", handles[chainLen/2].Ref(), 5*time.Minute); err != nil {
		return err
	}

	// Resolve down the chain, stopping before the feedback edge: the
	// cross-site cycle exists purely as stored references (that is what
	// the DGC must deal with), never as a call cycle — calling through it
	// would be a classic active-object wait-by-necessity deadlock.
	start := env.Clock().Now()
	out, err := handles[0].CallSync("resolve", repro.Int(chainLen-1), 30*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("resolve across the grid: %d hops left after the chain, took %v of grid time\n",
		out.AsInt(), env.Clock().Now().Sub(start).Round(time.Second))

	fmt.Println("\nabandoning the deployment (releasing all handles)")
	for _, h := range handles {
		h.Release()
	}
	wall := time.Now()
	took, err := env.WaitCollected(0, time.Hour)
	if err != nil {
		return err
	}
	fmt.Printf("all %d services reclaimed in %v of grid time (%v wall): %v\n",
		chainLen, took.Round(time.Second), time.Since(wall).Round(time.Millisecond),
		env.Stats().Collected)
	return nil
}
