// Command griddeploy runs the library at the paper's own operating point:
// the Grid'5000 three-site topology of §5.1 (real measured RTTs between
// Bordeaux, Sophia and Rennes), the paper's TTB = 30 s / TTA = 150 s, on
// a 1000× compressed clock — so thirty paper-minutes fit in under two
// wall-seconds. A chain of inter-site service dependencies ending in a
// cross-site cycle is deployed, health-checked with a typed group
// broadcast, used, abandoned, and reclaimed.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

// resolveService forwards "resolve" down a dependency chain.
func resolveService() *repro.Service {
	return repro.NewService(
		repro.Method("depend", func(ctx *repro.Context, dep repro.Value) (struct{}, error) {
			ctx.Store("dep", dep)
			return struct{}{}, nil
		}),
		repro.Method("resolve", func(ctx *repro.Context, hops int64) (int64, error) {
			dep := ctx.Load("dep")
			if dep.IsNull() || hops <= 0 {
				return hops, nil
			}
			fut, err := repro.CallTyped[int64](ctx, dep, "resolve", hops-1)
			if err != nil {
				return 0, err
			}
			return fut.Wait(10 * time.Minute)
		}),
		repro.Method("healthz", func(ctx *repro.Context, _ struct{}) (string, error) {
			return "ok from " + ctx.ID().String(), nil
		}),
	)
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	topo := repro.Grid5000().Scaled(16) // 4 + 3 + 3 nodes, real RTTs
	env := repro.NewEnv(repro.Config{
		TTB:     30 * time.Second,
		TTA:     150 * time.Second,
		Clock:   repro.ScaledClock(1000),
		Latency: topo.Latency,
		MaxComm: topo.MaxComm(),
	})
	defer env.Close()

	nodes := make([]*repro.Node, topo.NumNodes())
	for i := range nodes {
		nodes[i] = env.NewNode()
	}
	fmt.Printf("deployed %d nodes across 3 sites (max one-way latency %v)\n",
		len(nodes), topo.MaxComm())
	fmt.Printf("DGC: TTB=30s TTA=150s (paper values), clock x1000\n\n")

	// Chain across sites: bordeaux → sophia → rennes → bordeaux → ... and
	// close a cycle among the last three.
	const chainLen = 6
	handles := make([]*repro.Handle, chainLen)
	for i := range handles {
		node := nodes[(i*4)%len(nodes)] // hop across the site blocks
		handles[i] = node.NewActive(fmt.Sprintf("svc-%d", i), resolveService())
	}
	for i := 0; i < chainLen-1; i++ {
		depend := repro.NewStub[repro.Value, struct{}](handles[i], "depend")
		if _, err := depend.CallSync(handles[i+1].Ref(), 5*time.Minute); err != nil {
			return err
		}
	}
	// Feedback edge: the tail depends on the middle — a cross-site cycle.
	depend := repro.NewStub[repro.Value, struct{}](handles[chainLen-1], "depend")
	if _, err := depend.CallSync(handles[chainLen/2].Ref(), 5*time.Minute); err != nil {
		return err
	}

	// A typed group broadcast health-checks the whole deployment in one
	// fan-out. The group takes ownership of the handles: releasing it
	// below is what abandons the deployment.
	group := repro.NewGroup[struct{}, string]("healthz", handles...)
	fg, err := group.Broadcast(struct{}{})
	if err != nil {
		return err
	}
	replies, err := fg.WaitAll(10 * time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("health broadcast over %d services: %d ok (e.g. %q)\n",
		group.Size(), len(replies), replies[0])

	// Resolve down the chain, stopping before the feedback edge: the
	// cross-site cycle exists purely as stored references (that is what
	// the DGC must deal with), never as a call cycle — calling through it
	// would be a classic active-object wait-by-necessity deadlock.
	start := env.Clock().Now()
	resolve := repro.NewStub[int64, int64](handles[0], "resolve")
	left, err := resolve.CallSync(chainLen-1, 30*time.Minute)
	if err != nil {
		return err
	}
	fmt.Printf("resolve across the grid: %d hops left after the chain, took %v of grid time\n",
		left, env.Clock().Now().Sub(start).Round(time.Second))

	fmt.Println("\nabandoning the deployment (releasing the group's handles)")
	group.Release()
	wall := time.Now()
	took, err := env.WaitCollected(0, time.Hour)
	if err != nil {
		return err
	}
	fmt.Printf("all %d services reclaimed in %v of grid time (%v wall): %v\n",
		chainLen, took.Round(time.Second), time.Since(wall).Round(time.Millisecond),
		env.Stats().Collected)
	return nil
}
