// Command pipeline builds a cyclic stream-processing topology on the
// typed v2 API: stages forward items down the line and the last stage
// reports back to the first (a feedback edge closing a distributed
// cycle). Such graphs are exactly what reference-listing DGCs leak; here
// the whole ring is reclaimed automatically once the stream ends and the
// client departs.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro"
)

const stages = 4

// wireReq connects a stage to its successor.
type wireReq struct {
	Next repro.Value `wire:"next"`
	Last bool        `wire:"last"`
}

// stageService tags the payload with the stage name and forwards it; the
// final stage accumulates into its state and pings the head through the
// feedback edge.
func stageService(name string) *repro.Service {
	return repro.NewService(
		repro.Method("wire", func(ctx *repro.Context, req wireReq) (struct{}, error) {
			ctx.Store("next", req.Next)
			ctx.Store("last", repro.Bool(req.Last))
			return struct{}{}, nil
		}),
		repro.Method("item", func(ctx *repro.Context, payload string) (struct{}, error) {
			payload += "→" + name
			if ctx.Load("last").AsBool() {
				// Tail of the ring: record, and ping the head through the
				// feedback edge to prove the cycle is live.
				seen := ctx.Load("seen")
				items := make([]repro.Value, 0, seen.Len()+1)
				for i := 0; i < seen.Len(); i++ {
					items = append(items, seen.At(i))
				}
				items = append(items, repro.String(payload))
				ctx.Store("seen", repro.List(items...))
				return struct{}{}, repro.SendTyped(ctx, ctx.Load("next"), "fed-back", struct{}{})
			}
			return struct{}{}, repro.SendTyped(ctx, ctx.Load("next"), "item", payload)
		}),
		repro.Method("fed-back", func(ctx *repro.Context, _ struct{}) (struct{}, error) {
			return struct{}{}, nil
		}),
		repro.Method("drain", func(ctx *repro.Context, _ struct{}) ([]string, error) {
			seen := ctx.Load("seen")
			out := make([]string, seen.Len())
			for i := range out {
				out[i] = seen.At(i).AsString()
			}
			return out, nil
		}),
	)
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()

	handles := make([]*repro.Handle, stages)
	for i := range handles {
		node := env.NewNode()
		handles[i] = node.NewActive(fmt.Sprintf("stage-%d", i),
			stageService(fmt.Sprintf("s%d", i)))
	}
	// Wire the ring: stage i → stage i+1, last stage → stage 0 (feedback).
	for i, h := range handles {
		wire := repro.NewStub[wireReq, struct{}](h, "wire")
		next := handles[(i+1)%stages]
		if _, err := wire.CallSync(wireReq{Next: next.Ref(), Last: i == stages-1}, 5*time.Second); err != nil {
			return fmt.Errorf("wire: %w", err)
		}
	}

	fmt.Printf("streaming items through a %d-stage ring with a feedback edge...\n", stages)
	feed := repro.NewStub[string, struct{}](handles[0], "item")
	for i := 0; i < 5; i++ {
		if err := feed.Send(fmt.Sprintf("item%d", i)); err != nil {
			return err
		}
	}
	// Give the stream a moment to drain, then read the tail.
	time.Sleep(200 * time.Millisecond)
	drain := repro.NewStub[struct{}, []string](handles[stages-1], "drain")
	out, err := drain.CallSync(struct{}{}, 5*time.Second)
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Printf("tail stage saw %d items:\n", len(out))
	for _, item := range out {
		fmt.Println("  ", item)
	}
	if len(out) > 0 && !strings.Contains(out[0], "s0→s1") {
		return fmt.Errorf("pipeline order broken: %v", out[0])
	}

	fmt.Println("\nstream over; detaching — the feedback ring is cyclic garbage now")
	for _, h := range handles {
		h.Release()
	}
	took, err := env.WaitCollected(0, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("ring reclaimed in %v: %v\n", took.Round(time.Millisecond), env.Stats().Collected)
	return nil
}
