// Command pipeline builds a cyclic stream-processing topology: stages
// forward items down the line and the last stage reports back to the
// first (a feedback edge closing a distributed cycle). Such graphs are
// exactly what reference-listing DGCs leak; here the whole ring is
// reclaimed automatically once the stream ends and the client departs.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro"
)

const stages = 4

// stageBehavior uppercases/marks the payload and forwards it to the next
// stage; the final stage accumulates into its state.
func stageBehavior(name string) repro.BehaviorFunc {
	return func(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
		switch method {
		case "wire":
			// args: {next: ref, last: bool}
			ctx.Store("next", args.Get("next"))
			ctx.Store("last", args.Get("last"))
			return repro.Null(), nil
		case "item":
			payload := args.AsString() + "→" + name
			if ctx.Load("last").AsBool() {
				// Tail of the ring: record, and ping the head through the
				// feedback edge to prove the cycle is live.
				seen := ctx.Load("seen")
				items := make([]repro.Value, 0, seen.Len()+1)
				for i := 0; i < seen.Len(); i++ {
					items = append(items, seen.At(i))
				}
				items = append(items, repro.String(payload))
				ctx.Store("seen", repro.List(items...))
				return repro.Null(), ctx.Send(ctx.Load("next"), "fed-back", repro.Null())
			}
			return repro.Null(), ctx.Send(ctx.Load("next"), "item", repro.String(payload))
		case "fed-back":
			return repro.Null(), nil
		case "drain":
			return ctx.Load("seen"), nil
		default:
			return repro.Null(), fmt.Errorf("unknown method %q", method)
		}
	}
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()

	handles := make([]*repro.Handle, stages)
	for i := range handles {
		node := env.NewNode()
		handles[i] = node.NewActive(fmt.Sprintf("stage-%d", i),
			stageBehavior(fmt.Sprintf("s%d", i)))
	}
	// Wire the ring: stage i → stage i+1, last stage → stage 0 (feedback).
	for i, h := range handles {
		next := handles[(i+1)%stages]
		wireArgs := repro.Dict(map[string]repro.Value{
			"next": next.Ref(),
			"last": repro.Bool(i == stages-1),
		})
		if _, err := h.CallSync("wire", wireArgs, 5*time.Second); err != nil {
			return fmt.Errorf("wire: %w", err)
		}
	}

	fmt.Printf("streaming items through a %d-stage ring with a feedback edge...\n", stages)
	for i := 0; i < 5; i++ {
		if err := handles[0].Send("item", repro.String(fmt.Sprintf("item%d", i))); err != nil {
			return err
		}
	}
	// Give the stream a moment to drain, then read the tail.
	time.Sleep(200 * time.Millisecond)
	out, err := handles[stages-1].CallSync("drain", repro.Null(), 5*time.Second)
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Printf("tail stage saw %d items:\n", out.Len())
	for i := 0; i < out.Len(); i++ {
		fmt.Println("  ", out.At(i).AsString())
	}
	if out.Len() > 0 && !strings.Contains(out.At(0).AsString(), "s0→s1") {
		return fmt.Errorf("pipeline order broken: %v", out.At(0))
	}

	fmt.Println("\nstream over; detaching — the feedback ring is cyclic garbage now")
	for _, h := range handles {
		h.Release()
	}
	took, err := env.WaitCollected(0, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("ring reclaimed in %v: %v\n", took.Round(time.Millisecond), env.Stats().Collected)
	return nil
}
