// Command pipeline builds a stream-processing chain on first-class
// futures (paper §5–§6): every stage hands its caller the *future* of the
// downstream stage's result and is immediately free for the next item —
// no stage ever waits on another, the whole chain pipelines, and
// wait-by-necessity happens exactly once, at the client that finally
// reads the value. The last stage keeps a feedback reference to the first
// (closing a distributed cycle), so when the client departs the whole
// ring is cyclic garbage that only a complete DGC can reclaim.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro"
)

const stages = 4

// wireReq connects a stage to its successor.
type wireReq struct {
	Next repro.Value `wire:"next"`
	Last bool        `wire:"last"`
}

// stageService tags the payload with the stage name and *forwards the
// future*: a non-final stage calls downstream and returns the unresolved
// TypedFuture as its own result. The runtime flattens the chain, so the
// client's single future resolves to the final string.
func stageService(name string) *repro.Service {
	return repro.NewService(
		repro.Method("wire", func(ctx *repro.Context, req wireReq) (struct{}, error) {
			ctx.Store("next", req.Next)
			ctx.Store("last", repro.Bool(req.Last))
			return struct{}{}, nil
		}),
		repro.Method("process", func(ctx *repro.Context, payload string) (*repro.TypedFuture[string], error) {
			payload += "→" + name
			if ctx.Load("last").AsBool() {
				// Tail of the chain: ping the head through the feedback
				// edge (keeping the cycle live) and resolve the whole
				// forwarded chain with the concrete value.
				if err := repro.SendTyped(ctx, ctx.Load("next"), "fed-back", struct{}{}); err != nil {
					return nil, err
				}
				done, err := repro.CallTyped[string](ctx, ctx.Self(), "finish", payload)
				return done, err
			}
			// Forward: call downstream and return its future without
			// waiting — this stage is free for the next item right away.
			return repro.CallTyped[string](ctx, ctx.Load("next"), "process", payload)
		}),
		repro.Method("finish", func(ctx *repro.Context, payload string) (string, error) {
			return payload, nil
		}),
		repro.Method("fed-back", func(ctx *repro.Context, _ struct{}) (struct{}, error) {
			return struct{}{}, nil
		}),
	)
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()

	handles := make([]*repro.Handle, stages)
	for i := range handles {
		node := env.NewNode()
		handles[i] = node.NewActive(fmt.Sprintf("stage-%d", i),
			stageService(fmt.Sprintf("s%d", i)))
	}
	// Wire the chain: stage i → stage i+1, last stage → stage 0 (feedback).
	for i, h := range handles {
		wire := repro.NewStub[wireReq, struct{}](h, "wire")
		next := handles[(i+1)%stages]
		if _, err := wire.CallSync(wireReq{Next: next.Ref(), Last: i == stages-1}, 5*time.Second); err != nil {
			return fmt.Errorf("wire: %w", err)
		}
	}

	fmt.Printf("streaming items through a %d-stage chain on forwarded futures...\n", stages)
	process := repro.NewStub[string, string](handles[0], "process")
	// Fire every item asynchronously: with forwarded futures no stage
	// blocks on a downstream stage, so all items are in flight across all
	// stages at once. The only Wait calls in this whole program are the
	// client's, below.
	futs := make([]*repro.TypedFuture[string], 5)
	for i := range futs {
		fut, err := process.Call(fmt.Sprintf("item%d", i))
		if err != nil {
			return err
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		out, err := fut.Wait(10 * time.Second)
		if err != nil {
			return fmt.Errorf("item%d: %w", i, err)
		}
		fmt.Println("  ", out)
		if !strings.Contains(out, "s0→s1→s2→s3") {
			return fmt.Errorf("pipeline order broken: %v", out)
		}
	}

	fmt.Println("\nstream over; detaching — the feedback ring is cyclic garbage now")
	for _, h := range handles {
		h.Release()
	}
	took, err := env.WaitCollected(0, 30*time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("ring reclaimed in %v: %v\n", took.Round(time.Millisecond), env.Stats().Collected)
	return nil
}
