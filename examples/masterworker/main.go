// Command masterworker runs the paper's motivating deployment shape on
// first-class futures: a master activity farms work units out to workers
// on several nodes — and hands the *futures* of their results straight
// back to the client instead of collecting them itself. The master is
// free again the moment dispatch ends (it never waits on a worker);
// wait-by-necessity happens at the client, the final holder of the
// forwarded futures. The graph is cyclic (master ↔ workers via
// callbacks), so when the client lets go the whole deployment vanishes
// through the complete DGC — *automatic termination*, no shutdown
// protocol.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro"
)

const (
	workers  = 6
	segments = 48 // work units: numeric integration segments
)

// segment is one work unit: integrate f(x) = 4/(1+x²) over [Lo, Hi] (the
// classic π-by-quadrature microbenchmark).
type segment struct {
	Lo float64 `wire:"lo"`
	Hi float64 `wire:"hi"`
}

// adoptReq hands the master its worker pool; the refs make the master
// reference every worker in the DGC graph.
type adoptReq struct {
	Pool []repro.Value `wire:"pool"`
}

// workerService integrates segments and, on "meet", stores a reference
// back to the master — closing the distributed master/worker cycle that
// only a complete DGC can reclaim.
func workerService() *repro.Service {
	return repro.NewService(
		repro.Method("meet", func(ctx *repro.Context, master repro.Value) (struct{}, error) {
			ctx.Store("home", master)
			return struct{}{}, nil
		}),
		repro.Method("integrate", func(ctx *repro.Context, seg segment) (float64, error) {
			const steps = 200_000
			h := (seg.Hi - seg.Lo) / steps
			var sum float64
			for i := 0; i < steps; i++ {
				x := seg.Lo + (float64(i)+0.5)*h
				sum += 4 / (1 + x*x) * h
			}
			return sum, nil
		}),
	)
}

// masterService owns the worker pool. "dispatch" fans the segments out
// and returns the workers' futures — it does not wait for a single one.
func masterService() *repro.Service {
	return repro.NewService(
		repro.Method("adopt", func(ctx *repro.Context, req adoptReq) (int64, error) {
			ctx.Store("pool", repro.List(req.Pool...))
			for _, w := range req.Pool {
				if err := repro.SendTyped(ctx, w, "meet", ctx.Self()); err != nil {
					return 0, err
				}
			}
			return int64(len(req.Pool)), nil
		}),
		repro.Method("dispatch", func(ctx *repro.Context, _ struct{}) ([]*repro.TypedFuture[float64], error) {
			pool := ctx.Load("pool")
			if pool.Len() == 0 {
				return nil, fmt.Errorf("no workers adopted")
			}
			futs := make([]*repro.TypedFuture[float64], 0, segments)
			for s := 0; s < segments; s++ {
				w := pool.At(s % pool.Len())
				fut, err := repro.CallTyped[float64](ctx, w, "integrate", segment{
					Lo: float64(s) / segments,
					Hi: float64(s+1) / segments,
				})
				if err != nil {
					return nil, err
				}
				futs = append(futs, fut)
			}
			// First-class futures as return values: the whole batch of
			// unresolved results travels back to the caller; the master is
			// immediately free to serve the next request.
			return futs, nil
		}),
		repro.Method("ping", func(ctx *repro.Context, _ struct{}) (bool, error) {
			return true, nil
		}),
	)
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()

	// One node for the master, the workers spread over three more.
	masterNode := env.NewNode()
	workerNodes := []*repro.Node{env.NewNode(), env.NewNode(), env.NewNode()}

	master := masterNode.NewActive("master", masterService())
	refs := make([]repro.Value, workers)
	handles := make([]*repro.Handle, workers)
	for i := 0; i < workers; i++ {
		handles[i] = workerNodes[i%len(workerNodes)].NewActive(
			fmt.Sprintf("worker-%d", i), workerService())
		refs[i] = handles[i].Ref()
	}

	adopt := repro.NewStub[adoptReq, int64](master, "adopt")
	if _, err := adopt.CallSync(adoptReq{Pool: refs}, 10*time.Second); err != nil {
		return fmt.Errorf("adopt: %w", err)
	}
	// The deployer's own worker references are no longer needed: the
	// master holds the pool now.
	for _, h := range handles {
		h.Release()
	}

	start := time.Now()
	dispatch := repro.NewStub[struct{}, []repro.FutureRef](master, "dispatch")
	parts, err := dispatch.CallSync(struct{}{}, time.Minute)
	if err != nil {
		return fmt.Errorf("dispatch: %w", err)
	}
	dispatched := time.Since(start)

	// The master already answers again while the workers are still
	// integrating: it forwarded the futures instead of waiting on them.
	if ok, err := repro.NewStub[struct{}, bool](master, "ping").CallSync(struct{}{}, 5*time.Second); err != nil || !ok {
		return fmt.Errorf("master busy after dispatch: %v", err)
	}

	// Wait-by-necessity at the final holder: the client sums the segment
	// futures; each Wait blocks only until that worker's result arrives.
	var pi float64
	for i, fr := range parts {
		fut, err := master.Future(repro.FutureVal(fr))
		if err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
		part, err := repro.Typed[float64](fut).Wait(time.Minute)
		if err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
		pi += part
	}
	fmt.Printf("π ≈ %.12f  (error %.2e, %d segments on %d workers; dispatch returned in %v, total %v)\n",
		pi, math.Abs(pi-math.Pi), segments, workers,
		dispatched.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))

	fmt.Println("\nreleasing the master — no explicit shutdown of any worker")
	master.Release()
	took, err := env.WaitCollected(0, 30*time.Second)
	if err != nil {
		return err
	}
	st := env.Stats()
	fmt.Printf("master + %d workers reclaimed automatically in %v: %v\n",
		workers, took.Round(time.Millisecond), st.Collected)
	return nil
}
