// Command masterworker runs the paper's motivating deployment shape: a
// master activity farming work units out to workers on several nodes and
// folding their results, with *automatic termination* — once the result
// has been read and the client lets go, the whole master/worker graph
// (which is cyclic: the master references the workers and every worker
// references the master for its callbacks) vanishes through the DGC
// instead of requiring an explicit shutdown protocol.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro"
)

const (
	workers  = 6
	segments = 48 // work units: numeric integration segments
)

// workerBehavior integrates f(x) = 4/(1+x²) over a segment (the classic
// π-by-quadrature microbenchmark).
func workerBehavior(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
	if method == "meet" {
		// Hold a reference back to the master: the master/worker graph is
		// now a distributed cycle, collectable only by the complete DGC.
		ctx.Store("home", args)
		return repro.Null(), nil
	}
	if method != "integrate" {
		return repro.Null(), fmt.Errorf("unknown method %q", method)
	}
	lo := args.Get("lo").AsFloat()
	hi := args.Get("hi").AsFloat()
	const steps = 200_000
	h := (hi - lo) / steps
	var sum float64
	for i := 0; i < steps; i++ {
		x := lo + (float64(i)+0.5)*h
		sum += 4 / (1 + x*x) * h
	}
	return repro.Float(sum), nil
}

// masterBehavior owns the worker pool and serves "compute".
func masterBehavior(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
	switch method {
	case "adopt":
		ctx.Store("pool", args) // the master now references every worker
		for i := 0; i < args.Len(); i++ {
			if err := ctx.Send(args.At(i), "meet", ctx.Self()); err != nil {
				return repro.Null(), err
			}
		}
		return repro.Int(int64(args.Len())), nil
	case "compute":
		pool := ctx.Load("pool")
		if pool.Len() == 0 {
			return repro.Null(), fmt.Errorf("no workers adopted")
		}
		futs := make([]*repro.Future, 0, segments)
		for s := 0; s < segments; s++ {
			w := pool.At(s % pool.Len())
			fut, err := ctx.Call(w, "integrate", repro.Dict(map[string]repro.Value{
				"lo": repro.Float(float64(s) / segments),
				"hi": repro.Float(float64(s+1) / segments),
			}))
			if err != nil {
				return repro.Null(), err
			}
			futs = append(futs, fut)
		}
		var pi float64
		for _, fut := range futs {
			v, err := fut.Wait(time.Minute)
			if err != nil {
				return repro.Null(), err
			}
			pi += v.AsFloat()
		}
		return repro.Float(pi), nil
	default:
		return repro.Null(), fmt.Errorf("unknown method %q", method)
	}
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	env := repro.NewEnv(repro.Config{})
	defer env.Close()

	// One node for the master, the workers spread over three more.
	masterNode := env.NewNode()
	workerNodes := []*repro.Node{env.NewNode(), env.NewNode(), env.NewNode()}

	master := masterNode.NewActive("master", repro.BehaviorFunc(masterBehavior))
	refs := make([]repro.Value, workers)
	handles := make([]*repro.Handle, workers)
	for i := 0; i < workers; i++ {
		handles[i] = workerNodes[i%len(workerNodes)].NewActive(
			fmt.Sprintf("worker-%d", i), repro.BehaviorFunc(workerBehavior))
		refs[i] = handles[i].Ref()
	}

	if _, err := master.CallSync("adopt", repro.List(refs...), 10*time.Second); err != nil {
		return fmt.Errorf("adopt: %w", err)
	}
	// The deployer's own worker references are no longer needed: the
	// master holds the pool now.
	for _, h := range handles {
		h.Release()
	}

	start := time.Now()
	out, err := master.CallSync("compute", repro.Null(), time.Minute)
	if err != nil {
		return fmt.Errorf("compute: %w", err)
	}
	pi := out.AsFloat()
	fmt.Printf("π ≈ %.12f  (error %.2e, %d segments on %d workers, %v)\n",
		pi, math.Abs(pi-math.Pi), segments, workers, time.Since(start).Round(time.Millisecond))

	fmt.Println("\nreleasing the master — no explicit shutdown of any worker")
	master.Release()
	took, err := env.WaitCollected(0, 30*time.Second)
	if err != nil {
		return err
	}
	st := env.Stats()
	fmt.Printf("master + %d workers reclaimed automatically in %v: %v\n",
		workers, took.Round(time.Millisecond), st.Collected)
	return nil
}
