// Command quickstart shows the headline capability of the library: a
// distributed cycle of activities that no code ever terminates explicitly,
// reclaimed automatically by the complete DGC — something the RMI-style
// reference-listing collectors structurally cannot do.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	// A three-node system with default (compressed) DGC timing:
	// TTB = 30ms, standing in for the paper's 30s.
	env := repro.NewEnv(repro.Config{})
	defer env.Close()
	nodes := []*repro.Node{env.NewNode(), env.NewNode(), env.NewNode()}

	// Each member stores a reference to the next under "next".
	member := repro.BehaviorFunc(
		func(ctx *repro.Context, method string, args repro.Value) (repro.Value, error) {
			switch method {
			case "link":
				ctx.Store("next", args)
				return repro.Null(), nil
			case "greet":
				return repro.String("hello from " + ctx.ID().String()), nil
			default:
				return repro.Null(), fmt.Errorf("unknown method %q", method)
			}
		})

	fmt.Println("creating a cycle of 3 activities across 3 nodes...")
	handles := make([]*repro.Handle, 3)
	for i := range handles {
		handles[i] = nodes[i].NewActive(fmt.Sprintf("member-%d", i), member)
	}
	for i, h := range handles {
		next := handles[(i+1)%len(handles)]
		if _, err := h.CallSync("link", next.Ref(), 5*time.Second); err != nil {
			return fmt.Errorf("link: %w", err)
		}
	}

	out, err := handles[0].CallSync("greet", repro.Null(), 5*time.Second)
	if err != nil {
		return fmt.Errorf("greet: %w", err)
	}
	fmt.Println("call through the public API:", out.AsString())
	fmt.Println("live activities:", env.LiveActivities())

	fmt.Println("\nreleasing all external handles — the cycle is now garbage")
	for _, h := range handles {
		h.Release()
	}

	start := time.Now()
	took, err := env.WaitCollected(0, 30*time.Second)
	if err != nil {
		return err
	}
	st := env.Stats()
	fmt.Printf("all %d activities collected in %v (wall %v)\n",
		st.Created, took.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	for reason, n := range st.Collected {
		fmt.Printf("  %-18s %d\n", reason.String()+":", n)
	}
	fmt.Println("\nan RMI-style DGC would have leaked this cycle forever (see internal/rmidgc).")
	return nil
}
