// Command quickstart shows the headline capability of the library through
// the typed v2 API: a distributed cycle of activities that no code ever
// terminates explicitly, reclaimed automatically by the complete DGC —
// something the RMI-style reference-listing collectors structurally
// cannot do.
//
// It also makes one raw dynamic-dispatch call against the same service:
// a *Service is a Behavior, so the stringly-typed wire substrate the
// typed layer rides on remains fully usable.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
)

// linkReq hands a member the reference to its successor. The wire.Value
// ref travels as an explicit Ref node, so the deserialization hook
// records the member→next edge in the DGC's reference graph.
type linkReq struct {
	Next repro.Value `wire:"next"`
}

type greetResp struct {
	From string `wire:"from"`
}

// memberService declares the typed interface of one cycle member.
func memberService() *repro.Service {
	return repro.NewService(
		repro.Method("link", func(ctx *repro.Context, req linkReq) (struct{}, error) {
			ctx.Store("next", req.Next)
			return struct{}{}, nil
		}),
		repro.Method("greet", func(ctx *repro.Context, _ struct{}) (greetResp, error) {
			return greetResp{From: ctx.ID().String()}, nil
		}),
	)
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println(err)
		os.Exit(1)
	}
}

func run() error {
	// A three-node system with default (compressed) DGC timing:
	// TTB = 30ms, standing in for the paper's 30s.
	env := repro.NewEnv(repro.Config{})
	defer env.Close()
	nodes := []*repro.Node{env.NewNode(), env.NewNode(), env.NewNode()}

	fmt.Println("creating a cycle of 3 activities across 3 nodes...")
	handles := make([]*repro.Handle, 3)
	for i := range handles {
		handles[i] = nodes[i].NewActive(fmt.Sprintf("member-%d", i), memberService())
	}
	for i, h := range handles {
		link := repro.NewStub[linkReq, struct{}](h, "link")
		next := handles[(i+1)%len(handles)]
		if _, err := link.CallSync(linkReq{Next: next.Ref()}, 5*time.Second); err != nil {
			return fmt.Errorf("link: %w", err)
		}
	}

	greet := repro.NewStub[struct{}, greetResp](handles[0], "greet")
	resp, err := greet.CallSync(struct{}{}, 5*time.Second)
	if err != nil {
		return fmt.Errorf("greet: %w", err)
	}
	fmt.Println("typed call through the public API:", "hello from "+resp.From)

	// The dynamic substrate still works against the same activity: raw
	// method-name dispatch with hand-built wire values.
	raw, err := handles[1].CallSync("greet", repro.Null(), 5*time.Second)
	if err != nil {
		return fmt.Errorf("dynamic greet: %w", err)
	}
	fmt.Println("dynamic call through the same service:", "hello from "+raw.Get("from").AsString())
	fmt.Println("live activities:", env.LiveActivities())

	fmt.Println("\nreleasing all external handles — the cycle is now garbage")
	for _, h := range handles {
		h.Release()
	}

	start := time.Now()
	took, err := env.WaitCollected(0, 30*time.Second)
	if err != nil {
		return err
	}
	st := env.Stats()
	fmt.Printf("all %d activities collected in %v (wall %v)\n",
		st.Created, took.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	for reason, n := range st.Collected {
		fmt.Printf("  %-18s %d\n", reason.String()+":", n)
	}
	fmt.Println("\nan RMI-style DGC would have leaked this cycle forever (see internal/rmidgc).")
	return nil
}
