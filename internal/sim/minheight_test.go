package sim

import (
	"testing"
	"time"

	"repro/internal/ids"
)

// treeHeight walks parent chains at the end of a run and returns the
// maximum depth observed (0 = owner only).
func treeHeight(acts []*Activity) int {
	byID := make(map[ids.ActivityID]*Activity, len(acts))
	for _, a := range acts {
		byID[a.ID()] = a
	}
	max := 0
	for _, a := range acts {
		depth := 0
		cur := a
		seen := map[ids.ActivityID]bool{}
		for !cur.Collector().Parent().IsNil() && !seen[cur.ID()] {
			seen[cur.ID()] = true
			next, ok := byID[cur.Collector().Parent()]
			if !ok {
				break
			}
			cur = next
			depth++
		}
		if depth > max {
			max = depth
		}
	}
	return max
}

// completeGraph builds an idle complete reference graph of n activities.
func completeGraph(w *World, n int) []*Activity {
	acts := make([]*Activity, n)
	for i := range acts {
		acts[i] = w.NewActivity(ids.NodeID(i%8 + 1))
	}
	for i := range acts {
		for j := range acts {
			if i != j {
				acts[i].Link(acts[j].ID())
			}
		}
	}
	return acts
}

// TestMinHeightTreeConvergesToDepthOne: in a complete graph every member
// references the clock owner directly, so under the §7.2 extension every
// non-owner must end up with the owner as parent (depth 1).
func TestMinHeightTreeConvergesToDepthOne(t *testing.T) {
	w := NewWorld(Config{
		TTB:           30 * time.Second,
		TTA:           150 * time.Second,
		Seed:          4,
		MinHeightTree: true,
	})
	acts := completeGraph(w, 10)
	ok, _ := w.RunUntilCollected(len(acts), 4*time.Hour)
	if !ok {
		t.Fatalf("complete graph not collected: %d", w.Collected())
	}
	// Identify the final owner.
	owner := acts[0].Collector().Clock().Owner
	for _, a := range acts {
		p := a.Collector().Parent()
		if a.ID() == owner {
			if !p.IsNil() {
				t.Fatalf("owner %v has parent %v", owner, p)
			}
			continue
		}
		if p != owner {
			t.Fatalf("member %v parent = %v, want the owner %v (depth 1)", a.ID(), p, owner)
		}
	}
	if h := treeHeight(acts); h != 1 {
		t.Fatalf("tree height = %d, want 1", h)
	}
}

// TestMinHeightTreeStillSafeAndLive: the re-parenting must not break
// collection or safety on mixed graphs.
func TestMinHeightTreeStillSafeAndLive(t *testing.T) {
	w := NewWorld(Config{
		TTB:           30 * time.Second,
		TTA:           150 * time.Second,
		Seed:          9,
		MinHeightTree: true,
	})
	root := w.NewActivity(1)
	root.SetBusy()
	cycle := buildRing(w, 8)
	extra := w.NewActivity(2)
	extra.Link(cycle[0].ID())
	cycle[0].Link(extra.ID())
	root.Link(cycle[3].ID())
	w.RunFor(2 * time.Hour)
	for i, a := range cycle {
		if a.Terminated() {
			t.Fatalf("live cycle member %d collected under min-height trees", i)
		}
	}
	root.Unlink(cycle[3].ID())
	w.RunFor(4 * time.Hour)
	for i, a := range cycle {
		if !a.Terminated() {
			t.Fatalf("garbage cycle member %d not collected under min-height trees", i)
		}
	}
	if !extra.Terminated() {
		t.Fatal("attached garbage not collected")
	}
}

// TestMinHeightFasterOnDenseGraphs compares detection latency on a dense
// graph: shallower trees shorten the conjunction path to the originator,
// so collection completes in no more beats than with fastest-response
// adoption (usually fewer).
func TestMinHeightFasterOnDenseGraphs(t *testing.T) {
	run := func(minHeight bool) time.Duration {
		var worst time.Duration
		for seed := int64(1); seed <= 5; seed++ {
			w := NewWorld(Config{
				TTB:           30 * time.Second,
				TTA:           150 * time.Second,
				Seed:          seed,
				MinHeightTree: minHeight,
			})
			acts := completeGraph(w, 16)
			ok, took := w.RunUntilCollected(len(acts), 8*time.Hour)
			if !ok {
				t.Fatal("not collected")
			}
			if took > worst {
				worst = took
			}
		}
		return worst
	}
	base := run(false)
	shallow := run(true)
	if shallow > base {
		t.Fatalf("min-height trees slower on dense graph: %v vs %v", shallow, base)
	}
}
