package sim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
)

// buildRing creates an idle n-ring spread over 8 nodes.
func buildRing(w *World, n int) []*Activity {
	ring := make([]*Activity, n)
	for i := range ring {
		ring[i] = w.NewActivity(ids.NodeID(i%8 + 1))
	}
	for i := range ring {
		ring[i].Link(ring[(i+1)%n].ID())
	}
	return ring
}

// TestAdaptiveBeatsCollectFasterThanBase: with §7.1 adaptation enabled,
// garbage suspicion accelerates the consensus traversal, so a garbage
// ring collects in less virtual time than under the fixed base beat —
// while a busy activity's beat slows down, saving messages.
func TestAdaptiveBeatsCollectFasterThanBase(t *testing.T) {
	const n = 16
	run := func(adaptive bool) time.Duration {
		cfg := Config{
			TTB:  60 * time.Second,
			TTA:  300 * time.Second,
			Seed: 5,
		}
		if adaptive {
			cfg.Adaptive = core.Adaptive{
				Enabled: true,
				MinTTB:  15 * time.Second,
				MaxTTB:  60 * time.Second,
			}
			base := core.Config{TTB: cfg.TTB, TTA: cfg.TTA}
			if err := cfg.Adaptive.Validate(base, 0); err != nil {
				t.Fatal(err)
			}
		}
		w := NewWorld(cfg)
		ring := buildRing(w, n)
		_ = ring
		ok, took := w.RunUntilCollected(n, 24*time.Hour)
		if !ok {
			t.Fatalf("ring not collected (adaptive=%v)", adaptive)
		}
		return took
	}
	fixed := run(false)
	adapted := run(true)
	if adapted >= fixed {
		t.Fatalf("adaptive (%v) not faster than fixed (%v)", adapted, fixed)
	}
}

// TestAdaptiveBusySlowsBeat: a busy activity under adaptation sends
// fewer heartbeats per unit time than under the fixed beat.
func TestAdaptiveBusySlowsBeat(t *testing.T) {
	count := func(adaptive bool) uint64 {
		cfg := Config{TTB: 60 * time.Second, TTA: 300 * time.Second, Seed: 2}
		if adaptive {
			cfg.Adaptive = core.Adaptive{Enabled: true, MinTTB: 15 * time.Second, MaxTTB: 120 * time.Second}
		}
		w := NewWorld(cfg)
		busy := w.NewActivity(1)
		busy.SetBusy()
		target := w.NewActivity(2)
		busy.Link(target.ID())
		w.RunFor(4 * time.Hour)
		if target.Terminated() {
			t.Fatal("referenced activity collected while busy root beats (even slowly)")
		}
		return w.Traffic().DGCMessages
	}
	fixed := count(false)
	adapted := count(true)
	if adapted >= fixed {
		t.Fatalf("adaptive busy beat not cheaper: %d vs %d messages", adapted, fixed)
	}
}

// TestAdaptiveSafetyUnderMutation reruns a mutation scenario with
// adaptation on: the live cycle must survive, the garbage must go.
func TestAdaptiveSafetyUnderMutation(t *testing.T) {
	cfg := Config{
		TTB:  60 * time.Second,
		TTA:  300 * time.Second,
		Seed: 11,
		Adaptive: core.Adaptive{
			Enabled: true,
			MinTTB:  15 * time.Second,
			MaxTTB:  120 * time.Second,
		},
	}
	w := NewWorld(cfg)
	root := w.NewActivity(1)
	root.SetBusy()
	a := w.NewActivity(2)
	b := w.NewActivity(3)
	a.Link(b.ID())
	b.Link(a.ID())
	root.Link(a.ID())
	w.RunFor(2 * time.Hour)
	if a.Terminated() || b.Terminated() {
		t.Fatal("live cycle collected under adaptive beats")
	}
	root.Unlink(a.ID())
	w.RunFor(4 * time.Hour)
	if !a.Terminated() || !b.Terminated() {
		t.Fatal("garbage cycle not collected under adaptive beats")
	}
}
