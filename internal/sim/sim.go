// Package sim drives the core DGC state machines at paper scale on the
// deterministic discrete-event engine. Where internal/active runs real
// goroutines with real (scaled) time — exposing the implementation to true
// concurrency — sim models activities as scripted state machines over
// virtual time, which makes the 6 401-activity, 18 000-second torture run
// of Fig. 10 exact, fast and reproducible.
//
// The two harnesses share the algorithm: both drive internal/core
// collectors through the same five entry points (DESIGN.md §6).
package sim

import (
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ids"
)

// Wire sizes used for traffic accounting, matching the live runtime's
// envelopes: a DGC message payload is the 8-byte target header plus the
// fixed-size message; the response rides back on the same connection.
const (
	dgcMessageBytes  = 8 + core.MessageWireSize
	dgcResponseBytes = core.ResponseWireSize
)

// Config parameterizes a World.
type Config struct {
	// TTB and TTA are the DGC parameters (§3.1), in virtual time.
	TTB time.Duration
	TTA time.Duration
	// Latency is the one-way inter-node latency (nil = zero).
	Latency func(a, b ids.NodeID) time.Duration
	// Seed drives all randomness (beat phases, workload scripts).
	Seed int64
	// DisableConsensusPropagation ablates the §4.3 dying wave.
	DisableConsensusPropagation bool
	// Adaptive enables the §7.1 dynamic beat period.
	Adaptive core.Adaptive
	// MinHeightTree enables the §7.2 shallow-tree extension.
	MinHeightTree bool
	// SampleEvery is the sampling period of the idle/collected time
	// series (default: TTB).
	SampleEvery time.Duration
	// OnEvent receives collector trace events.
	OnEvent func(core.Event)
}

// Traffic is the accounted inter-node traffic of a run.
type Traffic struct {
	// DGCBytes counts DGC messages and responses.
	DGCBytes uint64
	// DGCMessages counts DGC message/response payloads.
	DGCMessages uint64
	// AppBytes counts application request payloads.
	AppBytes uint64
	// AppMessages counts application requests.
	AppMessages uint64
}

// Sample is one point of the Fig. 10 curves.
type Sample struct {
	// T is virtual time since the world started.
	T time.Duration
	// Idle is the number of live activities currently idle.
	Idle int
	// Collected is the cumulative number of terminated activities.
	Collected int
}

// World is one simulated distributed system.
type World struct {
	eng   *des.Engine
	cfg   Config
	start time.Time

	gens map[ids.NodeID]*ids.Generator
	acts map[ids.ActivityID]*Activity
	all  []*Activity

	collected int
	reasons   map[core.Reason]int
	traffic   Traffic
	samples   []Sample
	sampling  bool
}

// NewWorld creates an empty world at virtual time zero.
func NewWorld(cfg Config) *World {
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = cfg.TTB
	}
	start := time.Unix(0, 0)
	return &World{
		eng:     des.New(start, cfg.Seed),
		cfg:     cfg,
		start:   start,
		gens:    make(map[ids.NodeID]*ids.Generator),
		acts:    make(map[ids.ActivityID]*Activity),
		reasons: make(map[core.Reason]int),
	}
}

// Engine exposes the underlying event engine (for workload scripts).
func (w *World) Engine() *des.Engine { return w.eng }

// Now returns the current virtual time offset.
func (w *World) Now() time.Duration { return w.eng.Now().Sub(w.start) }

// Traffic returns the accounted traffic so far.
func (w *World) Traffic() Traffic { return w.traffic }

// Samples returns the recorded idle/collected curve.
func (w *World) Samples() []Sample { return w.samples }

// Collected returns the number of terminated activities.
func (w *World) Collected() int { return w.collected }

// CollectedBy returns termination counts per reason.
func (w *World) CollectedBy() map[core.Reason]int {
	out := make(map[core.Reason]int, len(w.reasons))
	for k, v := range w.reasons {
		out[k] = v
	}
	return out
}

// Live returns the number of live activities.
func (w *World) Live() int { return len(w.all) - w.collected }

// IdleCount returns the number of live idle activities.
func (w *World) IdleCount() int {
	var n int
	for _, a := range w.all {
		if !a.terminated && a.idle {
			n++
		}
	}
	return n
}

// Activity is one simulated active object.
type Activity struct {
	w         *World
	id        ids.ActivityID
	node      ids.NodeID
	collector *core.Collector

	idle       bool
	terminated bool
	reason     core.Reason
	// pinnedBusy marks a permanent root (registered activity / dummy
	// handle, §4.1): serving requests never returns it to idleness.
	pinnedBusy bool

	// service queue: pending request bodies, served sequentially.
	pending []func()
	serving bool
	// serviceTime applies per request.
	serviceTime time.Duration
}

// NewActivity creates an activity on node, idle, with its heartbeat phase
// randomized within one TTB (real deployments' beats are unsynchronized).
func (w *World) NewActivity(node ids.NodeID) *Activity {
	gen, ok := w.gens[node]
	if !ok {
		gen = ids.NewGenerator(node)
		w.gens[node] = gen
	}
	a := &Activity{
		w:           w,
		id:          gen.Next(),
		node:        node,
		idle:        true,
		serviceTime: 10 * time.Millisecond,
	}
	cfg := core.Config{
		TTB:                         w.cfg.TTB,
		TTA:                         w.cfg.TTA,
		DisableConsensusPropagation: w.cfg.DisableConsensusPropagation,
		Adaptive:                    w.cfg.Adaptive,
		MinHeightTree:               w.cfg.MinHeightTree,
		OnEvent:                     w.cfg.OnEvent,
	}
	a.collector = core.New(a.id, cfg, func() bool { return a.idle }, w.eng.Now())
	w.acts[a.id] = a
	w.all = append(w.all, a)
	phase := time.Duration(w.eng.Rand().Int63n(int64(w.cfg.TTB) + 1))
	w.eng.After(phase, a.beat)
	return a
}

// ID returns the activity identifier.
func (a *Activity) ID() ids.ActivityID { return a.id }

// Node returns the hosting node.
func (a *Activity) Node() ids.NodeID { return a.node }

// Collector exposes the DGC state machine.
func (a *Activity) Collector() *core.Collector { return a.collector }

// Terminated reports whether the activity has been collected.
func (a *Activity) Terminated() bool { return a.terminated }

// Reason returns why the activity terminated.
func (a *Activity) Reason() core.Reason { return a.reason }

// Idle reports the current idleness.
func (a *Activity) Idle() bool { return a.idle }

// SetServiceTime sets the per-request service duration.
func (a *Activity) SetServiceTime(d time.Duration) { a.serviceTime = d }

// SetBusy pins the activity busy (a root) until SetIdle is called; serving
// requests does not unpin it.
func (a *Activity) SetBusy() {
	a.idle = false
	a.pinnedBusy = true
}

// SetIdle unpins a busy activity and returns it to idleness, performing
// the becoming-idle clock increment.
func (a *Activity) SetIdle() {
	a.pinnedBusy = false
	if a.terminated || a.idle {
		return
	}
	a.idle = true
	a.collector.BecomeIdle(a.w.eng.Now())
}

// Link records that a references target (stub deserialized).
func (a *Activity) Link(target ids.ActivityID) {
	if a.terminated {
		return
	}
	a.collector.AddReferenced(target, a.w.eng.Now())
}

// Unlink records that a's last stub of target died at a local collection.
func (a *Activity) Unlink(target ids.ActivityID) {
	if a.terminated {
		return
	}
	a.collector.LostReferenced(target, a.w.eng.Now())
}

// latency returns the one-way latency between two nodes.
func (w *World) latency(a, b ids.NodeID) time.Duration {
	if a == b || w.cfg.Latency == nil {
		return 0
	}
	return w.cfg.Latency(a, b)
}

// Request models an application request from one activity to another:
// after the network latency the recipient becomes busy, serves for its
// service time while running fn (which typically mutates links), then
// drains its queue and reports idleness. Request payload bytes are
// accounted when crossing nodes.
func (w *World) Request(from, to *Activity, payloadBytes int, fn func()) {
	if from.node != to.node {
		w.traffic.AppBytes += uint64(payloadBytes)
		w.traffic.AppMessages++
	}
	w.eng.After(w.latency(from.node, to.node), func() {
		if to.terminated {
			return
		}
		to.deliver(fn)
	})
}

func (a *Activity) deliver(fn func()) {
	a.pending = append(a.pending, fn)
	a.idle = false
	if !a.serving {
		a.serveNext()
	}
}

func (a *Activity) serveNext() {
	if a.terminated || len(a.pending) == 0 {
		a.serving = false
		if !a.terminated && !a.idle && !a.pinnedBusy {
			a.idle = true
			a.collector.BecomeIdle(a.w.eng.Now())
		}
		return
	}
	a.serving = true
	fn := a.pending[0]
	a.pending = a.pending[1:]
	a.w.eng.After(a.serviceTime, func() {
		if a.terminated {
			return
		}
		if fn != nil {
			fn()
		}
		a.serveNext()
	})
}

// beat runs one heartbeat for the activity and reschedules itself.
func (a *Activity) beat() {
	if a.terminated {
		return
	}
	w := a.w
	res := a.collector.Tick(w.eng.Now())
	if res.Terminated {
		a.terminated = true
		a.reason = res.Reason
		w.collected++
		w.reasons[res.Reason]++
		return
	}
	for _, ob := range res.Messages {
		ob := ob
		dst, ok := w.acts[ob.To]
		if !ok {
			continue
		}
		crossNode := dst.node != a.node
		if crossNode {
			w.traffic.DGCBytes += dgcMessageBytes
			w.traffic.DGCMessages++
		}
		w.eng.After(w.latency(a.node, dst.node), func() {
			if dst.terminated {
				return
			}
			resp := dst.collector.HandleMessage(ob.Msg, w.eng.Now())
			if crossNode {
				w.traffic.DGCBytes += dgcResponseBytes
				w.traffic.DGCMessages++
			}
			w.eng.After(w.latency(dst.node, a.node), func() {
				if a.terminated {
					return
				}
				a.collector.HandleResponse(ob.To, resp, w.eng.Now())
			})
		})
	}
	next := res.NextBeat
	if next <= 0 {
		next = w.cfg.TTB
	}
	w.eng.After(next, a.beat)
}

// StartSampling begins recording the idle/collected time series.
func (w *World) StartSampling() {
	if w.sampling {
		return
	}
	w.sampling = true
	var tick func()
	tick = func() {
		w.samples = append(w.samples, Sample{
			T:         w.Now(),
			Idle:      w.IdleCount(),
			Collected: w.collected,
		})
		w.eng.After(w.cfg.SampleEvery, tick)
	}
	w.eng.After(0, tick)
}

// RunFor advances virtual time by d.
func (w *World) RunFor(d time.Duration) {
	w.eng.RunFor(d)
}

// RunUntilCollected runs until at least want activities terminated or
// until maxTime virtual time has passed; it reports whether the target was
// reached and the virtual time spent.
func (w *World) RunUntilCollected(want int, maxTime time.Duration) (bool, time.Duration) {
	begin := w.Now()
	deadline := w.eng.Now().Add(maxTime - begin)
	for w.collected < want && w.eng.Pending() > 0 && w.eng.Now().Before(deadline) {
		w.eng.Step()
	}
	return w.collected >= want, w.Now() - begin
}
