package sim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/ids"
)

// TestAsyncRandomGraphSafetyAndLiveness is the asynchronous counterpart
// of core's synchronous property test: random reference graphs over the
// Grid'5000 latency matrix, unsynchronized beats, random model-legal
// mutations spread over virtual time. Invariants:
//
//   - safety: an activity reachable from a pinned-busy activity is never
//     collected;
//   - liveness: once mutations stop, every garbage activity is collected.
//
// Mutations follow the paper's model: only a busy holder of a reference
// can hand it to an activity it references (the §3.1 hand-off, performed
// through an actual Request so the recipient serves it and ticks its
// clock); edges drop at any time; busy activities may go idle; idle ones
// never spontaneously wake.
func TestAsyncRandomGraphSafetyAndLiveness(t *testing.T) {
	topo := grid.Grid5000()
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		w := NewWorld(Config{
			TTB:     30 * time.Second,
			TTA:     150 * time.Second,
			Seed:    seed,
			Latency: topo.Latency,
		})

		n := 4 + r.Intn(10)
		acts := make([]*Activity, n)
		busy := make([]bool, n)
		edges := make([]map[int]int, n) // multiset of edges i→j
		for i := range acts {
			acts[i] = w.NewActivity(ids.NodeID(r.Intn(topo.NumNodes()) + 1))
			edges[i] = make(map[int]int)
			if r.Intn(3) == 0 {
				acts[i].SetBusy()
				busy[i] = true
			}
		}
		link := func(i, j int) {
			acts[i].Link(acts[j].ID())
			edges[i][j]++
		}
		unlink := func(i, j int) {
			if edges[i][j] == 0 {
				return
			}
			edges[i][j]--
			if edges[i][j] == 0 {
				delete(edges[i], j)
				acts[i].Unlink(acts[j].ID())
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Intn(4) == 0 {
					link(i, j)
				}
			}
		}

		live := func() map[int]bool {
			out := make(map[int]bool)
			var stack []int
			for i, b := range busy {
				if b {
					out[i] = true
					stack = append(stack, i)
				}
			}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for to := range edges[cur] {
					if !out[to] {
						out[to] = true
						stack = append(stack, to)
					}
				}
			}
			return out
		}
		checkSafety := func(phase string) {
			t.Helper()
			liveSet := live()
			for i, a := range acts {
				if liveSet[i] && a.Terminated() {
					t.Fatalf("seed %d %s: SAFETY violated: live activity %d collected (%v)",
						seed, phase, i, a.Reason())
				}
			}
		}

		// Mutation phase: ~40 virtual minutes with scattered events.
		for step := 0; step < 25; step++ {
			w.RunFor(time.Duration(30+r.Intn(90)) * time.Second)
			switch r.Intn(4) {
			case 0: // drop a random edge
				i := r.Intn(n)
				for j := range edges[i] {
					unlink(i, j)
					break
				}
			case 1: // a busy activity goes idle
				i := r.Intn(n)
				if busy[i] {
					busy[i] = false
					acts[i].SetIdle()
				}
			case 2: // busy holder hands a reference to an activity it references
				giver := r.Intn(n)
				if busy[giver] && !acts[giver].Terminated() {
					var outs []int
					for j := range edges[giver] {
						outs = append(outs, j)
					}
					if len(outs) >= 2 {
						recipient := outs[r.Intn(len(outs))]
						given := outs[r.Intn(len(outs))]
						if recipient != giver && !acts[recipient].Terminated() {
							rec, gv := recipient, given
							w.Request(acts[giver], acts[rec], 64, func() {
								if !acts[rec].Terminated() {
									acts[rec].Link(acts[gv].ID())
								}
							})
							edges[rec][gv]++
						}
					}
				}
			default:
			}
			checkSafety("mutating")
		}

		// Quiescent phase: everything garbage must go.
		w.RunFor(time.Duration(n) * 20 * time.Minute)
		checkSafety("quiescent")
		liveSet := live()
		for i, a := range acts {
			if !liveSet[i] && !a.Terminated() {
				t.Fatalf("seed %d: LIVENESS violated: garbage %d not collected (%v)",
					seed, i, a.Collector())
			}
		}
	}
}
