package sim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/ids"
)

func cfg() Config {
	return Config{
		TTB:  30 * time.Second,
		TTA:  150 * time.Second,
		Seed: 1,
	}
}

func TestAcyclicCollection(t *testing.T) {
	w := NewWorld(cfg())
	a := w.NewActivity(1)
	w.RunFor(10 * time.Minute)
	if !a.Terminated() || a.Reason() != core.ReasonAcyclic {
		t.Fatalf("lone idle activity: terminated=%v reason=%v", a.Terminated(), a.Reason())
	}
}

func TestBusyRootSurvives(t *testing.T) {
	w := NewWorld(cfg())
	a := w.NewActivity(1)
	a.SetBusy()
	w.RunFor(30 * time.Minute)
	if a.Terminated() {
		t.Fatal("busy root collected")
	}
}

func TestHeartbeatKeepsAlive(t *testing.T) {
	w := NewWorld(cfg())
	root := w.NewActivity(1)
	root.SetBusy()
	b := w.NewActivity(2)
	root.Link(b.ID())
	w.RunFor(30 * time.Minute)
	if b.Terminated() {
		t.Fatal("referenced activity collected while root heartbeats")
	}
	root.Unlink(b.ID())
	w.RunFor(10 * time.Minute)
	if !b.Terminated() {
		t.Fatal("activity not collected after edge drop")
	}
}

func TestCrossNodeCycleCollectedWithLatency(t *testing.T) {
	topo := grid.Grid5000()
	w := NewWorld(Config{
		TTB:     30 * time.Second,
		TTA:     150 * time.Second,
		Seed:    7,
		Latency: topo.Latency,
	})
	// A 6-cycle spread over nodes on all three sites.
	nodes := []ids.NodeID{1, 50, 90, 2, 51, 91}
	acts := make([]*Activity, len(nodes))
	for i, n := range nodes {
		acts[i] = w.NewActivity(n)
	}
	for i := range acts {
		acts[i].Link(acts[(i+1)%len(acts)].ID())
	}
	ok, took := w.RunUntilCollected(len(acts), time.Hour)
	if !ok {
		t.Fatalf("cycle not collected within an hour; collected=%d", w.Collected())
	}
	// O(h·TTB) + TTA (§4.3): h ≤ 6 here, allow generous slack.
	if took > 30*time.Minute {
		t.Fatalf("collection took %v, want O(h*TTB)+TTA ≪ 30m", took)
	}
	if w.Traffic().DGCBytes == 0 {
		t.Fatal("no DGC traffic accounted for a cross-node cycle")
	}
}

func TestIntraNodeTrafficNotAccounted(t *testing.T) {
	w := NewWorld(cfg())
	a := w.NewActivity(1)
	b := w.NewActivity(1)
	a.Link(b.ID())
	b.Link(a.ID())
	w.RunFor(20 * time.Minute)
	if !a.Terminated() || !b.Terminated() {
		t.Fatal("intra-node cycle not collected")
	}
	if tr := w.Traffic(); tr.DGCBytes != 0 || tr.AppBytes != 0 {
		t.Fatalf("intra-node traffic accounted: %+v", tr)
	}
}

func TestRequestMakesBusyThenIdle(t *testing.T) {
	w := NewWorld(cfg())
	from := w.NewActivity(1)
	from.SetBusy()
	to := w.NewActivity(2)
	to.SetServiceTime(5 * time.Second)
	var served bool
	w.Request(from, to, 100, func() { served = true })
	w.RunFor(2 * time.Second)
	if to.Idle() {
		t.Fatal("recipient idle while request pending/being served")
	}
	w.RunFor(time.Minute)
	if !served {
		t.Fatal("request body never ran")
	}
	if !to.Idle() {
		t.Fatal("recipient did not return to idleness")
	}
	if w.Traffic().AppBytes != 100 {
		t.Fatalf("app bytes = %d, want 100", w.Traffic().AppBytes)
	}
}

func TestRequestQueueServesSequentially(t *testing.T) {
	w := NewWorld(cfg())
	from := w.NewActivity(1)
	from.SetBusy()
	to := w.NewActivity(2)
	to.SetServiceTime(10 * time.Second)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		w.Request(from, to, 1, func() { order = append(order, i) })
	}
	w.RunFor(25 * time.Second)
	if len(order) != 2 { // 2 services of 10s each fit in 25s
		t.Fatalf("served %d requests in 25s with 10s service time, want 2", len(order))
	}
	w.RunFor(time.Minute)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("service order = %v", order)
	}
}

func TestBusyWhileServingBlocksCollection(t *testing.T) {
	// A cycle where one member keeps receiving work from a busy outsider
	// is never collected; once the stream stops, it is.
	w := NewWorld(cfg())
	ext := w.NewActivity(1)
	ext.SetBusy()
	a := w.NewActivity(2)
	b := w.NewActivity(3)
	a.Link(b.ID())
	b.Link(a.ID())
	ext.Link(a.ID())
	// Send work every 60s for 20 minutes.
	for i := 0; i < 20; i++ {
		i := i
		w.Engine().After(time.Duration(i)*time.Minute, func() {
			w.Request(ext, a, 10, nil)
		})
	}
	w.RunFor(21 * time.Minute)
	if a.Terminated() || b.Terminated() {
		t.Fatal("cycle collected while receiving work")
	}
	ext.Unlink(a.ID())
	w.RunFor(30 * time.Minute)
	if !a.Terminated() || !b.Terminated() {
		t.Fatalf("cycle not collected after stream stopped: a=%v b=%v",
			a.Collector(), b.Collector())
	}
}

func TestSamplesRecordCurve(t *testing.T) {
	w := NewWorld(cfg())
	w.StartSampling()
	a := w.NewActivity(1)
	b := w.NewActivity(2)
	a.Link(b.ID())
	b.Link(a.ID())
	w.RunFor(20 * time.Minute)
	samples := w.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples recorded")
	}
	last := samples[len(samples)-1]
	if last.Collected != 2 {
		t.Fatalf("last sample collected = %d, want 2", last.Collected)
	}
	// The curve must be monotone in Collected.
	for i := 1; i < len(samples); i++ {
		if samples[i].Collected < samples[i-1].Collected {
			t.Fatal("collected curve not monotone")
		}
	}
	if w.Live() != 0 || w.IdleCount() != 0 {
		t.Fatalf("live=%d idle=%d after full collection", w.Live(), w.IdleCount())
	}
	if w.CollectedBy()[core.ReasonCyclic] < 1 {
		t.Fatalf("collected-by = %v, want a cyclic consensus", w.CollectedBy())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, Traffic, time.Duration) {
		topo := grid.Grid5000()
		w := NewWorld(Config{
			TTB: 30 * time.Second, TTA: 150 * time.Second, Seed: 99,
			Latency: topo.Latency,
		})
		acts := make([]*Activity, 30)
		for i := range acts {
			acts[i] = w.NewActivity(ids.NodeID(i%8 + 1))
		}
		for i := range acts {
			acts[i].Link(acts[(i+1)%len(acts)].ID())
			if i%3 == 0 {
				acts[i].Link(acts[(i+7)%len(acts)].ID())
			}
		}
		ok, took := w.RunUntilCollected(len(acts), 4*time.Hour)
		if !ok {
			t.Fatal("not collected")
		}
		return w.Collected(), w.Traffic(), took
	}
	c1, t1, d1 := run()
	c2, t2, d2 := run()
	if c1 != c2 || t1 != t2 || d1 != d2 {
		t.Fatalf("non-deterministic: (%d %+v %v) vs (%d %+v %v)", c1, t1, d1, c2, t2, d2)
	}
}

// TestTTAFormulaRace reproduces the §3.1 worst case: activity A hands its
// reference of B to C just before A's stub of B is collected; C broadcasts
// just after. With TTA > 2·TTB + MaxComm the reference survives the
// hand-off.
func TestTTAFormulaRace(t *testing.T) {
	topo := grid.Grid5000()
	w := NewWorld(Config{
		TTB: 30 * time.Second, TTA: 150 * time.Second, Seed: 3,
		Latency: topo.Latency,
	})
	a := w.NewActivity(1)
	a.SetBusy()
	b := w.NewActivity(60) // another site
	c := w.NewActivity(100)
	c.SetBusy()
	a.Link(b.ID())

	// Let the graph settle, then perform the racy hand-off: A sends C the
	// reference (request), and A's own stub dies immediately after.
	w.RunFor(5 * time.Minute)
	w.Request(a, c, 64, func() {
		c.Link(b.ID())
	})
	a.Unlink(b.ID())

	// B must survive the whole race window and beyond, since C (busy root)
	// now holds it.
	w.RunFor(30 * time.Minute)
	if b.Terminated() {
		t.Fatal("B was collected during a legal reference hand-off (TTA formula violated)")
	}
	// And once C drops it, B goes.
	c.Unlink(b.ID())
	w.RunFor(15 * time.Minute)
	if !b.Terminated() {
		t.Fatal("B not collected after the last reference died")
	}
}

// TestTightTTABreaks shows the formula is load-bearing: with TTA below
// 2·TTB the same hand-off loses the activity (the paper's hard real-time
// caveat, §4.2).
func TestTightTTABreaks(t *testing.T) {
	w := NewWorld(Config{
		TTB:  30 * time.Second,
		TTA:  31 * time.Second, // violates TTA > 2*TTB + MaxComm
		Seed: 3,
	})
	a := w.NewActivity(1)
	a.SetBusy()
	b := w.NewActivity(2)
	a.Link(b.ID())
	w.RunFor(5 * time.Minute)
	// Drop and immediately re-link from a fresh holder that beats late.
	c := w.NewActivity(3)
	c.SetBusy()
	a.Unlink(b.ID())
	// c acquires the ref but its first beat can be a full TTB away — too
	// late for b's tight TTA.
	c.Link(b.ID())
	w.RunFor(30 * time.Minute)
	if !b.Terminated() {
		t.Skip("race did not trigger with this seed/phase; acceptable (misbehaviour is possible, not guaranteed)")
	}
	// b was wrongly collected although c still references it — exactly the
	// malfunction the formula prevents.
}
