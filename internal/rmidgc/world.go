package rmidgc

import (
	"time"

	"repro/internal/des"
	"repro/internal/ids"
)

// World is a small DES harness for the baseline, mirroring internal/sim's
// shape so the leak benchmark can run both side by side.
type World struct {
	eng  *des.Engine
	cfg  Config
	gens map[ids.NodeID]*ids.Generator
	acts map[ids.ActivityID]*Activity
	all  []*Activity

	collected int
	// DirtyBytes counts cross-node renewal traffic.
	DirtyBytes uint64
	latency    func(a, b ids.NodeID) time.Duration
}

// Activity is one simulated active object under the baseline collector.
type Activity struct {
	w          *World
	id         ids.ActivityID
	node       ids.NodeID
	idle       bool
	collector  *Collector
	terminated bool
}

// NewWorld creates a baseline world.
func NewWorld(cfg Config, seed int64, latency func(a, b ids.NodeID) time.Duration) *World {
	return &World{
		eng:     des.New(time.Unix(0, 0), seed),
		cfg:     cfg,
		gens:    make(map[ids.NodeID]*ids.Generator),
		acts:    make(map[ids.ActivityID]*Activity),
		latency: latency,
	}
}

// NewActivity creates an idle activity on node.
func (w *World) NewActivity(node ids.NodeID) *Activity {
	gen, ok := w.gens[node]
	if !ok {
		gen = ids.NewGenerator(node)
		w.gens[node] = gen
	}
	a := &Activity{w: w, node: node, idle: true}
	a.id = gen.Next()
	a.collector = New(a.id, w.cfg, func() bool { return a.idle }, w.eng.Now())
	w.acts[a.id] = a
	w.all = append(w.all, a)
	phase := time.Duration(w.eng.Rand().Int63n(int64(w.cfg.RenewEvery) + 1))
	w.eng.After(phase, a.tick)
	return a
}

// ID returns the activity identifier.
func (a *Activity) ID() ids.ActivityID { return a.id }

// Terminated reports collection.
func (a *Activity) Terminated() bool { return a.terminated }

// SetBusy pins the activity busy.
func (a *Activity) SetBusy() { a.idle = false }

// SetIdle makes the activity idle.
func (a *Activity) SetIdle() { a.idle = true }

// Link records a reference.
func (a *Activity) Link(target ids.ActivityID) {
	a.collector.AddReferenced(target, a.w.eng.Now())
}

// Unlink drops a reference.
func (a *Activity) Unlink(target ids.ActivityID) {
	a.collector.LostReferenced(target, a.w.eng.Now())
}

func (a *Activity) tick() {
	if a.terminated {
		return
	}
	w := a.w
	res := a.collector.Tick(w.eng.Now())
	if res.Terminated {
		a.terminated = true
		w.collected++
		return
	}
	for _, ob := range res.Renewals {
		ob := ob
		dst, ok := w.acts[ob.To]
		if !ok {
			continue
		}
		if dst.node != a.node {
			w.DirtyBytes += DirtyWireSize
		}
		var lat time.Duration
		if w.latency != nil && dst.node != a.node {
			lat = w.latency(a.node, dst.node)
		}
		w.eng.After(lat, func() {
			if !dst.terminated {
				dst.collector.HandleDirty(ob.Dirty, w.eng.Now())
			}
		})
	}
	w.eng.After(w.cfg.RenewEvery, a.tick)
}

// RunFor advances virtual time.
func (w *World) RunFor(d time.Duration) { w.eng.RunFor(d) }

// Collected returns the number of collected activities.
func (w *World) Collected() int { return w.collected }

// Live returns the number of surviving activities.
func (w *World) Live() int { return len(w.all) - w.collected }
