// Package rmidgc implements the comparison baseline: a reference-listing
// distributed garbage collector in the style of Java/RMI (Birrell's
// network objects), the most deployed DGC at the time of the paper (§1).
//
// Every referencer of an activity holds a lease and renews it
// periodically ("dirty" calls); the activity is collected when it is idle
// and every lease has expired ("clean" or silence). This collects exactly
// the acyclic garbage — reference listing is structurally unable to
// collect distributed cycles, which is the gap the paper's algorithm
// closes. The benchmark BenchmarkBaselineRMICycleLeak quantifies the leak.
package rmidgc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
)

// Config parameterizes a baseline collector.
type Config struct {
	// LeaseDuration is how long a referencer's lease lasts (RMI's
	// java.rmi.dgc.leaseValue, 1 minute by default then 1 hour, §4.2).
	LeaseDuration time.Duration
	// RenewEvery is the renewal period; RMI renews at half the lease.
	RenewEvery time.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.RenewEvery <= 0 || c.LeaseDuration <= 0 {
		return fmt.Errorf("rmidgc: periods must be positive: %+v", c)
	}
	if c.RenewEvery >= c.LeaseDuration {
		return fmt.Errorf("rmidgc: RenewEvery (%v) must be below LeaseDuration (%v)",
			c.RenewEvery, c.LeaseDuration)
	}
	return nil
}

// Dirty is a lease renewal message from a referencer.
type Dirty struct {
	Sender ids.ActivityID
}

// Clean is an explicit lease drop (the referencer's stub died).
type Clean struct {
	Sender ids.ActivityID
}

// Outbound is one scheduled renewal.
type Outbound struct {
	To    ids.ActivityID
	Dirty Dirty
}

// DirtyWireSize is the renewal payload size (sender + target headers),
// for traffic accounting comparable with the complete DGC's messages.
const DirtyWireSize = 16

// Collector is the per-activity baseline state machine.
type Collector struct {
	id   ids.ActivityID
	cfg  Config
	idle func() bool

	mu         sync.Mutex
	leases     map[ids.ActivityID]time.Time // referencer → expiry
	referenced map[ids.ActivityID]struct{}
	lastRenew  time.Time
	created    time.Time
	terminated bool
}

// New creates a baseline collector for activity id.
func New(id ids.ActivityID, cfg Config, idle func() bool, now time.Time) *Collector {
	return &Collector{
		id:         id,
		cfg:        cfg,
		idle:       idle,
		leases:     make(map[ids.ActivityID]time.Time),
		referenced: make(map[ids.ActivityID]struct{}),
		created:    now,
	}
}

// ID returns the owning activity.
func (c *Collector) ID() ids.ActivityID { return c.id }

// AddReferenced records a new outgoing reference (stub deserialized).
func (c *Collector) AddReferenced(target ids.ActivityID, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.referenced[target] = struct{}{}
}

// LostReferenced drops an outgoing reference; the baseline sends an
// explicit clean on the next tick by simply not renewing anymore (RMI
// sends clean calls; silence has the same effect within one lease).
func (c *Collector) LostReferenced(target ids.ActivityID, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.referenced, target)
}

// HandleDirty processes a lease renewal.
func (c *Collector) HandleDirty(d Dirty, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.terminated {
		return
	}
	c.leases[d.Sender] = now.Add(c.cfg.LeaseDuration)
}

// HandleClean processes an explicit lease drop.
func (c *Collector) HandleClean(cl Clean, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.leases, cl.Sender)
}

// TickResult is the outcome of one renewal period.
type TickResult struct {
	// Renewals are the dirty calls to send.
	Renewals []Outbound
	// Terminated reports the activity became collectable and was
	// destroyed: idle, no live lease, and past its initial grace period.
	Terminated bool
}

// Tick expires leases, decides termination, and schedules renewals.
func (c *Collector) Tick(now time.Time) TickResult {
	idle := c.idle()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.terminated {
		return TickResult{Terminated: true}
	}
	for ref, expiry := range c.leases {
		if now.After(expiry) {
			delete(c.leases, ref)
		}
	}
	// Initial grace: a fresh activity lives one lease before the empty
	// lease set may collect it (RMI exports start with an implicit lease).
	pastGrace := now.Sub(c.created) > c.cfg.LeaseDuration
	if idle && pastGrace && len(c.leases) == 0 {
		c.terminated = true
		return TickResult{Terminated: true}
	}
	out := make([]Outbound, 0, len(c.referenced))
	for target := range c.referenced {
		out = append(out, Outbound{To: target, Dirty: Dirty{Sender: c.id}})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To.Less(out[j].To) })
	return TickResult{Renewals: out}
}

// Terminated reports whether the activity was collected.
func (c *Collector) Terminated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.terminated
}

// Leases returns the current lease holders, sorted (for tests).
func (c *Collector) Leases() []ids.ActivityID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ids.ActivityID, 0, len(c.leases))
	for id := range c.leases {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
