package rmidgc

import (
	"testing"
	"time"
)

func cfg() Config {
	return Config{
		LeaseDuration: 60 * time.Second,
		RenewEvery:    30 * time.Second,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Config{LeaseDuration: time.Second, RenewEvery: time.Second}
	if err := bad.Validate(); err == nil {
		t.Fatal("renew >= lease must be rejected")
	}
	if err := (Config{}).Validate(); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

func TestAcyclicCollected(t *testing.T) {
	w := NewWorld(cfg(), 1, nil)
	a := w.NewActivity(1)
	w.RunFor(5 * time.Minute)
	if !a.Terminated() {
		t.Fatal("unreferenced idle activity not collected by the baseline")
	}
}

func TestLeaseKeepsAlive(t *testing.T) {
	w := NewWorld(cfg(), 1, nil)
	root := w.NewActivity(1)
	root.SetBusy()
	b := w.NewActivity(2)
	root.Link(b.ID())
	w.RunFor(30 * time.Minute)
	if b.Terminated() {
		t.Fatal("leased activity collected")
	}
	if got := b.collector.Leases(); len(got) != 1 || got[0] != root.ID() {
		t.Fatalf("leases = %v", got)
	}
	root.Unlink(b.ID())
	w.RunFor(10 * time.Minute)
	if !b.Terminated() {
		t.Fatal("activity not collected after lease lapsed")
	}
}

func TestBusyNeverCollected(t *testing.T) {
	w := NewWorld(cfg(), 1, nil)
	a := w.NewActivity(1)
	a.SetBusy()
	w.RunFor(time.Hour)
	if a.Terminated() {
		t.Fatal("busy activity collected")
	}
}

func TestChainCollectedInOrder(t *testing.T) {
	w := NewWorld(cfg(), 1, nil)
	a := w.NewActivity(1)
	b := w.NewActivity(2)
	c := w.NewActivity(3)
	root := w.NewActivity(4)
	root.SetBusy()
	root.Link(a.ID())
	a.Link(b.ID())
	b.Link(c.ID())
	w.RunFor(10 * time.Minute)
	if a.Terminated() || b.Terminated() || c.Terminated() {
		t.Fatal("live chain collected")
	}
	root.Unlink(a.ID())
	w.RunFor(30 * time.Minute)
	if !a.Terminated() || !b.Terminated() || !c.Terminated() {
		t.Fatalf("chain not fully collected: %v %v %v", a.Terminated(), b.Terminated(), c.Terminated())
	}
}

// TestCycleLeaks is the defining limitation of reference listing (§1): an
// unreachable cycle renews its own leases forever.
func TestCycleLeaks(t *testing.T) {
	w := NewWorld(cfg(), 1, nil)
	a := w.NewActivity(1)
	b := w.NewActivity(2)
	a.Link(b.ID())
	b.Link(a.ID())
	w.RunFor(4 * time.Hour)
	if a.Terminated() || b.Terminated() {
		t.Fatal("baseline collected a cycle: reference listing cannot do that")
	}
	if w.Live() != 2 || w.Collected() != 0 {
		t.Fatalf("live=%d collected=%d", w.Live(), w.Collected())
	}
	// And it keeps paying renewal traffic for the leak forever.
	if w.DirtyBytes == 0 {
		t.Fatal("no renewal traffic for the leaked cycle")
	}
}

func TestTerminatedStopsParticipating(t *testing.T) {
	w := NewWorld(cfg(), 1, nil)
	a := w.NewActivity(1)
	w.RunFor(5 * time.Minute)
	if !a.Terminated() {
		t.Fatal("setup: a must be collected")
	}
	res := a.collector.Tick(w.eng.Now())
	if !res.Terminated || len(res.Renewals) != 0 {
		t.Fatal("terminated collector must stay terminated and silent")
	}
	// Late messages are ignored.
	a.collector.HandleDirty(Dirty{Sender: a.ID()}, w.eng.Now())
	if got := a.collector.Leases(); len(got) != 0 {
		t.Fatalf("late dirty accepted: %v", got)
	}
}

func TestHandleClean(t *testing.T) {
	w := NewWorld(cfg(), 1, nil)
	root := w.NewActivity(1)
	root.SetBusy()
	b := w.NewActivity(2)
	root.Link(b.ID())
	w.RunFor(2 * time.Minute)
	if len(b.collector.Leases()) != 1 {
		t.Fatal("setup: lease expected")
	}
	// An explicit clean drops the lease immediately.
	b.collector.HandleClean(Clean{Sender: root.ID()}, w.eng.Now())
	root.Unlink(b.ID())
	w.RunFor(10 * time.Minute)
	if !b.Terminated() {
		t.Fatal("activity not collected after clean + silence")
	}
}
