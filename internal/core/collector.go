package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/lamport"
)

// Status is the collector's life-cycle state.
type Status uint8

// Collector statuses.
const (
	// StatusLive is the normal operating state.
	StatusLive Status = iota + 1
	// StatusDying means garbage has been established (a consensus was
	// reached, or the dying wave arrived); the activity stops
	// heartbeating, keeps answering DGC messages with ConsensusReached,
	// and terminates after TTA (§4.3 optimization).
	StatusDying
	// StatusTerminated means the activity has been destroyed.
	StatusTerminated
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusLive:
		return "live"
	case StatusDying:
		return "dying"
	case StatusTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Reason explains a termination.
type Reason uint8

// Termination reasons.
const (
	// ReasonNone means not terminated.
	ReasonNone Reason = iota
	// ReasonAcyclic: no DGC message for TTA — no referencer exists
	// anymore (§3.1).
	ReasonAcyclic
	// ReasonCyclic: this activity made the consensus on its own final
	// activity clock (§3.2) — it is the root of the reverse spanning tree.
	ReasonCyclic
	// ReasonNotified: a DGC response carried the dying wave (§4.3).
	ReasonNotified
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonAcyclic:
		return "acyclic"
	case ReasonCyclic:
		return "cyclic-consensus"
	case ReasonNotified:
		return "cyclic-notified"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Config parameterizes a Collector.
type Config struct {
	// TTB (TimeToBeat) is the heartbeat period (§3.1).
	TTB time.Duration
	// TTA (TimeToAlone) is the silence period after which an activity
	// deems itself unreferenced, and the grace period of the dying state.
	// Correctness requires TTA > 2·TTB + MaxComm (§3.1).
	TTA time.Duration
	// DisableConsensusPropagation turns off the §4.3 dying-wave
	// optimization: a consensus then terminates only the detecting
	// activity and sub-cycles must re-run the consensus. Used by the
	// ablation benchmark; production keeps this false.
	DisableConsensusPropagation bool
	// Adaptive enables the §7.1 dynamic beat period (see Adaptive).
	Adaptive Adaptive
	// MinHeightTree enables the §7.2 extension: responses carry the
	// responder's tree depth and an activity re-adopts a strictly
	// shallower parent when one answers, driving the reverse spanning
	// tree toward minimal height (faster consensus on dense graphs).
	// Re-parenting is safe: the parent only selects where the full
	// referencer conjunction is reported, and the consensus requires the
	// agreement to hold for a full round either way.
	MinHeightTree bool
	// OnEvent, if non-nil, receives trace events (used by cmd/cycles and
	// tests). Called synchronously with internal locks held: must not call
	// back into the collector.
	OnEvent func(Event)
}

// Validate checks the deadline formula against a known communication bound.
func (c Config) Validate(maxComm time.Duration) error {
	if c.TTB <= 0 {
		return fmt.Errorf("core: TTB must be positive, got %v", c.TTB)
	}
	if min := 2*c.TTB + maxComm; c.TTA <= min {
		return fmt.Errorf("core: TTA (%v) must exceed 2*TTB+MaxComm (%v)", c.TTA, min)
	}
	return nil
}

// EventKind enumerates trace events.
type EventKind uint8

// Trace event kinds.
const (
	EventClockAdvanced EventKind = iota + 1
	EventParentAdopted
	EventReferencerAdded
	EventReferencerExpired
	EventReferencedAdded
	EventReferencedLost
	EventConsensusDetected
	EventEnteredDying
	EventTerminated
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventClockAdvanced:
		return "clock-advanced"
	case EventParentAdopted:
		return "parent-adopted"
	case EventReferencerAdded:
		return "referencer-added"
	case EventReferencerExpired:
		return "referencer-expired"
	case EventReferencedAdded:
		return "referenced-added"
	case EventReferencedLost:
		return "referenced-lost"
	case EventConsensusDetected:
		return "consensus-detected"
	case EventEnteredDying:
		return "entered-dying"
	case EventTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	Time     time.Time
	Activity ids.ActivityID
	Kind     EventKind
	// Peer is the other activity involved, if any.
	Peer ids.ActivityID
	// Clock is the activity clock after the event.
	Clock lamport.Clock
	// Reason is set on EventTerminated and EventEnteredDying.
	Reason Reason
}

// Outbound is a DGC message scheduled by Tick for one referenced activity.
type Outbound struct {
	To  ids.ActivityID
	Msg Message
}

// TickResult is the outcome of one heartbeat.
type TickResult struct {
	// Messages are the DGC messages to broadcast, sorted by destination.
	Messages []Outbound
	// Terminated reports that the activity must be destroyed now.
	Terminated bool
	// EnteredDying reports that a consensus was established this tick and
	// the activity entered the dying grace period.
	EnteredDying bool
	// Reason qualifies Terminated or EnteredDying.
	Reason Reason
	// NextBeat is the period until the next Tick the driver should
	// schedule: the configured TTB, or an adapted period when Config.
	// Adaptive is enabled (§7.1). Zero when Terminated.
	NextBeat time.Duration
}

// referencerState is what an activity keeps about one referencer: only its
// ID (the map key), the clock and consensus of its last DGC message, and
// the reception time — O(1) per referencer (§4.3).
type referencerState struct {
	clock       lamport.Clock
	consensus   bool
	hasMessage  bool
	lastMessage time.Time
}

// referencedState is what an activity keeps about one referenced activity.
type referencedState struct {
	// lastResponse is the last DGC response received from it.
	lastResponse Response
	hasResponse  bool
	// sentOnce records that at least one DGC message was sent, satisfying
	// the "at least one DGC message at the next broadcast" rule for
	// quickly-collected references (§3.1).
	sentOnce bool
	// removeAfterSend marks a reference whose local stubs died before the
	// first message could be sent; the edge is dropped right after that
	// mandatory first send.
	removeAfterSend bool
}

// Collector is the per-activity DGC state machine. It is safe for
// concurrent use; the idleness probe passed to New must be non-blocking
// (typically an atomic read) and must not call back into the Collector.
type Collector struct {
	id   ids.ActivityID
	cfg  Config
	idle func() bool

	mu          sync.Mutex
	clock       lamport.Clock
	parent      ids.ActivityID // Nil when none
	parentDepth uint32         // the parent's distance to the originator
	referencers map[ids.ActivityID]*referencerState
	referenced  map[ids.ActivityID]*referencedState
	lastMessage time.Time
	status      Status
	reason      Reason
	dyingSince  time.Time
}

// New creates a collector for activity id. idle reports the middleware's
// local idleness notion (§3, "provided by the middleware"); permanent roots
// — registered activities and dummy referencer handles (§4.1) — simply
// always report false. now is the creation time; the TTA silence timer
// starts from it.
func New(id ids.ActivityID, cfg Config, idle func() bool, now time.Time) *Collector {
	return &Collector{
		id:   id,
		cfg:  cfg,
		idle: idle,
		// A fresh activity owns its own clock from the start so that it
		// can immediately originate a consensus once idle.
		clock:       lamport.Clock{}.Tick(id),
		parent:      ids.Nil,
		referencers: make(map[ids.ActivityID]*referencerState),
		referenced:  make(map[ids.ActivityID]*referencedState),
		lastMessage: now,
		status:      StatusLive,
	}
}

// ID returns the activity this collector belongs to.
func (c *Collector) ID() ids.ActivityID { return c.id }

func (c *Collector) emit(ev Event) {
	if c.cfg.OnEvent != nil {
		ev.Activity = c.id
		c.cfg.OnEvent(ev)
	}
}

// advanceClockLocked ticks the clock with self as owner and resets the
// spanning-tree parent (the owner is its own root).
func (c *Collector) advanceClockLocked(now time.Time) {
	c.clock = c.clock.Tick(c.id)
	c.parent = ids.Nil
	c.parentDepth = 0
	c.emit(Event{Time: now, Kind: EventClockAdvanced, Clock: c.clock})
}

// depthLocked is this activity's distance to the originator along the
// reverse spanning tree: 0 for the clock owner, parent's depth + 1 when a
// parent exists, and 0 (meaningless, HasParent=false) otherwise.
func (c *Collector) depthLocked() uint32 {
	if c.clock.Owner == c.id {
		return 0
	}
	if !c.parent.IsNil() {
		return c.parentDepth + 1
	}
	return 0
}

// BecomeIdle must be called by the middleware each time the activity's
// request queue drains and its thread goes back to waiting for requests —
// clock increment occasion #1 (§3.2).
func (c *Collector) BecomeIdle(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status != StatusLive {
		return
	}
	c.advanceClockLocked(now)
}

// AddReferenced records that this activity now holds a reference to
// target, typically because a stub was just deserialized (§2.2). It also
// guarantees that at least one DGC message will be sent to target even if
// the stub is collected before the next broadcast (§3.1).
// Self-references are tracked like any other edge; the activity then
// becomes its own referencer through the normal message flow.
func (c *Collector) AddReferenced(target ids.ActivityID, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status == StatusTerminated {
		return
	}
	d, ok := c.referenced[target]
	if !ok {
		c.referenced[target] = &referencedState{}
		c.emit(Event{Time: now, Kind: EventReferencedAdded, Peer: target})
		return
	}
	// The reference was re-acquired before the pending removal happened.
	d.removeAfterSend = false
}

// LostReferenced records that the local garbage collector reclaimed the
// last stub this activity held for target (the shared tag died, §2.2) —
// clock increment occasion #3 (§3.2, Fig. 6). If the mandatory first
// message has not been sent yet, the edge survives until just after it.
func (c *Collector) LostReferenced(target ids.ActivityID, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.referenced[target]
	if !ok || c.status != StatusLive {
		// A dying activity keeps its clock frozen; its edges no longer
		// matter since it has stopped broadcasting.
		return
	}
	if !d.sentOnce {
		d.removeAfterSend = true
		return
	}
	delete(c.referenced, target)
	c.emit(Event{Time: now, Kind: EventReferencedLost, Peer: target})
	c.advanceClockLocked(now)
}

// HandleMessage processes a DGC message (Algorithm 3) and returns the DGC
// response to send back over the same connection.
func (c *Collector) HandleMessage(msg Message, now time.Time) Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status == StatusTerminated {
		// A terminated activity no longer answers; the runtime normally
		// prevents this call. Respond with a dying-wave response so late
		// referencers converge.
		return Response{Clock: c.clock, HasParent: true, ConsensusReached: true}
	}
	if merged, advanced := lamport.Merge(c.clock, msg.Clock); advanced {
		c.clock = merged
		c.parent = ids.Nil
		c.parentDepth = 0
		c.emit(Event{Time: now, Kind: EventClockAdvanced, Clock: c.clock, Peer: msg.Sender})
	}
	r, ok := c.referencers[msg.Sender]
	if !ok {
		r = &referencerState{}
		c.referencers[msg.Sender] = r
		c.emit(Event{Time: now, Kind: EventReferencerAdded, Peer: msg.Sender})
	}
	r.clock = msg.Clock
	r.consensus = msg.Consensus
	r.hasMessage = true
	r.lastMessage = now
	c.lastMessage = now

	return Response{
		Clock:            c.clock,
		HasParent:        !c.parent.IsNil() || c.clock.Owner == c.id,
		ConsensusReached: c.status == StatusDying,
		Depth:            c.depthLocked(),
	}
}

// HandleResponse processes the DGC response ref returned for our last DGC
// message (Algorithm 4), and carries the dying wave (§4.3).
func (c *Collector) HandleResponse(from ids.ActivityID, resp Response, now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status == StatusTerminated {
		return
	}
	d, ok := c.referenced[from]
	if !ok {
		return // edge dropped while the exchange was in flight
	}
	d.lastResponse = resp
	d.hasResponse = true

	if resp.ConsensusReached && c.status == StatusLive && c.idle() && resp.Clock.Equal(c.clock) {
		// The dying wave: a referenced member of our cycle learned that
		// the consensus on our common final activity clock succeeded.
		c.enterDyingLocked(now, ReasonNotified)
		return
	}
	// Adopt a parent: only activities that do not own the clock need one,
	// only once, and only if the responder's tree is rooted (Alg. 4 with
	// the ≠ signs restored; see DESIGN.md §2).
	if resp.Clock.Equal(c.clock) && resp.HasParent && c.clock.Owner != c.id {
		switch {
		case c.parent.IsNil():
			c.parent = from
			c.parentDepth = resp.Depth
			c.emit(Event{Time: now, Kind: EventParentAdopted, Peer: from, Clock: c.clock})
		case c.parent == from:
			// Keep the depth of the existing parent fresh.
			c.parentDepth = resp.Depth
		case c.cfg.MinHeightTree && resp.Depth < c.parentDepth:
			// §7.2: re-adopt a strictly shallower parent.
			c.parent = from
			c.parentDepth = resp.Depth
			c.emit(Event{Time: now, Kind: EventParentAdopted, Peer: from, Clock: c.clock})
		}
	}
}

// agreeLocked is Algorithm 1: do all known referencers accept clock?
func (c *Collector) agreeLocked(clock lamport.Clock) bool {
	for _, r := range c.referencers {
		if !r.hasMessage || !r.clock.Equal(clock) || !r.consensus {
			return false
		}
	}
	return true
}

func (c *Collector) enterDyingLocked(now time.Time, reason Reason) {
	c.status = StatusDying
	c.reason = reason
	c.dyingSince = now
	c.emit(Event{Time: now, Kind: EventEnteredDying, Reason: reason, Clock: c.clock})
}

func (c *Collector) terminateLocked(now time.Time, reason Reason) {
	c.status = StatusTerminated
	c.reason = reason
	c.emit(Event{Time: now, Kind: EventTerminated, Reason: reason, Clock: c.clock})
}

// Tick runs one heartbeat (Algorithm 2): expire silent referencers, decide
// acyclic/cyclic termination, and compute the broadcast for every
// referenced activity. The middleware calls it every TTB and must then
// deliver the returned messages (feeding each response to HandleResponse)
// and destroy the activity if Terminated is set.
func (c *Collector) Tick(now time.Time) TickResult {
	idle := c.idle()

	c.mu.Lock()
	defer c.mu.Unlock()

	if c.status == StatusTerminated {
		return TickResult{Terminated: true, Reason: c.reason}
	}

	if c.status == StatusDying {
		// The §4.3 optimization: no more heartbeats; die after TTA. The
		// clock is frozen at the final activity clock so that the dying
		// wave (carried by our responses) keeps matching the referencers'
		// clocks; referencer expiry is irrelevant to a dying activity.
		if now.Sub(c.dyingSince) >= c.cfg.TTA {
			c.terminateLocked(now, c.reason)
			return TickResult{Terminated: true, Reason: c.reason}
		}
		return TickResult{NextBeat: c.cfg.TTB}
	}

	// Loss of a referencer — clock increment occasion #2 (§3.2, Fig. 5).
	for id, r := range c.referencers {
		if now.Sub(r.lastMessage) > c.cfg.TTA {
			delete(c.referencers, id)
			c.emit(Event{Time: now, Kind: EventReferencerExpired, Peer: id})
			c.advanceClockLocked(now)
		}
	}

	if idle {
		// Acyclic garbage: total silence for TTA (§3.1).
		if now.Sub(c.lastMessage) > c.cfg.TTA {
			c.terminateLocked(now, ReasonAcyclic)
			return TickResult{Terminated: true, Reason: ReasonAcyclic}
		}
		// Cyclic garbage: we own the final activity clock and the whole
		// recursive referencer closure accepted it (§3.2 "Making a
		// Consensus"). An empty referencer set is the acyclic case above,
		// never a consensus.
		if c.clock.Owner == c.id && len(c.referencers) > 0 && c.agreeLocked(c.clock) {
			c.emit(Event{Time: now, Kind: EventConsensusDetected, Clock: c.clock})
			if c.cfg.DisableConsensusPropagation {
				c.terminateLocked(now, ReasonCyclic)
				return TickResult{Terminated: true, Reason: ReasonCyclic}
			}
			c.enterDyingLocked(now, ReasonCyclic)
			return TickResult{EnteredDying: true, Reason: ReasonCyclic, NextBeat: c.cfg.TTB}
		}
	}

	// Broadcast (Algorithm 2's loop, with the ≠ signs restored). The
	// consensus bit sent to the spanning-tree parent carries the
	// conjunction over our direct referencers plus our local agreement;
	// to every other referenced activity only the local agreement is
	// reported (§3.2 "DGC Messages and Responses").
	out := make([]Outbound, 0, len(c.referenced))
	for dest, d := range c.referenced {
		consensus := idle &&
			d.hasResponse && d.lastResponse.Clock.Equal(c.clock) &&
			(c.clock.Owner == c.id || !c.parent.IsNil()) &&
			(c.parent != dest || c.agreeLocked(c.clock))
		out = append(out, Outbound{
			To:  dest,
			Msg: Message{Sender: c.id, Clock: c.clock, Consensus: consensus},
		})
		d.sentOnce = true
		if d.removeAfterSend {
			delete(c.referenced, dest)
			c.emit(Event{Time: now, Kind: EventReferencedLost, Peer: dest})
			c.advanceClockLocked(now)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].To.Less(out[j].To) })
	return TickResult{Messages: out, NextBeat: c.nextBeatLocked(idle)}
}

// Terminate forces the terminated state (explicit termination by the
// middleware, used by no-DGC baselines and shutdown paths).
func (c *Collector) Terminate(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status == StatusTerminated {
		return
	}
	c.terminateLocked(now, c.reason)
}

// Status returns the current life-cycle state.
func (c *Collector) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// TerminationReason returns why the activity terminated (or entered
// dying); ReasonNone while live.
func (c *Collector) TerminationReason() Reason {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reason
}

// Clock returns the current activity clock.
func (c *Collector) Clock() lamport.Clock {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// Parent returns the spanning-tree parent (Nil if none).
func (c *Collector) Parent() ids.ActivityID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parent
}

// Referencers returns the IDs of the currently known referencers, sorted.
func (c *Collector) Referencers() []ids.ActivityID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ids.ActivityID, 0, len(c.referencers))
	for id := range c.referencers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Referenced returns the IDs of the currently referenced activities,
// sorted.
func (c *Collector) Referenced() []ids.ActivityID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ids.ActivityID, 0, len(c.referenced))
	for id := range c.referenced {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// String implements fmt.Stringer for debugging.
func (c *Collector) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("collector{%s %s clock=%s parent=%s in=%d out=%d}",
		c.id, c.status, c.clock, c.parent, len(c.referencers), len(c.referenced))
}
