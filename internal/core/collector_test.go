package core

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/lamport"
)

// --- Acyclic collection (§3.1) -------------------------------------------

func TestLoneIdleActivityCollectedAcyclically(t *testing.T) {
	g := newGraph(t)
	a := id(1)
	g.add(a)
	// TTA = 61s, TTB = 30s: silence exceeds TTA on the 3rd beat (90s).
	g.run(2)
	if g.collected(a) {
		t.Fatal("collected before TTA elapsed")
	}
	g.step()
	if !g.collected(a) {
		t.Fatal("idle unreferenced activity not collected after TTA")
	}
	if g.terminated[a] != ReasonAcyclic {
		t.Fatalf("reason = %v, want acyclic", g.terminated[a])
	}
}

func TestBusyActivityNeverCollected(t *testing.T) {
	g := newGraph(t)
	a := id(1)
	g.addBusy(a)
	g.run(20)
	if g.collected(a) {
		t.Fatal("busy activity was collected")
	}
}

func TestHeartbeatKeepsReferencedAlive(t *testing.T) {
	g := newGraph(t)
	root, b := id(1), id(2)
	g.addBusy(root)
	g.add(b)
	g.link(root, b)
	g.run(20)
	if g.collected(b) {
		t.Fatal("referenced activity collected while referencer heartbeats")
	}
	if got := g.collectors[b].Referencers(); len(got) != 1 || got[0] != root {
		t.Fatalf("b.Referencers() = %v, want [root]", got)
	}
}

func TestChainCollectedAfterRootDrops(t *testing.T) {
	// root → a → b; root releases its stub of a: the chain peels off
	// acyclically, a first, then b.
	g := newGraph(t)
	root, a, b := id(1), id(2), id(3)
	g.addBusy(root)
	g.add(a)
	g.add(b)
	g.link(root, a)
	g.link(a, b)
	g.run(3) // graph established
	if !g.noneCollected(a, b) {
		t.Fatal("premature collection")
	}
	g.drop(root, a)
	g.run(stepsFor(2) + 4)
	if !g.allCollected(a, b) {
		t.Fatalf("chain not collected: a=%v b=%v", g.terminated[a], g.terminated[b])
	}
	if g.collected(root) {
		t.Fatal("busy root collected")
	}
	if g.terminated[a] != ReasonAcyclic || g.terminated[b] != ReasonAcyclic {
		t.Fatalf("reasons = %v, %v; want acyclic, acyclic", g.terminated[a], g.terminated[b])
	}
}

func TestMustSendOnceKeepsQuicklyDroppedReferenceAlive(t *testing.T) {
	// a deserializes a ref to b and drops it before the next beat: the
	// mandatory first DGC message must still be sent (§3.1), so b's
	// lastMessage timestamp is refreshed once.
	g := newGraph(t)
	a, b := id(1), id(2)
	g.addBusy(a)
	g.add(b)
	g.link(a, b)
	g.drop(a, b) // collected before any broadcast
	g.step()
	// The edge must have been used exactly once and then removed.
	if got := g.collectors[a].Referenced(); len(got) != 0 {
		t.Fatalf("a.Referenced() = %v, want empty after remove-after-send", got)
	}
	if got := g.collectors[b].Referencers(); len(got) != 1 {
		t.Fatalf("b.Referencers() = %v, want the one mandatory message recorded", got)
	}
}

func TestReferencerExpiryTicksClock(t *testing.T) {
	g := newGraph(t)
	root, b := id(1), id(2)
	g.addBusy(root)
	g.add(b)
	g.link(root, b)
	g.run(2)
	before := g.collectors[b].Clock()
	g.drop(root, b)
	// After TTA of silence b expires root — but b is then also acyclic
	// garbage; check the expiry event fired before termination.
	g.run(4)
	var sawExpiry bool
	for _, ev := range g.events {
		if ev.Activity == b && ev.Kind == EventReferencerExpired && ev.Peer == root {
			sawExpiry = true
		}
	}
	if !sawExpiry {
		t.Fatal("no referencer-expired event for root at b")
	}
	_ = before
}

// --- Cyclic collection (§3.2) --------------------------------------------

func TestTwoCycleCollected(t *testing.T) {
	g := newGraph(t)
	a, b := id(1), id(2)
	g.add(a)
	g.add(b)
	g.link(a, b)
	g.link(b, a)
	g.run(stepsFor(2))
	if !g.allCollected(a, b) {
		t.Fatalf("2-cycle not collected: a=%v b=%v clocks a=%v b=%v",
			g.terminated[a], g.terminated[b], g.collectors[a].Clock(), g.collectors[b].Clock())
	}
	// Exactly one of them made the consensus; the other caught the wave or
	// also reached consensus symmetrically — but at least one must be the
	// consensus maker.
	if g.terminated[a] != ReasonCyclic && g.terminated[b] != ReasonCyclic {
		t.Fatalf("no consensus maker: a=%v b=%v", g.terminated[a], g.terminated[b])
	}
}

func TestSelfCycleCollected(t *testing.T) {
	g := newGraph(t)
	a := id(1)
	g.add(a)
	g.link(a, a)
	g.run(stepsFor(1))
	if !g.collected(a) {
		t.Fatalf("self-cycle not collected: %v", g.collectors[a])
	}
	if g.terminated[a] != ReasonCyclic {
		t.Fatalf("reason = %v, want cyclic-consensus", g.terminated[a])
	}
}

func TestLongCycleCollected(t *testing.T) {
	const n = 12
	g := newGraph(t)
	ring := make([]ids.ActivityID, n)
	for i := range ring {
		ring[i] = id(uint32(i + 1))
		g.add(ring[i])
	}
	for i := range ring {
		g.link(ring[i], ring[(i+1)%n])
	}
	g.run(stepsFor(n))
	if !g.allCollected(ring...) {
		for _, r := range ring {
			t.Logf("%v: %v %v", r, g.terminated[r], g.collectors[r])
		}
		t.Fatal("ring not fully collected")
	}
}

func TestCycleWithBusyMemberSurvives(t *testing.T) {
	g := newGraph(t)
	a, b, c := id(1), id(2), id(3)
	g.add(a)
	g.add(b)
	g.addBusy(c)
	g.link(a, b)
	g.link(b, c)
	g.link(c, a)
	g.run(40)
	if !g.noneCollected(a, b, c) {
		t.Fatalf("live cycle partially collected: a=%v b=%v c=%v",
			g.terminated[a], g.terminated[b], g.terminated[c])
	}
}

func TestCycleCollectedOnceBusyMemberGoesIdle(t *testing.T) {
	g := newGraph(t)
	a, b, c := id(1), id(2), id(3)
	g.add(a)
	g.add(b)
	g.addBusy(c)
	g.link(a, b)
	g.link(b, c)
	g.link(c, a)
	g.run(10)
	if !g.noneCollected(a, b, c) {
		t.Fatal("collected while one member busy")
	}
	g.setIdle(c, true) // increments c's clock (occasion #1)
	g.run(stepsFor(3))
	if !g.allCollected(a, b, c) {
		t.Fatalf("cycle not collected after the busy member went idle: a=%v b=%v c=%v",
			g.terminated[a], g.terminated[b], g.terminated[c])
	}
}

func TestCycleReferencedByBusyRootSurvives(t *testing.T) {
	// root (busy) → a, a → b → a. Garbage(x) fails for a and b because a
	// busy recursive referencer exists.
	g := newGraph(t)
	root, a, b := id(1), id(2), id(3)
	g.addBusy(root)
	g.add(a)
	g.add(b)
	g.link(root, a)
	g.link(a, b)
	g.link(b, a)
	g.run(40)
	if !g.noneCollected(a, b) {
		t.Fatalf("cycle referenced by busy root collected: a=%v b=%v", g.terminated[a], g.terminated[b])
	}
}

func TestCycleCollectedAfterBusyRootDrops(t *testing.T) {
	g := newGraph(t)
	root, a, b := id(1), id(2), id(3)
	g.addBusy(root)
	g.add(a)
	g.add(b)
	g.link(root, a)
	g.link(a, b)
	g.link(b, a)
	g.run(5)
	g.drop(root, a)
	g.run(stepsFor(2) + 4) // + TTA for the referencer expiry at a
	if !g.allCollected(a, b) {
		t.Fatalf("cycle not collected after root dropped: a=%v b=%v; a=%v b=%v",
			g.terminated[a], g.terminated[b], g.collectors[a], g.collectors[b])
	}
	if g.collected(root) {
		t.Fatal("root collected")
	}
}

// TestFig3ReverseSpanningTree builds the reference graph of paper Fig. 3
// and checks that a consensus forms a reverse spanning tree rooted at the
// clock owner: every collected member except the originator adopted a
// parent, and following parents reaches the originator.
func TestFig3ReverseSpanningTree(t *testing.T) {
	// Fig. 3 graph: a cycle A→B→C→A with an extra branch D: C→D, D→A
	// (compound cycle through A).
	g := newGraph(t)
	a, b, c, d := id(1), id(2), id(3), id(4)
	for _, x := range []ids.ActivityID{a, b, c, d} {
		g.add(x)
	}
	g.link(a, b)
	g.link(b, c)
	g.link(c, a)
	g.link(c, d)
	g.link(d, a)

	// Run until the consensus is detected but before everyone terminates.
	var maker ids.ActivityID
	for i := 0; i < stepsFor(4); i++ {
		g.step()
		for _, ev := range g.events {
			if ev.Kind == EventConsensusDetected {
				maker = ev.Activity
			}
		}
		if !maker.IsNil() {
			break
		}
	}
	if maker.IsNil() {
		t.Fatal("no consensus detected")
	}
	// The consensus maker owns the final clock.
	if g.collectors[maker].Clock().Owner != maker {
		t.Fatalf("maker %v does not own its final clock %v", maker, g.collectors[maker].Clock())
	}
	// Every other member's parent chain must reach the maker without
	// revisiting a node (reverse spanning tree rooted at the originator).
	for _, x := range []ids.ActivityID{a, b, c, d} {
		if x == maker {
			continue
		}
		cur := x
		seen := map[ids.ActivityID]bool{}
		for cur != maker {
			if seen[cur] {
				t.Fatalf("parent chain from %v loops at %v", x, cur)
			}
			seen[cur] = true
			p := g.collectors[cur].Parent()
			if p.IsNil() {
				t.Fatalf("%v has no parent but is not the originator %v", cur, maker)
			}
			cur = p
		}
	}
	// And the whole compound cycle must eventually be collected.
	g.run(stepsFor(4))
	if !g.allCollected(a, b, c, d) {
		t.Fatal("compound cycle not fully collected")
	}
}

// TestFig4ResponsesDoNotPropagateClocks: C1 → C2 where C2 is busy. C2's
// high clock must not leak into C1 through DGC responses, so C1 is
// collected even though C2 lives on (reference orientation, Fig. 4).
func TestFig4ResponsesDoNotPropagateClocks(t *testing.T) {
	g := newGraph(t)
	a1, a2 := id(1), id(2) // cycle C1, idle
	b1, b2 := id(3), id(4) // cycle C2, one busy member
	g.add(a1)
	g.add(a2)
	g.add(b1)
	g.addBusy(b2)
	g.link(a1, a2)
	g.link(a2, a1)
	g.link(b1, b2)
	g.link(b2, b1)
	g.link(a1, b1) // C1 references C2

	g.run(stepsFor(3))
	if !g.allCollected(a1, a2) {
		t.Fatalf("C1 not collected although only C2 is busy: a1=%v a2=%v a1=%v",
			g.terminated[a1], g.terminated[a2], g.collectors[a1])
	}
	if !g.noneCollected(b1, b2) {
		t.Fatal("busy cycle C2 was collected")
	}
}

// TestFig5LossOfReferencerOwnsClock: a busy A references an idle cycle and
// floods it with A-owned clocks; when A disappears the cycle must not stay
// stuck on the unowned clock (Case 1 of Fig. 5) — B increments and owns a
// new one (Case 2), and the cycle is collected.
func TestFig5LossOfReferencerOwnsClock(t *testing.T) {
	g := newGraph(t)
	a, b, c := id(1), id(2), id(3)
	g.addBusy(a)
	g.add(b)
	g.add(c)
	g.link(a, b)
	g.link(b, c)
	g.link(c, b)
	g.run(5)
	// A's clock (owned by a busy activity) has been pushed into the cycle.
	g.kill(a) // crash: no stub drop, just silence
	g.run(stepsFor(2) + 6)
	if !g.allCollected(b, c) {
		t.Fatalf("cycle stuck on unowned final clock: b=%v c=%v b=%v c=%v",
			g.terminated[b], g.terminated[c], g.collectors[b], g.collectors[c])
	}
}

// TestFig6LossOfReferencedTicksClock: dropping a referenced edge must
// increment the clock; otherwise a consensus traversal that was depending
// on the dropped edge's rejection path could wrongly collect a live cycle.
func TestFig6LossOfReferencedTicksClock(t *testing.T) {
	g := newGraph(t)
	a, b := id(1), id(2)
	g.add(a)
	g.add(b)
	g.link(a, b)
	g.link(b, a)
	g.run(2)
	before := g.collectors[a].Clock()
	g.drop(a, b)
	after := g.collectors[a].Clock()
	if !before.Less(after) {
		t.Fatalf("clock did not advance on loss of referenced: %v → %v", before, after)
	}
	if after.Owner != a {
		t.Fatalf("clock owner after loss = %v, want a", after.Owner)
	}
	if got := g.collectors[a].Parent(); !got.IsNil() {
		t.Fatalf("parent survived the clock increment: %v", got)
	}
}

// TestFig6LiveCycleNeverWronglyCollected is the Fig. 6 hazard: a reference
// graph kept live by a single busy activity D loses the C→A edge — the
// edge that was carrying C's consensus rejection to its parent. The clock
// increment on edge loss (plus referencer expiry at A) must prevent the
// wrongful collection. A stays referenced through the E→A edge, so no
// member ever becomes genuine garbage.
func TestFig6LiveCycleNeverWronglyCollected(t *testing.T) {
	// Edges: A→B→C→A (cycle), D→E (D busy), E→A.
	g := newGraph(t)
	a, b, c, d, e := id(1), id(2), id(3), id(4), id(5)
	g.add(a)
	g.add(b)
	g.add(c)
	g.addBusy(d)
	g.add(e)
	g.link(a, b)
	g.link(b, c)
	g.link(c, a)
	g.link(d, e)
	g.link(e, a)

	g.run(8)
	if !g.noneCollected(a, b, c, e) {
		t.Fatal("live graph partially collected before edge drop")
	}
	// Drop C→A, the edge that was carrying C's input to A.
	g.drop(c, a)
	g.run(30)
	if !g.noneCollected(a, b, c, e) {
		t.Fatalf("live cycle wrongly collected after losing an edge: a=%v b=%v c=%v e=%v",
			g.terminated[a], g.terminated[b], g.terminated[c], g.terminated[e])
	}
	if g.collected(d) {
		t.Fatal("busy activity collected")
	}
}

// TestFig7CompoundCycle replays the paper's Fig. 7: a compound cycle is
// fully collected in one consensus wave; adding one busy member vetoes the
// whole collection.
func TestFig7CompoundCycle(t *testing.T) {
	build := func(g *graph, busy bool) []ids.ActivityID {
		a, b, c, d := id(1), id(2), id(3), id(4)
		g.add(a)
		g.add(b)
		g.add(c)
		if busy {
			g.addBusy(d)
		} else {
			g.add(d)
		}
		// Two cycles sharing the edge a→b: a→b→c→a and a→b→d→a.
		g.link(a, b)
		g.link(b, c)
		g.link(c, a)
		g.link(b, d)
		g.link(d, a)
		return []ids.ActivityID{a, b, c, d}
	}

	t.Run("garbage", func(t *testing.T) {
		g := newGraph(t)
		all := build(g, false)
		g.run(stepsFor(4))
		if !g.allCollected(all...) {
			t.Fatalf("compound cycle not collected: %v %v %v %v",
				g.terminated[all[0]], g.terminated[all[1]], g.terminated[all[2]], g.terminated[all[3]])
		}
	})
	t.Run("one live member vetoes", func(t *testing.T) {
		g := newGraph(t)
		all := build(g, true)
		g.run(40)
		if !g.noneCollected(all...) {
			t.Fatal("compound cycle with a busy member was partially collected")
		}
	})
}

// --- The §4.3 dying-wave optimization --------------------------------------

func TestConsensusPropagationCollectsWholeCycleInOneWave(t *testing.T) {
	const n = 8
	g := newGraph(t)
	ring := make([]ids.ActivityID, n)
	for i := range ring {
		ring[i] = id(uint32(i + 1))
		g.add(ring[i])
	}
	for i := range ring {
		g.link(ring[i], ring[(i+1)%n])
	}
	g.run(stepsFor(n))
	if !g.allCollected(ring...) {
		t.Fatal("ring not collected")
	}
	// Exactly one consensus event: the wave did the rest.
	var consensuses int
	for _, ev := range g.events {
		if ev.Kind == EventConsensusDetected {
			consensuses++
		}
	}
	if consensuses != 1 {
		t.Fatalf("consensus detected %d times, want exactly 1 (wave propagation)", consensuses)
	}
}

func TestAblationWithoutPropagationStillCollects(t *testing.T) {
	g := newGraph(t)
	g.cfg.DisableConsensusPropagation = true
	a, b, c := id(1), id(2), id(3)
	g.add(a)
	g.add(b)
	g.add(c)
	g.link(a, b)
	g.link(b, c)
	g.link(c, a)
	// Without the wave, each termination only peels one member; the rest
	// follows via referencer expiry + new consensus. Budget generously.
	g.run(10 * stepsFor(3))
	if !g.allCollected(a, b, c) {
		t.Fatalf("ablated collector failed to collect: a=%v b=%v c=%v",
			g.terminated[a], g.terminated[b], g.terminated[c])
	}
}

func TestAblationIsSlower(t *testing.T) {
	run := func(disable bool) int {
		g := newGraph(t)
		g.cfg.DisableConsensusPropagation = disable
		const n = 6
		ring := make([]ids.ActivityID, n)
		for i := range ring {
			ring[i] = id(uint32(i + 1))
			g.add(ring[i])
		}
		for i := range ring {
			g.link(ring[i], ring[(i+1)%n])
		}
		steps := 0
		for ; steps < 400; steps++ {
			g.step()
			if g.allCollected(ring...) {
				break
			}
		}
		return steps
	}
	withWave := run(false)
	withoutWave := run(true)
	if withoutWave <= withWave {
		t.Fatalf("ablation not slower: with wave %d steps, without %d", withWave, withoutWave)
	}
}

// --- Message / response codecs --------------------------------------------

func TestMessageCodecRoundTrip(t *testing.T) {
	m := Message{
		Sender:    ids.ActivityID{Node: 7, Seq: 42},
		Clock:     lamport.Clock{Value: 99, Owner: ids.ActivityID{Node: 1, Seq: 3}},
		Consensus: true,
	}
	buf := EncodeMessage(m)
	if len(buf) != MessageWireSize {
		t.Fatalf("encoded size = %d, want %d (fixed)", len(buf), MessageWireSize)
	}
	got, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("round-trip = %+v, want %+v", got, m)
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	r := Response{
		Clock:            lamport.Clock{Value: 5, Owner: ids.ActivityID{Node: 2, Seq: 9}},
		HasParent:        true,
		ConsensusReached: true,
	}
	buf := EncodeResponse(r)
	if len(buf) != ResponseWireSize {
		t.Fatalf("encoded size = %d, want %d (fixed)", len(buf), ResponseWireSize)
	}
	got, err := DecodeResponse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round-trip = %+v, want %+v", got, r)
	}
}

func TestCodecShortBuffers(t *testing.T) {
	if _, err := DecodeMessage(make([]byte, MessageWireSize-1)); err == nil {
		t.Fatal("DecodeMessage accepted a short buffer")
	}
	if _, err := DecodeResponse(make([]byte, ResponseWireSize-1)); err == nil {
		t.Fatal("DecodeResponse accepted a short buffer")
	}
}

// --- Config, accessors, enums ---------------------------------------------

func TestConfigValidate(t *testing.T) {
	ok := Config{TTB: 30 * time.Second, TTA: 61 * time.Second}
	if err := ok.Validate(0); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := ok.Validate(time.Second); err == nil {
		t.Fatal("TTA=61 TTB=30 MaxComm=1s must be rejected (61 <= 61)")
	}
	bad := Config{TTB: 0, TTA: time.Minute}
	if err := bad.Validate(0); err == nil {
		t.Fatal("zero TTB must be rejected")
	}
	tight := Config{TTB: 30 * time.Second, TTA: 60 * time.Second}
	if err := tight.Validate(0); err == nil {
		t.Fatal("TTA == 2*TTB must be rejected (strict inequality)")
	}
}

func TestEnumStrings(t *testing.T) {
	if StatusLive.String() != "live" || StatusDying.String() != "dying" || StatusTerminated.String() != "terminated" {
		t.Fatal("status strings wrong")
	}
	if Status(99).String() == "" || Reason(99).String() == "" || EventKind(99).String() == "" {
		t.Fatal("unknown enum values must still format")
	}
	for _, k := range []EventKind{
		EventClockAdvanced, EventParentAdopted, EventReferencerAdded,
		EventReferencerExpired, EventReferencedAdded, EventReferencedLost,
		EventConsensusDetected, EventEnteredDying, EventTerminated,
	} {
		if k.String() == "" {
			t.Fatalf("event kind %d has empty string", k)
		}
	}
	if ReasonNone.String() != "none" || ReasonAcyclic.String() != "acyclic" {
		t.Fatal("reason strings wrong")
	}
}

func TestCollectorAccessors(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := Config{TTB: testTTB, TTA: testTTA}
	c := New(id(1), cfg, func() bool { return false }, now)
	if c.ID() != id(1) {
		t.Fatal("ID mismatch")
	}
	if c.Status() != StatusLive {
		t.Fatal("fresh collector must be live")
	}
	if c.TerminationReason() != ReasonNone {
		t.Fatal("fresh collector must have no termination reason")
	}
	if c.Clock().Owner != id(1) || c.Clock().Value != 1 {
		t.Fatalf("initial clock = %v, want self-owned value 1", c.Clock())
	}
	if !c.Parent().IsNil() {
		t.Fatal("fresh collector must have no parent")
	}
	if c.String() == "" {
		t.Fatal("String() must not be empty")
	}
	c.Terminate(now)
	if c.Status() != StatusTerminated {
		t.Fatal("Terminate did not terminate")
	}
	c.Terminate(now) // idempotent
	// All entry points must be safe after termination.
	c.BecomeIdle(now)
	c.AddReferenced(id(2), now)
	c.LostReferenced(id(2), now)
	c.HandleResponse(id(2), Response{}, now)
	res := c.Tick(now)
	if !res.Terminated {
		t.Fatal("Tick on a terminated collector must report Terminated")
	}
	resp := c.HandleMessage(Message{Sender: id(3), Clock: lamport.Clock{Value: 1, Owner: id(3)}}, now)
	if !resp.ConsensusReached {
		t.Fatal("terminated collector must answer with the dying wave")
	}
}

func TestHandleMessageMergesClockAndDropsParent(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := Config{TTB: testTTB, TTA: testTTA}
	idle := true
	a := New(id(1), cfg, func() bool { return idle }, now)
	a.AddReferenced(id(9), now)
	// Give a a parent by faking a matching response.
	a.HandleResponse(id(9), Response{Clock: a.Clock(), HasParent: true}, now)
	if !a.Parent().IsNil() {
		t.Fatal("owner must not adopt a parent (it is the originator)")
	}
	// Raise a's clock from a message, then check parent/ownership changes.
	high := lamport.Clock{Value: 100, Owner: id(2)}
	resp := a.HandleMessage(Message{Sender: id(2), Clock: high}, now)
	if a.Clock() != high {
		t.Fatalf("clock not merged: %v", a.Clock())
	}
	if !resp.Clock.Equal(high) {
		t.Fatalf("response clock = %v, want merged %v", resp.Clock, high)
	}
	if resp.HasParent {
		t.Fatal("non-owner without parent must respond HasParent=false")
	}
	// Now a can adopt a parent for the foreign clock.
	a.HandleResponse(id(9), Response{Clock: high, HasParent: true}, now)
	if a.Parent() != id(9) {
		t.Fatalf("parent = %v, want id(9)", a.Parent())
	}
	// A lower clock must not regress the merged one.
	a.HandleMessage(Message{Sender: id(3), Clock: lamport.Clock{Value: 1, Owner: id(3)}}, now)
	if a.Clock() != high {
		t.Fatalf("clock regressed to %v", a.Clock())
	}
	if a.Parent() != id(9) {
		t.Fatal("parent dropped by a non-advancing message")
	}
}

func TestResponseClockNeverMergedIntoOwnClock(t *testing.T) {
	// Fig. 4's rule at the unit level: a response carrying a higher clock
	// must not advance the receiver's clock.
	now := time.Unix(0, 0)
	cfg := Config{TTB: testTTB, TTA: testTTA}
	a := New(id(1), cfg, func() bool { return true }, now)
	a.AddReferenced(id(2), now)
	before := a.Clock()
	a.HandleResponse(id(2), Response{Clock: lamport.Clock{Value: 999, Owner: id(2)}, HasParent: true}, now)
	if a.Clock() != before {
		t.Fatalf("response advanced the clock: %v → %v", before, a.Clock())
	}
}

func TestBecomeIdleTicksAndTakesOwnership(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := Config{TTB: testTTB, TTA: testTTA}
	a := New(id(1), cfg, func() bool { return true }, now)
	// Adopt a foreign clock first.
	a.HandleMessage(Message{Sender: id(2), Clock: lamport.Clock{Value: 10, Owner: id(2)}}, now)
	a.BecomeIdle(now)
	got := a.Clock()
	if got.Owner != id(1) || got.Value != 11 {
		t.Fatalf("BecomeIdle clock = %v, want A1.1:11", got)
	}
}
