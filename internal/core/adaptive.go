package core

import (
	"fmt"
	"time"
)

// Adaptive implements the paper's §7.1 future-work proposal: dynamically
// adjusting the broadcast period per activity — "augment the broadcasting
// frequency when some garbage is suspected, i.e. when an active object
// gets a parent and some of its referencers agree with the consensus, or
// lower it when the distributed system is highly loaded".
//
// Safety constraint: an activity expires silent referencers after its own
// TTA, while its referencers beat at *their* chosen periods — so the
// slowest permitted beat must still satisfy the §3.1 deadline formula
// against every receiver's TTA: TTA > 2·MaxTTB + MaxComm. Validate
// enforces it. Speeding up is always safe.
type Adaptive struct {
	// Enabled turns adaptation on.
	Enabled bool
	// MinTTB is the fastest beat, used while garbage is suspected.
	MinTTB time.Duration
	// MaxTTB is the slowest beat, used while the activity is busy (the
	// system is loaded and the graph around a busy activity cannot be
	// garbage anyway).
	MaxTTB time.Duration
}

// Validate checks the adaptive bounds against the base configuration and
// the communication bound.
func (a Adaptive) Validate(base Config, maxComm time.Duration) error {
	if !a.Enabled {
		return nil
	}
	if a.MinTTB <= 0 || a.MaxTTB < a.MinTTB {
		return fmt.Errorf("core: adaptive bounds invalid: min=%v max=%v", a.MinTTB, a.MaxTTB)
	}
	if a.MinTTB > base.TTB || a.MaxTTB < base.TTB {
		return fmt.Errorf("core: adaptive bounds must bracket the base TTB (%v): min=%v max=%v",
			base.TTB, a.MinTTB, a.MaxTTB)
	}
	if lim := 2*a.MaxTTB + maxComm; base.TTA <= lim {
		return fmt.Errorf("core: TTA (%v) must exceed 2*MaxTTB+MaxComm (%v) or slow beats starve receivers",
			base.TTA, lim)
	}
	return nil
}

// suspectsGarbageLocked is the §7.1 trigger: the activity is idle and
// either joined a reverse spanning tree (it has a parent) or is an
// originator with at least one referencer already agreeing on its clock.
func (c *Collector) suspectsGarbageLocked(idle bool) bool {
	if !idle {
		return false
	}
	if !c.parent.IsNil() {
		return true
	}
	if c.clock.Owner != c.id {
		return false
	}
	for _, r := range c.referencers {
		if r.hasMessage && r.consensus && r.clock.Equal(c.clock) {
			return true
		}
	}
	return false
}

// nextBeatLocked picks the period until the next broadcast.
func (c *Collector) nextBeatLocked(idle bool) time.Duration {
	a := c.cfg.Adaptive
	if !a.Enabled {
		return c.cfg.TTB
	}
	switch {
	case c.suspectsGarbageLocked(idle):
		return a.MinTTB
	case !idle:
		return a.MaxTTB
	default:
		return c.cfg.TTB
	}
}
