package core

import (
	"math/rand"
	"testing"

	"repro/internal/ids"
)

// shadow mirrors the reference graph and busy set maintained by a random
// scenario, providing the ground-truth Garbage predicate of §3:
// Garbage(x) ⇔ every y with y →* x (including x) is idle.
type shadow struct {
	edges map[ids.ActivityID]map[ids.ActivityID]bool // from → to
	busy  map[ids.ActivityID]bool
	all   []ids.ActivityID
}

func newShadow(all []ids.ActivityID) *shadow {
	s := &shadow{
		edges: make(map[ids.ActivityID]map[ids.ActivityID]bool),
		busy:  make(map[ids.ActivityID]bool),
		all:   all,
	}
	for _, id := range all {
		s.edges[id] = make(map[ids.ActivityID]bool)
	}
	return s
}

// live returns the set of activities reachable from a busy activity by
// following reference edges forward (a busy activity is live itself).
func (s *shadow) live() map[ids.ActivityID]bool {
	liveSet := make(map[ids.ActivityID]bool)
	var stack []ids.ActivityID
	for id, b := range s.busy {
		if b {
			liveSet[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for to := range s.edges[cur] {
			if !liveSet[to] {
				liveSet[to] = true
				stack = append(stack, to)
			}
		}
	}
	return liveSet
}

// TestRandomGraphSafetyAndLiveness drives random reference graphs through
// random model-legal mutations and checks the two DGC meta-invariants:
//
//   - safety: an activity that is live (reachable from a busy activity) is
//     never collected;
//   - liveness: once mutations stop, every garbage activity is collected
//     within O(h·TTB) + TTA.
//
// Legal mutations preserve the paper's model: edges are only created by a
// busy holder of the reference handing it to an activity it references
// (serving the request flips the recipient busy→idle, ticking its clock);
// edges are dropped at any time (local GC); busy activities may become
// idle; idle activities never spontaneously become busy.
func TestRandomGraphSafetyAndLiveness(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		r := rand.New(rand.NewSource(seed))
		g := newGraph(t)

		n := 3 + r.Intn(9)
		all := make([]ids.ActivityID, n)
		for i := 0; i < n; i++ {
			all[i] = id(uint32(i + 1))
		}
		s := newShadow(all)
		for _, x := range all {
			if r.Intn(3) == 0 { // ~1/3 busy
				g.addBusy(x)
				s.busy[x] = true
			} else {
				g.add(x)
				s.busy[x] = false
			}
		}
		// Random initial edges, density ~0.25.
		for _, from := range all {
			for _, to := range all {
				if r.Intn(4) == 0 {
					g.link(from, to)
					s.edges[from][to] = true
				}
			}
		}

		checkSafety := func(step int) {
			t.Helper()
			liveSet := s.live()
			for _, x := range all {
				if liveSet[x] && g.collected(x) {
					t.Fatalf("seed %d step %d: SAFETY violated: live %v collected (%v)",
						seed, step, x, g.terminated[x])
				}
			}
		}

		// Mutation phase.
		for step := 0; step < 30; step++ {
			g.step()
			switch r.Intn(4) {
			case 0: // drop a random edge
				from := all[r.Intn(n)]
				for to := range s.edges[from] {
					if !g.collected(from) {
						g.drop(from, to)
						delete(s.edges[from], to)
					}
					break
				}
			case 1: // a busy activity goes idle
				x := all[r.Intn(n)]
				if s.busy[x] {
					s.busy[x] = false
					g.setIdle(x, true)
				}
			case 2: // a busy holder gives a reference to an activity it references
				giver := all[r.Intn(n)]
				if s.busy[giver] && !g.collected(giver) {
					var tos []ids.ActivityID
					for to := range s.edges[giver] {
						tos = append(tos, to)
					}
					if len(tos) >= 2 {
						recipient, given := tos[r.Intn(len(tos))], tos[r.Intn(len(tos))]
						if recipient != giver && !g.collected(recipient) {
							g.link(recipient, given)
							s.edges[recipient][given] = true
							// Serving the request ticks the recipient's
							// clock when it goes idle again.
							if !s.busy[recipient] {
								g.collectors[recipient].BecomeIdle(g.now)
							}
						}
					}
				}
			default: // no mutation this step
			}
			checkSafety(step)
		}

		// Quiescent phase: liveness. Budget: detection O(h·TTB) with h ≤ n,
		// plus TTA for the dying wait, for every peeling layer (worst case
		// chains of cycles peel sequentially).
		quiet := n * stepsFor(n)
		for step := 0; step < quiet; step++ {
			g.step()
			checkSafety(1000 + step)
		}
		liveSet := s.live()
		for _, x := range all {
			if !liveSet[x] && !g.collected(x) {
				t.Fatalf("seed %d: LIVENESS violated: garbage %v not collected after %d quiet steps (%v)",
					seed, quiet, x, g.collectors[x])
			}
		}
	}
}

// TestAllIdleGraphFullyCollected: with no busy activity at all, everything
// is garbage and must be collected, whatever the topology.
func TestAllIdleGraphFullyCollected(t *testing.T) {
	for seed := int64(100); seed < 115; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := newGraph(t)
		n := 2 + r.Intn(10)
		all := make([]ids.ActivityID, n)
		for i := range all {
			all[i] = id(uint32(i + 1))
			g.add(all[i])
		}
		for _, from := range all {
			for _, to := range all {
				if r.Intn(3) == 0 {
					g.link(from, to)
				}
			}
		}
		g.run(n * stepsFor(n))
		if !g.allCollected(all...) {
			for _, x := range all {
				if !g.collected(x) {
					t.Logf("seed %d: %v survives: %v", seed, x, g.collectors[x])
				}
			}
			t.Fatalf("seed %d: all-idle graph not fully collected", seed)
		}
	}
}
