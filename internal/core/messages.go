// Package core implements the paper's primary contribution: the complete
// distributed garbage collector for activities (Caromel, Chazarain, Henrio,
// Middleware 2007).
//
// The collector is an engine-agnostic state machine: one Collector instance
// per activity, driven by the middleware through five entry points —
//
//   - Tick(now): the periodic TTB broadcast (Algorithm 2);
//   - HandleMessage(msg, now): reception of a DGC message (Algorithm 3),
//     returning the DGC response that rides back on the same connection;
//   - HandleResponse(from, resp, now): reception of a DGC response
//     (Algorithm 4);
//   - BecomeIdle(now): the activity's service queue drained (clock
//     increment occasion #1, §3.2);
//   - AddReferenced/LostReferenced: reference-graph edge creation (stub
//     deserialized) and deletion (stub tag died at a local collection;
//     clock increment occasion #3).
//
// Clock increment occasion #2 — loss of a referencer — is detected inside
// Tick when a referencer has been silent for TTA.
//
// The same state machine is driven by the live goroutine runtime
// (internal/active) and by the deterministic discrete-event harness
// (internal/sim); see DESIGN.md §6.
package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ids"
	"repro/internal/lamport"
)

// Message is a DGC message, sent every TTB from a referencer to each of its
// referenced activities (§3.2 "DGC Messages and Responses"). It is fixed
// size, which the paper's complexity analysis (§4.3) relies on.
type Message struct {
	// Sender identifies the referencer. The recipient stores it in its
	// referencer list; it is never used to open a connection back.
	Sender ids.ActivityID
	// Clock is the sender's view of the final activity clock.
	Clock lamport.Clock
	// Consensus is the sender's acceptance of the final activity clock it
	// received in the previous DGC response from this destination.
	Consensus bool
}

// Response is a DGC response, returned synchronously to each DGC message
// over the same connection.
type Response struct {
	// Clock is the responder's consensus candidate. It is never used to
	// update the receiver's own clock (Fig. 4) — only to build consensus.
	Clock lamport.Clock
	// HasParent reports that the responder has a spanning-tree parent or
	// is itself the clock owner, i.e. that adopting the responder as
	// parent keeps the reverse spanning tree rooted at the originator.
	HasParent bool
	// ConsensusReached propagates the termination wave: the responder has
	// learned that a consensus was reached on its current clock and is
	// waiting to die (the §4.3 optimization).
	ConsensusReached bool
	// Depth is the responder's distance to the originator along the
	// reverse spanning tree (0 for the clock owner). Only meaningful when
	// HasParent; used by the §7.2 minimal-height extension to re-adopt
	// shallower parents.
	Depth uint32
}

// ErrShortBuffer indicates a DGC payload that cannot hold a full message or
// response.
var ErrShortBuffer = errors.New("core: short DGC payload")

// Wire sizes: fixed-size little-endian encoding, matching the paper's
// "fixed size" claim for DGC traffic.
const (
	// MessageWireSize is the encoded size of a Message in bytes.
	MessageWireSize = 4 + 4 + 8 + 4 + 4 + 1
	// ResponseWireSize is the encoded size of a Response in bytes.
	ResponseWireSize = 8 + 4 + 4 + 1 + 1 + 4
)

func putActivityID(dst []byte, id ids.ActivityID) {
	binary.LittleEndian.PutUint32(dst[0:], uint32(id.Node))
	binary.LittleEndian.PutUint32(dst[4:], id.Seq)
}

func getActivityID(src []byte) ids.ActivityID {
	return ids.ActivityID{
		Node: ids.NodeID(binary.LittleEndian.Uint32(src[0:])),
		Seq:  binary.LittleEndian.Uint32(src[4:]),
	}
}

func putClock(dst []byte, c lamport.Clock) {
	binary.LittleEndian.PutUint64(dst[0:], c.Value)
	putActivityID(dst[8:], c.Owner)
}

func getClock(src []byte) lamport.Clock {
	return lamport.Clock{
		Value: binary.LittleEndian.Uint64(src[0:]),
		Owner: getActivityID(src[8:]),
	}
}

func putBool(dst []byte, b bool) {
	if b {
		dst[0] = 1
	} else {
		dst[0] = 0
	}
}

// EncodeMessage serializes m into a fresh buffer of MessageWireSize bytes.
func EncodeMessage(m Message) []byte {
	buf := make([]byte, MessageWireSize)
	putActivityID(buf[0:], m.Sender)
	putClock(buf[8:], m.Clock)
	putBool(buf[24:], m.Consensus)
	return buf
}

// DecodeMessage is the inverse of EncodeMessage.
func DecodeMessage(buf []byte) (Message, error) {
	if len(buf) < MessageWireSize {
		return Message{}, fmt.Errorf("%w: message needs %d bytes, got %d", ErrShortBuffer, MessageWireSize, len(buf))
	}
	return Message{
		Sender:    getActivityID(buf[0:]),
		Clock:     getClock(buf[8:]),
		Consensus: buf[24] != 0,
	}, nil
}

// EncodeResponse serializes r into a fresh buffer of ResponseWireSize
// bytes.
func EncodeResponse(r Response) []byte {
	buf := make([]byte, ResponseWireSize)
	putClock(buf[0:], r.Clock)
	putBool(buf[16:], r.HasParent)
	putBool(buf[17:], r.ConsensusReached)
	binary.LittleEndian.PutUint32(buf[18:], r.Depth)
	return buf
}

// DecodeResponse is the inverse of EncodeResponse.
func DecodeResponse(buf []byte) (Response, error) {
	if len(buf) < ResponseWireSize {
		return Response{}, fmt.Errorf("%w: response needs %d bytes, got %d", ErrShortBuffer, ResponseWireSize, len(buf))
	}
	return Response{
		Clock:            getClock(buf[0:]),
		HasParent:        buf[16] != 0,
		ConsensusReached: buf[17] != 0,
		Depth:            binary.LittleEndian.Uint32(buf[18:]),
	}, nil
}
