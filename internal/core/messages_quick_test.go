package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ids"
	"repro/internal/lamport"
)

func randomActivityID(r *rand.Rand) ids.ActivityID {
	return ids.ActivityID{Node: ids.NodeID(r.Uint32()), Seq: r.Uint32()}
}

// TestMessageCodecProperty: every message round-trips through the fixed-
// size codec.
func TestMessageCodecProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(Message{
				Sender:    randomActivityID(r),
				Clock:     lamport.Clock{Value: r.Uint64(), Owner: randomActivityID(r)},
				Consensus: r.Intn(2) == 0,
			})
		},
	}
	prop := func(m Message) bool {
		got, err := DecodeMessage(EncodeMessage(m))
		return err == nil && got == m
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestResponseCodecProperty: every response round-trips, including the
// §7.2 depth field.
func TestResponseCodecProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(Response{
				Clock:            lamport.Clock{Value: r.Uint64(), Owner: randomActivityID(r)},
				HasParent:        r.Intn(2) == 0,
				ConsensusReached: r.Intn(2) == 0,
				Depth:            r.Uint32(),
			})
		},
	}
	prop := func(resp Response) bool {
		got, err := DecodeResponse(EncodeResponse(resp))
		return err == nil && got == resp
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
