package core

import (
	"sort"
	"testing"
	"time"

	"repro/internal/ids"
)

// graph is a synchronous, single-threaded test harness: every step advances
// time by TTB, ticks all live collectors in ID order, and delivers each DGC
// message and its response instantly. It models the paper's protocol with
// MaxComm = 0 and perfectly aligned beats, which is the easiest regime to
// reason about scenario outcomes in; the DES harness (internal/sim) covers
// skewed beats and real latencies.
type graph struct {
	t          *testing.T
	cfg        Config
	now        time.Time
	collectors map[ids.ActivityID]*Collector
	idle       map[ids.ActivityID]bool
	terminated map[ids.ActivityID]Reason
	order      []ids.ActivityID
	events     []Event
}

const (
	testTTB = 30 * time.Second
	testTTA = 61 * time.Second // the paper's NAS setting: TTA > 2*TTB (+MaxComm=0)
)

func newGraph(t *testing.T) *graph {
	t.Helper()
	g := &graph{
		t:          t,
		now:        time.Unix(0, 0),
		collectors: make(map[ids.ActivityID]*Collector),
		idle:       make(map[ids.ActivityID]bool),
		terminated: make(map[ids.ActivityID]Reason),
	}
	g.cfg = Config{
		TTB:     testTTB,
		TTA:     testTTA,
		OnEvent: func(ev Event) { g.events = append(g.events, ev) },
	}
	return g
}

// add creates an activity. Activities start idle unless marked busy later;
// creation counts as having just become idle.
func (g *graph) add(id ids.ActivityID) *Collector {
	g.t.Helper()
	c := New(id, g.cfg, func() bool { return g.idle[id] }, g.now)
	g.collectors[id] = c
	g.idle[id] = true
	g.order = append(g.order, id)
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].Less(g.order[j]) })
	return c
}

// addBusy creates a permanently busy activity (a root or an active one).
func (g *graph) addBusy(id ids.ActivityID) *Collector {
	c := g.add(id)
	g.idle[id] = false
	return c
}

// link records "from references to" as if from had deserialized a stub.
func (g *graph) link(from, to ids.ActivityID) {
	g.collectors[from].AddReferenced(to, g.now)
}

// drop simulates the local GC reclaiming from's last stub of to.
func (g *graph) drop(from, to ids.ActivityID) {
	g.collectors[from].LostReferenced(to, g.now)
}

// setIdle flips an activity's business; transitioning busy→idle triggers
// the BecomeIdle clock increment, as the middleware would.
func (g *graph) setIdle(id ids.ActivityID, idle bool) {
	was := g.idle[id]
	g.idle[id] = idle
	if !was && idle {
		g.collectors[id].BecomeIdle(g.now)
	}
}

// kill simulates a crash / explicit termination: the activity simply stops
// participating.
func (g *graph) kill(id ids.ActivityID) {
	g.collectors[id].Terminate(g.now)
	g.terminated[id] = ReasonAcyclic
}

// step advances one TTB and runs one synchronized beat.
func (g *graph) step() {
	g.t.Helper()
	g.now = g.now.Add(testTTB)
	for _, id := range g.order {
		if g.terminated[id] != ReasonNone {
			continue
		}
		c := g.collectors[id]
		res := c.Tick(g.now)
		if res.Terminated {
			g.terminated[id] = res.Reason
			continue
		}
		for _, ob := range res.Messages {
			dst, ok := g.collectors[ob.To]
			if !ok || g.terminated[ob.To] != ReasonNone {
				continue // unreachable / destroyed: no response
			}
			resp := dst.HandleMessage(ob.Msg, g.now)
			c.HandleResponse(ob.To, resp, g.now)
		}
	}
}

// run performs n steps.
func (g *graph) run(n int) {
	g.t.Helper()
	for i := 0; i < n; i++ {
		g.step()
	}
}

// collected reports whether id has terminated.
func (g *graph) collected(id ids.ActivityID) bool {
	return g.terminated[id] != ReasonNone
}

// allCollected reports whether every listed activity has terminated.
func (g *graph) allCollected(idsList ...ids.ActivityID) bool {
	for _, id := range idsList {
		if !g.collected(id) {
			return false
		}
	}
	return true
}

// noneCollected reports whether none of the listed activities terminated.
func (g *graph) noneCollected(idsList ...ids.ActivityID) bool {
	for _, id := range idsList {
		if g.collected(id) {
			return false
		}
	}
	return true
}

// id is a test helper building activity IDs on node 1.
func id(seq uint32) ids.ActivityID {
	return ids.ActivityID{Node: 1, Seq: seq}
}

// stepsFor returns a generous step budget for detecting and fully
// collecting garbage in a graph of the given spanning-tree height:
// O(h·TTB) + TTA (paper §4.3), with slack for harness quantization.
func stepsFor(h int) int {
	detect := 3*h + 6
	collect := int(testTTA/testTTB) + 2
	return detect + collect
}
