package core

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/lamport"
)

// The protocol must tolerate benign transport anomalies: duplicated
// deliveries (a beat retried), stale responses (edges dropped mid-
// exchange), and traffic referring to unknown peers. None of these may
// corrupt state or violate safety.

func newIdleCollector(t *testing.T) (*Collector, time.Time) {
	t.Helper()
	now := time.Unix(0, 0)
	cfg := Config{TTB: testTTB, TTA: testTTA}
	return New(id(1), cfg, func() bool { return true }, now), now
}

func TestDuplicateMessagesAreIdempotent(t *testing.T) {
	c, now := newIdleCollector(t)
	msg := Message{Sender: id(2), Clock: lamport.Clock{Value: 5, Owner: id(2)}, Consensus: true}
	r1 := c.HandleMessage(msg, now)
	r2 := c.HandleMessage(msg, now)
	r3 := c.HandleMessage(msg, now.Add(time.Second))
	if r1 != r2 || r2 != r3 {
		t.Fatalf("duplicate messages produced different responses: %+v %+v %+v", r1, r2, r3)
	}
	if got := c.Referencers(); len(got) != 1 {
		t.Fatalf("duplicate messages duplicated the referencer: %v", got)
	}
	if c.Clock() != msg.Clock {
		t.Fatalf("clock = %v, want merged %v once", c.Clock(), msg.Clock)
	}
}

func TestStaleResponseAfterEdgeDropIsIgnored(t *testing.T) {
	c, now := newIdleCollector(t)
	c.AddReferenced(id(2), now)
	c.Tick(now) // sentOnce
	c.LostReferenced(id(2), now)
	if got := c.Referenced(); len(got) != 0 {
		t.Fatalf("edge not dropped: %v", got)
	}
	before := c.Clock()
	// A response from the dropped peer arrives late.
	c.HandleResponse(id(2), Response{Clock: before, HasParent: true}, now)
	if !c.Parent().IsNil() {
		t.Fatal("stale response installed a parent for a dropped edge")
	}
}

func TestResponseFromUnknownPeerIsIgnored(t *testing.T) {
	c, now := newIdleCollector(t)
	c.HandleResponse(id(9), Response{Clock: c.Clock(), HasParent: true, ConsensusReached: true}, now)
	if c.Status() != StatusLive {
		t.Fatal("response from unknown peer changed the status")
	}
	if !c.Parent().IsNil() {
		t.Fatal("response from unknown peer installed a parent")
	}
}

func TestDyingWaveRequiresMatchingClock(t *testing.T) {
	c, now := newIdleCollector(t)
	c.AddReferenced(id(2), now)
	c.Tick(now)
	// A consensus-reached response for a clock we do NOT hold must not
	// kill us (protects against cross-cycle waves, Fig. 4 families).
	foreign := lamport.Clock{Value: 99, Owner: id(2)}
	c.HandleResponse(id(2), Response{Clock: foreign, HasParent: true, ConsensusReached: true}, now)
	if c.Status() != StatusLive {
		t.Fatalf("dying wave accepted with mismatched clock: %v", c.Status())
	}
	// With the matching clock it is accepted.
	c.HandleResponse(id(2), Response{Clock: c.Clock(), HasParent: true, ConsensusReached: true}, now)
	if c.Status() != StatusDying {
		t.Fatalf("dying wave rejected with matching clock: %v", c.Status())
	}
	if c.TerminationReason() != ReasonNotified {
		t.Fatalf("reason = %v, want notified", c.TerminationReason())
	}
}

func TestDyingWaveIgnoredWhileBusy(t *testing.T) {
	now := time.Unix(0, 0)
	idle := false
	cfg := Config{TTB: testTTB, TTA: testTTA}
	c := New(id(1), cfg, func() bool { return idle }, now)
	c.AddReferenced(id(2), now)
	c.Tick(now)
	c.HandleResponse(id(2), Response{Clock: c.Clock(), HasParent: true, ConsensusReached: true}, now)
	if c.Status() != StatusLive {
		t.Fatal("busy activity joined a dying wave")
	}
}

func TestAddReferencedIsIdempotentAndReacquirable(t *testing.T) {
	c, now := newIdleCollector(t)
	c.AddReferenced(id(2), now)
	c.AddReferenced(id(2), now)
	if got := c.Referenced(); len(got) != 1 {
		t.Fatalf("Referenced = %v, want 1", got)
	}
	// Drop before first send: pending removal; re-acquiring cancels it.
	c2 := New(id(3), Config{TTB: testTTB, TTA: testTTA}, func() bool { return true }, now)
	c2.AddReferenced(id(2), now)
	c2.LostReferenced(id(2), now)
	c2.AddReferenced(id(2), now) // re-acquired before the mandatory send
	res := c2.Tick(now)
	if len(res.Messages) != 1 {
		t.Fatalf("messages = %v", res.Messages)
	}
	if got := c2.Referenced(); len(got) != 1 {
		t.Fatalf("re-acquired edge dropped after send: %v", got)
	}
}

func TestLostReferencedUnknownTargetIsNoop(t *testing.T) {
	c, now := newIdleCollector(t)
	before := c.Clock()
	c.LostReferenced(id(42), now)
	if c.Clock() != before {
		t.Fatal("unknown-target loss ticked the clock")
	}
}

func TestTickAfterEnteredDyingSendsNothing(t *testing.T) {
	// Build a self-cycle to a consensus, then check the dying phase sends
	// no messages but still answers with the wave.
	g := newGraph(t)
	a := id(1)
	g.add(a)
	g.link(a, a)
	var dying bool
	for i := 0; i < 30 && !dying; i++ {
		g.now = g.now.Add(testTTB)
		res := g.collectors[a].Tick(g.now)
		dying = res.EnteredDying
		for _, ob := range res.Messages {
			resp := g.collectors[a].HandleMessage(ob.Msg, g.now)
			g.collectors[a].HandleResponse(ob.To, resp, g.now)
		}
	}
	if !dying {
		t.Fatal("self-cycle never reached consensus")
	}
	res := g.collectors[a].Tick(g.now.Add(testTTB))
	if len(res.Messages) != 0 || res.Terminated {
		t.Fatalf("dying tick = %+v, want silent non-terminal", res)
	}
	resp := g.collectors[a].HandleMessage(Message{Sender: id(2), Clock: g.collectors[a].Clock()}, g.now)
	if !resp.ConsensusReached {
		t.Fatal("dying activity must answer with the wave")
	}
	// After TTA it terminates.
	res = g.collectors[a].Tick(g.now.Add(testTTB + testTTA))
	if !res.Terminated || res.Reason != ReasonCyclic {
		t.Fatalf("dying activity did not terminate after TTA: %+v", res)
	}
}

func TestMessagesSortedByDestination(t *testing.T) {
	c, now := newIdleCollector(t)
	targets := []ids.ActivityID{{Node: 3, Seq: 1}, {Node: 1, Seq: 5}, {Node: 2, Seq: 2}}
	for _, tgt := range targets {
		c.AddReferenced(tgt, now)
	}
	res := c.Tick(now)
	if len(res.Messages) != 3 {
		t.Fatalf("messages = %d", len(res.Messages))
	}
	for i := 1; i < len(res.Messages); i++ {
		if !res.Messages[i-1].To.Less(res.Messages[i].To) {
			t.Fatalf("broadcast not sorted: %v then %v", res.Messages[i-1].To, res.Messages[i].To)
		}
	}
}
