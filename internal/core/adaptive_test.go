package core

import (
	"testing"
	"time"

	"repro/internal/lamport"
)

func adaptiveCfg() Config {
	return Config{
		TTB: 60 * time.Second,
		TTA: 300 * time.Second,
		Adaptive: Adaptive{
			Enabled: true,
			MinTTB:  15 * time.Second,
			MaxTTB:  120 * time.Second,
		},
	}
}

func TestAdaptiveValidate(t *testing.T) {
	cfg := adaptiveCfg()
	if err := cfg.Adaptive.Validate(cfg, 0); err != nil {
		t.Fatal(err)
	}
	// Disabled adaptives always validate.
	if err := (Adaptive{}).Validate(cfg, 0); err != nil {
		t.Fatal(err)
	}
	bad := cfg.Adaptive
	bad.MaxTTB = 10 * time.Second // below min
	if err := bad.Validate(cfg, 0); err == nil {
		t.Fatal("max < min accepted")
	}
	bad = cfg.Adaptive
	bad.MinTTB = 90 * time.Second // does not bracket base TTB
	bad.MaxTTB = 120 * time.Second
	if err := bad.Validate(cfg, 0); err == nil {
		t.Fatal("min above base TTB accepted")
	}
	bad = cfg.Adaptive
	bad.MaxTTB = 200 * time.Second // 2*200 > TTA=300
	if err := bad.Validate(cfg, 0); err == nil {
		t.Fatal("TTA-violating MaxTTB accepted")
	}
	// MaxComm participates in the bound.
	if err := cfg.Adaptive.Validate(cfg, 100*time.Second); err == nil {
		t.Fatal("2*120+100 > 300 must be rejected")
	}
}

func TestNextBeatDefaultsWithoutAdaptive(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := Config{TTB: testTTB, TTA: testTTA}
	c := New(id(1), cfg, func() bool { return true }, now)
	res := c.Tick(now)
	if res.NextBeat != testTTB {
		t.Fatalf("NextBeat = %v, want base TTB", res.NextBeat)
	}
}

func TestNextBeatSlowsWhenBusy(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := adaptiveCfg()
	c := New(id(1), cfg, func() bool { return false }, now)
	res := c.Tick(now)
	if res.NextBeat != cfg.Adaptive.MaxTTB {
		t.Fatalf("busy NextBeat = %v, want MaxTTB %v", res.NextBeat, cfg.Adaptive.MaxTTB)
	}
}

func TestNextBeatBaseWhenIdleUnsuspecting(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := adaptiveCfg()
	c := New(id(1), cfg, func() bool { return true }, now)
	res := c.Tick(now)
	if res.NextBeat != cfg.TTB {
		t.Fatalf("idle NextBeat = %v, want base %v", res.NextBeat, cfg.TTB)
	}
}

func TestNextBeatFastWhenParentAdopted(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := adaptiveCfg()
	c := New(id(1), cfg, func() bool { return true }, now)
	c.AddReferenced(id(2), now)
	// Adopt a foreign clock and then a parent for it.
	high := lamport.Clock{Value: 9, Owner: id(2)}
	c.HandleMessage(Message{Sender: id(2), Clock: high}, now)
	c.HandleResponse(id(2), Response{Clock: high, HasParent: true}, now)
	if c.Parent().IsNil() {
		t.Fatal("setup: parent expected")
	}
	res := c.Tick(now)
	if res.NextBeat != cfg.Adaptive.MinTTB {
		t.Fatalf("suspecting NextBeat = %v, want MinTTB %v", res.NextBeat, cfg.Adaptive.MinTTB)
	}
}

func TestNextBeatFastWhenOwnerSeesAgreement(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := adaptiveCfg()
	c := New(id(1), cfg, func() bool { return true }, now)
	// One referencer agrees with our own clock, another does not (if all
	// agreed, the consensus itself would fire instead of mere suspicion).
	c.HandleMessage(Message{Sender: id(3), Clock: c.Clock(), Consensus: true}, now)
	c.HandleMessage(Message{Sender: id(4), Clock: c.Clock(), Consensus: false}, now)
	res := c.Tick(now)
	if res.NextBeat != cfg.Adaptive.MinTTB {
		t.Fatalf("owner-with-partial-agreement NextBeat = %v, want MinTTB", res.NextBeat)
	}
}

func TestNextBeatDuringDying(t *testing.T) {
	g := newGraph(t)
	g.cfg.Adaptive = Adaptive{Enabled: true, MinTTB: testTTB / 2, MaxTTB: testTTB}
	a := id(1)
	g.add(a)
	g.link(a, a) // self-cycle: reaches consensus quickly
	var sawDying bool
	for i := 0; i < 40 && !sawDying; i++ {
		g.now = g.now.Add(testTTB)
		res := g.collectors[a].Tick(g.now)
		if res.EnteredDying {
			sawDying = true
			if res.NextBeat != testTTB {
				t.Fatalf("entered-dying NextBeat = %v, want TTB", res.NextBeat)
			}
		}
		for _, ob := range res.Messages {
			resp := g.collectors[a].HandleMessage(ob.Msg, g.now)
			g.collectors[a].HandleResponse(ob.To, resp, g.now)
		}
	}
	if !sawDying {
		t.Fatal("self-cycle never reached consensus")
	}
	// While dying, NextBeat stays at TTB and no messages are sent.
	res := g.collectors[a].Tick(g.now.Add(testTTB))
	if len(res.Messages) != 0 || res.NextBeat != testTTB {
		t.Fatalf("dying tick = %+v", res)
	}
}

// TestAdaptiveStillCollectsAndIsSafe reruns core scenarios under adaptive
// beats: the harness ticks at fixed TTB (a legal schedule: every activity
// may beat at least that often), so only algorithm behaviour can differ.
func TestAdaptiveStillCollectsAndIsSafe(t *testing.T) {
	g := newGraph(t)
	g.cfg.Adaptive = Adaptive{Enabled: true, MinTTB: testTTB / 2, MaxTTB: testTTB}
	a, b, c, root := id(1), id(2), id(3), id(4)
	g.add(a)
	g.add(b)
	g.add(c)
	g.addBusy(root)
	g.link(a, b)
	g.link(b, c)
	g.link(c, a)
	g.link(root, a)
	g.run(20)
	if !g.noneCollected(a, b, c) {
		t.Fatal("live cycle collected under adaptive beats")
	}
	g.drop(root, a)
	g.run(3 * stepsFor(3))
	if !g.allCollected(a, b, c) {
		t.Fatal("garbage cycle not collected under adaptive beats")
	}
}
