package nas

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// --- NAS random generator ---------------------------------------------------

func TestLCGRange(t *testing.T) {
	r := NewLCG(DefaultSeed)
	for i := 0; i < 10_000; i++ {
		v := r.Next()
		if v <= 0 || v >= 1 {
			t.Fatalf("LCG value %v out of (0,1)", v)
		}
	}
}

func TestLCGSkipMatchesSequential(t *testing.T) {
	seq := NewLCG(DefaultSeed)
	for i := 0; i < 1000; i++ {
		seq.Next()
	}
	want := seq.Next()

	skip := NewLCG(DefaultSeed)
	skip.Skip(1000)
	if got := skip.Next(); got != want {
		t.Fatalf("Skip(1000) diverged: %v vs %v", got, want)
	}
}

func TestLCGSkipZeroAndComposition(t *testing.T) {
	a := NewLCG(DefaultSeed)
	a.Skip(0)
	b := NewLCG(DefaultSeed)
	if a.Next() != b.Next() {
		t.Fatal("Skip(0) changed the stream")
	}
	// Skip(m+n) == Skip(m);Skip(n).
	c := NewLCG(DefaultSeed)
	c.Skip(123 + 456)
	d := NewLCG(DefaultSeed)
	d.Skip(123)
	d.Skip(456)
	if c.Next() != d.Next() {
		t.Fatal("Skip is not additive")
	}
}

func TestLCGUniformity(t *testing.T) {
	r := NewLCG(DefaultSeed)
	const n = 100_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Next()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

// --- FFT --------------------------------------------------------------------

func TestFFT1DKnownValues(t *testing.T) {
	// FFT of a constant signal is an impulse at frequency 0.
	x := []complex128{1, 1, 1, 1}
	FFT1D(x, 1)
	want := []complex128{4, 0, 0, 0}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("FFT(ones)[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// FFT of an impulse is constant.
	y := []complex128{1, 0, 0, 0}
	FFT1D(y, 1)
	for i := range y {
		if cmplx.Abs(y[i]-1) > 1e-12 {
			t.Fatalf("FFT(impulse)[%d] = %v, want 1", i, y[i])
		}
	}
}

func TestFFT1DRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 8, 64, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		FFT1D(x, 1)
		FFT1D(x, -1)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round-trip error at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFT1DParseval(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 128
	x := make([]complex128, n)
	var timeEnergy float64
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
		timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	FFT1D(x, 1)
	var freqEnergy float64
	for i := range x {
		freqEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	if math.Abs(freqEnergy/float64(n)-timeEnergy) > 1e-6*timeEnergy {
		t.Fatalf("Parseval violated: %v vs %v", freqEnergy/float64(n), timeEnergy)
	}
}

func TestFFT1DRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT1D accepted length 3")
		}
	}()
	FFT1D(make([]complex128, 3), 1)
}

func TestComplexFloatsRoundTrip(t *testing.T) {
	x := []complex128{complex(1, 2), complex(-3, 4.5)}
	got := floatsToComplex(complexToFloats(x))
	if len(got) != len(x) || got[0] != x[0] || got[1] != x[1] {
		t.Fatalf("round-trip = %v", got)
	}
}

func TestFFTPlanesAndPencilsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	nx, ny, nz := 8, 4, 4
	data := make([]complex128, nx*ny*nz)
	orig := make([]complex128, len(data))
	for i := range data {
		data[i] = complex(r.NormFloat64(), r.NormFloat64())
		orig[i] = data[i]
	}
	fftPlanesXY(data, nx, ny, 1)
	fftPlanesXY(data, nx, ny, -1)
	fftPencilsZ(data, nz, 1)
	fftPencilsZ(data, nz, -1)
	for i := range data {
		if cmplx.Abs(data[i]-orig[i]) > 1e-9 {
			t.Fatalf("plane/pencil round-trip error at %d", i)
		}
	}
}

// --- Row partitioning ---------------------------------------------------------

func TestRowRangeCoversAllRows(t *testing.T) {
	for _, tc := range []struct{ n, np int }{{10, 3}, {128, 4}, {7, 7}, {5, 8}} {
		covered := make([]bool, tc.n)
		prevHi := 0
		for rank := 0; rank < tc.np; rank++ {
			lo, hi := rowRange(tc.n, tc.np, rank)
			if lo != prevHi {
				t.Fatalf("n=%d np=%d rank=%d: gap (lo=%d, prevHi=%d)", tc.n, tc.np, rank, lo, prevHi)
			}
			for i := lo; i < hi; i++ {
				covered[i] = true
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("n=%d np=%d: rows end at %d", tc.n, tc.np, prevHi)
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("n=%d np=%d: row %d uncovered", tc.n, tc.np, i)
			}
		}
	}
}

func TestCountOffdiags(t *testing.T) {
	// Interior row: 4 neighbours; corner row 0: only +1 and +stride.
	if got := countOffdiags(50, 100, 10); got != 4 {
		t.Fatalf("interior = %d, want 4", got)
	}
	if got := countOffdiags(0, 100, 10); got != 2 {
		t.Fatalf("row 0 = %d, want 2", got)
	}
	if got := countOffdiags(99, 100, 10); got != 2 {
		t.Fatalf("last row = %d, want 2", got)
	}
	// Stride 1 duplicates the ±1 neighbours; the convention counts them
	// with multiplicity, matching matvec's accumulation (the matrix entry
	// is then -2, still symmetric and diagonally dominated).
	if got := countOffdiags(5, 100, 1); got != 4 {
		t.Fatalf("stride-1 interior = %d, want 4 (multiplicity convention)", got)
	}
}
