package nas

import (
	"fmt"
	"math"
	"time"

	"repro/internal/active"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// RunConfig assembles one benchmark run (one cell of the Fig. 8/9 tables).
type RunConfig struct {
	// Kernel selects CG, EP or FT.
	Kernel Kernel
	// Workers is the number of worker activities (the paper uses 256).
	Workers int
	// Nodes scales the Grid'5000 topology down to about this many nodes
	// (the paper uses all 128); activities are placed round-robin (§5.2).
	Nodes int
	// DGC enables the distributed garbage collector; with false the run
	// is the paper's "No DGC" baseline with explicit termination.
	DGC bool
	// TTB, TTA are the DGC parameters in paper time (§5.2 uses 30 s /
	// 61 s).
	TTB, TTA time.Duration
	// ScaleFactor compresses paper time onto the wall clock (DESIGN.md
	// §3); 0 defaults to 1000.
	ScaleFactor int64
	// CG, EP, FT size their kernels; only the selected kernel's params
	// are used.
	CG CGParams
	EP EPParams
	FT FTParams
	// Timeout bounds the whole run in paper time (default 4 h).
	Timeout time.Duration
}

func (c RunConfig) withDefaults() RunConfig {
	if c.ScaleFactor == 0 {
		c.ScaleFactor = 1000
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.TTB == 0 {
		c.TTB = 30 * time.Second
	}
	if c.TTA == 0 {
		c.TTA = 61 * time.Second
	}
	if c.Timeout == 0 {
		c.Timeout = 4 * time.Hour
	}
	return c
}

// Result is one row cell of the Fig. 8/9 tables.
type Result struct {
	// Kernel echoes the configuration.
	Kernel Kernel
	// Value is the kernel's numeric result (ζ for CG, Σdeviates for EP,
	// checksum real part for FT).
	Value float64
	// Verified reports the kernel's self-check.
	Verified bool
	// AppTime is the benchmark duration in paper time (Fig. 9 "No
	// DGC"/"DGC" columns).
	AppTime time.Duration
	// DGCTime is the time from the benchmark result until every activity
	// was collected (Fig. 9 "DGC time"); zero for no-DGC runs.
	DGCTime time.Duration
	// AppBytes / FutureBytes / DGCBytes are the accounted traffic per
	// class (Fig. 8 measures their sum).
	AppBytes    uint64
	FutureBytes uint64
	DGCBytes    uint64
	// Collected counts terminations per reason (DGC runs).
	Collected map[core.Reason]int
}

// TotalBytes is the Fig. 8 quantity: all payload bytes on the wire.
func (r Result) TotalBytes() uint64 {
	return r.AppBytes + r.FutureBytes + r.DGCBytes
}

// Run executes one NAS benchmark run and reports its measurements.
func Run(cfg RunConfig) (Result, error) {
	cfg = cfg.withDefaults()
	res := Result{Kernel: cfg.Kernel}

	topo := grid.Grid5000()
	if cfg.Nodes < topo.NumNodes() {
		topo = topo.Scaled((topo.NumNodes() + cfg.Nodes - 1) / cfg.Nodes)
	}
	clock := vclock.NewScaled(cfg.ScaleFactor)
	env := active.NewEnv(active.Config{
		TTB:        cfg.TTB,
		TTA:        cfg.TTA,
		Clock:      clock,
		Latency:    topo.Latency,
		MaxComm:    topo.MaxComm(),
		DisableDGC: !cfg.DGC,
	})
	defer env.Close()

	nodes := make([]*active.Node, topo.NumNodes())
	for i := range nodes {
		nodes[i] = env.NewNode()
	}

	// Round-robin placement of 1 coordinator + Workers workers (§5.2).
	placement := topo.RoundRobin(cfg.Workers + 1)
	nodeFor := func(i int) *active.Node { return nodes[int(placement[i])-1] }

	coordBehavior := &coordinator{
		kernel:     cfg.Kernel,
		np:         cfg.Workers,
		cg:         cfg.CG,
		ep:         cfg.EP,
		ft:         cfg.FT,
		waitBudget: cfg.Timeout,
	}
	coord := nodeFor(0).NewActive("coordinator", coordBehavior)
	workerHandles := make([]*active.Handle, cfg.Workers)
	workerRefs := make([]wire.Value, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		workerHandles[i] = nodeFor(i+1).NewActive(fmt.Sprintf("worker-%d", i), &worker{})
		workerRefs[i] = workerHandles[i].Ref()
	}

	initArgs := wire.Dict(map[string]wire.Value{"workers": wire.List(workerRefs...)})
	if _, err := coord.CallSync("init", initArgs, cfg.Timeout); err != nil {
		return res, fmt.Errorf("nas: init: %w", err)
	}
	// The deployer's references to the workers are dropped once the
	// coordinator holds them (as the paper's application would); only the
	// coordinator handle remains.
	for _, h := range workerHandles {
		h.Release()
	}

	start := clock.Now()
	out, err := coord.CallSync("run", wire.Null(), cfg.Timeout)
	if err != nil {
		return res, fmt.Errorf("nas: run: %w", err)
	}
	res.AppTime = clock.Now().Sub(start)
	res.Value = out.Get("value").AsFloat()
	res.Verified = verify(cfg, out)

	snap := env.Network().Snapshot()
	res.AppBytes = snap.Bytes[simnet.ClassApp]
	res.FutureBytes = snap.Bytes[simnet.ClassFuture]
	res.DGCBytes = snap.Bytes[simnet.ClassDGC]

	if cfg.DGC {
		// Fig. 9's "DGC time": drop the last root and watch the complete
		// application graph (one big cycle) disappear.
		coord.Release()
		dgcTime, err := env.WaitCollected(0, cfg.Timeout)
		if err != nil {
			return res, fmt.Errorf("nas: collection: %w", err)
		}
		res.DGCTime = dgcTime
		res.Collected = env.Stats().Collected
		// Account the traffic spent collecting too (the paper's totals
		// include the full run).
		snap = env.Network().Snapshot()
		res.AppBytes = snap.Bytes[simnet.ClassApp]
		res.FutureBytes = snap.Bytes[simnet.ClassFuture]
		res.DGCBytes = snap.Bytes[simnet.ClassDGC]
	} else {
		// Explicit termination, as the paper's NAS implementation does.
		if _, err := coord.CallSync("shutdown", wire.Null(), cfg.Timeout); err != nil {
			return res, fmt.Errorf("nas: shutdown: %w", err)
		}
		if _, err := env.WaitCollected(0, cfg.Timeout); err != nil {
			return res, fmt.Errorf("nas: explicit termination: %w", err)
		}
		coord.Release()
	}
	return res, nil
}

// verify applies each kernel's self-check.
func verify(cfg RunConfig, out wire.Value) bool {
	switch cfg.Kernel {
	case KernelCG:
		// The explicit relative residual of the last solve must be small
		// (CG with 25 inner iterations on this κ≈17 matrix converges to
		// ~1e-5 relative) and ζ finite and above the shift.
		rnorm := out.Get("rnorm").AsFloat()
		zeta := out.Get("value").AsFloat()
		rel := rnorm / math.Sqrt(float64(cfg.CG.N))
		return rel < 1e-4 && !math.IsNaN(zeta) && zeta > cfg.CG.Shift
	case KernelEP:
		// The Marsaglia acceptance ratio converges to π/4 ≈ 0.785.
		pairs := float64(out.Get("pairs").AsInt())
		accepted := float64(out.Get("accepted").AsInt())
		if pairs == 0 {
			return false
		}
		ratio := accepted / pairs
		return math.Abs(ratio-math.Pi/4) < 0.01
	case KernelFT:
		v := out.Get("value").AsFloat()
		im := out.Get("im").AsFloat()
		return !math.IsNaN(v) && !math.IsInf(v, 0) && !math.IsNaN(im)
	default:
		return false
	}
}

// TestParams returns tiny kernel classes for unit tests.
func TestParams(k Kernel) RunConfig {
	cfg := RunConfig{
		Kernel:      k,
		Workers:     4,
		Nodes:       4,
		DGC:         true,
		TTB:         20 * time.Second,
		TTA:         55 * time.Second,
		ScaleFactor: 400,
		Timeout:     2 * time.Hour,
	}
	switch k {
	case KernelCG:
		cfg.CG = CGParams{N: 128, Stride: 16, Inner: 25, Outer: 2, Shift: 10}
	case KernelEP:
		cfg.EP = EPParams{LogPairs: 16}
	case KernelFT:
		cfg.FT = FTParams{NX: 8, NY: 8, NZ: 8, Iters: 2}
	}
	return cfg
}

// PaperParams returns the laptop-scaled equivalent of the paper's class C
// / 256-activity setup: same TTB/TTA (30 s / 61 s), Grid'5000 latencies,
// larger kernels, more workers.
func PaperParams(k Kernel) RunConfig {
	cfg := RunConfig{
		Kernel:      k,
		Workers:     32,
		Nodes:       16,
		DGC:         true,
		TTB:         30 * time.Second,
		TTA:         61 * time.Second,
		ScaleFactor: 200,
		Timeout:     6 * time.Hour,
	}
	switch k {
	case KernelCG:
		cfg.CG = CGParams{N: 1400, Stride: 64, Inner: 25, Outer: 6, Shift: 10}
	case KernelEP:
		cfg.EP = EPParams{LogPairs: 22}
	case KernelFT:
		cfg.FT = FTParams{NX: 32, NY: 32, NZ: 32, Iters: 6}
	}
	return cfg
}

// nodePlacementCheck is referenced by tests to assert round-robin
// placement matches the paper's deployment.
func nodePlacementCheck(topo *grid.Topology, m int) []ids.NodeID {
	return topo.RoundRobin(m)
}
