package nas

import (
	"math"
	"testing"

	"repro/internal/grid"
)

// runKernel executes a test-sized kernel run and fails on error.
func runKernel(t *testing.T, cfg RunConfig) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg.Kernel, err)
	}
	if !res.Verified {
		t.Fatalf("Run(%s): verification failed (value=%v)", cfg.Kernel, res.Value)
	}
	return res
}

func TestCGRunsAndCollects(t *testing.T) {
	res := runKernel(t, TestParams(KernelCG))
	if res.DGCTime <= 0 {
		t.Fatal("DGC time not measured")
	}
	if res.AppBytes == 0 || res.DGCBytes == 0 {
		t.Fatalf("traffic not accounted: %+v", res)
	}
	// CG ships full vectors every iteration: application traffic must
	// dominate DGC chatter even at test scale... at least exist in the
	// same order of magnitude. The strict ratio is asserted at bench
	// scale (EXPERIMENTS.md).
	if res.AppBytes+res.FutureBytes < 10_000 {
		t.Fatalf("suspiciously little CG app traffic: %d", res.AppBytes+res.FutureBytes)
	}
}

func TestEPRunsAndCollects(t *testing.T) {
	res := runKernel(t, TestParams(KernelEP))
	if res.DGCTime <= 0 {
		t.Fatal("DGC time not measured")
	}
	// EP ships almost nothing: a few requests and tiny results.
	if res.AppBytes+res.FutureBytes > 100_000 {
		t.Fatalf("EP app traffic too high: %d", res.AppBytes+res.FutureBytes)
	}
}

func TestFTRunsAndCollects(t *testing.T) {
	res := runKernel(t, TestParams(KernelFT))
	if res.DGCTime <= 0 {
		t.Fatal("DGC time not measured")
	}
	// FT ships the whole grid repeatedly.
	if res.AppBytes+res.FutureBytes < 50_000 {
		t.Fatalf("suspiciously little FT app traffic: %d", res.AppBytes+res.FutureBytes)
	}
}

func TestNoDGCBaselineRuns(t *testing.T) {
	cfg := TestParams(KernelEP)
	cfg.DGC = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("baseline EP verification failed")
	}
	if res.DGCBytes != 0 {
		t.Fatalf("baseline run produced DGC traffic: %d bytes", res.DGCBytes)
	}
	if res.DGCTime != 0 {
		t.Fatal("baseline run must not report a DGC time")
	}
}

func TestResultsIndependentOfWorkerCount(t *testing.T) {
	// The kernels compute the same global result whatever the
	// parallelism: the numeric cores use the shared global sequence
	// (EP), the same matrix (CG) and the same grid (FT).
	for _, k := range []Kernel{KernelCG, KernelEP, KernelFT} {
		k := k
		t.Run(string(k), func(t *testing.T) {
			cfg1 := TestParams(k)
			cfg1.Workers = 2
			cfg1.DGC = false // faster: skip collection phases
			cfg2 := TestParams(k)
			cfg2.Workers = 4
			cfg2.DGC = false
			r1, err := Run(cfg1)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r1.Value-r2.Value) > 1e-9*(1+math.Abs(r1.Value)) {
				t.Fatalf("value depends on np: %v (np=2) vs %v (np=4)", r1.Value, r2.Value)
			}
		})
	}
}

func TestEPAcceptanceRatioIsPiOver4(t *testing.T) {
	cfg := TestParams(KernelEP)
	cfg.DGC = false
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("EP acceptance ratio check failed")
	}
}

func TestCollectedViaCyclesNotLeaks(t *testing.T) {
	// The complete reference graph is one big cycle: collection must be
	// driven by the cyclic machinery (consensus + wave), with at most a
	// few stragglers on the acyclic path.
	res := runKernel(t, TestParams(KernelEP))
	var cyclic, total int
	for reason, n := range res.Collected {
		total += n
		if reason.String() == "cyclic-consensus" || reason.String() == "cyclic-notified" {
			cyclic += n
		}
	}
	if total != 5 { // 4 workers + coordinator
		t.Fatalf("collected %d activities, want 5 (%v)", total, res.Collected)
	}
	if cyclic == 0 {
		t.Fatalf("no cyclic collections: %v", res.Collected)
	}
}

func TestTestAndPaperParamsComplete(t *testing.T) {
	for _, k := range []Kernel{KernelCG, KernelEP, KernelFT} {
		tp := TestParams(k)
		if tp.Kernel != k || tp.Workers == 0 {
			t.Fatalf("TestParams(%s) incomplete: %+v", k, tp)
		}
		pp := PaperParams(k)
		if pp.Kernel != k || pp.Workers < tp.Workers {
			t.Fatalf("PaperParams(%s) incomplete: %+v", k, pp)
		}
		if pp.TTB.Seconds() != 30 || pp.TTA.Seconds() != 61 {
			t.Fatalf("PaperParams(%s) must use the paper's TTB/TTA (30/61s): %+v", k, pp)
		}
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	topo := grid.Grid5000().Scaled(16)
	got := nodePlacementCheck(topo, 10)
	if len(got) != 10 {
		t.Fatalf("placement size %d", len(got))
	}
	for i, n := range got {
		if int(n) != i%topo.NumNodes()+1 {
			t.Fatalf("placement[%d] = %v, want round-robin", i, n)
		}
	}
}
