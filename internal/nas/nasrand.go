// Package nas implements the NAS Parallel Benchmark kernels the paper
// evaluates with (§5.2): CG (conjugate gradient, communication heavy), EP
// (embarrassingly parallel, almost no communication) and FT (3-D FFT,
// all-exchange heavy) — written against the active-object runtime so that,
// as in the paper's ProActive implementation, every activity ends up
// referencing every other activity and the whole application graph is
// cyclic garbage once the result is out.
//
// The kernels use the genuine NAS algorithms at reduced problem classes;
// DESIGN.md §3 records the substitution. Their numeric cores (the NAS
// linear congruential generator with skip-ahead, the radix-2 FFT) are
// real, so results are verifiable and independent of the worker count.
package nas

// The NAS pseudorandom generator: x_{k+1} = a·x_k mod 2^46 with
// a = 5^13, returning doubles in (0,1). Because 2^46 divides 2^64,
// wrapping 64-bit multiplication followed by a 46-bit mask computes the
// product modulo 2^46 exactly.
const (
	lcgA   uint64 = 1220703125 // 5^13
	mask46 uint64 = 1<<46 - 1
	// DefaultSeed is the NAS benchmark seed (271828183).
	DefaultSeed uint64 = 271828183
	r46                = 1.0 / (1 << 46)
)

// LCG is the NAS random stream. The zero value is invalid; use NewLCG.
type LCG struct {
	x uint64
}

// NewLCG returns a stream positioned at seed.
func NewLCG(seed uint64) *LCG {
	return &LCG{x: seed & mask46}
}

// Next returns the next double in (0, 1).
func (r *LCG) Next() float64 {
	r.x = (r.x * lcgA) & mask46
	return float64(r.x) * r46
}

// Skip advances the stream by n steps in O(log n) (the NAS EP seed-jump),
// so workers can draw disjoint blocks of the same global sequence.
func (r *LCG) Skip(n uint64) {
	r.x = (r.x * powMod46(lcgA, n)) & mask46
}

// powMod46 computes a^n mod 2^46 by binary powering on wrapping 64-bit
// multiplication.
func powMod46(a, n uint64) uint64 {
	result := uint64(1)
	base := a & mask46
	for n > 0 {
		if n&1 == 1 {
			result = (result * base) & mask46
		}
		base = (base * base) & mask46
		n >>= 1
	}
	return result
}
