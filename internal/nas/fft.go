package nas

import (
	"math"
	"math/bits"
)

// FFT1D computes the in-place radix-2 Cooley–Tukey FFT of x (whose length
// must be a power of two). dir is +1 for forward, -1 for inverse; the
// inverse includes the 1/n scaling so that FFT1D(FFT1D(x, 1), -1) == x.
func FFT1D(x []complex128, dir int) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) != 0 {
		panic("nas: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	sign := float64(dir)
	for size := 2; size <= n; size <<= 1 {
		ang := sign * -2 * math.Pi / float64(size)
		wn := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wn
			}
		}
	}
	if dir < 0 {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// fftPlanesXY applies a 2-D FFT (x then y direction) to each consecutive
// nx×ny plane of data, in place.
func fftPlanesXY(data []complex128, nx, ny, dir int) {
	planeSize := nx * ny
	col := make([]complex128, ny)
	for base := 0; base+planeSize <= len(data); base += planeSize {
		plane := data[base : base+planeSize]
		// Rows (x-direction) are contiguous.
		for y := 0; y < ny; y++ {
			FFT1D(plane[y*nx:(y+1)*nx], dir)
		}
		// Columns (y-direction) are strided.
		for x := 0; x < nx; x++ {
			for y := 0; y < ny; y++ {
				col[y] = plane[y*nx+x]
			}
			FFT1D(col, dir)
			for y := 0; y < ny; y++ {
				plane[y*nx+x] = col[y]
			}
		}
	}
}

// fftPencilsZ applies a 1-D FFT to each consecutive run of nz elements
// (z-pencils laid out contiguously), in place.
func fftPencilsZ(data []complex128, nz, dir int) {
	for base := 0; base+nz <= len(data); base += nz {
		FFT1D(data[base:base+nz], dir)
	}
}

// complexToFloats flattens complex data into interleaved (re, im) floats
// for the wire codec.
func complexToFloats(x []complex128) []float64 {
	out := make([]float64, 2*len(x))
	for i, c := range x {
		out[2*i] = real(c)
		out[2*i+1] = imag(c)
	}
	return out
}

// floatsToComplex is the inverse of complexToFloats.
func floatsToComplex(f []float64) []complex128 {
	out := make([]complex128, len(f)/2)
	for i := range out {
		out[i] = complex(f[2*i], f[2*i+1])
	}
	return out
}
