package nas

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/active"
	"repro/internal/wire"
)

// Kernel names the NAS kernel to run.
type Kernel string

// The kernels the paper benchmarks (§5.2).
const (
	// KernelCG is the conjugate-gradient eigenvalue approximation
	// (heavily communicating).
	KernelCG Kernel = "cg"
	// KernelEP is the embarrassingly parallel Gaussian-deviate kernel
	// (lightly communicating).
	KernelEP Kernel = "ep"
	// KernelFT is the 3-D FFT PDE solver (all-exchange per iteration).
	KernelFT Kernel = "ft"
)

// CGParams sizes the CG kernel: a banded symmetric positive definite
// matrix of order N with off-diagonals at ±1 and ±Stride, Inner CG
// iterations per outer power iteration.
type CGParams struct {
	N      int
	Stride int
	Inner  int
	Outer  int
	Shift  float64
}

// EPParams sizes the EP kernel: 2^LogPairs Gaussian pairs.
type EPParams struct {
	LogPairs uint
}

// FTParams sizes the FT kernel: an NX×NY×NZ grid evolved Iters times
// (dimensions must be powers of two).
type FTParams struct {
	NX, NY, NZ int
	Iters      int
}

const evolveAlpha = 1e-6 // the NAS FT diffusion constant

// errBadArgs reports malformed kernel arguments.
var errBadArgs = errors.New("nas: malformed kernel arguments")

// worker is the compute behavior shared by all kernels. It keeps its
// matrix rows as plain local data (passive objects with no remote
// references) and its peer references in the activity state, giving the
// complete reference graph the paper attributes to the NAS barriers.
type worker struct {
	rank, np int
	cg       CGParams
	// rows of the banded matrix (built lazily at init when CG is active).
	diag  []float64
	rowLo int
	rowHi int
	hasCG bool
}

var _ active.Behavior = (*worker)(nil)

// rowRange splits n rows evenly among np workers.
func rowRange(n, np, rank int) (int, int) {
	base, rem := n/np, n%np
	lo := rank*base + min(rank, rem)
	hi := lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Serve implements active.Behavior.
func (w *worker) Serve(ctx *active.Context, method string, args wire.Value) (wire.Value, error) {
	switch method {
	case "init":
		return w.init(ctx, args)
	case "matvec":
		return w.matvec(args)
	case "ep":
		return w.ep(args)
	case "fftxy":
		return w.fftxy(args)
	case "fftz":
		return w.fftz(args)
	case "stop":
		ctx.TerminateSelf()
		return wire.Null(), nil
	default:
		return wire.Null(), fmt.Errorf("nas: worker has no method %q", method)
	}
}

func (w *worker) init(ctx *active.Context, args wire.Value) (wire.Value, error) {
	w.rank = int(args.Get("rank").AsInt())
	w.np = int(args.Get("np").AsInt())
	// Storing the full peer list (all workers + coordinator) creates the
	// complete reference graph of §5.2.
	ctx.Store("peers", args.Get("peers"))
	if cgv := args.Get("cg"); !cgv.IsNull() {
		w.cg = CGParams{
			N:      int(cgv.Get("n").AsInt()),
			Stride: int(cgv.Get("stride").AsInt()),
		}
		w.rowLo, w.rowHi = rowRange(w.cg.N, w.np, w.rank)
		w.diag = make([]float64, w.rowHi-w.rowLo)
		for i := range w.diag {
			row := w.rowLo + i
			w.diag[i] = 1 + float64(countOffdiags(row, w.cg.N, w.cg.Stride))*2
		}
		w.hasCG = true
	}
	return wire.Int(int64(w.rank)), nil
}

// countOffdiags counts the -1 entries of a row (neighbours at ±1, ±stride
// inside the matrix).
func countOffdiags(row, n, stride int) int {
	c := 0
	for _, j := range []int{row - 1, row + 1, row - stride, row + stride} {
		if j >= 0 && j < n && j != row {
			c++
		}
	}
	return c
}

// matvec computes this worker's rows of A·p for the full vector p.
func (w *worker) matvec(args wire.Value) (wire.Value, error) {
	if !w.hasCG {
		return wire.Null(), fmt.Errorf("%w: matvec before CG init", errBadArgs)
	}
	p := args.Get("p").AsFloats()
	if len(p) != w.cg.N {
		return wire.Null(), fmt.Errorf("%w: p has %d entries, want %d", errBadArgs, len(p), w.cg.N)
	}
	seg := make([]float64, w.rowHi-w.rowLo)
	for i := range seg {
		row := w.rowLo + i
		v := w.diag[i] * p[row]
		for _, j := range []int{row - 1, row + 1, row - w.cg.Stride, row + w.cg.Stride} {
			if j >= 0 && j < w.cg.N && j != row {
				v -= p[j]
			}
		}
		seg[i] = v
	}
	return wire.Dict(map[string]wire.Value{
		"lo":  wire.Int(int64(w.rowLo)),
		"seg": wire.Floats(seg),
	}), nil
}

// ep draws the worker's block of the global NAS random sequence and
// produces Gaussian deviates by the Marsaglia polar method, exactly as NAS
// EP does.
func (w *worker) ep(args wire.Value) (wire.Value, error) {
	lo := uint64(args.Get("lo").AsInt())
	hi := uint64(args.Get("hi").AsInt())
	rng := NewLCG(DefaultSeed)
	rng.Skip(2 * lo) // each pair consumes two randoms
	var sx, sy float64
	counts := make([]float64, 10)
	var accepted int64
	for k := lo; k < hi; k++ {
		x := 2*rng.Next() - 1
		y := 2*rng.Next() - 1
		t := x*x + y*y
		if t > 1 || t == 0 {
			continue
		}
		fac := math.Sqrt(-2 * math.Log(t) / t)
		gx, gy := x*fac, y*fac
		accepted++
		sx += gx
		sy += gy
		l := int(math.Max(math.Abs(gx), math.Abs(gy)))
		if l < len(counts) {
			counts[l]++
		}
	}
	return wire.Dict(map[string]wire.Value{
		"sx":       wire.Float(sx),
		"sy":       wire.Float(sy),
		"counts":   wire.Floats(counts),
		"accepted": wire.Int(accepted),
	}), nil
}

// fftxy 2-D-transforms each z-plane of the shipped slab.
func (w *worker) fftxy(args wire.Value) (wire.Value, error) {
	data := floatsToComplex(args.Get("data").AsFloats())
	nx := int(args.Get("nx").AsInt())
	ny := int(args.Get("ny").AsInt())
	dir := int(args.Get("dir").AsInt())
	if nx == 0 || ny == 0 || len(data)%(nx*ny) != 0 {
		return wire.Null(), fmt.Errorf("%w: fftxy geometry", errBadArgs)
	}
	fftPlanesXY(data, nx, ny, dir)
	return wire.Dict(map[string]wire.Value{"data": wire.Floats(complexToFloats(data))}), nil
}

// fftz 1-D-transforms each contiguous z-pencil of the shipped block.
func (w *worker) fftz(args wire.Value) (wire.Value, error) {
	data := floatsToComplex(args.Get("data").AsFloats())
	nz := int(args.Get("nz").AsInt())
	dir := int(args.Get("dir").AsInt())
	if nz == 0 || len(data)%nz != 0 {
		return wire.Null(), fmt.Errorf("%w: fftz geometry", errBadArgs)
	}
	fftPencilsZ(data, nz, dir)
	return wire.Dict(map[string]wire.Value{"data": wire.Floats(complexToFloats(data))}), nil
}

// coordinator drives a kernel over the worker pool: it owns the numeric
// outer loops and farms the heavy inner operations out, waiting on futures
// (wait-by-necessity keeps it busy for the DGC throughout the run, §4.1).
type coordinator struct {
	kernel Kernel
	np     int
	cg     CGParams
	ep     EPParams
	ft     FTParams
	// waitBudget bounds each future wait, in environment-clock time.
	waitBudget time.Duration
}

var _ active.Behavior = (*coordinator)(nil)

// Serve implements active.Behavior.
func (c *coordinator) Serve(ctx *active.Context, method string, args wire.Value) (wire.Value, error) {
	switch method {
	case "init":
		return c.init(ctx, args)
	case "run":
		switch c.kernel {
		case KernelCG:
			return c.runCG(ctx)
		case KernelEP:
			return c.runEP(ctx)
		case KernelFT:
			return c.runFT(ctx)
		default:
			return wire.Null(), fmt.Errorf("nas: unknown kernel %q", c.kernel)
		}
	case "shutdown":
		return c.shutdown(ctx)
	default:
		return wire.Null(), fmt.Errorf("nas: coordinator has no method %q", method)
	}
}

// init distributes the peer list: each worker learns every other worker
// and the coordinator (the paper's complete reference graph), and builds
// its local matrix block.
func (c *coordinator) init(ctx *active.Context, args wire.Value) (wire.Value, error) {
	workers := args.Get("workers")
	ctx.Store("workers", workers)
	peers := make([]wire.Value, 0, workers.Len()+1)
	for i := 0; i < workers.Len(); i++ {
		peers = append(peers, workers.At(i))
	}
	peers = append(peers, ctx.Self())
	var cgv wire.Value
	if c.kernel == KernelCG {
		cgv = wire.Dict(map[string]wire.Value{
			"n":      wire.Int(int64(c.cg.N)),
			"stride": wire.Int(int64(c.cg.Stride)),
		})
	} else {
		cgv = wire.Null()
	}
	futs := make([]*active.Future, workers.Len())
	for i := 0; i < workers.Len(); i++ {
		initArgs := wire.Dict(map[string]wire.Value{
			"rank":  wire.Int(int64(i)),
			"np":    wire.Int(int64(c.np)),
			"peers": wire.List(peers...),
			"cg":    cgv,
		})
		fut, err := ctx.Call(workers.At(i), "init", initArgs)
		if err != nil {
			return wire.Null(), err
		}
		futs[i] = fut
	}
	for _, fut := range futs {
		if _, err := fut.Wait(c.waitBudget); err != nil {
			return wire.Null(), err
		}
	}
	return wire.Int(int64(workers.Len())), nil
}

func (c *coordinator) shutdown(ctx *active.Context) (wire.Value, error) {
	workers := ctx.Load("workers")
	for i := 0; i < workers.Len(); i++ {
		if err := ctx.Send(workers.At(i), "stop", wire.Null()); err != nil {
			return wire.Null(), err
		}
	}
	ctx.TerminateSelf()
	return wire.Null(), nil
}

// fanOut calls method on every worker with per-worker args and returns the
// responses in rank order.
func (c *coordinator) fanOut(ctx *active.Context, method string, argsFor func(rank int) wire.Value) ([]wire.Value, error) {
	workers := ctx.Load("workers")
	n := workers.Len()
	if n == 0 {
		return nil, errors.New("nas: coordinator has no workers (init not run?)")
	}
	futs := make([]*active.Future, n)
	for i := 0; i < n; i++ {
		fut, err := ctx.Call(workers.At(i), method, argsFor(i))
		if err != nil {
			return nil, err
		}
		futs[i] = fut
	}
	out := make([]wire.Value, n)
	for i, fut := range futs {
		v, err := fut.Wait(c.waitBudget)
		if err != nil {
			return nil, fmt.Errorf("nas: %s on worker %d: %w", method, i, err)
		}
		out[i] = v
	}
	return out, nil
}

// --- CG -------------------------------------------------------------------

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// distMatvec computes A·p with one matvec round over the workers.
func (c *coordinator) distMatvec(ctx *active.Context, p []float64) ([]float64, error) {
	arg := wire.Dict(map[string]wire.Value{"p": wire.Floats(p)})
	resps, err := c.fanOut(ctx, "matvec", func(int) wire.Value { return arg })
	if err != nil {
		return nil, err
	}
	q := make([]float64, c.cg.N)
	for _, r := range resps {
		lo := int(r.Get("lo").AsInt())
		seg := r.Get("seg").AsFloats()
		copy(q[lo:lo+len(seg)], seg)
	}
	return q, nil
}

// runCG is the NAS CG driver: Outer power iterations, each solving
// A·z = x with Inner unpreconditioned CG steps, and estimating
// ζ = Shift + 1/(x·z).
func (c *coordinator) runCG(ctx *active.Context) (wire.Value, error) {
	n := c.cg.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	var zeta, rnorm float64
	for outer := 0; outer < c.cg.Outer; outer++ {
		z := make([]float64, n)
		r := make([]float64, n)
		copy(r, x)
		p := make([]float64, n)
		copy(p, x)
		rho := dot(r, r)
		for inner := 0; inner < c.cg.Inner; inner++ {
			q, err := c.distMatvec(ctx, p)
			if err != nil {
				return wire.Null(), err
			}
			alpha := rho / dot(p, q)
			for i := range z {
				z[i] += alpha * p[i]
				r[i] -= alpha * q[i]
			}
			rho2 := dot(r, r)
			beta := rho2 / rho
			rho = rho2
			for i := range p {
				p[i] = r[i] + beta*p[i]
			}
		}
		// Explicit residual ‖x − A·z‖ (the NAS verification quantity).
		az, err := c.distMatvec(ctx, z)
		if err != nil {
			return wire.Null(), err
		}
		var rr float64
		for i := range az {
			d := x[i] - az[i]
			rr += d * d
		}
		rnorm = math.Sqrt(rr)
		zeta = c.cg.Shift + 1/dot(x, z)
		norm := math.Sqrt(dot(z, z))
		for i := range x {
			x[i] = z[i] / norm
		}
	}
	return wire.Dict(map[string]wire.Value{
		"value": wire.Float(zeta),
		"rnorm": wire.Float(rnorm),
	}), nil
}

// --- EP -------------------------------------------------------------------

func (c *coordinator) runEP(ctx *active.Context) (wire.Value, error) {
	pairs := uint64(1) << c.ep.LogPairs
	resps, err := c.fanOut(ctx, "ep", func(rank int) wire.Value {
		lo := pairs * uint64(rank) / uint64(c.np)
		hi := pairs * uint64(rank+1) / uint64(c.np)
		return wire.Dict(map[string]wire.Value{
			"lo": wire.Int(int64(lo)),
			"hi": wire.Int(int64(hi)),
		})
	})
	if err != nil {
		return wire.Null(), err
	}
	var sx, sy float64
	var accepted int64
	counts := make([]float64, 10)
	for _, r := range resps {
		sx += r.Get("sx").AsFloat()
		sy += r.Get("sy").AsFloat()
		accepted += r.Get("accepted").AsInt()
		for i, v := range r.Get("counts").AsFloats() {
			counts[i] += v
		}
	}
	return wire.Dict(map[string]wire.Value{
		"value":    wire.Float(sx + sy),
		"sx":       wire.Float(sx),
		"sy":       wire.Float(sy),
		"accepted": wire.Int(accepted),
		"pairs":    wire.Int(int64(pairs)),
		"counts":   wire.Floats(counts),
	}), nil
}

// --- FT -------------------------------------------------------------------

// dist3DFFT runs one distributed 3-D FFT: the xy phase ships z-slabs to
// the workers, the z phase ships z-pencil blocks (the all-exchange
// transpose travels through the coordinator; DESIGN.md §3 notes the
// routing substitution).
func (c *coordinator) dist3DFFT(ctx *active.Context, data []complex128, dir int) ([]complex128, error) {
	nx, ny, nz := c.ft.NX, c.ft.NY, c.ft.NZ
	plane := nx * ny

	// Phase 1: 2-D FFT of each z-plane, z-slabs distributed by rank.
	resps, err := c.fanOut(ctx, "fftxy", func(rank int) wire.Value {
		lo, hi := rowRange(nz, c.np, rank)
		return wire.Dict(map[string]wire.Value{
			"data": wire.Floats(complexToFloats(data[lo*plane : hi*plane])),
			"nx":   wire.Int(int64(nx)),
			"ny":   wire.Int(int64(ny)),
			"dir":  wire.Int(int64(dir)),
		})
	})
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(data))
	for rank, r := range resps {
		lo, _ := rowRange(nz, c.np, rank)
		copy(out[lo*plane:], floatsToComplex(r.Get("data").AsFloats()))
	}

	// Transpose to z-pencils: pencil p = y*nx+x holds out[(z*ny+y)*nx+x].
	pencils := make([]complex128, len(data))
	for z := 0; z < nz; z++ {
		for p := 0; p < plane; p++ {
			pencils[p*nz+z] = out[z*plane+p]
		}
	}

	// Phase 2: 1-D FFT along z, pencil blocks distributed by rank.
	resps, err = c.fanOut(ctx, "fftz", func(rank int) wire.Value {
		lo, hi := rowRange(plane, c.np, rank)
		return wire.Dict(map[string]wire.Value{
			"data": wire.Floats(complexToFloats(pencils[lo*nz : hi*nz])),
			"nz":   wire.Int(int64(nz)),
			"dir":  wire.Int(int64(dir)),
		})
	})
	if err != nil {
		return nil, err
	}
	for rank, r := range resps {
		lo, _ := rowRange(plane, c.np, rank)
		copy(pencils[lo*nz:], floatsToComplex(r.Get("data").AsFloats()))
	}

	// Transpose back to plane-major order.
	for z := 0; z < nz; z++ {
		for p := 0; p < plane; p++ {
			out[z*plane+p] = pencils[p*nz+z]
		}
	}
	return out, nil
}

// runFT is the NAS FT driver: FFT the initial state once, then per
// iteration evolve the spectrum and inverse-FFT it, checksumming 1 024
// points.
func (c *coordinator) runFT(ctx *active.Context) (wire.Value, error) {
	nx, ny, nz := c.ft.NX, c.ft.NY, c.ft.NZ
	total := nx * ny * nz
	rng := NewLCG(DefaultSeed)
	initial := make([]complex128, total)
	for i := range initial {
		re := rng.Next()
		im := rng.Next()
		initial[i] = complex(re, im)
	}
	spectrum, err := c.dist3DFFT(ctx, initial, +1)
	if err != nil {
		return wire.Null(), err
	}
	var chk complex128
	for t := 1; t <= c.ft.Iters; t++ {
		evolved := make([]complex128, total)
		for z := 0; z < nz; z++ {
			kz := wavenumber(z, nz)
			for y := 0; y < ny; y++ {
				ky := wavenumber(y, ny)
				for x := 0; x < nx; x++ {
					kx := wavenumber(x, nx)
					k2 := float64(kx*kx + ky*ky + kz*kz)
					f := math.Exp(-4 * math.Pi * math.Pi * evolveAlpha * float64(t) * k2)
					idx := (z*ny+y)*nx + x
					evolved[idx] = spectrum[idx] * complex(f, 0)
				}
			}
		}
		grid, err := c.dist3DFFT(ctx, evolved, -1)
		if err != nil {
			return wire.Null(), err
		}
		chk = checksum(grid, nx, ny, nz)
	}
	return wire.Dict(map[string]wire.Value{
		"value": wire.Float(real(chk)),
		"im":    wire.Float(imag(chk)),
	}), nil
}

// wavenumber maps a grid index to its signed frequency.
func wavenumber(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// checksum samples 1 024 deterministic grid points, NAS-style.
func checksum(grid []complex128, nx, ny, nz int) complex128 {
	var s complex128
	for j := 1; j <= 1024; j++ {
		x := j % nx
		y := (3 * j) % ny
		z := (5 * j) % nz
		s += grid[(z*ny+y)*nx+x]
	}
	return s / complex(float64(nx*ny*nz), 0)
}
