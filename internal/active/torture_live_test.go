package active

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// TestLiveMiniTorture is the §5.3 torture workload shape on the *live*
// runtime at reduced scale: workers spread over several nodes exchange
// references through real serialized calls for a while (building a
// dynamic random reference graph full of cycles), then everything goes
// idle and must be fully reclaimed. The full 6 401-activity version runs
// on the DES (internal/torture); this variant exercises the actual
// middleware — codec hooks, heap sweeps, tag deaths, drivers — under
// concurrency.
func TestLiveMiniTorture(t *testing.T) {
	e := testEnv(t)
	const (
		nodes     = 4
		workers   = 16
		mutations = 120
	)
	ns := make([]*Node, nodes)
	for i := range ns {
		ns[i] = e.NewNode()
	}
	handles := make([]*Handle, workers)
	for i := range handles {
		handles[i] = ns[i%nodes].NewActive(fmt.Sprintf("w%d", i), relay{})
	}

	// The queue/idleness torture assertion (PR 4): at no sampled instant
	// may any activity be flagged idle while requests are pending in its
	// queue — the state in which the DGC could collect an activity that
	// still owes services (the markIdleIfEmpty vs. policy-held audit).
	assertNoIdleWithPending := func(when string) {
		t.Helper()
		for _, n := range ns {
			for _, ao := range n.snapshotActivities() {
				if ao.queue != nil && ao.queue.idleWhilePending() {
					t.Fatalf("%s: activity %v idle with %d pending requests",
						when, ao.ID(), ao.queue.pendingCount())
				}
			}
		}
	}

	// Exchange phase: keep re-pointing random workers at random peers,
	// through real calls (each hop serializes the reference and triggers
	// the deserialization hook on the receiving node).
	r := rand.New(rand.NewSource(7))
	for m := 0; m < mutations; m++ {
		from := handles[r.Intn(workers)]
		to := handles[r.Intn(workers)]
		key := fmt.Sprintf("set:peer%d", r.Intn(3)) // up to 3 held refs each
		if _, err := from.CallSync(key, to.Ref(), 5*time.Second); err != nil {
			t.Fatalf("mutation %d: %v", m, err)
		}
		assertNoIdleWithPending(fmt.Sprintf("mutation %d", m))
	}
	if e.LiveActivities() != workers {
		t.Fatalf("live = %d during exchange, want %d", e.LiveActivities(), workers)
	}

	// End of the active phase: the deployer walks away.
	for _, h := range handles {
		h.Release()
	}
	if _, err := e.WaitCollected(0, 30*time.Second); err != nil {
		t.Fatalf("mini-torture not fully collected: %v (stats %+v)", err, e.Stats())
	}
	st := e.Stats()
	var total int
	for _, n := range st.Collected {
		total += n
	}
	if total != workers {
		t.Fatalf("collected %d, want %d: %+v", total, workers, st.Collected)
	}
	// A random functional graph of 16 workers with up to 3 held refs
	// virtually always contains cycles; expect the cyclic machinery to
	// have participated.
	if st.Collected[core.ReasonCyclic]+st.Collected[core.ReasonNotified] == 0 {
		t.Logf("note: no cyclic collections this run: %+v (possible but unlikely)", st.Collected)
	}
}

// TestLiveMiniTortureWithAdaptiveAndMinHeight reruns the same workload
// with both §7 extensions enabled end-to-end in the live runtime.
func TestLiveMiniTortureWithAdaptiveAndMinHeight(t *testing.T) {
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond,
		TTA: 50 * time.Millisecond,
		Adaptive: core.Adaptive{
			Enabled: true,
			MinTTB:  5 * time.Millisecond,
			MaxTTB:  20 * time.Millisecond,
		},
		MinHeightTree: true,
	})
	defer e.Close()
	n1, n2 := e.NewNode(), e.NewNode()
	handles := make([]*Handle, 8)
	for i := range handles {
		node := n1
		if i%2 == 1 {
			node = n2
		}
		handles[i] = node.NewActive(fmt.Sprintf("w%d", i), relay{})
	}
	// A ring plus chords.
	for i, h := range handles {
		if _, err := h.CallSync("set:peer", handles[(i+1)%len(handles)].Ref(), 5*time.Second); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := h.CallSync("set:chord", handles[(i+4)%len(handles)].Ref(), 5*time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, h := range handles {
		h.Release()
	}
	if _, err := e.WaitCollected(0, 30*time.Second); err != nil {
		t.Fatalf("not collected with §7 extensions on: %v (stats %+v)", err, e.Stats())
	}
}

// TestRelayStoreKeyEcho guards the mini-torture's reliance on dynamic
// set:/get: keys in the relay behavior.
func TestRelayStoreKeyEcho(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("a", relay{})
	defer h.Release()
	if _, err := h.CallSync("set:peer2", wire.Int(9), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := h.CallSync("get:peer2", wire.Null(), 5*time.Second)
	if err != nil || got.AsInt() != 9 {
		t.Fatalf("get:peer2 = %v, %v", got, err)
	}
}
