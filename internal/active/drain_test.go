package active

// Regression tests for the request-queue close/drain path: when an
// activity terminates with requests still queued, the heap pins of their
// arguments must be released and the callers' futures failed — not left
// to leak (pins) or hang until timeout (futures). PR 3's audit of
// requestQueue.close.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestDestroyDrainsQueuedRequests terminates an activity while its queue
// holds ref-bearing requests and checks both halves of the drain
// contract: no argsRoot pin survives, and every queued caller learns
// promptly that the callee is gone.
func TestDestroyDrainsQueuedRequests(t *testing.T) {
	env := NewEnv(Config{DisableDGC: true})
	defer env.Close()
	node := env.NewNode()

	entered := make(chan struct{})
	release := make(chan struct{})
	h := node.NewActive("blocker", BehaviorFunc(
		func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
			entered <- struct{}{}
			<-release
			return wire.Null(), nil
		}))

	// First call occupies the service loop.
	first, err := h.Call("block", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	<-entered

	// Queue requests whose arguments carry references: each pins an
	// argsRoot in the node's heap until served — or drained.
	target, _ := h.Ref().AsRef()
	rootsBefore := node.Heap().NumRoots()
	const queued = 4
	futs := make([]*Future, queued)
	for i := range futs {
		futs[i], err = h.Call("block", wire.List(wire.Ref(target)))
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := node.Heap().NumRoots(); got != rootsBefore+queued {
		t.Fatalf("queued roots = %d, want %d", got-rootsBefore, queued)
	}

	// Terminate with the queue full. The drained requests must fail their
	// futures now — a hang until the 5s budget would mean the drain
	// dropped them on the floor.
	h.Terminate()
	for i, f := range futs {
		start := time.Now()
		if _, err := f.Wait(5 * time.Second); err == nil {
			t.Fatalf("queued future %d resolved after terminate", i)
		} else if errors.Is(err, ErrFutureTimeout) {
			t.Fatalf("queued future %d timed out instead of failing fast", i)
		}
		if time.Since(start) > time.Second {
			t.Fatalf("queued future %d took %v to fail", i, time.Since(start))
		}
	}

	// Unblock the in-flight service and let it finish.
	close(release)
	if _, err := first.Wait(5 * time.Second); err != nil {
		t.Fatalf("in-flight call: %v", err)
	}

	// Every pin is gone: the queued argsRoots were released by the drain,
	// the in-flight one by serveOne, and the handle's stub root by
	// Terminate's release.
	if got := node.Heap().NumRoots(); got != 0 {
		t.Fatalf("leaked %d heap roots after drain\n%s", got, node.Heap())
	}
}

// TestShutdownReleasesQueuedPins closes the whole environment with
// requests still queued and verifies the drain released their pins (the
// Env.Close flavor of the same audit; futures fail via failAll there).
// Close is issued while a service is still blocked — shutdown drains the
// queue and fails the futures before joining the service loop, so both
// are observable mid-close.
func TestShutdownReleasesQueuedPins(t *testing.T) {
	env := NewEnv(Config{DisableDGC: true})
	node := env.NewNode()

	entered := make(chan struct{})
	release := make(chan struct{})
	h := node.NewActive("blocker", BehaviorFunc(
		func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
			entered <- struct{}{}
			<-release
			return wire.Null(), nil
		}))

	if _, err := h.Call("block", wire.Null()); err != nil {
		t.Fatal(err)
	}
	<-entered
	target, _ := h.Ref().AsRef()
	var futs []*Future
	for i := 0; i < 4; i++ {
		f, err := h.Call("block", wire.List(wire.Ref(target)))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}

	closed := make(chan struct{})
	go func() {
		env.Close() // joins the service loop, so it returns only after release
		close(closed)
	}()
	// The queued futures fail during shutdown, before the blocked service
	// is joined.
	for i, f := range futs {
		if _, err := f.Wait(5 * time.Second); err == nil {
			t.Fatalf("future %d resolved across Close", i)
		}
	}
	close(release)
	<-closed

	// The queued argsRoots were drained and the in-flight request carried
	// no refs (no pin); only the unreleased handle's stub root remains.
	if got := node.Heap().NumRoots(); got > 1 {
		t.Fatalf("leaked heap roots after shutdown: %d\n%s", got, node.Heap())
	}
}
