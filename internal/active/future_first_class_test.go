package active

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/wire"
)

// TestFutureWaitZeroBlocksForever pins the Wait(0) contract (the
// satellite fix of PR 4): a zero — or negative — timeout is
// wait-by-necessity, blocking until resolution, never an immediate poll.
// TryGet is the non-blocking probe.
func TestFutureWaitZeroBlocksForever(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	gate := make(chan struct{})
	defer close(gate)
	h := n.NewActive("slow", NewService(
		Method("go", func(_ *Context, _ struct{}) (int64, error) {
			<-gate
			return 7, nil
		})))
	defer h.Release()
	fut, err := h.Call("go", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := fut.TryGet(); ok {
		t.Fatal("TryGet reported an unresolved future as resolved")
	}
	type res struct {
		v   wire.Value
		err error
	}
	waited := make(chan res, 2)
	for _, timeout := range []time.Duration{0, -time.Second} {
		go func(d time.Duration) {
			v, werr := fut.Wait(d)
			waited <- res{v, werr}
		}(timeout)
	}
	select {
	case r := <-waited:
		t.Fatalf("Wait(<=0) returned before resolution: %v, %v", r.v, r.err)
	case <-time.After(100 * time.Millisecond):
		// Good: both waiters are blocked, not polling.
	}
	gate <- struct{}{}
	for i := 0; i < 2; i++ {
		select {
		case r := <-waited:
			if r.err != nil || r.v.AsInt() != 7 {
				t.Fatalf("Wait = %v, %v", r.v, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Wait(<=0) did not return after resolution")
		}
	}
}

// TestForwardedFutureFlattening: a callee that returns a future (a typed
// handler returning *TypedFuture) resolves the caller's future with the
// *concrete* downstream value — the runtime chains future-of-future
// resolutions, so Wait never yields a bare future reference.
func TestForwardedFutureFlattening(t *testing.T) {
	e := testEnv(t)
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()

	// The worker parks until the test has proven the forward happened, so
	// the future the front desk returns is unresolved by construction.
	gate := make(chan struct{})
	worker := n3.NewActive("worker", NewService(
		Method("slow", func(_ *Context, x int64) (int64, error) {
			<-gate
			return x * 2, nil
		})))
	defer worker.Release()
	if err := e.RegisterName("worker", worker.Ref()); err != nil {
		t.Fatal(err)
	}

	front := n2.NewActive("front", NewService(
		// The front desk forwards: it returns the worker's future without
		// waiting, staying free to serve the next request immediately.
		Method("order", func(ctx *Context, x int64) (*TypedFuture[int64], error) {
			w, err := ctx.Lookup("worker")
			if err != nil {
				return nil, err
			}
			return CallTyped[int64](ctx, w, "slow", x)
		})))
	defer front.Release()

	client, err := n1.HandleFor(front.Ref())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Release()
	done := make(chan struct{})
	var got int64
	var callErr error
	go func() {
		got, callErr = NewStub[int64, int64](client, "order").CallSync(21, 10*time.Second)
		close(done)
	}()
	// The worker serving "slow" proves the front desk forwarded the call
	// and returned the unresolved future; only then may it resolve.
	workerAO, ok := n3.activity(mustRef(t, worker.Ref()))
	if !ok {
		t.Fatal("worker activity not found")
	}
	waitUntil(t, func() bool { return !workerAO.isIdle() }, 5*time.Second)
	close(gate)
	<-done
	if callErr != nil {
		t.Fatal(callErr)
	}
	if got != 42 {
		t.Fatalf("flattened result = %d, want 42", got)
	}
}

// TestForwardedFutureLocalHop: forwarding a future between two activities
// on the same node takes the DeepCopy fast path; the receiving activity
// lifts and waits on the home entry directly.
func TestForwardedFutureLocalHop(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	gate := make(chan struct{})
	producer := n.NewActive("producer", NewService(
		Method("compute", func(_ *Context, _ struct{}) (string, error) {
			<-gate
			return "local", nil
		})))
	defer producer.Release()
	if err := e.RegisterName("producer", producer.Ref()); err != nil {
		t.Fatal(err)
	}
	sink := n.NewActive("sink", NewService(
		Method("consume", func(ctx *Context, req struct {
			Fut wire.Value `wire:"fut"`
		}) (string, error) {
			f, err := FutureFor[string](ctx, req.Fut)
			if err != nil {
				return "", err
			}
			return f.Wait(5 * time.Second)
		})))
	defer sink.Release()
	if err := e.RegisterName("sink", sink.Ref()); err != nil {
		t.Fatal(err)
	}
	head := n.NewActive("head", NewService(
		Method("start", func(ctx *Context, _ struct{}) (*TypedFuture[string], error) {
			p, err := ctx.Lookup("producer")
			if err != nil {
				return nil, err
			}
			fut, err := CallTyped[string](ctx, p, "compute", struct{}{})
			if err != nil {
				return nil, err
			}
			s, err := ctx.Lookup("sink")
			if err != nil {
				return nil, err
			}
			// Forward the unresolved future to a same-node activity and
			// return ITS future: two chained flattenings.
			return CallTyped[string](ctx, s, "consume", struct {
				Fut *TypedFuture[string] `wire:"fut"`
			}{Fut: fut})
		})))
	defer head.Release()

	stub := NewStub[struct{}, string](head, "start")
	done := make(chan struct{})
	var got string
	var err error
	go func() {
		got, err = stub.CallSync(struct{}{}, 10*time.Second)
		close(done)
	}()
	// The sink mid-service (parked in its lifted Wait) proves both
	// forwardings happened before the producer resolves.
	sinkAO, ok := n.activity(mustRef(t, sink.Ref()))
	if !ok {
		t.Fatal("sink activity not found")
	}
	waitUntil(t, func() bool {
		return !sinkAO.isIdle() && sinkAO.queue.pendingCount() == 0
	}, 5*time.Second)
	close(gate)
	<-done
	if err != nil || got != "local" {
		t.Fatalf("local-hop forward = %q, %v", got, err)
	}
}

// TestFutureTableSweep: the future table must not accumulate entries —
// resolved, consumed, unpinned entries are reclaimed by the driver sweep
// on every node, including proxies adopted for forwarded futures.
func TestFutureTableSweep(t *testing.T) {
	e := testEnv(t)
	n1, n2 := e.NewNode(), e.NewNode()
	h := n2.NewActive("svc", relay{})
	defer h.Release()
	h1, err := n1.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	for i := 0; i < 32; i++ {
		if _, err := h1.CallSync("echo", wire.Int(int64(i)), 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, func() bool {
		n1.CollectNow()
		n2.CollectNow()
		return n1.futures.size() == 0 && n2.futures.size() == 0
	}, 10*time.Second)
}

// TestFutureUnavailable: lifting a future value nobody here knows yields
// a pre-failed future, not one that hangs forever.
func TestFutureUnavailable(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("svc", NewService(
		Method("lift", func(ctx *Context, req struct {
			Fut wire.Value `wire:"fut"`
		}) (string, error) {
			f, err := ctx.Future(req.Fut)
			if err != nil {
				return "", err
			}
			_, werr := f.Wait(time.Second)
			if werr == nil {
				return "", errors.New("wait succeeded on an unknown future")
			}
			return werr.Error(), nil
		})))
	defer h.Release()
	// A hand-crafted reference to a future that never existed on a node
	// that does not exist.
	fr := wire.FutureRef{ID: FutureID{Node: 99, Seq: 77}, Owner: ids.ActivityID{Node: 99, Seq: 1}}
	got, err := NewStub[struct {
		Fut wire.Value `wire:"fut"`
	}, string](h, "lift").CallSync(struct {
		Fut wire.Value `wire:"fut"`
	}{Fut: wire.FutureVal(fr)}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The proxy was adopted at decode time (node 99 is not this node), so
	// it waits — and times out — OR, had it been home, it would pre-fail
	// with ErrFutureUnavailable. Either way the service must not wedge.
	if got == "" {
		t.Fatal("no error reported")
	}
}

// TestForwardAfterResolution (review fix): an application that holds a
// live *Future may forward it long after the result arrived — even after
// the fast path removed (or the sweep reclaimed) the table entry —
// because marshaling reinstates the entry and the send walk then ships
// the resolved value to the new holder.
func TestForwardAfterResolution(t *testing.T) {
	e := testEnv(t)
	n1, n2 := e.NewNode(), e.NewNode()
	producer := n1.NewActive("producer", NewService(
		Method("quick", func(_ *Context, _ struct{}) (int64, error) { return 99, nil })))
	defer producer.Release()
	fut, err := producer.Call("quick", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// The entry is gone now (never-shared fast path) — or at the latest
	// after these sweeps.
	n1.CollectNow()
	n1.CollectNow()

	sink := n2.NewActive("sink", NewService(
		Method("consume", func(ctx *Context, req struct {
			Fut wire.Value `wire:"fut"`
		}) (int64, error) {
			f, lerr := FutureFor[int64](ctx, req.Fut)
			if lerr != nil {
				return 0, lerr
			}
			return f.Wait(5 * time.Second)
		})))
	defer sink.Release()
	got, err := NewStub[struct {
		Fut *Future `wire:"fut"`
	}, int64](sink, "consume").CallSync(struct {
		Fut *Future `wire:"fut"`
	}{Fut: fut}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Fatalf("forwarded-after-resolution value = %d, want 99", got)
	}
}

// TestLiftWithinGraceAfterSweep (review fix): a FutureRef unmarshaled
// out of a reply stays liftable for at least a TTA-sized grace after the
// reply's heap pin died, even though sweeps run in between — the same
// slack the reference-listing DGC grants in-flight references.
func TestLiftWithinGraceAfterSweep(t *testing.T) {
	e := testEnv(t)
	n1, n2 := e.NewNode(), e.NewNode()
	front := n2.NewActive("front", NewService(
		Method("order", func(ctx *Context, _ struct{}) (struct {
			Fut *TypedFuture[int64] `wire:"fut"`
		}, error) {
			fut, err := CallTyped[int64](ctx, ctx.Self(), "slow", struct{}{})
			return struct {
				Fut *TypedFuture[int64] `wire:"fut"`
			}{Fut: fut}, err
		}),
		Method("slow", func(_ *Context, _ struct{}) (int64, error) { return 7, nil })))
	defer front.Release()
	client, err := n1.HandleFor(front.Ref())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Release()
	// The future rides inside a struct field, so no top-level flattening:
	// the client receives a bare FutureRef.
	resp, err := NewStub[struct{}, struct {
		Fut wire.FutureRef `wire:"fut"`
	}](client, "order").CallSync(struct{}{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Several sweeps on both nodes: tags die, but the entries must stay
	// for the TTA grace.
	for i := 0; i < 3; i++ {
		n1.CollectNow()
		n2.CollectNow()
	}
	f, err := client.Future(wire.FutureVal(resp.Fut))
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.Wait(5 * time.Second)
	if err != nil {
		t.Fatalf("lift within grace failed: %v", err)
	}
	if v.AsInt() != 7 {
		t.Fatalf("lifted value = %v, want 7", v)
	}
}

// TestLateSubscribeFromForeignNode (review fix): a node that never saw a
// future's payload can still lift a hand-carried reference — it adopts a
// proxy and subscribes at the home node (the WIRE.md §6 fallback
// envelope), which serves it when the result arrives.
func TestLateSubscribeFromForeignNode(t *testing.T) {
	e := testEnv(t)
	n1, n2 := e.NewNode(), e.NewNode()
	gate := make(chan struct{})
	defer close(gate)
	producer := n1.NewActive("producer", NewService(
		Method("slow", func(_ *Context, _ struct{}) (int64, error) {
			<-gate
			return 123, nil
		})))
	defer producer.Release()
	fut, err := producer.Call("slow", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	fr, ok := fut.WireFutureRef()
	if !ok {
		t.Fatal("no wire identity")
	}
	// Hand the reference to a different node out of band.
	anchor := n2.NewActive("anchor", relay{})
	defer anchor.Release()
	foreign, err := anchor.Future(wire.FutureVal(fr))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-foreign.Done():
		t.Fatal("foreign proxy resolved before the producer finished")
	case <-time.After(50 * time.Millisecond):
	}
	gate <- struct{}{}
	v, err := foreign.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 123 {
		t.Fatalf("subscribed value = %v, want 123", v)
	}
}
