package active

// Cross-backend conformance for the elastic cluster runtime: runtime
// join, hard-kill mid-traffic with failure detection and ErrNodeDead
// fan-out, fast-fail routing toward dead and unknown nodes, rebind
// resolution across a dead forwarder, graceful Leave with activity
// drain, and DGC convergence after a crash. The simnet scenario models
// the whole cluster in one environment (KillNode is the chaos hook);
// the TCP scenario runs one environment per process with real seed
// bootstrap, gossip and address exchange.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/tcpnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

func init() {
	RegisterBehavior("test/cluster-counter", func() Behavior { return migCounter{} })
}

// echoBehavior answers every call with its argument.
func echoBehavior() Behavior {
	return BehaviorFunc(func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
		return args, nil
	})
}

// blockingBehavior parks every call until release is closed — the
// in-flight request whose future must fail with ErrNodeDead, not hang —
// and signals started (non-blocking) when a park begins.
func blockingBehavior(started chan<- struct{}, release <-chan struct{}) Behavior {
	return BehaviorFunc(func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return wire.Null(), nil
	})
}

// waitState polls until the member's health state matches want.
func waitState(t *testing.T, e *Env, node ids.NodeID, want cluster.State, timeout time.Duration) {
	t.Helper()
	waitUntil(t, func() bool { return e.NodeHealth(node) == want }, timeout)
}

// callUntilOK retries a call until it succeeds (cross-process routing
// may need a gossip round to land) and returns the final result.
func callUntilOK(t *testing.T, h *Handle, method string, args wire.Value, timeout time.Duration) wire.Value {
	t.Helper()
	var v wire.Value
	waitUntil(t, func() bool {
		got, err := h.CallSync(method, args, timeout)
		if err != nil {
			return false
		}
		v = got
		return true
	}, timeout)
	return v
}

// TestConformanceClusterKillSim is the single-environment chaos
// scenario: a three-node cluster serving traffic, one node hard-killed
// mid-call, the survivors detecting the death, the in-flight future
// failing with ErrNodeDead, new sends refused fast, the DGC reclaiming
// everything that remains, and a replacement node joining and serving.
func TestConformanceClusterKillSim(t *testing.T) {
	t.Parallel()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
		Cluster: ClusterConfig{Enabled: true},
	})
	defer e.Close()
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()

	// Serve calls across the cluster first: a live baseline.
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	victim := n2.NewActive("victim", blockingBehavior(started, release))
	echo3 := n3.NewActive("echo3", echoBehavior())
	caller, err := n1.HandleFor(victim.Ref())
	if err != nil {
		t.Fatal(err)
	}
	from1, err := n1.HandleFor(echo3.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v, errC := from1.CallSync("echo", wire.Int(7), 5*time.Second); errC != nil || v.AsInt() != 7 {
		t.Fatalf("baseline cross-node call = %v, %v", v, errC)
	}

	if len(e.ClusterMembers()) != 3 {
		t.Fatalf("members = %v, want 3", e.ClusterMembers())
	}

	// An in-flight call parks on the victim...
	fut, err := caller.Call("park", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// ...then the machine dies mid-traffic: network first (both
	// directions go dark), then the victim's runtime is reaped.
	e.Network().(*simnet.Network).KillNode(n2.ID())
	close(release)
	n2.Crash()

	// Survivors must detect the death from their own heartbeat failures.
	waitState(t, e, n2.ID(), cluster.StateDead, 5*time.Second)

	// The parked future fails with the sentinel instead of hanging.
	if _, err := fut.Wait(5 * time.Second); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("in-flight future error = %v, want ErrNodeDead", err)
	}
	// New sends toward the dead node are refused fast.
	start := time.Now()
	if _, err := caller.CallSync("park", wire.Null(), 5*time.Second); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("post-death call error = %v, want ErrNodeDead", err)
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("post-death call took %v, want fast refusal", since)
	}

	// The dead member stays in the view as a tombstone.
	var sawDead bool
	for _, m := range e.ClusterMembers() {
		if m.Node == n2.ID() && m.State == cluster.StateDead {
			sawDead = true
		}
	}
	if !sawDead {
		t.Fatalf("members = %+v, want a dead tombstone for %v", e.ClusterMembers(), n2.ID())
	}

	// A replacement node joins the running cluster under a fresh
	// identity and serves immediately.
	n4 := e.NewNode()
	if n4.ID() == n2.ID() {
		t.Fatalf("replacement node reused identity %v", n2.ID())
	}
	echo4 := n4.NewActive("echo4", echoBehavior())
	from1b, err := n1.HandleFor(echo4.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v, errC := from1b.CallSync("echo", wire.Int(9), 5*time.Second); errC != nil || v.AsInt() != 9 {
		t.Fatalf("replacement-node call = %v, %v", v, errC)
	}

	// Release everything: the DGC must reclaim all surviving activities
	// (the victim's subgraph died with its node).
	caller.Release()
	from1.Release()
	from1b.Release()
	victim.Release()
	echo3.Release()
	echo4.Release()
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatalf("DGC did not converge after node death: %v", err)
	}
	for _, n := range []*Node{n1, n3, n4} {
		if roots := n.Heap().NumRoots(); roots != 0 {
			t.Fatalf("node %v still has %d heap roots", n.ID(), roots)
		}
	}
}

// TestConformanceClusterKillTCP is the multi-process scenario: three
// environments on real TCP — a seed and two joiners bootstrapping via
// Join — with cross-process calls routed through gossip-learned
// addresses, one whole process hard-killed (its transport torn down),
// the survivor detecting the death and failing the in-flight future,
// and a replacement process joining the running cluster.
func TestConformanceClusterKillTCP(t *testing.T) {
	t.Parallel()
	newTCPEnv := func(seed string) *Env {
		tr, err := tcpnet.New(tcpnet.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return NewEnv(Config{
			TTB: 10 * time.Millisecond, TTA: 40 * time.Millisecond,
			Transport: tr,
			Cluster:   ClusterConfig{Enabled: true, Seed: seed},
		})
	}

	seedEnv := newTCPEnv("")
	defer seedEnv.Close()
	seedAddr := seedEnv.Network().(*tcpnet.Network).Addr()
	nA := seedEnv.NewNode()

	joinEnv := newTCPEnv(seedAddr)
	defer joinEnv.Close()
	if err := joinEnv.Join(); err != nil {
		t.Fatalf("join via seed: %v", err)
	}
	nB := joinEnv.NewNode()
	if nB.ID() == nA.ID() {
		t.Fatalf("lease collision: both processes got node %v", nA.ID())
	}

	// Cross-process traffic in both directions. The seed learns the
	// joiner's node address from node-up gossip, so the first call may
	// need a retry while that lands.
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()
	victim := nB.NewActive("victim", blockingBehavior(started, release))
	echoB := nB.NewActive("echoB", echoBehavior())
	echoA := nA.NewActive("echoA", echoBehavior())

	fromB, err := nB.HandleFor(echoA.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v := callUntilOK(t, fromB, "echo", wire.Int(3), 10*time.Second); v.AsInt() != 3 {
		t.Fatalf("joiner→seed call = %v, want 3", v)
	}
	// Seed → joiner needs the node-up gossip to have landed; prove the
	// route with an echo before parking a call on the victim.
	fromAecho, err := nA.HandleFor(echoB.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v := callUntilOK(t, fromAecho, "echo", wire.Int(5), 10*time.Second); v.AsInt() != 5 {
		t.Fatalf("seed→joiner call = %v, want 5", v)
	}
	caller, err := nA.HandleFor(victim.Ref())
	if err != nil {
		t.Fatal(err)
	}

	// An in-flight call parks on the victim process.
	fut, err := caller.Call("park", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Hard-kill the joiner: its listener and connections vanish, its
	// runtime never says goodbye.
	joinEnv.Network().Close()
	close(release)
	released = true

	waitState(t, seedEnv, nB.ID(), cluster.StateDead, 10*time.Second)
	if _, err := fut.Wait(10 * time.Second); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("in-flight future error = %v, want ErrNodeDead", err)
	}
	if _, err := caller.CallSync("park", wire.Null(), 5*time.Second); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("post-death call error = %v, want ErrNodeDead", err)
	}

	// A replacement process joins the running cluster through the same
	// seed and serves traffic.
	replEnv := newTCPEnv(seedAddr)
	defer replEnv.Close()
	if err := replEnv.Join(); err != nil {
		t.Fatalf("replacement join: %v", err)
	}
	nC := replEnv.NewNode()
	if nC.ID() == nB.ID() {
		t.Fatalf("replacement reused node identity %v", nB.ID())
	}
	echoC := nC.NewActive("echoC", echoBehavior())
	fromA, err := nA.HandleFor(echoC.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v := callUntilOK(t, fromA, "echo", wire.Int(11), 10*time.Second); v.AsInt() != 11 {
		t.Fatalf("seed→replacement call = %v, want 11", v)
	}
	caller.Release()
	fromA.Release()
	fromAecho.Release()
	fromB.Release()
}

// TestClusterDeadForwarderRebind pins the rebind-table semantics across
// a node death (the forwarder's node dies after a migration): a caller
// that already learned the redirect keeps resolving through its rebind
// table onto the live destination, while a fresh node still holding the
// stale identity fails fast with ErrNodeDead — neither ever hangs.
func TestClusterDeadForwarderRebind(t *testing.T) {
	t.Parallel()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
		Cluster: ClusterConfig{Enabled: true},
	})
	defer e.Close()
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()

	h, err := n2.SpawnKind("counter", "test/cluster-counter")
	if err != nil {
		t.Fatal(err)
	}
	oldRef := h.Ref()
	caller, err := n1.HandleFor(oldRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := caller.CallSync("add", wire.Int(5), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Migrate n2 → n3; the forwarder stays on n2.
	mfut, err := h.Migrate(n3.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mfut.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// One more call through the old identity: the forwarder relays it
	// and its redirect teaches n1 the rebinding.
	if v, errC := caller.CallSync("add", wire.Int(1), 5*time.Second); errC != nil || v.AsInt() != 6 {
		t.Fatalf("post-migration call = %v, %v", v, errC)
	}
	waitUntil(t, func() bool {
		return n1.resolveRebind(mustRef(t, oldRef)).Node == n3.ID()
	}, 5*time.Second)

	// Kill the forwarder's node.
	e.Network().(*simnet.Network).KillNode(n2.ID())
	n2.Crash()
	waitState(t, e, n2.ID(), cluster.StateDead, 5*time.Second)

	// The informed caller resolves via its rebind table: the entry's
	// value points at live n3 and must have survived the purge.
	if v, errC := caller.CallSync("add", wire.Int(2), 5*time.Second); errC != nil || v.AsInt() != 8 {
		t.Fatalf("post-death rebind call = %v, %v", v, errC)
	}

	// A fresh node that only knows the stale identity reaches the live
	// activity through the sharded directory (WIRE.md §9): the dead home
	// triggers a shard query instead of a blind fail. Right after the
	// death the shard may itself still be repopulating (its previous
	// owner could have been n2), so the call is retried for a few beats —
	// but it must never hang, and it must converge to the live counter.
	n4 := e.NewNode()
	stale, err := n4.HandleFor(oldRef)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool {
		v, errC := stale.CallSync("add", wire.Int(1), 5*time.Second)
		if errC == nil {
			if v.AsInt() < 9 {
				t.Fatalf("directory-relayed call = %v, want counter ≥ 9", v)
			}
			return true
		}
		if !errors.Is(errC, ErrNodeDead) {
			t.Fatalf("stale-identity call error = %v, want nil or ErrNodeDead while the shard repopulates", errC)
		}
		return false
	}, 5*time.Second)
	stale.Release()
	caller.Release()
	h.Release()
}

// TestClusterFastFailUnknownNode pins the satellite semantics for
// never-known destinations: a send toward a node no process has ever
// announced fails fast with ErrUnknownNode on both backends.
func TestClusterFastFailUnknownNode(t *testing.T) {
	t.Parallel()
	for _, s := range []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"simnet", func(t *testing.T) Config {
			return Config{TTB: 10 * time.Millisecond, Cluster: ClusterConfig{Enabled: true}}
		}},
		{"tcp", func(t *testing.T) Config {
			tr, err := tcpnet.New(tcpnet.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return Config{TTB: 10 * time.Millisecond, Transport: tr, Cluster: ClusterConfig{Enabled: true}}
		}},
	} {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			e := NewEnv(s.cfg(t))
			defer e.Close()
			n := e.NewNode()
			bogus, err := n.HandleFor(wire.Ref(ids.ActivityID{Node: 4242, Seq: 1}))
			if err != nil {
				t.Fatal(err)
			}
			defer bogus.Release()
			start := time.Now()
			_, err = bogus.CallSync("poke", wire.Null(), 5*time.Second)
			if !errors.Is(err, transport.ErrUnknownNode) {
				t.Fatalf("call to unknown node error = %v, want transport.ErrUnknownNode", err)
			}
			if since := time.Since(start); since > time.Second {
				t.Fatalf("unknown-node call took %v, want fast failure", since)
			}
		})
	}
}

// TestClusterLeaveDrains exercises the graceful path: a node drains its
// activities to a peer via live migration, announces its departure, and
// goes away — callers keep working through the rebinding, nothing fails
// with ErrNodeDead, and the member view records the departure as Left.
func TestClusterLeaveDrains(t *testing.T) {
	t.Parallel()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
		Cluster: ClusterConfig{Enabled: true},
	})
	defer e.Close()
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()

	h, err := n2.SpawnKind("counter", "test/cluster-counter")
	if err != nil {
		t.Fatal(err)
	}
	caller, err := n1.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := caller.CallSync("add", wire.Int(10), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	if err := n2.Leave(n3.ID()); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if got := e.NodeHealth(n2.ID()); got != cluster.StateLeft {
		t.Fatalf("health after Leave = %v, want StateLeft", got)
	}

	// The drained activity serves on, state intact, reachable through
	// the caller's rebinding (retry while the redirect settles).
	waitUntil(t, func() bool {
		v, errC := caller.CallSync("total", wire.Null(), 5*time.Second)
		if errC == nil {
			if v.AsInt() != 10 {
				t.Fatalf("total after drain = %d, want 10", v.AsInt())
			}
			return true
		}
		if errors.Is(errC, ErrNodeDead) {
			t.Fatalf("graceful Leave produced ErrNodeDead: %v", errC)
		}
		return false
	}, 5*time.Second)
	caller.Release()
	h.Release()
}

// TestClusterLocalNodesNeverSuspect pins the self-vouching rule: a
// process's own nodes generate no observable peer traffic, so without
// the detector tick refreshing them they would walk alive → suspect from
// mere silence — and a transiently-suspect local node would lose a
// failover-survivor election it is running in (the bug the durability
// example exposed). Idle well past SuspectAfter and DeadAfter, every
// locally hosted member must stay alive.
func TestClusterLocalNodesNeverSuspect(t *testing.T) {
	t.Parallel()
	e := NewEnv(Config{
		TTB: 5 * time.Millisecond, TTA: 20 * time.Millisecond,
		Cluster: ClusterConfig{Enabled: true},
	})
	defer e.Close()
	n1, n2 := e.NewNode(), e.NewNode()

	// No application traffic at all: the only thing keeping the local
	// members alive is the detector's own vouching.
	holdsFor(t, func() bool {
		return e.NodeHealth(n1.ID()) == cluster.StateAlive &&
			e.NodeHealth(n2.ID()) == cluster.StateAlive
	}, 150*time.Millisecond)
}
