package active

// Cross-backend conformance for first-class futures (paper §5–§6): a
// future created on one node threads through two intermediary activities
// on two other nodes and resolves only at the final holder — no
// intermediary ever waits — over both transport substrates, for both the
// value and the remote-failure outcome.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// fwdStart is the client → head request: just a flag selecting the
// failure variant.
type fwdStart struct {
	Fail bool `wire:"fail"`
}

// fwdHop carries the forwarded future between intermediaries. The sender
// side marshals a live *TypedFuture; the receiving side sees the wire
// future value verbatim.
type fwdHop struct {
	Fut wire.Value `wire:"fut"`
}

// forwardedFutureWorld wires the scenario:
//
//	client ── start ──► head(n1) ── producer.compute(n3) = future F
//	                      │ forwards F (never waits)
//	                      ▼
//	                    relay(n2) ── forwards F (never waits)
//	                      ▼
//	                    sink(n3) ── ctx.Future(F).Wait  ◄─ F resolves here
//
// The gate blocks the producer so the test can assert F is still
// unresolved after it has traveled the whole chain; the sink reports
// through a closure atomic because its own serve loop is (by design)
// blocked in wait-by-necessity until the gate opens.
func forwardedFutureWorld(t *testing.T, e *Env) (start Stub[fwdStart, string], result *atomic.Value, closeGate func(), intermediaryWaits *atomic.Int32) {
	t.Helper()
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()
	gate := make(chan struct{})
	var gateOnce sync.Once
	closeGate = func() { gateOnce.Do(func() { close(gate) }) }
	// The producer must be unblocked even if the test fails early, or the
	// env teardown would wait forever on its serve goroutine (cleanups run
	// LIFO: this fires before forEachSubstrate's Env.Close).
	t.Cleanup(closeGate)
	result = new(atomic.Value)
	intermediaryWaits = new(atomic.Int32)

	producer := n3.NewActive("producer", NewService(
		Method("compute", func(_ *Context, req fwdStart) (int64, error) {
			<-gate
			if req.Fail {
				return 0, errors.New("planned failure")
			}
			return 42, nil
		})))
	t.Cleanup(producer.Release)

	sinkSvc := NewService(
		Method("consume", func(ctx *Context, req fwdHop) (struct{}, error) {
			// The final holder: true wait-by-necessity happens here and
			// only here.
			fut, err := FutureFor[int64](ctx, req.Fut)
			if err != nil {
				return struct{}{}, err
			}
			v, err := fut.Wait(0)
			if err != nil {
				result.Store("error:" + err.Error())
				return struct{}{}, nil
			}
			ctx.Store("got", wire.Int(v))
			result.Store(fmt.Sprintf("%d", v))
			return struct{}{}, nil
		}))
	sink := n3.NewActive("sink", sinkSvc)
	t.Cleanup(sink.Release)

	relay := n2.NewActive("relay", NewService(
		Method("hop", func(ctx *Context, req fwdHop) (struct{}, error) {
			// Forward the (still unresolved) future one more hop; waiting
			// here would be a conformance failure.
			if _, _, ok := mustFuture(ctx, req.Fut).TryGet(); ok {
				intermediaryWaits.Add(1)
			}
			target, err := ctx.Lookup("sink")
			if err != nil {
				return struct{}{}, err
			}
			return struct{}{}, SendTyped(ctx, target, "consume", fwdHop{Fut: req.Fut})
		})))
	t.Cleanup(relay.Release)

	head := n1.NewActive("head", NewService(
		Method("start", func(ctx *Context, req fwdStart) (string, error) {
			target, err := ctx.Lookup("producer")
			if err != nil {
				return "", err
			}
			fut, err := CallTyped[int64](ctx, target, "compute", req)
			if err != nil {
				return "", err
			}
			relayRef, err := ctx.Lookup("relay")
			if err != nil {
				return "", err
			}
			// The future travels as a call argument while unresolved; the
			// head returns immediately (zero waits at this hop).
			if err := SendTyped(ctx, relayRef, "hop", struct {
				Fut *TypedFuture[int64] `wire:"fut"`
			}{Fut: fut}); err != nil {
				return "", err
			}
			return "started", nil
		})))
	t.Cleanup(head.Release)

	for name, h := range map[string]*Handle{"producer": producer, "relay": relay, "sink": sink} {
		if err := e.RegisterName(name, h.Ref()); err != nil {
			t.Fatal(err)
		}
	}
	return NewStub[fwdStart, string](head, "start"), result, closeGate, intermediaryWaits
}

// mustFuture is a test helper: lift or die trying.
func mustFuture(ctx *Context, v wire.Value) *Future {
	f, err := ctx.Future(v)
	if err != nil {
		panic(err)
	}
	return f
}

// awaitResult polls the sink's report until it reports a terminal state.
func awaitResult(t *testing.T, result *atomic.Value, deadline time.Duration) string {
	t.Helper()
	var got string
	waitUntil(t, func() bool {
		v, ok := result.Load().(string)
		if ok {
			got = v
		}
		return ok
	}, deadline)
	return got
}

func TestConformanceForwardedFutureChain(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		start, result, closeGate, waits := forwardedFutureWorld(t, e)
		got, err := start.CallSync(fwdStart{}, 10*time.Second)
		if err != nil || got != "started" {
			t.Fatalf("start = %q, %v", got, err)
		}
		// The future has traveled head → relay → sink while the producer
		// is still blocked: nothing may resolve until the gate opens.
		holdsFor(t, func() bool {
			_, ok := result.Load().(string)
			return !ok
		}, 100*time.Millisecond)
		closeGate()
		if got := awaitResult(t, result, 10*time.Second); got != "42" {
			t.Fatalf("final holder saw %q, want 42", got)
		}
		if waits.Load() != 0 {
			t.Fatalf("an intermediary observed a resolved future mid-chain (%d)", waits.Load())
		}
	})
}

func TestConformanceForwardedFutureFailure(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		start, result, closeGate, _ := forwardedFutureWorld(t, e)
		if _, err := start.CallSync(fwdStart{Fail: true}, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		closeGate()
		got := awaitResult(t, result, 10*time.Second)
		if !strings.HasPrefix(got, "error:") || !strings.Contains(got, "planned failure") {
			t.Fatalf("final holder saw %q, want the propagated remote failure", got)
		}
	})
}

// TestConformanceFutureParityFIFO pins two invariants of the redesign on
// both substrates: (1) a program that does not forward futures and uses
// the default service policy produces byte-identical wire traffic whether
// the policy is left nil or set to the explicit FIFO built-in (the lift
// of requestQueue behind ServicePolicy is wire-invisible); (2) the
// request/future byte counters of such a program are unchanged by the
// first-class-future machinery (no registration traffic without
// forwarding).
func TestConformanceFutureParityFIFO(t *testing.T) {
	run := func(t *testing.T, mkCfg func(t *testing.T) Config, policy ServicePolicy) transport.Counters {
		cfg := mkCfg(t)
		cfg.DisableDGC = true // beats are timing-dependent; parity needs determinism
		cfg.ServicePolicy = policy
		e := NewEnv(cfg)
		defer e.Close()
		n1, n2 := e.NewNode(), e.NewNode()
		h := n2.NewActive("svc", relay{})
		defer h.Release()
		h1, err := n1.HandleFor(h.Ref())
		if err != nil {
			t.Fatal(err)
		}
		defer h1.Release()
		for i := 0; i < 20; i++ {
			if _, err := h1.CallSync("echo", wire.String("parity"), 5*time.Second); err != nil {
				t.Fatal(err)
			}
			if err := h1.Send("set:k", wire.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := h1.CallSync("get:k", wire.Null(), 5*time.Second); err != nil {
			t.Fatal(err)
		}
		return e.Network().Snapshot()
	}
	for _, s := range substrates {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			base := run(t, s.cfg, nil)
			fifo := run(t, s.cfg, FIFO())
			for _, class := range []transport.Class{transport.ClassApp, transport.ClassFuture} {
				if base.Bytes[class] != fifo.Bytes[class] || base.Messages[class] != fifo.Messages[class] {
					t.Fatalf("%v traffic diverged: nil policy %d B/%d msgs, FIFO %d B/%d msgs",
						class, base.Bytes[class], base.Messages[class], fifo.Bytes[class], fifo.Messages[class])
				}
			}
		})
	}
}
