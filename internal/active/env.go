package active

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/location"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Env errors.
var (
	// ErrEnvClosed indicates the environment has been shut down.
	ErrEnvClosed = errors.New("active: environment closed")
	// ErrUnknownName indicates a registry lookup failure.
	ErrUnknownName = errors.New("active: unknown registered name")
	// ErrUnknownActivity indicates the activity does not exist (anymore).
	ErrUnknownActivity = errors.New("active: unknown activity")
	// ErrNotARef indicates a value that should have been a remote
	// reference was not.
	ErrNotARef = errors.New("active: value is not a reference")
)

// Config parameterizes an Env.
type Config struct {
	// TTB is the DGC heartbeat period. Defaults to 30ms (the paper's 30s
	// compressed ×1000; see DESIGN.md §3).
	TTB time.Duration
	// TTA is the TimeToAlone. Defaults to 2*TTB + MaxComm + TTB/2,
	// satisfying the §3.1 formula.
	TTA time.Duration
	// Clock provides time. Defaults to the real clock. With a custom
	// Transport the clock should stay real: a TCP substrate delivers on
	// wall time regardless of what the environment clock reads.
	Clock vclock.Clock
	// Latency is the one-way network latency function (see simnet). It is
	// only consulted when the environment builds its own simnet substrate,
	// i.e. when Transport is nil.
	Latency func(src, dst ids.NodeID) time.Duration
	// Reachable restricts connectivity (see simnet). Like Latency it only
	// applies to the default simnet substrate; a custom Transport owns its
	// own reachability rules.
	Reachable func(src, dst ids.NodeID) bool
	// MaxComm bounds one-way communication time for the TTA formula. If
	// zero and a Transport is set, the transport's own MaxComm() is used.
	MaxComm time.Duration
	// Transport selects the network substrate the nodes communicate over.
	// nil builds an in-memory simnet from Clock/Latency/Reachable/MaxComm;
	// a non-nil value (e.g. a tcpnet.Network) is used as-is and those
	// simnet-only fields are ignored. The environment takes ownership and
	// closes the transport in Close.
	Transport transport.Transport
	// BatchWindow enables hot-path message batching when positive: each
	// node's outbound one-way traffic flows through a per-destination
	// flusher, and co-destination messages queued while a frame is in
	// flight travel together in one batch frame (WIRE.md §5). Plain
	// one-way sends may linger up to BatchWindow waiting for companions;
	// call requests, future updates and group fan-outs never wait — they
	// only coalesce with messages already pending, and DGC beats collapse
	// into one exchange per destination node. Zero (the default) disables
	// batching entirely; the wire traffic is then byte-identical to the
	// unbatched protocol.
	BatchWindow time.Duration
	// BatchBytes caps the payload bytes of one batch frame (a larger
	// backlog is split across frames). Only consulted when BatchWindow is
	// positive; defaults to 64 KiB.
	BatchBytes int
	// ServicePolicy is the default request-selection discipline of every
	// activity created in this environment (overridable per activity via
	// WithPolicy). nil means FIFO, which is wire- and semantics-identical
	// to the pre-policy serve loop.
	ServicePolicy ServicePolicy
	// FirstNode offsets node identifier allocation: the first NewNode
	// returns FirstNode, the second FirstNode+1, and so on. Several
	// processes sharing a TCP substrate set disjoint ranges so their
	// activity identifiers (and the DGC's total order on them) never
	// collide. Zero means the default start, node 1. With Cluster enabled
	// the field keeps its meaning on the founding seed only (where the
	// node-ID lease space starts); joiners are leased disjoint blocks by
	// the seed and ignore it.
	FirstNode ids.NodeID
	// Cluster enables the elastic cluster runtime: seed/join membership,
	// node-ID leases, heartbeat-piggybacked failure detection and
	// crash-tolerant cleanup (ErrNodeDead). See ClusterConfig.
	Cluster ClusterConfig
	// DisableDGC turns the distributed garbage collector off entirely
	// (the paper's "No DGC" baseline runs): no heartbeats, no automatic
	// termination; local heap sweeps still run.
	DisableDGC bool
	// DisableConsensusPropagation ablates the §4.3 dying-wave
	// optimization.
	DisableConsensusPropagation bool
	// Adaptive enables the §7.1 dynamic per-activity beat period; the
	// driver then wakes every Adaptive.MinTTB and beats each activity at
	// its own adapted pace.
	Adaptive core.Adaptive
	// MinHeightTree enables the §7.2 shallow-spanning-tree extension.
	MinHeightTree bool
	// LocationCacheSize bounds each node's learned-location LRU cache
	// (WIRE.md §9). Zero means location.DefaultCacheSize.
	LocationCacheSize int
	// FanOutDegree is the branching factor of tree-structured group
	// fan-out (WIRE.md §10): a group scatter whose distinct remote
	// destination nodes exceed the degree is shipped as a tree of relay
	// nodes, each forwarding at most FanOutDegree subtrees and
	// aggregating replies hop-by-hop. Zero means 4.
	FanOutDegree int
	// DisableTreeFanOut forces every group scatter onto the flat
	// one-message-per-member path (the pre-tree baseline, used for
	// comparison benchmarks).
	DisableTreeFanOut bool
	// OnEvent receives DGC trace events from every collector.
	OnEvent func(core.Event)
	// Store enables durable activity checkpoints: activities created from
	// a registered behavior kind are snapshotted into it — on the
	// CheckpointEvery cadence, at Handle.Checkpoint/Context.Checkpoint,
	// and at failover adoption — and Env.Recover restores them after a
	// crash. The caller owns the store (it outlives the environment:
	// that is the point) and closes it after the last environment using
	// it. nil disables checkpointing at zero hot-path cost.
	Store store.Store
	// CheckpointEvery is the automatic checkpoint cadence the driver
	// applies to every dirty durable activity. Zero disables automatic
	// checkpoints; explicit Handle.Checkpoint/Context.Checkpoint still
	// work whenever Store is set.
	CheckpointEvery time.Duration
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = vclock.Real{}
	}
	if c.TTB == 0 {
		c.TTB = 30 * time.Millisecond
	}
	if c.TTA == 0 {
		c.TTA = 2*c.TTB + c.MaxComm + c.TTB/2
	}
	if c.BatchWindow > 0 && c.BatchBytes == 0 {
		c.BatchBytes = 64 << 10
	}
	if c.FanOutDegree <= 0 {
		c.FanOutDegree = 4
	}
	return c
}

// Stats summarizes an environment's DGC activity.
type Stats struct {
	// Created is the total number of activities ever created (dummy
	// referencer handles excluded).
	Created int
	// Live is the number of activities currently alive (dummies excluded).
	Live int
	// Collected maps termination reasons to counts.
	Collected map[core.Reason]int
}

// Env is one simulated distributed system: a set of nodes sharing a
// network, a registry and DGC parameters.
type Env struct {
	cfg     Config
	net     transport.Transport
	nodeGen ids.NodeGenerator
	cluster *clusterAgent // nil unless Config.Cluster.Enabled

	// deadNodes is the copy-on-write set of nodes the cluster has declared
	// dead: nil until the first confirmed death, so the hot path's
	// fail-fast check (isDeadNode) is a single atomic load.
	deadMu    sync.Mutex
	deadNodes atomic.Pointer[map[ids.NodeID]struct{}]

	// ring is the consistent-hash ring of the sharded location directory
	// (WIRE.md §9): rebuilt on every topology change, read lock-free on
	// the directory paths.
	ring atomic.Pointer[location.Ring]

	mu      sync.Mutex
	nodes   map[ids.NodeID]*Node
	names   map[string]ids.ActivityID
	created int
	reaped  map[core.Reason]int
	closed  bool
}

// NewEnv creates an environment. Close it when done.
func NewEnv(cfg Config) *Env {
	if cfg.Transport != nil && cfg.MaxComm == 0 {
		// Let the substrate's own bound feed the TTA formula.
		cfg.MaxComm = cfg.Transport.MaxComm()
	}
	cfg = cfg.withDefaults()
	e := &Env{
		cfg:    cfg,
		nodes:  make(map[ids.NodeID]*Node),
		names:  make(map[string]ids.ActivityID),
		reaped: make(map[core.Reason]int),
	}
	if cfg.FirstNode > 1 {
		e.nodeGen.SkipTo(cfg.FirstNode)
	}
	if cfg.Transport != nil {
		e.net = cfg.Transport
	} else {
		e.net = simnet.New(simnet.Config{
			Clock:     cfg.Clock,
			Latency:   cfg.Latency,
			Reachable: cfg.Reachable,
			MaxComm:   cfg.MaxComm,
		})
	}
	if cfg.Cluster.Enabled {
		e.cluster = newClusterAgent(e)
	}
	return e
}

// Config returns the environment's effective configuration.
func (e *Env) Config() Config { return e.cfg }

// Network exposes the underlying transport (for traffic accounting).
func (e *Env) Network() transport.Transport { return e.net }

// Clock returns the environment clock.
func (e *Env) Clock() vclock.Clock { return e.cfg.Clock }

// NewNode creates a process in the distributed system and starts its DGC
// driver. With the cluster runtime enabled, the first NewNode implicitly
// joins the cluster (and panics if the seed is unreachable — call
// Env.Join first to handle that as an error), and every new node is
// announced to the other members.
func (e *Env) NewNode() *Node {
	var id ids.NodeID
	if e.cluster != nil {
		// May contact the seed for a lease; must run outside e.mu.
		id = e.cluster.nextNodeID()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		panic("active: NewNode on closed Env")
	}
	if e.cluster == nil {
		id = e.nodeGen.Next()
	}
	n := newNode(e, id)
	e.nodes[id] = n
	n.start()
	e.mu.Unlock()
	if e.cluster != nil {
		e.cluster.noteNodeUp(id)
	}
	e.refreshRing()
	return n
}

// node returns the node hosting the given node ID.
func (e *Env) node(id ids.NodeID) (*Node, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n, ok := e.nodes[id]
	return n, ok
}

// localNodeIDs lists the node IDs hosted by this environment.
func (e *Env) localNodeIDs() []ids.NodeID {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ids.NodeID, 0, len(e.nodes))
	for id := range e.nodes {
		out = append(out, id)
	}
	return out
}

// Node returns the live node with the given ID, or nil if this
// environment hosts no such node (it may live in another process of a
// TCP deployment, or be dead).
func (e *Env) Node(id ids.NodeID) *Node {
	n, ok := e.node(id)
	if !ok {
		return nil
	}
	return n
}

// activity resolves an activity ID to its live object.
func (e *Env) activity(id ids.ActivityID) (*ActiveObject, bool) {
	n, ok := e.node(id.Node)
	if !ok {
		return nil, false
	}
	return n.activity(id)
}

// RegisterName publishes ref in the registry under name. A registered
// activity is a DGC root (§4.1): anyone can look it up at any time, so it
// is never considered idle.
func (e *Env) RegisterName(name string, ref wire.Value) error {
	target, ok := ref.AsRef()
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotARef, ref)
	}
	ao, ok := e.activity(target)
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownActivity, target)
	}
	e.mu.Lock()
	e.names[name] = target
	e.mu.Unlock()
	ao.registered.Store(true)
	if ao.kind != "" && e.cfg.Store != nil {
		// Registration is part of the durable image (Recover re-registers
		// names): make sure the next checkpoint beat picks it up.
		ao.ckptDirty.Store(true)
	}
	return nil
}

// Unregister removes a name from the registry. The activity loses its root
// status (unless registered under another name) and becomes collectable
// when unreferenced and idle.
func (e *Env) Unregister(name string) {
	e.mu.Lock()
	target, ok := e.names[name]
	if !ok {
		e.mu.Unlock()
		return
	}
	delete(e.names, name)
	stillRegistered := false
	for _, other := range e.names {
		if other == target {
			stillRegistered = true
			break
		}
	}
	e.mu.Unlock()
	if stillRegistered {
		return
	}
	if ao, okAO := e.activity(target); okAO {
		ao.registered.Store(false)
	}
}

// rebindRegistered re-points every registry name from a migrated
// activity's old identity to its new one and moves the never-idle root
// status along (§4.1: a registered activity can be looked up at any time,
// wherever it lives now).
func (e *Env) rebindRegistered(old, new ids.ActivityID) {
	e.mu.Lock()
	moved := false
	for name, target := range e.names {
		if target == old {
			e.names[name] = new
			moved = true
		}
	}
	e.mu.Unlock()
	if !moved {
		return
	}
	if ao, ok := e.activity(old); ok {
		ao.registered.Store(false)
	}
	if ao, ok := e.activity(new); ok {
		ao.registered.Store(true)
	}
}

// Lookup resolves a registered name to a reference value.
func (e *Env) Lookup(name string) (wire.Value, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	target, ok := e.names[name]
	if !ok {
		return wire.Null(), fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	return wire.Ref(target), nil
}

// Stats returns a snapshot of activity counts.
func (e *Env) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{Created: e.created, Collected: make(map[core.Reason]int, len(e.reaped))}
	for r, c := range e.reaped {
		st.Collected[r] += c
	}
	for _, n := range e.nodes {
		st.Live += n.liveCount()
	}
	return st
}

// LiveActivities returns the number of live activities (dummy handles
// excluded).
func (e *Env) LiveActivities() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var total int
	for _, n := range e.nodes {
		total += n.liveCount()
	}
	return total
}

// WaitCollected polls until at most want activities remain live, or
// timeout (on the environment clock) elapses. It returns the time it took.
func (e *Env) WaitCollected(want int, timeout time.Duration) (time.Duration, error) {
	start := e.cfg.Clock.Now()
	for {
		if e.LiveActivities() <= want {
			return e.cfg.Clock.Now().Sub(start), nil
		}
		if e.cfg.Clock.Now().Sub(start) > timeout {
			return 0, fmt.Errorf("active: %d activities still live after %v (want <= %d)",
				e.LiveActivities(), timeout, want)
		}
		e.cfg.Clock.Sleep(e.cfg.TTB / 4)
	}
}

func (e *Env) noteCreated() {
	e.mu.Lock()
	e.created++
	e.mu.Unlock()
}

func (e *Env) noteCollected(reason core.Reason) {
	e.mu.Lock()
	e.reaped[reason]++
	e.mu.Unlock()
}

// Close stops the network and all nodes. Pending futures fail with
// ErrEnvClosed. Batched outbound traffic is flushed first (so a message
// accepted before Close is written, not silently dropped), then the
// transport closes: that fails any Call a driver is blocked in (a TCP
// exchange against a hung peer would otherwise make the driver — and this
// Close, which waits for it — hang forever), after which the node
// shutdowns can join their goroutines. simnet drains in-flight deliveries
// on Close, so nodes outliving the network briefly is safe on either
// backend.
func (e *Env) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	nodes := make([]*Node, 0, len(e.nodes))
	for _, n := range e.nodes {
		nodes = append(nodes, n)
	}
	e.mu.Unlock()
	for _, n := range nodes {
		n.flushOutbound()
	}
	if e.cluster != nil {
		e.cluster.stop()
	}
	e.net.Close()
	for _, n := range nodes {
		n.shutdown()
	}
}
