package active

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/localgc"
	"repro/internal/wire"
)

// ErrHandleReleased is returned by calls through a handle whose reference
// has been dropped: the dummy root is gone (or going), so the middleware
// must not fabricate a fresh edge to the target. Check with errors.Is.
var ErrHandleReleased = errors.New("active: handle released")

// Handle lets non-active code (a main function, a test, a benchmark)
// reference and call an activity. The middleware backs each handle with a
// dummy activity (§4.1): it has no behavior and is permanently busy, so it
// acts as a DGC root keeping the target alive — and it heartbeats the
// target like any referencer would. Releasing the handle drops that edge
// and lets the DGC reclaim the target once it is otherwise garbage.
type Handle struct {
	dummy    *ActiveObject
	target   wire.Value
	stubRoot localgc.RootID
	released atomic.Bool
}

// NewActive creates an activity running b on this node and returns a
// handle referencing it. Options configure the activity (e.g. WithPolicy
// for a non-FIFO service discipline).
func (n *Node) NewActive(name string, b Behavior, opts ...SpawnOption) *Handle {
	ao := n.newActivity(name, b, false, opts...)
	h, err := n.HandleFor(wire.Ref(ao.id))
	if err != nil {
		// The activity was created above and cannot be gone.
		panic(fmt.Sprintf("active: HandleFor on fresh activity: %v", err))
	}
	return h
}

// HandleFor wraps an existing reference value (e.g. from Env.Lookup) in a
// handle anchored on this node.
func (n *Node) HandleFor(ref wire.Value) (*Handle, error) {
	target, ok := ref.AsRef()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotARef, ref)
	}
	dummy := n.newActivity("handle:"+target.String(), nil, true)
	now := n.env.cfg.Clock.Now()
	dummy.collector.AddReferenced(target, now)
	_, root := n.heap.NewStubRooted(dummy.id, target)
	return &Handle{dummy: dummy, target: ref, stubRoot: root}, nil
}

// Ref returns the reference value this handle holds. Embedding it in call
// arguments shares the reference with the callee.
func (h *Handle) Ref() wire.Value { return h.target }

// Node returns the node anchoring the handle.
func (h *Handle) Node() *Node { return h.dummy.node }

// Call performs an asynchronous method call on the target and returns a
// future.
func (h *Handle) Call(method string, args wire.Value) (*Future, error) {
	if h.released.Load() {
		return nil, fmt.Errorf("call %q: %w", method, ErrHandleReleased)
	}
	ctx := &Context{ao: h.dummy}
	return ctx.Call(h.target, method, args)
}

// Send performs a one-way asynchronous call on the target.
func (h *Handle) Send(method string, args wire.Value) error {
	if h.released.Load() {
		return fmt.Errorf("send %q: %w", method, ErrHandleReleased)
	}
	ctx := &Context{ao: h.dummy}
	return ctx.Send(h.target, method, args)
}

// CallSync is Call followed by Wait.
func (h *Handle) CallSync(method string, args wire.Value, timeout time.Duration) (wire.Value, error) {
	fut, err := h.Call(method, args)
	if err != nil {
		return wire.Null(), err
	}
	return fut.Wait(timeout)
}

// Future lifts a first-class future value (received in a reply) into the
// waitable Future adopted on this handle's node — the non-active-code
// analogue of Context.Future.
func (h *Handle) Future(v wire.Value) (*Future, error) {
	return h.dummy.node.futureFor(v)
}

// Release drops the handle's reference: the dummy root stops pinning the
// target, which becomes collectable once otherwise garbage. The dummy
// itself is destroyed by the driver after its edge drop has been
// broadcast. Release is an idempotent no-op on a released handle.
func (h *Handle) Release() {
	if h.released.Swap(true) {
		return
	}
	h.dummy.node.heap.RemoveRoot(h.stubRoot)
	h.dummy.wantStop.Store(true) // picked up by the driver for dummies
}

// Terminate explicitly destroys the target activity (the paper's NAS
// baseline uses explicit termination). The handle is released as a side
// effect; on an already-released handle Terminate is a no-op, since the
// handle no longer speaks for the target.
func (h *Handle) Terminate() {
	if h.released.Load() {
		return
	}
	if tid, ok := h.target.AsRef(); ok {
		if ao, alive := h.dummy.node.env.activity(tid); alive {
			ao.node.destroy(ao, core.ReasonNone)
		}
	}
	h.Release()
}
