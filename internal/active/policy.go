package active

// Service policies: the request-selection half of the serve-loop
// redesign. The paper's middleware exposes service primitives beyond
// plain FIFO — serve the oldest matching request, serve selectively from
// the pending queue (§5–§6's serveOldest and friends). Here the selection
// is lifted behind the ServicePolicy interface: every activity's serve
// loop asks its policy which pending request to serve next, and
// Context.ServeNext lets a behavior serve selectively mid-service.

import "repro/internal/ids"

// RequestInfo describes one pending request to a ServicePolicy. The
// pending slice handed to Select is in arrival order (oldest first).
type RequestInfo struct {
	// Method is the request's method name.
	Method string
	// Sender is the calling activity.
	Sender ids.ActivityID
	// HasFuture reports whether the caller awaits a reply.
	HasFuture bool
}

// ServicePolicy picks the next request an activity serves. Select
// receives the pending requests oldest-first and returns the index to
// serve, or a negative value to serve nothing yet (the serve loop then
// blocks until new requests arrive — note that an activity holding
// pending-but-unselected requests counts as busy, never idle, so the DGC
// cannot collect it out from under a starving policy). Select is always
// invoked from the owning activity's service goroutine, but one policy
// value may be shared by many activities, so implementations must be
// safe for concurrent use (the built-ins are stateless).
type ServicePolicy interface {
	Select(pending []RequestInfo) int
}

// fifoPolicy is the default arrival-order policy. The serve loop
// special-cases it (and nil) to skip building RequestInfo slices, so the
// default path stays exactly as cheap — and wire- and
// semantics-identical — as the hard-wired queue it replaced.
type fifoPolicy struct{}

// Select implements ServicePolicy.
func (fifoPolicy) Select(pending []RequestInfo) int {
	if len(pending) == 0 {
		return -1
	}
	return 0
}

// FIFO returns the default policy: serve requests in arrival order.
func FIFO() ServicePolicy { return fifoPolicy{} }

// lifoPolicy serves the newest request first.
type lifoPolicy struct{}

// Select implements ServicePolicy.
func (lifoPolicy) Select(pending []RequestInfo) int { return len(pending) - 1 }

// LIFO returns the newest-first policy (a stack discipline: useful when
// fresh requests carry fresher state and stale ones may be shed by the
// behavior itself).
func LIFO() ServicePolicy { return lifoPolicy{} }

// priorityPolicy serves the highest-priority method first, FIFO within a
// priority class.
type priorityPolicy struct {
	prio map[string]int
}

// Select implements ServicePolicy.
func (p priorityPolicy) Select(pending []RequestInfo) int {
	best, bestPrio := -1, 0
	for i, r := range pending {
		pr := p.prio[r.Method]
		if best < 0 || pr > bestPrio {
			best, bestPrio = i, pr
		}
	}
	return best
}

// PriorityByMethod returns a policy serving the pending request whose
// method has the highest priority (FIFO among equal priorities). Methods
// absent from prio have priority 0; the map is copied.
func PriorityByMethod(prio map[string]int) ServicePolicy {
	cp := make(map[string]int, len(prio))
	for m, p := range prio {
		cp[m] = p
	}
	return priorityPolicy{prio: cp}
}

// serveOldestPolicy serves the oldest request among a method set.
type serveOldestPolicy struct {
	methods map[string]struct{}
}

// Select implements ServicePolicy.
func (p serveOldestPolicy) Select(pending []RequestInfo) int {
	if len(p.methods) == 0 {
		if len(pending) == 0 {
			return -1
		}
		return 0
	}
	for i, r := range pending {
		if _, ok := p.methods[r.Method]; ok {
			return i
		}
	}
	return -1
}

// ServeOldest returns the paper's serveOldest primitive as a policy: the
// oldest pending request whose method is one of methods is served;
// everything else stays queued until a matching request exists. With no
// methods it degenerates to FIFO. As a standing policy it starves
// non-matching requests — its natural home is Context.ServeNext, where a
// behavior serves selectively for one step and then returns to its
// standing policy.
func ServeOldest(methods ...string) ServicePolicy {
	set := make(map[string]struct{}, len(methods))
	for _, m := range methods {
		set[m] = struct{}{}
	}
	return serveOldestPolicy{methods: set}
}

// spawnOptions collects per-activity creation knobs.
type spawnOptions struct {
	policy ServicePolicy
	kind   string
	// id forces the new activity's identity instead of minting one —
	// crash recovery restoring a checkpointed activity under the identity
	// its holders still route by. Internal only; the node's ID generator
	// is advanced past it so later spawns cannot collide.
	id ids.ActivityID
}

// SpawnOption configures one activity at creation (Node.NewActive,
// Context.Spawn).
type SpawnOption func(*spawnOptions)

// WithPolicy sets the activity's standing service policy, overriding
// Config.ServicePolicy. nil (the default) means FIFO.
func WithPolicy(p ServicePolicy) SpawnOption {
	return func(o *spawnOptions) { o.policy = p }
}

// WithKind tags the activity with a registered behavior kind (see
// RegisterBehavior), making it migratable: Handle.Migrate and
// Context.MigrateTo can move it to any node whose process registered the
// same kind. Node.SpawnKind applies it automatically.
func WithKind(kind string) SpawnOption {
	return func(o *spawnOptions) { o.kind = kind }
}

// withForcedID restores an activity under a pre-existing identity
// (Env.Recover). Unexported: user code must never pick identities.
func withForcedID(id ids.ActivityID) SpawnOption {
	return func(o *spawnOptions) { o.id = id }
}
