package active

// Cross-backend conformance for the tree-structured group fan-out
// (WIRE.md §10) and the sharded location directory's failure paths
// (WIRE.md §9): tree broadcast/scatter correctness over more nodes than
// the branching degree, no-hang semantics when a mid-tree relay is
// killed, shard handoff after the directory owner dies, and the stale
// location cache healing through a forwarder redirect.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// treeGroup spawns one doubling member per node and anchors every
// member handle on root, so the fan-out's distinct remote destinations
// force the tree path whenever len(nodes) exceeds the branching degree.
func treeGroup(t *testing.T, root *Node, nodes []*Node) (*Group[int64, int64], []*Handle) {
	t.Helper()
	hosted := make([]*Handle, len(nodes))
	anchored := make([]*Handle, len(nodes))
	for i, n := range nodes {
		hosted[i] = n.NewActive("member", NewService(
			Method("double", func(_ *Context, req int64) (int64, error) {
				return 2 * req, nil
			})))
		h, err := root.HandleFor(hosted[i].Ref())
		if err != nil {
			t.Fatal(err)
		}
		anchored[i] = h
	}
	return NewGroup[int64, int64]("double", anchored...), hosted
}

func TestConformanceTreeBroadcast(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		root := e.NewNode()
		nodes := make([]*Node, 7)
		for i := range nodes {
			nodes[i] = e.NewNode()
		}
		g, hosted := treeGroup(t, root, nodes)
		defer g.Release()
		defer func() {
			for _, h := range hosted {
				h.Release()
			}
		}()
		// 7 distinct remote destinations > the default degree of 4: the
		// anchor must plan a relay tree for this group.
		if trees := g.planTrees(); trees[root] == nil {
			t.Fatal("broadcast over 7 remote nodes did not engage the tree path")
		}
		fg, err := g.Broadcast(21)
		if err != nil {
			t.Fatal(err)
		}
		resps, err := fg.WaitAll(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range resps {
			if r != 42 {
				t.Fatalf("resp[%d] = %d, want 42", i, r)
			}
		}
	})
}

func TestConformanceTreeScatter(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		root := e.NewNode()
		nodes := make([]*Node, 6)
		for i := range nodes {
			nodes[i] = e.NewNode()
		}
		g, hosted := treeGroup(t, root, nodes)
		defer g.Release()
		defer func() {
			for _, h := range hosted {
				h.Release()
			}
		}()
		reqs := make([]int64, len(nodes))
		for i := range reqs {
			reqs[i] = int64(100 + i)
		}
		fg, err := g.Scatter(reqs)
		if err != nil {
			t.Fatal(err)
		}
		resps, err := fg.WaitAll(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range resps {
			if r != 2*(100+int64(i)) {
				t.Fatalf("resp[%d] = %d, want %d (per-member args)", i, r, 2*(100+int64(i)))
			}
		}
	})
}

// TestTreeFanOutPlanning pins the engagement rule: the tree engages only
// past the branching degree, and DisableTreeFanOut forces the flat
// baseline regardless of spread.
func TestTreeFanOutPlanning(t *testing.T) {
	e := NewEnv(Config{TTB: 10 * time.Millisecond, FanOutDegree: 2})
	defer e.Close()
	root := e.NewNode()
	nodes := []*Node{e.NewNode(), e.NewNode(), e.NewNode()}
	g, hosted := treeGroup(t, root, nodes)
	defer g.Release()
	defer func() {
		for _, h := range hosted {
			h.Release()
		}
	}()
	if trees := g.planTrees(); trees[root] == nil {
		t.Fatal("3 remote destinations with degree 2 must engage the tree")
	}

	eFlat := NewEnv(Config{TTB: 10 * time.Millisecond, FanOutDegree: 2, DisableTreeFanOut: true})
	defer eFlat.Close()
	rootFlat := eFlat.NewNode()
	nodesFlat := []*Node{eFlat.NewNode(), eFlat.NewNode(), eFlat.NewNode()}
	gFlat, hostedFlat := treeGroup(t, rootFlat, nodesFlat)
	defer gFlat.Release()
	defer func() {
		for _, h := range hostedFlat {
			h.Release()
		}
	}()
	if trees := gFlat.planTrees(); trees[rootFlat] != nil {
		t.Fatal("DisableTreeFanOut must force the flat path")
	}
	// The flat group must still answer correctly — it is the baseline the
	// perf gate compares the tree against.
	fg, err := gFlat.Broadcast(5)
	if err != nil {
		t.Fatal(err)
	}
	resps, err := fg.WaitAll(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r != 10 {
			t.Fatalf("flat resp[%d] = %d, want 10", i, r)
		}
	}
}

// TestClusterTreeBroadcastRelayKilled kills a mid-tree relay node while
// every member is parked mid-service: the members hosted on (or routed
// through) the dead relay fail with ErrNodeDead via the first-hop await
// machinery, every other member still answers through the reparented
// relay records, and no future ever hangs.
func TestClusterTreeBroadcastRelayKilled(t *testing.T) {
	t.Parallel()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
		Cluster: ClusterConfig{Enabled: true},
	})
	defer e.Close()
	root := e.NewNode()
	const members = 8
	nodes := make([]*Node, members)
	for i := range nodes {
		nodes[i] = e.NewNode()
	}
	arrived := make(chan struct{}, members)
	release := make(chan struct{})
	hosted := make([]*Handle, members)
	anchored := make([]*Handle, members)
	for i, n := range nodes {
		hosted[i] = n.NewActive("member", NewService(
			Method("park", func(_ *Context, req int64) (int64, error) {
				arrived <- struct{}{}
				<-release
				return req, nil
			})))
		h, err := root.HandleFor(hosted[i].Ref())
		if err != nil {
			t.Fatal(err)
		}
		anchored[i] = h
	}
	g := NewGroup[int64, int64]("park", anchored...)
	defer g.Release()
	fg, err := g.Broadcast(7)
	if err != nil {
		t.Fatal(err)
	}
	// Every member is mid-service: the relay records up the tree are all
	// live and waiting on replies when the kill lands.
	for i := 0; i < members; i++ {
		select {
		case <-arrived:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d members reached mid-service", i, members)
		}
	}
	// With 8 bundles (one per node, in member order) and degree 4 the
	// subtree groups are pairs; nodes[2] relays nodes[3]'s bundle —
	// killing it severs a genuine mid-tree edge, not just a leaf. The
	// network goes dark first; the release then lets every surviving
	// member answer while the death is still being detected, exercising
	// the relay records' flush-to-dead-parent fallback.
	victim := nodes[2]
	e.Network().(*simnet.Network).KillNode(victim.ID())
	close(release)
	victim.Crash()
	waitState(t, e, victim.ID(), cluster.StateDead, 10*time.Second)

	okCount := 0
	for i := 0; i < members; i++ {
		v, errW := fg.At(i).Wait(15 * time.Second)
		switch {
		case errW == nil:
			if v != 7 {
				t.Fatalf("member %d reply = %d, want 7", i, v)
			}
			okCount++
		case errors.Is(errW, ErrFutureTimeout):
			t.Fatalf("member %d hung after the relay death", i)
		case i == 2 || i == 3:
			// Hosted on, or first-hop-routed through, the dead relay:
			// ErrNodeDead is the documented fail-fast outcome.
			if !errors.Is(errW, ErrNodeDead) {
				t.Fatalf("member %d error = %v, want ErrNodeDead", i, errW)
			}
		default:
			t.Fatalf("member %d (unrelated to the dead relay) failed: %v", i, errW)
		}
	}
	// The members on dead nodes[2] can never answer; everyone else's
	// reply must have survived the relay's death.
	if okCount < members-2 {
		t.Fatalf("only %d/%d members answered after a mid-tree kill", okCount, members)
	}
}

// TestClusterShardHandoffOnNodeDeath kills the directory shard owner of
// a migrated identity AND its forwarder node, then resolves the stale
// identity from a node with no location knowledge: the origin node's
// per-beat re-announce must repopulate the ring's new owner, and the
// directory query then routes the call to the live activity.
func TestClusterShardHandoffOnNodeDeath(t *testing.T) {
	t.Parallel()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
		Cluster: ClusterConfig{Enabled: true},
	})
	defer e.Close()
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()
	n4, n5 := e.NewNode(), e.NewNode()

	// Spawn counters on n2 until one's identity shards onto n4 or n5 —
	// nodes that host neither end of the migration, so their death tests
	// the handoff and nothing else. 128 vnodes over 5 members make this
	// a handful of tries at most.
	var h *Handle
	var owner ids.NodeID
	for try := 0; try < 256; try++ {
		cand, err := n2.SpawnKind("counter", "test/cluster-counter")
		if err != nil {
			t.Fatal(err)
		}
		id := mustRef(t, cand.Ref())
		o, ok := e.ring.Load().Owner(id)
		if ok && (o == n4.ID() || o == n5.ID()) {
			h, owner = cand, o
			break
		}
		cand.Release()
	}
	if h == nil {
		t.Fatal("no spawned identity sharded onto n4/n5 in 256 tries")
	}
	oldRef := h.Ref()
	oldID := mustRef(t, oldRef)
	// A keeper handle on n1 pins the activity across the deaths ahead —
	// its spawn handle's dummy lives on n2 and dies with it, and a
	// referent with no referencer left is DGC'd, which is not the
	// scenario under test. The keeper must learn the post-migration
	// identity (via the forwarder's redirect) so its heartbeats follow
	// the activity to n3 before n2 goes dark.
	keeper, err := n1.HandleFor(oldRef)
	if err != nil {
		t.Fatal(err)
	}
	defer keeper.Release()
	mfut, err := h.Migrate(n3.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mfut.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := keeper.CallSync("add", wire.Int(1), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool {
		return n1.resolveRebind(oldID).Node == n3.ID()
	}, 5*time.Second)

	// Kill the shard owner, then the forwarder's node: every fast path a
	// stale holder could lean on is now gone — only the handoff works.
	for _, victim := range []*Node{nodeByID(t, []*Node{n4, n5}, owner), n2} {
		e.Network().(*simnet.Network).KillNode(victim.ID())
		victim.Crash()
		waitState(t, e, victim.ID(), cluster.StateDead, 10*time.Second)
	}

	// The fresh caller is the surviving one of n4/n5: no forwarder to
	// lean on (dead), no learned cache — it must go through the shard,
	// which the origin node n3 repopulates beat by beat.
	fresh := n4
	if owner == n4.ID() {
		fresh = n5
	}
	stale, err := fresh.HandleFor(oldRef)
	if err != nil {
		t.Fatal(err)
	}
	defer stale.Release()
	waitUntil(t, func() bool {
		v, errC := stale.CallSync("add", wire.Int(3), 5*time.Second)
		if errC == nil {
			if v.AsInt() != 4 {
				t.Fatalf("handoff call = %v, want 4", v)
			}
			return true
		}
		if !errors.Is(errC, ErrNodeDead) && !errors.Is(errC, ErrUnknownActivity) {
			t.Fatalf("stale call error = %v, want nil or a fast-fail sentinel while the shard repopulates", errC)
		}
		return false
	}, 10*time.Second)
	h.Release()
}

// TestConformanceStaleCacheRedirect migrates an activity twice: a caller
// that learned the first hop holds a stale cache entry pointing at the
// intermediate home, and the call through it must relay via the
// forwarder and compress the cache onto the final identity.
func TestConformanceStaleCacheRedirect(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2, n3, n4 := e.NewNode(), e.NewNode(), e.NewNode(), e.NewNode()
		h, err := n2.SpawnKind("counter", "test/cluster-counter")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Release()
		oldRef := h.Ref()
		oldID := mustRef(t, oldRef)
		caller, err := n1.HandleFor(oldRef)
		if err != nil {
			t.Fatal(err)
		}
		defer caller.Release()
		if _, err := caller.CallSync("add", wire.Int(1), 5*time.Second); err != nil {
			t.Fatal(err)
		}

		migrateTo := func(dst *Node) {
			t.Helper()
			mfut, errM := h.Migrate(dst.ID())
			if errM != nil {
				t.Fatal(errM)
			}
			if _, errM := mfut.Wait(5 * time.Second); errM != nil {
				t.Fatal(errM)
			}
		}
		migrateTo(n3)
		// Teach n1 the first hop, then wait until its cache holds it.
		if v, errC := caller.CallSync("add", wire.Int(1), 5*time.Second); errC != nil || v.AsInt() != 2 {
			t.Fatalf("post-first-migration call = %v, %v", v, errC)
		}
		waitUntil(t, func() bool {
			return n1.resolveRebind(oldID).Node == n3.ID()
		}, 5*time.Second)

		// Second migration: n1's cache entry is now stale (it points at
		// the n3 identity). The call must still land — forwarder relay —
		// and the redirect must compress the cache onto the n4 identity.
		migrateTo(n4)
		if v, errC := caller.CallSync("add", wire.Int(1), 5*time.Second); errC != nil || v.AsInt() != 3 {
			t.Fatalf("stale-cache call = %v, %v", v, errC)
		}
		waitUntil(t, func() bool {
			return n1.resolveRebind(oldID).Node == n4.ID()
		}, 5*time.Second)
	})
}

// nodeByID returns the node with the given ID from candidates.
func nodeByID(t *testing.T, candidates []*Node, id ids.NodeID) *Node {
	t.Helper()
	for _, n := range candidates {
		if n.ID() == id {
			return n
		}
	}
	t.Fatalf("no candidate node has ID %v", id)
	return nil
}
