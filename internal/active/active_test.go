package active

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/wire"
)

// testEnv returns an Env with compressed timing suitable for tests.
func testEnv(t *testing.T) *Env {
	t.Helper()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond,
		TTA: 25 * time.Millisecond,
	})
	t.Cleanup(e.Close)
	return e
}

// relay is a general-purpose test behavior:
//
//	"ping"          → returns Int(1)
//	"echo"          → returns its args
//	"set:<key>"     → stores args under key, returns null
//	"get:<key>"     → returns the stored value
//	"del:<key>"     → deletes the key
//	"self"          → returns a reference to itself
//	"stop"          → requests explicit termination
//	"sleep"         → sleeps args ms on the env clock (stays busy)
//	"callpeer"      → calls method "ping" on the ref stored under "peer"
type relay struct{}

func (relay) Serve(ctx *Context, method string, args wire.Value) (wire.Value, error) {
	switch {
	case method == "ping":
		return wire.Int(1), nil
	case method == "echo":
		return args, nil
	case method == "self":
		return ctx.Self(), nil
	case method == "stop":
		ctx.TerminateSelf()
		return wire.Null(), nil
	case method == "sleep":
		ctx.ao.node.env.cfg.Clock.Sleep(time.Duration(args.AsInt()) * time.Millisecond)
		return wire.Null(), nil
	case method == "callpeer":
		peer := ctx.Load("peer")
		fut, err := ctx.Call(peer, "ping", wire.Null())
		if err != nil {
			return wire.Null(), err
		}
		return fut.Wait(5 * time.Second)
	case len(method) > 4 && method[:4] == "set:":
		ctx.Store(method[4:], args)
		return wire.Null(), nil
	case len(method) > 4 && method[:4] == "get:":
		return ctx.Load(method[4:]), nil
	case len(method) > 4 && method[:4] == "del:":
		ctx.Delete(method[4:])
		return wire.Null(), nil
	default:
		return wire.Null(), errors.New("unknown method " + method)
	}
}

func TestCallAndFuture(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("a", relay{})
	defer h.Release()
	got, err := h.CallSync("echo", wire.String("hello"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.AsString() != "hello" {
		t.Fatalf("echo = %v", got)
	}
}

func TestCallAcrossNodes(t *testing.T) {
	e := testEnv(t)
	n1, n2 := e.NewNode(), e.NewNode()
	h := n2.NewActive("remote", relay{})
	defer h.Release()
	// Call from a handle anchored on another node.
	h1, err := n1.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	defer h1.Release()
	got, err := h1.CallSync("ping", wire.Null(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.AsInt() != 1 {
		t.Fatalf("ping = %v", got)
	}
	// App traffic must have been accounted (distinct nodes).
	if e.Network().Snapshot().Bytes[1] == 0 { // simnet.ClassApp
		t.Fatal("no app bytes accounted for a cross-node call")
	}
}

func TestBehaviorErrorPropagates(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("a", relay{})
	defer h.Release()
	_, err := h.CallSync("no-such-method", wire.Null(), 5*time.Second)
	if !errors.Is(err, ErrRemoteFailure) {
		t.Fatalf("err = %v, want ErrRemoteFailure", err)
	}
}

func TestHandleKeepsActivityAlive(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("pinned", relay{})
	dgcSettle(t, e, n) // a full reclamation cycle passes; the handle pins
	if e.LiveActivities() != 1 {
		t.Fatalf("live = %d, want 1 (handle is a root)", e.LiveActivities())
	}
	h.Release()
	if _, err := e.WaitCollected(0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Collected[core.ReasonAcyclic] != 2 { // the pinned activity + the settle canary
		t.Fatalf("collected = %+v, want two acyclic", st.Collected)
	}
}

func TestReleasedHandleRejectsCalls(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("a", relay{})
	h.Release()
	if _, err := h.Call("ping", wire.Null()); err == nil {
		t.Fatal("Call through released handle must fail")
	}
	if err := h.Send("ping", wire.Null()); err == nil {
		t.Fatal("Send through released handle must fail")
	}
	h.Release() // idempotent
}

func TestDistributedCycleCollected(t *testing.T) {
	e := testEnv(t)
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()
	ha := n1.NewActive("a", relay{})
	hb := n2.NewActive("b", relay{})
	hc := n3.NewActive("c", relay{})

	// Build the cycle a → b → c → a by storing references.
	for _, link := range []struct {
		h  *Handle
		to *Handle
	}{{ha, hb}, {hb, hc}, {hc, ha}} {
		if _, err := link.h.CallSync("set:peer", link.to.Ref(), 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Verify the edges exist in the reference graph.
	aoA, _ := e.activity(mustRef(t, ha.Ref()))
	if got := aoA.Collector().Referenced(); len(got) != 1 || got[0] != mustRef(t, hb.Ref()) {
		t.Fatalf("a.Referenced() = %v, want [b]", got)
	}

	// While the handles exist, nothing is collected.
	dgcSettle(t, e, n1)
	if e.LiveActivities() != 3 {
		t.Fatalf("live = %d, want 3", e.LiveActivities())
	}

	ha.Release()
	hb.Release()
	hc.Release()
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// At least the consensus maker and one wave recipient die cyclically;
	// a member whose upstream beat stopped early may fall back to the
	// acyclic path, which §4.3 explicitly tolerates.
	st := e.Stats()
	cyclic := st.Collected[core.ReasonCyclic] + st.Collected[core.ReasonNotified]
	if cyclic < 2 {
		t.Fatalf("collected = %+v, want >= 2 cyclic", st.Collected)
	}
	if st.Collected[core.ReasonCyclic] < 1 {
		t.Fatalf("collected = %+v, want a consensus maker", st.Collected)
	}
}

func TestBusyCycleNotCollected(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	gate := make(chan struct{})
	// a is a relay that can additionally park on a gate, so the test
	// controls exactly when its busy phase ends.
	ha := n.NewActive("a", BehaviorFunc(func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
		if method == "park" {
			<-gate
			return wire.Null(), nil
		}
		return relay{}.Serve(ctx, method, args)
	}))
	hb := n.NewActive("b", relay{})
	if _, err := ha.CallSync("set:peer", hb.Ref(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := hb.CallSync("set:peer", ha.Ref(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Keep a busy on the gate, release both handles.
	if err := ha.Send("park", wire.Null()); err != nil {
		t.Fatal(err)
	}
	ha.Release()
	hb.Release()
	dgcSettle(t, e, n) // many TTAs pass, but a is still busy
	if e.LiveActivities() != 2 {
		t.Fatalf("live = %d during busy phase, want 2", e.LiveActivities())
	}
	// After the busy phase ends the cycle is idle garbage.
	close(gate)
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryPinsAndUnregisterFrees(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("service", relay{})
	if err := e.RegisterName("svc", h.Ref()); err != nil {
		t.Fatal(err)
	}
	h.Release() // the registry is now the only root
	dgcSettle(t, e, n)
	if e.LiveActivities() != 1 {
		t.Fatalf("registered activity collected: live = %d", e.LiveActivities())
	}
	// A client can look it up and call it.
	ref, err := e.Lookup("svc")
	if err != nil {
		t.Fatal(err)
	}
	client, err := n.HandleFor(ref)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := client.CallSync("ping", wire.Null(), 5*time.Second); err != nil || got.AsInt() != 1 {
		t.Fatalf("lookup call = %v, %v", got, err)
	}
	client.Release()
	e.Unregister("svc")
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Lookup("svc"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("Lookup after Unregister = %v, want ErrUnknownName", err)
	}
}

func TestRegisterErrors(t *testing.T) {
	e := testEnv(t)
	if err := e.RegisterName("x", wire.Int(1)); !errors.Is(err, ErrNotARef) {
		t.Fatalf("err = %v, want ErrNotARef", err)
	}
	ghost := wire.Ref(ids.ActivityID{Node: 99, Seq: 1})
	if err := e.RegisterName("x", ghost); !errors.Is(err, ErrUnknownActivity) {
		t.Fatalf("err = %v, want ErrUnknownActivity", err)
	}
	e.Unregister("never-registered") // no-op
}

func TestExplicitTerminate(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("a", relay{})
	h.Terminate()
	if _, err := e.WaitCollected(0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Calls to the dead activity fail the future instead of hanging.
	h2 := n.NewActive("b", relay{})
	defer h2.Release()
	target := h.Ref()
	ctxHandle, err := n.HandleFor(target)
	if err != nil {
		t.Fatal(err)
	}
	defer ctxHandle.Release()
	_, err = ctxHandle.CallSync("ping", wire.Null(), 2*time.Second)
	if err == nil {
		t.Fatal("call to terminated activity must fail")
	}
}

func TestTerminateSelfViaStop(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("a", relay{})
	if _, err := h.CallSync("stop", wire.Null(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitCollected(0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	h.Release()
}

func TestFutureRefsCreateEdges(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	ha := n.NewActive("a", relay{})
	defer ha.Release()
	// Asking a for "self" hands the caller (the handle's dummy) a
	// reference, which must appear in the dummy's reference list.
	got, err := ha.CallSync("self", wire.Null(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.AsRef(); !ok {
		t.Fatalf("self = %v, want a ref", got)
	}
	refs := ha.dummy.Collector().Referenced()
	if len(refs) != 1 {
		t.Fatalf("dummy.Referenced() = %v, want [a]", refs)
	}
}

func TestChainedCallBetweenActivities(t *testing.T) {
	e := testEnv(t)
	n1, n2 := e.NewNode(), e.NewNode()
	ha := n1.NewActive("a", relay{})
	hb := n2.NewActive("b", relay{})
	defer ha.Release()
	defer hb.Release()
	if _, err := ha.CallSync("set:peer", hb.Ref(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := ha.CallSync("callpeer", wire.Null(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.AsInt() != 1 {
		t.Fatalf("callpeer = %v, want 1", got)
	}
}

func TestStateStoreLoadDelete(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("a", relay{})
	defer h.Release()
	if _, err := h.CallSync("set:k", wire.Int(42), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := h.CallSync("get:k", wire.Null(), 5*time.Second)
	if err != nil || got.AsInt() != 42 {
		t.Fatalf("get = %v, %v", got, err)
	}
	if _, err := h.CallSync("del:k", wire.Null(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	got, err = h.CallSync("get:k", wire.Null(), 5*time.Second)
	if err != nil || !got.IsNull() {
		t.Fatalf("get after del = %v, %v; want null", got, err)
	}
}

func TestDroppedStateEdgeRemovesReference(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	ha := n.NewActive("a", relay{})
	hb := n.NewActive("b", relay{})
	defer ha.Release()
	if _, err := ha.CallSync("set:peer", hb.Ref(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	aoA, _ := e.activity(mustRef(t, ha.Ref()))
	if len(aoA.Collector().Referenced()) != 1 {
		t.Fatal("edge a→b missing after store")
	}
	if _, err := ha.CallSync("del:peer", wire.Null(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// The next sweeps remove the stub tag and then the edge.
	waitUntil(t, func() bool {
		return len(aoA.Collector().Referenced()) == 0
	}, 5*time.Second)
	if got := aoA.Collector().Referenced(); len(got) != 0 {
		t.Fatalf("edge survived state deletion: %v", got)
	}
	// b is now garbage once its handle goes too (a stays pinned by ha).
	hb.Release()
	if _, err := e.WaitCollected(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDisableDGCNothingCollected(t *testing.T) {
	e := NewEnv(Config{
		TTB:        5 * time.Millisecond,
		TTA:        12 * time.Millisecond,
		DisableDGC: true,
	})
	defer e.Close()
	n := e.NewNode()
	h := n.NewActive("a", relay{})
	h.Release()
	// A control env with the collector ON and identical timings provides
	// the clock: once it reaps the same garbage shape, the disabled env
	// has outlived many TTAs with its leak intact.
	ctrl := NewEnv(Config{TTB: 5 * time.Millisecond, TTA: 12 * time.Millisecond})
	defer ctrl.Close()
	ch := ctrl.NewNode().NewActive("control", relay{})
	ch.Release()
	if _, err := ctrl.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if e.LiveActivities() != 1 {
		t.Fatalf("live = %d with DGC disabled, want 1 (leak is expected)", e.LiveActivities())
	}
	// Explicit termination still works.
	h2 := n.NewActive("b", relay{})
	h2.Terminate()
	if e.LiveActivities() != 1 {
		t.Fatalf("live = %d after explicit terminate, want 1", e.LiveActivities())
	}
}

func TestSpawnFromBehavior(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	parent := n.NewActive("parent", BehaviorFunc(func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
		switch method {
		case "spawn-and-keep":
			child := ctx.Spawn("child", relay{})
			ctx.Store("child", child)
			return child, nil
		case "spawn-and-drop":
			child := ctx.Spawn("orphan", relay{})
			return child, nil
		case "drop-child":
			ctx.Delete("child")
			return wire.Null(), nil
		}
		return wire.Null(), errors.New("unknown")
	}))
	defer parent.Release()

	// A stored child stays alive.
	childRef, err := parent.CallSync("spawn-and-keep", wire.Null(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := childRef.AsRef(); !ok {
		t.Fatalf("spawn returned %v", childRef)
	}
	dgcSettle(t, e, n)
	if e.LiveActivities() != 2 {
		t.Fatalf("live = %d, want parent+child", e.LiveActivities())
	}
	// Dropping the state edge makes the child garbage. (The future value
	// pin was already consumed by CallSync.)
	if _, err := parent.CallSync("drop-child", wire.Null(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitCollected(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// A dropped spawn is collected shortly after the service ends.
	fut, err := parent.Call("spawn-and-drop", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WaitCollected(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounts(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h1 := n.NewActive("a", relay{})
	h2 := n.NewActive("b", relay{})
	st := e.Stats()
	if st.Created != 2 || st.Live != 2 {
		t.Fatalf("stats = %+v, want created=2 live=2", st)
	}
	h1.Release()
	h2.Release()
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Live != 0 || st.Collected[core.ReasonAcyclic] != 2 {
		t.Fatalf("stats after collection = %+v", st)
	}
}

func TestFutureTimeoutAndDiscard(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("a", relay{})
	defer h.Release()
	fut, err := h.Call("sleep", wire.Int(200))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(10 * time.Millisecond); !errors.Is(err, ErrFutureTimeout) {
		t.Fatalf("err = %v, want ErrFutureTimeout", err)
	}
	// Waiting again with a longer budget succeeds.
	if _, err := fut.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	fut.Discard() // safe after consumption
	// TryGet on a resolved future.
	if _, _, ok := fut.TryGet(); !ok {
		t.Fatal("TryGet on resolved future = !ok")
	}
}

func TestEnvCloseIsIdempotentAndFailsFutures(t *testing.T) {
	e := NewEnv(Config{TTB: 10 * time.Millisecond, TTA: 25 * time.Millisecond})
	n := e.NewNode()
	started := make(chan struct{})
	h := n.NewActive("a", BehaviorFunc(func(ctx *Context, _ string, _ wire.Value) (wire.Value, error) {
		close(started)
		// Park until shutdown begins: the serve goroutine must still be
		// mid-request when Close runs, and Close must be able to finish.
		<-ctx.ao.node.stop
		return wire.Null(), nil
	}))
	fut, err := h.Call("park", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	<-started // the request is being served when the env closes
	e.Close()
	e.Close()
	if _, err := fut.Wait(time.Second); err == nil {
		t.Fatal("future must fail on env close")
	}
}

func mustRef(t *testing.T, v wire.Value) ids.ActivityID {
	t.Helper()
	id, ok := v.AsRef()
	if !ok {
		t.Fatalf("not a ref: %v", v)
	}
	return id
}
