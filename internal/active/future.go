package active

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/localgc"
	"repro/internal/wire"
)

// Future errors.
var (
	// ErrRemoteFailure wraps an error string returned by the callee's
	// behavior.
	ErrRemoteFailure = errors.New("active: remote behavior failed")
	// ErrFutureTimeout indicates Wait gave up.
	ErrFutureTimeout = errors.New("active: future wait timed out")
	// ErrOwnerTerminated indicates the calling activity was garbage
	// collected before the result arrived; per the paper's reference
	// orientation (§4.1), a collected caller simply loses the update.
	ErrOwnerTerminated = errors.New("active: future owner terminated")
)

// Future is the placeholder returned by an asynchronous call (§4.1). The
// caller blocks only when it touches the value ("wait-by-necessity"); an
// active object waiting on a future counts as busy, since waiting can only
// happen while serving a request.
type Future struct {
	id    FutureID
	owner ids.ActivityID
	node  *Node

	mu       sync.Mutex
	done     chan struct{}
	resolved bool
	val      wire.Value
	err      error
	// valueRoot pins refs inside the value in the owner's heap until the
	// value is consumed by Wait (or the owner dies).
	valueRoot   localgc.RootID
	hasValRoot  bool
	rootDropped bool
	// discarded marks a Discard that happened before resolution: the pin
	// must then be dropped the moment resolve installs it.
	discarded bool
}

func newFuture(node *Node, id FutureID, owner ids.ActivityID) *Future {
	return &Future{id: id, owner: owner, node: node, done: make(chan struct{})}
}

// ID returns the future's identity (mostly for tests and tracing).
func (f *Future) ID() FutureID { return f.id }

func (f *Future) resolve(val wire.Value, root localgc.RootID, hasRoot bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.resolved {
		if hasRoot {
			// A double resolution must never leak the freshly installed
			// pin (defensive: take() makes resolution exclusive today).
			f.node.heap.RemoveRoot(root)
		}
		return
	}
	f.resolved = true
	f.val = val
	f.err = err
	f.valueRoot = root
	f.hasValRoot = hasRoot
	if f.discarded && hasRoot {
		f.node.heap.RemoveRoot(root)
		f.rootDropped = true
	}
	close(f.done)
}

// fail resolves the future with an error (owner terminated, shutdown).
func (f *Future) fail(err error) {
	f.resolve(wire.Null(), 0, false, err)
}

// Done returns a channel closed when the future is resolved.
func (f *Future) Done() <-chan struct{} { return f.done }

// TryGet returns the value if the future is already resolved.
func (f *Future) TryGet() (wire.Value, error, bool) {
	select {
	case <-f.done:
		v, err := f.consume()
		return v, err, true
	default:
		return wire.Null(), nil, false
	}
}

// Wait blocks until the future resolves or timeout elapses (0 means wait
// forever). Consuming the value releases the heap pin that was keeping the
// value's references alive on behalf of this future.
func (f *Future) Wait(timeout time.Duration) (wire.Value, error) {
	if timeout <= 0 {
		<-f.done
		return f.consume()
	}
	select {
	case <-f.done:
		return f.consume()
	case <-f.node.env.cfg.Clock.After(timeout):
		return wire.Null(), fmt.Errorf("%w after %v", ErrFutureTimeout, timeout)
	}
}

func (f *Future) consume() (wire.Value, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hasValRoot && !f.rootDropped {
		f.node.heap.RemoveRoot(f.valueRoot)
		f.rootDropped = true
	}
	return f.val, f.err
}

// Discard releases the future's heap pin without reading the value. Safe
// to call at any time, any number of times — discarding an unresolved
// future drops the pin as soon as the result arrives, so an abandoned
// call can never pin its value's references for the owner's lifetime.
func (f *Future) Discard() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.discarded = true
	if f.resolved && f.hasValRoot && !f.rootDropped {
		f.node.heap.RemoveRoot(f.valueRoot)
		f.rootDropped = true
	}
}

// futureTable tracks the pending futures of one node.
type futureTable struct {
	mu      sync.Mutex
	nextSeq uint32
	pending map[uint32]*Future
}

func newFutureTable() *futureTable {
	return &futureTable{pending: make(map[uint32]*Future)}
}

func (t *futureTable) create(node *Node, owner ids.ActivityID) *Future {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextSeq++
	f := newFuture(node, FutureID{Node: node.id, Seq: t.nextSeq}, owner)
	t.pending[t.nextSeq] = f
	return f
}

func (t *futureTable) take(seq uint32) (*Future, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.pending[seq]
	if ok {
		delete(t.pending, seq)
	}
	return f, ok
}

// failOwned resolves with err every pending future owned by owner
// (called when an activity terminates).
func (t *futureTable) failOwned(owner ids.ActivityID, err error) {
	t.mu.Lock()
	var owned []*Future
	for seq, f := range t.pending {
		if f.owner == owner {
			owned = append(owned, f)
			delete(t.pending, seq)
		}
	}
	t.mu.Unlock()
	for _, f := range owned {
		f.fail(err)
	}
}

// failAll resolves every pending future with err (node shutdown).
func (t *futureTable) failAll(err error) {
	t.mu.Lock()
	all := make([]*Future, 0, len(t.pending))
	for seq, f := range t.pending {
		all = append(all, f)
		delete(t.pending, seq)
	}
	t.mu.Unlock()
	for _, f := range all {
		f.fail(err)
	}
}
