package active

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/localgc"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Future errors.
var (
	// ErrRemoteFailure wraps an error string returned by the callee's
	// behavior.
	ErrRemoteFailure = errors.New("active: remote behavior failed")
	// ErrFutureTimeout indicates Wait gave up.
	ErrFutureTimeout = errors.New("active: future wait timed out")
	// ErrOwnerTerminated indicates the calling activity was garbage
	// collected before the result arrived; per the paper's reference
	// orientation (§4.1), a collected caller simply loses the update.
	ErrOwnerTerminated = errors.New("active: future owner terminated")
	// ErrFutureUnavailable indicates a first-class future whose value can
	// no longer be obtained: its home entry was reclaimed after resolution
	// and propagation, so a late forward (or a hand-crafted reference) has
	// nothing left to subscribe to.
	ErrFutureUnavailable = errors.New("active: future no longer available")
	// ErrNotAFuture indicates a value that should have been a future
	// reference was not.
	ErrNotAFuture = errors.New("active: value is not a future")
)

// Future is the placeholder returned by an asynchronous call (§4.1). The
// caller blocks only when it touches the value ("wait-by-necessity"); an
// active object waiting on a future counts as busy, since waiting can only
// happen while serving a request.
//
// Futures are first-class (paper §5–§6): a Future can be passed inside
// call arguments, returned as a result, or scattered over a group before
// it is resolved — it marshals to a wire future value (wire.FutureRef).
// Every node a future is forwarded to becomes a *holder*: the sender
// registers the destination, and when the result (or the remote failure)
// arrives, it is propagated along the forwarding chain to every holder.
// Wait-by-necessity then happens only at the activity that finally
// touches the value; intermediaries never block.
type Future struct {
	id    FutureID
	owner ids.ActivityID
	node  *Node
	// proxy marks an entry adopted for a future whose home is another
	// node: it resolves when an update propagates here from upstream.
	proxy bool
	// shared marks a future that has been forwarded (marshaled into an
	// outgoing payload) or adopted from one: its table entry is retained
	// after resolution for late holder registrations, until the sweep
	// reclaims it.
	shared atomic.Bool
	// awaitNode records the node serving the request this future is the
	// placeholder of (0 when local or unknown), so a confirmed node death
	// can fail the future instead of letting wait-by-necessity hang. Only
	// maintained when the cluster runtime is enabled.
	awaitNode atomic.Uint32
	// emigrated marks a home entry whose owner activity migrated away
	// (WIRE.md §7): the entry stays — its identity names this node, so
	// updates and subscriptions keep landing here — but it behaves like a
	// proxy for consumption (no local owner to bind values to) and the
	// forwarder's eventual destruction must not fail it: the real owner is
	// alive elsewhere and re-subscribed through the destination's state.
	emigrated atomic.Bool

	mu       sync.Mutex
	done     chan struct{}
	resolved bool
	val      wire.Value
	err      error
	// valueRoots pin refs inside the value in the holder's heap — one pin
	// per consuming activity, so every AddReferenced edge the value
	// created has a matching tag whose death can remove it — until the
	// value is consumed by Wait (or the owner dies).
	valueRoots  []localgc.RootID
	rootDropped bool
	// discarded marks a Discard that happened before resolution: the pin
	// must then be dropped the moment resolve installs it.
	discarded bool
	// chainWait marks a future that resolved to *another* future (the
	// callee returned a forwarded result): it stays unresolved for local
	// waiters and re-resolves with the inner future's concrete value
	// (automatic first-class flattening).
	chainWait bool
	// tagFreeAt records when the sweep first found this resolved entry
	// without a heap future tag; reclamation waits out a TTA-sized grace
	// from that point (see sweepable).
	tagFreeAt time.Time
	// holders are the downstream nodes this future was forwarded to while
	// unresolved; resolution fans the value out to them.
	holders []ids.NodeID
	// chained are local futures awaiting this future's concrete value
	// (the flattening back-edges).
	chained []*Future
	// localHolders are activities on this node that received the future
	// inside a payload; the arriving value's references are bound to them.
	localHolders []ids.ActivityID
}

func newFuture(node *Node, id FutureID, owner ids.ActivityID) *Future {
	return &Future{id: id, owner: owner, node: node, done: make(chan struct{})}
}

// failedFuture returns an already-failed future outside any table.
func failedFuture(node *Node, id FutureID, owner ids.ActivityID, err error) *Future {
	f := newFuture(node, id, owner)
	f.fail(err)
	return f
}

// ID returns the future's identity (mostly for tests and tracing).
func (f *Future) ID() FutureID { return f.id }

// WireFutureRef implements wire.FutureSource: a Future marshals into call
// arguments and results as a first-class wire future value. Marshaling
// marks the future shared and reinstates its table entry if the fast
// path (or a sweep) already removed it: as long as application code
// holds the live *Future, forwarding it must keep working — the send
// walk will find the entry and ship the already-resolved value.
func (f *Future) WireFutureRef() (wire.FutureRef, bool) {
	if f == nil || f.id.IsZero() {
		return wire.FutureRef{}, false
	}
	f.shared.Store(true)
	f.node.futures.reinstate(f)
	return wire.FutureRef{ID: f.id, Owner: f.owner}, true
}

var _ wire.FutureSource = (*Future)(nil)

// resolve installs the result. A concrete value (or failure) wakes local
// waiters, fans out to every registered holder node and cascades through
// chained futures; a top-level future value chains instead: the future
// stays unresolved for local waiters and re-resolves with the inner
// future's concrete value (first-class flattening), while remote holders
// receive the future value immediately and flatten on their own nodes.
func (f *Future) resolve(val wire.Value, roots []localgc.RootID, err error) {
	f.mu.Lock()
	if f.resolved || f.chainWait {
		// A double resolution must never leak the freshly installed pins.
		for _, root := range roots {
			f.node.heap.RemoveRoot(root)
		}
		f.mu.Unlock()
		return
	}
	if err == nil {
		if fr, ok := val.AsFutureRef(); ok {
			if fr.ID == f.id {
				err = fmt.Errorf("%w: future resolved with itself", ErrRemoteFailure)
				val = wire.Null()
			} else {
				f.chainWait = true
				holders := f.holders
				f.holders = nil
				f.mu.Unlock()
				// The chain keeps the inner future alive through its
				// table entry; the interim pins are not needed (their
				// tags still record the edges until the next sweep).
				for _, root := range roots {
					f.node.heap.RemoveRoot(root)
				}
				// Adopt the inner future BEFORE fanning the future value
				// out: the fan-out's send walk must find the entry to
				// register the downstream holders on it.
				inner, _ := f.node.futures.adopt(f.node, fr)
				// Downstream holders flatten on their own nodes; forward
				// the future value to them right away.
				f.node.fanOutFutureValue(f.id, val, false, "", holders)
				inner.addChained(f)
				return
			}
		}
	}
	f.resolved = true
	f.val = val
	f.err = err
	f.valueRoots = roots
	if f.discarded {
		for _, root := range roots {
			f.node.heap.RemoveRoot(root)
		}
		f.rootDropped = true
	}
	holders := f.holders
	f.holders = nil
	chained := f.chained
	f.chained = nil
	close(f.done)
	f.mu.Unlock()

	failed, errStr := false, ""
	if err != nil {
		failed, errStr = true, err.Error()
	}
	f.node.fanOutFutureValue(f.id, val, failed, errStr, holders)
	for _, c := range chained {
		f.node.resolveChainedFuture(c, val, err)
	}
}

// resolveFromChain delivers the concrete value of the inner future a
// chainWait future was flattened onto. Clearing chainWait first lets the
// normal resolve path run (and chain again if the value is yet another
// future).
func (f *Future) resolveFromChain(val wire.Value, roots []localgc.RootID, err error) {
	f.mu.Lock()
	f.chainWait = false
	f.mu.Unlock()
	f.resolve(val, roots, err)
}

// fail resolves the future with an error (owner terminated, shutdown).
func (f *Future) fail(err error) {
	f.resolve(wire.Null(), nil, err)
}

// addHolder registers dst as a holder: a node the future has been
// forwarded to, owed the resolution. A future that already resolved ships
// its value (or failure) to dst immediately.
func (f *Future) addHolder(dst ids.NodeID) {
	f.shared.Store(true)
	f.mu.Lock()
	if f.resolved {
		val, err := f.val, f.err
		f.mu.Unlock()
		failed, errStr := false, ""
		if err != nil {
			failed, errStr = true, err.Error()
		}
		f.node.fanOutFutureValue(f.id, val, failed, errStr, []ids.NodeID{dst})
		return
	}
	for _, h := range f.holders {
		if h == dst {
			f.mu.Unlock()
			return
		}
	}
	f.holders = append(f.holders, dst)
	f.mu.Unlock()
}

// removeHolder forgets a downstream holder (its node died): resolution
// stops trying to ship the value there.
func (f *Future) removeHolder(p ids.NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, h := range f.holders {
		if h == p {
			f.holders = append(f.holders[:i], f.holders[i+1:]...)
			break
		}
	}
}

// addChained registers c to re-resolve with this future's concrete value
// (the local leg of first-class flattening).
func (f *Future) addChained(c *Future) {
	f.mu.Lock()
	if f.resolved {
		val, err := f.val, f.err
		f.mu.Unlock()
		f.node.resolveChainedFuture(c, val, err)
		return
	}
	f.chained = append(f.chained, c)
	f.mu.Unlock()
}

// addLocalHolder records a local activity that received this future in a
// payload; the resolution's references are bound to it (§2.2).
func (f *Future) addLocalHolder(a ids.ActivityID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, h := range f.localHolders {
		if h == a {
			return
		}
	}
	f.localHolders = append(f.localHolders, a)
}

// localHolderSnapshot returns the recorded local holders.
func (f *Future) localHolderSnapshot() []ids.ActivityID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ids.ActivityID, len(f.localHolders))
	copy(out, f.localHolders)
	return out
}

// Done returns a channel closed when the future is resolved.
func (f *Future) Done() <-chan struct{} { return f.done }

// TryGet returns the value if the future is already resolved (an
// immediate poll; it never blocks).
func (f *Future) TryGet() (wire.Value, error, bool) {
	select {
	case <-f.done:
		v, err := f.consume()
		return v, err, true
	default:
		return wire.Null(), nil, false
	}
}

// Wait blocks until the future resolves or timeout elapses. A zero (or
// negative) timeout means wait forever — this is wait-by-necessity, not a
// poll; use TryGet for a non-blocking probe. A future that resolved to
// another future keeps waiting for the concrete value (first-class
// flattening), so Wait never returns a bare future reference. Consuming
// the value releases the heap pin that was keeping the value's references
// alive on behalf of this future.
func (f *Future) Wait(timeout time.Duration) (wire.Value, error) {
	// Already resolved: skip the timeout machinery entirely.
	select {
	case <-f.done:
		return f.consume()
	default:
	}
	if timeout <= 0 {
		<-f.done
		return f.consume()
	}
	if _, real := f.node.env.cfg.Clock.(vclock.Real); real {
		// Wall clock: a pooled timer instead of a fresh runtime timer per
		// wait (Clock.After cannot be reclaimed before it fires; a 30s
		// default budget would pin one timer per call for 30 seconds).
		// Reset/Stop recycling is sound with Go 1.23+ timer channels: no
		// stale tick can linger in t.C after Stop.
		t := realTimers.Get().(*time.Timer)
		t.Reset(timeout)
		select {
		case <-f.done:
			t.Stop()
			realTimers.Put(t)
			return f.consume()
		case <-t.C:
			realTimers.Put(t)
			return wire.Null(), fmt.Errorf("%w after %v", ErrFutureTimeout, timeout)
		}
	}
	select {
	case <-f.done:
		return f.consume()
	case <-f.node.env.cfg.Clock.After(timeout):
		return wire.Null(), fmt.Errorf("%w after %v", ErrFutureTimeout, timeout)
	}
}

// realTimers pools the wall-clock timers of Wait's timeout path.
var realTimers = sync.Pool{New: func() any { return time.NewTimer(time.Hour) }}

func (f *Future) consume() (wire.Value, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.rootDropped {
		for _, root := range f.valueRoots {
			f.node.heap.RemoveRoot(root)
		}
		f.rootDropped = true
	}
	return f.val, f.err
}

// Discard releases the future's heap pin without reading the value. Safe
// to call at any time, any number of times — discarding an unresolved
// future drops the pin as soon as the result arrives, so an abandoned
// call can never pin its value's references for the owner's lifetime.
func (f *Future) Discard() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.discarded = true
	if f.resolved && !f.rootDropped {
		for _, root := range f.valueRoots {
			f.node.heap.RemoveRoot(root)
		}
		f.rootDropped = true
	}
}

// sweepable reports whether the table entry can be reclaimed: the future
// is concretely resolved (holders were fanned out at resolution), no
// heap cell on this node names it anymore, and a TTA-sized grace has
// passed since the last pin died — the same slack the reference-listing
// DGC grants in-flight references, here granting application code that
// just unmarshaled a FutureRef out of a pinned payload time to lift or
// forward it. A Go-side *Future pointer may outlive the entry —
// Wait/TryGet work on the object itself, and a late forward reinstates
// the entry (WireFutureRef); a late lift by reference re-subscribes at
// the home node (futureFor). Unresolved entries are never swept: they
// are owed an update or a chain resolution.
func (f *Future) sweepable(heap *localgc.Heap, now time.Time, grace time.Duration) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.resolved {
		return false
	}
	if heap.HasFutureTag(f.id) {
		f.tagFreeAt = time.Time{}
		return false
	}
	if f.tagFreeAt.IsZero() {
		f.tagFreeAt = now
		return false
	}
	return now.Sub(f.tagFreeAt) >= grace
}

// futureTable tracks the futures known to one node: the pending futures
// of local calls (home entries) and the proxies adopted for futures that
// were forwarded here. Entries are keyed by full FutureID because a
// first-class future travels across nodes under its home identity.
//
// The table is sharded 32 ways (the same shape as simnet's routing
// shards): every per-entry operation — create, adopt, lookup, the
// takeForUpdate on the reply path — locks only the shard its identity
// hashes to, so concurrent calls through one hot node stop serializing
// on a single table mutex. Whole-table operations (sweep, shutdown
// failure fan-outs) walk the shards one at a time.
type futureTable struct {
	nextSeq atomic.Uint32
	shards  [futureShards]futureShard
}

type futureShard struct {
	mu      sync.Mutex
	pending map[ids.FutureID]*Future
}

// futureShards is a power of two so the shard pick is a mask. Locally
// created futures carry consecutive sequence numbers and round-robin
// across all shards.
const futureShards = 32

func newFutureTable() *futureTable {
	t := &futureTable{}
	for i := range t.shards {
		t.shards[i].pending = make(map[ids.FutureID]*Future)
	}
	return t
}

func (t *futureTable) shard(fid ids.FutureID) *futureShard {
	return &t.shards[(fid.Seq+uint32(fid.Node))%futureShards]
}

func (t *futureTable) create(node *Node, owner ids.ActivityID) *Future {
	f := newFuture(node, FutureID{Node: node.id, Seq: t.nextSeq.Add(1)}, owner)
	s := t.shard(f.id)
	s.mu.Lock()
	s.pending[f.id] = f
	s.mu.Unlock()
	return f
}

// adopt returns the entry for a future reference decoded from a payload,
// creating a proxy if the future is not known here (created reports
// that case — a fresh proxy with no upstream registration yet). A
// home-node miss means the entry was already reclaimed (resolved,
// propagated and swept): the returned entry is pre-failed with
// ErrFutureUnavailable rather than left to wait for an update that will
// never come.
func (t *futureTable) adopt(node *Node, fr wire.FutureRef) (f *Future, created bool) {
	s := t.shard(fr.ID)
	s.mu.Lock()
	if f, ok := s.pending[fr.ID]; ok {
		s.mu.Unlock()
		f.shared.Store(true)
		return f, false
	}
	f = newFuture(node, fr.ID, fr.Owner)
	f.proxy = fr.ID.Node != node.id
	f.shared.Store(true)
	s.pending[fr.ID] = f
	s.mu.Unlock()
	if !f.proxy {
		f.fail(ErrFutureUnavailable)
	}
	return f, true
}

// reinstate puts a live entry back into the table (no-op when an entry
// for its identity is already present). WireFutureRef calls it so a
// future whose entry was removed — fast-path take or sweep — becomes
// forwardable again for as long as application code holds the handle.
func (t *futureTable) reinstate(f *Future) {
	s := t.shard(f.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pending[f.id]; !ok {
		s.pending[f.id] = f
	}
}

// lookup returns the live entry for fid.
func (t *futureTable) lookup(fid ids.FutureID) (*Future, bool) {
	s := t.shard(fid)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.pending[fid]
	return f, ok
}

// takeForUpdate returns the entry an arriving resolution targets. A
// never-shared home entry is removed right away (the pre-first-class
// lifecycle: exactly one update can arrive and nobody else can name the
// future), keeping the table — and the GC's live-object load — at the
// pre-§6 size on future-free workloads. Shared entries stay for the
// sweep, which also owns the marshal-vs-delivery race: marking shared
// happens before the send-side walk looks the entry up, so an entry
// removed here was provably never forwarded.
func (t *futureTable) takeForUpdate(fid ids.FutureID) (*Future, bool) {
	s := t.shard(fid)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.pending[fid]
	if ok && !f.proxy && !f.shared.Load() {
		delete(s.pending, fid)
	}
	return f, ok
}

// remove drops an entry (an unwound call whose request was never sent).
func (t *futureTable) remove(fid ids.FutureID) {
	s := t.shard(fid)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.pending, fid)
}

// sweep reclaims entries whose lifecycle is over (see Future.sweepable).
// The driver runs it right after each local heap collection, so the
// future-tag liveness it consults is fresh. Shards are swept one at a
// time: the hot paths never see more than one shard held.
func (t *futureTable) sweep(heap *localgc.Heap, now time.Time, grace time.Duration) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for fid, f := range s.pending {
			if f.sweepable(heap, now, grace) {
				delete(s.pending, fid)
			}
		}
		s.mu.Unlock()
	}
}

// size returns the number of live entries (tests and metrics).
func (t *futureTable) size() int {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		total += len(s.pending)
		s.mu.Unlock()
	}
	return total
}

// failOwned resolves with err every pending future owned by owner
// (called when an activity terminates). The failure propagates to every
// holder the future was forwarded to.
func (t *futureTable) failOwned(owner ids.ActivityID, err error) {
	var owned []*Future
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for fid, f := range s.pending {
			if f.owner == owner && !f.proxy && !f.emigrated.Load() {
				owned = append(owned, f)
				delete(s.pending, fid)
			}
		}
		s.mu.Unlock()
	}
	for _, f := range owned {
		f.fail(err)
	}
}

// noteAwait records dst as the node fid's result is awaited from (see
// Future.awaitNode); a no-op for identities without a live entry.
func (t *futureTable) noteAwait(fid ids.FutureID, dst ids.NodeID) {
	s := t.shard(fid)
	s.mu.Lock()
	f, ok := s.pending[fid]
	s.mu.Unlock()
	if ok {
		f.awaitNode.Store(uint32(dst))
	}
}

// failNodeDead runs the future-table leg of a confirmed node death:
// every entry owed its resolution by the dead node — homed there (the
// proxies adopted for its futures) or awaiting a request it was serving —
// fails with err, which fans out to the surviving registered holders;
// and the dead node is purged from the holder lists of everything else,
// so later resolutions stop trying to reach it.
func (t *futureTable) failNodeDead(p ids.NodeID, err error) {
	var doomed, rest []*Future
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for fid, f := range s.pending {
			if fid.Node == p || ids.NodeID(f.awaitNode.Load()) == p {
				doomed = append(doomed, f)
				delete(s.pending, fid)
				continue
			}
			rest = append(rest, f)
		}
		s.mu.Unlock()
	}
	for _, f := range rest {
		f.removeHolder(p)
	}
	for _, f := range doomed {
		f.fail(err)
	}
}

// failAll resolves every pending future with err (node shutdown).
func (t *futureTable) failAll(err error) {
	var all []*Future
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for fid, f := range s.pending {
			all = append(all, f)
			delete(s.pending, fid)
		}
		s.mu.Unlock()
	}
	for _, f := range all {
		f.fail(err)
	}
}
