package active

import (
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/localgc"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Node is one process (address space) of the distributed system: it hosts
// activities, a local heap with its tracing collector, a future table, and
// the DGC driver goroutine.
type Node struct {
	env      *Env
	id       ids.NodeID
	gen      *ids.Generator
	heap     *localgc.Heap
	endpoint transport.Endpoint
	// flusher is the per-destination batching engine in front of the
	// endpoint; nil unless Config.BatchWindow enables batching.
	flusher *transport.Flusher
	futures *futureTable

	mu     sync.Mutex
	aos    map[ids.ActivityID]*ActiveObject
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ transport.Handler = (*Node)(nil)

func newNode(e *Env, id ids.NodeID) *Node {
	n := &Node{
		env:     e,
		id:      id,
		gen:     ids.NewGenerator(id),
		futures: newFutureTable(),
		aos:     make(map[ids.ActivityID]*ActiveObject),
		stop:    make(chan struct{}),
	}
	n.heap = localgc.New(n.onTagDeath)
	n.endpoint = e.net.Register(id, n)
	if e.cfg.BatchWindow > 0 {
		n.flusher = transport.NewFlusher(n.endpoint, transport.FlusherConfig{
			Window:   e.cfg.BatchWindow,
			MaxBytes: e.cfg.BatchBytes,
			Clock:    e.cfg.Clock,
		})
	}
	return n
}

// transportSend ships one one-way payload, through the batching flusher
// when enabled. Urgent traffic (requests awaiting a reply, future
// updates) is flushed as soon as the pair's writer is free; non-urgent
// traffic may linger up to the batch window for companions.
func (n *Node) transportSend(dst ids.NodeID, class transport.Class, payload []byte, urgent bool) error {
	if n.flusher != nil {
		return n.flusher.Send(dst, class, payload, urgent)
	}
	return n.endpoint.Send(dst, class, payload)
}

// transportCall performs a request/response exchange, draining the
// destination's batch lane first so the exchange cannot overtake queued
// one-way traffic (§3.2 FIFO).
func (n *Node) transportCall(dst ids.NodeID, class transport.Class, payload []byte) ([]byte, error) {
	if n.flusher != nil {
		return n.flusher.Call(dst, class, payload)
	}
	return n.endpoint.Call(dst, class, payload)
}

// flushOutbound flushes and stops the node's batch lanes (no-op when
// batching is off, idempotent otherwise).
func (n *Node) flushOutbound() {
	if n.flusher != nil {
		n.flusher.Close()
	}
}

// ID returns the node identifier.
func (n *Node) ID() ids.NodeID { return n.id }

// Heap exposes the node's local heap (used by tests and metrics).
func (n *Node) Heap() *localgc.Heap { return n.heap }

func (n *Node) start() {
	n.wg.Add(1)
	go n.runDriver()
}

// activity returns the live activity with the given ID on this node.
func (n *Node) activity(id ids.ActivityID) (*ActiveObject, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ao, ok := n.aos[id]
	return ao, ok
}

// liveCount counts live non-dummy activities.
func (n *Node) liveCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	var c int
	for _, ao := range n.aos {
		if !ao.dummy {
			c++
		}
	}
	return c
}

// snapshotActivities returns all live activities (dummies included: they
// participate in the DGC as referencers).
func (n *Node) snapshotActivities() []*ActiveObject {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*ActiveObject, 0, len(n.aos))
	for _, ao := range n.aos {
		out = append(out, ao)
	}
	return out
}

// onTagDeath is the localgc callback: activity owner no longer holds any
// stub for target — remove the reference-graph edge (§2.2). A guard
// against the re-intern race: if a fresh tag exists again, the edge was
// re-created concurrently and must stay.
func (n *Node) onTagDeath(d localgc.TagDeath) {
	if n.heap.HasTag(d.Owner, d.Target) {
		return
	}
	if ao, ok := n.activity(d.Owner); ok {
		ao.collector.LostReferenced(d.Target, n.env.cfg.Clock.Now())
	}
}

// HandleOneWay implements transport.Handler: application requests and future
// updates.
func (n *Node) HandleOneWay(from ids.NodeID, class transport.Class, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case envRequest:
		n.deliverRequest(payload)
	case envFutureUpdate:
		n.deliverFutureUpdate(payload)
	default:
		// Malformed traffic is dropped, as a real transport would.
	}
}

// HandleCall implements transport.Handler: DGC message → DGC response
// exchanges, single or batched (one exchange per destination node and
// beat when batching is on). An empty response means the target activity
// is gone; the sender's driver ignores it (the paper omits error
// handling; silence is indistinguishable from a slow beat and is handled
// by the TTA machinery).
func (n *Node) HandleCall(from ids.NodeID, class transport.Class, payload []byte) []byte {
	if isDGCBatch(payload) {
		entries, err := decodeDGCBatchPayload(payload)
		if err != nil {
			return nil
		}
		now := n.env.cfg.Clock.Now()
		resps := make([]*core.Response, len(entries))
		for i, e := range entries {
			if ao, ok := n.activity(e.Target); ok {
				r := ao.collector.HandleMessage(e.Msg, now)
				resps[i] = &r
			}
		}
		return encodeDGCBatchResponse(resps)
	}
	target, msg, err := decodeDGCPayload(payload)
	if err != nil {
		return nil
	}
	ao, ok := n.activity(target)
	if !ok {
		return nil
	}
	resp := ao.collector.HandleMessage(msg, n.env.cfg.Clock.Now())
	return core.EncodeResponse(resp)
}

// deliverRequest decodes an application request, binds the reference-graph
// hook to the recipient, roots the arguments for the duration of the
// service, and enqueues the request.
func (n *Node) deliverRequest(payload []byte) {
	req, rawArgs, err := decodeRequestHeader(payload)
	if err != nil {
		return
	}
	ao, ok := n.activity(req.Target)
	if !ok {
		// The callee is gone (collected or explicitly terminated). If the
		// caller expects a result, fail its future so it does not block
		// forever.
		if !req.Future.IsZero() {
			n.sendFutureUpdate(req.Future, futureUpdate{
				Future: req.Future,
				Failed: true,
				Err:    ErrUnknownActivity.Error(),
			})
		}
		return
	}
	now := n.env.cfg.Clock.Now()
	refs := 0
	dec := wire.Decoder{OnRef: func(t ids.ActivityID) {
		refs++
		ao.collector.AddReferenced(t, now)
	}}
	args, err := dec.Decode(rawArgs)
	if err != nil {
		return
	}
	req.Args = args
	item := &queuedRequest{req: req}
	if refs > 0 {
		// Root the arguments in the recipient's heap for the lifetime of
		// the request: stubs inside them keep the remote references alive
		// until the service completes (then only state-stored stubs
		// survive). Ref-free arguments pin nothing the DGC cares about, so
		// they skip the heap entirely — the calling hot path allocates no
		// cells.
		_, item.argsRoot = n.heap.InternRooted(ao.id, args)
	}
	ao.enqueue(item)
}

// deliverLocalRequest is the intra-node calling fast path: when caller
// and callee live on the same node, the request skips the envelope codec
// and the transport handler — a DeepCopy preserves the no-sharing
// property (§2.1) and an explicit Refs walk feeds the reference-graph
// hook exactly as deserialization would (§2.2). Wire traffic, accounting
// and DGC edges are identical to the seed's encode→decode round-trip;
// only the serialization work disappears.
func (n *Node) deliverLocalRequest(req request) {
	ao, ok := n.activity(req.Target)
	if !ok {
		if !req.Future.IsZero() {
			n.sendFutureUpdate(req.Future, futureUpdate{
				Future: req.Future,
				Failed: true,
				Err:    ErrUnknownActivity.Error(),
			})
		}
		return
	}
	args := wire.DeepCopy(req.Args)
	req.Args = args
	item := &queuedRequest{req: req}
	var scratch [8]ids.ActivityID
	if refs := args.Refs(scratch[:0]); len(refs) > 0 {
		now := n.env.cfg.Clock.Now()
		for _, t := range refs {
			ao.collector.AddReferenced(t, now)
		}
		_, item.argsRoot = n.heap.InternRooted(ao.id, args)
	}
	ao.enqueue(item)
}

// deliverFutureUpdate resolves a pending future with the callee's result.
func (n *Node) deliverFutureUpdate(payload []byte) {
	u, rawValue, err := decodeFutureUpdateHeader(payload)
	if err != nil {
		return
	}
	fut, ok := n.futures.take(u.Future.Seq)
	if !ok {
		return // caller terminated or duplicate update
	}
	owner, ownerAlive := n.activity(fut.owner)
	if !ownerAlive {
		fut.fail(ErrOwnerTerminated)
		return
	}
	now := n.env.cfg.Clock.Now()
	refs := 0
	dec := wire.Decoder{OnRef: func(t ids.ActivityID) {
		refs++
		owner.collector.AddReferenced(t, now)
	}}
	value, err := dec.Decode(rawValue)
	if err != nil {
		fut.fail(err)
		return
	}
	if u.Failed {
		fut.fail(newRemoteFailure(u.Err))
		return
	}
	if refs == 0 {
		fut.resolve(value, 0, false, nil)
		return
	}
	_, root := n.heap.InternRooted(owner.id, value)
	fut.resolve(value, root, true, nil)
}

// deliverLocalFutureUpdate resolves a same-node future without the
// envelope codec (the DeepCopy/Refs-walk twin of deliverLocalRequest).
func (n *Node) deliverLocalFutureUpdate(u futureUpdate) {
	fut, ok := n.futures.take(u.Future.Seq)
	if !ok {
		return
	}
	owner, ownerAlive := n.activity(fut.owner)
	if !ownerAlive {
		fut.fail(ErrOwnerTerminated)
		return
	}
	if u.Failed {
		fut.fail(newRemoteFailure(u.Err))
		return
	}
	value := wire.DeepCopy(u.Value)
	var scratch [8]ids.ActivityID
	refs := value.Refs(scratch[:0])
	if len(refs) == 0 {
		fut.resolve(value, 0, false, nil)
		return
	}
	now := n.env.cfg.Clock.Now()
	for _, t := range refs {
		owner.collector.AddReferenced(t, now)
	}
	_, root := n.heap.InternRooted(owner.id, value)
	fut.resolve(value, root, true, nil)
}

// sendFutureUpdate ships a result back to the caller's node.
func (n *Node) sendFutureUpdate(to FutureID, u futureUpdate) {
	if to.Node == n.id {
		n.deliverLocalFutureUpdate(u)
		return
	}
	payload := encodeFutureUpdate(u)
	// Errors (unreachable, closed) drop the update: per §4.1, a missing
	// future update cannot wake anything and is acceptable for garbage.
	// Updates are urgent: the caller is (or will be) blocked on them.
	_ = n.transportSend(to.Node, transport.ClassFuture, payload, true)
}

// sendRequest ships an application request to the target's node (or
// delivers it directly when the target is local). Requests that expect a
// reply are urgent; plain one-way sends may linger in the batch window.
func (n *Node) sendRequest(req request) error {
	if req.Target.Node == n.id {
		n.deliverLocalRequest(req)
		return nil
	}
	return n.transportSend(req.Target.Node, transport.ClassApp, encodeRequest(req), !req.Future.IsZero())
}

// destroy removes an activity: stops its service loop, drains its request
// queue (failing the futures of requests that will never be served),
// releases its heap roots, fails futures it owns, and records the
// collection.
func (n *Node) destroy(ao *ActiveObject, reason core.Reason) {
	n.mu.Lock()
	if _, ok := n.aos[ao.id]; !ok {
		n.mu.Unlock()
		return
	}
	delete(n.aos, ao.id)
	n.mu.Unlock()

	ao.terminated.Store(true)
	ao.collector.Terminate(n.env.cfg.Clock.Now())
	for _, it := range ao.queue.close(n.heap) {
		// A queued request whose callee terminates gracefully fails its
		// caller's future now instead of leaving it to time out — the same
		// answer an enqueue after close gets.
		if !it.req.Future.IsZero() {
			n.sendFutureUpdate(it.req.Future, futureUpdate{
				Future: it.req.Future,
				Failed: true,
				Err:    ErrUnknownActivity.Error(),
			})
		}
	}
	ao.releaseAllRoots(n.heap)
	n.futures.failOwned(ao.id, ErrOwnerTerminated)
	if !ao.dummy {
		n.env.noteCollected(reason)
	}
}

// Crash simulates the machine failing: the node vanishes from the
// network without any cleanup protocol. Per §4.2 the DGC cannot
// distinguish this from slowness — peers referencing the crashed
// activities keep heartbeating into the void, while activities that were
// referenced only from the crashed node stop hearing beats and collect
// themselves acyclically after TTA. Pending calls toward the node fail
// or time out.
func (n *Node) Crash() {
	n.env.mu.Lock()
	delete(n.env.nodes, n.id)
	n.env.mu.Unlock()
	n.env.net.Deregister(n.id)
	n.shutdown()
}

// shutdown stops the node: driver, service loops, futures.
func (n *Node) shutdown() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	aos := make([]*ActiveObject, 0, len(n.aos))
	for _, ao := range n.aos {
		aos = append(aos, ao)
	}
	n.aos = make(map[ids.ActivityID]*ActiveObject)
	n.mu.Unlock()

	close(n.stop)
	for _, ao := range aos {
		ao.terminated.Store(true)
		// Shutdown (and crash) stays silent toward remote callers: their
		// queued requests are dropped with their pins released, exactly as
		// a vanished machine would drop them (§4.2); local callers' futures
		// fail below via failAll.
		ao.queue.close(n.heap)
	}
	n.futures.failAll(ErrEnvClosed)
	n.flushOutbound()
	n.wg.Wait()
}
