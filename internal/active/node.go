package active

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/localgc"
	"repro/internal/location"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Node is one process (address space) of the distributed system: it hosts
// activities, a local heap with its tracing collector, a future table, and
// the DGC driver goroutine.
type Node struct {
	env      *Env
	id       ids.NodeID
	gen      *ids.Generator
	heap     *localgc.Heap
	endpoint transport.Endpoint
	// flusher is the per-destination batching engine in front of the
	// endpoint; nil unless Config.BatchWindow enables batching.
	flusher *transport.Flusher
	futures *futureTable
	// pool serves the node's activities: a shared, elastically sized set
	// of worker goroutines with per-activity affinity (see pool.go).
	pool *workerPool

	mu     sync.Mutex
	aos    map[ids.ActivityID]*ActiveObject
	closed bool

	// Sharded location directory state (WIRE.md §9). locCache is the
	// bounded LRU of *learned* locations every outgoing send consults —
	// the old unbounded rebind table demoted to a cache, path
	// compression included. locOrigin holds the mappings this node
	// created by participating in a migration (ground truth, re-announced
	// to shard owners for handoff); locShard is this node's authoritative
	// slice of the directory; locRecent queues fresh rebinds for gossip.
	locCache      *location.Cache
	locMu         sync.Mutex
	locOrigin     map[ids.ActivityID]ids.ActivityID
	locOriginKeys []ids.ActivityID
	locCursor     int
	locShard      map[ids.ActivityID]ids.ActivityID
	locRecent     []location.Rebind

	// Tree fan-out relay records (WIRE.md §10): in-flight subtrees whose
	// replies this node aggregates before forwarding one hop up. Keys
	// start at 1; 0 always means "no record" (direct reply).
	relayMu   sync.Mutex
	relays    map[uint64]*relayRecord
	relayNext uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ transport.Handler = (*Node)(nil)

func newNode(e *Env, id ids.NodeID) *Node {
	n := &Node{
		env:      e,
		id:       id,
		gen:      ids.NewGenerator(id),
		futures:  newFutureTable(),
		aos:      make(map[ids.ActivityID]*ActiveObject),
		locCache: location.NewCache(e.cfg.LocationCacheSize),
		stop:     make(chan struct{}),
	}
	n.heap = localgc.New(n.onTagDeath)
	n.pool = newWorkerPool(n)
	n.endpoint = e.net.Register(id, n)
	if e.cfg.BatchWindow > 0 {
		n.flusher = transport.NewFlusher(n.endpoint, transport.FlusherConfig{
			Window:   e.cfg.BatchWindow,
			MaxBytes: e.cfg.BatchBytes,
			Clock:    e.cfg.Clock,
		})
	}
	return n
}

// transportSend ships one one-way payload, through the batching flusher
// when enabled. Urgent traffic (requests awaiting a reply, future
// updates) is flushed as soon as the pair's writer is free; non-urgent
// traffic may linger up to the batch window for companions.
func (n *Node) transportSend(dst ids.NodeID, class transport.Class, payload []byte, urgent bool) error {
	if err := n.routeCheck(dst); err != nil {
		return err
	}
	if n.flusher != nil {
		return n.flusher.Send(dst, class, payload, urgent)
	}
	return n.endpoint.Send(dst, class, payload)
}

// transportCall performs a request/response exchange, draining the
// destination's batch lane first so the exchange cannot overtake queued
// one-way traffic (§3.2 FIFO).
func (n *Node) transportCall(dst ids.NodeID, class transport.Class, payload []byte) ([]byte, error) {
	if err := n.routeCheck(dst); err != nil {
		return nil, err
	}
	if n.flusher != nil {
		return n.flusher.Call(dst, class, payload)
	}
	return n.endpoint.Call(dst, class, payload)
}

// flushOutbound flushes and stops the node's batch lanes (no-op when
// batching is off, idempotent otherwise).
func (n *Node) flushOutbound() {
	if n.flusher != nil {
		n.flusher.Close()
	}
}

// ID returns the node identifier.
func (n *Node) ID() ids.NodeID { return n.id }

// Heap exposes the node's local heap (used by tests and metrics).
func (n *Node) Heap() *localgc.Heap { return n.heap }

func (n *Node) start() {
	n.wg.Add(1)
	go n.runDriver()
}

// activity returns the live activity with the given ID on this node.
func (n *Node) activity(id ids.ActivityID) (*ActiveObject, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ao, ok := n.aos[id]
	return ao, ok
}

// LiveActivities returns the number of live non-dummy activities hosted
// on this node (forwarders left by migrations included, until they
// collapse).
func (n *Node) LiveActivities() int { return n.liveCount() }

// liveCount counts live non-dummy activities.
func (n *Node) liveCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	var c int
	for _, ao := range n.aos {
		if !ao.dummy {
			c++
		}
	}
	return c
}

// snapshotActivities returns all live activities (dummies included: they
// participate in the DGC as referencers).
func (n *Node) snapshotActivities() []*ActiveObject {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*ActiveObject, 0, len(n.aos))
	for _, ao := range n.aos {
		out = append(out, ao)
	}
	return out
}

// onTagDeath is the localgc callback: activity owner no longer holds any
// stub for target — remove the reference-graph edge (§2.2). A guard
// against the re-intern race: if a fresh tag exists again, the edge was
// re-created concurrently and must stay.
func (n *Node) onTagDeath(d localgc.TagDeath) {
	if n.heap.HasTag(d.Owner, d.Target) {
		return
	}
	if ao, ok := n.activity(d.Owner); ok {
		ao.collector.LostReferenced(d.Target, n.env.cfg.Clock.Now())
	}
}

// HandleOneWay implements transport.Handler: application requests and future
// updates.
func (n *Node) HandleOneWay(from ids.NodeID, class transport.Class, payload []byte) {
	if ag := n.env.cluster; ag != nil {
		// Inbound traffic is proof of life — the piggybacking that keeps
		// failure detection off the happy path.
		ag.observe(from)
	}
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case envRequest:
		n.deliverRequest(payload)
	case envFutureUpdate:
		n.deliverFutureUpdate(payload)
	case envFutureSubscribe:
		n.deliverFutureSubscribe(payload)
	case envRedirect:
		if old, new, err := decodeRedirect(payload); err == nil {
			n.applyRedirect(old, new)
		}
	case envFanOut:
		n.deliverFanOut(from, payload)
	case envFanAgg:
		n.deliverFanAgg(payload)
	case location.TagAnnounce:
		n.handleLocAnnounce(payload)
	default:
		// Malformed traffic is dropped, as a real transport would.
	}
}

// deliverFutureSubscribe registers a late holder (WIRE.md §6 fallback).
// With the entry present the holder is registered normally (and served
// immediately if resolved); with it gone, the home node — the authority
// on its own futures — fails the subscriber instead of letting it hang.
func (n *Node) deliverFutureSubscribe(payload []byte) {
	fid, holder, err := decodeFutureSubscribe(payload)
	if err != nil || holder == n.id {
		return
	}
	if f, ok := n.futures.lookup(fid); ok {
		f.addHolder(holder)
		return
	}
	if fid.Node == n.id {
		u := futureUpdate{Future: fid, Failed: true, Err: ErrFutureUnavailable.Error()}
		_ = n.transportSend(holder, transport.ClassFuture, encodeFutureUpdate(u), true)
	}
}

// HandleCall implements transport.Handler: DGC message → DGC response
// exchanges, single or batched (one exchange per destination node and
// beat when batching is on). An empty response means the target activity
// is gone; the sender's driver ignores it (the paper omits error
// handling; silence is indistinguishable from a slow beat and is handled
// by the TTA machinery).
func (n *Node) HandleCall(from ids.NodeID, class transport.Class, payload []byte) []byte {
	if ag := n.env.cluster; ag != nil {
		ag.observe(from)
		if class == transport.ClassCluster {
			// Node-addressed cluster exchange: the suspect-path probe.
			return ag.handleNodeCall(from, payload)
		}
	}
	if class == transport.ClassApp {
		// Application-class exchanges: the migration envelope (WIRE.md §7)
		// and the location-directory query (§9); everything else
		// application-level is one-way.
		if len(payload) > 0 {
			switch payload[0] {
			case envMigrate:
				return n.handleMigrateIn(payload)
			case location.TagQuery:
				return n.handleLocQuery(payload)
			}
		}
		return nil
	}
	if isDGCBatch(payload) {
		entries, err := decodeDGCBatchPayload(payload)
		if err != nil {
			return nil
		}
		now := n.env.cfg.Clock.Now()
		resps := make([]*core.Response, len(entries))
		for i, e := range entries {
			if ao, ok := n.activity(e.Target); ok {
				r := ao.collector.HandleMessage(e.Msg, now)
				resps[i] = &r
				n.redirectIfForwarder(ao, from)
			}
		}
		return encodeDGCBatchResponse(resps)
	}
	target, msg, err := decodeDGCPayload(payload)
	if err != nil {
		return nil
	}
	ao, ok := n.activity(target)
	if !ok {
		return nil
	}
	resp := ao.collector.HandleMessage(msg, n.env.cfg.Clock.Now())
	n.redirectIfForwarder(ao, from)
	return core.EncodeResponse(resp)
}

// redirectIfForwarder pushes a rebinding notice back at a node that just
// heartbeated a forwarder: the referencer over there still holds the old
// identity. This is the collapse driver that needs no application
// traffic — within one beat every stale holder learns the new address,
// rebinds, and stops beating the forwarder, which then goes TTA-alone.
func (n *Node) redirectIfForwarder(ao *ActiveObject, from ids.NodeID) {
	if newID := ao.forwardTarget(); !newID.IsNil() && from != n.id {
		n.sendRedirect(from, ao.id, newID)
	}
}

// deliverRequest decodes an application request, binds the reference-graph
// hook to the recipient, roots the arguments for the duration of the
// service, and enqueues the request.
func (n *Node) deliverRequest(payload []byte) {
	req, rawArgs, err := decodeRequestHeader(payload)
	if err != nil {
		return
	}
	ao, ok := n.activity(req.Target)
	if ok {
		if newID := ao.forwardTarget(); !newID.IsNil() {
			// The target migrated away: relay through the forwarder and
			// teach the sender the new address.
			n.forwardRaw(ao.id, newID, req, rawArgs)
			return
		}
	} else {
		// The callee is gone — but if it is known to have migrated (the
		// forwarder already collapsed), a late call still reaches it via
		// the node's location knowledge: cache, origin table or shard.
		if newID, okLoc := n.resolveLocation(req.Target); okLoc && newID != req.Target {
			n.forwardRaw(req.Target, newID, req, rawArgs)
			return
		}
		// Nothing known locally: ask the ID's home shard before giving
		// up (the slow path a cache eviction or collapsed forwarder
		// falls back to). The raw args must be copied — the payload
		// buffer is the transport's and is dead once this handler
		// returns, while the query runs on its own goroutine.
		raw := append([]byte(nil), rawArgs...)
		if n.tryDirectoryRelay(req, ErrUnknownActivity, func() (wire.Value, bool) {
			var dec wire.Decoder
			args, decErr := dec.Decode(raw)
			return args, decErr == nil
		}) {
			return
		}
		// Collected or explicitly terminated. If the caller expects a
		// result, fail its future so it does not block forever.
		if !req.Future.IsZero() {
			n.sendFutureUpdate(req.Future, futureUpdate{
				Future: req.Future,
				Failed: true,
				Err:    ErrUnknownActivity.Error(),
			})
		}
		return
	}
	now := n.env.cfg.Clock.Now()
	refs := 0
	dec := wire.Decoder{
		OnRef: func(t ids.ActivityID) {
			refs++
			ao.collector.AddReferenced(t, now)
		},
		OnFuture: func(fr wire.FutureRef) {
			// A first-class future arrived: adopt a local entry (a proxy,
			// unless this is its home node) and record the recipient, so
			// the propagated resolution binds its references here. The
			// remote sender registered this node as a holder before the
			// payload hit the wire, so no subscription is needed.
			if fr.ID.IsZero() {
				return
			}
			f, _ := n.futures.adopt(n, fr)
			f.addLocalHolder(ao.id)
		},
	}
	args, err := dec.Decode(rawArgs)
	if err != nil {
		return
	}
	req.Args = args
	item := getQueued(req)
	if refs > 0 {
		// Root the arguments in the recipient's heap for the lifetime of
		// the request: stubs inside them keep the remote references alive
		// until the service completes (then only state-stored stubs
		// survive). Ref-free arguments pin nothing the DGC cares about, so
		// they skip the heap entirely — the calling hot path allocates no
		// cells.
		_, item.argsRoot = n.heap.InternRooted(ao.id, args)
	}
	ao.enqueue(item)
}

// deliverLocalRequest is the intra-node calling fast path: when caller
// and callee live on the same node, the request skips the envelope codec
// and the transport handler — a DeepCopy preserves the no-sharing
// property (§2.1) and an explicit Refs walk feeds the reference-graph
// hook exactly as deserialization would (§2.2). Wire traffic, accounting
// and DGC edges are identical to the seed's encode→decode round-trip;
// only the serialization work disappears.
func (n *Node) deliverLocalRequest(req request) {
	ao, ok := n.activity(req.Target)
	if ok {
		if newID := ao.forwardTarget(); !newID.IsNil() {
			n.forwardQueued(ao, req)
			return
		}
	} else {
		if newID, okLoc := n.resolveLocation(req.Target); okLoc && newID != req.Target {
			req.Args = wire.Rebind(req.Args, req.Target, newID)
			req.Target = newID
			_ = n.sendRequest(req)
			return
		}
		args := req.Args
		if n.tryDirectoryRelay(req, ErrUnknownActivity, func() (wire.Value, bool) { return args, true }) {
			return
		}
		if !req.Future.IsZero() {
			n.replyTo(req, futureUpdate{
				Future: req.Future,
				Failed: true,
				Err:    ErrUnknownActivity.Error(),
			})
		}
		return
	}
	args := wire.DeepCopy(req.Args)
	req.Args = args
	item := getQueued(req)
	var scratch [8]ids.ActivityID
	if refs := args.Refs(scratch[:0]); len(refs) > 0 {
		now := n.env.cfg.Clock.Now()
		for _, t := range refs {
			ao.collector.AddReferenced(t, now)
		}
		_, item.argsRoot = n.heap.InternRooted(ao.id, args)
		n.adoptFutures(args, ao.id, true)
	}
	ao.enqueue(item)
}

// adoptFutures walks a delivered value for first-class futures and
// adopts entries for them on behalf of recipient (the DeepCopy twin of
// deliverRequest's OnFuture hook). A Nil recipient adopts without
// recording a local holder — used when a value must become forwardable
// here even though no live local activity received it. subscribe is set
// on the purely local delivery paths, where no remote sender has
// registered this node: a freshly created remote-homed proxy then
// subscribes at its home node (a handle on node A can legitimately be
// given a future homed on node B through plain Go code). Values without
// futures pay one walk that exits on the first non-container kind.
func (n *Node) adoptFutures(v wire.Value, recipient ids.ActivityID, subscribe bool) {
	if !v.HasFutures() {
		return
	}
	var scratch [4]wire.FutureRef
	for _, fr := range v.FutureRefs(scratch[:0]) {
		if fr.ID.IsZero() {
			continue
		}
		f, created := n.futures.adopt(n, fr)
		if !recipient.IsNil() {
			f.addLocalHolder(recipient)
		}
		if subscribe && created && f.proxy {
			_ = n.transportSend(fr.ID.Node, transport.ClassFuture, encodeFutureSubscribe(fr.ID, n.id), true)
		}
	}
}

// deliverFutureUpdate resolves a future with an arriving result: the
// original callee's update at the home node, or a propagated one at a
// holder node (WIRE.md §6). An unknown future means the caller terminated
// or the update is a duplicate; it is dropped.
func (n *Node) deliverFutureUpdate(payload []byte) {
	u, rawValue, err := decodeFutureUpdateHeader(payload)
	if err != nil {
		return
	}
	fut, ok := n.futures.takeForUpdate(u.Future)
	if !ok {
		return
	}
	if u.Failed {
		fut.fail(newRemoteFailure(u.Err))
		return
	}
	var dec wire.Decoder
	value, err := dec.Decode(rawValue)
	if err != nil {
		fut.fail(err)
		return
	}
	n.bindValueToFuture(fut, value, false)
}

// deliverLocalFutureUpdate resolves a same-node future without the
// envelope codec (the DeepCopy/Refs-walk twin of deliverLocalRequest).
func (n *Node) deliverLocalFutureUpdate(u futureUpdate) {
	fut, ok := n.futures.takeForUpdate(u.Future)
	if !ok {
		return
	}
	if u.Failed {
		fut.fail(newRemoteFailure(u.Err))
		return
	}
	n.bindValueToFuture(fut, wire.DeepCopy(u.Value), true)
}

// bindValueToFuture installs an arrived result on a future entry: it
// creates the reference-graph edges and heap pins for the activities that
// will consume the value — the home entry's owner and/or every local
// activity the future was forwarded to — adopts any futures nested in the
// value, and resolves the entry (which fans the value out to downstream
// holder nodes and chained futures).
func (n *Node) bindValueToFuture(f *Future, value wire.Value, subscribeNew bool) {
	var cscratch [4]*ActiveObject
	consumers := cscratch[:0]
	if !f.proxy && !f.emigrated.Load() {
		owner, ok := n.activity(f.owner)
		if !ok {
			f.fail(ErrOwnerTerminated)
			return
		}
		consumers = append(consumers, owner)
	}
	for _, a := range f.localHolderSnapshot() {
		if ao, ok := n.activity(a); ok && (len(consumers) == 0 || ao != consumers[0]) {
			consumers = append(consumers, ao)
		}
	}
	var scratch [8]ids.ActivityID
	refs := value.Refs(scratch[:0])
	if len(refs) == 0 || len(consumers) == 0 {
		// A proxy whose local holders all terminated still resolves, so
		// the fan-out to downstream holders happens regardless — which
		// means nested futures must still be adopted here, or the
		// fan-out could not register the downstream holders on them.
		n.adoptFutures(value, ids.Nil, subscribeNew)
		f.resolve(value, nil, nil)
		return
	}
	now := n.env.cfg.Clock.Now()
	roots := make([]localgc.RootID, 0, len(consumers))
	for _, ao := range consumers {
		for _, t := range refs {
			ao.collector.AddReferenced(t, now)
		}
		n.adoptFutures(value, ao.id, subscribeNew)
		// One pin — and thus one tag set — per consuming activity: every
		// edge added above has a tag whose death can remove it again.
		_, root := n.heap.InternRooted(ao.id, value)
		roots = append(roots, root)
	}
	f.resolve(value, roots, nil)
}

// fanOutFutureValue ships a resolution (value or failure) to holder
// nodes: the future-update propagation leg of first-class futures. The
// envelope is encoded once and reused; after each send the value is
// walked so futures nested inside it register dst as *their* holder too
// (the recursive case of a forwarded result carrying further futures).
func (n *Node) fanOutFutureValue(fid FutureID, val wire.Value, failed bool, errStr string, holders []ids.NodeID) {
	if len(holders) == 0 {
		return
	}
	u := futureUpdate{Future: fid, Failed: failed, Err: errStr}
	if !failed {
		u.Value = val
	}
	var payload []byte
	for _, dst := range holders {
		if dst == n.id {
			// Holders are registered by remote senders only; guard anyway.
			n.deliverLocalFutureUpdate(u)
			continue
		}
		if payload == nil {
			payload = encodeFutureUpdate(u)
		}
		// Errors (unreachable, closed) drop the update: per §4.1, a
		// missing future update cannot wake anything and is acceptable
		// for garbage. Updates are urgent: holders are (or will be)
		// blocked on them.
		_ = n.transportSend(dst, transport.ClassFuture, payload, true)
		if !failed {
			n.noteFutureValuesSent(dst, val)
		}
	}
}

// resolveChainedFuture re-resolves a chainWait future with the concrete
// value of the inner future it was flattened onto. The value crosses an
// activity boundary, so it is deep-copied and re-pinned for the outer
// future's consumers.
func (n *Node) resolveChainedFuture(c *Future, val wire.Value, err error) {
	if err != nil {
		c.resolveFromChain(wire.Null(), nil, err)
		return
	}
	value := wire.DeepCopy(val)
	var consumers []*ActiveObject
	if !c.proxy && !c.emigrated.Load() {
		if owner, ok := n.activity(c.owner); ok {
			consumers = append(consumers, owner)
		}
	}
	for _, a := range c.localHolderSnapshot() {
		if ao, ok := n.activity(a); ok && (len(consumers) == 0 || ao != consumers[0]) {
			consumers = append(consumers, ao)
		}
	}
	var scratch [8]ids.ActivityID
	refs := value.Refs(scratch[:0])
	if len(refs) == 0 || len(consumers) == 0 {
		n.adoptFutures(value, ids.Nil, false)
		c.resolveFromChain(value, nil, nil)
		return
	}
	now := n.env.cfg.Clock.Now()
	roots := make([]localgc.RootID, 0, len(consumers))
	for _, ao := range consumers {
		for _, t := range refs {
			ao.collector.AddReferenced(t, now)
		}
		n.adoptFutures(value, ao.id, false)
		_, root := n.heap.InternRooted(ao.id, value)
		roots = append(roots, root)
	}
	c.resolveFromChain(value, roots, nil)
}

// noteFutureValuesSent registers dst as a holder of every first-class
// future inside an outgoing payload (ASP-style sender-side registration:
// the resolution will be propagated to dst when — or if already — it
// arrives here). Called after the payload is on the wire so a direct-send
// of an already-resolved value follows the payload on the pair's FIFO
// lane. A future unknown here is failed at dst if this is its home node
// (it was reclaimed; dst's proxy would otherwise wait forever).
func (n *Node) noteFutureValuesSent(dst ids.NodeID, v wire.Value) {
	if !v.HasFutures() {
		return
	}
	var scratch [4]wire.FutureRef
	for _, fr := range v.FutureRefs(scratch[:0]) {
		if fr.ID.IsZero() || fr.ID.Node == dst {
			// The future is going home: its entry there (or its absence)
			// is authoritative; no registration needed.
			continue
		}
		if f, ok := n.futures.lookup(fr.ID); ok {
			f.addHolder(dst)
			continue
		}
		if fr.ID.Node == n.id {
			// Home with no entry: the future was reclaimed; fail the new
			// holder's proxy rather than letting it wait forever.
			u := futureUpdate{Future: fr.ID, Failed: true, Err: ErrFutureUnavailable.Error()}
			_ = n.transportSend(dst, transport.ClassFuture, encodeFutureUpdate(u), true)
			continue
		}
		// Not home and no entry (our proxy was swept, or the reference
		// was hand-crafted): subscribe the destination at the home node
		// on its behalf — the home either serves it or fails it.
		_ = n.transportSend(fr.ID.Node, transport.ClassFuture, encodeFutureSubscribe(fr.ID, dst), true)
	}
}

// sendFutureUpdate ships a result back to the caller's node.
func (n *Node) sendFutureUpdate(to FutureID, u futureUpdate) {
	if to.Node == n.id {
		n.deliverLocalFutureUpdate(u)
		return
	}
	payload := encodeFutureUpdate(u)
	// Errors (unreachable, closed) drop the update: per §4.1, a missing
	// future update cannot wake anything and is acceptable for garbage.
	// Updates are urgent: the caller is (or will be) blocked on them.
	_ = n.transportSend(to.Node, transport.ClassFuture, payload, true)
	if !u.Failed {
		n.noteFutureValuesSent(to.Node, u.Value)
	}
}

// sendRequest ships an application request to the target's node (or
// delivers it directly when the target is local). Requests that expect a
// reply are urgent; plain one-way sends may linger in the batch window.
// Targets known to have migrated are rewritten through the rebind table
// first, so a stale reference pays the forwarder hop at most once per
// node.
func (n *Node) sendRequest(req request) error {
	req.Target = n.resolveRebind(req.Target)
	if req.Target.Node == n.id {
		n.deliverLocalRequest(req)
		return nil
	}
	if req.Via != 0 {
		// The request leaves the node, so its reply can no longer pass
		// through the local relay record (Via never serializes): detach,
		// and let the reply travel straight to the root.
		n.relayDetach(req.Via, req.Future)
		req.Via = 0
	}
	if n.env.isDeadNode(req.Target.Node) {
		// The identity's home is confirmed dead, but the activity may have
		// migrated away before the crash: local location knowledge first,
		// then the ID's home shard (WIRE.md §9). Only when the directory
		// cannot help either does the send fail fast with the sentinel.
		if newID, ok := n.resolveLocation(req.Target); ok && newID != req.Target && !n.env.isDeadNode(newID.Node) {
			req.Args = wire.Rebind(req.Args, req.Target, newID)
			req.Target = newID
			return n.sendRequest(req)
		}
		args := req.Args
		if n.tryDirectoryRelay(req, ErrNodeDead, func() (wire.Value, bool) { return args, true }) {
			return nil
		}
	}
	err := n.transportSend(req.Target.Node, transport.ClassApp, encodeRequest(req), !req.Future.IsZero())
	if err == nil {
		if n.env.cluster != nil && !req.Future.IsZero() {
			// Remember who owes this future its result, so a confirmed
			// death of that node fails it instead of hanging the waiter.
			n.futures.noteAwait(req.Future, req.Target.Node)
		}
		// Register the destination as holder of any futures forwarded in
		// the arguments — after the request, so a direct-send of an
		// already-resolved value cannot overtake it on the FIFO lane.
		n.noteFutureValuesSent(req.Target.Node, req.Args)
	}
	return err
}

// futureFor lifts a first-class future value into the local waitable
// entry adopted for it (wait-by-necessity at the holder). When the
// local entry is gone — a proxy reclaimed after resolution, or a
// reference lifted on a node that never saw the payload — a fresh proxy
// is adopted and re-subscribed at the home node, which either serves it
// or fails it with ErrFutureUnavailable; a home-node miss fails
// immediately (the home is the authority on its own futures).
func (n *Node) futureFor(v wire.Value) (*Future, error) {
	fr, ok := v.AsFutureRef()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotAFuture, v)
	}
	if fr.ID.IsZero() {
		return failedFuture(n, fr.ID, fr.Owner, ErrFutureUnavailable), nil
	}
	if f, okF := n.futures.lookup(fr.ID); okF {
		return f, nil
	}
	if fr.ID.Node == n.id {
		return failedFuture(n, fr.ID, fr.Owner, ErrFutureUnavailable), nil
	}
	f, _ := n.futures.adopt(n, fr)
	if err := n.transportSend(fr.ID.Node, transport.ClassFuture, encodeFutureSubscribe(fr.ID, n.id), true); err != nil {
		f.fail(err)
	}
	return f, nil
}

// destroy removes an activity: stops its service loop, drains its request
// queue (failing the futures of requests that will never be served),
// releases its heap roots, fails futures it owns, and records the
// collection.
func (n *Node) destroy(ao *ActiveObject, reason core.Reason) {
	n.mu.Lock()
	if _, ok := n.aos[ao.id]; !ok {
		n.mu.Unlock()
		return
	}
	delete(n.aos, ao.id)
	n.mu.Unlock()

	ao.terminated.Store(true)
	ao.collector.Terminate(n.env.cfg.Clock.Now())
	for _, it := range ao.queue.close(n.heap) {
		// A queued request whose callee terminates gracefully fails its
		// caller's future now instead of leaving it to time out — the same
		// answer an enqueue after close gets.
		if !it.req.Future.IsZero() {
			n.replyTo(it.req, futureUpdate{
				Future: it.req.Future,
				Failed: true,
				Err:    ErrUnknownActivity.Error(),
			})
		}
	}
	ao.releaseAllRoots(n.heap)
	n.futures.failOwned(ao.id, ErrOwnerTerminated)
	// A graceful termination erases the activity's checkpoint: there is
	// nothing left to recover. Crash/shutdown never reach here, so their
	// checkpoints survive — that is the durability contract. Forwarders
	// keep no checkpoint under the old identity (migration deleted it).
	if ao.kind != "" && !ao.dummy && n.env.cfg.Store != nil && ao.forwardTarget().IsNil() {
		_ = n.env.cfg.Store.Delete(ao.id)
	}
	if !ao.dummy {
		n.env.noteCollected(reason)
	}
}

// Crash simulates the machine failing: the node vanishes from the
// network without any cleanup protocol. Per §4.2 the DGC cannot
// distinguish this from slowness — peers referencing the crashed
// activities keep heartbeating into the void, while activities that were
// referenced only from the crashed node stop hearing beats and collect
// themselves acyclically after TTA. Pending calls toward the node fail
// or time out.
func (n *Node) Crash() {
	n.env.mu.Lock()
	delete(n.env.nodes, n.id)
	n.env.mu.Unlock()
	n.env.net.Deregister(n.id)
	n.env.refreshRing()
	n.shutdown()
}

// shutdown stops the node: driver, service loops, futures.
func (n *Node) shutdown() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	aos := make([]*ActiveObject, 0, len(n.aos))
	for _, ao := range n.aos {
		aos = append(aos, ao)
	}
	n.aos = make(map[ids.ActivityID]*ActiveObject)
	n.mu.Unlock()

	close(n.stop)
	for _, ao := range aos {
		ao.terminated.Store(true)
		// Shutdown (and crash) stays silent toward remote callers: their
		// queued requests are dropped with their pins released, exactly as
		// a vanished machine would drop them (§4.2); local callers' futures
		// fail below via failAll.
		ao.queue.close(n.heap)
	}
	n.futures.failAll(ErrEnvClosed)
	// Stop the pool after the queues close and the futures fail: workers
	// blocked mid-service in Future.Wait have been unblocked above, finish
	// their drain against a closed queue, and exit.
	n.pool.close()
	n.flushOutbound()
	n.wg.Wait()
}
