package active

// Durable activities (WIRE.md §11, DESIGN.md §9). A checkpoint is the
// same envelope live migration ships — name, kind, persistent state,
// pending queue — wrapped with the activity's registered names and
// persisted into Config.Store under the activity's identity. Capture
// always happens on the activity's own goroutine between two services
// (the driver's checkpoint beat enqueues a reserved-method request, just
// like Handle.Migrate), so the snapshot is quiescent by construction and
// the worker pool is never stalled.
//
// Recovery is at-most-once: Env.Recover re-instantiates checkpointed
// activities from the RegisterBehavior registry under their old
// identities and re-registers their names, but the requests that were
// checkpointed in flight are failed with ErrRecovered instead of being
// replayed — a request captured in a queue snapshot may also have
// executed between the checkpoint and the crash, and running it twice is
// the one thing a crash must never cause. Callers treat ErrRecovered
// like any other retryable failure.
//
// Failover extends the same machinery across a cluster: when a member
// is declared dead (ClusterConfig.Failover), the lowest-ID surviving
// (non-tombstoned) member
// adopts the dead node's checkpoints, restores them under fresh
// identities, and gossips the old→new rebinds through the channel a
// graceful Leave uses — holders of the dead identities rebind on first
// contact, exactly like migration redirects.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/wire"
)

// Durability errors.
var (
	// ErrRecovered fails a request that was in flight when its target
	// crashed and was restored from a checkpoint: the runtime cannot know
	// whether the request executed before the crash, so it refuses to
	// replay it (at-most-once delivery; DESIGN.md §9). Retry if the call
	// is idempotent.
	ErrRecovered = errors.New("active: request lost to crash recovery")
	// ErrNoStore reports a checkpoint or recovery attempt on an
	// environment without a Config.Store.
	ErrNoStore = errors.New("active: no checkpoint store configured")
	// ErrNotDurable reports a checkpoint attempt on an activity that was
	// not created from a registered behavior kind (recovery could not
	// re-instantiate its behavior, so persisting it would be a lie).
	ErrNotDurable = errors.New("active: activity is not durable (no registered behavior kind)")
)

// checkpointMethod is the reserved method the checkpoint beat (and
// Handle.Checkpoint) sends. The serve loop intercepts it like
// migrateMethod: behaviors never see it, and the snapshot waits its
// queue turn under the activity's service policy.
const checkpointMethod = "\x00checkpoint"

// checkpoint is one persisted activity: the migration envelope plus the
// registry names to restore it under.
type checkpoint struct {
	Env   migration
	Names []string
}

// encodeCheckpoint wraps the migration envelope with a length prefix
// (decodeMigration rejects trailing bytes) and the uvarint-counted
// registered names.
func encodeCheckpoint(c checkpoint) []byte {
	env := encodeMigration(c.Env)
	buf := make([]byte, 0, len(env)+16)
	buf = binary.AppendUvarint(buf, uint64(len(env)))
	buf = append(buf, env...)
	buf = binary.AppendUvarint(buf, uint64(len(c.Names)))
	for _, name := range c.Names {
		buf = appendUvarintString(buf, name)
	}
	return buf
}

func decodeCheckpoint(buf []byte) (checkpoint, error) {
	var c checkpoint
	envLen, sz := binary.Uvarint(buf)
	if sz <= 0 || envLen > uint64(len(buf)-sz) {
		return c, fmt.Errorf("%w: checkpoint envelope length", errBadEnvelope)
	}
	buf = buf[sz:]
	var err error
	if c.Env, err = decodeMigration(buf[:envLen]); err != nil {
		return c, err
	}
	buf = buf[envLen:]
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)) {
		return c, fmt.Errorf("%w: checkpoint name count", errBadEnvelope)
	}
	buf = buf[sz:]
	for i := uint64(0); i < n; i++ {
		var name string
		if name, buf, err = readUvarintString(buf); err != nil {
			return c, err
		}
		c.Names = append(c.Names, name)
	}
	if len(buf) != 0 {
		return c, fmt.Errorf("%w: trailing checkpoint bytes", errBadEnvelope)
	}
	return c, nil
}

// checkpointNow captures and persists one activity. It must run where a
// service could: on the activity's own goroutine between services, or
// before the activity has been published to any holder (failover
// adoption) — anywhere else would snapshot mid-mutation state.
func (n *Node) checkpointNow(ao *ActiveObject) error {
	st := n.env.cfg.Store
	if st == nil {
		return ErrNoStore
	}
	if ao.kind == "" {
		return ErrNotDurable
	}
	if !ao.forwardTarget().IsNil() {
		return fmt.Errorf("%w: activity migrated away", ErrNotDurable)
	}
	c := checkpoint{
		Env:   n.captureEnvelope(ao, ao.queue.snapshotItems()),
		Names: n.env.namesOf(ao.id),
	}
	if err := st.Put(ao.id, encodeCheckpoint(c)); err != nil {
		return err
	}
	ao.ckptDirty.Store(false)
	return nil
}

// serveCheckpoint handles an intercepted checkpointMethod request on the
// activity's own goroutine, resolving the caller's future (if any) with
// the activity's reference on success. It always reports false: a
// checkpoint never ends the serve loop. nested mirrors serveMigrate: a
// ServeNext selection from inside a running service is refused, because
// the outer service is mid-mutation.
func (ao *ActiveObject) serveCheckpoint(item *queuedRequest, nested bool) bool {
	reply := func(v wire.Value, err error) {
		if item.req.Future.IsZero() {
			return
		}
		u := futureUpdate{Future: item.req.Future}
		if err != nil {
			u.Failed = true
			u.Err = err.Error()
		} else {
			u.Value = v
		}
		ao.node.replyTo(item.req, u)
	}
	defer ao.node.heap.RemoveRoot(item.argsRoot)
	if nested {
		reply(wire.Null(), fmt.Errorf("%w: checkpoint refused mid-service (ServeNext)", ErrNotDurable))
		return false
	}
	if err := ao.node.checkpointNow(ao); err != nil {
		reply(wire.Null(), err)
		return false
	}
	reply(wire.Ref(ao.id), nil)
	return false
}

// checkpointBeat rides the driver beat: every durable activity whose
// checkpoint is due (dirty, cadence elapsed) gets a reserved-method
// request, and the snapshot itself runs on the activity's goroutine when
// its turn comes. Clean activities cost one atomic load per beat;
// without a Store or a cadence the whole beat is two comparisons.
func (n *Node) checkpointBeat(now time.Time) {
	every := n.env.cfg.CheckpointEvery
	if n.env.cfg.Store == nil || every <= 0 {
		return
	}
	for _, ao := range n.snapshotActivities() {
		if ao.dummy || ao.kind == "" || ao.terminated.Load() || !ao.forwardTarget().IsNil() {
			continue
		}
		if ao.nextCkpt.After(now) || !ao.ckptDirty.Load() {
			continue
		}
		ao.nextCkpt = now.Add(every)
		ao.enqueue(getQueued(request{
			Target: ao.id,
			Sender: ao.id,
			Method: checkpointMethod,
			Args:   wire.Null(),
		}))
	}
}

// Checkpoint asks the activity to persist itself. Like Migrate, the
// checkpoint is itself a request: it waits its queue turn under the
// activity's service policy and the returned future resolves with the
// activity's reference once the snapshot is durably on the store (or
// with the failure).
func (h *Handle) Checkpoint() (*Future, error) {
	if h.released.Load() {
		return nil, fmt.Errorf("checkpoint: %w", ErrHandleReleased)
	}
	return h.Call(checkpointMethod, wire.Null())
}

// Checkpoint asks the runtime to persist this activity right after the
// current service completes (the snapshot must see the service's final
// state, so it cannot run mid-service). It returns an error immediately
// if the activity can never be checkpointed; the write itself is
// asynchronous and its failure is dropped — call Handle.Checkpoint for
// an acknowledged snapshot.
func (c *Context) Checkpoint() error {
	if c.ao.kind == "" {
		return ErrNotDurable
	}
	if c.ao.node.env.cfg.Store == nil {
		return ErrNoStore
	}
	c.ao.ckptWanted.Store(true)
	return nil
}

// namesOf returns the registry names bound to id, sorted.
func (e *Env) namesOf(id ids.ActivityID) []string {
	e.mu.Lock()
	var out []string
	for name, target := range e.names {
		if target == id {
			out = append(out, name)
		}
	}
	e.mu.Unlock()
	sort.Strings(out)
	return out
}

// registerRecovered re-binds a checkpointed registry name to a restored
// activity. Unlike RegisterName it cannot fail: the activity was just
// created by the caller.
func (e *Env) registerRecovered(name string, ao *ActiveObject) {
	e.mu.Lock()
	e.names[name] = ao.id
	e.mu.Unlock()
	ao.registered.Store(true)
	ao.ckptDirty.Store(true)
}

// ensureNode returns the live node with the given ID, re-creating it if
// recovery needs a node that died with the old process. A re-created
// node advances the environment's node-ID allocation (and the cluster's
// lease block) past itself so later NewNode calls cannot collide.
func (e *Env) ensureNode(id ids.NodeID) *Node {
	e.mu.Lock()
	if n, ok := e.nodes[id]; ok {
		e.mu.Unlock()
		return n
	}
	if e.closed {
		e.mu.Unlock()
		panic("active: Recover on closed Env")
	}
	n := newNode(e, id)
	e.nodes[id] = n
	n.start()
	e.mu.Unlock()
	e.nodeGen.SkipTo(id + 1)
	if e.cluster != nil {
		e.cluster.skipLeases(id + 1)
		e.cluster.noteNodeUp(id)
	}
	e.refreshRing()
	return n
}

// Recover restores every checkpointed activity from Config.Store into
// this environment: behaviors re-instantiated from the RegisterBehavior
// registry, state re-interned, registry names re-bound — all under the
// pre-crash identities, so references held by surviving processes keep
// working (after their own node's rebind caches miss and re-resolve).
// Nodes that no longer exist are re-created. Checkpointed in-flight
// requests are failed with ErrRecovered, not replayed (at-most-once;
// see the package comment). Activities already live in this environment
// are skipped, so Recover is idempotent and safe to call on a
// partially recovered environment.
//
// It returns how many activities were restored. A checkpoint that fails
// to decode (or names an unregistered behavior kind) is skipped and
// reported through the returned error; everything restorable is still
// restored.
func (e *Env) Recover() (int, error) {
	st := e.cfg.Store
	if st == nil {
		return 0, ErrNoStore
	}
	snap, err := st.Load()
	if err != nil {
		return 0, err
	}
	keys := make([]ids.ActivityID, 0, len(snap))
	for id := range snap {
		keys = append(keys, id)
	}
	// Identity order keeps recovery deterministic (and with it the IDs
	// any post-recovery spawn mints).
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	restored := 0
	var firstErr error
	for _, id := range keys {
		c, err := decodeCheckpoint(snap[id])
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("checkpoint %v: %w", id, err)
			}
			continue
		}
		if _, live := e.activity(id); live {
			continue
		}
		n := e.ensureNode(id.Node)
		ao, err := n.restoreFromEnvelope(c.Env, true, ErrRecovered)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("checkpoint %v: %w", id, err)
			}
			continue
		}
		for _, name := range c.Names {
			e.registerRecovered(name, ao)
		}
		restored++
	}
	return restored, firstErr
}

// adoptDeadNode is the failover path: called when the cluster declares a
// member dead. The designated survivor — the lowest-ID member not
// tombstoned dead or left, a final, gossiped judgment, so the same on
// every process — adopts the dead node's checkpoints if it
// is hosted here: each is restored under a fresh identity (the dead
// node's ID range must stay dead: identifiers are never reused),
// re-checkpointed under the new identity, re-registered, and the
// old→new rebinds are applied locally and gossiped to every member,
// exactly as a graceful Node.Leave hands its activities off.
func (e *Env) adoptDeadNode(dead ids.NodeID) {
	st := e.cfg.Store
	if st == nil || e.cluster == nil || !e.cluster.cfg.Failover {
		return
	}
	var survivor *Node
	for _, m := range e.ClusterMembers() {
		// Skip only tombstoned members: dead/left are final and gossiped,
		// so every process elects the same survivor. Suspect is a
		// transient, process-local judgment — electing over it would let
		// two processes disagree on who adopts.
		if m.Node == dead || m.State == cluster.StateDead || m.State == cluster.StateLeft {
			continue
		}
		// The designated survivor may live in another process; then it
		// runs this adoption against the shared store, not us.
		survivor = e.Node(m.Node)
		break
	}
	if survivor == nil {
		return
	}
	snap, err := st.Load()
	if err != nil {
		return
	}
	keys := make([]ids.ActivityID, 0, 8)
	for id := range snap {
		if id.Node == dead {
			keys = append(keys, id)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	var moved []cluster.Rebind
	for _, old := range keys {
		c, err := decodeCheckpoint(snap[old])
		if err != nil {
			continue
		}
		ao, err := survivor.restoreFromEnvelope(c.Env, false, ErrRecovered)
		if err != nil {
			continue
		}
		// Persist under the new identity before anyone can reach the
		// activity — names and rebinds are published below, so capturing
		// here cannot race with a service. The names come from the dead
		// node's checkpoint: they are about to be re-bound to ao.
		_ = st.Put(ao.id, encodeCheckpoint(checkpoint{
			Env:   survivor.captureEnvelope(ao, nil),
			Names: c.Names,
		}))
		ao.ckptDirty.Store(false)
		_ = st.Delete(old)
		for _, name := range c.Names {
			e.registerRecovered(name, ao)
		}
		survivor.addRebind(old, ao.id)
		survivor.announceLocation(old, ao.id)
		moved = append(moved, cluster.Rebind{Old: old, New: ao.id})
	}
	if len(moved) == 0 {
		return
	}
	e.applyRebinds(moved)
	e.cluster.announceRebinds(moved)
}
