package active

import (
	"sync"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/transport"
)

// runDriver is the node's DGC driver goroutine: every TTB it runs a local
// heap sweep (which fires the weak-tag edge removals of §2.2) and then the
// collector broadcast of every hosted activity (Algorithm 2). Broadcasts
// go out in parallel, as §4.2 prescribes, so one slow peer cannot delay
// the rest of the beat.
func (n *Node) runDriver() {
	defer n.wg.Done()
	if n.env.cfg.DisableDGC {
		// Baseline mode: only the local heap (and the future table, whose
		// lifecycle is purely local) is collected.
		for {
			select {
			case <-n.stop:
				return
			case <-n.env.cfg.Clock.After(n.env.cfg.TTB):
				n.heap.Collect()
				n.futures.sweep(n.heap, n.env.cfg.Clock.Now(), n.env.cfg.TTA)
				n.locationBeat(nil)
				n.expireRelays()
				n.checkpointBeat(n.env.cfg.Clock.Now())
				if ag := n.env.cluster; ag != nil {
					// No heartbeats to piggyback on in baseline mode, so the
					// driver still advances the failure detector (silence
					// then drives the suspect path's explicit probes).
					ag.maybeTick(n)
				}
			}
		}
	}
	// With adaptive beats (§7.1) the driver wakes at the fastest permitted
	// period and beats each activity at its own adapted pace.
	wake := n.env.cfg.TTB
	if n.env.cfg.Adaptive.Enabled && n.env.cfg.Adaptive.MinTTB < wake {
		wake = n.env.cfg.Adaptive.MinTTB
	}
	for {
		select {
		case <-n.stop:
			return
		case <-n.env.cfg.Clock.After(wake):
		}
		n.beat()
	}
}

// dgcOut is one due DGC message with the activity that owes it.
type dgcOut struct {
	ao *ActiveObject
	ob core.Outbound
}

// beat runs one driver iteration: a local sweep plus the broadcast of
// every activity whose beat is due. Without batching each message is its
// own parallel exchange (§4.2); with batching the beat's messages are
// grouped per destination node and each group travels as one exchange —
// the per-destination groups still go out in parallel, so one slow peer
// cannot delay the rest of the beat.
func (n *Node) beat() {
	n.heap.Collect()
	// Future entries are reclaimed right after the sweep refreshed the
	// future-tag liveness: resolved entries whose last heap pin died a
	// TTA-grace ago go; anything still owed an update stays.
	n.futures.sweep(n.heap, n.env.cfg.Clock.Now(), n.env.cfg.TTA)
	now := n.env.cfg.Clock.Now()

	var broadcasts sync.WaitGroup
	var byDst map[ids.NodeID][]dgcOut
	var beatDsts map[ids.NodeID]struct{}
	batch := n.flusher != nil
	for _, ao := range n.snapshotActivities() {
		if ao.nextBeat.After(now) {
			continue
		}
		res := ao.collector.Tick(now)
		next := res.NextBeat
		if next <= 0 {
			next = n.env.cfg.TTB
		}
		// Schedule slightly early so driver-wake jitter cannot make the
		// deadline miss a whole wake period.
		ao.nextBeat = now.Add(next - next/8)
		switch {
		case res.Terminated:
			n.destroy(ao, res.Reason)
			continue
		case ao.dummy && ao.wantStop.Load() && len(res.Messages) == 0:
			// A released handle whose edge drop has been fully broadcast:
			// the dummy has no referenced activities left and can go.
			n.destroy(ao, core.ReasonNone)
			continue
		}
		for _, ob := range res.Messages {
			if n.env.isDeadNode(ob.To.Node) {
				// A declared-dead destination gets no beats: the referenced
				// side is gone and the send would only fail fast anyway.
				continue
			}
			if ob.To.Node != n.id {
				if beatDsts == nil {
					beatDsts = make(map[ids.NodeID]struct{})
				}
				beatDsts[ob.To.Node] = struct{}{}
			}
			if batch {
				if byDst == nil {
					byDst = make(map[ids.NodeID][]dgcOut)
				}
				byDst[ob.To.Node] = append(byDst[ob.To.Node], dgcOut{ao: ao, ob: ob})
				continue
			}
			broadcasts.Add(1)
			go func(ao *ActiveObject, ob core.Outbound) {
				defer broadcasts.Done()
				n.sendDGC(ao, ob)
			}(ao, ob)
		}
	}
	for dst, outs := range byDst {
		broadcasts.Add(1)
		go func(dst ids.NodeID, outs []dgcOut) {
			defer broadcasts.Done()
			n.sendDGCBatch(dst, outs)
		}(dst, outs)
	}
	broadcasts.Wait()
	// Directory upkeep rides the beat: gossip fresh rebinds to nodes this
	// beat already exchanged traffic with (with batching on they share
	// the frame the DGC exchange opened), and re-announce a rotating
	// slice of origin entries to the current shard owners.
	n.locationBeat(beatDsts)
	// Partially flush and expire tree fan-out relay records (WIRE.md §10).
	n.expireRelays()
	// Durable activities whose checkpoint is due get a reserved-method
	// request: the snapshot then happens on the activity's own goroutine,
	// between two services, without stalling the pool.
	n.checkpointBeat(now)
	if ag := n.env.cluster; ag != nil {
		// The beat doubles as the failure detector's clock: advance it at
		// most once per TTB across all local drivers.
		ag.maybeTick(n)
	}
}

// sendDGC performs one DGC message/response exchange with the node hosting
// the referenced activity. The response rides back on the same connection
// (§2.2: no connectivity needed from referenced to referencer). An empty
// response (target gone) or a transport error is ignored: the TTA
// machinery owns all failure handling.
func (n *Node) sendDGC(ao *ActiveObject, ob core.Outbound) {
	payload := encodeDGCPayload(ob.To, ob.Msg)
	respBytes, err := n.transportCall(ob.To.Node, transport.ClassDGC, payload)
	if ag := n.env.cluster; ag != nil && ob.To.Node != n.id {
		// The heartbeat exchange doubles as the liveness probe: its
		// outcome feeds the failure detector for free.
		ag.noteExchange(ob.To.Node, err)
	}
	if err != nil || len(respBytes) == 0 {
		return
	}
	resp, err := core.DecodeResponse(respBytes)
	if err != nil {
		return
	}
	ao.collector.HandleResponse(ob.To, resp, n.env.cfg.Clock.Now())
}

// sendDGCBatch ships one beat's messages toward dst as a single batched
// exchange and dispatches the positional responses back to their
// collectors. Failure handling matches sendDGC: silence is a slow beat.
func (n *Node) sendDGCBatch(dst ids.NodeID, outs []dgcOut) {
	if len(outs) == 1 {
		n.sendDGC(outs[0].ao, outs[0].ob)
		return
	}
	entries := make([]dgcBatchEntry, len(outs))
	for i, o := range outs {
		entries[i] = dgcBatchEntry{Target: o.ob.To, Msg: o.ob.Msg}
	}
	respBytes, err := n.transportCall(dst, transport.ClassDGC, encodeDGCBatchPayload(entries))
	if ag := n.env.cluster; ag != nil && dst != n.id {
		ag.noteExchange(dst, err)
	}
	if err != nil || len(respBytes) == 0 {
		return
	}
	resps, err := decodeDGCBatchResponse(respBytes)
	if err != nil || len(resps) != len(outs) {
		return
	}
	now := n.env.cfg.Clock.Now()
	for i, r := range resps {
		if r != nil {
			outs[i].ao.collector.HandleResponse(outs[i].ob.To, *r, now)
		}
	}
}

// CollectNow forces one synchronous local heap sweep plus DGC beat on this
// node (useful in tests to avoid waiting for the ticker).
func (n *Node) CollectNow() {
	if n.env.cfg.DisableDGC {
		n.heap.Collect()
		n.futures.sweep(n.heap, n.env.cfg.Clock.Now(), n.env.cfg.TTA)
		return
	}
	n.beat()
}
