package active

import (
	"sync"

	"repro/internal/core"
	"repro/internal/transport"
)

// runDriver is the node's DGC driver goroutine: every TTB it runs a local
// heap sweep (which fires the weak-tag edge removals of §2.2) and then the
// collector broadcast of every hosted activity (Algorithm 2). Broadcasts
// go out in parallel, as §4.2 prescribes, so one slow peer cannot delay
// the rest of the beat.
func (n *Node) runDriver() {
	defer n.wg.Done()
	if n.env.cfg.DisableDGC {
		// Baseline mode: only the local heap is collected.
		for {
			select {
			case <-n.stop:
				return
			case <-n.env.cfg.Clock.After(n.env.cfg.TTB):
				n.heap.Collect()
			}
		}
	}
	// With adaptive beats (§7.1) the driver wakes at the fastest permitted
	// period and beats each activity at its own adapted pace.
	wake := n.env.cfg.TTB
	if n.env.cfg.Adaptive.Enabled && n.env.cfg.Adaptive.MinTTB < wake {
		wake = n.env.cfg.Adaptive.MinTTB
	}
	for {
		select {
		case <-n.stop:
			return
		case <-n.env.cfg.Clock.After(wake):
		}
		n.beat()
	}
}

// beat runs one driver iteration: a local sweep plus the broadcast of
// every activity whose beat is due.
func (n *Node) beat() {
	n.heap.Collect()
	now := n.env.cfg.Clock.Now()

	var broadcasts sync.WaitGroup
	for _, ao := range n.snapshotActivities() {
		if ao.nextBeat.After(now) {
			continue
		}
		res := ao.collector.Tick(now)
		next := res.NextBeat
		if next <= 0 {
			next = n.env.cfg.TTB
		}
		// Schedule slightly early so driver-wake jitter cannot make the
		// deadline miss a whole wake period.
		ao.nextBeat = now.Add(next - next/8)
		switch {
		case res.Terminated:
			n.destroy(ao, res.Reason)
			continue
		case ao.dummy && ao.wantStop.Load() && len(res.Messages) == 0:
			// A released handle whose edge drop has been fully broadcast:
			// the dummy has no referenced activities left and can go.
			n.destroy(ao, core.ReasonNone)
			continue
		}
		for _, ob := range res.Messages {
			broadcasts.Add(1)
			go func(ao *ActiveObject, ob core.Outbound) {
				defer broadcasts.Done()
				n.sendDGC(ao, ob)
			}(ao, ob)
		}
	}
	broadcasts.Wait()
}

// sendDGC performs one DGC message/response exchange with the node hosting
// the referenced activity. The response rides back on the same connection
// (§2.2: no connectivity needed from referenced to referencer). An empty
// response (target gone) or a transport error is ignored: the TTA
// machinery owns all failure handling.
func (n *Node) sendDGC(ao *ActiveObject, ob core.Outbound) {
	payload := encodeDGCPayload(ob.To, ob.Msg)
	respBytes, err := n.endpoint.Call(ob.To.Node, transport.ClassDGC, payload)
	if err != nil || len(respBytes) == 0 {
		return
	}
	resp, err := core.DecodeResponse(respBytes)
	if err != nil {
		return
	}
	ao.collector.HandleResponse(ob.To, resp, n.env.cfg.Clock.Now())
}

// CollectNow forces one synchronous local heap sweep plus DGC beat on this
// node (useful in tests to avoid waiting for the ticker).
func (n *Node) CollectNow() {
	if n.env.cfg.DisableDGC {
		n.heap.Collect()
		return
	}
	n.beat()
}
