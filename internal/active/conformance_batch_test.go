package active

// Cross-backend conformance of the PR 3 batching path: the same scenarios
// run over internal/simnet and internal/tcpnet with Config.BatchWindow
// enabled, pinning down that batching changes wire framing only — not
// delivery, ordering, accounting totals, or DGC correctness.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/tcpnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

// batchedSubstrates mirrors the conformance substrate table with the
// batching path switched on.
var batchedSubstrates = []struct {
	name string
	cfg  func(t *testing.T) Config
}{
	{"simnet", func(t *testing.T) Config {
		return Config{
			TTB: 10 * time.Millisecond, TTA: 25 * time.Millisecond,
			BatchWindow: 200 * time.Microsecond,
		}
	}},
	{"tcp", func(t *testing.T) Config {
		tr, err := tcpnet.New(tcpnet.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
			Transport: tr, BatchWindow: 200 * time.Microsecond,
		}
	}},
}

func forEachBatchedSubstrate(t *testing.T, f func(t *testing.T, e *Env)) {
	for _, s := range batchedSubstrates {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			e := NewEnv(s.cfg(t))
			t.Cleanup(e.Close)
			f(t, e)
		})
	}
}

// broadcastWorkload runs a fixed cross-node fan-out workload and returns
// the per-class traffic the environment accounted for it.
func broadcastWorkload(t *testing.T, e *Env) transport.Counters {
	t.Helper()
	caller := e.NewNode()
	nodes := []*Node{e.NewNode(), e.NewNode(), e.NewNode()}
	svc := NewService(Method("double", func(_ *Context, req int64) (int64, error) {
		return 2 * req, nil
	}))
	const members = 12
	handles := make([]*Handle, members)
	for i := range handles {
		local := nodes[i%len(nodes)].NewActive(fmt.Sprintf("m-%d", i), svc)
		defer local.Release()
		remote, err := caller.HandleFor(local.Ref())
		if err != nil {
			t.Fatal(err)
		}
		defer remote.Release()
		handles[i] = remote
	}
	g := NewGroup[int64, int64]("double", handles...)
	for round := 0; round < 3; round++ {
		fg, err := g.Broadcast(21)
		if err != nil {
			t.Fatal(err)
		}
		resps, err := fg.WaitAll(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range resps {
			if r != 42 {
				t.Fatalf("round %d resp[%d] = %d, want 42", round, i, r)
			}
		}
	}
	return e.Network().Snapshot()
}

// TestConformanceBatchedBroadcast runs the fan-out workload over both
// backends with batching on and checks correctness plus accounting
// parity: per-message accounting must make the batched counters equal
// the unbatched ones byte for byte (frame overhead is never accounted,
// so the §5 instrumentation cannot tell the paths apart).
func TestConformanceBatchedBroadcast(t *testing.T) {
	type mk struct {
		name      string
		unbatched func(t *testing.T) Config
		batched   func(t *testing.T) Config
	}
	backends := []mk{
		{
			name:      "simnet",
			unbatched: func(t *testing.T) Config { return Config{DisableDGC: true} },
			batched: func(t *testing.T) Config {
				return Config{DisableDGC: true, BatchWindow: 200 * time.Microsecond}
			},
		},
		{
			name: "tcp",
			unbatched: func(t *testing.T) Config {
				tr, err := tcpnet.New(tcpnet.Config{})
				if err != nil {
					t.Fatal(err)
				}
				return Config{DisableDGC: true, Transport: tr}
			},
			batched: func(t *testing.T) Config {
				tr, err := tcpnet.New(tcpnet.Config{})
				if err != nil {
					t.Fatal(err)
				}
				return Config{DisableDGC: true, Transport: tr, BatchWindow: 200 * time.Microsecond}
			},
		},
	}
	for _, be := range backends {
		be := be
		t.Run(be.name, func(t *testing.T) {
			t.Parallel()
			plainEnv := NewEnv(be.unbatched(t))
			t.Cleanup(plainEnv.Close)
			plain := broadcastWorkload(t, plainEnv)

			batchEnv := NewEnv(be.batched(t))
			t.Cleanup(batchEnv.Close)
			batched := broadcastWorkload(t, batchEnv)

			for _, class := range []transport.Class{transport.ClassApp, transport.ClassFuture} {
				if plain.Bytes[class] != batched.Bytes[class] {
					t.Errorf("%v bytes diverge: unbatched %d, batched %d",
						class, plain.Bytes[class], batched.Bytes[class])
				}
				if plain.Messages[class] != batched.Messages[class] {
					t.Errorf("%v messages diverge: unbatched %d, batched %d",
						class, plain.Messages[class], batched.Messages[class])
				}
			}
		})
	}
}

// TestConformanceBatchedScatter pins per-member payload routing through
// the batch path: each member must receive its own request, in order.
func TestConformanceBatchedScatter(t *testing.T) {
	forEachBatchedSubstrate(t, func(t *testing.T, e *Env) {
		caller := e.NewNode()
		worker := e.NewNode()
		svc := NewService(Method("idsq", func(_ *Context, req int64) (int64, error) {
			return req * req, nil
		}))
		const members = 8
		handles := make([]*Handle, members)
		reqs := make([]int64, members)
		for i := range handles {
			local := worker.NewActive(fmt.Sprintf("w-%d", i), svc)
			defer local.Release()
			remote, err := caller.HandleFor(local.Ref())
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Release()
			handles[i] = remote
			reqs[i] = int64(i + 1)
		}
		g := NewGroup[int64, int64]("idsq", handles...)
		fg, err := g.Scatter(reqs)
		if err != nil {
			t.Fatal(err)
		}
		resps, err := fg.WaitAll(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range resps {
			if want := reqs[i] * reqs[i]; r != want {
				t.Fatalf("resp[%d] = %d, want %d (scatter misrouted in batch)", i, r, want)
			}
		}
	})
}

// TestConformanceFlushOnClose parks one-way messages in a lane with an
// hour-long window and closes the environment: Close must flush them to
// the transport (observable as accounted traffic) instead of dropping
// them on the floor.
func TestConformanceFlushOnClose(t *testing.T) {
	for _, s := range []struct {
		name string
		cfg  func(t *testing.T) Config
	}{
		{"simnet", func(t *testing.T) Config {
			return Config{DisableDGC: true, BatchWindow: time.Hour}
		}},
		{"tcp", func(t *testing.T) Config {
			tr, err := tcpnet.New(tcpnet.Config{})
			if err != nil {
				t.Fatal(err)
			}
			return Config{DisableDGC: true, Transport: tr, BatchWindow: time.Hour}
		}},
	} {
		s := s
		t.Run(s.name, func(t *testing.T) {
			e := NewEnv(s.cfg(t))
			n1, n2 := e.NewNode(), e.NewNode()
			var served atomic.Int64
			h := n2.NewActive("sink", BehaviorFunc(
				func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
					served.Add(1)
					return wire.Null(), nil
				}))
			h1, err := n1.HandleFor(h.Ref())
			if err != nil {
				t.Fatal(err)
			}
			const sends = 10
			for i := 0; i < sends; i++ {
				if err := h1.Send("mark", wire.Int(int64(i))); err != nil {
					t.Fatal(err)
				}
			}
			// Nothing may have been written yet (the window is an hour) —
			// but nothing is required to wait either; what matters is the
			// flush on Close.
			e.Close()
			snap := e.Network().Snapshot()
			if got := snap.Messages[transport.ClassApp]; got != sends {
				t.Fatalf("%d app messages accounted after Close, want %d (flush-on-close)", got, sends)
			}
		})
	}
}

// connDropper is the chaos hook tcpnet exposes; simnet has no connections
// to drop, which is itself the conformance point — the scenario must pass
// with and without an actual drop.
type connDropper interface{ DropConnections() }

// TestConformanceReconnectMidBatch interleaves batched broadcasts with a
// forced connection drop: in-flight exchanges may fail, but the next
// batch must dial afresh and the runtime must keep answering.
func TestConformanceReconnectMidBatch(t *testing.T) {
	forEachBatchedSubstrate(t, func(t *testing.T, e *Env) {
		caller := e.NewNode()
		workers := []*Node{e.NewNode(), e.NewNode()}
		svc := NewService(Method("ping", func(_ *Context, req int64) (int64, error) {
			return req + 1, nil
		}))
		const members = 6
		handles := make([]*Handle, members)
		for i := range handles {
			local := workers[i%len(workers)].NewActive(fmt.Sprintf("p-%d", i), svc)
			defer local.Release()
			remote, err := caller.HandleFor(local.Ref())
			if err != nil {
				t.Fatal(err)
			}
			defer remote.Release()
			handles[i] = remote
		}
		g := NewGroup[int64, int64]("ping", handles...)
		for round := 0; round < 4; round++ {
			fg, err := g.Broadcast(int64(round))
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			resps, err := fg.WaitAll(10 * time.Second)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			for i, r := range resps {
				if r != int64(round)+1 {
					t.Fatalf("round %d resp[%d] = %d", round, i, r)
				}
			}
			// Kill every established connection between rounds; the next
			// batch must transparently redial.
			if dropper, ok := e.Network().(connDropper); ok {
				dropper.DropConnections()
			}
		}
	})
}

// TestConformanceBatchedReleaseCollects closes the loop on the batched
// DGC path: with batching on, beats travel as one exchange per
// destination node (dgcBatchTag payloads), and the collector must still
// reach the same verdicts — acyclic release and a distributed cycle.
func TestConformanceBatchedReleaseCollects(t *testing.T) {
	forEachBatchedSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()
		ha := n1.NewActive("a", relay{})
		hb := n2.NewActive("b", relay{})
		hc := n3.NewActive("c", relay{})
		for _, link := range []struct{ h, to *Handle }{{ha, hb}, {hb, hc}, {hc, ha}} {
			if _, err := link.h.CallSync("set:peer", link.to.Ref(), 5*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		ha.Release()
		hb.Release()
		hc.Release()
		if _, err := e.WaitCollected(0, 15*time.Second); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		if st.Collected[core.ReasonCyclic] < 1 {
			t.Fatalf("collected = %+v, want a cyclic consensus over the batched DGC path", st.Collected)
		}
	})
}
