package active

// Live activity migration (WIRE.md §7). An activity's identifier embeds
// its birth node, and the whole runtime routes by that node — so a
// migrating activity takes a *new* identity on the destination and leaves
// a *forwarder* under the old one. The forwarder relays requests, keeps
// answering DGC heartbeats, holds a reference-graph edge to the new
// identity (so the migrated activity cannot be collected while stale
// holders exist), and pushes redirect envelopes at every contact — a
// request relay or a heartbeat — so holders rebind to the new identity on
// first contact. Once every holder has rebound, nobody references the old
// identity anymore: the forwarder goes TTA-alone and reclaims itself
// through the exact same reference-listing sweep that collects any other
// acyclic garbage. Chains of migrations collapse the same way: each hop's
// redirects are folded into a path-compressed rebind table per node.
//
// Only the wire-expressible part of an activity moves: its persistent
// state (Context.Store entries), its pending request queue, and any
// first-class futures stored in state (they re-subscribe at their home
// node from the destination). The behavior itself is Go code and cannot
// travel; migratable activities are created from a registered behavior
// kind (RegisterBehavior + Node.SpawnKind or WithKind), and the
// destination re-instantiates the behavior from the same registry — which
// is process-global, so migration works across OS processes over the TCP
// substrate as long as both ends registered the kind.

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Migration errors.
var (
	// ErrNotMigratable reports a migration attempt on an activity that was
	// not created from a registered behavior kind (the destination could
	// not re-instantiate its behavior).
	ErrNotMigratable = errors.New("active: activity is not migratable (no registered behavior kind)")
	// ErrUnknownBehaviorKind reports a migration arriving at a node whose
	// process never registered the activity's behavior kind.
	ErrUnknownBehaviorKind = errors.New("active: unknown behavior kind")
	// ErrMigrationFailed wraps a destination-side failure reported back to
	// the migration's initiator.
	ErrMigrationFailed = errors.New("active: migration failed")
)

// migrateMethod is the reserved method name Handle.Migrate sends. The
// serve loop intercepts it — behaviors never see it — so a migration
// request waits its turn in the queue under the activity's ServicePolicy
// like any other request, and the activity moves between two services,
// never mid-service.
const migrateMethod = "\x00migrate"

// behaviorRegistry maps behavior kinds to factories, process-globally:
// two processes sharing a TCP deployment register the same kinds and an
// activity can then migrate between them.
var behaviorRegistry = struct {
	mu    sync.RWMutex
	kinds map[string]registeredKind
}{kinds: make(map[string]registeredKind)}

type registeredKind struct {
	factory func() Behavior
	opts    []SpawnOption
}

// RegisterBehavior registers a behavior kind: a factory producing a fresh
// Behavior plus the spawn options (e.g. WithPolicy) every instance of the
// kind is created with — at the original spawn and again at every
// migration destination, so the service discipline survives the move.
// Registering an existing kind replaces it.
func RegisterBehavior(kind string, factory func() Behavior, opts ...SpawnOption) {
	if kind == "" || factory == nil {
		panic("active: RegisterBehavior needs a kind and a factory")
	}
	behaviorRegistry.mu.Lock()
	behaviorRegistry.kinds[kind] = registeredKind{factory: factory, opts: opts}
	behaviorRegistry.mu.Unlock()
}

func lookupBehaviorKind(kind string) (registeredKind, bool) {
	behaviorRegistry.mu.RLock()
	rk, ok := behaviorRegistry.kinds[kind]
	behaviorRegistry.mu.RUnlock()
	return rk, ok
}

// SpawnKind creates an activity from a registered behavior kind and
// returns a handle to it. The activity is migratable: Handle.Migrate or
// Context.MigrateTo can move it to any node whose process registered the
// same kind.
func (n *Node) SpawnKind(name, kind string) (*Handle, error) {
	rk, ok := lookupBehaviorKind(kind)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBehaviorKind, kind)
	}
	opts := append(append([]SpawnOption(nil), rk.opts...), WithKind(kind))
	return n.NewActive(name, rk.factory(), opts...), nil
}

// MigrateTo asks the runtime to move this activity to dst after the
// current service completes. The serve loop performs the move between two
// services; pending requests (including any that arrive during the move)
// follow the activity and are served at the destination under the same
// policy. It returns an error immediately if the activity is not
// migratable; a destination-side failure leaves the activity serving
// where it is.
func (c *Context) MigrateTo(dst ids.NodeID) error {
	if c.ao.kind == "" {
		return ErrNotMigratable
	}
	if dst == 0 {
		return fmt.Errorf("%w: zero destination node", ErrMigrationFailed)
	}
	c.ao.migrateDst.Store(uint64(dst))
	return nil
}

// Migrate moves the handle's target activity to dst. The move is itself a
// request: it waits its queue turn under the activity's service policy,
// then ships the activity's state and pending queue to dst, installs a
// forwarder under the old identity, and resolves the returned future with
// the activity's new reference. Calls through this handle keep working
// throughout — first relayed by the forwarder, then rebound by its
// redirect — so callers never observe the move except through the new
// reference. A failed migration resolves the future with the error and
// leaves the activity serving at its old home.
func (h *Handle) Migrate(dst ids.NodeID) (*Future, error) {
	if h.released.Load() {
		return nil, fmt.Errorf("migrate: %w", ErrHandleReleased)
	}
	return h.Call(migrateMethod, wire.Int(int64(dst)))
}

// serveMigrate handles an intercepted migrateMethod request on the
// activity's own goroutine. It reports whether the activity migrated (the
// serve loop then exits: the queue has moved and the object is a
// forwarder now). nested is true when the request was selected by
// Context.ServeNext from inside a running service: migrating then would
// strand the outer service, so it is refused.
func (ao *ActiveObject) serveMigrate(item *queuedRequest, nested bool) bool {
	reply := func(v wire.Value, err error) {
		if item.req.Future.IsZero() {
			return
		}
		u := futureUpdate{Future: item.req.Future}
		if err != nil {
			u.Failed = true
			u.Err = err.Error()
		} else {
			u.Value = v
		}
		ao.node.replyTo(item.req, u)
	}
	defer ao.node.heap.RemoveRoot(item.argsRoot)
	if nested {
		reply(wire.Null(), fmt.Errorf("%w: refused mid-service (ServeNext)", ErrMigrationFailed))
		return false
	}
	dst := ids.NodeID(item.req.Args.AsInt())
	if dst == 0 {
		reply(wire.Null(), fmt.Errorf("%w: zero destination node", ErrMigrationFailed))
		return false
	}
	newID, err := ao.node.migrateOut(ao, dst)
	if err != nil {
		reply(wire.Null(), err)
		return false
	}
	reply(wire.Ref(newID), nil)
	// A migration to the node the activity already lives on is a no-op
	// resolved with the unchanged identity: the serve loop must keep
	// running — nothing moved and no forwarder was installed.
	return newID != ao.id
}

// migrateOut performs the source side of a migration on the activity's
// own goroutine (no service is running): it snapshots state and queue
// into a migration envelope, ships it to dst as a request/response
// exchange, and — on success — turns ao into a forwarder for the new
// identity. On failure the activity is left fully operational.
func (n *Node) migrateOut(ao *ActiveObject, dst ids.NodeID) (ids.ActivityID, error) {
	if ao.kind == "" {
		return ids.Nil, ErrNotMigratable
	}
	if dst == n.id {
		return ao.id, nil // already home: a no-op, resolved with the current identity
	}
	if ao.registered.Load() {
		if _, sameEnv := n.env.node(dst); !sameEnv {
			// The registry is per-environment: a registered activity moving
			// to a foreign process would leave a dangling name behind.
			return ids.Nil, fmt.Errorf("%w: registered activity cannot leave its environment", ErrMigrationFailed)
		}
	}
	// Drain the pending queue into the envelope. The queue stays open:
	// requests arriving during the exchange are forwarded right after the
	// forwarder is installed, preserving per-sender FIFO (they are younger
	// than everything in the envelope).
	drained := ao.queue.drainAll()
	m := n.captureEnvelope(ao, drained)
	respBytes, err := n.transportCall(dst, transport.ClassApp, encodeMigration(m))
	if err == nil {
		var newID ids.ActivityID
		newID, err = decodeMigrateResponse(respBytes)
		if err == nil {
			for _, it := range drained {
				n.heap.RemoveRoot(it.argsRoot)
				// The item now lives on the destination and its reply will
				// reach the root directly: detach it from any tree fan-out
				// relay record it arrived through.
				n.relayDetach(it.req.Via, it.req.Future)
			}
			n.installForwarder(ao, newID)
			return newID, nil
		}
	}
	// The move failed (unknown kind at dst, unreachable, ...): put the
	// drained requests back so the activity keeps serving them here. If
	// the activity was destroyed during the exchange, dispose of them the
	// way its close would have: release the pins, fail the futures.
	ok, schedule := ao.queue.requeue(drained)
	if schedule && !ao.dummy {
		n.pool.schedule(ao)
	}
	if !ok {
		for _, it := range drained {
			n.heap.RemoveRoot(it.argsRoot)
			if !it.req.Future.IsZero() {
				n.replyTo(it.req, futureUpdate{
					Future: it.req.Future,
					Failed: true,
					Err:    ErrUnknownActivity.Error(),
				})
			}
		}
	}
	return ids.Nil, err
}

// captureEnvelope snapshots an activity's wire-expressible half — name,
// kind, persistent state, and the given queue items — into a migration
// envelope. Migration calls it with the drained queue; checkpointing
// calls it with a non-destructive snapshot. Must run on the activity's
// own goroutine with no service in flight, so the state is quiescent.
func (n *Node) captureEnvelope(ao *ActiveObject, items []*queuedRequest) migration {
	m := migration{Old: ao.id, Name: ao.name, Kind: ao.kind}
	ao.rootsMu.Lock()
	for key, e := range ao.stateRoots {
		m.State = append(m.State, migrationState{Key: key, Value: n.heap.Materialize(e.obj)})
	}
	ao.rootsMu.Unlock()
	for _, it := range items {
		m.Queue = append(m.Queue, migrationRequest{
			Sender: it.req.Sender,
			Future: it.req.Future,
			Method: it.req.Method,
			Args:   it.req.Args,
		})
	}
	return m
}

// restoreFromEnvelope re-instantiates an activity from a migration
// envelope: behavior from the kind registry, state interned under the
// (possibly new) identity with every reference and future re-bound, and
// the envelope's queue either replayed in order (failQueue nil — the
// migration path) or failed with failQueue (the recovery and failover
// paths, where replaying a request that may already have executed would
// break at-most-once delivery). keepID restores under the envelope's
// own identity — crash recovery, where holders elsewhere still route by
// it — instead of minting a fresh one.
func (n *Node) restoreFromEnvelope(m migration, keepID bool, failQueue error) (*ActiveObject, error) {
	rk, ok := lookupBehaviorKind(m.Kind)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBehaviorKind, m.Kind)
	}
	opts := append(append([]SpawnOption(nil), rk.opts...), WithKind(m.Kind))
	if keepID {
		opts = append(opts, withForcedID(m.Old))
	}
	ao := n.newActivity(m.Name, rk.factory(), false, opts...)
	now := n.env.cfg.Clock.Now()
	var scratch [8]ids.ActivityID
	// State first: by the time the first replayed request is served, every
	// Load must see the restored state.
	for _, e := range m.State {
		v := e.Value
		if m.Old != ao.id {
			v = wire.Rebind(v, m.Old, ao.id)
		}
		for _, t := range v.Refs(scratch[:0]) {
			ao.collector.AddReferenced(t, now)
		}
		// Futures stored in state adopt local proxies and re-subscribe at
		// their home node: the sender-side holder registration of a normal
		// payload delivery never happened for an envelope.
		n.adoptFutures(v, ao.id, true)
		obj, root := n.heap.InternRooted(ao.id, v)
		ao.rootsMu.Lock()
		ao.stateRoots[e.Key] = stateEntry{obj: obj, root: root}
		ao.rootsMu.Unlock()
	}
	for _, q := range m.Queue {
		if failQueue != nil {
			// A checkpointed in-flight request may already have executed
			// between the checkpoint and the crash: fail it rather than
			// risk running it twice. The update is dropped harmlessly if
			// the future's home node died with the sender.
			if !q.Future.IsZero() {
				n.sendFutureUpdate(q.Future, futureUpdate{
					Future: q.Future,
					Failed: true,
					Err:    failQueue.Error(),
				})
			}
			continue
		}
		req := request{
			Target: ao.id,
			Sender: q.Sender,
			Future: q.Future,
			Method: q.Method,
			Args:   wire.Rebind(q.Args, m.Old, ao.id),
		}
		item := getQueued(req)
		if refs := req.Args.Refs(scratch[:0]); len(refs) > 0 {
			for _, t := range refs {
				ao.collector.AddReferenced(t, now)
			}
			_, item.argsRoot = n.heap.InternRooted(ao.id, req.Args)
			n.adoptFutures(req.Args, ao.id, true)
		}
		ao.enqueue(item)
	}
	return ao, nil
}

// installForwarder turns ao into the forwarder for its migrated self:
// queue closed (late arrivals relay through the forward target), state
// roots released (the state lives at the destination now), an edge to the
// new identity installed so the migrated activity stays alive while stale
// holders exist, and the activity reported idle so the collector's
// ordinary TTA machinery reclaims the forwarder once every holder has
// rebound and its beats have ceased.
func (n *Node) installForwarder(ao *ActiveObject, newID ids.ActivityID) {
	now := n.env.cfg.Clock.Now()
	ao.fwd.Store(&newID)
	// Rebind this node immediately: local holders (handles, co-located
	// activities) never round-trip through the forwarder, and their old
	// stub tags start dying at the very next sweep.
	n.applyRedirect(ao.id, newID)
	// Close intake: pushes race-free — anything that slipped in between
	// drain and close is returned here and relayed to the new home.
	for _, it := range ao.queue.close(n.heap) {
		n.forwardQueued(ao, it.req)
	}
	// The forwarder's own edge to the migrated activity: referenced +
	// pinned, so the forwarder beats it and the DGC cannot reclaim the
	// migrated activity while the forwarder (standing in for every holder
	// that has not rebound yet) is alive.
	ao.collector.AddReferenced(newID, now)
	_, root := n.heap.NewStubRooted(ao.id, newID)
	ao.rootsMu.Lock()
	ao.extraRoots[root] = struct{}{}
	ao.rootsMu.Unlock()
	// State moved: drop its pins. The stub tags die at the next sweep,
	// firing LostReferenced for everything the activity referenced — the
	// destination holds its own edges now.
	releaseStateRoots(ao, n)
	// Home futures owned by the migrated activity stay in this node's
	// table (their identity names this node): updates still arrive here
	// and fan out to wherever the future was forwarded — including the
	// destination, which re-subscribes for every future stored in state.
	// The forwarder never consumes their values, so drop pins at
	// resolution instead of holding them until the table sweep.
	n.futures.migrateOwned(ao.id)
	// The forwarder serves nothing: it is idle from the DGC's point of
	// view, and once the last stale holder rebinds (or dies), its beats
	// stop and the TTA sweep reclaims it like any other alone activity.
	ao.idleFlag.Store(true)
	ao.collector.BecomeIdle(now)
	if ao.registered.Load() {
		n.env.rebindRegistered(ao.id, newID)
	}
	// The activity lives under its new identity now; its checkpoints do
	// too. Erase the old-identity checkpoint so a later Recover cannot
	// resurrect the pre-migration ghost alongside the migrated activity.
	if ao.kind != "" && n.env.cfg.Store != nil {
		_ = n.env.cfg.Store.Delete(ao.id)
	}
	// Tell the directory: the source is an origin of this mapping, so it
	// re-announces to the shard as owners change, long after the
	// forwarder itself has collapsed.
	n.announceLocation(ao.id, newID)
}

// releaseStateRoots drops only the state pins (installForwarder keeps the
// freshly added extraRoots: the stub pinning the forward target).
func releaseStateRoots(ao *ActiveObject, n *Node) {
	ao.rootsMu.Lock()
	defer ao.rootsMu.Unlock()
	for _, e := range ao.stateRoots {
		n.heap.RemoveRoot(e.root)
	}
	ao.stateRoots = make(map[string]stateEntry)
}

// handleMigrateIn is the destination side: re-instantiate the behavior
// from the registry, restore state (rewriting self-references to the new
// identity and re-binding every reference and future exactly as a
// delivered payload would), then replay the pending queue in order. The
// response carries the new identity (or the failure).
func (n *Node) handleMigrateIn(payload []byte) []byte {
	m, err := decodeMigration(payload)
	if err != nil {
		return encodeMigrateResponse(ids.Nil, err)
	}
	ao, err := n.restoreFromEnvelope(m, false, nil)
	if err != nil {
		return encodeMigrateResponse(ids.Nil, err)
	}
	// The destination knows the mapping too: local senders still holding
	// the old reference route directly instead of round-tripping through
	// the forwarder — and as the mapping's second origin it keeps the
	// directory shard populated even if the source node dies.
	n.addRebind(m.Old, ao.id)
	n.announceLocation(m.Old, ao.id)
	return encodeMigrateResponse(ao.id, nil)
}

// forwardQueued relays one request that was addressed to a migrated
// activity: target (and any self-references in the arguments) rewritten
// to the new identity, then re-sent through the ordinary routing path —
// which resolves further rebinds, so a chain of migrations is crossed in
// one hop per forwarder. The sender's node is told to rebind.
func (n *Node) forwardQueued(ao *ActiveObject, req request) {
	newID := ao.forwardTarget()
	if newID.IsNil() {
		return
	}
	req.Target = newID
	req.Args = wire.Rebind(req.Args, ao.id, newID)
	_ = n.sendRequest(req)
	n.sendRedirect(req.Sender.Node, ao.id, newID)
}

// forwardRaw relays a freshly arrived wire request (header decoded, args
// still raw) through a forwarder. The args are decoded without hooks —
// edges bind at the final recipient, not at the relay — rebound, and
// re-sent.
func (n *Node) forwardRaw(oldID, newID ids.ActivityID, req request, rawArgs []byte) {
	var dec wire.Decoder
	args, err := dec.Decode(rawArgs)
	if err != nil {
		return
	}
	req.Target = newID
	req.Args = wire.Rebind(args, oldID, newID)
	_ = n.sendRequest(req)
	n.sendRedirect(req.Sender.Node, oldID, newID)
}

// sendRedirect ships a rebinding notice to dst (applying it locally when
// dst is this node). Redirects are fire-and-forget: a lost notice only
// means the holder pays one more forwarder hop (or one more heartbeat)
// before the next one.
func (n *Node) sendRedirect(dst ids.NodeID, old, new ids.ActivityID) {
	if old.IsNil() || new.IsNil() || old == new {
		return
	}
	if dst == n.id {
		n.applyRedirect(old, new)
		return
	}
	_ = n.transportSend(dst, transport.ClassApp, encodeRedirect(old, new), true)
}

// applyRedirect rebinds this node to an activity's new identity: the
// rebind table (send routing), every heap stub (state and pinned
// payloads), and the reference-graph edges of every activity that held
// one. The old stub tags die at the next sweep, firing the ordinary
// LostReferenced — which is what stops this node's beats toward the
// forwarder and lets it collapse.
func (n *Node) applyRedirect(old, new ids.ActivityID) {
	if old.IsNil() || new.IsNil() || old == new {
		return
	}
	n.addRebind(old, new)
	owners := n.heap.RebindStubs(old, new)
	if len(owners) == 0 {
		return
	}
	now := n.env.cfg.Clock.Now()
	for _, owner := range owners {
		if ao, ok := n.activity(owner); ok {
			ao.collector.AddReferenced(new, now)
		}
	}
}

// addRebind records old → new in the node's learned-location cache
// (the bounded LRU that replaced the lifetime rebind table; path
// compression on both sides lives in the cache layer now).
func (n *Node) addRebind(old, new ids.ActivityID) {
	n.locCache.Add(old, new)
}

// resolveChain follows the rebind chain from id to its freshest identity.
func resolveChain(rebinds map[ids.ActivityID]ids.ActivityID, id ids.ActivityID) ids.ActivityID {
	for i := 0; i < len(rebinds); i++ {
		next, ok := rebinds[id]
		if !ok {
			return id
		}
		id = next
	}
	return id
}

// resolveRebind rewrites a send target through the node's location
// cache (identity on a miss — the overwhelmingly common case).
func (n *Node) resolveRebind(id ids.ActivityID) ids.ActivityID {
	return n.locCache.Resolve(id)
}

// forwardTarget returns the new identity an activity forwards to (Nil for
// a live, unmigrated activity).
func (ao *ActiveObject) forwardTarget() ids.ActivityID {
	if p := ao.fwd.Load(); p != nil {
		return *p
	}
	return ids.Nil
}

// migrateOwned prepares the home future entries of a migrated activity
// for their post-migration life: kept in the table (their identity names
// this node; updates and late subscriptions must keep landing here),
// marked emigrated (resolution binds no owner-side consumer pin — the
// real owner lives at the destination now — and the forwarder's eventual
// destruction must not fail them), and shared (so resolution retains
// them for the TTA-grace window late subscribers rely on). Pins for
// co-located *holders* of such a future are untouched: those activities
// still consume the value here and keep their pins until they do.
func (t *futureTable) migrateOwned(owner ids.ActivityID) {
	var owned []*Future
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, f := range s.pending {
			if f.owner == owner && !f.proxy {
				owned = append(owned, f)
			}
		}
		s.mu.Unlock()
	}
	for _, f := range owned {
		f.emigrated.Store(true)
		f.shared.Store(true)
	}
}
