package active

// Race coverage for the parallel-serve worker pool and the sharded hot
// tables (futureTable, localgc heap). Every scenario runs on both
// substrates and is written to be meaningful under `go test -race
// -shuffle=on`: many goroutines hammer one activity (worker-pool
// affinity and future-shard locks), churn activities concurrently (heap
// shard locks), migrate under parallel load, and drive Context.ServeNext
// while the pool is scheduling around it.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestConformanceHotActivityManyCallers pins the parallel-serve
// invariants under contention: one activity called from many nodes at
// once must serve every request exactly once (per-activity affinity: no
// two workers drain it concurrently) and preserve FIFO per sender.
func TestConformanceHotActivityManyCallers(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		const (
			callers = 4
			perNode = 3 // goroutines per caller node
			calls   = 40
		)
		var inService atomic.Int32
		var overlap atomic.Bool
		// lastSeen tracks FIFO per sender key; only the serving
		// goroutine touches it, so any data race the detector finds here
		// is a real affinity violation.
		lastSeen := map[string]int64{}
		var served atomic.Int64
		host := e.NewNode()
		h := host.NewActive("hot", NewService(
			Method("mark", func(_ *Context, req struct {
				Who string `wire:"who"`
				Seq int64  `wire:"seq"`
			}) (int64, error) {
				if inService.Add(1) != 1 {
					overlap.Store(true)
				}
				if last, ok := lastSeen[req.Who]; ok && req.Seq != last+1 {
					return 0, fmt.Errorf("sender %s: seq %d after %d (FIFO per sender violated)", req.Who, req.Seq, last)
				}
				lastSeen[req.Who] = req.Seq
				inService.Add(-1)
				return served.Add(1), nil
			})))
		defer h.Release()

		var wg sync.WaitGroup
		errs := make(chan error, callers*perNode)
		for c := 0; c < callers; c++ {
			caller := e.NewNode()
			hc, err := caller.HandleFor(h.Ref())
			if err != nil {
				t.Fatal(err)
			}
			defer hc.Release()
			for g := 0; g < perNode; g++ {
				// One stub per goroutine: FIFO is guaranteed per sending
				// activity, and each goroutine keys its own lane.
				who := fmt.Sprintf("c%d-g%d", c, g)
				stub := NewStub[struct {
					Who string `wire:"who"`
					Seq int64  `wire:"seq"`
				}, int64](hc, "mark")
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 1; i <= calls; i++ {
						if _, err := stub.CallSync(struct {
							Who string `wire:"who"`
							Seq int64  `wire:"seq"`
						}{Who: who, Seq: int64(i)}, 30*time.Second); err != nil {
							errs <- fmt.Errorf("%s call %d: %w", who, i, err)
							return
						}
					}
				}()
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		if overlap.Load() {
			t.Error("two workers served the same activity concurrently")
		}
		if got, want := served.Load(), int64(callers*perNode*calls); got != want {
			t.Errorf("served %d requests, want %d", got, want)
		}
	})
}

// TestConformanceChurnStormShardedHeap hammers the sharded localgc heap
// and future table from many goroutines at once: concurrent spawn, call,
// release across every heap shard, with the DGC live.
func TestConformanceChurnStormShardedHeap(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		const (
			spawners = 8
			rounds   = 25
		)
		host := e.NewNode()
		caller := e.NewNode()
		var wg sync.WaitGroup
		errs := make(chan error, spawners)
		for s := 0; s < spawners; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					h := host.NewActive(fmt.Sprintf("churn-%d-%d", s, i), relay{})
					hc, err := caller.HandleFor(h.Ref())
					if err != nil {
						errs <- err
						return
					}
					got, err := hc.CallSync("echo", wire.Int(int64(i)), 30*time.Second)
					if err == nil && got.AsInt() != int64(i) {
						err = fmt.Errorf("echo = %v, want %d", got, i)
					}
					hc.Release()
					h.Release()
					if err != nil {
						errs <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
}

// TestConformanceMigrateUnderParallelLoad migrates an activity back and
// forth while callers on several nodes keep hammering it: every call
// must complete correctly through whatever mix of direct delivery,
// forwarding and redirects the moves produce.
func TestConformanceMigrateUnderParallelLoad(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		RegisterBehavior("parallel/relay", func() Behavior { return relay{} })
		nodeA, nodeB := e.NewNode(), e.NewNode()
		h, err := nodeA.SpawnKind("mover", "parallel/relay")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Release()

		const (
			callers = 3
			calls   = 30
			moves   = 6
		)
		var wg sync.WaitGroup
		errs := make(chan error, callers+1)
		stop := make(chan struct{})
		for c := 0; c < callers; c++ {
			caller := e.NewNode()
			hc, err := caller.HandleFor(h.Ref())
			if err != nil {
				t.Fatal(err)
			}
			defer hc.Release()
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					want := int64(c*1000 + i)
					got, err := hc.CallSync("echo", wire.Int(want), 30*time.Second)
					if err != nil {
						errs <- fmt.Errorf("caller %d call %d: %w", c, i, err)
						return
					}
					if got.AsInt() != want {
						errs <- fmt.Errorf("caller %d: echo = %v, want %d", c, got, want)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(stop)
			targets := []*Node{nodeB, nodeA}
			for m := 0; m < moves; m++ {
				fut, err := h.Migrate(targets[m%2].ID())
				if err != nil {
					// A move can race a concurrent move or land on the
					// current host; both are defined refusals, not failures.
					continue
				}
				if _, err := fut.Wait(30 * time.Second); err != nil {
					errs <- fmt.Errorf("move %d: %w", m, err)
					return
				}
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
	})
}

// TestConformanceServeNextUnderPool drives the selective-serve primitive
// while the worker pool is scheduling the activity: a service blocks in
// Context.ServeNext waiting for an "unblock" request that arrives later
// from another node, with unrelated requests queued around it. The
// pool's affinity must keep the nested serve on the same drain, and the
// selective pop must not lose or double-serve the queued work.
func TestConformanceServeNextUnderPool(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		host := e.NewNode()
		var order []string
		h := host.NewActive("selective", NewService(
			Method("gate", func(ctx *Context, _ struct{}) (struct{}, error) {
				order = append(order, "gate")
				// Serve exactly one "unblock" before returning, whatever
				// else is queued.
				if err := ctx.ServeNext(ServeOldest("unblock")); err != nil {
					return struct{}{}, err
				}
				order = append(order, "gate-done")
				return struct{}{}, nil
			}),
			Method("unblock", func(_ *Context, _ struct{}) (struct{}, error) {
				order = append(order, "unblock")
				return struct{}{}, nil
			}),
			Method("noise", func(_ *Context, _ struct{}) (struct{}, error) {
				order = append(order, "noise")
				return struct{}{}, nil
			})))
		defer h.Release()

		caller := e.NewNode()
		hc, err := caller.HandleFor(h.Ref())
		if err != nil {
			t.Fatal(err)
		}
		defer hc.Release()

		gate := NewStub[struct{}, struct{}](hc, "gate")
		noise := NewStub[struct{}, struct{}](hc, "noise")
		unblock := NewStub[struct{}, struct{}](hc, "unblock")

		gateFut, err := gate.Call(struct{}{})
		if err != nil {
			t.Fatal(err)
		}
		// Queue noise behind the blocked gate, then the unblock it waits
		// for; FIFO per sender makes this ordering deterministic.
		var noiseFuts []*TypedFuture[struct{}]
		for i := 0; i < 3; i++ {
			nf, err := noise.Call(struct{}{})
			if err != nil {
				t.Fatal(err)
			}
			noiseFuts = append(noiseFuts, nf)
		}
		if _, err := unblock.CallSync(struct{}{}, 30*time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := gateFut.Wait(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		for i, nf := range noiseFuts {
			if _, err := nf.Wait(30 * time.Second); err != nil {
				t.Fatalf("noise %d: %v", i, err)
			}
		}
		// The gate must have consumed the unblock inside ServeNext:
		// gate, unblock, gate-done, then the noise backlog.
		want := []string{"gate", "unblock", "gate-done", "noise", "noise", "noise"}
		if len(order) != len(want) {
			t.Fatalf("order = %v, want %v", order, want)
		}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order[%d] = %s, want %s (full: %v)", i, order[i], want[i], order)
			}
		}
	})
}
