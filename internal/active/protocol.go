// Package active is the live active-object runtime: the Go equivalent of
// the ProActive middleware the paper implements its DGC in (§4.1).
//
// An active object is a remotely accessible object with its own thread
// (goroutine) and request queue. Method calls are asynchronous and return a
// future. Every value crossing an activity boundary goes through the wire
// codec, enforcing the no-sharing property and giving the DGC its
// deserialization hook. Each node (process) owns a localgc.Heap whose stub
// tags feed edge-removal events to the per-activity core.Collector, and a
// driver goroutine broadcasts DGC messages every TTB.
package active

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/wire"
)

// Envelope kinds for node-to-node payloads.
const (
	envRequest byte = iota + 1
	envFutureUpdate
	envFutureSubscribe
	// envRedirect tells a holder node that an activity moved: the payload
	// carries (old, new) identity and the receiver rebinds every local
	// stub, edge and pending send toward the old identity (WIRE.md §7).
	envRedirect
	// envMigrate is the migration envelope: an activity's serialized state
	// (payload, pending queue), shipped source → destination as a
	// request/response exchange whose response carries the new identity.
	envMigrate
	// envFanOut carries a tree-structured group scatter (WIRE.md §10): a
	// set of per-destination request bundles a relay node delivers
	// locally and/or splits among at most FanOutDegree child relays.
	envFanOut
	// envFanAgg carries aggregated group replies one tree hop toward the
	// root: embedded future-update envelopes plus the parent relay
	// record they belong to (key 0 = the receiver is the root).
	envFanAgg
)

// FutureID identifies a future on its home node (the node that created
// it). The zero value means "no future expected" (one-way call). It is an
// alias of ids.FutureID because first-class futures travel across nodes —
// inside values (wire.FutureRef) as well as in envelopes.
type FutureID = ids.FutureID

// request is the application-level request envelope.
type request struct {
	// Target is the activity being called.
	Target ids.ActivityID
	// Sender is the calling activity (an active object or a dummy handle).
	Sender ids.ActivityID
	// Future is where the result should be delivered (zero for one-way).
	Future FutureID
	// Method is the behavior method name.
	Method string
	// Args is the deep-copied argument value.
	Args wire.Value
	// Via is the node-local relay-record key a tree fan-out delivery
	// carries (WIRE.md §10): the reply is intercepted and aggregated
	// hop-by-hop instead of traveling straight to the future's home.
	// Zero — the ordinary case — replies directly. Never serialized: a
	// request leaving the node detaches from its record first.
	Via uint64
}

// errBadEnvelope reports a malformed node-to-node payload.
var errBadEnvelope = errors.New("active: malformed envelope")

// appendRequestHeader encodes everything of a request envelope up to (not
// including) the args value.
func appendRequestHeader(buf []byte, req request) []byte {
	buf = append(buf, envRequest)
	buf = appendActivityID(buf, req.Target)
	buf = appendActivityID(buf, req.Sender)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Future.Node))
	buf = binary.LittleEndian.AppendUint32(buf, req.Future.Seq)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Method)))
	buf = append(buf, req.Method...)
	return buf
}

func encodeRequest(req request) []byte {
	buf := appendRequestHeader(make([]byte, 0, 64+wire.EncodedSize(req.Args)), req)
	return wire.Encode(buf, req.Args)
}

// encodeRequestShared builds a request envelope around pre-encoded args
// bytes: a broadcast encodes its shared arguments once and stamps only the
// per-member header, instead of re-serializing the value N times.
func encodeRequestShared(req request, argsEnc []byte) []byte {
	buf := appendRequestHeader(make([]byte, 0, 64+len(argsEnc)), req)
	return append(buf, argsEnc...)
}

// decodeRequest decodes a request envelope. The wire decoding of Args is
// done by the caller (node.deliverRequest) so that the OnRef hook can be
// bound to the recipient activity; here only the header is parsed and the
// raw args bytes returned.
func decodeRequestHeader(buf []byte) (request, []byte, error) {
	if len(buf) < 1+8+8+8+4 || buf[0] != envRequest {
		return request{}, nil, fmt.Errorf("%w: request header", errBadEnvelope)
	}
	buf = buf[1:]
	var req request
	req.Target, buf = readActivityID(buf)
	req.Sender, buf = readActivityID(buf)
	req.Future.Node = ids.NodeID(binary.LittleEndian.Uint32(buf))
	req.Future.Seq = binary.LittleEndian.Uint32(buf[4:])
	buf = buf[8:]
	mlen := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint32(len(buf)) < mlen {
		return request{}, nil, fmt.Errorf("%w: truncated method", errBadEnvelope)
	}
	req.Method = string(buf[:mlen])
	return req, buf[mlen:], nil
}

// futureUpdate is the result envelope flowing callee → caller (§4.1
// "Reference Orientation": it never wakes an idle activity). With
// first-class futures (WIRE.md §6) the same envelope also propagates a
// resolution along the forwarding chain: every node registered as a
// holder of the future receives one, addressed by the future's home
// identity, so a forwarded result reaches whichever activity finally
// touches it. The decoded value's references DO create edges at the
// receiving holder (the §2.2 deserialization hook), exactly as a request
// payload's would.
type futureUpdate struct {
	Future FutureID
	// Failed indicates the behavior returned an error instead of a value.
	Failed bool
	// Err is the error text when Failed.
	Err string
	// Value is the result (raw bytes decoded at the caller for the OnRef
	// hook).
	Value wire.Value
}

func encodeFutureUpdate(u futureUpdate) []byte {
	buf := make([]byte, 0, 32+wire.EncodedSize(u.Value))
	buf = append(buf, envFutureUpdate)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(u.Future.Node))
	buf = binary.LittleEndian.AppendUint32(buf, u.Future.Seq)
	if u.Failed {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(u.Err)))
	buf = append(buf, u.Err...)
	buf = wire.Encode(buf, u.Value)
	return buf
}

func decodeFutureUpdateHeader(buf []byte) (futureUpdate, []byte, error) {
	if len(buf) < 1+8+1+4 || buf[0] != envFutureUpdate {
		return futureUpdate{}, nil, fmt.Errorf("%w: future header", errBadEnvelope)
	}
	buf = buf[1:]
	var u futureUpdate
	u.Future.Node = ids.NodeID(binary.LittleEndian.Uint32(buf))
	u.Future.Seq = binary.LittleEndian.Uint32(buf[4:])
	buf = buf[8:]
	u.Failed = buf[0] != 0
	buf = buf[1:]
	elen := binary.LittleEndian.Uint32(buf)
	buf = buf[4:]
	if uint32(len(buf)) < elen {
		return futureUpdate{}, nil, fmt.Errorf("%w: truncated error", errBadEnvelope)
	}
	u.Err = string(buf[:elen])
	return u, buf[elen:], nil
}

// futureSubscribe asks a future's home node to register a holder after
// the fact (WIRE.md §6): the fallback when a holder lifts a reference
// whose proxy is gone (reclaimed after resolution) or when a forwarding
// node without an entry passes the reference on. The home node answers
// with an ordinary future-update — the value if it still has the entry,
// a Failed/ErrFutureUnavailable update otherwise — so the subscriber
// can never wait forever.
func encodeFutureSubscribe(fid FutureID, holder ids.NodeID) []byte {
	buf := make([]byte, 0, 1+8+4)
	buf = append(buf, envFutureSubscribe)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(fid.Node))
	buf = binary.LittleEndian.AppendUint32(buf, fid.Seq)
	return binary.LittleEndian.AppendUint32(buf, uint32(holder))
}

func decodeFutureSubscribe(buf []byte) (FutureID, ids.NodeID, error) {
	if len(buf) != 1+8+4 || buf[0] != envFutureSubscribe {
		return FutureID{}, 0, fmt.Errorf("%w: future subscribe", errBadEnvelope)
	}
	fid := FutureID{
		Node: ids.NodeID(binary.LittleEndian.Uint32(buf[1:])),
		Seq:  binary.LittleEndian.Uint32(buf[5:]),
	}
	return fid, ids.NodeID(binary.LittleEndian.Uint32(buf[9:])), nil
}

// dgcPayload is the DGC exchange envelope: target activity + fixed-size
// core.Message; the core.Response (or nothing, if the target is gone)
// rides back on the same connection.
func encodeDGCPayload(target ids.ActivityID, msg core.Message) []byte {
	buf := make([]byte, 0, 8+core.MessageWireSize)
	buf = appendActivityID(buf, target)
	return append(buf, core.EncodeMessage(msg)...)
}

func decodeDGCPayload(buf []byte) (ids.ActivityID, core.Message, error) {
	if len(buf) < 8+core.MessageWireSize {
		return ids.Nil, core.Message{}, fmt.Errorf("%w: dgc payload", errBadEnvelope)
	}
	target, rest := readActivityID(buf)
	msg, err := core.DecodeMessage(rest)
	return target, msg, err
}

// dgcSingleSize is the exact length of a single-message DGC payload. A
// batched payload always differs (tag + count prefix ahead of 33-byte
// entries), which is how HandleCall tells the two apart without a version
// byte in the single-message format.
const dgcSingleSize = 8 + core.MessageWireSize

// dgcBatchTag marks a batched DGC payload (and its batched response):
// with batching enabled, one beat ships every due message toward a
// destination node in a single exchange instead of one call per
// (referencer, referenced) pair.
const dgcBatchTag byte = 0xB7

// isDGCBatch reports whether a ClassDGC payload is a batch envelope.
func isDGCBatch(buf []byte) bool {
	return len(buf) > 0 && buf[0] == dgcBatchTag && len(buf) != dgcSingleSize
}

// dgcBatchEntry is one (target, message) pair of a batched beat.
type dgcBatchEntry struct {
	Target ids.ActivityID
	Msg    core.Message
}

// encodeDGCBatchPayload packs entries as: tag byte, uvarint count, then
// count × (8 B target + core.MessageWireSize message).
func encodeDGCBatchPayload(entries []dgcBatchEntry) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen32+len(entries)*dgcSingleSize)
	buf = append(buf, dgcBatchTag)
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = appendActivityID(buf, e.Target)
		buf = append(buf, core.EncodeMessage(e.Msg)...)
	}
	return buf
}

func decodeDGCBatchPayload(buf []byte) ([]dgcBatchEntry, error) {
	if len(buf) < 2 || buf[0] != dgcBatchTag {
		return nil, fmt.Errorf("%w: dgc batch payload", errBadEnvelope)
	}
	count, sz := binary.Uvarint(buf[1:])
	if sz <= 0 || count > uint64(len(buf))/dgcSingleSize+1 {
		return nil, fmt.Errorf("%w: dgc batch count", errBadEnvelope)
	}
	buf = buf[1+sz:]
	entries := make([]dgcBatchEntry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(buf) < dgcSingleSize {
			return nil, fmt.Errorf("%w: truncated dgc batch", errBadEnvelope)
		}
		var e dgcBatchEntry
		e.Target, buf = readActivityID(buf)
		msg, err := core.DecodeMessage(buf)
		if err != nil {
			return nil, err
		}
		e.Msg = msg
		buf = buf[core.MessageWireSize:]
		entries = append(entries, e)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: trailing dgc batch bytes", errBadEnvelope)
	}
	return entries, nil
}

// encodeDGCBatchResponse packs the per-entry responses positionally: tag
// byte, uvarint count, then count × (1 B present flag + response when
// present). An absent response means the entry's target is gone — the
// batched equivalent of the empty single-exchange response.
func encodeDGCBatchResponse(resps []*core.Response) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen32+len(resps)*(1+core.ResponseWireSize))
	buf = append(buf, dgcBatchTag)
	buf = binary.AppendUvarint(buf, uint64(len(resps)))
	for _, r := range resps {
		if r == nil {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = append(buf, core.EncodeResponse(*r)...)
	}
	return buf
}

func decodeDGCBatchResponse(buf []byte) ([]*core.Response, error) {
	if len(buf) < 2 || buf[0] != dgcBatchTag {
		return nil, fmt.Errorf("%w: dgc batch response", errBadEnvelope)
	}
	count, sz := binary.Uvarint(buf[1:])
	if sz <= 0 || count > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: dgc batch response count", errBadEnvelope)
	}
	buf = buf[1+sz:]
	resps := make([]*core.Response, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(buf) < 1 {
			return nil, fmt.Errorf("%w: truncated dgc batch response", errBadEnvelope)
		}
		present := buf[0] != 0
		buf = buf[1:]
		if !present {
			resps = append(resps, nil)
			continue
		}
		r, err := core.DecodeResponse(buf)
		if err != nil {
			return nil, err
		}
		buf = buf[core.ResponseWireSize:]
		resps = append(resps, &r)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: trailing dgc batch response bytes", errBadEnvelope)
	}
	return resps, nil
}

// redirect is the rebinding notice a forwarder sends to every node that
// still contacts an activity's old identity (WIRE.md §7): Old moved and is
// now New. The receiver rebinds its stubs, reference-graph edges and send
// routing; a chain of migrations collapses because each hop's notice is
// applied through the same path-compressed rebind table.
func encodeRedirect(old, new ids.ActivityID) []byte {
	buf := make([]byte, 0, 1+8+8)
	buf = append(buf, envRedirect)
	buf = appendActivityID(buf, old)
	return appendActivityID(buf, new)
}

func decodeRedirect(buf []byte) (old, new ids.ActivityID, err error) {
	if len(buf) != 1+8+8 || buf[0] != envRedirect {
		return ids.Nil, ids.Nil, fmt.Errorf("%w: redirect", errBadEnvelope)
	}
	old, buf = readActivityID(buf[1:])
	new, _ = readActivityID(buf)
	return old, new, nil
}

// migrationState is one persistent-state entry of a migrating activity.
type migrationState struct {
	Key   string
	Value wire.Value
}

// migrationRequest is one pending queue item traveling in the envelope:
// the request header plus its already-decoded arguments (re-encoded into
// the envelope; the destination re-binds references on decode exactly as
// a freshly delivered request would).
type migrationRequest struct {
	Sender ids.ActivityID
	Future FutureID
	Method string
	Args   wire.Value
}

// migration is the envelope shipped by Handle.Migrate/Context.MigrateTo:
// everything the destination needs to re-home the activity — identity,
// registered behavior kind, persistent state, pending request queue.
type migration struct {
	Old   ids.ActivityID
	Name  string
	Kind  string
	State []migrationState
	Queue []migrationRequest
}

func appendUvarintString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readUvarintString(buf []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return "", nil, fmt.Errorf("%w: string length", errBadEnvelope)
	}
	buf = buf[sz:]
	if n > uint64(len(buf)) {
		return "", nil, fmt.Errorf("%w: truncated string", errBadEnvelope)
	}
	return string(buf[:n]), buf[n:], nil
}

// encodeMigration packs the envelope: tag, old identity, name, kind, then
// uvarint-counted state entries (key + value) and queue items (sender +
// future + method + args).
func encodeMigration(m migration) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, envMigrate)
	buf = appendActivityID(buf, m.Old)
	buf = appendUvarintString(buf, m.Name)
	buf = appendUvarintString(buf, m.Kind)
	buf = binary.AppendUvarint(buf, uint64(len(m.State)))
	for _, e := range m.State {
		buf = appendUvarintString(buf, e.Key)
		buf = wire.Encode(buf, e.Value)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Queue)))
	for _, q := range m.Queue {
		buf = appendActivityID(buf, q.Sender)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(q.Future.Node))
		buf = binary.LittleEndian.AppendUint32(buf, q.Future.Seq)
		buf = appendUvarintString(buf, q.Method)
		buf = wire.Encode(buf, q.Args)
	}
	return buf
}

// decodeMigration unpacks a migration envelope. Values are decoded with a
// plain decoder (no hooks): the caller re-binds references explicitly
// against the freshly created activity, after rewriting self-references.
func decodeMigration(buf []byte) (migration, error) {
	var m migration
	if len(buf) < 1+8 || buf[0] != envMigrate {
		return m, fmt.Errorf("%w: migration header", errBadEnvelope)
	}
	m.Old, buf = readActivityID(buf[1:])
	var err error
	if m.Name, buf, err = readUvarintString(buf); err != nil {
		return m, err
	}
	if m.Kind, buf, err = readUvarintString(buf); err != nil {
		return m, err
	}
	var dec wire.Decoder
	nState, sz := binary.Uvarint(buf)
	if sz <= 0 || nState > uint64(len(buf)) {
		return m, fmt.Errorf("%w: migration state count", errBadEnvelope)
	}
	buf = buf[sz:]
	for i := uint64(0); i < nState; i++ {
		var e migrationState
		if e.Key, buf, err = readUvarintString(buf); err != nil {
			return m, err
		}
		if e.Value, buf, err = dec.DecodePrefix(buf); err != nil {
			return m, err
		}
		m.State = append(m.State, e)
	}
	nQueue, sz := binary.Uvarint(buf)
	if sz <= 0 || nQueue > uint64(len(buf))+1 {
		return m, fmt.Errorf("%w: migration queue count", errBadEnvelope)
	}
	buf = buf[sz:]
	for i := uint64(0); i < nQueue; i++ {
		var q migrationRequest
		if len(buf) < 8+8 {
			return m, fmt.Errorf("%w: truncated migration queue", errBadEnvelope)
		}
		q.Sender, buf = readActivityID(buf)
		q.Future.Node = ids.NodeID(binary.LittleEndian.Uint32(buf))
		q.Future.Seq = binary.LittleEndian.Uint32(buf[4:])
		buf = buf[8:]
		if q.Method, buf, err = readUvarintString(buf); err != nil {
			return m, err
		}
		if q.Args, buf, err = dec.DecodePrefix(buf); err != nil {
			return m, err
		}
		m.Queue = append(m.Queue, q)
	}
	if len(buf) != 0 {
		return m, fmt.Errorf("%w: trailing migration bytes", errBadEnvelope)
	}
	return m, nil
}

// Migration responses: status byte + new identity, or status byte + error
// text. The exchange rides the transport's Call leg, so the source learns
// the new identity synchronously and can install the forwarder before it
// releases anything.
const (
	migrateOK     byte = 0
	migrateFailed byte = 1
)

func encodeMigrateResponse(newID ids.ActivityID, err error) []byte {
	if err != nil {
		buf := make([]byte, 0, 1+len(err.Error()))
		buf = append(buf, migrateFailed)
		return append(buf, err.Error()...)
	}
	buf := make([]byte, 0, 1+8)
	buf = append(buf, migrateOK)
	return appendActivityID(buf, newID)
}

func decodeMigrateResponse(buf []byte) (ids.ActivityID, error) {
	if len(buf) == 0 {
		return ids.Nil, fmt.Errorf("%w: empty migrate response", errBadEnvelope)
	}
	switch buf[0] {
	case migrateOK:
		if len(buf) != 1+8 {
			return ids.Nil, fmt.Errorf("%w: migrate response", errBadEnvelope)
		}
		id, _ := readActivityID(buf[1:])
		return id, nil
	case migrateFailed:
		return ids.Nil, fmt.Errorf("%w: %s", ErrMigrationFailed, string(buf[1:]))
	default:
		return ids.Nil, fmt.Errorf("%w: migrate response status", errBadEnvelope)
	}
}

func appendActivityID(buf []byte, id ids.ActivityID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id.Node))
	return binary.LittleEndian.AppendUint32(buf, id.Seq)
}

func readActivityID(buf []byte) (ids.ActivityID, []byte) {
	id := ids.ActivityID{
		Node: ids.NodeID(binary.LittleEndian.Uint32(buf)),
		Seq:  binary.LittleEndian.Uint32(buf[4:]),
	}
	return id, buf[8:]
}
