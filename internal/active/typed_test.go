package active

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// calcReq/calcResp are the typed request/response pair the dispatch tests
// push through the full wire round-trip.
type calcReq struct {
	A, B  int64
	Op    string  `wire:"op"`
	Scale float64 `wire:",omitempty"`
}

type calcResp struct {
	Result int64  `wire:"result"`
	Op     string `wire:"op"`
}

func calcService() *Service {
	return NewService(
		Method("calc", func(ctx *Context, req calcReq) (calcResp, error) {
			switch req.Op {
			case "add":
				return calcResp{Result: req.A + req.B, Op: req.Op}, nil
			case "mul":
				return calcResp{Result: req.A * req.B, Op: req.Op}, nil
			default:
				return calcResp{}, fmt.Errorf("bad op %q", req.Op)
			}
		}),
		Method("noop", func(ctx *Context, _ struct{}) (struct{}, error) {
			return struct{}{}, nil
		}),
	)
}

// TestTypedCallResolvesStruct is the acceptance scenario: a TypedFuture
// obtained via Stub.Call resolves with an unmarshaled struct.
func TestTypedCallResolvesStruct(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("calc", calcService())
	defer h.Release()

	stub := NewStub[calcReq, calcResp](h, "calc")
	fut, err := stub.Call(calcReq{A: 6, B: 7, Op: "mul"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := fut.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp != (calcResp{Result: 42, Op: "mul"}) {
		t.Fatalf("resp = %+v", resp)
	}

	// CallSync, across nodes.
	n2 := e.NewNode()
	h2, err := n2.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	resp, err = NewStub[calcReq, calcResp](h2, "calc").CallSync(calcReq{A: 40, B: 2, Op: "add"}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result != 42 {
		t.Fatalf("cross-node resp = %+v", resp)
	}
}

func TestServiceUnknownMethod(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("calc", calcService())
	defer h.Release()

	_, err := h.CallSync("nope", wire.Null(), 5*time.Second)
	if err == nil || !errors.Is(err, ErrRemoteFailure) {
		t.Fatalf("err = %v, want remote failure", err)
	}
	// The declared interface is enumerable and named in the error.
	if !strings.Contains(err.Error(), "unknown service method") || !strings.Contains(err.Error(), "calc") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestTypedCallBadArgs(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("calc", calcService())
	defer h.Release()

	// Dynamic call with a wire shape the typed method cannot unmarshal:
	// the error must come back through the future, not wedge the callee.
	_, err := h.CallSync("calc", wire.String("not a dict"), 5*time.Second)
	if err == nil || !strings.Contains(err.Error(), "bad arguments") {
		t.Fatalf("err = %v, want bad-arguments failure", err)
	}
}

func TestCallOptionTimeout(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("sleeper", relay{})
	defer h.Release()

	stub := NewStub[int64, wire.Value](h, "sleep")
	fut, err := stub.Call(200, WithTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Wait(0) picks up the per-call timeout option.
	if _, err := fut.Wait(0); !errors.Is(err, ErrFutureTimeout) {
		t.Fatalf("err = %v, want ErrFutureTimeout", err)
	}
}

func TestCallOptionNoReply(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	var served atomic.Int64
	h := n.NewActive("svc", NewService(
		Method("bump", func(ctx *Context, delta int64) (int64, error) {
			served.Add(delta)
			return served.Load(), nil
		}),
	))
	defer h.Release()

	stub := NewStub[int64, int64](h, "bump")
	fut, err := stub.Call(5, WithNoReply())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-fut.Done():
	default:
		t.Fatal("no-reply future must be pre-resolved")
	}
	if got, err := fut.Wait(time.Second); err != nil || got != 0 {
		t.Fatalf("no-reply Wait = %d, %v (want zero Resp)", got, err)
	}
	// The send did happen.
	waitUntil(t, func() bool { return served.Load() == 5 }, 5*time.Second)
}

// TestHandleLifecycle is the hardening satellite: double Release is an
// idempotent no-op and post-release calls fail with the sentinel.
func TestHandleLifecycle(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	h := n.NewActive("calc", calcService())

	if _, err := h.Call("noop", wire.Null()); err != nil {
		t.Fatal(err)
	}
	h.Release()
	h.Release() // must not panic or double-remove the root
	h.Terminate()

	if _, err := h.Call("noop", wire.Null()); !errors.Is(err, ErrHandleReleased) {
		t.Fatalf("Call err = %v, want ErrHandleReleased", err)
	}
	if _, err := h.CallSync("noop", wire.Null(), time.Second); !errors.Is(err, ErrHandleReleased) {
		t.Fatalf("CallSync err = %v, want ErrHandleReleased", err)
	}
	if err := h.Send("noop", wire.Null()); !errors.Is(err, ErrHandleReleased) {
		t.Fatalf("Send err = %v, want ErrHandleReleased", err)
	}
	// Typed surfaces propagate the sentinel too.
	if _, err := NewStub[calcReq, calcResp](h, "calc").Call(calcReq{Op: "add"}); !errors.Is(err, ErrHandleReleased) {
		t.Fatalf("Stub.Call err = %v, want ErrHandleReleased", err)
	}

	// The released handle no longer pins the activity: the DGC reclaims it.
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestGroupBroadcastAndCollect is the acceptance scenario: a 16-member
// Group.Broadcast resolves all futures, and after Release the DGC
// reclaims every member.
func TestGroupBroadcastAndCollect(t *testing.T) {
	e := testEnv(t)
	const members = 16
	nodes := []*Node{e.NewNode(), e.NewNode(), e.NewNode(), e.NewNode()}

	svc := NewService(
		Method("rank", func(ctx *Context, _ struct{}) (string, error) {
			return ctx.ID().String(), nil
		}),
	)
	handles := make([]*Handle, members)
	for i := range handles {
		handles[i] = nodes[i%len(nodes)].NewActive(fmt.Sprintf("m-%d", i), svc)
	}
	g := NewGroup[struct{}, string]("rank", handles...)
	if g.Size() != members {
		t.Fatalf("Size = %d", g.Size())
	}

	fg, err := g.Broadcast(struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	replies, err := fg.WaitAll(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != members {
		t.Fatalf("got %d replies", len(replies))
	}
	distinct := make(map[string]bool, members)
	for i, r := range replies {
		if r == "" {
			t.Fatalf("member %d: empty reply", i)
		}
		distinct[r] = true
	}
	if len(distinct) != members {
		t.Fatalf("replies not distinct per member: %d/%d", len(distinct), members)
	}

	g.Release()
	g.Release() // idempotent like the handles underneath
	took, err := e.WaitCollected(0, 10*time.Second)
	if err != nil {
		t.Fatalf("group members not reclaimed: %v", err)
	}
	t.Logf("16-member group reclaimed in %v", took)
}

func TestGroupScatter(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	svc := NewService(
		Method("square", func(ctx *Context, x int64) (int64, error) { return x * x, nil }),
	)
	handles := make([]*Handle, 4)
	for i := range handles {
		handles[i] = n.NewActive(fmt.Sprintf("sq-%d", i), svc)
	}
	g := NewGroup[int64, int64]("square", handles...)
	defer g.Release()

	if _, err := g.Scatter([]int64{1, 2}); !errors.Is(err, ErrGroupArity) {
		t.Fatalf("arity err = %v, want ErrGroupArity", err)
	}
	fg, err := g.Scatter([]int64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fg.WaitAll(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 4, 9, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scatter replies = %v, want %v", got, want)
		}
	}
}

func TestGroupWaitAny(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	svc := NewService(
		Method("wait", func(ctx *Context, ms int64) (int64, error) {
			ctx.ao.node.env.cfg.Clock.Sleep(time.Duration(ms) * time.Millisecond)
			return ms, nil
		}),
	)
	handles := make([]*Handle, 3)
	for i := range handles {
		handles[i] = n.NewActive(fmt.Sprintf("w-%d", i), svc)
	}
	g := NewGroup[int64, int64]("wait", handles...)
	defer g.Release()

	// Member 1 is the fast one.
	fg, err := g.Scatter([]int64{400, 5, 400})
	if err != nil {
		t.Fatal(err)
	}
	idx, got, err := fg.WaitAny(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || got != 5 {
		t.Fatalf("WaitAny = (%d, %d), want (1, 5)", idx, got)
	}
	fg.Discard()

	if _, _, err := (&FutureGroup[int64]{}).WaitAny(time.Second); !errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("empty WaitAny err = %v, want ErrEmptyGroup", err)
	}
	if _, err := (&Group[int64, int64]{method: "x"}).Broadcast(0); !errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("empty Broadcast err = %v, want ErrEmptyGroup", err)
	}
}

// TestDiscardBeforeResolve pins the early-Discard contract: abandoning a
// future before its result arrives must still drop the value's heap pin
// on resolution, so references inside an unread reply cannot keep their
// targets alive for the owner's lifetime.
func TestDiscardBeforeResolve(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	svc := NewService(
		Method("spawnChild", func(ctx *Context, _ struct{}) (wire.Value, error) {
			// Sleep so the caller can discard before this resolves; the
			// returned ref is the only thing that would keep the child
			// alive at the caller.
			ctx.ao.node.env.cfg.Clock.Sleep(50 * time.Millisecond)
			return ctx.Spawn("child", NewService()), nil
		}),
	)
	h := n.NewActive("parent", svc)
	defer h.Release()

	fut, err := h.Call("spawnChild", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	fut.Discard() // before the 50ms service completes
	<-fut.Done()

	// The handle stays live (pinning only the parent); the child must be
	// reclaimed because the discarded reply's pin was dropped on arrival.
	if _, err := e.WaitCollected(1, 10*time.Second); err != nil {
		t.Fatalf("discarded reply kept the child pinned: %v", err)
	}
}

// TestGroupFanOutReferenceGraph exercises the new DGC scenario the group
// primitive opens: members hold references to each other (a fan-out that
// became a clique), so after Release the group is *cyclic* garbage only a
// complete DGC collects.
func TestGroupFanOutReferenceGraph(t *testing.T) {
	e := testEnv(t)
	nodes := []*Node{e.NewNode(), e.NewNode()}
	const members = 8

	type meshReq struct {
		Peers []wire.Value `wire:"peers"`
	}
	svc := NewService(
		Method("mesh", func(ctx *Context, req meshReq) (int64, error) {
			ctx.Store("peers", wire.List(req.Peers...))
			return int64(len(req.Peers)), nil
		}),
	)
	handles := make([]*Handle, members)
	for i := range handles {
		handles[i] = nodes[i%len(nodes)].NewActive(fmt.Sprintf("mesh-%d", i), svc)
	}
	g := NewGroup[meshReq, int64]("mesh", handles...)

	peers := make([]wire.Value, members)
	for i, h := range handles {
		peers[i] = h.Ref()
	}
	fg, err := g.Broadcast(meshReq{Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := fg.WaitAll(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != members {
			t.Fatalf("member %d stored %d peers", i, c)
		}
	}

	g.Release()
	if _, err := e.WaitCollected(0, 15*time.Second); err != nil {
		t.Fatalf("clique not reclaimed: %v", err)
	}
}
