package active

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/vclock"
	"repro/internal/wire"
)

// Group errors.
var (
	// ErrGroupArity indicates Scatter received a request count different
	// from the group size.
	ErrGroupArity = errors.New("active: scatter arity mismatch")
	// ErrEmptyGroup indicates a group operation on zero members.
	ErrEmptyGroup = errors.New("active: empty group")
)

// Group is a typed one-to-many handle: the ProActive group-communication
// analogue. It fans one method out over N member activities — Broadcast
// ships the same request to all, Scatter one request per member — and
// returns a FutureGroup collecting the replies. Each member is pinned by
// its own Handle (one dummy DGC root per member); Release drops all of
// them at once, handing the whole fan-out reference graph to the DGC.
type Group[Req, Resp any] struct {
	method   string
	members  []*Handle
	released atomic.Bool
}

// NewGroup types the given handles' method into a group. The group takes
// ownership of the handles: Group.Release releases them all.
func NewGroup[Req, Resp any](method string, members ...*Handle) *Group[Req, Resp] {
	return &Group[Req, Resp]{method: method, members: members}
}

// Size returns the number of members.
func (g *Group[Req, Resp]) Size() int { return len(g.members) }

// Member returns the i-th member's handle.
func (g *Group[Req, Resp]) Member(i int) *Handle { return g.members[i] }

// Stub returns a single-member typed stub for the i-th member.
func (g *Group[Req, Resp]) Stub(i int) Stub[Req, Resp] {
	return NewStub[Req, Resp](g.members[i], g.method)
}

// Broadcast sends the same request to every member and returns the future
// group of their replies (in member order).
func (g *Group[Req, Resp]) Broadcast(req Req, opts ...CallOption) (*FutureGroup[Resp], error) {
	if len(g.members) == 0 {
		return nil, ErrEmptyGroup
	}
	args, err := wire.Marshal(req)
	if err != nil {
		return nil, err
	}
	return g.fanOut(func(int) wire.Value { return args }, opts)
}

// Scatter sends reqs[i] to member i; len(reqs) must equal Size.
func (g *Group[Req, Resp]) Scatter(reqs []Req, opts ...CallOption) (*FutureGroup[Resp], error) {
	if len(g.members) == 0 {
		return nil, ErrEmptyGroup
	}
	if len(reqs) != len(g.members) {
		return nil, fmt.Errorf("%w: %d requests for %d members", ErrGroupArity, len(reqs), len(g.members))
	}
	argsPer := make([]wire.Value, len(reqs))
	for i, req := range reqs {
		args, err := wire.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("member %d: %w", i, err)
		}
		argsPer[i] = args
	}
	return g.fanOut(func(i int) wire.Value { return argsPer[i] }, opts)
}

// Send broadcasts a one-way request to every member.
func (g *Group[Req, Resp]) Send(req Req) error {
	if len(g.members) == 0 {
		return ErrEmptyGroup
	}
	args, err := wire.Marshal(req)
	if err != nil {
		return err
	}
	for i, h := range g.members {
		if err := h.Send(g.method, args); err != nil {
			return fmt.Errorf("member %d: %w", i, err)
		}
	}
	return nil
}

func (g *Group[Req, Resp]) fanOut(argsFor func(int) wire.Value, opts []CallOption) (*FutureGroup[Resp], error) {
	o := applyOptions(opts)
	futs := make([]*TypedFuture[Resp], len(g.members))
	for i, h := range g.members {
		if o.noReply {
			if err := h.Send(g.method, argsFor(i)); err != nil {
				return nil, fmt.Errorf("member %d: %w", i, err)
			}
			futs[i] = &TypedFuture[Resp]{}
			continue
		}
		fut, err := h.Call(g.method, argsFor(i))
		if err != nil {
			// Abort: drop the futures already in flight so their values do
			// not stay pinned forever.
			for _, tf := range futs[:i] {
				tf.Discard()
			}
			return nil, fmt.Errorf("member %d: %w", i, err)
		}
		futs[i] = &TypedFuture[Resp]{fut: fut, timeout: o.timeout}
	}
	return &FutureGroup[Resp]{futs: futs}, nil
}

// Release releases every member handle (idempotent). The members become
// ordinary DGC candidates: once nothing else references them, the whole
// group is reclaimed — cyclically if the members ended up referencing
// each other.
func (g *Group[Req, Resp]) Release() {
	if g.released.Swap(true) {
		return
	}
	for _, h := range g.members {
		h.Release()
	}
}

// FutureGroup collects the typed futures of one group fan-out, in member
// order.
type FutureGroup[Resp any] struct {
	futs []*TypedFuture[Resp]
}

// Len returns the number of member futures.
func (fg *FutureGroup[Resp]) Len() int { return len(fg.futs) }

// At returns the i-th member's future.
func (fg *FutureGroup[Resp]) At(i int) *TypedFuture[Resp] { return fg.futs[i] }

// clock returns the environment clock behind the member futures (nil when
// every call was one-way — then nothing ever blocks anyway).
func (fg *FutureGroup[Resp]) clock() vclock.Clock {
	for _, f := range fg.futs {
		if f.fut != nil {
			return f.fut.node.env.cfg.Clock
		}
	}
	return nil
}

// WaitAll waits for every member and returns the replies in member order.
// timeout is the overall budget (0 = wait forever); on the first failure
// the remaining futures are discarded and the error returned.
func (fg *FutureGroup[Resp]) WaitAll(timeout time.Duration) ([]Resp, error) {
	out := make([]Resp, len(fg.futs))
	clk := fg.clock()
	var start time.Time
	if timeout > 0 && clk != nil {
		start = clk.Now()
	}
	for i, f := range fg.futs {
		budget := time.Duration(0)
		if timeout > 0 && clk != nil {
			budget = timeout - clk.Now().Sub(start)
			if budget <= 0 {
				fg.discardFrom(i)
				return nil, fmt.Errorf("%w: group wait after %v (%d/%d resolved)",
					ErrFutureTimeout, timeout, i, len(fg.futs))
			}
		}
		resp, err := f.Wait(budget)
		if err != nil {
			fg.discardFrom(i + 1)
			return nil, fmt.Errorf("member %d: %w", i, err)
		}
		out[i] = resp
	}
	return out, nil
}

// WaitAny waits until any member resolves and returns its index and
// reply. The other futures stay pending and consumable (call WaitAll, At
// or Discard on them later). timeout 0 waits forever.
func (fg *FutureGroup[Resp]) WaitAny(timeout time.Duration) (int, Resp, error) {
	var zero Resp
	if len(fg.futs) == 0 {
		return -1, zero, ErrEmptyGroup
	}
	// Fast path: someone already resolved (or is one-way).
	for i, f := range fg.futs {
		select {
		case <-f.Done():
			resp, err := f.Wait(0)
			return i, resp, err
		default:
		}
	}
	stop := make(chan struct{})
	defer close(stop)
	ready := make(chan int, len(fg.futs))
	for i, f := range fg.futs {
		go func(i int, done <-chan struct{}) {
			select {
			case <-done:
				ready <- i
			case <-stop:
			}
		}(i, f.Done())
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		if clk := fg.clock(); clk != nil {
			timeoutCh = clk.After(timeout)
		}
	}
	select {
	case i := <-ready:
		resp, err := fg.futs[i].Wait(0)
		return i, resp, err
	case <-timeoutCh:
		return -1, zero, fmt.Errorf("%w: group wait-any after %v", ErrFutureTimeout, timeout)
	}
}

// Discard releases every member future's heap pin without reading.
func (fg *FutureGroup[Resp]) Discard() { fg.discardFrom(0) }

func (fg *FutureGroup[Resp]) discardFrom(i int) {
	for _, f := range fg.futs[i:] {
		f.Discard()
	}
}
