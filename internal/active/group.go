package active

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/vclock"
	"repro/internal/wire"
)

// Group errors.
var (
	// ErrGroupArity indicates Scatter received a request count different
	// from the group size.
	ErrGroupArity = errors.New("active: scatter arity mismatch")
	// ErrEmptyGroup indicates a group operation on zero members.
	ErrEmptyGroup = errors.New("active: empty group")
)

// Group is a typed one-to-many handle: the ProActive group-communication
// analogue. It fans one method out over N member activities — Broadcast
// ships the same request to all, Scatter one request per member — and
// returns a FutureGroup collecting the replies. Each member is pinned by
// its own Handle (one dummy DGC root per member); Release drops all of
// them at once, handing the whole fan-out reference graph to the DGC.
type Group[Req, Resp any] struct {
	method   string
	members  []*Handle
	released atomic.Bool
}

// NewGroup types the given handles' method into a group. The group takes
// ownership of the handles: Group.Release releases them all.
func NewGroup[Req, Resp any](method string, members ...*Handle) *Group[Req, Resp] {
	// Group construction registers the cached codec plans, like NewStub.
	wire.RegisterType(*new(Req))
	wire.RegisterType(*new(Resp))
	return &Group[Req, Resp]{method: method, members: members}
}

// Size returns the number of members.
func (g *Group[Req, Resp]) Size() int { return len(g.members) }

// Member returns the i-th member's handle.
func (g *Group[Req, Resp]) Member(i int) *Handle { return g.members[i] }

// Stub returns a single-member typed stub for the i-th member.
func (g *Group[Req, Resp]) Stub(i int) Stub[Req, Resp] {
	return NewStub[Req, Resp](g.members[i], g.method)
}

// Broadcast sends the same request to every member and returns the future
// group of their replies (in member order). The request is marshaled —
// and, on a batching transport, serialized — exactly once for the whole
// group; members sharing a destination node travel in one batch frame.
func (g *Group[Req, Resp]) Broadcast(req Req, opts ...CallOption) (*FutureGroup[Resp], error) {
	if len(g.members) == 0 {
		return nil, ErrEmptyGroup
	}
	args, err := wire.Marshal(req)
	if err != nil {
		return nil, err
	}
	return g.fanOut(func(int) wire.Value { return args }, true, opts)
}

// Scatter sends reqs[i] to member i; len(reqs) must equal Size.
func (g *Group[Req, Resp]) Scatter(reqs []Req, opts ...CallOption) (*FutureGroup[Resp], error) {
	if len(g.members) == 0 {
		return nil, ErrEmptyGroup
	}
	if len(reqs) != len(g.members) {
		return nil, fmt.Errorf("%w: %d requests for %d members", ErrGroupArity, len(reqs), len(g.members))
	}
	argsPer := make([]wire.Value, len(reqs))
	for i, req := range reqs {
		args, err := wire.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("member %d: %w", i, err)
		}
		argsPer[i] = args
	}
	return g.fanOut(func(i int) wire.Value { return argsPer[i] }, false, opts)
}

// Send broadcasts a one-way request to every member (the fan-out path
// with no reply expected, so co-destination members batch the same way).
func (g *Group[Req, Resp]) Send(req Req) error {
	if len(g.members) == 0 {
		return ErrEmptyGroup
	}
	args, err := wire.Marshal(req)
	if err != nil {
		return err
	}
	_, err = g.fanOut(func(int) wire.Value { return args }, true, []CallOption{WithNoReply()})
	return err
}

// fanOut submits one request per member and collects the typed futures.
// sharedArgs marks a broadcast: every member receives the same value, so
// its serialization is computed once. On a batching transport the
// requests are grouped per (anchor node, destination node) pair and each
// group is submitted as one batch frame — the wire cost of a 16-member
// broadcast across 4 nodes is 4 frames, not 16. Members hosted on their
// handle's own node skip the codec entirely (deliverLocalRequest).
func (g *Group[Req, Resp]) fanOut(argsFor func(int) wire.Value, sharedArgs bool, opts []CallOption) (*FutureGroup[Resp], error) {
	o := applyOptions(opts)
	futs := make([]*TypedFuture[Resp], len(g.members))
	abort := func(i int, err error) (*FutureGroup[Resp], error) {
		// Unwind the members already prepared: drop their value pins and
		// remove their futures from the table — batched members' requests
		// were never submitted (their staged payloads die with this call),
		// and a dropped entry means a straggler update from an
		// already-sent member is discarded instead of leaking the entry.
		for _, tf := range futs[:i] {
			if tf.fut != nil {
				tf.fut.node.futures.remove(tf.fut.id)
			}
			tf.Discard()
		}
		return nil, fmt.Errorf("member %d: %w", i, err)
	}
	type laneKey struct {
		src *Node
		dst ids.NodeID
	}
	type sentArgs struct {
		src  *Node
		dst  ids.NodeID
		args wire.Value
		fut  *Future // nil for no-reply members
	}
	var (
		batches map[laneKey][]transport.BatchItem
		argsEnc []byte // shared pre-encoded args (broadcast fast path)
		// staged collects batched members' (src, dst, args) so forwarded
		// futures register their holders only after SendBatch put the
		// payloads on the wire.
		staged []sentArgs
	)
	// Tree fan-out engagement (WIRE.md §10): an anchor node whose members
	// spread over more distinct remote nodes than the branching degree
	// ships one relay-tree scatter instead of per-member envelopes — the
	// root sends O(degree) envelopes and receives O(degree) aggregated
	// replies, however large the group.
	trees := g.planTrees()
	for i, h := range g.members {
		if h.released.Load() {
			return abort(i, fmt.Errorf("call %q: %w", g.method, ErrHandleReleased))
		}
		node := h.dummy.node
		target, ok := h.target.AsRef()
		if !ok {
			return abort(i, fmt.Errorf("%w: %v", ErrNotARef, h.target))
		}
		req := request{Target: target, Sender: h.dummy.id, Method: g.method, Args: argsFor(i)}
		if o.noReply {
			futs[i] = &TypedFuture[Resp]{}
		} else {
			fut := node.futures.create(node, h.dummy.id)
			req.Future = fut.ID()
			futs[i] = &TypedFuture[Resp]{fut: fut, timeout: o.timeout}
		}
		switch {
		case target.Node == node.id:
			node.deliverLocalRequest(req)
		case trees[node] != nil:
			if err := node.routeCheck(target.Node); err != nil {
				// Tree sends bypass transportSend until after the loop, so
				// the dead-node fail-fast guard runs here, like the batch
				// path's.
				if futs[i].fut != nil {
					node.futures.remove(futs[i].fut.ID())
				}
				return abort(i, err)
			}
			trees[node].add(target, req, sharedArgs, futs[i].fut)
		case node.flusher != nil:
			if err := node.routeCheck(target.Node); err != nil {
				// The batch path bypasses transportSend, so the dead-node
				// fail-fast guard runs here.
				if futs[i].fut != nil {
					node.futures.remove(futs[i].fut.ID())
				}
				return abort(i, err)
			}
			var payload []byte
			if sharedArgs {
				if argsEnc == nil {
					argsEnc = wire.Encode(nil, req.Args)
				}
				payload = encodeRequestShared(req, argsEnc)
			} else {
				payload = encodeRequest(req)
			}
			if batches == nil {
				batches = make(map[laneKey][]transport.BatchItem)
			}
			k := laneKey{src: node, dst: target.Node}
			batches[k] = append(batches[k], transport.BatchItem{Class: transport.ClassApp, Payload: payload})
			staged = append(staged, sentArgs{src: node, dst: target.Node, args: req.Args, fut: futs[i].fut})
		default:
			if err := node.sendRequest(req); err != nil {
				if futs[i].fut != nil {
					node.futures.remove(futs[i].fut.ID())
				}
				return abort(i, err)
			}
		}
	}
	for k, items := range batches {
		if err := k.src.flusher.SendBatch(k.dst, items); err != nil {
			// The flusher only rejects after Close. Unwind every member:
			// take the futures out of their tables (unsent ones can never
			// resolve) and drop the pins.
			for _, tf := range futs {
				if tf.fut != nil {
					tf.fut.node.futures.remove(tf.fut.id)
				}
				tf.Discard()
			}
			return nil, err
		}
	}
	// Batched payloads are on the wire: register the scatter's forwarded
	// futures (if any) with their new holder nodes.
	for _, s := range staged {
		if s.fut != nil && s.src.env.cluster != nil {
			s.fut.awaitNode.Store(uint32(s.dst))
		}
		s.src.noteFutureValuesSent(s.dst, s.args)
	}
	for _, ts := range trees {
		ts.send(g.method, sharedArgs, !o.noReply)
	}
	return &FutureGroup[Resp]{futs: futs}, nil
}

// planTrees decides, per anchor node, whether this fan-out goes through
// the relay tree (WIRE.md §10): engaged when the group's members spread
// over more distinct remote destination nodes than the node's branching
// degree, unless DisableTreeFanOut pins the flat baseline. Anchors below
// the threshold are simply absent from the map.
func (g *Group[Req, Resp]) planTrees() map[*Node]*groupTree {
	var counts map[*Node]map[ids.NodeID]struct{}
	for _, h := range g.members {
		node := h.dummy.node
		if node.env.cfg.DisableTreeFanOut {
			continue
		}
		target, ok := h.target.AsRef()
		if !ok || target.Node == node.id {
			continue
		}
		if counts == nil {
			counts = make(map[*Node]map[ids.NodeID]struct{})
		}
		set := counts[node]
		if set == nil {
			set = make(map[ids.NodeID]struct{})
			counts[node] = set
		}
		set[target.Node] = struct{}{}
	}
	var trees map[*Node]*groupTree
	for node, set := range counts {
		if len(set) <= node.env.cfg.FanOutDegree {
			continue
		}
		if trees == nil {
			trees = make(map[*Node]*groupTree)
		}
		trees[node] = &groupTree{node: node, dstIdx: make(map[ids.NodeID]int, len(set))}
	}
	return trees
}

// groupTree accumulates one anchor node's tree-scatter during fanOut:
// the per-destination bundles plus the member bookkeeping the root
// performs once the envelopes are on the wire.
type groupTree struct {
	node    *Node
	dstIdx  map[ids.NodeID]int
	bundles []fanBundle
	shared  wire.Value
	members []groupTreeMember
}

type groupTreeMember struct {
	fut  *Future // nil for one-way members
	dst  ids.NodeID
	args wire.Value
}

func (t *groupTree) add(target ids.ActivityID, req request, sharedArgs bool, fut *Future) {
	bi, ok := t.dstIdx[target.Node]
	if !ok {
		bi = len(t.bundles)
		t.dstIdx[target.Node] = bi
		t.bundles = append(t.bundles, fanBundle{Dst: target.Node})
	}
	en := fanEntry{Target: target, Sender: req.Sender, Future: req.Future}
	if sharedArgs {
		t.shared = req.Args
	} else {
		en.Args = req.Args
	}
	t.bundles[bi].Entries = append(t.bundles[bi].Entries, en)
	t.members = append(t.members, groupTreeMember{fut: fut, dst: target.Node, args: req.Args})
}

// send ships the accumulated bundles as at most FanOutDegree subtree
// envelopes (the first bundle's destination doubles as the subtree's
// relay) and finishes the root-side bookkeeping: members whose subtree
// could not leave fail immediately; the rest register their first-hop
// relay as the awaited node — a confirmed death of the relay fails them
// instead of hanging the waiter — and their destination node as holder
// of any futures forwarded in the arguments.
func (t *groupTree) send(method string, sharedArgs, urgent bool) {
	n := t.node
	degree := n.env.cfg.FanOutDegree
	if degree <= 0 {
		degree = 4
	}
	groups := degree
	if len(t.bundles) < groups {
		groups = len(t.bundles)
	}
	per := (len(t.bundles) + groups - 1) / groups
	relayOf := make(map[ids.NodeID]ids.NodeID, len(t.bundles))
	var failed map[ids.NodeID]bool
	for i := 0; i < len(t.bundles); i += per {
		end := i + per
		if end > len(t.bundles) {
			end = len(t.bundles)
		}
		group := t.bundles[i:end]
		env := fanOutEnv{
			Root:   n.id,
			Method: method,
			Shared: sharedArgs,
			Args:   t.shared,
			Bundle: group,
		}
		if err := n.transportSend(group[0].Dst, transport.ClassApp, encodeFanOut(env), urgent); err != nil {
			n.failFanBundles(group, 0, n.id, err)
			if failed == nil {
				failed = make(map[ids.NodeID]bool)
			}
			for _, b := range group {
				failed[b.Dst] = true
			}
			continue
		}
		for _, b := range group {
			relayOf[b.Dst] = group[0].Dst
		}
	}
	for _, m := range t.members {
		if failed[m.dst] {
			continue
		}
		if m.fut != nil && n.env.cluster != nil {
			m.fut.awaitNode.Store(uint32(relayOf[m.dst]))
		}
		n.noteFutureValuesSent(m.dst, m.args)
	}
}

// Release releases every member handle (idempotent). The members become
// ordinary DGC candidates: once nothing else references them, the whole
// group is reclaimed — cyclically if the members ended up referencing
// each other.
func (g *Group[Req, Resp]) Release() {
	if g.released.Swap(true) {
		return
	}
	for _, h := range g.members {
		h.Release()
	}
}

// FutureGroup collects the typed futures of one group fan-out, in member
// order.
type FutureGroup[Resp any] struct {
	futs []*TypedFuture[Resp]
}

// Len returns the number of member futures.
func (fg *FutureGroup[Resp]) Len() int { return len(fg.futs) }

// At returns the i-th member's future.
func (fg *FutureGroup[Resp]) At(i int) *TypedFuture[Resp] { return fg.futs[i] }

// clock returns the environment clock behind the member futures (nil when
// every call was one-way — then nothing ever blocks anyway).
func (fg *FutureGroup[Resp]) clock() vclock.Clock {
	for _, f := range fg.futs {
		if f.fut != nil {
			return f.fut.node.env.cfg.Clock
		}
	}
	return nil
}

// WaitAll waits for every member and returns the replies in member order.
// timeout is the overall budget (0 = wait forever); on the first failure
// the remaining futures are discarded and the error returned.
func (fg *FutureGroup[Resp]) WaitAll(timeout time.Duration) ([]Resp, error) {
	out := make([]Resp, len(fg.futs))
	clk := fg.clock()
	var start time.Time
	if timeout > 0 && clk != nil {
		start = clk.Now()
	}
	for i, f := range fg.futs {
		budget := time.Duration(0)
		if timeout > 0 && clk != nil {
			budget = timeout - clk.Now().Sub(start)
			if budget <= 0 {
				fg.discardFrom(i)
				return nil, fmt.Errorf("%w: group wait after %v (%d/%d resolved)",
					ErrFutureTimeout, timeout, i, len(fg.futs))
			}
		}
		resp, err := f.Wait(budget)
		if err != nil {
			fg.discardFrom(i + 1)
			return nil, fmt.Errorf("member %d: %w", i, err)
		}
		out[i] = resp
	}
	return out, nil
}

// WaitAny waits until any member resolves and returns its index and
// reply. The other futures stay pending and consumable (call WaitAll, At
// or Discard on them later). timeout 0 waits forever.
func (fg *FutureGroup[Resp]) WaitAny(timeout time.Duration) (int, Resp, error) {
	var zero Resp
	if len(fg.futs) == 0 {
		return -1, zero, ErrEmptyGroup
	}
	// Fast path: someone already resolved (or is one-way).
	for i, f := range fg.futs {
		select {
		case <-f.Done():
			resp, err := f.Wait(0)
			return i, resp, err
		default:
		}
	}
	stop := make(chan struct{})
	defer close(stop)
	ready := make(chan int, len(fg.futs))
	for i, f := range fg.futs {
		go func(i int, done <-chan struct{}) {
			select {
			case <-done:
				ready <- i
			case <-stop:
			}
		}(i, f.Done())
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		if clk := fg.clock(); clk != nil {
			timeoutCh = clk.After(timeout)
		}
	}
	select {
	case i := <-ready:
		resp, err := fg.futs[i].Wait(0)
		return i, resp, err
	case <-timeoutCh:
		return -1, zero, fmt.Errorf("%w: group wait-any after %v", ErrFutureTimeout, timeout)
	}
}

// Discard releases every member future's heap pin without reading.
func (fg *FutureGroup[Resp]) Discard() { fg.discardFrom(0) }

func (fg *FutureGroup[Resp]) discardFrom(i int) {
	for _, f := range fg.futs[i:] {
		f.Discard()
	}
}
