package active

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ErrNodeDead reports an operation against a node the cluster has
// declared failed: new sends toward it are refused fast, and the futures
// that were owed results from it fail with this sentinel instead of
// hanging. It keeps its identity across the wire (wireSentinels), so a
// holder on any node can errors.Is it. Check with errors.Is.
var ErrNodeDead = errors.New("active: node is dead")

// ClusterConfig enables the elastic cluster runtime of an environment:
// membership (seed bootstrap, join/leave, node-ID leases), failure
// detection piggybacked on the DGC heartbeat traffic, and crash cleanup
// (ErrNodeDead fan-out, table purges). Disabled, none of its machinery
// runs and the hot path pays a single nil check.
type ClusterConfig struct {
	// Enabled turns the cluster runtime on.
	Enabled bool
	// Seed is the address of an existing member process to join through
	// (any member can be contacted; node-ID leases are granted by the
	// founding seed). Empty means bootstrap this process as the founding
	// seed. Only meaningful on substrates with process addressing
	// (tcpnet); a simnet environment is always its own single-process
	// cluster.
	Seed string
	// SuspectAfter is how long a member may go without observed contact
	// before it is suspected and probed. Defaults to 3×TTB: a member
	// referenced by anyone is heartbeated every TTB, so three missed
	// beats are genuine silence.
	SuspectAfter time.Duration
	// DeadAfter is how long a member may stay suspect before it is
	// declared dead. Defaults to TTA.
	DeadAfter time.Duration
	// LeaseBlock is how many node IDs a process leases from the seed at
	// once. Defaults to 64.
	LeaseBlock int
	// Failover lets a surviving member adopt a confirmed-dead member's
	// checkpointed activities (Config.Store must be set): the lowest-ID
	// alive node restores them under fresh identities and the old→new
	// rebinds gossip through the same channel a graceful Leave uses.
	// Holders of the dead identities rebind transparently; requests that
	// were in flight at the crash fail with ErrRecovered (at-most-once,
	// DESIGN.md §9).
	Failover bool
}

// Member is one entry of the cluster membership view.
type Member struct {
	Node ids.NodeID
	// Addr is the listen address of the process hosting the node (empty
	// in a single-process cluster).
	Addr string
	// State is the member's health as seen from this process.
	State cluster.State
}

// clusterAgent is the per-environment cluster runtime: it owns the
// membership map, the failure detector, the node-ID lease client (or the
// leaser itself, on the seed), and the gossip exchange. It is the
// process handler for process-addressed cluster frames on substrates
// that have them.
type clusterAgent struct {
	env    *Env
	cfg    ClusterConfig
	health *cluster.Health
	// pc is the transport's process-addressing extension; nil on simnet,
	// where the whole cluster lives in this process and no bootstrap or
	// gossip traffic is needed.
	pc       transport.ProcessCaller
	selfAddr string
	seedAddr string // "" when this process is the founding seed

	mu      sync.Mutex
	joined  bool
	stopped bool
	members map[ids.NodeID]string // node → hosting process address
	leaser  *cluster.Leaser       // non-nil on the founding seed
	// Current node-ID lease block: next free identifier and last granted
	// identifier (inclusive); exhausted when leaseNext > leaseEnd.
	leaseNext, leaseEnd uint32
	lastTick            time.Time

	wg sync.WaitGroup
}

var _ transport.Handler = (*clusterAgent)(nil)

func newClusterAgent(e *Env) *clusterAgent {
	cc := e.cfg.Cluster
	if cc.SuspectAfter <= 0 {
		cc.SuspectAfter = 3 * e.cfg.TTB
	}
	if cc.DeadAfter <= 0 {
		cc.DeadAfter = e.cfg.TTA
	}
	if cc.LeaseBlock <= 0 {
		cc.LeaseBlock = 64
	}
	a := &clusterAgent{
		env:     e,
		cfg:     cc,
		health:  cluster.NewHealth(cluster.HealthConfig{SuspectAfter: cc.SuspectAfter, DeadAfter: cc.DeadAfter}),
		members: make(map[ids.NodeID]string),
	}
	if pc, ok := e.net.(transport.ProcessCaller); ok {
		a.pc = pc
		a.selfAddr = pc.Addr()
		pc.SetProcessHandler(a)
	}
	if cc.Seed == "" || a.pc == nil {
		// Founding seed (or single-process cluster): own the identifier
		// space, starting where FirstNode says (clamped to 1).
		a.leaser = cluster.NewLeaser(e.cfg.FirstNode)
	} else {
		a.seedAddr = cc.Seed
	}
	return a
}

// ensureJoinedLocked performs the one-time bootstrap: the seed grants
// itself its first lease block; a joiner contacts the seed for a lease
// and the current member map. Caller holds a.mu.
func (a *clusterAgent) ensureJoinedLocked() error {
	if a.joined {
		return nil
	}
	if a.leaser != nil {
		first, count := a.leaser.Grant(a.cfg.LeaseBlock)
		a.leaseNext, a.leaseEnd = uint32(first), uint32(first)+uint32(count)-1
		a.joined = true
		return nil
	}
	req := cluster.EncodeJoin(cluster.Join{Addr: a.selfAddr, Want: a.cfg.LeaseBlock})
	resp, err := a.pc.CallAddr(a.seedAddr, transport.ClassCluster, req)
	if err != nil {
		return fmt.Errorf("active: join cluster via %s: %w", a.seedAddr, err)
	}
	if err := cluster.DecodeResponse(resp); err != nil {
		return fmt.Errorf("active: join cluster via %s: %w", a.seedAddr, err)
	}
	ok, err := cluster.DecodeJoinOK(resp)
	if err != nil {
		return fmt.Errorf("active: join cluster via %s: %w", a.seedAddr, err)
	}
	a.leaseNext, a.leaseEnd = uint32(ok.First), uint32(ok.First)+uint32(ok.Count)-1
	now := a.env.cfg.Clock.Now()
	for _, m := range ok.Members {
		a.members[m.Node] = m.Addr
		if m.Addr != "" && m.Addr != a.selfAddr {
			a.pc.AddPeer(m.Node, m.Addr)
		}
		a.health.Add(m.Node, now)
	}
	a.joined = true
	return nil
}

// nextNodeID allocates a node identifier from the current lease block,
// joining the cluster and refreshing the lease from the seed as needed.
// It panics on bootstrap failure (NewNode's error surface); call
// Env.Join first to handle join errors gracefully.
func (a *clusterAgent) nextNodeID() ids.NodeID {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.ensureJoinedLocked(); err != nil {
		panic(err.Error() + " (call Env.Join to handle this as an error)")
	}
	if a.leaseNext > a.leaseEnd {
		if a.leaser != nil {
			first, count := a.leaser.Grant(a.cfg.LeaseBlock)
			a.leaseNext, a.leaseEnd = uint32(first), uint32(first)+uint32(count)-1
		} else {
			resp, err := a.pc.CallAddr(a.seedAddr, transport.ClassCluster, cluster.EncodeLease(cluster.Lease{Want: a.cfg.LeaseBlock}))
			if err == nil {
				err = cluster.DecodeResponse(resp)
			}
			var ok cluster.LeaseOK
			if err == nil {
				ok, err = cluster.DecodeLeaseOK(resp)
			}
			if err != nil {
				panic(fmt.Sprintf("active: node-ID lease from seed %s: %v", a.seedAddr, err))
			}
			a.leaseNext, a.leaseEnd = uint32(ok.First), uint32(ok.First)+uint32(ok.Count)-1
		}
	}
	id := ids.NodeID(a.leaseNext)
	a.leaseNext++
	return id
}

// noteNodeUp records a locally created node and gossips it to every
// known member process (and the seed), which is how the rest of the
// cluster learns both the node and the address to dial it at.
func (a *clusterAgent) noteNodeUp(id ids.NodeID) {
	a.health.Add(id, a.env.cfg.Clock.Now())
	a.mu.Lock()
	a.members[id] = a.selfAddr
	targets := a.remoteAddrsLocked("")
	a.mu.Unlock()
	a.gossip(cluster.EncodeNodeEvent(cluster.MsgNodeUp, cluster.NodeEvent{Node: id, Addr: a.selfAddr}), targets)
}

// noteNodeLeft records a graceful local departure and gossips it.
func (a *clusterAgent) noteNodeLeft(id ids.NodeID) {
	if !a.health.MarkLeft(id) {
		return
	}
	a.mu.Lock()
	delete(a.members, id)
	targets := a.remoteAddrsLocked("")
	a.mu.Unlock()
	a.env.refreshRing()
	a.gossip(cluster.EncodeNodeEvent(cluster.MsgNodeLeft, cluster.NodeEvent{Node: id}), targets)
}

// remoteAddrsLocked returns the distinct remote process addresses gossip
// should reach: every member's host plus the seed, excluding this
// process and exclude. Caller holds a.mu.
func (a *clusterAgent) remoteAddrsLocked(exclude string) []string {
	if a.pc == nil {
		return nil
	}
	seen := map[string]struct{}{a.selfAddr: {}, "": {}, exclude: {}}
	var out []string
	if a.seedAddr != "" {
		seen[a.seedAddr] = struct{}{}
		out = append(out, a.seedAddr)
	}
	for _, addr := range a.members {
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		out = append(out, addr)
	}
	return out
}

// gossip ships a membership payload to each target process in the
// background. Gossip is fire-and-forget: an unreachable target either is
// dead (its failure will be detected and its state purged) or will catch
// up from another member's relay.
func (a *clusterAgent) gossip(payload []byte, targets []string) {
	if a.pc == nil || len(targets) == 0 {
		return
	}
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.wg.Add(1)
	a.mu.Unlock()
	go func() {
		defer a.wg.Done()
		for _, addr := range targets {
			_, _ = a.pc.CallAddr(addr, transport.ClassCluster, payload)
		}
	}()
}

// stop prevents further background exchanges and waits out the running
// ones (called by Env.Close before the transport goes down).
func (a *clusterAgent) stop() {
	a.mu.Lock()
	a.stopped = true
	a.mu.Unlock()
	a.wg.Wait()
}

// observe feeds the failure detector with proof of life from inbound
// traffic — the piggybacking that keeps the happy path free of any
// dedicated liveness message.
func (a *clusterAgent) observe(from ids.NodeID) {
	a.health.Observe(from, a.env.cfg.Clock.Now())
}

// noteExchange feeds the detector with the outcome of an outbound
// request/response exchange (the DGC driver's heartbeats, mostly): a
// success proves the peer alive, a failure makes it suspect.
func (a *clusterAgent) noteExchange(dst ids.NodeID, err error) {
	now := a.env.cfg.Clock.Now()
	if err == nil {
		a.health.Observe(dst, now)
		return
	}
	if errors.Is(err, ErrNodeDead) {
		return // already declared; nothing new to learn
	}
	a.health.ObserveFailure(dst, now)
}

// maybeTick advances the failure detector at most once per TTB; the DGC
// drivers of all local nodes call it from their beat, so detection needs
// no timer of its own. Members that transitioned to dead are cleaned up
// and gossiped; current suspects are probed in the background through n.
func (a *clusterAgent) maybeTick(n *Node) {
	now := a.env.cfg.Clock.Now()
	a.mu.Lock()
	if a.stopped || (!a.lastTick.IsZero() && now.Sub(a.lastTick) < a.env.cfg.TTB) {
		a.mu.Unlock()
		return
	}
	a.lastTick = now
	a.mu.Unlock()
	// A process vouches for its own nodes: they share its fate, so
	// silence must never walk them down the suspect path (an idle local
	// node would oscillate alive↔suspect on probe timing — and a
	// transiently-suspect local node would lose a failover-survivor
	// election it is running in).
	for _, id := range a.env.localNodeIDs() {
		a.health.Observe(id, now)
	}
	probe, dead := a.health.Tick(now)
	for _, p := range dead {
		a.onDeath(p)
	}
	for _, p := range probe {
		a.spawnProbe(n, p)
	}
}

// spawnProbe pings a suspect in the background: the one message class
// that exists only off the happy path. A pong resurrects the suspect; an
// error leaves the dead countdown running.
func (a *clusterAgent) spawnProbe(n *Node, p ids.NodeID) {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.wg.Add(1)
	a.mu.Unlock()
	go func() {
		defer a.wg.Done()
		resp, err := n.transportCall(p, transport.ClassCluster, cluster.EncodePing())
		if err == nil && len(resp) > 0 && resp[0] == cluster.MsgPong {
			a.health.Observe(p, a.env.cfg.Clock.Now())
		}
	}()
}

// announceRebinds ships a leaving node's (old → new) activity pairs to
// every member process. No relay is needed: the leaver holds the full
// member view, so the announcement reaches everyone directly.
func (a *clusterAgent) announceRebinds(rebinds []cluster.Rebind) {
	a.mu.Lock()
	targets := a.remoteAddrsLocked("")
	a.mu.Unlock()
	a.gossip(cluster.EncodeRebinds(rebinds), targets)
}

// onDeath runs the confirmed-death protocol for p (whose health state is
// already Dead): purge its runtime state, fail what it owed, refuse new
// sends, and tell the other member processes.
func (a *clusterAgent) onDeath(p ids.NodeID) {
	a.env.failDeadNode(p)
	a.mu.Lock()
	delete(a.members, p)
	targets := a.remoteAddrsLocked("")
	a.mu.Unlock()
	if a.pc != nil {
		a.pc.RemovePeer(p)
	}
	a.gossip(cluster.EncodeNodeEvent(cluster.MsgNodeDead, cluster.NodeEvent{Node: p}), targets)
	// With failover on, the designated survivor adopts the dead node's
	// checkpointed activities now that every in-flight obligation toward
	// the dead node has been failed fast.
	a.env.adoptDeadNode(p)
}

// skipLeases advances this process's node-ID allocation past first:
// recovery re-created nodes with pre-crash identifiers, and a later
// NewNode must not collide with them. On the founding seed the leaser
// itself advances; the local lease block is clamped on every process.
func (a *clusterAgent) skipLeases(first ids.NodeID) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.leaser != nil {
		a.leaser.SkipTo(first)
	}
	switch {
	case a.leaseNext >= uint32(first):
		// Already past it.
	case uint32(first) <= a.leaseEnd:
		a.leaseNext = uint32(first)
	default:
		// The whole remaining block sits below first: burn it and grant a
		// fresh one on the next NewNode.
		a.leaseNext = a.leaseEnd + 1
	}
}

// ---------------------------------------------------------------------------
// Inbound cluster traffic.

// HandleCall implements transport.Handler for process-addressed frames:
// join/lease exchanges and gossip deliveries (WIRE.md §8).
func (a *clusterAgent) HandleCall(from ids.NodeID, class transport.Class, payload []byte) []byte {
	if class != transport.ClassCluster || len(payload) == 0 {
		return nil
	}
	switch payload[0] {
	case cluster.MsgJoin:
		return a.handleJoin(payload)
	case cluster.MsgLease:
		return a.handleLease(payload)
	case cluster.MsgNodeUp, cluster.MsgNodeDead, cluster.MsgNodeLeft:
		a.handleEvent(payload)
		return cluster.EncodeAck()
	case cluster.MsgRebinds:
		a.handleRebinds(payload)
		return cluster.EncodeAck()
	case cluster.MsgPing:
		return cluster.EncodePong()
	default:
		return cluster.EncodeErr("unknown cluster message")
	}
}

// HandleOneWay implements transport.Handler (gossip may also arrive
// one-way).
func (a *clusterAgent) HandleOneWay(from ids.NodeID, class transport.Class, payload []byte) {
	if class != transport.ClassCluster || len(payload) == 0 {
		return
	}
	switch payload[0] {
	case cluster.MsgNodeUp, cluster.MsgNodeDead, cluster.MsgNodeLeft:
		a.handleEvent(payload)
	case cluster.MsgRebinds:
		a.handleRebinds(payload)
	}
}

// handleRebinds applies a leaving node's relocation announcement to
// every local node.
func (a *clusterAgent) handleRebinds(payload []byte) {
	rebinds, err := cluster.DecodeRebinds(payload)
	if err != nil {
		return
	}
	a.env.applyRebinds(rebinds)
}

// handleNodeCall answers node-addressed cluster exchanges (the suspect
// probe) on behalf of a node.
func (a *clusterAgent) handleNodeCall(from ids.NodeID, payload []byte) []byte {
	if len(payload) > 0 && payload[0] == cluster.MsgPing {
		return cluster.EncodePong()
	}
	return nil
}

// handleJoin grants a node-ID lease and returns the current member map.
// Only the founding seed owns the leaser; a joiner that contacted a
// non-seed member is refused with the seed's address to retry against.
func (a *clusterAgent) handleJoin(payload []byte) []byte {
	j, err := cluster.DecodeJoin(payload)
	if err != nil {
		return cluster.EncodeErr(err.Error())
	}
	a.mu.Lock()
	if a.leaser == nil {
		seed := a.seedAddr
		a.mu.Unlock()
		return cluster.EncodeErr("not the seed process; join via " + seed)
	}
	first, count := a.leaser.Grant(j.Want)
	ms := make([]cluster.Member, 0, len(a.members))
	for node, addr := range a.members {
		ms = append(ms, cluster.Member{Node: node, Addr: addr})
	}
	a.mu.Unlock()
	return cluster.EncodeJoinOK(cluster.JoinOK{First: first, Count: count, Members: ms})
}

// handleLease grants a further node-ID block to an existing member.
func (a *clusterAgent) handleLease(payload []byte) []byte {
	l, err := cluster.DecodeLease(payload)
	if err != nil {
		return cluster.EncodeErr(err.Error())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.leaser == nil {
		return cluster.EncodeErr("not the seed process; lease via " + a.seedAddr)
	}
	first, count := a.leaser.Grant(l.Want)
	return cluster.EncodeLeaseOK(cluster.LeaseOK{First: first, Count: count})
}

// handleEvent applies one gossip delivery. News (a state change this
// process had not seen) is relayed to the other members, so any member
// hearing an event first floods it to everyone; already-known events are
// absorbed, which terminates the flood.
func (a *clusterAgent) handleEvent(payload []byte) {
	kind, ev, err := cluster.DecodeNodeEvent(payload)
	if err != nil {
		return
	}
	switch kind {
	case cluster.MsgNodeUp:
		if s := a.health.StateOf(ev.Node); s == cluster.StateDead || s == cluster.StateLeft {
			return // identifiers are never reused; late node-up cannot resurrect
		}
		a.mu.Lock()
		if _, known := a.members[ev.Node]; known {
			a.mu.Unlock()
			return
		}
		a.members[ev.Node] = ev.Addr
		targets := a.remoteAddrsLocked(ev.Addr)
		a.mu.Unlock()
		if a.pc != nil && ev.Addr != "" && ev.Addr != a.selfAddr {
			a.pc.AddPeer(ev.Node, ev.Addr)
		}
		a.health.Add(ev.Node, a.env.cfg.Clock.Now())
		a.env.refreshRing()
		a.gossip(payload, targets)
	case cluster.MsgNodeDead:
		if a.health.MarkDead(ev.Node) {
			a.onDeath(ev.Node)
		}
	case cluster.MsgNodeLeft:
		if !a.health.MarkLeft(ev.Node) {
			return
		}
		a.mu.Lock()
		delete(a.members, ev.Node)
		targets := a.remoteAddrsLocked("")
		a.mu.Unlock()
		if a.pc != nil {
			a.pc.RemovePeer(ev.Node)
		}
		a.env.refreshRing()
		a.gossip(payload, targets)
	}
}

// ---------------------------------------------------------------------------
// Env surface.

// Join performs the cluster bootstrap explicitly (contact the seed,
// receive a node-ID lease and the member map) and surfaces its error.
// Without it, the first NewNode joins implicitly and panics on failure.
// Join is a no-op on the seed, on single-process clusters, and once
// joined.
func (e *Env) Join() error {
	if e.cluster == nil {
		return fmt.Errorf("active: cluster runtime not enabled")
	}
	e.cluster.mu.Lock()
	defer e.cluster.mu.Unlock()
	return e.cluster.ensureJoinedLocked()
}

// ClusterMembers returns the membership view of this process: every
// known member with its hosting address and health state, sorted by node
// identifier. Dead and left members appear as tombstones. It returns nil
// when the cluster runtime is disabled.
func (e *Env) ClusterMembers() []Member {
	if e.cluster == nil {
		return nil
	}
	states := e.cluster.health.Snapshot()
	e.cluster.mu.Lock()
	out := make([]Member, 0, len(states))
	for node, st := range states {
		out = append(out, Member{Node: node, Addr: e.cluster.members[node], State: st})
	}
	e.cluster.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// NodeHealth returns the health state of a member as seen from this
// process (cluster.StateUnknown when untracked or the cluster runtime is
// disabled).
func (e *Env) NodeHealth(p ids.NodeID) cluster.State {
	if e.cluster == nil {
		return cluster.StateUnknown
	}
	return e.cluster.health.StateOf(p)
}

// ---------------------------------------------------------------------------
// Death bookkeeping: the dead-node set and the cleanup fan-out.

// markDeadNode adds p to the environment's copy-on-write dead set — the
// structure behind the hot path's refuse-fast check (one atomic load, no
// lock, nil until the first death).
func (e *Env) markDeadNode(p ids.NodeID) {
	e.deadMu.Lock()
	defer e.deadMu.Unlock()
	next := make(map[ids.NodeID]struct{})
	if old := e.deadNodes.Load(); old != nil {
		for k := range *old {
			next[k] = struct{}{}
		}
	}
	next[p] = struct{}{}
	e.deadNodes.Store(&next)
}

// isDeadNode reports whether p has been declared dead.
func (e *Env) isDeadNode(p ids.NodeID) bool {
	m := e.deadNodes.Load()
	if m == nil {
		return false
	}
	_, ok := (*m)[p]
	return ok
}

// failDeadNode runs the local consequences of a confirmed death: refuse
// new sends toward p, fail every future that was owed a result from it
// (fanned out to all registered holders), purge p from holder lists, and
// drop rebind entries pointing at it. The orphaned remote subgraphs need
// no explicit action — activities referenced only from p stop hearing
// beats and collect themselves acyclically after TTA (§4.2), with p's
// tags effectively treated as dropped roots.
func (e *Env) failDeadNode(p ids.NodeID) {
	e.markDeadNode(p)
	e.refreshRing()
	err := fmt.Errorf("%w: node-%d", ErrNodeDead, p)
	e.mu.Lock()
	nodes := make([]*Node, 0, len(e.nodes))
	for _, n := range e.nodes {
		nodes = append(nodes, n)
	}
	e.mu.Unlock()
	for _, n := range nodes {
		n.futures.failNodeDead(p, err)
		n.purgeRebindsTo(p)
		n.failRelaysVia(p)
	}
}

// Leave departs the cluster gracefully: every live activity hosted on
// this node is drained to dst via live migration (WIRE.md §7), the
// departure is announced to the members, and the node shuts down. Unlike
// a crash, nothing fails with ErrNodeDead — callers follow the migrated
// activities to dst. Registered activities can only be drained within
// their environment (the registry is per-Env); a cross-process Leave
// with registered activities returns ErrMigrationFailed. Activities
// without a registered kind cannot migrate and abort the Leave.
func (n *Node) Leave(dst ids.NodeID) error {
	if dst == n.id {
		return fmt.Errorf("active: Leave: destination is the leaving node")
	}
	var moved []cluster.Rebind
	for _, ao := range n.snapshotActivities() {
		if ao.dummy || ao.terminated.Load() || !ao.forwardTarget().IsNil() {
			continue
		}
		h, err := n.HandleFor(wire.Ref(ao.id))
		if err != nil {
			continue // destroyed since the snapshot
		}
		fut, err := h.Migrate(dst)
		if err == nil {
			_, err = fut.Wait(30 * time.Second)
		}
		h.Release()
		if err != nil {
			return fmt.Errorf("active: Leave: drain %v to %v: %w", ao.id, dst, err)
		}
		// Push the rebinding at every referencer the forwarder knows
		// (the reference-listing DGC keeps that list): the forwarder
		// disappears with this node, so the usual heartbeat-triggered
		// redirect may never get its chance.
		if newID := ao.forwardTarget(); !newID.IsNil() {
			moved = append(moved, cluster.Rebind{Old: ao.id, New: newID})
			for _, ref := range ao.collector.Referencers() {
				if ref.Node != n.id {
					n.sendRedirect(ref.Node, ao.id, newID)
				}
			}
		}
	}
	// Referencer lists are only as fresh as the last heartbeat, so a
	// holder whose first beat has not landed yet would miss the pushed
	// redirect and be left with a reference into a vanished node. The
	// cluster layer closes that gap: the rebind pairs are applied on
	// every local node and announced to every member process.
	if len(moved) > 0 {
		n.env.applyRebinds(moved)
		if ag := n.env.cluster; ag != nil {
			ag.announceRebinds(moved)
		}
	}
	// Give the pushed redirects one beat to land before the node — and
	// the forwarders with it — disappears.
	n.env.cfg.Clock.Sleep(n.env.cfg.TTB)
	if ag := n.env.cluster; ag != nil {
		ag.noteNodeLeft(n.id)
	}
	n.Crash()
	return nil
}

// applyRebinds retargets stale references on every node of this
// environment (rebind table plus in-heap stub rewrite via applyRedirect).
func (e *Env) applyRebinds(rebinds []cluster.Rebind) {
	e.mu.Lock()
	nodes := make([]*Node, 0, len(e.nodes))
	for _, n := range e.nodes {
		nodes = append(nodes, n)
	}
	e.mu.Unlock()
	for _, n := range nodes {
		for _, r := range rebinds {
			n.applyRedirect(r.Old, r.New)
		}
	}
}

// routeCheck refuses traffic toward a node the cluster declared dead —
// the fail-fast guard in front of every outbound send and call. The
// dead set is nil until a death is confirmed, so the check is one atomic
// load on the healthy path.
func (n *Node) routeCheck(dst ids.NodeID) error {
	if dst == n.id || !n.env.isDeadNode(dst) {
		return nil
	}
	return fmt.Errorf("%w: node-%d", ErrNodeDead, dst)
}

// purgeRebindsTo drops location entries whose target lives on a dead
// node: resolving a stale reference onto a dead destination would only
// trade a hang for a slower failure. Entries *through* identities of
// the dead node (key on the dead node, value alive elsewhere) are kept —
// they are exactly what lets a late call through a dead forwarder still
// reach the migrated activity.
func (n *Node) purgeRebindsTo(p ids.NodeID) {
	n.purgeLocationsTo(p)
}
