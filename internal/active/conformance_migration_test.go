package active

// Cross-backend conformance for live activity migration (WIRE.md §7):
// the same three scenarios — migrate with calls in flight, migrate with
// an unresolved forwarded future in state, migrate a member of a
// distributed cycle and still collect it — run over both transport
// substrates, pinning down that migration depends only on the
// transport.Transport contract.

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/wire"
)

// migCounter accumulates integers in persistent state: the canonical
// migratable behavior (all its state is wire-expressible).
type migCounter struct{}

func (migCounter) Serve(ctx *Context, method string, args wire.Value) (wire.Value, error) {
	switch method {
	case "add":
		total := ctx.Load("total").AsInt() + args.AsInt()
		ctx.Store("total", wire.Int(total))
		return wire.Int(total), nil
	case "total":
		return ctx.Load("total"), nil
	case "moveto":
		// Self-initiated migration: the paper's mobile-agent shape.
		if err := ctx.MigrateTo(ids.NodeID(args.AsInt())); err != nil {
			return wire.Null(), err
		}
		return wire.Null(), nil
	}
	return wire.Null(), errors.New("migCounter: unknown method " + method)
}

// migWaiter calls a slow peer, stores the unresolved future first-class
// in its state, and resolves it on demand — across a migration.
type migWaiter struct{}

func (migWaiter) Serve(ctx *Context, method string, args wire.Value) (wire.Value, error) {
	switch method {
	case "begin":
		fut, err := ctx.Call(args, "slowping", wire.Null())
		if err != nil {
			return wire.Null(), err
		}
		fr, ok := fut.WireFutureRef()
		if !ok {
			return wire.Null(), errors.New("migWaiter: no wire identity")
		}
		ctx.Store("pending", wire.FutureVal(fr))
		return wire.Null(), nil
	case "finish":
		f, err := ctx.Future(ctx.Load("pending"))
		if err != nil {
			return wire.Null(), err
		}
		return f.Wait(10 * time.Second)
	}
	return wire.Null(), errors.New("migWaiter: unknown method " + method)
}

func init() {
	RegisterBehavior("test/counter", func() Behavior { return migCounter{} })
	RegisterBehavior("test/waiter", func() Behavior { return migWaiter{} })
	RegisterBehavior("test/relay", func() Behavior { return relay{} })
}

// TestConformanceMigrateWithCallsInFlight hammers an activity with calls
// from a third node while it migrates between the other two: every call
// must succeed (relayed by the forwarder or rebound by its redirect) and
// the migrated state must account for all of them.
func TestConformanceMigrateWithCallsInFlight(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()
		h, err := n1.SpawnKind("counter", "test/counter")
		if err != nil {
			t.Fatal(err)
		}
		caller, err := n3.HandleFor(h.Ref())
		if err != nil {
			t.Fatal(err)
		}
		defer caller.Release()

		const total = 120
		var wg sync.WaitGroup
		wg.Add(1)
		callErr := make(chan error, 1)
		var done atomic.Int64
		go func() {
			defer wg.Done()
			for i := 0; i < total; i++ {
				if _, err := caller.CallSync("add", wire.Int(1), 10*time.Second); err != nil {
					callErr <- err
					return
				}
				done.Add(1)
			}
		}()

		// Migrate mid-hammer — at least one call has completed, the rest
		// cross the move; the returned future resolves with the new
		// reference on n2.
		waitUntil(t, func() bool { return done.Load() >= 1 }, 10*time.Second)
		mfut, err := h.Migrate(n2.ID())
		if err != nil {
			t.Fatal(err)
		}
		newRef, err := mfut.Wait(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if id, ok := newRef.AsRef(); !ok || id.Node != n2.ID() {
			t.Fatalf("migrated ref = %v, want an activity on %v", newRef, n2.ID())
		}
		wg.Wait()
		select {
		case err := <-callErr:
			t.Fatalf("call during migration failed: %v", err)
		default:
		}

		got, err := caller.CallSync("total", wire.Null(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got.AsInt() != total {
			t.Fatalf("total = %d, want %d (requests lost in migration)", got.AsInt(), total)
		}
		// The caller must have rebound: its next call routes straight to
		// n2 without a live forwarder in the path.
		if got2, err := caller.CallSync("add", wire.Int(0), 10*time.Second); err != nil || got2.AsInt() != total {
			t.Fatalf("post-rebind call = %v, %v", got2, err)
		}
		h.Release()
	})
}

// TestConformanceMigrateUnresolvedFuture migrates an activity while a
// first-class future stored in its state is still unresolved: the proxy
// re-subscribes from the destination and the value arrives there.
func TestConformanceMigrateUnresolvedFuture(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()
		// The producer parks on a gate the test closes only after the
		// migration completes, so the future is unresolved throughout the
		// move by construction.
		gate := make(chan struct{})
		slow := n3.NewActive("slow", BehaviorFunc(func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
			<-gate
			return wire.Int(42), nil
		}))
		defer slow.Release()
		h, err := n1.SpawnKind("waiter", "test/waiter")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Release()
		if _, err := h.CallSync("begin", slow.Ref(), 10*time.Second); err != nil {
			t.Fatal(err)
		}
		mfut, err := h.Migrate(n2.ID())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mfut.Wait(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		close(gate)
		got, err := h.CallSync("finish", wire.Null(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got.AsInt() != 42 {
			t.Fatalf("forwarded future across migration = %v, want 42", got)
		}
	})
}

// TestConformanceMigrateThenCycleCollect builds the 3-node cycle of the
// base conformance suite, migrates one member to a fourth node, releases
// every handle and requires the (now partially rebound) distributed cycle
// to be fully collected — forwarder included.
func TestConformanceMigrateThenCycleCollect(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2, n3, n4 := e.NewNode(), e.NewNode(), e.NewNode(), e.NewNode()
		ha, err := n1.SpawnKind("a", "test/relay")
		if err != nil {
			t.Fatal(err)
		}
		hb, err := n2.SpawnKind("b", "test/relay")
		if err != nil {
			t.Fatal(err)
		}
		hc, err := n3.SpawnKind("c", "test/relay")
		if err != nil {
			t.Fatal(err)
		}
		for _, link := range []struct{ h, to *Handle }{{ha, hb}, {hb, hc}, {hc, ha}} {
			if _, err := link.h.CallSync("set:peer", link.to.Ref(), 5*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		mfut, err := hb.Migrate(n4.ID())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mfut.Wait(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		// The migrated member still serves through its ring edge: a calls
		// its (rebound) peer.
		if got, err := ha.CallSync("callpeer", wire.Null(), 10*time.Second); err != nil || got.AsInt() != 1 {
			t.Fatalf("callpeer through migrated member = %v, %v", got, err)
		}
		ha.Release()
		hb.Release()
		hc.Release()
		if _, err := e.WaitCollected(0, 20*time.Second); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceSelfMigration exercises Context.MigrateTo: the activity
// relocates itself after the current service and keeps serving.
func TestConformanceSelfMigration(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2 := e.NewNode(), e.NewNode()
		h, err := n1.SpawnKind("roamer", "test/counter")
		if err != nil {
			t.Fatal(err)
		}
		defer h.Release()
		if _, err := h.CallSync("add", wire.Int(7), 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if _, err := h.CallSync("moveto", wire.Int(int64(n2.ID())), 10*time.Second); err != nil {
			t.Fatal(err)
		}
		got, err := h.CallSync("total", wire.Null(), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got.AsInt() != 7 {
			t.Fatalf("state after self-migration = %v, want 7", got)
		}
		if n1.liveCount() > 1 {
			// The roamer itself must be gone from n1 (only the forwarder,
			// and transiently the handle's dummy, remain).
			t.Fatalf("n1 live = %d after self-migration", n1.liveCount())
		}
	})
}
