package active

// Cross-backend conformance for durable activities (WIRE.md §11,
// DESIGN.md §9): explicit and cadence-driven checkpoints, crash recovery
// under the old identities with at-most-once delivery (checkpointed
// in-flight requests fail with ErrRecovered, never replay), cluster
// failover onto the lowest-ID survivor with gossiped rebinds, and a
// crash-at-every-offset torture run proving Env.Recover never panics and
// never resurrects state that was not durably checkpointed. The simnet
// scenarios model kill-and-restart inside one environment (KillNode /
// ReviveNode are the chaos hooks); the TCP scenarios run one environment
// per process against a store that survives the process.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/tcpnet"
	"repro/internal/wire"
)

// parkCounterBehavior is migCounter plus a "park" method that blocks on
// gate (signalling started non-blockingly first) — the shape recovery
// tests need: persistent state to restore plus a request that is
// provably in flight when the machine dies.
func parkCounterBehavior(started chan<- struct{}, gate <-chan struct{}) Behavior {
	return BehaviorFunc(func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
		switch method {
		case "add":
			total := ctx.Load("total").AsInt() + args.AsInt()
			ctx.Store("total", wire.Int(total))
			return wire.Int(total), nil
		case "total":
			return ctx.Load("total"), nil
		case "park":
			select {
			case started <- struct{}{}:
			default:
			}
			<-gate
			return wire.Null(), nil
		}
		return wire.Null(), errors.New("parkCounter: unknown method " + method)
	})
}

// callRetry is callUntilOK with a short per-call timeout: right after a
// process restart a send can race a stale pooled connection that has not
// noticed the peer died yet — the write succeeds into a dying socket and
// the message is simply gone, which is exactly the loss the runtime asks
// callers to retry through. A short per-call bound keeps one lost
// message from eating the whole retry budget.
func callRetry(t *testing.T, h *Handle, method string, args wire.Value, timeout time.Duration) wire.Value {
	t.Helper()
	var v wire.Value
	waitUntil(t, func() bool {
		got, err := h.CallSync(method, args, time.Second)
		if err != nil {
			return false
		}
		v = got
		return true
	}, timeout)
	return v
}

// TestConformanceRecoverSim is kill-and-restart inside one simnet
// environment: a durable counter on n2 is checkpointed with one request
// provably still queued, the machine dies, and Recover brings the
// counter back under its old identity — state intact, name re-bound,
// the checkpointed in-flight request failed with ErrRecovered rather
// than replayed, and the caller's old reference serving again. A
// graceful destroy afterwards must retire the checkpoint from the store.
func TestConformanceRecoverSim(t *testing.T) {
	t.Parallel()
	started := make(chan struct{}, 4)
	gate := make(chan struct{})
	const kind = "test/recover-sim"
	RegisterBehavior(kind, func() Behavior { return parkCounterBehavior(started, gate) })

	st := store.NewMemStore()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
		Store: st,
	})
	defer e.Close()
	n1, n2 := e.NewNode(), e.NewNode()

	h, err := n2.SpawnKind("ctr", kind)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterName("recover-sim-ctr", h.Ref()); err != nil {
		t.Fatal(err)
	}
	caller, err := n1.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := caller.CallSync("add", wire.Int(5), 5*time.Second); err != nil || v.AsInt() != 5 {
		t.Fatalf("add = %v, %v", v, err)
	}

	// The park dance. All three requests go through the same handle, so
	// per-sender FIFO pins the queue order: park1 is being served,
	// the checkpoint waits behind it, park2 behind the checkpoint — the
	// snapshot must capture exactly [park2] as the pending queue.
	parkFut1, err := caller.Call("park", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ckptFut, err := caller.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	parkFut2, err := caller.Call("park", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // park1 returns, the checkpoint runs next
	if _, err := parkFut1.Wait(5 * time.Second); err != nil {
		t.Fatalf("park1: %v", err)
	}
	ref, err := ckptFut.Wait(5 * time.Second)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if mustRef(t, ref) != mustRef(t, h.Ref()) {
		t.Fatalf("checkpoint resolved %v, want %v", ref, h.Ref())
	}
	<-started // park2 is now parked: in flight, checkpointed as queued

	// The machine dies mid-service and restarts.
	net := e.Network().(*simnet.Network)
	net.KillNode(n2.ID())
	close(gate)
	n2.Crash()
	net.ReviveNode(n2.ID())

	if st.Len() != 1 {
		t.Fatalf("store holds %d checkpoints, want 1", st.Len())
	}
	restored, err := e.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored = %d, want 1", restored)
	}

	// At-most-once: the checkpointed in-flight request fails, visibly.
	if _, err := parkFut2.Wait(5 * time.Second); !errors.Is(err, ErrRecovered) {
		t.Fatalf("in-flight future error = %v, want ErrRecovered", err)
	}

	// Old identity, old name, old state.
	if got, err := e.Lookup("recover-sim-ctr"); err != nil || mustRef(t, got) != mustRef(t, h.Ref()) {
		t.Fatalf("Lookup after recovery = %v, %v (want %v)", got, err, h.Ref())
	}
	if v := callUntilOK(t, caller, "total", wire.Null(), 5*time.Second); v.AsInt() != 5 {
		t.Fatalf("total after recovery = %v, want 5", v)
	}
	if v, err := caller.CallSync("add", wire.Int(3), 5*time.Second); err != nil || v.AsInt() != 8 {
		t.Fatalf("add after recovery = %v, %v", v, err)
	}

	// Recover is idempotent: everything durable is already live.
	if again, err := e.Recover(); err != nil || again != 0 {
		t.Fatalf("second Recover = %d, %v, want 0, nil", again, err)
	}

	// A graceful end of life retires the checkpoint: unregister, drop
	// the last reference, and the destroy deletes the store entry.
	e.Unregister("recover-sim-ctr")
	caller.Release()
	h.Release()
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return st.Len() == 0 }, 5*time.Second)
}

// TestConformanceRecoverTCP is the multi-process restart: a durable
// counter in process B checkpoints against a store that outlives the
// process, B is hard-killed and a fresh process opens the same store,
// recovers the counter under its old node and activity identity, and
// process A's old reference works again once the address books point at
// the restarted listener.
func TestConformanceRecoverTCP(t *testing.T) {
	t.Parallel()
	started := make(chan struct{}, 4)
	gate := make(chan struct{})
	const kind = "test/recover-tcp"
	RegisterBehavior(kind, func() Behavior { return parkCounterBehavior(started, gate) })

	st := store.NewMemStore()
	newTCPEnv := func(first ids.NodeID) *Env {
		tr, err := tcpnet.New(tcpnet.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return NewEnv(Config{
			TTB: 10 * time.Millisecond, TTA: 40 * time.Millisecond,
			Transport: tr, FirstNode: first, Store: st,
		})
	}

	envA := newTCPEnv(1)
	defer envA.Close()
	nA := envA.NewNode()
	trA := envA.Network().(*tcpnet.Network)

	envB := newTCPEnv(100)
	nB := envB.NewNode()
	trB := envB.Network().(*tcpnet.Network)
	trA.AddPeer(nB.ID(), trB.Addr())
	trB.AddPeer(nA.ID(), trA.Addr())

	h, err := nB.SpawnKind("ctr", kind)
	if err != nil {
		t.Fatal(err)
	}
	if err := envB.RegisterName("recover-tcp-ctr", h.Ref()); err != nil {
		t.Fatal(err)
	}
	caller, err := nA.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v := callUntilOK(t, caller, "add", wire.Int(5), 10*time.Second); v.AsInt() != 5 {
		t.Fatalf("add = %v, want 5", v)
	}

	// Same park dance as the sim scenario, now across real TCP.
	parkFut1, err := caller.Call("park", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ckptFut, err := caller.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	parkFut2, err := caller.Call("park", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{}
	if _, err := parkFut1.Wait(10 * time.Second); err != nil {
		t.Fatalf("park1: %v", err)
	}
	if _, err := ckptFut.Wait(10 * time.Second); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	<-started

	// Hard-kill process B: listener gone, runtime reaped mid-park.
	trB.Close()
	close(gate)
	envB.Close()

	// A fresh process opens the same store. Wire the address books in
	// both directions before recovering, so the ErrRecovered fan-out for
	// the checkpointed in-flight request can reach process A.
	envB2 := newTCPEnv(100)
	defer envB2.Close()
	trB2 := envB2.Network().(*tcpnet.Network)
	trA.AddPeer(nB.ID(), trB2.Addr())
	trB2.AddPeer(nA.ID(), trA.Addr())

	restored, err := envB2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored = %d, want 1", restored)
	}
	if _, err := parkFut2.Wait(10 * time.Second); !errors.Is(err, ErrRecovered) {
		t.Fatalf("in-flight future error = %v, want ErrRecovered", err)
	}
	if got, err := envB2.Lookup("recover-tcp-ctr"); err != nil || mustRef(t, got) != mustRef(t, h.Ref()) {
		t.Fatalf("Lookup after recovery = %v, %v (want %v)", got, err, h.Ref())
	}
	if v := callRetry(t, caller, "total", wire.Null(), 10*time.Second); v.AsInt() != 5 {
		t.Fatalf("total after recovery = %v, want 5", v)
	}
	if v := callRetry(t, caller, "add", wire.Int(3), 10*time.Second); v.AsInt() < 8 {
		t.Fatalf("add after recovery = %v, want >= 8", v)
	}
	caller.Release()
}

// TestConformanceFailoverSim is cluster failover in one simnet
// environment: a checkpointed counter lives on n3, the machine dies,
// the failure detector confirms the death, and the lowest-ID survivor
// adopts the checkpoint — restored under a fresh identity, re-bound
// under its registry name, the old→new rebind applied so holders of the
// dead identity keep calling, and the store rewritten so nothing points
// at the dead node range any more.
func TestConformanceFailoverSim(t *testing.T) {
	t.Parallel()
	st := store.NewMemStore()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
		Store:   st,
		Cluster: ClusterConfig{Enabled: true, Failover: true},
	})
	defer e.Close()
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()

	h, err := n3.SpawnKind("fo", "test/cluster-counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterName("failover-sim-ctr", h.Ref()); err != nil {
		t.Fatal(err)
	}
	caller, err := n2.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := caller.CallSync("add", wire.Int(5), 5*time.Second); err != nil || v.AsInt() != 5 {
		t.Fatalf("add = %v, %v", v, err)
	}
	ckptFut, err := caller.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckptFut.Wait(5 * time.Second); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// The machine hosting the counter dies.
	e.Network().(*simnet.Network).KillNode(n3.ID())
	n3.Crash()
	waitState(t, e, n3.ID(), cluster.StateDead, 5*time.Second)

	// The survivor with the lowest identifier adopts: the name re-binds
	// to a fresh identity hosted on n1.
	var adopted ids.ActivityID
	waitUntil(t, func() bool {
		got, err := e.Lookup("failover-sim-ctr")
		if err != nil {
			return false
		}
		adopted = mustRef(t, got)
		return adopted.Node == n1.ID()
	}, 5*time.Second)
	if adopted == mustRef(t, h.Ref()) {
		t.Fatalf("failover reused the dead identity %v", adopted)
	}

	// Holders of the dead identity keep working through the rebind.
	if v := callUntilOK(t, caller, "total", wire.Null(), 5*time.Second); v.AsInt() != 5 {
		t.Fatalf("total after failover = %v, want 5", v)
	}
	if v, err := caller.CallSync("add", wire.Int(2), 5*time.Second); err != nil || v.AsInt() != 7 {
		t.Fatalf("add after failover = %v, %v", v, err)
	}

	// The store was rewritten under the adopted identity: nothing left
	// in the dead node's range, one checkpoint on the survivor.
	waitUntil(t, func() bool {
		snap, err := st.Load()
		if err != nil {
			return false
		}
		if len(snap) != 1 {
			return false
		}
		for id := range snap {
			if id.Node != n1.ID() {
				return false
			}
		}
		return true
	}, 5*time.Second)
	caller.Release()
}

// TestConformanceFailoverTCP is failover across processes: seed and
// joiner share a checkpoint store, the joiner hosts a registered durable
// counter, the whole joiner process is hard-killed, and the seed —
// detecting the death through its own heartbeats — adopts the
// checkpoint, binds the name into its own registry, and serves the
// counter with its state intact to a caller still holding the dead
// identity.
func TestConformanceFailoverTCP(t *testing.T) {
	t.Parallel()
	st := store.NewMemStore()
	newTCPEnv := func(seed string) *Env {
		tr, err := tcpnet.New(tcpnet.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return NewEnv(Config{
			TTB: 10 * time.Millisecond, TTA: 40 * time.Millisecond,
			Transport: tr, Store: st,
			Cluster: ClusterConfig{Enabled: true, Seed: seed, Failover: true},
		})
	}

	seedEnv := newTCPEnv("")
	defer seedEnv.Close()
	seedAddr := seedEnv.Network().(*tcpnet.Network).Addr()
	nA := seedEnv.NewNode()

	joinEnv := newTCPEnv(seedAddr)
	defer joinEnv.Close()
	if err := joinEnv.Join(); err != nil {
		t.Fatalf("join via seed: %v", err)
	}
	nB := joinEnv.NewNode()

	h, err := nB.SpawnKind("fo", "test/cluster-counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := joinEnv.RegisterName("failover-tcp-ctr", h.Ref()); err != nil {
		t.Fatal(err)
	}
	caller, err := nA.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v := callUntilOK(t, caller, "add", wire.Int(5), 10*time.Second); v.AsInt() != 5 {
		t.Fatalf("add = %v, want 5", v)
	}
	ckptFut, err := caller.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckptFut.Wait(10 * time.Second); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}

	// Hard-kill the joiner process.
	joinEnv.Network().Close()
	waitState(t, seedEnv, nB.ID(), cluster.StateDead, 10*time.Second)

	// The seed adopts: the name — learned from the checkpoint, it was
	// never registered in this process — appears in the seed's registry
	// bound to a locally hosted identity.
	var adopted ids.ActivityID
	waitUntil(t, func() bool {
		got, err := seedEnv.Lookup("failover-tcp-ctr")
		if err != nil {
			return false
		}
		adopted = mustRef(t, got)
		return adopted.Node == nA.ID()
	}, 10*time.Second)

	// The caller still holds the dead identity; the rebind routes it.
	if v := callRetry(t, caller, "total", wire.Null(), 10*time.Second); v.AsInt() != 5 {
		t.Fatalf("total after failover = %v, want 5", v)
	}
	if v := callRetry(t, caller, "add", wire.Int(2), 10*time.Second); v.AsInt() < 7 {
		t.Fatalf("add after failover = %v, want >= 7", v)
	}
	caller.Release()
}

// TestCheckpointCadenceSim drives the checkpoint beat: with
// CheckpointEvery set and no explicit Checkpoint call anywhere, the
// driver must persist a dirty durable activity on its own, and a
// kill-and-restart must find that snapshot good enough to recover from.
func TestCheckpointCadenceSim(t *testing.T) {
	t.Parallel()
	st := store.NewMemStore()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
		Store: st, CheckpointEvery: 15 * time.Millisecond,
	})
	defer e.Close()
	n1, n2 := e.NewNode(), e.NewNode()

	h, err := n2.SpawnKind("ctr", "test/cluster-counter")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterName("cadence-ctr", h.Ref()); err != nil {
		t.Fatal(err)
	}
	caller, err := n1.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := caller.CallSync("add", wire.Int(5), 5*time.Second); err != nil || v.AsInt() != 5 {
		t.Fatalf("add = %v, %v", v, err)
	}

	// The beat checkpoints without being asked; wait until a snapshot
	// holding total=5 has landed (an earlier, pre-add snapshot of the
	// fresh activity may land first — the cadence keeps going while the
	// activity keeps changing).
	waitUntil(t, func() bool {
		snap, err := st.Load()
		if err != nil || len(snap) != 1 {
			return false
		}
		for _, payload := range snap {
			c, err := decodeCheckpoint(payload)
			if err != nil {
				return false
			}
			for _, kv := range c.Env.State {
				if kv.Key == "total" && kv.Value.AsInt() == 5 {
					return true
				}
			}
		}
		return false
	}, 5*time.Second)

	net := e.Network().(*simnet.Network)
	net.KillNode(n2.ID())
	n2.Crash()
	net.ReviveNode(n2.ID())
	restored, err := e.Recover()
	if err != nil || restored != 1 {
		t.Fatalf("Recover = %d, %v, want 1, nil", restored, err)
	}
	if v := callUntilOK(t, caller, "total", wire.Null(), 5*time.Second); v.AsInt() != 5 {
		t.Fatalf("total after recovery = %v, want 5", v)
	}
	caller.Release()
}

// TestContextCheckpoint covers the self-checkpoint path: a behavior
// calls Context.Checkpoint mid-service, the snapshot runs right after
// the service returns (seeing its final state), and a crash afterwards
// recovers that state without any cadence or explicit handle call.
func TestContextCheckpoint(t *testing.T) {
	t.Parallel()
	const kind = "test/recover-selfckpt"
	RegisterBehavior(kind, func() Behavior {
		return BehaviorFunc(func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
			switch method {
			case "addsync":
				total := ctx.Load("total").AsInt() + args.AsInt()
				ctx.Store("total", wire.Int(total))
				if err := ctx.Checkpoint(); err != nil {
					return wire.Null(), err
				}
				return wire.Int(total), nil
			case "total":
				return ctx.Load("total"), nil
			}
			return wire.Null(), errors.New("selfckpt: unknown method " + method)
		})
	})

	st := store.NewMemStore()
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond,
		Store: st,
	})
	defer e.Close()
	n1, n2 := e.NewNode(), e.NewNode()

	h, err := n2.SpawnKind("ctr", kind)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterName("selfckpt-ctr", h.Ref()); err != nil {
		t.Fatal(err)
	}
	caller, err := n1.HandleFor(h.Ref())
	if err != nil {
		t.Fatal(err)
	}
	if v, err := caller.CallSync("addsync", wire.Int(9), 5*time.Second); err != nil || v.AsInt() != 9 {
		t.Fatalf("addsync = %v, %v", v, err)
	}
	// The write is asynchronous (it runs after the service's reply);
	// wait for it to land.
	waitUntil(t, func() bool { return st.Len() == 1 }, 5*time.Second)

	net := e.Network().(*simnet.Network)
	net.KillNode(n2.ID())
	n2.Crash()
	net.ReviveNode(n2.ID())
	if restored, err := e.Recover(); err != nil || restored != 1 {
		t.Fatalf("Recover = %d, %v, want 1, nil", restored, err)
	}
	if v := callUntilOK(t, caller, "total", wire.Null(), 5*time.Second); v.AsInt() != 9 {
		t.Fatalf("total after recovery = %v, want 9", v)
	}
	caller.Release()
}

// TestCheckpointErrors pins the refusal surface: checkpointing without a
// store fails with ErrNoStore, checkpointing an activity created outside
// the behavior registry fails with ErrNotDurable (recovery could never
// re-instantiate it), and both sentinels keep their errors.Is identity
// through the future reply path.
func TestCheckpointErrors(t *testing.T) {
	t.Parallel()

	// No store configured.
	bare := NewEnv(Config{TTB: 50 * time.Millisecond})
	defer bare.Close()
	bn := bare.NewNode()
	bh, err := bn.SpawnKind("ctr", "test/cluster-counter")
	if err != nil {
		t.Fatal(err)
	}
	fut, err := bh.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(5 * time.Second); !errors.Is(err, ErrNoStore) {
		t.Fatalf("checkpoint without store = %v, want ErrNoStore", err)
	}
	if _, err := bare.Recover(); !errors.Is(err, ErrNoStore) {
		t.Fatalf("Recover without store = %v, want ErrNoStore", err)
	}
	bh.Release()

	// Store configured, but the activity has no registered kind.
	e := NewEnv(Config{TTB: 50 * time.Millisecond, Store: store.NewMemStore()})
	defer e.Close()
	n := e.NewNode()
	plain := n.NewActive("plain", echoBehavior())
	fut, err = plain.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.Wait(5 * time.Second); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("checkpoint of kindless activity = %v, want ErrNotDurable", err)
	}
	plain.Release()
}

// TestRecoverTortureCrashAtEveryOffset is the recovery half of the
// torture run (the store half lives in internal/store): a real
// checkpoint log is truncated at every byte offset and corrupted at
// every byte position, and each mutation must yield a Recover that does
// not panic and restores only values that were actually checkpointed —
// a torn or corrupted tail degrades to an earlier snapshot or to
// nothing, never to invented state.
func TestRecoverTortureCrashAtEveryOffset(t *testing.T) {
	t.Parallel()
	const kind = "test/recover-torture"
	RegisterBehavior(kind, func() Behavior { return migCounter{} })

	// Write a log with two checkpoint generations of one counter.
	dir := t.TempDir()
	fs, err := store.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnv(Config{TTB: time.Second, DisableDGC: true, Store: fs})
	n := e.NewNode()
	h, err := n.SpawnKind("ctr", kind)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterName("torture-ctr", h.Ref()); err != nil {
		t.Fatal(err)
	}
	allowed := map[int64]bool{}
	var last int64
	for _, add := range []int64{10, 20} {
		v, err := h.CallSync("add", wire.Int(add), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		fut, err := h.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.Wait(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		allowed[v.AsInt()] = true
		last = v.AsInt()
	}
	h.Release()
	e.Close()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("ckpt-%d.log", n.ID())))
	if err != nil {
		t.Fatal(err)
	}

	// check recovers from data and returns the recovered total, or -1
	// when the counter did not survive (legal for any proper prefix).
	check := func(data []byte) int64 {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, fmt.Sprintf("ckpt-%d.log", n.ID())), data, 0o644); err != nil {
			t.Fatal(err)
		}
		cfs, err := store.NewFileStore(cdir)
		if err != nil {
			t.Fatalf("NewFileStore on mutated log: %v", err)
		}
		defer cfs.Close()
		cenv := NewEnv(Config{TTB: time.Second, DisableDGC: true, Store: cfs})
		defer cenv.Close()
		_, _ = cenv.Recover() // error is legal, panic is not
		ref, err := cenv.Lookup("torture-ctr")
		if err != nil {
			return -1
		}
		node := cenv.Node(n.ID())
		if node == nil {
			t.Fatal("name recovered but hosting node absent")
		}
		ch, err := node.HandleFor(ref)
		if err != nil {
			t.Fatal(err)
		}
		defer ch.Release()
		got, err := ch.CallSync("total", wire.Null(), 5*time.Second)
		if err != nil {
			t.Fatalf("total on recovered counter: %v", err)
		}
		return got.AsInt()
	}

	// The intact log restores the latest snapshot.
	if got := check(full); got != last {
		t.Fatalf("intact log recovered total %d, want %d", got, last)
	}
	// Every truncation: crash mid-append at each offset.
	for cut := 0; cut < len(full); cut++ {
		if got := check(full[:cut]); got != -1 && !allowed[got] {
			t.Fatalf("truncate@%d recovered total %d, not a checkpointed value", cut, got)
		}
	}
	// Every single-byte corruption.
	for off := 0; off < len(full); off++ {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x5a
		if got := check(mut); got != -1 && !allowed[got] {
			t.Fatalf("corrupt@%d recovered total %d, not a checkpointed value", off, got)
		}
	}
}
