package active

import (
	"runtime"
	"sync"
)

// workerPool serves a node's activities on a shared set of goroutines
// instead of one resident goroutine per activity. An activity is handed to
// the pool when its queue goes non-empty (requestQueue.push flips the
// running flag exactly once) and a worker drains it to quiescence; the
// running flag guarantees at most one worker ever drains a given activity,
// so the single-threaded active-object model — and per-sender FIFO — is
// preserved while distinct activities serve in parallel.
//
// The pool grows on demand: whenever an activity becomes ready and no
// worker is idle, a fresh worker is spawned. A fixed-size pool would
// deadlock here — a behavior may block mid-service in Future.Wait or
// Context.ServeNext, and the service that unblocks it may be the one
// sitting in the pool's backlog. Dynamic spawning bounds workers by
// blocked-services + runnable-activities, which is exactly the goroutine
// count of the old thread-per-activity scheme in the worst case, and a
// handful of resident spares in the common one.
type workerPool struct {
	node *Node

	mu   sync.Mutex
	cond *sync.Cond
	// ready is the FIFO backlog of activities with work pending and no
	// worker assigned yet; head indexes the next entry out, so the
	// drained prefix is reclaimed by resetting in place and the backing
	// array is reused instead of reallocated on every push (the schedule
	// call is on the per-request hot path).
	ready []*ActiveObject
	head  int
	// idle is the number of workers blocked in cond.Wait; count is the
	// number of live workers. Workers above spares retire when the backlog
	// is empty.
	idle   int
	count  int
	spares int
	closed bool
}

func newWorkerPool(n *Node) *workerPool {
	p := &workerPool{node: n, spares: runtime.GOMAXPROCS(0)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// schedule hands an activity with pending work to the pool. Called exactly
// once per idle→busy transition (the queue's running flag dedupes); no-op
// after close — shutdown closes every queue, which disposes of the work.
func (p *workerPool) schedule(ao *ActiveObject) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	if p.head > 0 && p.head == len(p.ready) {
		p.ready = p.ready[:0]
		p.head = 0
	}
	p.ready = append(p.ready, ao)
	// Wake an idle worker if one can take it; otherwise grow. idle is only
	// decremented under mu by the waking worker, so comparing it against
	// the backlog length never double-books a worker.
	if p.idle >= len(p.ready)-p.head {
		p.cond.Signal()
		p.mu.Unlock()
		return
	}
	p.count++
	p.node.wg.Add(1)
	go p.worker()
	p.mu.Unlock()
}

// close stops the pool: the backlog is dropped (every activity queue is
// closed by node shutdown, which disposes of pending requests) and all
// workers exit once their current drain returns.
func (p *workerPool) close() {
	p.mu.Lock()
	p.closed = true
	p.ready = nil
	p.head = 0
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *workerPool) worker() {
	defer p.node.wg.Done()
	p.mu.Lock()
	for {
		for p.head == len(p.ready) {
			if p.closed || p.count > p.spares {
				p.count--
				p.mu.Unlock()
				return
			}
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		ao := p.ready[p.head]
		p.ready[p.head] = nil
		p.head++
		p.mu.Unlock()
		ao.drain()
		p.mu.Lock()
	}
}
