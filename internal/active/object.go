package active

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/localgc"
	"repro/internal/wire"
)

// Behavior is the application code of an activity. Serve is called by the
// activity's own goroutine, one request at a time (the active-object model
// is single-threaded per activity). It may perform asynchronous calls
// through the Context and wait on their futures: waiting happens during a
// service, so a waiting activity is busy, never idle (§4.1).
type Behavior interface {
	Serve(ctx *Context, method string, args wire.Value) (wire.Value, error)
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(ctx *Context, method string, args wire.Value) (wire.Value, error)

// Serve implements Behavior.
func (f BehaviorFunc) Serve(ctx *Context, method string, args wire.Value) (wire.Value, error) {
	return f(ctx, method, args)
}

// wireSentinels are failure sentinels that keep their identity across the
// wire: the failure text travels, and the receiving side re-wraps it so
// errors.Is keeps working — a holder that subscribed through a dead
// forwarder matches ErrFutureUnavailable, a refused migration matches
// ErrMigrationFailed/ErrNotMigratable, wherever the caller runs, and a
// future failed by a confirmed node death matches ErrNodeDead on every
// holder it fans out to.
var wireSentinels = []error{ErrFutureUnavailable, ErrMigrationFailed, ErrNotMigratable, ErrUnknownBehaviorKind, ErrNodeDead, ErrUnknownActivity, ErrRecovered, ErrNotDurable, ErrNoStore}

func newRemoteFailure(msg string) error {
	for _, s := range wireSentinels {
		text := s.Error()
		if msg == text {
			return s
		}
		if strings.HasPrefix(msg, text+":") {
			return fmt.Errorf("%w%s", s, msg[len(text):])
		}
	}
	return fmt.Errorf("%w: %s", ErrRemoteFailure, msg)
}

// queuedRequest is one pending request plus the heap root pinning its
// arguments for the duration of the service.
type queuedRequest struct {
	req      request
	argsRoot localgc.RootID
}

// qreqPool recycles queuedRequest boxes between delivery and the end of
// the service (the only point where the box is provably unreachable:
// serveOne returns it after replying). Boxes that leave the serve path —
// migration envelopes, queue-close disposal — are simply dropped for the
// GC; the pool is an optimization, not an invariant.
var qreqPool = sync.Pool{New: func() any { return new(queuedRequest) }}

func getQueued(req request) *queuedRequest {
	it := qreqPool.Get().(*queuedRequest)
	it.req = req
	it.argsRoot = 0
	return it
}

func putQueued(it *queuedRequest) {
	*it = queuedRequest{}
	qreqPool.Put(it)
}

// requestQueue is the activity's unbounded request queue, drained through
// its ServicePolicy (FIFO unless configured otherwise). It also owns the
// idleness flag: the transitions "queue became non-empty ⇒ busy" and
// "queue drained after service ⇒ idle" are made under the queue lock so
// the DGC never observes an activity idle while work is pending — and
// pending means *queued*, not selected: a policy that holds requests back
// keeps the activity busy (see take's takeHeld outcome).
type requestQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*queuedRequest
	closed bool
	idle   *atomic.Bool
	// running marks a pool worker as assigned to (or draining) this
	// queue's activity. The busy→idle edge is owned by the drainer (take
	// clears it), the idle→busy edge by push (which reports "schedule
	// me"); both under mu, so exactly one worker ever drains an activity —
	// the affinity that keeps the active-object model single-threaded.
	running bool
	// policy is the standing selection discipline; nil means FIFO and
	// takes the allocation-free fast path.
	policy ServicePolicy
	// infoScratch is reused by selectLocked (only ever touched under mu)
	// so a holding policy does not allocate a fresh slice on every
	// wakeup.
	infoScratch []RequestInfo
}

func newRequestQueue(idle *atomic.Bool, policy ServicePolicy) *requestQueue {
	if _, isFIFO := policy.(fifoPolicy); isFIFO {
		policy = nil // the explicit FIFO built-in rides the fast path too
	}
	q := &requestQueue{idle: idle, policy: policy}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a request. schedule reports that the activity just went
// ready with no worker assigned: the caller must hand it to the pool
// (exactly one push per idle→busy transition sees it).
func (q *requestQueue) push(item *queuedRequest) (ok, schedule bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, false
	}
	q.items = append(q.items, item)
	q.idle.Store(false)
	q.cond.Broadcast()
	if q.running {
		return true, false
	}
	q.running = true
	return true, true
}

// takeResult is the outcome of a worker's non-blocking take.
type takeResult uint8

const (
	// takeItem: a request was selected; keep draining.
	takeItem takeResult = iota
	// takeClosed: the queue closed; the worker detaches.
	takeClosed
	// takeIdle: the queue is empty; the worker detaches after reporting
	// idleness to the DGC (the flag itself is already set, under mu).
	takeIdle
	// takeHeld: requests pend but the policy holds them all back; the
	// worker detaches without idling (pending means busy, §4.1) and the
	// next push reschedules the activity for re-evaluation.
	takeHeld
)

// take is the pool worker's non-blocking pop: it either selects a request
// or clears the running flag and reports why the drain ends, atomically
// under mu so a concurrent push cannot slip between "saw empty" and
// "detached" without rescheduling the activity.
func (q *requestQueue) take() (*queuedRequest, takeResult) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		q.running = false
		return nil, takeClosed
	}
	if len(q.items) == 0 {
		q.running = false
		q.idle.Store(true)
		return nil, takeIdle
	}
	idx := 0
	if q.policy != nil {
		idx = q.selectLocked(q.policy)
	}
	if idx < 0 {
		q.running = false
		return nil, takeHeld
	}
	item := q.items[idx]
	q.items = append(q.items[:idx], q.items[idx+1:]...)
	return item, takeItem
}

// popWith blocks until p selects a pending request (or the queue closes).
// A policy returning a negative (or out-of-range) index with requests
// pending holds them: the call sleeps until the next push.
func (q *requestQueue) popWith(p ServicePolicy) (*queuedRequest, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, false
		}
		if len(q.items) > 0 {
			idx := 0
			if p != nil {
				idx = q.selectLocked(p)
			}
			if idx >= 0 {
				item := q.items[idx]
				q.items = append(q.items[:idx], q.items[idx+1:]...)
				return item, true
			}
		}
		q.cond.Wait()
	}
}

// selectLocked builds the policy's view of the pending queue and asks it
// to choose. Out-of-range answers mean "hold everything".
func (q *requestQueue) selectLocked(p ServicePolicy) int {
	if cap(q.infoScratch) < len(q.items) {
		q.infoScratch = make([]RequestInfo, len(q.items))
	}
	infos := q.infoScratch[:len(q.items)]
	for i, it := range q.items {
		infos[i] = RequestInfo{
			Method:    it.req.Method,
			Sender:    it.req.Sender,
			HasFuture: !it.req.Future.IsZero(),
		}
	}
	idx := p.Select(infos)
	if idx < 0 || idx >= len(q.items) {
		return -1
	}
	return idx
}

// pendingCount returns the number of queued (selected or not) requests.
func (q *requestQueue) pendingCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// idleWhilePending reports the forbidden DGC state: the idleness flag
// raised while requests (selected or policy-held) are still queued. Both
// sides of the conjunction are read under the queue lock, which every
// writer holds, so a true result is a real invariant violation, not a
// sampling race. Tests (the live torture) assert it never happens.
func (q *requestQueue) idleWhilePending() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items) > 0 && q.idle.Load()
}

// drainAll removes every pending request without closing the queue: the
// migration snapshot. Requests arriving after the drain queue normally
// and are dealt with when the forwarder is installed (or requeued if the
// migration fails).
func (q *requestQueue) drainAll() []*queuedRequest {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := q.items
	q.items = nil
	return items
}

// snapshotItems returns the pending items without removing them: the
// checkpoint capture. Safe to hand to captureEnvelope because the
// caller is the draining worker itself (the queue's running flag keeps
// every other worker out), so no item in the copy can be served or
// recycled while the envelope is built.
func (q *requestQueue) snapshotItems() []*queuedRequest {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]*queuedRequest(nil), q.items...)
}

// requeue puts drained requests back at the front of the queue, ahead of
// anything that arrived since the drain (a failed migration must not
// reorder the queue). It reports ok=false when the queue closed in the
// meantime — the caller then disposes of the items as a close would.
// schedule mirrors push: true when the activity needs a pool worker (it
// cannot happen on today's call path, where the drainer itself requeues,
// but the flag keeps the idle→busy edge correct regardless of caller).
func (q *requestQueue) requeue(items []*queuedRequest) (ok, schedule bool) {
	if len(items) == 0 {
		return true, false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, false
	}
	q.items = append(items, q.items...)
	q.idle.Store(false)
	q.cond.Broadcast()
	if q.running {
		return true, false
	}
	q.running = true
	return true, true
}

// close drains the queue, releasing pinned argument roots, and wakes the
// service loop so it can exit. The drained requests are returned so the
// caller can dispose of their reply obligations: a graceful destroy fails
// their futures, a crash stays silent. (The seed released the heap pins
// here but dropped the requests on the floor, leaving remote callers to
// block until their own node noticed — the close/drain audit of PR 3.)
func (q *requestQueue) close(heap *localgc.Heap) []*queuedRequest {
	q.mu.Lock()
	items := q.items
	q.items = nil
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
	for _, it := range items {
		heap.RemoveRoot(it.argsRoot)
	}
	return items
}

// ActiveObject is one activity: identity, behavior, request queue, service
// goroutine, DGC collector, and its heap roots.
type ActiveObject struct {
	node     *Node
	id       ids.ActivityID
	name     string
	behavior Behavior
	// dummy marks the referencer stand-in created for non-active code
	// (§4.1): no activity, never idle, acts as a DGC root.
	dummy bool
	// kind is the registered behavior kind the activity was created from;
	// empty means not migratable (the destination could not re-instantiate
	// the behavior).
	kind string

	// fwd, when set, is the new identity this (migrated) activity forwards
	// to: the object is a forwarder now — queue closed, behavior gone —
	// and every arriving request or heartbeat is answered with a relay
	// plus a redirect until the holders rebind and the forwarder collapses.
	fwd atomic.Pointer[ids.ActivityID]
	// migrateDst, when non-zero, asks the serve loop to migrate the
	// activity to that node after the current service (Context.MigrateTo).
	migrateDst atomic.Uint64
	// ckptWanted asks the serve loop to checkpoint the activity after the
	// current service (Context.Checkpoint).
	ckptWanted atomic.Bool
	// ckptDirty is set whenever the activity's durable image may have
	// drifted from its last checkpoint (a served request, a fresh restore,
	// a registration) and cleared by each checkpoint; the driver's
	// checkpoint beat skips clean activities, so an idle activity costs
	// nothing.
	ckptDirty atomic.Bool

	collector *core.Collector
	queue     *requestQueue
	idleFlag  atomic.Bool
	// registered marks a registry root (§4.1): never idle.
	registered atomic.Bool
	terminated atomic.Bool
	// wantStop is set by Context.TerminateSelf: the service loop asks the
	// node to destroy the activity after the current request.
	wantStop atomic.Bool

	// nextBeat is when the driver should tick this activity next; it is
	// only touched by the node's driver goroutine.
	nextBeat time.Time
	// nextCkpt is when the driver's checkpoint beat considers this
	// activity again (Config.CheckpointEvery cadence); driver-owned like
	// nextBeat.
	nextCkpt time.Time

	// rootsMu guards the heap roots owned by this activity.
	rootsMu    sync.Mutex
	stateRoots map[string]stateEntry
	extraRoots map[localgc.RootID]struct{}

	// svcCtx is the reusable Context of top-level services. Exactly one
	// worker drains an activity at a time (the queue's running flag), so
	// the only concurrent serveOne on one activity is the nested
	// ServeNext case, which builds its own Context.
	svcCtx Context
}

// stateEntry is one pinned state value: the heap cell and its root.
type stateEntry struct {
	obj  localgc.ObjRef
	root localgc.RootID
}

// newActivity creates (and starts, unless dummy) an activity on the node.
func (n *Node) newActivity(name string, b Behavior, dummy bool, opts ...SpawnOption) *ActiveObject {
	var so spawnOptions
	for _, opt := range opts {
		opt(&so)
	}
	if so.policy == nil {
		so.policy = n.env.cfg.ServicePolicy
	}
	ao := &ActiveObject{
		node:       n,
		name:       name,
		behavior:   b,
		dummy:      dummy,
		kind:       so.kind,
		stateRoots: make(map[string]stateEntry),
		extraRoots: make(map[localgc.RootID]struct{}),
	}
	if !so.id.IsNil() {
		// Restoring under a pre-crash identity (Env.Recover): advance the
		// generator past it so fresh spawns on this node cannot collide.
		ao.id = so.id
		n.gen.SkipTo(so.id.Seq + 1)
	} else {
		ao.id = n.gen.Next()
	}
	if so.kind != "" && n.env.cfg.Store != nil {
		// A durable activity is born dirty: its very existence (and any
		// restored state) is not on disk yet under this identity.
		ao.ckptDirty.Store(true)
	}
	ao.queue = newRequestQueue(&ao.idleFlag, so.policy)
	// A fresh activity is idle until its first request.
	ao.idleFlag.Store(true)
	cfg := core.Config{
		TTB:                         n.env.cfg.TTB,
		TTA:                         n.env.cfg.TTA,
		DisableConsensusPropagation: n.env.cfg.DisableConsensusPropagation,
		Adaptive:                    n.env.cfg.Adaptive,
		MinHeightTree:               n.env.cfg.MinHeightTree,
		OnEvent:                     n.env.cfg.OnEvent,
	}
	ao.collector = core.New(ao.id, cfg, ao.isIdle, n.env.cfg.Clock.Now())

	n.mu.Lock()
	n.aos[ao.id] = ao
	n.mu.Unlock()

	if !dummy {
		n.env.noteCreated()
		// No resident goroutine: the activity is served by the node's
		// worker pool, scheduled when its queue first goes non-empty.
	}
	return ao
}

// ID returns the activity identifier.
func (ao *ActiveObject) ID() ids.ActivityID { return ao.id }

// Name returns the activity's (informational) name.
func (ao *ActiveObject) Name() string { return ao.name }

// Collector exposes the DGC state machine (used by tests and metrics).
func (ao *ActiveObject) Collector() *core.Collector { return ao.collector }

// isIdle is the middleware's idleness notion fed to the collector (§4.1):
// dummy referencer handles and registered activities are permanent roots.
func (ao *ActiveObject) isIdle() bool {
	if ao.dummy || ao.registered.Load() {
		return false
	}
	return ao.idleFlag.Load()
}

// enqueue delivers a request to the activity, scheduling it on the node's
// worker pool when the push flips it ready. Dummy activities (referencer
// stand-ins) hold a queue nothing ever drains — matching the old
// loop-less behavior — so they are never scheduled.
func (ao *ActiveObject) enqueue(item *queuedRequest) {
	ok, schedule := ao.queue.push(item)
	if ok {
		if schedule && !ao.dummy {
			ao.node.pool.schedule(ao)
		}
		return
	}
	// Queue closed: the activity migrated away or died between lookup
	// and delivery. A forwarder relays the request to the new home; a
	// dead activity fails the caller's future.
	ao.node.heap.RemoveRoot(item.argsRoot)
	if !ao.forwardTarget().IsNil() {
		ao.node.forwardQueued(ao, item.req)
		return
	}
	if !item.req.Future.IsZero() {
		ao.node.replyTo(item.req, futureUpdate{
			Future: item.req.Future,
			Failed: true,
			Err:    ErrUnknownActivity.Error(),
		})
	}
}

// drain is one pool worker's tenure on the activity: serve requests one at
// a time until the queue runs dry (report idleness to the DGC — clock
// increment occasion #1 — and detach), the policy holds everything back
// (detach busy; the next push re-presents the queue), or the activity
// leaves — migration turns it into a forwarder, TerminateSelf destroys it.
// The queue's running flag guarantees no other worker touches this
// activity until it is rescheduled.
func (ao *ActiveObject) drain() {
	for {
		item, res := ao.queue.take()
		switch res {
		case takeClosed, takeHeld:
			return
		case takeIdle:
			ao.collector.BecomeIdle(ao.node.env.cfg.Clock.Now())
			return
		}
		if ao.serveOne(item, false) {
			return // migrated; the queue is closed
		}
		if ao.wantStop.Load() {
			ao.node.destroy(ao, core.ReasonNone)
			return
		}
		if dst := ao.migrateDst.Swap(0); dst != 0 {
			if _, err := ao.node.migrateOut(ao, ids.NodeID(dst)); err == nil {
				return
			}
			// A failed MigrateTo leaves the activity serving here.
		}
		if ao.ckptWanted.Swap(false) {
			// Context.Checkpoint: between services, state quiescent.
			_ = ao.node.checkpointNow(ao)
		}
	}
}

// serveOne serves a single request and reports whether it migrated the
// activity (the intercepted migrateMethod; behaviors never see it).
// nested marks a Context.ServeNext selection from inside a running
// service, where a migration is refused.
func (ao *ActiveObject) serveOne(item *queuedRequest, nested bool) bool {
	if item.req.Method == migrateMethod {
		return ao.serveMigrate(item, nested)
	}
	if item.req.Method == checkpointMethod {
		return ao.serveCheckpoint(item, nested)
	}
	ctx := &ao.svcCtx
	if nested {
		ctx = &Context{ao: ao}
	} else {
		ctx.ao = ao
		ctx.transientRoots = ctx.transientRoots[:0]
	}
	result, err := ao.behavior.Serve(ctx, item.req.Method, item.req.Args)
	ctx.releaseTransients()
	if ao.kind != "" && ao.node.env.cfg.Store != nil {
		// The service may have mutated state: the next checkpoint beat
		// must not skip this activity. Behind the Store nil-check so the
		// non-durable hot path pays nothing but the kind comparison.
		ao.ckptDirty.Store(true)
	}
	ao.node.heap.RemoveRoot(item.argsRoot)
	if item.req.Future.IsZero() {
		putQueued(item)
		return false
	}
	u := futureUpdate{Future: item.req.Future}
	if err != nil {
		u.Failed = true
		u.Err = err.Error()
	} else {
		u.Value = result
	}
	ao.node.replyTo(item.req, u)
	putQueued(item)
	return false
}

// releaseAllRoots drops every heap root owned by the activity; the next
// sweep then reclaims its whole object graph, firing tag deaths.
func (ao *ActiveObject) releaseAllRoots(heap *localgc.Heap) {
	ao.rootsMu.Lock()
	defer ao.rootsMu.Unlock()
	for _, e := range ao.stateRoots {
		heap.RemoveRoot(e.root)
	}
	ao.stateRoots = make(map[string]stateEntry)
	for r := range ao.extraRoots {
		heap.RemoveRoot(r)
	}
	ao.extraRoots = make(map[localgc.RootID]struct{})
}

// Context is the API surface available to a Behavior during one service.
type Context struct {
	ao *ActiveObject
	// transientRoots pin values allocated during this service (e.g.
	// freshly spawned activity stubs) until the service ends.
	transientRoots []localgc.RootID
}

// Self returns a reference value designating this activity, suitable for
// embedding in arguments or results.
func (c *Context) Self() wire.Value { return wire.Ref(c.ao.id) }

// ID returns this activity's identifier.
func (c *Context) ID() ids.ActivityID { return c.ao.id }

// NodeID returns the hosting node's identifier.
func (c *Context) NodeID() ids.NodeID { return c.ao.node.id }

func (c *Context) releaseTransients() {
	for _, r := range c.transientRoots {
		c.ao.node.heap.RemoveRoot(r)
	}
	c.transientRoots = c.transientRoots[:0]
}

// Call performs an asynchronous method call on target (a reference value)
// and returns a future for its result.
func (c *Context) Call(target wire.Value, method string, args wire.Value) (*Future, error) {
	tid, ok := target.AsRef()
	if !ok {
		return nil, fmt.Errorf("%w: Call target %v", ErrNotARef, target)
	}
	fut := c.ao.node.futures.create(c.ao.node, c.ao.id)
	req := request{
		Target: tid,
		Sender: c.ao.id,
		Future: fut.ID(),
		Method: method,
		Args:   args,
	}
	if err := c.ao.node.sendRequest(req); err != nil {
		c.ao.node.futures.remove(fut.ID())
		return nil, err
	}
	return fut, nil
}

// Future lifts a first-class future value received in arguments (or
// loaded from state) into the local waitable Future adopted for it. This
// is wait-by-necessity at the final holder: only the activity that calls
// Wait ever blocks; every forwarding hop stayed asynchronous. An unknown
// future yields a pre-failed Future (ErrFutureUnavailable).
func (c *Context) Future(v wire.Value) (*Future, error) {
	return c.ao.node.futureFor(v)
}

// Send performs a one-way asynchronous call (no future, no result).
func (c *Context) Send(target wire.Value, method string, args wire.Value) error {
	tid, ok := target.AsRef()
	if !ok {
		return fmt.Errorf("%w: Send target %v", ErrNotARef, target)
	}
	req := request{
		Target: tid,
		Sender: c.ao.id,
		Method: method,
		Args:   args,
	}
	return c.ao.node.sendRequest(req)
}

// ServeNext serves exactly one pending request selected by policy — the
// paper's selective serve primitives (e.g. ServeOldest("urgent")) from
// inside a running service. It blocks until a matching request is
// available (waiting counts as busy, §4.1), serves it to completion on
// this activity's goroutine, and returns. When the activity's queue
// closes (termination, shutdown) before a match arrives, ServeNext
// returns ErrEnvClosed without serving.
func (c *Context) ServeNext(policy ServicePolicy) error {
	if policy == nil {
		policy = c.ao.queue.policy
	}
	item, ok := c.ao.queue.popWith(policy)
	if !ok {
		return ErrEnvClosed
	}
	c.ao.serveOne(item, true)
	return nil
}

// Spawn creates a new activity on this node and returns a reference to it.
// The reference is pinned until the end of the current service; Store it
// to keep it alive longer. Options configure the child (e.g. WithPolicy).
func (c *Context) Spawn(name string, b Behavior, opts ...SpawnOption) wire.Value {
	child := c.ao.node.newActivity(name, b, false, opts...)
	now := c.ao.node.env.cfg.Clock.Now()
	c.ao.collector.AddReferenced(child.id, now)
	_, root := c.ao.node.heap.NewStubRooted(c.ao.id, child.id)
	c.transientRoots = append(c.transientRoots, root)
	return wire.Ref(child.id)
}

// Store saves a value in the activity's persistent state. References
// inside it keep their targets alive in the reference graph. Storing a
// value under an existing key replaces (and unpins) the previous value.
func (c *Context) Store(key string, v wire.Value) {
	heap := c.ao.node.heap
	obj, root := heap.InternRooted(c.ao.id, v)
	c.ao.rootsMu.Lock()
	old, had := c.ao.stateRoots[key]
	c.ao.stateRoots[key] = stateEntry{obj: obj, root: root}
	c.ao.rootsMu.Unlock()
	if had {
		heap.RemoveRoot(old.root)
	}
}

// Load reads a value from the activity's persistent state (null if
// absent).
func (c *Context) Load(key string) wire.Value {
	c.ao.rootsMu.Lock()
	e, ok := c.ao.stateRoots[key]
	c.ao.rootsMu.Unlock()
	if !ok {
		return wire.Null()
	}
	return c.ao.node.heap.Materialize(e.obj)
}

// Delete removes a state entry; stubs it was pinning become collectable at
// the next local sweep (firing LostReferenced as the paper's weak tag
// mechanism would).
func (c *Context) Delete(key string) {
	c.ao.rootsMu.Lock()
	e, ok := c.ao.stateRoots[key]
	if ok {
		delete(c.ao.stateRoots, key)
	}
	c.ao.rootsMu.Unlock()
	if ok {
		c.ao.node.heap.RemoveRoot(e.root)
	}
}

// Lookup resolves a registered name through the environment registry.
func (c *Context) Lookup(name string) (wire.Value, error) {
	v, err := c.ao.node.env.Lookup(name)
	if err != nil {
		return wire.Null(), err
	}
	// Looking a name up hands this activity a reference: record the edge
	// exactly as a deserialization would.
	target, _ := v.AsRef()
	now := c.ao.node.env.cfg.Clock.Now()
	c.ao.collector.AddReferenced(target, now)
	_, root := c.ao.node.heap.NewStubRooted(c.ao.id, target)
	c.transientRoots = append(c.transientRoots, root)
	return v, nil
}

// TerminateSelf requests explicit termination of this activity after the
// current request completes (the no-DGC baselines' explicit-termination
// path).
func (c *Context) TerminateSelf() {
	c.ao.wantStop.Store(true)
}
