package active

import (
	"time"

	"repro/internal/wire"
)

// callOptions collects the per-call knobs of the typed API.
type callOptions struct {
	timeout time.Duration
	noReply bool
}

// CallOption is a per-call option for the typed calling API.
type CallOption func(*callOptions)

// WithTimeout sets the call's default wait budget: Wait(0) and resolution
// through FutureGroup then give up after d instead of blocking forever.
func WithTimeout(d time.Duration) CallOption {
	return func(o *callOptions) { o.timeout = d }
}

// WithNoReply turns the call into a one-way send: no future update flows
// back (§4.1 — a reply that nobody awaits would only cost traffic). The
// returned future is pre-resolved with the zero Resp.
func WithNoReply() CallOption {
	return func(o *callOptions) { o.noReply = true }
}

func applyOptions(opts []CallOption) callOptions {
	var o callOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// closedChan is the Done channel of pre-resolved futures.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// TypedFuture wraps a Future and unmarshals its value into Resp on
// consumption. A nil-backed TypedFuture (from a WithNoReply call) is
// already resolved with the zero Resp.
type TypedFuture[Resp any] struct {
	fut *Future
	// timeout is the default Wait budget installed by WithTimeout.
	timeout time.Duration
}

// Typed wraps an untyped future. The wrapper does not take ownership:
// consuming through either view releases the value's heap pin.
func Typed[Resp any](fut *Future) *TypedFuture[Resp] {
	return &TypedFuture[Resp]{fut: fut}
}

// Raw returns the underlying untyped future (nil for one-way calls).
func (f *TypedFuture[Resp]) Raw() *Future { return f.fut }

// WireFutureRef implements wire.FutureSource: a TypedFuture marshals into
// call arguments and results as a first-class wire future value, so a
// typed behavior can return (or forward) a result it does not have yet. A
// nil-backed future (WithNoReply) has no wire identity and marshals as
// Null.
func (f *TypedFuture[Resp]) WireFutureRef() (wire.FutureRef, bool) {
	if f == nil || f.fut == nil {
		return wire.FutureRef{}, false
	}
	return f.fut.WireFutureRef()
}

// FutureFor lifts a first-class future value (a wire.FutureRef carried in
// arguments, state or a reply) into a typed future on the given context's
// node: the typed form of Context.Future, for wait-by-necessity at the
// activity that finally touches the value.
func FutureFor[Resp any](ctx *Context, v wire.Value) (*TypedFuture[Resp], error) {
	fut, err := ctx.Future(v)
	if err != nil {
		return nil, err
	}
	return Typed[Resp](fut), nil
}

// Done returns a channel closed when the future is resolved.
func (f *TypedFuture[Resp]) Done() <-chan struct{} {
	if f.fut == nil {
		return closedChan
	}
	return f.fut.Done()
}

// Wait blocks until the future resolves, unmarshals the result into Resp
// and returns it. A zero timeout falls back to the WithTimeout option of
// the call, and to waiting forever if none was given.
func (f *TypedFuture[Resp]) Wait(timeout time.Duration) (Resp, error) {
	var resp Resp
	if f.fut == nil {
		return resp, nil
	}
	if timeout <= 0 {
		timeout = f.timeout
	}
	v, err := f.fut.Wait(timeout)
	if err != nil {
		return resp, err
	}
	if err := wire.Unmarshal(v, &resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// TryGet returns the unmarshaled value if the future is already resolved.
func (f *TypedFuture[Resp]) TryGet() (Resp, error, bool) {
	var resp Resp
	if f.fut == nil {
		return resp, nil, true
	}
	v, err, ok := f.fut.TryGet()
	if !ok || err != nil {
		return resp, err, ok
	}
	return resp, wire.Unmarshal(v, &resp), true
}

// Discard releases the future's heap pin without reading the value.
func (f *TypedFuture[Resp]) Discard() {
	if f.fut != nil {
		f.fut.Discard()
	}
}

// Stub is a typed, single-method view of an activity handle: the v2
// calling surface replacing hand-rolled wire.Value plumbing. A service
// with several operations gets one stub per operation, all sharing the
// same underlying Handle (and thus one DGC root).
type Stub[Req, Resp any] struct {
	h      *Handle
	method string
}

// NewStub types the given handle's method.
func NewStub[Req, Resp any](h *Handle, method string) Stub[Req, Resp] {
	// Stub construction is the caller-side registration point for the
	// cached-plan codec: compile the Req/Resp plans once so every call
	// through the stub marshals along the flat fast path.
	wire.RegisterType(*new(Req))
	wire.RegisterType(*new(Resp))
	return Stub[Req, Resp]{h: h, method: method}
}

// Handle returns the underlying untyped handle.
func (s Stub[Req, Resp]) Handle() *Handle { return s.h }

// Method returns the wire method name the stub calls.
func (s Stub[Req, Resp]) Method() string { return s.method }

// Call marshals req, performs the asynchronous call and returns a typed
// future for the result.
func (s Stub[Req, Resp]) Call(req Req, opts ...CallOption) (*TypedFuture[Resp], error) {
	o := applyOptions(opts)
	args, err := wire.Marshal(req)
	if err != nil {
		return nil, err
	}
	if o.noReply {
		if err := s.h.Send(s.method, args); err != nil {
			return nil, err
		}
		return &TypedFuture[Resp]{}, nil
	}
	fut, err := s.h.Call(s.method, args)
	if err != nil {
		return nil, err
	}
	return &TypedFuture[Resp]{fut: fut, timeout: o.timeout}, nil
}

// CallSync is Call followed by Wait.
func (s Stub[Req, Resp]) CallSync(req Req, timeout time.Duration) (Resp, error) {
	fut, err := s.Call(req)
	if err != nil {
		var zero Resp
		return zero, err
	}
	return fut.Wait(timeout)
}

// Send performs a one-way, fire-and-forget call.
func (s Stub[Req, Resp]) Send(req Req) error {
	args, err := wire.Marshal(req)
	if err != nil {
		return err
	}
	return s.h.Send(s.method, args)
}

// CallTyped is the in-behavior analogue of Stub.Call: an activity calling
// another activity through a reference value it holds, with typed
// marshaling at both ends.
func CallTyped[Resp any](ctx *Context, target wire.Value, method string, req any, opts ...CallOption) (*TypedFuture[Resp], error) {
	o := applyOptions(opts)
	args, err := wire.Marshal(req)
	if err != nil {
		return nil, err
	}
	if o.noReply {
		if err := ctx.Send(target, method, args); err != nil {
			return nil, err
		}
		return &TypedFuture[Resp]{}, nil
	}
	fut, err := ctx.Call(target, method, args)
	if err != nil {
		return nil, err
	}
	return &TypedFuture[Resp]{fut: fut, timeout: o.timeout}, nil
}

// SendTyped is the in-behavior analogue of Stub.Send.
func SendTyped(ctx *Context, target wire.Value, method string, req any) error {
	args, err := wire.Marshal(req)
	if err != nil {
		return err
	}
	return ctx.Send(target, method, args)
}
