package active

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/tcpnet"
)

// TestTCPTreeBroadcastConcurrent runs concurrent 1024-member tree
// broadcasts over the real TCP substrate. Regression test: relay
// records used to buffer aggregate-reply slices that aliased tcpnet's
// reused read buffer, so under concurrent traffic a whole child
// bundle's replies would decode as garbage after the flush and every
// future in it timed out.
func TestTCPTreeBroadcastConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp substrate in -short mode")
	}
	tr, err := tcpnet.New(tcpnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(Config{Transport: tr, TTB: 100 * time.Millisecond, TTA: time.Second})
	defer env.Close()
	root := env.NewNode()
	svc := NewService(Method("double", func(_ *Context, v int64) (int64, error) {
		return v * 2, nil
	}))
	var anchored []*Handle
	for n := 0; n < 16; n++ {
		node := env.NewNode()
		for a := 0; a < 64; a++ {
			h := node.NewActive(fmt.Sprintf("m-%d-%d", n, a), svc)
			r, err := root.HandleFor(h.Ref())
			if err != nil {
				t.Fatal(err)
			}
			anchored = append(anchored, r)
		}
	}
	g := NewGroup[int64, int64]("double", anchored...)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				fg, err := g.Broadcast(21)
				if err != nil {
					t.Errorf("w%d i%d Broadcast: %v", w, i, err)
					return
				}
				vals, err := fg.WaitAll(10 * time.Second)
				if err != nil {
					t.Errorf("w%d i%d WaitAll: %v", w, i, err)
					return
				}
				for m, v := range vals {
					if v != 42 {
						t.Errorf("w%d i%d member %d: got %d, want 42", w, i, m, v)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
