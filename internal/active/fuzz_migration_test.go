package active

// FuzzMigrationEnvelope aims the fuzzer at the migration envelope decoder
// (WIRE.md §7): the one new wire surface a hostile or corrupted peer can
// hit with arbitrary bytes through the transport's ClassApp call leg.
// decodeMigration must never panic, and everything it accepts must
// re-encode ⇄ re-decode to the same envelope (no one-way doors between a
// forwarder and its destination).

import (
	"testing"

	"repro/internal/ids"
	"repro/internal/wire"
)

func FuzzMigrationEnvelope(f *testing.F) {
	seeds := []migration{
		{},
		{Old: ids.ActivityID{Node: 1, Seq: 1}, Name: "n", Kind: "k"},
		{
			Old:  ids.ActivityID{Node: 3, Seq: 7},
			Name: "roamer",
			Kind: "test/counter",
			State: []migrationState{
				{Key: "total", Value: wire.Int(41)},
				{Key: "peer", Value: wire.Ref(ids.ActivityID{Node: 1, Seq: 2})},
				{Key: "fut", Value: wire.FutureVal(wire.FutureRef{
					ID:    ids.FutureID{Node: 3, Seq: 9},
					Owner: ids.ActivityID{Node: 3, Seq: 7},
				})},
			},
			Queue: []migrationRequest{
				{
					Sender: ids.ActivityID{Node: 2, Seq: 1},
					Future: ids.FutureID{Node: 2, Seq: 5},
					Method: "add",
					Args:   wire.List(wire.Int(1), wire.String("x")),
				},
			},
		},
	}
	for _, m := range seeds {
		f.Add(encodeMigration(m))
	}
	// A few deliberately damaged prefixes.
	f.Add([]byte{envMigrate})
	f.Add([]byte{envMigrate, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMigration(data)
		if err != nil {
			return
		}
		enc := encodeMigration(m)
		again, err := decodeMigration(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted envelope failed: %v", err)
		}
		if again.Old != m.Old || again.Name != m.Name || again.Kind != m.Kind ||
			len(again.State) != len(m.State) || len(again.Queue) != len(m.Queue) {
			t.Fatalf("round trip mismatch:\n%+v\n%+v", m, again)
		}
		for i := range m.State {
			if again.State[i].Key != m.State[i].Key || !again.State[i].Value.Equal(m.State[i].Value) {
				t.Fatalf("state[%d] mismatch", i)
			}
		}
		for i := range m.Queue {
			g, w := again.Queue[i], m.Queue[i]
			if g.Sender != w.Sender || g.Future != w.Future || g.Method != w.Method || !g.Args.Equal(w.Args) {
				t.Fatalf("queue[%d] mismatch", i)
			}
		}
	})
}
