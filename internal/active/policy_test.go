package active

import (
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// orderRecorder is a behavior that records the order its "item" requests
// are served in; "block" parks the serve loop on a gate so the test can
// queue requests behind it, signalling blocked when the park begins.
type orderRecorder struct {
	mu      sync.Mutex
	order   []int64
	gate    chan struct{}
	blocked chan struct{}
}

func newOrderRecorder() *orderRecorder {
	return &orderRecorder{gate: make(chan struct{}), blocked: make(chan struct{}, 1)}
}

func (r *orderRecorder) service() *Service {
	return NewService(
		Method("block", func(_ *Context, _ struct{}) (struct{}, error) {
			select {
			case r.blocked <- struct{}{}:
			default:
			}
			<-r.gate
			return struct{}{}, nil
		}),
		Method("item", func(_ *Context, x int64) (struct{}, error) {
			r.mu.Lock()
			r.order = append(r.order, x)
			r.mu.Unlock()
			return struct{}{}, nil
		}),
		Method("urgent", func(_ *Context, x int64) (struct{}, error) {
			r.mu.Lock()
			r.order = append(r.order, -x)
			r.mu.Unlock()
			return struct{}{}, nil
		}),
		Method("drain", func(_ *Context, _ struct{}) (struct{}, error) {
			return struct{}{}, nil
		}),
	)
}

// queueAndDrain blocks the activity, queues the given requests, releases
// the gate and waits for the terminal "drain" to be served, returning the
// recorded order.
func queueAndDrain(t *testing.T, h *Handle, r *orderRecorder, reqs func(send func(method string, x int64))) []int64 {
	t.Helper()
	blockFut, err := h.Call("block", wire.Null())
	if err != nil {
		t.Fatal(err)
	}
	// Make sure "block" is being served before queueing, so the queued
	// requests all sit pending together.
	<-r.blocked
	sent := 0
	reqs(func(method string, x int64) {
		if err := h.Send(method, wire.Int(x)); err != nil {
			t.Fatal(err)
		}
		sent++
	})
	// Every queued request must be pending before the gate opens, so the
	// policy ranks the full set.
	ao, ok := h.dummy.node.activity(mustRef(t, h.Ref()))
	if !ok {
		t.Fatal("activity not found")
	}
	waitUntil(t, func() bool { return ao.queue.pendingCount() == sent }, 5*time.Second)
	close(r.gate)
	if _, err := blockFut.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// drain is sent AFTER the gate opened; under every policy tested here
	// it is served last of the still-pending set or later, so use a call.
	if _, err := h.CallSync("drain", wire.Null(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, len(r.order))
	copy(out, r.order)
	return out
}

func eqOrder(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPolicyLIFO(t *testing.T) {
	e := testEnv(t)
	r := newOrderRecorder()
	h := e.NewNode().NewActive("lifo", r.service(), WithPolicy(LIFO()))
	defer h.Release()
	got := queueAndDrain(t, h, r, func(send func(string, int64)) {
		for i := int64(1); i <= 5; i++ {
			send("item", i)
		}
	})
	if !eqOrder(got, []int64{5, 4, 3, 2, 1}) {
		t.Fatalf("LIFO served %v", got)
	}
}

func TestPolicyPriorityByMethod(t *testing.T) {
	e := testEnv(t)
	r := newOrderRecorder()
	h := e.NewNode().NewActive("prio", r.service(),
		WithPolicy(PriorityByMethod(map[string]int{"urgent": 10})))
	defer h.Release()
	got := queueAndDrain(t, h, r, func(send func(string, int64)) {
		send("item", 1)
		send("urgent", 1)
		send("item", 2)
		send("urgent", 2)
	})
	// urgent first (recorded negated), FIFO within each class.
	if !eqOrder(got, []int64{-1, -2, 1, 2}) {
		t.Fatalf("priority served %v", got)
	}
}

// TestPolicyConfigDefault: Config.ServicePolicy applies to every activity
// that does not override it.
func TestPolicyConfigDefault(t *testing.T) {
	e := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 25 * time.Millisecond,
		ServicePolicy: LIFO(),
	})
	t.Cleanup(e.Close)
	r := newOrderRecorder()
	h := e.NewNode().NewActive("default-lifo", r.service())
	defer h.Release()
	got := queueAndDrain(t, h, r, func(send func(string, int64)) {
		send("item", 1)
		send("item", 2)
		send("item", 3)
	})
	if !eqOrder(got, []int64{3, 2, 1}) {
		t.Fatalf("Config default policy served %v", got)
	}
}

// TestServeNextSelective: the paper's mid-service selective serve — a
// behavior gathers specific requests with Context.ServeNext(ServeOldest)
// while other pending requests wait their regular turn.
func TestServeNextSelective(t *testing.T) {
	e := testEnv(t)
	var order []string
	var mu sync.Mutex
	note := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	svc := NewService(
		Method("batch", func(ctx *Context, want int64) (int64, error) {
			note("batch-start")
			for i := int64(0); i < want; i++ {
				if err := ctx.ServeNext(ServeOldest("item")); err != nil {
					return i, err
				}
			}
			note("batch-end")
			return want, nil
		}),
		Method("item", func(_ *Context, x int64) (struct{}, error) {
			note("item")
			return struct{}{}, nil
		}),
		Method("noise", func(_ *Context, _ struct{}) (struct{}, error) {
			note("noise")
			return struct{}{}, nil
		}),
	)
	h := e.NewNode().NewActive("gatherer", svc)
	defer h.Release()

	fut, err := h.Call("batch", wire.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	// batch must be running (blocked in ServeNext) before noise is sent,
	// so noise demonstrably sits pending across the gathering.
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) > 0 && order[0] == "batch-start"
	}, 5*time.Second)
	if err := h.Send("noise", wire.Null()); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		if err := h.Send("item", wire.Int(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := fut.Wait(5 * time.Second)
	if err != nil || got.AsInt() != 3 {
		t.Fatalf("batch = %v, %v", got, err)
	}
	// noise was pending the whole time but ServeNext(ServeOldest("item"))
	// skipped it; it is served after batch completes.
	if _, err := h.CallSync("drain", wire.Null(), 5*time.Second); err == nil {
		t.Fatal("drain is not a method; want dispatch error")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"batch-start", "item", "item", "item", "batch-end", "noise"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestPolicyHeldRequestsNeverIdle is the PR 4 satellite fix's regression
// test: an activity whose policy holds pending-but-unselected requests
// must never be reported idle to the DGC — even fully unreferenced, it
// still owes those callers a service and cannot be collected.
func TestPolicyHeldRequestsNeverIdle(t *testing.T) {
	e := testEnv(t)
	n := e.NewNode()
	r := newOrderRecorder()
	defer close(r.gate)
	// ServeOldest("item") as a standing policy: "block" requests are held
	// forever (never selected).
	h := n.NewActive("holder", r.service(), WithPolicy(ServeOldest("item")))
	ao, ok := n.activity(mustRef(t, h.Ref()))
	if !ok {
		t.Fatal("activity not found")
	}
	if err := h.Send("block", wire.Null()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return ao.queue.pendingCount() == 1 }, 5*time.Second)
	// Drop the only reference: with the idle bug this would let the DGC
	// collect an activity that still owes a service.
	h.Release()
	dgcSettle(t, e, n) // many TimeToAlone periods pass
	if ao.isIdle() {
		t.Fatal("activity with policy-held requests reported idle")
	}
	if e.LiveActivities() != 1 {
		t.Fatalf("live = %d; the DGC collected an activity with pending requests", e.LiveActivities())
	}
	// The held "block" request is never selected by this policy; teardown
	// (env close) disposes of it.
}
