package active

// Cross-backend conformance: every scenario here runs once per transport
// implementation (internal/simnet and internal/tcpnet) against the same
// runtime, pinning down that the DGC's correctness depends only on the
// transport.Transport contract — per-pair FIFO, caller-opened exchanges,
// per-class accounting — and not on the in-memory substrate it was
// developed against.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ids"
	"repro/internal/tcpnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

// substrates enumerates the transport backends under conformance test.
// cfg returns a fresh compressed-timing Config wired to a fresh substrate
// instance (the Env takes ownership and closes it).
var substrates = []struct {
	name string
	cfg  func(t *testing.T) Config
}{
	{"simnet", func(t *testing.T) Config {
		return Config{TTB: 10 * time.Millisecond, TTA: 25 * time.Millisecond}
	}},
	{"tcp", func(t *testing.T) Config {
		tr, err := tcpnet.New(tcpnet.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return Config{TTB: 10 * time.Millisecond, TTA: 30 * time.Millisecond, Transport: tr}
	}},
}

// forEachSubstrate runs f as a subtest once per backend.
func forEachSubstrate(t *testing.T, f func(t *testing.T, e *Env)) {
	for _, s := range substrates {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			e := NewEnv(s.cfg(t))
			t.Cleanup(e.Close)
			f(t, e)
		})
	}
}

func TestConformanceCallAcrossNodes(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2 := e.NewNode(), e.NewNode()
		h := n2.NewActive("remote", relay{})
		defer h.Release()
		h1, err := n1.HandleFor(h.Ref())
		if err != nil {
			t.Fatal(err)
		}
		defer h1.Release()
		got, err := h1.CallSync("echo", wire.String("conformance"), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got.AsString() != "conformance" {
			t.Fatalf("echo = %v", got)
		}
		if e.Network().Snapshot().Bytes[transport.ClassApp] == 0 {
			t.Fatal("no app bytes accounted for a cross-node call")
		}
		if e.Network().Snapshot().Bytes[transport.ClassFuture] == 0 {
			t.Fatal("no future bytes accounted for a cross-node result")
		}
	})
}

func TestConformanceSendFIFO(t *testing.T) {
	// One-way sends followed by a call from the same source: the call's
	// answer must observe every prior send (per-pair FIFO).
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2 := e.NewNode(), e.NewNode()
		h := n2.NewActive("seq", relay{})
		defer h.Release()
		h1, err := n1.HandleFor(h.Ref())
		if err != nil {
			t.Fatal(err)
		}
		defer h1.Release()
		const total = 50
		for i := 0; i < total; i++ {
			if err := h1.Send("set:last", wire.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		got, err := h1.CallSync("get:last", wire.Null(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got.AsInt() != total-1 {
			t.Fatalf("last = %v, want %d (FIFO violated)", got, total-1)
		}
	})
}

func TestConformanceReleaseCollectsAcyclically(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2 := e.NewNode(), e.NewNode()
		h := n2.NewActive("a", relay{})
		h1, err := n1.HandleFor(h.Ref())
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
		h1.Release()
		if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if e.Stats().Collected[core.ReasonAcyclic] < 1 {
			t.Fatalf("collected = %+v, want an acyclic termination", e.Stats().Collected)
		}
	})
}

func TestConformanceDistributedCycleCollected(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()
		ha := n1.NewActive("a", relay{})
		hb := n2.NewActive("b", relay{})
		hc := n3.NewActive("c", relay{})
		for _, link := range []struct{ h, to *Handle }{{ha, hb}, {hb, hc}, {hc, ha}} {
			if _, err := link.h.CallSync("set:peer", link.to.Ref(), 5*time.Second); err != nil {
				t.Fatal(err)
			}
		}
		ha.Release()
		hb.Release()
		hc.Release()
		if _, err := e.WaitCollected(0, 15*time.Second); err != nil {
			t.Fatal(err)
		}
		st := e.Stats()
		cyclic := st.Collected[core.ReasonCyclic] + st.Collected[core.ReasonNotified]
		if cyclic < 2 || st.Collected[core.ReasonCyclic] < 1 {
			t.Fatalf("collected = %+v, want a cyclic consensus", st.Collected)
		}
	})
}

func TestConformanceTerminatedCalleeFailsFuture(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		n1, n2 := e.NewNode(), e.NewNode()
		h := n2.NewActive("doomed", relay{})
		h1, err := n1.HandleFor(h.Ref())
		if err != nil {
			t.Fatal(err)
		}
		defer h1.Release()
		h.Terminate()
		fut, err := h1.Call("ping", wire.Null())
		if err != nil {
			return // synchronous rejection is equally conformant
		}
		if _, err := fut.Wait(5 * time.Second); err == nil {
			t.Fatal("call to a terminated activity must fail its future")
		}
	})
}

func TestConformanceTypedGroupBroadcast(t *testing.T) {
	forEachSubstrate(t, func(t *testing.T, e *Env) {
		nodes := []*Node{e.NewNode(), e.NewNode(), e.NewNode()}
		handles := make([]*Handle, len(nodes))
		for i, n := range nodes {
			handles[i] = n.NewActive("member", NewService(
				Method("double", func(_ *Context, req int64) (int64, error) {
					return 2 * req, nil
				})))
		}
		g := NewGroup[int64, int64]("double", handles...)
		defer g.Release()
		fg, err := g.Broadcast(21)
		if err != nil {
			t.Fatal(err)
		}
		resps, err := fg.WaitAll(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range resps {
			if r != 42 {
				t.Fatalf("resp[%d] = %d, want 42", i, r)
			}
		}
	})
}

// TestConformanceTwoEnvsOverTCP is the multi-process shape in miniature:
// two environments, each with its own tcpnet substrate and a disjoint
// node-identifier range, wired together through Peers address books. The
// client references a server activity, calls it, heartbeats it across the
// wire, and after the release the server collects it acyclically — the
// full DGC loop with every byte passing through real TCP connections.
func TestConformanceTwoEnvsOverTCP(t *testing.T) {
	const serverFirstNode = 100
	serverTr, err := tcpnet.New(tcpnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	serverEnv := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 40 * time.Millisecond,
		Transport: serverTr, FirstNode: serverFirstNode,
	})
	t.Cleanup(serverEnv.Close)
	serverNode := serverEnv.NewNode()
	if serverNode.ID() != serverFirstNode {
		t.Fatalf("server node = %v, want node-%d", serverNode.ID(), serverFirstNode)
	}
	sh := serverNode.NewActive("service", relay{})

	// The client process: its address book maps the server's node range,
	// and the server learns the client's address for the return path of
	// future updates (DGC responses need no such entry — they ride the
	// caller's connection).
	clientTr, err := tcpnet.New(tcpnet.Config{
		Peers: map[ids.NodeID]string{serverFirstNode: serverTr.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	serverTr.AddPeer(1, clientTr.Addr())
	clientEnv := NewEnv(Config{
		TTB: 10 * time.Millisecond, TTA: 40 * time.Millisecond,
		Transport: clientTr,
	})
	t.Cleanup(clientEnv.Close)
	clientNode := clientEnv.NewNode()

	// Out-of-band bootstrap, as a real deployment would do it: the client
	// knows the server created its service first, so its identifier is
	// the first activity of the server's first node.
	serviceID := ids.ActivityID{Node: serverFirstNode, Seq: 1}
	if ref, _ := sh.Ref().AsRef(); ref != serviceID {
		t.Fatalf("service id = %v, want %v", ref, serviceID)
	}
	ch, err := clientNode.HandleFor(wire.Ref(serviceID))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ch.CallSync("echo", wire.String("over tcp"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.AsString() != "over tcp" {
		t.Fatalf("echo = %v", got)
	}
	if clientTr.Snapshot().Bytes[transport.ClassApp] == 0 {
		t.Fatal("client accounted no app traffic")
	}

	// Drop the server's own handle: the client's dummy is now the only
	// referencer, heartbeating across processes. Still alive after many
	// TTA periods.
	sh.Release()
	dgcSettle(t, serverEnv, serverNode)
	if serverEnv.LiveActivities() != 1 {
		t.Fatalf("server live = %d, want 1 (remote handle pins it)", serverEnv.LiveActivities())
	}
	if clientTr.Snapshot().Bytes[transport.ClassDGC] == 0 {
		t.Fatal("client sent no DGC heartbeats over TCP")
	}

	// Release the cross-process reference: beats stop, the server-side
	// activity goes TTA-idle and collects itself.
	ch.Release()
	if _, err := serverEnv.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}
