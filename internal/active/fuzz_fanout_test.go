package active

// FuzzFanOutEnvelope aims the fuzzer at the two tree fan-out decoders
// (WIRE.md §10): envFanOut (the request-bundle scatter a relay splits
// and re-sends) and envFanAgg (the aggregated replies flowing back up).
// Both arrive over the transport's ClassApp leg, so a hostile or
// corrupted peer can hit them with arbitrary bytes. Neither may panic,
// and everything accepted must survive a re-encode ⇄ re-decode round
// trip — a relay re-encodes the bundles it forwards, so any one-way
// door would corrupt the subtree.

import (
	"bytes"
	"testing"

	"repro/internal/ids"
	"repro/internal/wire"
)

func fuzzFanOutSeeds() [][]byte {
	sharedEnv := fanOutEnv{
		Root:   3,
		AggKey: 17,
		Method: "double",
		Shared: true,
		Args:   wire.Int(21),
		Bundle: []fanBundle{
			{Dst: 4, Entries: []fanEntry{
				{Target: ids.ActivityID{Node: 4, Seq: 1}, Sender: ids.ActivityID{Node: 3, Seq: 9}, Future: ids.FutureID{Node: 3, Seq: 2}},
				{Target: ids.ActivityID{Node: 4, Seq: 2}, Sender: ids.ActivityID{Node: 3, Seq: 9}, Future: ids.FutureID{Node: 3, Seq: 3}},
			}},
			{Dst: 5, Entries: []fanEntry{
				{Target: ids.ActivityID{Node: 5, Seq: 1}, Sender: ids.ActivityID{Node: 3, Seq: 9}},
			}},
		},
	}
	scatterEnv := fanOutEnv{
		Root:   1,
		Method: "work",
		Bundle: []fanBundle{
			{Dst: 2, Entries: []fanEntry{
				{
					Target: ids.ActivityID{Node: 2, Seq: 7},
					Sender: ids.ActivityID{Node: 1, Seq: 1},
					Future: ids.FutureID{Node: 1, Seq: 4},
					Args:   wire.List(wire.String("x"), wire.Ref(ids.ActivityID{Node: 1, Seq: 3})),
				},
			}},
		},
	}
	agg := encodeFanAgg(3, 17, [][]byte{
		encodeFutureUpdate(futureUpdate{Future: ids.FutureID{Node: 3, Seq: 2}, Value: wire.Int(42)}),
		encodeFutureUpdate(futureUpdate{Future: ids.FutureID{Node: 3, Seq: 3}, Failed: true, Err: "boom"}),
	})
	return [][]byte{
		encodeFanOut(fanOutEnv{Method: "m"}),
		encodeFanOut(sharedEnv),
		encodeFanOut(scatterEnv),
		agg,
		encodeFanAgg(1, 0, nil),
		{envFanOut},
		{envFanAgg, 0xFF, 0xFF, 0xFF, 0xFF},
	}
}

func FuzzFanOutEnvelope(f *testing.F) {
	for _, s := range fuzzFanOutSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if e, err := decodeFanOut(data); err == nil {
			enc := encodeFanOut(e)
			again, err := decodeFanOut(enc)
			if err != nil {
				t.Fatalf("re-decode of accepted fan-out failed: %v", err)
			}
			if again.Root != e.Root || again.AggKey != e.AggKey || again.Method != e.Method ||
				again.Shared != e.Shared || len(again.Bundle) != len(e.Bundle) {
				t.Fatalf("fan-out round trip mismatch:\n%+v\n%+v", e, again)
			}
			if e.Shared && !again.Args.Equal(e.Args) {
				t.Fatal("shared args mismatch")
			}
			for i := range e.Bundle {
				g, w := again.Bundle[i], e.Bundle[i]
				if g.Dst != w.Dst || len(g.Entries) != len(w.Entries) {
					t.Fatalf("bundle[%d] mismatch", i)
				}
				for j := range w.Entries {
					ge, we := g.Entries[j], w.Entries[j]
					if ge.Target != we.Target || ge.Sender != we.Sender || ge.Future != we.Future {
						t.Fatalf("bundle[%d].entry[%d] mismatch", i, j)
					}
					if !e.Shared && !ge.Args.Equal(we.Args) {
						t.Fatalf("bundle[%d].entry[%d] args mismatch", i, j)
					}
				}
			}
		}
		if root, key, updates, err := decodeFanAgg(data); err == nil {
			enc := encodeFanAgg(root, key, updates)
			r2, k2, u2, err := decodeFanAgg(enc)
			if err != nil {
				t.Fatalf("re-decode of accepted fan-agg failed: %v", err)
			}
			if r2 != root || k2 != key || len(u2) != len(updates) {
				t.Fatal("fan-agg round trip mismatch")
			}
			for i := range updates {
				if !bytes.Equal(u2[i], updates[i]) {
					t.Fatalf("fan-agg update[%d] mismatch", i)
				}
			}
		}
	})
}
