package active

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/wire"
)

// ErrUnknownMethod is returned (to the caller, through the future) when a
// Service is asked for a method it does not declare.
var ErrUnknownMethod = errors.New("active: unknown service method")

// ServiceMethod is one named, typed operation of a Service. Build them
// with Method; the zero value is invalid.
type ServiceMethod struct {
	name    string
	handler func(ctx *Context, args wire.Value) (wire.Value, error)
}

// Name returns the method's wire name.
func (m ServiceMethod) Name() string { return m.name }

// Method declares a typed service operation: on every call, the wire
// arguments are unmarshaled into Req, fn runs, and its Resp is marshaled
// back. Req and Resp follow the codec mapping of wire.Marshal — plain
// structs with optional `wire` tags; embedded wire.Value or
// ids.ActivityID fields carry remote references, keeping the DGC's
// reference graph exact even through the typed façade.
func Method[Req, Resp any](name string, fn func(ctx *Context, req Req) (Resp, error)) ServiceMethod {
	if name == "" {
		panic("active: Method with empty name")
	}
	// Compile the cached marshal/unmarshal plans for the method's types
	// once, at registration, so every call walks the flat fast path.
	wire.RegisterType(*new(Req))
	wire.RegisterType(*new(Resp))
	return ServiceMethod{
		name: name,
		handler: func(ctx *Context, args wire.Value) (wire.Value, error) {
			var req Req
			if err := wire.Unmarshal(args, &req); err != nil {
				return wire.Null(), fmt.Errorf("method %q: bad arguments: %w", name, err)
			}
			resp, err := fn(ctx, req)
			if err != nil {
				return wire.Null(), err
			}
			return wire.Marshal(resp)
		},
	}
}

// Service is a typed method registry implementing Behavior: the v2
// replacement for hand-rolled switch-on-method-name dispatch. It is the
// middleware analogue of a declared service interface — the set of
// operations is enumerable (Methods), not an opaque string space.
type Service struct {
	methods map[string]ServiceMethod
}

// NewService builds a service from typed method descriptors. Duplicate
// method names panic: a service's interface must be unambiguous at
// construction time.
func NewService(methods ...ServiceMethod) *Service {
	s := &Service{methods: make(map[string]ServiceMethod, len(methods))}
	for _, m := range methods {
		if m.handler == nil {
			panic("active: NewService with zero ServiceMethod")
		}
		if _, dup := s.methods[m.name]; dup {
			panic(fmt.Sprintf("active: duplicate service method %q", m.name))
		}
		s.methods[m.name] = m
	}
	return s
}

// Methods returns the sorted names of the declared operations.
func (s *Service) Methods() []string {
	out := make([]string, 0, len(s.methods))
	for name := range s.methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Serve implements Behavior by dispatching to the declared method.
func (s *Service) Serve(ctx *Context, method string, args wire.Value) (wire.Value, error) {
	m, ok := s.methods[method]
	if !ok {
		return wire.Null(), fmt.Errorf("%w: %q (service declares %v)", ErrUnknownMethod, method, s.Methods())
	}
	return m.handler(ctx, args)
}
