package active

// Unit and regression tests for live migration (WIRE.md §7): envelope
// round-trips, rebind-table path compression, forwarder reclamation
// accounting, and the dead-forwarder subscription path.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/wire"
)

func TestMigrationEnvelopeRoundTrip(t *testing.T) {
	m := migration{
		Old:  ids.ActivityID{Node: 3, Seq: 7},
		Name: "roamer",
		Kind: "test/counter",
		State: []migrationState{
			{Key: "total", Value: wire.Int(41)},
			{Key: "peer", Value: wire.Ref(ids.ActivityID{Node: 1, Seq: 2})},
			{Key: "pending", Value: wire.FutureVal(wire.FutureRef{
				ID:    ids.FutureID{Node: 3, Seq: 9},
				Owner: ids.ActivityID{Node: 3, Seq: 7},
			})},
		},
		Queue: []migrationRequest{
			{
				Sender: ids.ActivityID{Node: 2, Seq: 1},
				Future: ids.FutureID{Node: 2, Seq: 5},
				Method: "add",
				Args:   wire.Int(1),
			},
			{Sender: ids.ActivityID{Node: 4, Seq: 2}, Method: "poke", Args: wire.Null()},
		},
	}
	got, err := decodeMigration(encodeMigration(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Old != m.Old || got.Name != m.Name || got.Kind != m.Kind {
		t.Fatalf("header = %+v, want %+v", got, m)
	}
	if len(got.State) != len(m.State) || len(got.Queue) != len(m.Queue) {
		t.Fatalf("lengths = %d/%d, want %d/%d", len(got.State), len(got.Queue), len(m.State), len(m.Queue))
	}
	for i := range m.State {
		if got.State[i].Key != m.State[i].Key || !got.State[i].Value.Equal(m.State[i].Value) {
			t.Fatalf("state[%d] = %+v, want %+v", i, got.State[i], m.State[i])
		}
	}
	for i := range m.Queue {
		g, w := got.Queue[i], m.Queue[i]
		if g.Sender != w.Sender || g.Future != w.Future || g.Method != w.Method || !g.Args.Equal(w.Args) {
			t.Fatalf("queue[%d] = %+v, want %+v", i, g, w)
		}
	}
}

func TestMigrateResponseRoundTrip(t *testing.T) {
	id := ids.ActivityID{Node: 9, Seq: 4}
	got, err := decodeMigrateResponse(encodeMigrateResponse(id, nil))
	if err != nil || got != id {
		t.Fatalf("ok response = %v, %v", got, err)
	}
	_, err = decodeMigrateResponse(encodeMigrateResponse(ids.Nil, errors.New("boom")))
	if !errors.Is(err, ErrMigrationFailed) {
		t.Fatalf("failed response error = %v, want ErrMigrationFailed", err)
	}
}

func TestRedirectRoundTrip(t *testing.T) {
	old := ids.ActivityID{Node: 1, Seq: 2}
	new := ids.ActivityID{Node: 3, Seq: 4}
	gotOld, gotNew, err := decodeRedirect(encodeRedirect(old, new))
	if err != nil || gotOld != old || gotNew != new {
		t.Fatalf("redirect = %v → %v, %v", gotOld, gotNew, err)
	}
	if _, _, err := decodeRedirect([]byte{envRedirect, 1, 2}); err == nil {
		t.Fatal("truncated redirect must not decode")
	}
}

func TestRebindTablePathCompression(t *testing.T) {
	e := NewEnv(Config{TTB: 10 * time.Millisecond})
	defer e.Close()
	n := e.NewNode()
	a := ids.ActivityID{Node: 10, Seq: 1}
	b := ids.ActivityID{Node: 11, Seq: 1}
	c := ids.ActivityID{Node: 12, Seq: 1}
	n.addRebind(a, b)
	n.addRebind(b, c)
	if got := n.resolveRebind(a); got != c {
		t.Fatalf("resolve(a) = %v, want %v (chain collapse)", got, c)
	}
	// The cache itself is compressed: one hop, not a walk.
	direct := ids.Nil
	for _, rb := range n.locCache.Snapshot() {
		if rb.Old == a {
			direct = rb.New
		}
	}
	if direct != c {
		t.Fatalf("cache[a] = %v, want %v (path compression)", direct, c)
	}
	// A cycle-shaped rebind (a → ... → a) degenerates to identity removal,
	// not an infinite chain.
	n.addRebind(c, a)
	if got := n.resolveRebind(a); got == a {
		return
	} else if got != n.resolveRebind(got) {
		t.Fatalf("resolve not idempotent after cycle: %v", got)
	}
}

// TestForwarderReclamation is the NumRoots regression test: after a
// migration, the rebinding of every holder, and the forwarder's TTA
// collapse, the source node's heap must hold exactly as many roots as
// before the activity existed — the forwarder's relay stub, the migrated
// state pins and the queue pins all accounted for.
func TestForwarderReclamation(t *testing.T) {
	e := NewEnv(Config{TTB: 10 * time.Millisecond, TTA: 25 * time.Millisecond})
	defer e.Close()
	n1, n2 := e.NewNode(), e.NewNode()
	rootsBefore := n1.Heap().NumRoots()

	h, err := n1.SpawnKind("c", "test/counter")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CallSync("add", wire.Int(5), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	mfut, err := h.Migrate(n2.ID())
	if err != nil {
		t.Fatal(err)
	}
	newRef, err := mfut.Wait(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	newID, _ := newRef.AsRef()
	if newID.Node != n2.ID() {
		t.Fatalf("migrated to %v, want %v", newID.Node, n2.ID())
	}
	// State must have survived the move before we tear everything down.
	if got, err := h.CallSync("total", wire.Null(), 5*time.Second); err != nil || got.AsInt() != 5 {
		t.Fatalf("total after migration = %v, %v", got, err)
	}
	oldID, _ := h.Ref().AsRef()
	h.Release()
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// Everything is collected: forwarder gone from n1's activity table...
	if _, alive := n1.activity(oldID); alive {
		t.Fatal("forwarder still alive after collapse")
	}
	// ...and every root it held — relay stub, state pins — swept.
	waitUntil(t, func() bool { return n1.Heap().NumRoots() == rootsBefore }, 5*time.Second)
	if got := n1.Heap().NumRoots(); got != rootsBefore {
		t.Fatalf("n1 roots = %d after collapse, want %d (forwarder leaked a pin)", got, rootsBefore)
	}
}

// TestDeadForwarderFutureSubscribe pins the failure mode down: lifting a
// future whose home entries died with the collapsed forwarder must fail
// fast with ErrFutureUnavailable — never hang.
func TestDeadForwarderFutureSubscribe(t *testing.T) {
	e := NewEnv(Config{TTB: 10 * time.Millisecond, TTA: 25 * time.Millisecond})
	defer e.Close()
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()
	h, err := n1.SpawnKind("c", "test/counter")
	if err != nil {
		t.Fatal(err)
	}
	oldID, _ := h.Ref().AsRef()
	mfut, err := h.Migrate(n2.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mfut.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	h.Release()
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// A stale first-class future reference naming an entry that died with
	// the forwarder: the home node (n1) answers the subscription with a
	// failure instead of silence.
	probe := n3.NewActive("probe", relay{})
	defer probe.Release()
	fut, err := probe.Future(wire.FutureVal(wire.FutureRef{
		ID:    ids.FutureID{Node: n1.ID(), Seq: 999},
		Owner: oldID,
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, err = fut.Wait(5 * time.Second)
	if !errors.Is(err, ErrFutureUnavailable) {
		t.Fatalf("late subscribe through dead forwarder = %v, want ErrFutureUnavailable", err)
	}
}

// TestMigrateUnknownKindFailsCleanly: a destination that cannot
// re-instantiate the behavior refuses the move and the activity keeps
// serving at home, queue intact.
func TestMigrateUnknownKindFailsCleanly(t *testing.T) {
	RegisterBehavior("test/ephemeral", func() Behavior { return migCounter{} })
	e := NewEnv(Config{TTB: 10 * time.Millisecond})
	defer e.Close()
	n1, n2 := e.NewNode(), e.NewNode()
	h, err := n1.SpawnKind("c", "test/ephemeral")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := h.CallSync("add", wire.Int(3), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Simulate a foreign process that never registered the kind.
	behaviorRegistry.mu.Lock()
	delete(behaviorRegistry.kinds, "test/ephemeral")
	behaviorRegistry.mu.Unlock()
	defer RegisterBehavior("test/ephemeral", func() Behavior { return migCounter{} })

	mfut, err := h.Migrate(n2.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mfut.Wait(5 * time.Second); !errors.Is(err, ErrMigrationFailed) {
		t.Fatalf("migrate with unknown kind = %v, want ErrMigrationFailed", err)
	}
	// Still serving at home, state intact.
	if got, err := h.CallSync("total", wire.Null(), 5*time.Second); err != nil || got.AsInt() != 3 {
		t.Fatalf("post-failure total = %v, %v", got, err)
	}
	if id, _ := h.Ref().AsRef(); id.Node != n1.ID() {
		t.Fatalf("activity moved despite failure")
	}
}

// TestMigrateNotMigratable: plain activities (no registered kind) refuse
// to move, both via Handle.Migrate and Context.MigrateTo.
func TestMigrateNotMigratable(t *testing.T) {
	e := NewEnv(Config{TTB: 10 * time.Millisecond})
	defer e.Close()
	n1, n2 := e.NewNode(), e.NewNode()
	h := n1.NewActive("plain", relay{})
	defer h.Release()
	mfut, err := h.Migrate(n2.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mfut.Wait(5 * time.Second); !errors.Is(err, ErrNotMigratable) {
		t.Fatalf("migrate plain activity = %v, want ErrNotMigratable", err)
	}
}

// TestMigrateToSelfKeepsServing: migrating an activity to the node it
// already lives on resolves as a no-op with the unchanged identity —
// and the activity must keep serving afterwards. Regression: the serve
// loop used to exit as if the queue had moved (no forwarder installed,
// nothing moved), leaving a live activity permanently mute and every
// later call timing out.
func TestMigrateToSelfKeepsServing(t *testing.T) {
	RegisterBehavior("test/self-counter", func() Behavior { return migCounter{} })
	e := NewEnv(Config{TTB: 10 * time.Millisecond})
	defer e.Close()
	n1 := e.NewNode()
	h, err := n1.SpawnKind("c", "test/self-counter")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if _, err := h.CallSync("add", wire.Int(3), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	mfut, err := h.Migrate(n1.ID())
	if err != nil {
		t.Fatal(err)
	}
	v, err := mfut.Wait(5 * time.Second)
	if err != nil {
		t.Fatalf("self-migration = %v, want no-op success", err)
	}
	if id, _ := v.AsRef(); id != mustRefID(t, h.Ref()) {
		t.Fatalf("self-migration resolved with %v, want unchanged identity %v", id, h.Ref())
	}
	if got, err := h.CallSync("total", wire.Null(), 5*time.Second); err != nil || got.AsInt() != 3 {
		t.Fatalf("post-self-migration total = %v, %v; want 3, nil", got, err)
	}
}

// migSharer calls a slow peer and hands the unresolved future to a
// co-located sink activity, then migrates away: the sink (a local holder
// of the emigrated home entry) must keep its resolution pin.
type migSharer struct{}

func (migSharer) Serve(ctx *Context, method string, args wire.Value) (wire.Value, error) {
	if method != "begin" {
		return wire.Null(), errors.New("migSharer: unknown method " + method)
	}
	fut, err := ctx.Call(args.Get("peer"), "slowecho", args.Get("val"))
	if err != nil {
		return wire.Null(), err
	}
	fr, _ := fut.WireFutureRef()
	return wire.Null(), ctx.Send(args.Get("to"), "set:fut", wire.FutureVal(fr))
}

// TestMigratedOwnerKeepsLocalHolderPins is the review regression for the
// emigrated-entry lifecycle: activity A shares an unresolved future with
// co-located B and migrates away; when the value (a reference) arrives,
// B's pin must keep the referenced activity alive until B consumes it —
// the forwarder-side bookkeeping must not discard local holders' pins.
func TestMigratedOwnerKeepsLocalHolderPins(t *testing.T) {
	RegisterBehavior("test/sharer", func() Behavior { return migSharer{} })
	e := NewEnv(Config{TTB: 10 * time.Millisecond, TTA: 25 * time.Millisecond})
	defer e.Close()
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()

	// C: the activity whose liveness depends on B's value pin.
	hc := n3.NewActive("c", relay{})
	// The slow peer parks on a gate so the shared future stays unresolved
	// across the migration by construction.
	slowGate := make(chan struct{})
	slow := n3.NewActive("slow", BehaviorFunc(func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
		<-slowGate
		return args, nil
	}))
	defer slow.Release()
	sink := n1.NewActive("sink", BehaviorFunc(func(ctx *Context, method string, args wire.Value) (wire.Value, error) {
		switch method {
		case "set:fut":
			ctx.Store("fut", args)
			return wire.Null(), nil
		case "finish":
			f, err := ctx.Future(ctx.Load("fut"))
			if err != nil {
				return wire.Null(), err
			}
			return f.Wait(10 * time.Second)
		}
		return wire.Null(), errors.New("sink: unknown method " + method)
	}))
	defer sink.Release()
	h, err := n1.SpawnKind("sharer", "test/sharer")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()

	args := wire.Dict(map[string]wire.Value{
		"peer": slow.Ref(),
		"to":   sink.Ref(),
		"val":  hc.Ref(),
	})
	if _, err := h.CallSync("begin", args, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	mfut, err := h.Migrate(n2.ID())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mfut.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Let the slow call resolve: the value (= Ref(C)) lands at n1 and
	// binds to the sink's pin, observable as a new heap root there. Then
	// drop C's only root and wait out several TTAs: only the sink's
	// unconsumed-value pin keeps C alive now.
	rootsBefore := n1.Heap().NumRoots()
	close(slowGate)
	waitUntil(t, func() bool { return n1.Heap().NumRoots() > rootsBefore }, 10*time.Second)
	hc.Release()
	dgcSettle(t, e, n3)
	if _, alive := e.activity(mustRefID(t, hc.Ref())); !alive {
		t.Fatal("C collected while a local holder's future value still pins it")
	}
	// The sink consumes the value: it really is C's reference.
	got, err := sink.CallSync("finish", wire.Null(), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := got.AsRef(); id != mustRefID(t, hc.Ref()) {
		t.Fatalf("sink consumed %v, want C's reference", got)
	}
}

func mustRefID(t *testing.T, v wire.Value) ids.ActivityID {
	t.Helper()
	id, ok := v.AsRef()
	if !ok {
		t.Fatalf("not a ref: %v", v)
	}
	return id
}
