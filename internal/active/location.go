package active

// Sharded location directory (WIRE.md §9). The flat per-node rebind
// table is replaced by three tiers:
//
//   - a bounded LRU cache of *learned* locations on every node
//     (location.Cache, path compression included) — the fast path every
//     outgoing send consults, fed by redirect envelopes and gossip;
//   - an *origin* table of the mappings this node created by taking
//     part in a migration (source and destination both record it) —
//     the ground truth that outlives forwarder collapse and directory
//     shard loss;
//   - a *shard* slice of the directory: every activity ID
//     consistent-hashes to a home shard on some cluster member, and
//     migration announcements are pushed to the owning shard, which
//     answers location queries for it.
//
// The directory is soft state on top of the migration protocol's
// forwarders: a cache miss falls back to the forwarder hop; a dead
// forwarder falls back to a shard query; a dead shard is repopulated by
// the origin nodes re-announcing a few entries per DGC beat to the
// ring's new owner. Fresh mappings also ride as gossip on the beat's
// envelope traffic (with batching on they share the frame the DGC
// exchange already opened), so steady-state lookups rarely need the
// query at all.

import (
	"repro/internal/ids"
	"repro/internal/location"
	"repro/internal/transport"
	"repro/internal/wire"
)

const (
	// locRecentCap bounds the pending-gossip queue; overflow is dropped
	// (the owner shard was told synchronously, gossip is opportunistic).
	locRecentCap = 256
	// locReannouncePerBeat is how many origin entries a node re-pushes
	// to their current shard owner per DGC beat — the shard handoff
	// mechanism after an owner death.
	locReannouncePerBeat = 8
	// locGossipFanout caps how many beat destinations receive the
	// recent-rebinds gossip each beat.
	locGossipFanout = 4
)

// refreshRing rebuilds the environment's consistent-hash ring from the
// current member view: every local node plus (with the cluster runtime
// on) every known remote member, minus declared-dead nodes. Called on
// every topology change; lookups are a single atomic load.
func (e *Env) refreshRing() {
	e.mu.Lock()
	members := make([]ids.NodeID, 0, len(e.nodes))
	for id := range e.nodes {
		members = append(members, id)
	}
	e.mu.Unlock()
	if ag := e.cluster; ag != nil {
		ag.mu.Lock()
		for id := range ag.members {
			members = append(members, id)
		}
		ag.mu.Unlock()
	}
	alive := members[:0]
	for _, m := range members {
		if !e.isDeadNode(m) {
			alive = append(alive, m)
		}
	}
	e.ring.Store(location.NewRing(alive, 0))
}

// announceLocation records a migration this node took part in (old →
// new) in its origin table and pushes it to the mapping's home shard.
// Both ends of a migration announce, so the directory survives either
// of them dying.
func (n *Node) announceLocation(old, new ids.ActivityID) {
	if old.IsNil() || new.IsNil() || old == new {
		return
	}
	n.locMu.Lock()
	if n.locOrigin == nil {
		n.locOrigin = make(map[ids.ActivityID]ids.ActivityID)
	}
	if _, seen := n.locOrigin[old]; !seen {
		n.locOriginKeys = append(n.locOriginKeys, old)
	}
	storeCompressed(n.locOrigin, old, new)
	if len(n.locRecent) < locRecentCap {
		n.locRecent = append(n.locRecent, location.Rebind{Old: old, New: new})
	}
	n.locMu.Unlock()
	n.directoryAnnounce([]location.Rebind{{Old: old, New: new}})
}

// directoryAnnounce routes rebinds to their home shards: stored
// directly when this node owns the shard, shipped as a TagAnnounce
// envelope otherwise (non-urgent: it may share a batch frame with
// whatever else is heading there).
func (n *Node) directoryAnnounce(rebinds []location.Rebind) {
	ring := n.env.ring.Load()
	var byOwner map[ids.NodeID][]location.Rebind
	for _, rb := range rebinds {
		owner, ok := ring.Owner(rb.Old)
		if !ok {
			continue
		}
		if owner == n.id {
			n.storeShard(rb.Old, rb.New)
			continue
		}
		if byOwner == nil {
			byOwner = make(map[ids.NodeID][]location.Rebind)
		}
		byOwner[owner] = append(byOwner[owner], rb)
	}
	for owner, batch := range byOwner {
		// A dead or unreachable owner drops the announce; the per-beat
		// re-announce repairs the shard once the ring reflects the death.
		_ = n.transportSend(owner, transport.ClassApp, location.AppendAnnounce(nil, batch), false)
	}
}

// storeShard records an authoritative directory entry on this node's
// shard slice.
func (n *Node) storeShard(old, new ids.ActivityID) {
	n.locMu.Lock()
	if n.locShard == nil {
		n.locShard = make(map[ids.ActivityID]ids.ActivityID)
	}
	storeCompressed(n.locShard, old, new)
	n.locMu.Unlock()
}

// storeCompressed inserts old → new with the same two-sided path
// compression the rebind table used: new is chased through existing
// entries first, entries pointing at old are re-pointed, and a mapping
// that collapses to identity is dropped.
func storeCompressed(m map[ids.ActivityID]ids.ActivityID, old, new ids.ActivityID) {
	new = resolveChain(m, new)
	if old == new {
		delete(m, old)
		return
	}
	m[old] = new
	for k, v := range m {
		if v == old {
			m[k] = new
		}
	}
}

// handleLocAnnounce applies an inbound TagAnnounce: entries whose shard
// this node owns go into the shard slice; every entry doubles as a
// redirect (gossip), rebinding local stale stubs and feeding the cache.
func (n *Node) handleLocAnnounce(payload []byte) {
	rebinds, err := location.DecodeAnnounce(payload)
	if err != nil {
		return
	}
	ring := n.env.ring.Load()
	for _, rb := range rebinds {
		if owner, ok := ring.Owner(rb.Old); ok && owner == n.id {
			n.storeShard(rb.Old, rb.New)
		}
		n.applyRedirect(rb.Old, rb.New)
	}
}

// handleLocQuery answers a TagQuery exchange from this node's
// authority: hosted activities (live or forwarding), the shard slice,
// the origin table, then the learned cache as a last resort.
func (n *Node) handleLocQuery(payload []byte) []byte {
	id, err := location.DecodeQuery(payload)
	if err != nil {
		return nil
	}
	if new, ok := n.resolveLocation(id); ok {
		return location.AppendReply(nil, new, true)
	}
	return location.AppendReply(nil, ids.Nil, false)
}

// resolveLocation is the node's full location knowledge for one ID.
func (n *Node) resolveLocation(id ids.ActivityID) (ids.ActivityID, bool) {
	if ao, ok := n.activity(id); ok {
		if newID := ao.forwardTarget(); !newID.IsNil() {
			return newID, true
		}
		return id, true
	}
	n.locMu.Lock()
	if new, ok := n.locShard[id]; ok {
		new = resolveChain(n.locShard, new)
		n.locMu.Unlock()
		return new, true
	}
	if new, ok := n.locOrigin[id]; ok {
		new = resolveChain(n.locOrigin, new)
		n.locMu.Unlock()
		return new, true
	}
	n.locMu.Unlock()
	if new := n.resolveRebind(id); new != id {
		return new, true
	}
	return ids.Nil, false
}

// tryDirectoryRelay is the unknown-target slow path: the request named
// an activity this node does not host and has no cached location for —
// before failing the caller, ask the ID's home shard. The exchange runs
// on its own goroutine (a transport handler must not block on a nested
// call); decode produces the request arguments on that goroutine. When
// the shard does not know the ID either, the caller's future fails with
// failErr — ErrUnknownActivity on the delivery paths, ErrNodeDead on
// the dead-home send path, preserving each path's sentinel contract. It
// reports whether the directory took responsibility for the request.
func (n *Node) tryDirectoryRelay(req request, failErr error, decode func() (wire.Value, bool)) bool {
	owner, ok := n.env.ring.Load().Owner(req.Target)
	if !ok || owner == n.id || n.env.isDeadNode(owner) {
		// No shard to ask (or this node *is* the shard and already
		// answered from resolveLocation via the caller's rebind check).
		return false
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return false
	}
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		resp, err := n.transportCall(owner, transport.ClassApp, location.AppendQuery(nil, req.Target))
		if err == nil {
			if newID, known, derr := location.DecodeReply(resp); derr == nil && known && newID != req.Target {
				n.applyRedirect(req.Target, newID)
				if args, okArgs := decode(); okArgs {
					old := req.Target
					req.Args = wire.Rebind(args, old, newID)
					req.Target = newID
					_ = n.sendRequest(req)
					n.sendRedirect(req.Sender.Node, old, newID)
				}
				return
			}
		}
		// The shard does not know it either (never announced, or truly
		// collected): fail the caller like the pre-directory path did.
		if !req.Future.IsZero() {
			n.replyTo(req, futureUpdate{
				Future: req.Future,
				Failed: true,
				Err:    failErr.Error(),
			})
		}
	}()
	return true
}

// locationBeat runs the directory's per-beat work: gossip fresh
// rebinds to a few nodes this beat already exchanged traffic with, and
// re-announce a rotating slice of the origin table to the current
// shard owners (which repopulates a shard within a handful of beats of
// its previous owner dying).
func (n *Node) locationBeat(beatDsts map[ids.NodeID]struct{}) {
	n.locMu.Lock()
	recent := n.locRecent
	n.locRecent = nil
	var reannounce []location.Rebind
	for i := 0; i < locReannouncePerBeat && len(n.locOriginKeys) > 0; i++ {
		if n.locCursor >= len(n.locOriginKeys) {
			n.locCursor = 0
		}
		k := n.locOriginKeys[n.locCursor]
		n.locCursor++
		if v, ok := n.locOrigin[k]; ok {
			reannounce = append(reannounce, location.Rebind{Old: k, New: v})
		}
	}
	n.locMu.Unlock()
	if len(recent) > 0 && len(beatDsts) > 0 {
		payload := location.AppendAnnounce(nil, recent)
		sent := 0
		for dst := range beatDsts {
			if dst == n.id || n.env.isDeadNode(dst) {
				continue
			}
			_ = n.transportSend(dst, transport.ClassApp, payload, false)
			if sent++; sent >= locGossipFanout {
				break
			}
		}
	}
	if len(reannounce) > 0 {
		n.directoryAnnounce(reannounce)
	}
}

// purgeLocationsTo drops every directory tier's entries that point at a
// node declared dead: a location on a dead node is a lie, and failing
// over to the forwarder/shard path beats routing into the void. Keys
// *through* dead identities survive — a key names an identity, not a
// host.
func (n *Node) purgeLocationsTo(p ids.NodeID) {
	n.locCache.PurgeTargets(p)
	n.locMu.Lock()
	for k, v := range n.locShard {
		if v.Node == p {
			delete(n.locShard, k)
		}
	}
	for k, v := range n.locOrigin {
		if v.Node == p {
			delete(n.locOrigin, k)
		}
	}
	n.locMu.Unlock()
}
