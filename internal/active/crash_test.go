package active

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// TestCrashOrphansAreCollected: activities referenced only from a crashed
// node stop hearing heartbeats and collect themselves acyclically after
// TTA (§4.2: a crash is silence).
func TestCrashOrphansAreCollected(t *testing.T) {
	e := testEnv(t)
	n1, n2 := e.NewNode(), e.NewNode()

	// b lives on n2; its only referencer will be an activity on n1.
	hb := n2.NewActive("b", relay{})
	ha := n1.NewActive("a", relay{})
	if _, err := ha.CallSync("set:peer", hb.Ref(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	hb.Release() // now only a (via its state) and ha pin anything
	dgcSettle(t, e, n2)
	if e.LiveActivities() != 2 {
		t.Fatalf("setup: live = %d, want 2", e.LiveActivities())
	}

	// The machine hosting a dies without a goodbye.
	n1.Crash()

	// b hears nothing for TTA and self-destructs; the env no longer
	// counts the crashed node's activities.
	waitUntil(t, func() bool { return e.LiveActivities() == 0 }, 10*time.Second)
	if got := e.LiveActivities(); got != 0 {
		t.Fatalf("live = %d after crash + TTA, want 0", got)
	}
	st := e.Stats()
	if st.Collected[core.ReasonAcyclic] < 1 {
		t.Fatalf("no acyclic collection recorded: %+v", st.Collected)
	}
}

// TestCrashSurvivorsKeepWorking: the rest of the system is unaffected by
// a crashed node; heartbeats toward it fail silently.
func TestCrashSurvivorsKeepWorking(t *testing.T) {
	e := testEnv(t)
	n1, n2, n3 := e.NewNode(), e.NewNode(), e.NewNode()
	victim := n1.NewActive("victim", relay{})
	survivor := n2.NewActive("survivor", relay{})
	defer survivor.Release()

	// The survivor references the victim, so after the crash it keeps
	// heartbeating into the void — which must be harmless.
	if _, err := survivor.CallSync("set:peer", victim.Ref(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	n1.Crash()
	// A full canary collection cycle passes: the survivor's heartbeats
	// toward the void have demonstrably fired several times, harmlessly.
	dgcSettle(t, e, n3)

	// Still serving requests from a third node.
	h3, err := n3.HandleFor(survivor.Ref())
	if err != nil {
		t.Fatal(err)
	}
	defer h3.Release()
	got, err := h3.CallSync("ping", wire.Null(), 5*time.Second)
	if err != nil || got.AsInt() != 1 {
		t.Fatalf("survivor broken after peer crash: %v %v", got, err)
	}

	// Calls toward the crashed node fail fast instead of hanging.
	hv, err := n3.HandleFor(victim.Ref())
	if err != nil {
		t.Fatal(err)
	}
	defer hv.Release()
	if _, err := hv.Call("ping", wire.Null()); err == nil {
		t.Fatal("call to a crashed node must fail")
	}
}

// TestCrashDoesNotCollectLiveRemotes: a live (handle-pinned) activity on
// a surviving node must not be affected by losing a referencer to a
// crash — it simply expires the referencer and lives on.
func TestCrashDoesNotCollectLiveRemotes(t *testing.T) {
	e := testEnv(t)
	n1, n2 := e.NewNode(), e.NewNode()
	hb := n2.NewActive("kept", relay{})
	defer hb.Release() // pinned throughout
	ha := n1.NewActive("a", relay{})
	if _, err := ha.CallSync("set:peer", hb.Ref(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	n1.Crash()
	dgcSettle(t, e, n2) // several TTAs pass on the surviving node
	if e.LiveActivities() != 1 {
		t.Fatalf("live = %d, want the pinned activity to survive", e.LiveActivities())
	}
}
