package active

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestForwardedFutureRingCollected mirrors the pipeline example: a
// 4-stage forwarded-future chain with a feedback ring, which must be
// reclaimed after the client departs.
func TestForwardedFutureRingCollected(t *testing.T) {
	e := testEnv(t)
	const stages = 4
	svc := func(name string) *Service {
		return NewService(
			Method("wire", func(ctx *Context, req struct {
				Next wire.Value `wire:"next"`
				Last bool       `wire:"last"`
			}) (struct{}, error) {
				ctx.Store("next", req.Next)
				ctx.Store("last", wire.Bool(req.Last))
				return struct{}{}, nil
			}),
			Method("process", func(ctx *Context, payload string) (*TypedFuture[string], error) {
				payload += "→" + name
				if ctx.Load("last").AsBool() {
					if err := SendTyped(ctx, ctx.Load("next"), "fed-back", struct{}{}); err != nil {
						return nil, err
					}
					return CallTyped[string](ctx, ctx.Self(), "finish", payload)
				}
				return CallTyped[string](ctx, ctx.Load("next"), "process", payload)
			}),
			Method("finish", func(ctx *Context, payload string) (string, error) {
				return payload, nil
			}),
			Method("fed-back", func(ctx *Context, _ struct{}) (struct{}, error) {
				return struct{}{}, nil
			}),
		)
	}
	handles := make([]*Handle, stages)
	nodes := make([]*Node, stages)
	for i := range handles {
		nodes[i] = e.NewNode()
		handles[i] = nodes[i].NewActive(fmt.Sprintf("stage-%d", i), svc(fmt.Sprintf("s%d", i)))
	}
	for i, h := range handles {
		if _, err := NewStub[struct {
			Next wire.Value `wire:"next"`
			Last bool       `wire:"last"`
		}, struct{}](h, "wire").CallSync(struct {
			Next wire.Value `wire:"next"`
			Last bool       `wire:"last"`
		}{Next: handles[(i+1)%stages].Ref(), Last: i == stages-1}, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	process := NewStub[string, string](handles[0], "process")
	for i := 0; i < 3; i++ {
		out, err := process.CallSync(fmt.Sprintf("item%d", i), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if out != fmt.Sprintf("item%d→s0→s1→s2→s3", i) {
			t.Fatalf("out = %q", out)
		}
	}
	for _, h := range handles {
		h.Release()
	}
	if _, err := e.WaitCollected(0, 10*time.Second); err != nil {
		for _, n := range nodes {
			for _, ao := range n.snapshotActivities() {
				t.Logf("live %v name=%s idle=%v pending=%d stubTargets=%v referencedBy/collector=%v",
					ao.ID(), ao.Name(), ao.isIdle(), ao.queue.pendingCount(),
					n.heap.StubTargets(ao.ID()), ao.collector)
			}
			t.Logf("node %v futures=%d heap=%v", n.ID(), n.futures.size(), n.heap)
		}
		t.Fatal(err)
	}
}
