package active

// Tree-structured group fan-out (WIRE.md §10). A flat Group.Broadcast
// costs the root one envelope (and one reply) per member; past ~10^3
// members the root's send loop and inbound reply burst dominate. The
// tree path instead ships per-destination-node request bundles down a
// relay tree of degree FanOutDegree: each relay delivers its own bundle
// locally, splits the remaining bundles among at most FanOutDegree
// child relays, and aggregates replies hop-by-hop — the root receives
// O(degree) aggregate envelopes instead of O(members) updates.
//
// Reliability model: relays are soft state. A reply that finds its
// relay record gone (expired, flushed by a beat, or the relay restarted
// the record after a crash of its parent) falls back to a direct
// future-update send to the root, so aggregation can only delay a
// reply, never lose one. A relay node dying with buffered replies loses
// exactly the replies a flat fan-out would have lost had the members
// been hosted there; the root fails fast on first-hop relay death (the
// await-node machinery) and callers time out on deeper losses.

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/wire"
)

// fanBundle is the per-destination-node slice of one tree fan-out: the
// requests for every group member hosted on Dst.
type fanBundle struct {
	Dst     ids.NodeID
	Entries []fanEntry
}

// fanEntry is one member's request inside a bundle. Args is unset for
// shared-args (broadcast) envelopes — every entry uses the envelope's
// shared value.
type fanEntry struct {
	Target ids.ActivityID
	Sender ids.ActivityID
	Future FutureID
	Args   wire.Value
}

// fanOutEnv is the decoded envFanOut envelope.
type fanOutEnv struct {
	Root   ids.NodeID // the caller's node: fallback reply destination
	AggKey uint64     // relay-record key on the sender (0 = sender is the root)
	Method string
	Shared bool
	Args   wire.Value // shared args; only meaningful when Shared
	Bundle []fanBundle
}

// Decode caps, far above anything the group layer produces.
const (
	maxFanBundles = 1 << 12
	maxFanEntries = 1 << 17
)

// encodeFanOut packs: tag | root(4) | aggKey(8) | method | shared(1) |
// [shared args] | uvarint bundle count | bundles. Each bundle is
// dst(4) | uvarint entry count | entries; each entry target(8) |
// sender(8) | future(8) | [args] (args present iff !shared).
func encodeFanOut(e fanOutEnv) []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, envFanOut)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Root))
	buf = binary.LittleEndian.AppendUint64(buf, e.AggKey)
	buf = appendUvarintString(buf, e.Method)
	if e.Shared {
		buf = append(buf, 1)
		buf = wire.Encode(buf, e.Args)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.Bundle)))
	for _, b := range e.Bundle {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(b.Dst))
		buf = binary.AppendUvarint(buf, uint64(len(b.Entries)))
		for _, en := range b.Entries {
			buf = appendActivityID(buf, en.Target)
			buf = appendActivityID(buf, en.Sender)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(en.Future.Node))
			buf = binary.LittleEndian.AppendUint32(buf, en.Future.Seq)
			if !e.Shared {
				buf = wire.Encode(buf, en.Args)
			}
		}
	}
	return buf
}

func decodeFanOut(buf []byte) (fanOutEnv, error) {
	var e fanOutEnv
	if len(buf) < 1+4+8 || buf[0] != envFanOut {
		return e, fmt.Errorf("%w: fan-out header", errBadEnvelope)
	}
	e.Root = ids.NodeID(binary.LittleEndian.Uint32(buf[1:]))
	e.AggKey = binary.LittleEndian.Uint64(buf[5:])
	buf = buf[13:]
	var err error
	if e.Method, buf, err = readUvarintString(buf); err != nil {
		return e, err
	}
	if len(buf) < 1 {
		return e, fmt.Errorf("%w: fan-out shared flag", errBadEnvelope)
	}
	e.Shared = buf[0] != 0
	buf = buf[1:]
	var dec wire.Decoder
	if e.Shared {
		if e.Args, buf, err = dec.DecodePrefix(buf); err != nil {
			return e, err
		}
	}
	nb, sz := binary.Uvarint(buf)
	if sz <= 0 || nb > maxFanBundles {
		return e, fmt.Errorf("%w: fan-out bundle count", errBadEnvelope)
	}
	buf = buf[sz:]
	total := uint64(0)
	for i := uint64(0); i < nb; i++ {
		if len(buf) < 4 {
			return e, fmt.Errorf("%w: truncated fan-out bundle", errBadEnvelope)
		}
		b := fanBundle{Dst: ids.NodeID(binary.LittleEndian.Uint32(buf))}
		buf = buf[4:]
		ne, esz := binary.Uvarint(buf)
		if esz <= 0 || ne > maxFanEntries {
			return e, fmt.Errorf("%w: fan-out entry count", errBadEnvelope)
		}
		if total += ne; total > maxFanEntries {
			return e, fmt.Errorf("%w: fan-out entry total", errBadEnvelope)
		}
		buf = buf[esz:]
		b.Entries = make([]fanEntry, 0, ne)
		for j := uint64(0); j < ne; j++ {
			if len(buf) < 8+8+8 {
				return e, fmt.Errorf("%w: truncated fan-out entry", errBadEnvelope)
			}
			var en fanEntry
			en.Target, buf = readActivityID(buf)
			en.Sender, buf = readActivityID(buf)
			en.Future.Node = ids.NodeID(binary.LittleEndian.Uint32(buf))
			en.Future.Seq = binary.LittleEndian.Uint32(buf[4:])
			buf = buf[8:]
			if !e.Shared {
				if en.Args, buf, err = dec.DecodePrefix(buf); err != nil {
					return e, err
				}
			}
			b.Entries = append(b.Entries, en)
		}
		e.Bundle = append(e.Bundle, b)
	}
	if len(buf) != 0 {
		return e, fmt.Errorf("%w: trailing fan-out bytes", errBadEnvelope)
	}
	return e, nil
}

// encodeFanAgg packs aggregated replies one hop up the tree: tag |
// root(4) | parentKey(8) | uvarint count | count × length-prefixed
// future-update envelopes.
func encodeFanAgg(root ids.NodeID, parentKey uint64, updates [][]byte) []byte {
	size := 1 + 4 + 8 + binary.MaxVarintLen32
	for _, u := range updates {
		size += binary.MaxVarintLen32 + len(u)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, envFanAgg)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(root))
	buf = binary.LittleEndian.AppendUint64(buf, parentKey)
	buf = binary.AppendUvarint(buf, uint64(len(updates)))
	for _, u := range updates {
		buf = binary.AppendUvarint(buf, uint64(len(u)))
		buf = append(buf, u...)
	}
	return buf
}

func decodeFanAgg(buf []byte) (root ids.NodeID, parentKey uint64, updates [][]byte, err error) {
	if len(buf) < 1+4+8 || buf[0] != envFanAgg {
		return 0, 0, nil, fmt.Errorf("%w: fan-agg header", errBadEnvelope)
	}
	root = ids.NodeID(binary.LittleEndian.Uint32(buf[1:]))
	parentKey = binary.LittleEndian.Uint64(buf[5:])
	buf = buf[13:]
	count, sz := binary.Uvarint(buf)
	if sz <= 0 || count > maxFanEntries {
		return 0, 0, nil, fmt.Errorf("%w: fan-agg count", errBadEnvelope)
	}
	buf = buf[sz:]
	updates = make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		ulen, usz := binary.Uvarint(buf)
		if usz <= 0 || ulen > uint64(len(buf)-usz) {
			return 0, 0, nil, fmt.Errorf("%w: fan-agg update length", errBadEnvelope)
		}
		buf = buf[usz:]
		updates = append(updates, buf[:ulen:ulen])
		buf = buf[ulen:]
	}
	if len(buf) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: trailing fan-agg bytes", errBadEnvelope)
	}
	return root, parentKey, updates, nil
}

// ---------------------------------------------------------------------------
// Relay records.

// relayRecord tracks one subtree of a tree fan-out passing through this
// node: where aggregated replies go (parent node + the record key over
// there), which future IDs the subtree still owes, and the replies
// buffered so far.
type relayRecord struct {
	parent    ids.NodeID
	parentKey uint64
	root      ids.NodeID
	born      time.Time
	pending   map[FutureID]struct{}
	buf       [][]byte // encoded futureUpdate envelopes
}

// newRelay registers a record and returns its key (keys start at 1;
// Via/AggKey 0 always means "no record").
func (n *Node) newRelay(parent ids.NodeID, parentKey uint64, root ids.NodeID, pending map[FutureID]struct{}) uint64 {
	n.relayMu.Lock()
	defer n.relayMu.Unlock()
	if n.relays == nil {
		n.relays = make(map[uint64]*relayRecord)
	}
	n.relayNext++
	key := n.relayNext
	n.relays[key] = &relayRecord{
		parent:    parent,
		parentKey: parentKey,
		root:      root,
		born:      n.env.cfg.Clock.Now(),
		pending:   pending,
	}
	return key
}

// aggEnqueue intercepts a locally produced reply for a tree fan-out
// delivery: buffered on the record and flushed upward once the subtree
// is complete. Reports false when the record is gone — the caller then
// replies directly (the fallback that makes aggregation lossless).
func (n *Node) aggEnqueue(key uint64, u futureUpdate) bool {
	n.relayMu.Lock()
	rec, ok := n.relays[key]
	if !ok {
		n.relayMu.Unlock()
		return false
	}
	delete(rec.pending, u.Future)
	rec.buf = append(rec.buf, encodeFutureUpdate(u))
	done := len(rec.pending) == 0
	if done {
		delete(n.relays, key)
	}
	n.relayMu.Unlock()
	if !u.Failed {
		// The aggregate rides node-to-node, but holder registration for
		// futures inside the value is the producing node's job, exactly
		// as on the direct-reply path.
		n.noteFutureValuesSent(rec.root, u.Value)
	}
	if done {
		n.flushRelay(rec)
	}
	return true
}

// relayDetach removes one future from a record (its request left this
// node, so its reply will reach the root directly) and flushes the
// record if that completed it.
func (n *Node) relayDetach(key uint64, fid FutureID) {
	if key == 0 {
		return
	}
	n.relayMu.Lock()
	rec, ok := n.relays[key]
	if ok {
		delete(rec.pending, fid)
		if len(rec.pending) == 0 {
			delete(n.relays, key)
		} else {
			rec = nil
		}
	}
	n.relayMu.Unlock()
	if rec != nil && ok {
		n.flushRelay(rec)
	}
}

// flushRelay ships a record's buffered replies one hop toward the root.
// It must only be called on records already removed from n.relays (the
// caller owns them exclusively); for records still in the map, detach
// the buffer under relayMu and use shipAgg — concurrent serve and
// transport goroutines keep appending to a live record's buf.
func (n *Node) flushRelay(rec *relayRecord) {
	if len(rec.buf) == 0 {
		return
	}
	updates := rec.buf
	rec.buf = nil
	n.shipAgg(rec.root, rec.parent, rec.parentKey, updates)
}

// shipAgg sends detached updates one hop toward the root. If the parent
// cannot be reached the updates fall back to direct sends to the root
// (or local delivery when this node is the root).
func (n *Node) shipAgg(root, parent ids.NodeID, parentKey uint64, updates [][]byte) {
	if parent != n.id {
		if err := n.transportSend(parent, transport.ClassApp, encodeFanAgg(root, parentKey, updates), true); err == nil {
			return
		}
	}
	n.deliverUpdatesToRoot(root, updates)
}

// aggShipment is a live record's buffer detached under relayMu, with
// the routing fields copied so shipping needs no further access to the
// (possibly still concurrently mutated) record.
type aggShipment struct {
	root, parent ids.NodeID
	parentKey    uint64
	updates      [][]byte
}

// deliverUpdatesToRoot is the aggregation fallback: each embedded
// future update travels (or is delivered) as if it had never been
// aggregated.
func (n *Node) deliverUpdatesToRoot(root ids.NodeID, updates [][]byte) {
	for _, u := range updates {
		if root == n.id {
			n.deliverFutureUpdate(u)
			continue
		}
		_ = n.transportSend(root, transport.ClassFuture, u, true)
	}
}

// deliverFanAgg handles an inbound aggregate: at the root (parentKey 0)
// the embedded updates are final and delivered; at a relay they fold
// into the parent record, completing it or waiting for the rest of the
// subtree.
func (n *Node) deliverFanAgg(payload []byte) {
	// The transport owns payload only for the duration of this call
	// (tcpnet reuses its read buffer across frames), but the decoded
	// updates are retained past it: buffered on a relay record or handed
	// to an outbound batch lane. Slice up a private copy instead.
	payload = append([]byte(nil), payload...)
	root, parentKey, updates, err := decodeFanAgg(payload)
	if err != nil {
		return
	}
	if parentKey == 0 || root == n.id {
		n.deliverUpdatesToRoot(root, updates)
		return
	}
	n.relayMu.Lock()
	rec, ok := n.relays[parentKey]
	if ok {
		for _, u := range updates {
			if fu, _, derr := decodeFutureUpdateHeader(u); derr == nil {
				delete(rec.pending, fu.Future)
			}
			rec.buf = append(rec.buf, u)
		}
		if len(rec.pending) == 0 {
			delete(n.relays, parentKey)
		} else {
			rec = nil
		}
	}
	n.relayMu.Unlock()
	if !ok {
		// Record gone (expired or failed over): bypass the tree.
		n.deliverUpdatesToRoot(root, updates)
		return
	}
	if rec != nil {
		n.flushRelay(rec)
	}
}

// deliverFanOut handles an inbound tree scatter: deliver this node's
// bundle locally, split the remaining bundles among at most
// FanOutDegree child relays, and leave a relay record awaiting the
// subtree's replies.
func (n *Node) deliverFanOut(from ids.NodeID, payload []byte) {
	e, err := decodeFanOut(payload)
	if err != nil {
		return
	}
	var mine []fanEntry
	var rest []fanBundle
	pending := make(map[FutureID]struct{})
	for _, b := range e.Bundle {
		for _, en := range b.Entries {
			if !en.Future.IsZero() {
				pending[en.Future] = struct{}{}
			}
		}
		if b.Dst == n.id {
			mine = append(mine, b.Entries...)
		} else {
			rest = append(rest, b)
		}
	}
	var key uint64
	if len(pending) > 0 {
		key = n.newRelay(from, e.AggKey, e.Root, pending)
	}
	n.forwardFanOut(e, rest, key)
	for _, en := range mine {
		args := e.Args
		if !e.Shared {
			args = en.Args
		}
		n.deliverLocalRequest(request{
			Target: en.Target,
			Sender: en.Sender,
			Future: en.Future,
			Method: e.Method,
			Args:   args,
			Via:    key,
		})
	}
}

// forwardFanOut splits bundles among at most FanOutDegree child relays
// (contiguous slices; the first bundle's destination doubles as the
// relay). A child that cannot be reached fails its subtree's futures
// immediately — into the record when there is one, directly to the root
// otherwise.
func (n *Node) forwardFanOut(e fanOutEnv, rest []fanBundle, key uint64) {
	if len(rest) == 0 {
		return
	}
	degree := n.env.cfg.FanOutDegree
	if degree <= 0 {
		degree = 4
	}
	groups := degree
	if len(rest) < groups {
		groups = len(rest)
	}
	per := (len(rest) + groups - 1) / groups
	for i := 0; i < len(rest); i += per {
		end := i + per
		if end > len(rest) {
			end = len(rest)
		}
		group := rest[i:end]
		child := fanOutEnv{
			Root:   e.Root,
			AggKey: key,
			Method: e.Method,
			Shared: e.Shared,
			Args:   e.Args,
			Bundle: group,
		}
		if err := n.transportSend(group[0].Dst, transport.ClassApp, encodeFanOut(child), true); err != nil {
			n.failFanBundles(group, key, e.Root, err)
		}
	}
}

// failFanBundles fails every future of the given bundles with err —
// the subtree can never be delivered.
func (n *Node) failFanBundles(bundles []fanBundle, key uint64, root ids.NodeID, err error) {
	for _, b := range bundles {
		for _, en := range b.Entries {
			if en.Future.IsZero() {
				continue
			}
			u := futureUpdate{Future: en.Future, Failed: true, Err: err.Error()}
			if key != 0 && n.aggEnqueue(key, u) {
				continue
			}
			if root == n.id {
				n.deliverLocalFutureUpdate(u)
				continue
			}
			_ = n.transportSend(root, transport.ClassFuture, encodeFutureUpdate(u), true)
		}
	}
}

// replyTo routes a request's reply: into the relay record for tree
// fan-out deliveries (Via), directly to the future's home otherwise —
// including the fallback when the record has already expired.
func (n *Node) replyTo(req request, u futureUpdate) {
	if req.Via != 0 && n.aggEnqueue(req.Via, u) {
		return
	}
	n.sendFutureUpdate(req.Future, u)
}

// expireRelays runs the relay upkeep each driver beat: buffered replies
// are flushed upward even while the subtree is incomplete (stragglers
// must not hold back the rest), and records older than TTA are dropped —
// their remaining replies, if they ever come, take the direct fallback
// path through replyTo/deliverFanAgg.
func (n *Node) expireRelays() {
	now := n.env.cfg.Clock.Now()
	var ship []aggShipment
	n.relayMu.Lock()
	for key, rec := range n.relays {
		if now.Sub(rec.born) > n.env.cfg.TTA {
			delete(n.relays, key)
		}
		if len(rec.buf) > 0 {
			ship = append(ship, aggShipment{rec.root, rec.parent, rec.parentKey, rec.buf})
			rec.buf = nil
		}
	}
	n.relayMu.Unlock()
	for _, s := range ship {
		n.shipAgg(s.root, s.parent, s.parentKey, s.updates)
	}
}

// failRelaysVia reroutes relay records around a node declared dead: a
// record whose parent died flushes straight to the root from now on; a
// record whose root died is dropped entirely (nobody is waiting).
func (n *Node) failRelaysVia(p ids.NodeID) {
	var ship []aggShipment
	n.relayMu.Lock()
	for key, rec := range n.relays {
		if rec.root == p {
			delete(n.relays, key)
			continue
		}
		if rec.parent == p {
			rec.parent = rec.root
			rec.parentKey = 0
			if len(rec.buf) > 0 {
				ship = append(ship, aggShipment{rec.root, rec.parent, rec.parentKey, rec.buf})
				rec.buf = nil
			}
		}
	}
	n.relayMu.Unlock()
	for _, s := range ship {
		n.shipAgg(s.root, s.parent, s.parentKey, s.updates)
	}
}
