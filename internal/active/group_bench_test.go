package active

import (
	"fmt"
	"testing"
)

// benchGroup builds a 1024-member echo group spread over 16 nodes with
// every handle anchored at a separate root node, mirroring the
// bcast1024 loadgen scenario.
func benchGroup(b *testing.B, disableTree bool) (*Env, *Group[int64, int64]) {
	b.Helper()
	env := NewEnv(Config{DisableDGC: true, DisableTreeFanOut: disableTree})
	root := env.NewNode()
	svc := NewService(Method("double", func(_ *Context, v int64) (int64, error) {
		return v * 2, nil
	}))
	var anchored []*Handle
	for n := 0; n < 16; n++ {
		node := env.NewNode()
		for a := 0; a < 64; a++ {
			h := node.NewActive(fmt.Sprintf("m-%d-%d", n, a), svc)
			r, err := root.HandleFor(h.Ref())
			if err != nil {
				b.Fatal(err)
			}
			anchored = append(anchored, r)
		}
	}
	return env, NewGroup[int64, int64]("double", anchored...)
}

func benchBroadcast1024(b *testing.B, disableTree bool) {
	env, g := benchGroup(b, disableTree)
	defer env.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fg, err := g.Broadcast(21)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fg.WaitAll(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupBroadcast1024Tree measures one full broadcast+gather
// round over the tree fan-out path (WIRE.md §10).
func BenchmarkGroupBroadcast1024Tree(b *testing.B) { benchBroadcast1024(b, false) }

// BenchmarkGroupBroadcast1024Flat measures the same round with the tree
// disabled: the root sends all 1024 requests and receives all 1024
// updates itself.
func BenchmarkGroupBroadcast1024Flat(b *testing.B) { benchBroadcast1024(b, true) }
