package active

// Shared synchronization helpers for this package's tests. No test here
// may synchronize with a bare time.Sleep: a guessed duration is either
// too short on a loaded single-CPU CI runner (flaky) or too long
// everywhere else (slow). Positive conditions poll with waitUntil,
// negative windows observe with holdsFor, and "the DGC must not collect
// X" assertions ride a canary collection cycle via dgcSettle.

import (
	"testing"
	"time"
)

// waitUntil polls cond once a millisecond until it holds, failing t when
// timeout passes first. The bound is generous — the common case returns
// after a few polls — and a timeout fails at the call site naming what
// never happened.
func waitUntil(t testing.TB, cond func() bool, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("waitUntil: condition still false after %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// holdsFor asserts cond stays true for the whole window, polling once a
// millisecond. Negative properties ("this must NOT have happened") have
// no event to wait for, so a bounded observation window is the honest
// check — and polling fails fast the moment the property breaks, where a
// sleep-then-assert would idle through the violation. Prefer dgcSettle
// when the negation is about the collector, which has a progress proxy.
func holdsFor(t testing.TB, cond func() bool, window time.Duration) {
	t.Helper()
	deadline := time.Now().Add(window)
	for time.Now().Before(deadline) {
		if !cond() {
			t.Fatalf("holdsFor: condition violated within %v", window)
		}
		time.Sleep(time.Millisecond)
	}
}

// dgcSettle proves a full DGC reclamation cycle elapsed: it spawns a
// throwaway activity on n, drops its only root, and waits for the
// collector to reap it. "X must not be collected" assertions follow it
// instead of sleeping a guessed number of TTAs — once the canary is
// gone, anything collectable demonstrably had the time and the beats to
// be collected too. It bumps the env's created and acyclic-collected
// counters by one each; tests asserting exact totals must account for
// the canary.
func dgcSettle(t testing.TB, e *Env, n *Node) {
	t.Helper()
	h := n.NewActive("dgc-canary", relay{})
	id, ok := h.Ref().AsRef()
	if !ok {
		t.Fatal("dgcSettle: canary handle has no ref")
	}
	h.Release()
	waitUntil(t, func() bool {
		_, alive := e.activity(id)
		return !alive
	}, 10*time.Second)
}
