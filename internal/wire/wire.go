// Package wire defines the closed value model exchanged between activities
// and its binary codec.
//
// Every communication between active objects — local or remote — goes
// through a serialization and deserialization step (paper §2.1, footnote 1).
// This is what makes the no-sharing property hold by construction: a value
// crossing an activity boundary is always a deep copy, so no passive object
// (including stubs of remote activities) is ever shared between two
// activities.
//
// The decoder exposes the hook the paper's §2.2 builds the reference graph
// on: every Ref decoded on behalf of a recipient activity is reported
// through Decoder.OnRef, and the middleware records "recipient references
// Ref.Target" in response.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/ids"
)

// Kind enumerates the value kinds of the model.
type Kind uint8

// Value kinds. They start at 1 so that a zero tag byte is invalid and
// corruption is detected early.
const (
	KindNull Kind = iota + 1
	KindBool
	KindInt
	KindFloat
	KindString
	KindBytes
	KindList
	KindDict
	KindRef
	KindFuture
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindList:
		return "list"
	case KindDict:
		return "dict"
	case KindRef:
		return "ref"
	case KindFuture:
		return "future"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// FutureRef is the payload of a future value: the identity a not-yet-
// resolved result travels under when it is passed as a call argument or
// returned onward (ASP's first-class futures, paper §5–§6). ID names the
// future on its home node; Owner is the activity the asynchronous call was
// made on behalf of. The owner rides along so that holding a future keeps
// the owner activity alive in the DGC's reference graph exactly as
// holding a plain reference would — a forwarded-but-unresolved future can
// never outlive the activity that must still receive its updates.
type FutureRef struct {
	// ID identifies the future on its home node.
	ID ids.FutureID
	// Owner is the activity on whose behalf the call was made.
	Owner ids.ActivityID
}

// IsZero reports whether the reference is the zero "no future" value.
func (fr FutureRef) IsZero() bool { return fr == FutureRef{} }

// String implements fmt.Stringer.
func (fr FutureRef) String() string {
	return fmt.Sprintf("future(%s@%s)", fr.ID, fr.Owner)
}

// FutureSource is implemented by runtime future handles (e.g. the active
// package's *Future and *TypedFuture) so they can be marshaled directly
// into call arguments and results. WireFutureRef reports the wire identity
// and whether one exists — a pre-resolved handle with no wire identity
// (e.g. a one-way call's placeholder) marshals as Null instead.
type FutureSource interface {
	WireFutureRef() (FutureRef, bool)
}

// Value is a node of the closed value model. Exactly the fields relevant to
// Kind are meaningful. Construct values with the helper constructors; the
// zero Value is the null value.
// Mutually exclusive kinds share fields to keep the struct small: Value is
// copied on every queue push, serve and marshal, so its size is directly
// visible in the hot-path profile (runtime.duffcopy).
type Value struct {
	kind Kind
	b    bool
	// num carries the integer payload of KindInt (int64 bit pattern) and
	// the IEEE-754 bits of KindFloat.
	num uint64
	s   string
	// bytes is the KindBytes payload.
	bytes []byte
	// elems holds the elements of a list (KindList) and the values of a
	// pairs-form dict (KindDict with dkeys set).
	elems []Value
	dict  map[string]Value
	// A dict carries exactly one of two representations: the map form
	// (dict), built by the Dict constructor and by decodes of
	// non-canonical inputs, or the sorted-pairs form (dkeys/elems,
	// strictly increasing keys), produced by the plan codec and by
	// decodes of canonically ordered inputs. The pairs form encodes,
	// walks and deep-copies in key order without sorting or map
	// iteration — that is what makes the cached-plan marshal path
	// allocation-lean — and both forms encode to identical bytes. All
	// accessors handle both.
	dkeys []string
	// ref is the target of KindRef and the owner activity of KindFuture;
	// fid is the future's home identity (together they form a FutureRef).
	ref ids.ActivityID
	fid ids.FutureID
}

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: uint64(v)} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, num: math.Float64bits(v)} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bytes returns a byte-blob value. The slice is copied to keep values
// immutable at boundaries.
func Bytes(v []byte) Value {
	cp := make([]byte, len(v))
	copy(cp, v)
	return Value{kind: KindBytes, bytes: cp}
}

// Floats packs a []float64 into a byte-blob value without copying each
// element into a separate Value. This is how the NAS kernels ship vectors.
func Floats(v []float64) Value {
	buf := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(f))
	}
	return Value{kind: KindBytes, bytes: buf}
}

// List returns a list value. The slice is copied.
func List(elems ...Value) Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	return Value{kind: KindList, elems: cp}
}

// Dict returns a dictionary value. The map is copied.
func Dict(m map[string]Value) Value {
	cp := make(map[string]Value, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return Value{kind: KindDict, dict: cp}
}

// Ref returns a remote-reference value (a stub) designating target.
func Ref(target ids.ActivityID) Value {
	return Value{kind: KindRef, ref: target}
}

// FutureVal returns a future value: a first-class placeholder for a
// result that may not exist yet. The runtime resolves it to the concrete
// value at whichever activity finally touches it (wait-by-necessity).
func FutureVal(fr FutureRef) Value {
	return Value{kind: KindFuture, fid: fr.ID, ref: fr.Owner}
}

// Kind returns the value's kind. The zero Value reports KindNull.
func (v Value) Kind() Kind {
	if v.kind == 0 {
		return KindNull
	}
	return v.kind
}

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.Kind() == KindNull }

// AsBool returns the boolean payload (false if not a bool).
func (v Value) AsBool() bool { return v.kind == KindBool && v.b }

// AsInt returns the integer payload (0 if not an int).
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		return 0
	}
	return int64(v.num)
}

// AsFloat returns the float payload (0 if not a float).
func (v Value) AsFloat() float64 {
	if v.kind != KindFloat {
		return 0
	}
	return math.Float64frombits(v.num)
}

// AsString returns the string payload ("" if not a string).
func (v Value) AsString() string {
	if v.kind != KindString {
		return ""
	}
	return v.s
}

// AsBytes returns the blob payload (nil if not bytes). The returned slice
// must not be mutated.
func (v Value) AsBytes() []byte {
	if v.kind != KindBytes {
		return nil
	}
	return v.bytes
}

// AsFloats unpacks a blob created by Floats. It returns nil if the value is
// not a blob or its size is not a multiple of 8.
func (v Value) AsFloats() []float64 {
	if v.kind != KindBytes || len(v.bytes)%8 != 0 {
		return nil
	}
	out := make([]float64, len(v.bytes)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(v.bytes[8*i:]))
	}
	return out
}

// Len returns the number of elements of a list or dict, the byte length of
// a blob or string, and 0 otherwise.
func (v Value) Len() int {
	switch v.kind {
	case KindList:
		return len(v.elems)
	case KindDict:
		if v.dict != nil {
			return len(v.dict)
		}
		return len(v.dkeys)
	case KindBytes:
		return len(v.bytes)
	case KindString:
		return len(v.s)
	default:
		return 0
	}
}

// At returns the i-th element of a list (null if out of range or not a
// list).
func (v Value) At(i int) Value {
	if v.kind != KindList || i < 0 || i >= len(v.elems) {
		return Null()
	}
	return v.elems[i]
}

// Get returns the dict entry for key (null if absent or not a dict).
func (v Value) Get(key string) Value {
	e, _ := v.getOK(key)
	return e
}

// getOK returns the dict entry for key and whether it is present,
// distinguishing an explicit Null entry from an absent key.
func (v Value) getOK(key string) (Value, bool) {
	if v.kind != KindDict {
		return Null(), false
	}
	if v.dict != nil {
		e, ok := v.dict[key]
		if !ok {
			return Null(), false
		}
		return e, true
	}
	// Pairs form: registered structs carry a handful of fields, so a
	// linear scan beats binary-search bookkeeping.
	for i, k := range v.dkeys {
		if k == key {
			return v.elems[i], true
		}
	}
	return Null(), false
}

// Keys returns the sorted keys of a dict (nil otherwise).
func (v Value) Keys() []string {
	if v.kind != KindDict {
		return nil
	}
	if v.dict == nil {
		// Pairs form is already sorted; copy so callers may keep it.
		return append([]string(nil), v.dkeys...)
	}
	keys := make([]string, 0, len(v.dict))
	for k := range v.dict {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AsRef returns the target of a reference value and whether the value is a
// reference.
func (v Value) AsRef() (ids.ActivityID, bool) {
	if v.kind != KindRef {
		return ids.Nil, false
	}
	return v.ref, true
}

// AsFutureRef returns the identity of a future value and whether the
// value is a future.
func (v Value) AsFutureRef() (FutureRef, bool) {
	if v.kind != KindFuture {
		return FutureRef{}, false
	}
	return FutureRef{ID: v.fid, Owner: v.ref}, true
}

// Refs appends to dst the targets of every reference reachable from v
// (including v itself) and returns the extended slice. Order is
// deterministic: depth-first, list order, sorted dict keys. A future
// value contributes its owner activity: holding a future references the
// activity the result belongs to, so the reference graph sees the edge.
func (v Value) Refs(dst []ids.ActivityID) []ids.ActivityID {
	switch v.kind {
	case KindRef:
		return append(dst, v.ref)
	case KindFuture:
		return append(dst, v.ref)
	case KindList:
		for _, e := range v.elems {
			dst = e.Refs(dst)
		}
		return dst
	case KindDict:
		if v.dict == nil {
			for _, e := range v.elems {
				dst = e.Refs(dst)
			}
			return dst
		}
		for _, k := range v.Keys() {
			dst = v.dict[k].Refs(dst)
		}
		return dst
	default:
		return dst
	}
}

// HasFutures reports whether any future value is reachable from v. It
// allocates nothing (dict iteration order does not matter for a pure
// existence check), so hot paths can gate the FutureRefs walk — and its
// sorted-key allocations — behind it: payloads without futures, the
// overwhelmingly common case, pay one pointer-chasing scan and nothing
// else.
func (v Value) HasFutures() bool {
	switch v.kind {
	case KindFuture:
		return true
	case KindList:
		for _, e := range v.elems {
			if e.HasFutures() {
				return true
			}
		}
		return false
	case KindDict:
		for _, e := range v.dict {
			if e.HasFutures() {
				return true
			}
		}
		for _, e := range v.elems {
			if e.HasFutures() {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// FutureRefs appends to dst every future reference reachable from v
// (including v itself) and returns the extended slice, in the same
// deterministic order as Refs. The runtime walks outgoing payloads with
// it to register the destination as a holder of each forwarded future.
func (v Value) FutureRefs(dst []FutureRef) []FutureRef {
	switch v.kind {
	case KindFuture:
		return append(dst, FutureRef{ID: v.fid, Owner: v.ref})
	case KindList:
		for _, e := range v.elems {
			dst = e.FutureRefs(dst)
		}
		return dst
	case KindDict:
		if v.dict == nil {
			for _, e := range v.elems {
				dst = e.FutureRefs(dst)
			}
			return dst
		}
		for _, k := range v.Keys() {
			dst = v.dict[k].FutureRefs(dst)
		}
		return dst
	default:
		return dst
	}
}

// Equal reports deep structural equality.
func (v Value) Equal(o Value) bool {
	if v.Kind() != o.Kind() {
		return false
	}
	switch v.Kind() {
	case KindNull:
		return true
	case KindBool:
		return v.b == o.b
	case KindInt:
		return v.num == o.num
	case KindFloat:
		vf, of := math.Float64frombits(v.num), math.Float64frombits(o.num)
		return vf == of || (math.IsNaN(vf) && math.IsNaN(of))
	case KindString:
		return v.s == o.s
	case KindBytes:
		if len(v.bytes) != len(o.bytes) {
			return false
		}
		for i := range v.bytes {
			if v.bytes[i] != o.bytes[i] {
				return false
			}
		}
		return true
	case KindList:
		if len(v.elems) != len(o.elems) {
			return false
		}
		for i := range v.elems {
			if !v.elems[i].Equal(o.elems[i]) {
				return false
			}
		}
		return true
	case KindDict:
		if v.Len() != o.Len() {
			return false
		}
		if v.dict == nil && o.dict == nil {
			for i, k := range v.dkeys {
				if k != o.dkeys[i] || !v.elems[i].Equal(o.elems[i]) {
					return false
				}
			}
			return true
		}
		// At least one side has the map form; index through it.
		p, m := v, o
		if p.dict != nil {
			p, m = o, v
		}
		if p.dict != nil {
			for k, e := range p.dict {
				oe, ok := m.dict[k]
				if !ok || !e.Equal(oe) {
					return false
				}
			}
			return true
		}
		for i, k := range p.dkeys {
			me, ok := m.dict[k]
			if !ok || !p.elems[i].Equal(me) {
				return false
			}
		}
		return true
	case KindRef:
		return v.ref == o.ref
	case KindFuture:
		return v.fid == o.fid && v.ref == o.ref
	default:
		return false
	}
}

// String implements fmt.Stringer for debugging.
func (v Value) String() string {
	switch v.Kind() {
	case KindNull:
		return "null"
	case KindBool:
		return fmt.Sprintf("%t", v.b)
	case KindInt:
		return fmt.Sprintf("%d", int64(v.num))
	case KindFloat:
		return fmt.Sprintf("%g", math.Float64frombits(v.num))
	case KindString:
		return fmt.Sprintf("%q", v.s)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.bytes))
	case KindList:
		return fmt.Sprintf("list[%d]", len(v.elems))
	case KindDict:
		return fmt.Sprintf("dict[%d]", v.Len())
	case KindRef:
		return fmt.Sprintf("ref(%s)", v.ref)
	case KindFuture:
		return FutureRef{ID: v.fid, Owner: v.ref}.String()
	default:
		return "invalid"
	}
}

// Errors returned by the decoder.
var (
	// ErrTruncated indicates the buffer ended inside a value.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrBadTag indicates an unknown kind tag.
	ErrBadTag = errors.New("wire: invalid kind tag")
	// ErrTrailing indicates bytes remain after the top-level value.
	ErrTrailing = errors.New("wire: trailing bytes after value")
	// ErrTooDeep indicates nesting beyond the decoder limit.
	ErrTooDeep = errors.New("wire: value nesting too deep")
)

// maxDepth bounds decoder recursion to keep hostile or corrupted inputs
// from exhausting the stack.
const maxDepth = 64

// Encode appends the serialized form of v to dst and returns the extended
// slice.
func Encode(dst []byte, v Value) []byte {
	return encodeTo(dst, &v)
}

// encodeTo recurses by pointer so nested lists and pairs-form dicts do not
// copy each element Value per level.
func encodeTo(dst []byte, v *Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case KindNull:
	case KindBool:
		if v.b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt:
		dst = binary.AppendVarint(dst, int64(v.num))
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, v.num)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindBytes:
		dst = binary.AppendUvarint(dst, uint64(len(v.bytes)))
		dst = append(dst, v.bytes...)
	case KindList:
		dst = binary.AppendUvarint(dst, uint64(len(v.elems)))
		for i := range v.elems {
			dst = encodeTo(dst, &v.elems[i])
		}
	case KindDict:
		if v.dict == nil {
			// Pairs form: already in canonical key order, no sort and no
			// key-slice allocation on the way out.
			dst = binary.AppendUvarint(dst, uint64(len(v.dkeys)))
			for i, k := range v.dkeys {
				dst = binary.AppendUvarint(dst, uint64(len(k)))
				dst = append(dst, k...)
				dst = encodeTo(dst, &v.elems[i])
			}
			break
		}
		dst = binary.AppendUvarint(dst, uint64(len(v.dict)))
		for _, k := range v.Keys() {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			dst = Encode(dst, v.dict[k])
		}
	case KindRef:
		dst = binary.AppendUvarint(dst, uint64(v.ref.Node))
		dst = binary.AppendUvarint(dst, uint64(v.ref.Seq))
	case KindFuture:
		dst = binary.AppendUvarint(dst, uint64(v.fid.Node))
		dst = binary.AppendUvarint(dst, uint64(v.fid.Seq))
		dst = binary.AppendUvarint(dst, uint64(v.ref.Node))
		dst = binary.AppendUvarint(dst, uint64(v.ref.Seq))
	}
	return dst
}

// EncodedSize returns the number of bytes Encode would produce for v. This
// is the quantity the traffic accounting measures.
func EncodedSize(v Value) int {
	// Encoding into a scratch buffer is simple and still cheap relative to
	// network simulation; sizes of hot-path blobs dominate and are O(1) to
	// compute, so take a fast path for them.
	switch v.Kind() {
	case KindBytes:
		return 1 + uvarintLen(uint64(len(v.bytes))) + len(v.bytes)
	case KindString:
		return 1 + uvarintLen(uint64(len(v.s))) + len(v.s)
	default:
		return len(Encode(nil, v))
	}
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Decoder decodes values and reports decoded references through OnRef,
// which is the reference-graph construction hook of the paper's §2.2.
type Decoder struct {
	// OnRef, if non-nil, is invoked once per decoded Ref value with its
	// target, in decoding order. It also fires once per decoded future
	// value with the future's owner activity: holding a future is holding
	// a reference to its owner, and the graph hook must see the edge the
	// moment it enters the recipient's address space.
	OnRef func(target ids.ActivityID)
	// OnFuture, if non-nil, is invoked once per decoded future value, in
	// decoding order (after the owner's OnRef). The runtime adopts a local
	// proxy for the future here.
	OnFuture func(fr FutureRef)
}

// Decode decodes a single value from buf, which must contain exactly one
// value.
func (d *Decoder) Decode(buf []byte) (Value, error) {
	v, rest, err := d.decode(buf, 0)
	if err != nil {
		return Null(), err
	}
	if len(rest) != 0 {
		return Null(), fmt.Errorf("%w: %d bytes", ErrTrailing, len(rest))
	}
	return v, nil
}

// DecodePrefix decodes one value from the front of buf and returns the
// remaining bytes.
func (d *Decoder) DecodePrefix(buf []byte) (Value, []byte, error) {
	return d.decode(buf, 0)
}

func (d *Decoder) decode(buf []byte, depth int) (Value, []byte, error) {
	if depth > maxDepth {
		return Null(), nil, ErrTooDeep
	}
	if len(buf) == 0 {
		return Null(), nil, ErrTruncated
	}
	kind := Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case KindNull:
		return Null(), buf, nil
	case KindBool:
		if len(buf) < 1 {
			return Null(), nil, ErrTruncated
		}
		return Bool(buf[0] != 0), buf[1:], nil
	case KindInt:
		i, n := binary.Varint(buf)
		if n <= 0 {
			return Null(), nil, ErrTruncated
		}
		return Int(i), buf[n:], nil
	case KindFloat:
		if len(buf) < 8 {
			return Null(), nil, ErrTruncated
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		return Float(f), buf[8:], nil
	case KindString:
		s, rest, err := decodeLenPrefixed(buf)
		if err != nil {
			return Null(), nil, err
		}
		return String(string(s)), rest, nil
	case KindBytes:
		b, rest, err := decodeLenPrefixed(buf)
		if err != nil {
			return Null(), nil, err
		}
		return Bytes(b), rest, nil
	case KindList:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return Null(), nil, ErrTruncated
		}
		buf = buf[sz:]
		if n > uint64(len(buf)) {
			// Each element needs at least one byte; reject absurd counts
			// before allocating.
			return Null(), nil, ErrTruncated
		}
		elems := make([]Value, 0, n)
		for i := uint64(0); i < n; i++ {
			var (
				e   Value
				err error
			)
			e, buf, err = d.decode(buf, depth+1)
			if err != nil {
				return Null(), nil, err
			}
			elems = append(elems, e)
		}
		return Value{kind: KindList, elems: elems}, buf, nil
	case KindDict:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return Null(), nil, ErrTruncated
		}
		buf = buf[sz:]
		if n > uint64(len(buf)) {
			return Null(), nil, ErrTruncated
		}
		// Decode into the sorted-pairs form as long as keys arrive in
		// canonical (strictly increasing) order — every encoder in this
		// package emits that order, so map construction only happens for
		// foreign or hand-crafted inputs (including duplicate keys, where
		// the map keeps last-wins semantics).
		keys := make([]string, 0, n)
		vals := make([]Value, 0, n)
		sorted := true
		for i := uint64(0); i < n; i++ {
			k, rest, err := decodeLenPrefixed(buf)
			if err != nil {
				return Null(), nil, err
			}
			buf = rest
			var e Value
			e, buf, err = d.decode(buf, depth+1)
			if err != nil {
				return Null(), nil, err
			}
			ks := string(k)
			if sorted && len(keys) > 0 && ks <= keys[len(keys)-1] {
				sorted = false
			}
			keys = append(keys, ks)
			vals = append(vals, e)
		}
		if sorted {
			return Value{kind: KindDict, dkeys: keys, elems: vals}, buf, nil
		}
		m := make(map[string]Value, n)
		for i, k := range keys {
			m[k] = vals[i]
		}
		return Value{kind: KindDict, dict: m}, buf, nil
	case KindRef:
		node, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return Null(), nil, ErrTruncated
		}
		buf = buf[sz:]
		seq, sz := binary.Uvarint(buf)
		if sz <= 0 {
			return Null(), nil, ErrTruncated
		}
		buf = buf[sz:]
		target := ids.ActivityID{Node: ids.NodeID(node), Seq: uint32(seq)}
		if d.OnRef != nil {
			d.OnRef(target)
		}
		return Ref(target), buf, nil
	case KindFuture:
		var raw [4]uint64
		for i := range raw {
			x, sz := binary.Uvarint(buf)
			if sz <= 0 {
				return Null(), nil, ErrTruncated
			}
			raw[i] = x
			buf = buf[sz:]
		}
		fr := FutureRef{
			ID:    ids.FutureID{Node: ids.NodeID(raw[0]), Seq: uint32(raw[1])},
			Owner: ids.ActivityID{Node: ids.NodeID(raw[2]), Seq: uint32(raw[3])},
		}
		if d.OnRef != nil {
			d.OnRef(fr.Owner)
		}
		if d.OnFuture != nil {
			d.OnFuture(fr)
		}
		return FutureVal(fr), buf, nil
	default:
		return Null(), nil, fmt.Errorf("%w: %d", ErrBadTag, uint8(kind))
	}
}

func decodeLenPrefixed(buf []byte) ([]byte, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return nil, nil, ErrTruncated
	}
	buf = buf[sz:]
	if n > uint64(len(buf)) {
		return nil, nil, ErrTruncated
	}
	return buf[:n], buf[n:], nil
}

// Rebind returns a copy of v in which every reference to from designates
// to instead. Future values rebind their Owner the same way: holding a
// future is holding a reference to its owner activity, so when that
// activity migrates (its identifier changes with its node), the edge the
// reference graph sees must follow. Values without any occurrence of from
// are returned unchanged (no copy). The future's home identity (FutureRef.ID)
// is never rewritten — futures do not migrate; their home table stays put.
func Rebind(v Value, from, to ids.ActivityID) Value {
	if from.IsNil() || from == to {
		return v
	}
	out, _ := rebind(v, from, to)
	return out
}

func rebind(v Value, from, to ids.ActivityID) (Value, bool) {
	switch v.kind {
	case KindRef:
		if v.ref == from {
			return Ref(to), true
		}
		return v, false
	case KindFuture:
		if v.ref == from {
			return FutureVal(FutureRef{ID: v.fid, Owner: to}), true
		}
		return v, false
	case KindList:
		var cp []Value
		for i, e := range v.elems {
			r, changed := rebind(e, from, to)
			if cp == nil {
				if !changed {
					continue
				}
				cp = make([]Value, len(v.elems))
				copy(cp, v.elems)
			}
			cp[i] = r
		}
		if cp == nil {
			return v, false
		}
		return Value{kind: KindList, elems: cp}, true
	case KindDict:
		if v.dict == nil {
			var cp []Value
			for i, e := range v.elems {
				r, changed := rebind(e, from, to)
				if cp == nil {
					if !changed {
						continue
					}
					cp = make([]Value, len(v.elems))
					copy(cp, v.elems)
				}
				cp[i] = r
			}
			if cp == nil {
				return v, false
			}
			// Keys are immutable; the copy shares them.
			return Value{kind: KindDict, dkeys: v.dkeys, elems: cp}, true
		}
		var cp map[string]Value
		for k, e := range v.dict {
			r, changed := rebind(e, from, to)
			if cp == nil {
				if !changed {
					continue
				}
				cp = make(map[string]Value, len(v.dict))
				for k2, e2 := range v.dict {
					cp[k2] = e2
				}
			}
			cp[k] = r
		}
		if cp == nil {
			return v, false
		}
		return Value{kind: KindDict, dict: cp}, true
	default:
		return v, false
	}
}

// DeepCopy returns a structurally independent copy of v. Transferring a
// value between two activities on the same node uses DeepCopy instead of a
// full encode/decode round-trip: it preserves the no-sharing property
// (paper §2.1) without paying for serialization, matching the paper's
// intra-JVM pass-by-reference of DGC messages being exempt from traffic
// accounting (§5).
func DeepCopy(v Value) Value {
	switch v.Kind() {
	case KindBytes:
		return Bytes(v.bytes)
	case KindList:
		return Value{kind: KindList, elems: deepCopyElems(v.elems)}
	case KindDict:
		if v.dict == nil {
			if v.elems == nil {
				return v
			}
			// Keys are immutable strings; sharing the slice keeps the copy
			// cheap and preserves the plan codec's key-identity fast path
			// across the intra-node DeepCopy boundary.
			return Value{kind: KindDict, dkeys: v.dkeys, elems: deepCopyElems(v.elems)}
		}
		cp := make(map[string]Value, len(v.dict))
		for k, e := range v.dict {
			cp[k] = DeepCopy(e)
		}
		return Value{kind: KindDict, dict: cp}
	default:
		// Scalars and refs are immutable value types.
		return v
	}
}

// deepCopyElems copies an element slice wholesale and deepens each copied
// slot in place. Addresses are only ever taken of the fresh heap slice's
// elements — never of a parameter or local — so the recursion moves
// pointers instead of full Values (runtime.duffcopy) without forcing any
// stack Value to escape.
func deepCopyElems(elems []Value) []Value {
	cp := make([]Value, len(elems))
	copy(cp, elems)
	for i := range cp {
		deepenInPlace(&cp[i])
	}
	return cp
}

// deepenInPlace replaces every shared mutable container reachable from v
// with a private copy, mutating v's own fields directly. v must point into
// a heap slice owned by the caller.
func deepenInPlace(v *Value) {
	switch v.Kind() {
	case KindBytes:
		cp := make([]byte, len(v.bytes))
		copy(cp, v.bytes)
		v.bytes = cp
	case KindList:
		v.elems = deepCopyElems(v.elems)
	case KindDict:
		if v.dict == nil {
			if v.elems != nil {
				v.elems = deepCopyElems(v.elems)
			}
			return
		}
		// Map form recurses by value: map entries are not addressable, and
		// a pointer to the loop variable would escape to the heap per entry.
		cp := make(map[string]Value, len(v.dict))
		for k, e := range v.dict {
			cp[k] = DeepCopy(e)
		}
		v.dict = cp
	}
	// Scalars and refs are immutable value types: nothing to deepen.
}
