package wire

import (
	"testing"

	"repro/internal/ids"
)

func TestRebindRewritesRefsAndFutureOwners(t *testing.T) {
	old := ids.ActivityID{Node: 1, Seq: 5}
	new := ids.ActivityID{Node: 7, Seq: 1}
	other := ids.ActivityID{Node: 2, Seq: 2}
	v := List(
		Ref(old),
		Ref(other),
		Dict(map[string]Value{
			"self": Ref(old),
			"fut": FutureVal(FutureRef{
				ID:    ids.FutureID{Node: 1, Seq: 9},
				Owner: old,
			}),
		}),
		Int(3),
	)
	got := Rebind(v, old, new)
	if id, _ := got.At(0).AsRef(); id != new {
		t.Fatalf("ref = %v, want %v", id, new)
	}
	if id, _ := got.At(1).AsRef(); id != other {
		t.Fatalf("unrelated ref rewritten to %v", id)
	}
	if id, _ := got.At(2).Get("self").AsRef(); id != new {
		t.Fatalf("nested ref = %v, want %v", id, new)
	}
	fr, _ := got.At(2).Get("fut").AsFutureRef()
	if fr.Owner != new {
		t.Fatalf("future owner = %v, want %v", fr.Owner, new)
	}
	if fr.ID != (ids.FutureID{Node: 1, Seq: 9}) {
		t.Fatalf("future home identity rewritten: %v", fr.ID)
	}
	// The original is untouched (Rebind copies on write).
	if id, _ := v.At(0).AsRef(); id != old {
		t.Fatalf("original mutated: %v", id)
	}
}

func TestRebindNoOccurrenceReturnsSameValue(t *testing.T) {
	old := ids.ActivityID{Node: 1, Seq: 5}
	new := ids.ActivityID{Node: 7, Seq: 1}
	v := List(Int(1), String("x"), Ref(ids.ActivityID{Node: 2, Seq: 2}))
	if got := Rebind(v, old, new); !got.Equal(v) {
		t.Fatalf("rebind without occurrence changed the value: %v", got)
	}
	// Degenerate inputs are identity.
	if got := Rebind(Ref(old), old, old); !got.Equal(Ref(old)) {
		t.Fatal("self-rebind must be identity")
	}
	if got := Rebind(Ref(old), ids.Nil, new); !got.Equal(Ref(old)) {
		t.Fatal("nil-from rebind must be identity")
	}
}

func TestRebindPartialListCopies(t *testing.T) {
	old := ids.ActivityID{Node: 1, Seq: 1}
	new := ids.ActivityID{Node: 2, Seq: 1}
	v := List(Int(1), Ref(old), Int(2), Ref(old))
	got := Rebind(v, old, new)
	for i, want := range []Value{Int(1), Ref(new), Int(2), Ref(new)} {
		if !got.At(i).Equal(want) {
			t.Fatalf("elem[%d] = %v, want %v", i, got.At(i), want)
		}
	}
}
