//go:build !race

// Alloc-regression gates for the codec's steady-state hot paths. These
// run as ordinary tests (make test / CI), so allocation creep on the
// wire path fails the build exactly like a correctness regression. The
// budgets are exact current counts, not aspirations: when an
// optimization lowers one, lower the budget with it. Excluded under the
// race detector, whose instrumentation changes allocation behavior.
package wire

import (
	"testing"
)

// allocMsg mirrors the shape of a typical request struct on the typed
// call path: scalar fields plus a string, all plan-fast-path kinds.
type allocMsg struct {
	A   int64   `wire:"a"`
	B   int64   `wire:"b"`
	F   float64 `wire:"f"`
	On  bool    `wire:"on"`
	Tag string  `wire:"tag"`
}

func init() { RegisterType(allocMsg{}) }

// assertAllocs runs f and fails the test when its average allocation
// count exceeds budget.
func assertAllocs(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("%s: %.2f allocs/op, budget %.2f", name, got, budget)
	}
}

// TestAllocsPlanMarshal gates the registered-struct marshal: one []Value
// slab for the dict plus the interface boxing of the sample itself.
func TestAllocsPlanMarshal(t *testing.T) {
	msg := allocMsg{A: 7, B: 9, F: 2.5, On: true, Tag: "alloc"}
	var sink Value
	assertAllocs(t, "plan marshal", 2, func() {
		v, err := Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		sink = v
	})
	if sink.Get("a").AsInt() != 7 {
		t.Fatalf("bad marshal: %v", sink)
	}
}

// TestAllocsEncode gates canonical encoding into a reused buffer: zero
// allocations once the buffer has grown to size.
func TestAllocsEncode(t *testing.T) {
	msg := allocMsg{A: 7, B: 9, F: 2.5, On: true, Tag: "alloc"}
	v, err := Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 256)
	assertAllocs(t, "encode", 0, func() {
		buf = Encode(buf[:0], v)
	})
	if len(buf) == 0 {
		t.Fatal("empty encoding")
	}
}

// TestAllocsPlanUnmarshal gates the registered-struct decode of a
// canonical (sorted-pairs) dict: the merge walk itself allocates nothing
// for plan-fast-path fields.
func TestAllocsPlanUnmarshal(t *testing.T) {
	msg := allocMsg{A: 7, B: 9, F: 2.5, On: true, Tag: "alloc"}
	v, err := Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	raw := Encode(nil, v)
	var dec Decoder
	decoded, err := dec.Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	out := new(allocMsg)
	assertAllocs(t, "plan unmarshal", 0, func() {
		if err := Unmarshal(decoded, out); err != nil {
			t.Fatal(err)
		}
	})
	if *out != msg {
		t.Fatalf("round trip: got %+v, want %+v", *out, msg)
	}
}

// TestAllocsDeepCopy gates the intra-node isolation copy of a canonical
// pairs-form dict with scalar fields: exactly the one []Value slab.
func TestAllocsDeepCopy(t *testing.T) {
	msg := allocMsg{A: 7, B: 9, F: 2.5, On: true, Tag: "alloc"}
	v, err := Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	var sink Value
	assertAllocs(t, "deep copy", 1, func() {
		sink = DeepCopy(v)
	})
	if !sink.Equal(v) {
		t.Fatalf("deep copy diverged: %v != %v", sink, v)
	}
}
