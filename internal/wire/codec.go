// Struct codec: a reflection bridge between Go values and the closed
// value model.
//
// Marshal and Unmarshal let application code exchange plain Go structs
// while everything on the wire remains the closed model of this package —
// so the no-sharing property and the Decoder.OnRef reference-graph hook
// (paper §2.1–§2.2) keep holding by construction. A remote reference never
// hides inside an opaque blob: it is either an explicit wire.Value field
// passed through verbatim, or an ids.ActivityID field mapped to a Ref
// node, and in both cases the decoder sees it.
//
// The mapping:
//
//	bool                    ⇄ Bool
//	int, int8..int64        ⇄ Int
//	uint, uint8..uint64     ⇄ Int (marshal fails above MaxInt64)
//	float32, float64        ⇄ Float
//	string                  ⇄ String
//	[]byte                  ⇄ Bytes
//	[]float64               ⇄ Bytes (packed, as Floats — the NAS fast path)
//	other slices, arrays    ⇄ List
//	map[string]T            ⇄ Dict
//	struct                  ⇄ Dict keyed by field name or `wire:"name"` tag
//	pointer                 ⇄ Null when nil, else the element
//	ids.ActivityID          ⇄ Ref
//	wire.FutureRef          ⇄ Future (first-class future identity)
//	wire.FutureSource       → Future (marshal only: runtime future handles)
//	wire.Value              ⇄ passed through verbatim
//	any (unmarshal only)    ← nil, bool, int64, float64, string, []byte,
//	                          []any, map[string]any, ids.ActivityID,
//	                          wire.FutureRef
//
// Struct tags follow the encoding/json convention: `wire:"name"` renames,
// `wire:"-"` skips, `wire:",omitempty"` drops zero values on marshal.
// Unexported fields are ignored. Embedded structs are encoded under their
// type name like any other field (no flattening). A Null value
// unmarshals into any target as its zero value, so Null() arguments from
// dynamic callers satisfy typed no-argument methods.
package wire

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"

	"repro/internal/ids"
)

// Codec errors.
var (
	// ErrMarshal indicates a Go value outside the closed model's reach.
	ErrMarshal = errors.New("wire: unmarshalable Go value")
	// ErrUnmarshal indicates a Value/Go-type mismatch.
	ErrUnmarshal = errors.New("wire: cannot unmarshal")
)

var (
	valueType        = reflect.TypeOf(Value{})
	activityIDType   = reflect.TypeOf(ids.ActivityID{})
	futureRefType    = reflect.TypeOf(FutureRef{})
	futureSourceType = reflect.TypeOf((*FutureSource)(nil)).Elem()
)

// Marshal maps a Go value onto the closed value model.
func Marshal(v any) (Value, error) {
	if v == nil {
		return Null(), nil
	}
	return marshalValue(reflect.ValueOf(v))
}

func marshalValue(rv reflect.Value) (Value, error) {
	switch rv.Type() {
	case valueType:
		return rv.Interface().(Value), nil
	case activityIDType:
		return Ref(rv.Interface().(ids.ActivityID)), nil
	case futureRefType:
		return FutureVal(rv.Interface().(FutureRef)), nil
	}
	// Runtime future handles (*active.Future, *active.TypedFuture) marshal
	// to future values: passing a future is passing its wire identity, not
	// its (possibly not yet existing) result.
	if rv.Type().Implements(futureSourceType) && (rv.Kind() != reflect.Pointer || !rv.IsNil()) {
		if fr, ok := rv.Interface().(FutureSource).WireFutureRef(); ok {
			return FutureVal(fr), nil
		}
		return Null(), nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		return Bool(rv.Bool()), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return Int(rv.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		u := rv.Uint()
		if u > math.MaxInt64 {
			return Null(), fmt.Errorf("%w: %d overflows int64", ErrMarshal, u)
		}
		return Int(int64(u)), nil
	case reflect.Float32, reflect.Float64:
		return Float(rv.Float()), nil
	case reflect.String:
		return String(rv.String()), nil
	case reflect.Slice:
		switch rv.Type().Elem().Kind() {
		case reflect.Uint8:
			return Bytes(rv.Bytes()), nil
		case reflect.Float64:
			return Floats(rv.Convert(reflect.TypeOf([]float64(nil))).Interface().([]float64)), nil
		}
		return marshalList(rv)
	case reflect.Array:
		return marshalList(rv)
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return Null(), fmt.Errorf("%w: map key type %s (need string)", ErrMarshal, rv.Type().Key())
		}
		m := make(map[string]Value, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			ev, err := marshalValue(iter.Value())
			if err != nil {
				return Null(), err
			}
			m[iter.Key().String()] = ev
		}
		return Value{kind: KindDict, dict: m}, nil
	case reflect.Struct:
		if p := planFor(rv.Type()); p != nil {
			return p.marshal(rv)
		}
		fields := fieldsOf(rv.Type())
		m := make(map[string]Value, len(fields))
		for _, f := range fields {
			fv := rv.Field(f.index)
			if f.omitEmpty && fv.IsZero() {
				continue
			}
			ev, err := marshalValue(fv)
			if err != nil {
				return Null(), fmt.Errorf("field %s: %w", f.name, err)
			}
			m[f.name] = ev
		}
		return Value{kind: KindDict, dict: m}, nil
	case reflect.Pointer, reflect.Interface:
		if rv.IsNil() {
			return Null(), nil
		}
		return marshalValue(rv.Elem())
	default:
		return Null(), fmt.Errorf("%w: type %s", ErrMarshal, rv.Type())
	}
}

func marshalList(rv reflect.Value) (Value, error) {
	elems := make([]Value, rv.Len())
	for i := range elems {
		ev, err := marshalValue(rv.Index(i))
		if err != nil {
			return Null(), err
		}
		elems[i] = ev
	}
	return Value{kind: KindList, elems: elems}, nil
}

// Unmarshal maps a Value back onto the Go value out points to. out must be
// a non-nil pointer. Dict keys with no matching struct field are ignored;
// struct fields with no matching key are left untouched.
func Unmarshal(v Value, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("%w: target must be a non-nil pointer, got %T", ErrUnmarshal, out)
	}
	return unmarshalValue(v, rv.Elem())
}

func unmarshalValue(v Value, rv reflect.Value) error {
	if v.IsNull() {
		// Null is the universal zero: a dynamic caller's Null() arguments
		// land in a typed method's zero Req, nil pointers/slices/maps
		// round-trip, and absent never means "error".
		rv.SetZero()
		return nil
	}
	switch rv.Type() {
	case valueType:
		rv.Set(reflect.ValueOf(v))
		return nil
	case activityIDType:
		target, ok := v.AsRef()
		if !ok {
			return mismatch(v, rv.Type())
		}
		rv.Set(reflect.ValueOf(target))
		return nil
	case futureRefType:
		fr, ok := v.AsFutureRef()
		if !ok {
			return mismatch(v, rv.Type())
		}
		rv.Set(reflect.ValueOf(fr))
		return nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		if v.Kind() != KindBool {
			return mismatch(v, rv.Type())
		}
		rv.SetBool(v.AsBool())
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if v.Kind() != KindInt {
			return mismatch(v, rv.Type())
		}
		if rv.OverflowInt(v.AsInt()) {
			return fmt.Errorf("%w: %d overflows %s", ErrUnmarshal, v.AsInt(), rv.Type())
		}
		rv.SetInt(v.AsInt())
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		if v.Kind() != KindInt {
			return mismatch(v, rv.Type())
		}
		i := v.AsInt()
		if i < 0 || rv.OverflowUint(uint64(i)) {
			return fmt.Errorf("%w: %d overflows %s", ErrUnmarshal, i, rv.Type())
		}
		rv.SetUint(uint64(i))
		return nil
	case reflect.Float32, reflect.Float64:
		switch v.Kind() {
		case KindFloat:
			rv.SetFloat(v.AsFloat())
		case KindInt:
			rv.SetFloat(float64(v.AsInt()))
		default:
			return mismatch(v, rv.Type())
		}
		return nil
	case reflect.String:
		if v.Kind() != KindString {
			return mismatch(v, rv.Type())
		}
		rv.SetString(v.AsString())
		return nil
	case reflect.Slice:
		return unmarshalSlice(v, rv)
	case reflect.Array:
		if v.Kind() != KindList || v.Len() != rv.Len() {
			return mismatch(v, rv.Type())
		}
		for i := 0; i < rv.Len(); i++ {
			if err := unmarshalValue(v.At(i), rv.Index(i)); err != nil {
				return err
			}
		}
		return nil
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return fmt.Errorf("%w: map key type %s (need string)", ErrUnmarshal, rv.Type().Key())
		}
		if v.Kind() != KindDict {
			return mismatch(v, rv.Type())
		}
		m := reflect.MakeMapWithSize(rv.Type(), v.Len())
		et := rv.Type().Elem()
		for _, k := range v.Keys() {
			ev := reflect.New(et).Elem()
			if err := unmarshalValue(v.Get(k), ev); err != nil {
				return fmt.Errorf("key %q: %w", k, err)
			}
			m.SetMapIndex(reflect.ValueOf(k).Convert(rv.Type().Key()), ev)
		}
		rv.Set(m)
		return nil
	case reflect.Struct:
		if v.Kind() != KindDict {
			return mismatch(v, rv.Type())
		}
		if p := planFor(rv.Type()); p != nil {
			return p.unmarshal(v, rv)
		}
		for _, f := range fieldsOf(rv.Type()) {
			fv, present := v.getOK(f.name)
			if !present {
				// Absent key: leave the field untouched (an explicit Null
				// entry, by contrast, zeroes it).
				continue
			}
			if err := unmarshalValue(fv, rv.Field(f.index)); err != nil {
				return fmt.Errorf("field %s: %w", f.name, err)
			}
		}
		return nil
	case reflect.Pointer:
		if rv.IsNil() {
			rv.Set(reflect.New(rv.Type().Elem()))
		}
		return unmarshalValue(v, rv.Elem())
	case reflect.Interface:
		if rv.NumMethod() != 0 {
			return fmt.Errorf("%w: non-empty interface %s", ErrUnmarshal, rv.Type())
		}
		got := toAny(v)
		if got == nil {
			rv.SetZero()
			return nil
		}
		rv.Set(reflect.ValueOf(got))
		return nil
	default:
		return fmt.Errorf("%w: type %s", ErrUnmarshal, rv.Type())
	}
}

func unmarshalSlice(v Value, rv reflect.Value) error {
	switch rv.Type().Elem().Kind() {
	case reflect.Uint8:
		if v.Kind() != KindBytes {
			return mismatch(v, rv.Type())
		}
		b := v.AsBytes()
		cp := reflect.MakeSlice(rv.Type(), len(b), len(b))
		reflect.Copy(cp, reflect.ValueOf(b))
		rv.Set(cp)
		return nil
	case reflect.Float64:
		// The packed Floats fast path; a plain List of floats also works,
		// so hand-built values remain readable.
		if v.Kind() == KindBytes {
			fs := v.AsFloats()
			if fs == nil && v.Len() != 0 {
				return fmt.Errorf("%w: blob of %d bytes is not a packed []float64", ErrUnmarshal, v.Len())
			}
			rv.Set(reflect.ValueOf(fs).Convert(rv.Type()))
			return nil
		}
	}
	if v.Kind() != KindList {
		return mismatch(v, rv.Type())
	}
	out := reflect.MakeSlice(rv.Type(), v.Len(), v.Len())
	for i := 0; i < v.Len(); i++ {
		if err := unmarshalValue(v.At(i), out.Index(i)); err != nil {
			return err
		}
	}
	rv.Set(out)
	return nil
}

// toAny maps a Value to its canonical dynamic Go form.
func toAny(v Value) any {
	switch v.Kind() {
	case KindBool:
		return v.AsBool()
	case KindInt:
		return v.AsInt()
	case KindFloat:
		return v.AsFloat()
	case KindString:
		return v.AsString()
	case KindBytes:
		cp := make([]byte, v.Len())
		copy(cp, v.AsBytes())
		return cp
	case KindList:
		out := make([]any, v.Len())
		for i := range out {
			out[i] = toAny(v.At(i))
		}
		return out
	case KindDict:
		out := make(map[string]any, v.Len())
		for _, k := range v.Keys() {
			out[k] = toAny(v.Get(k))
		}
		return out
	case KindRef:
		target, _ := v.AsRef()
		return target
	case KindFuture:
		fr, _ := v.AsFutureRef()
		return fr
	default:
		return nil
	}
}

func mismatch(v Value, t reflect.Type) error {
	return fmt.Errorf("%w: %s value into %s", ErrUnmarshal, v.Kind(), t)
}

// fieldInfo describes one marshaled struct field.
type fieldInfo struct {
	name      string
	index     int
	omitEmpty bool
}

var fieldCache sync.Map // reflect.Type → []fieldInfo

// fieldsOf returns the marshaled fields of a struct type, honoring wire
// tags, with a per-type cache (dispatch benchmarks hit this on every
// call).
func fieldsOf(t reflect.Type) []fieldInfo {
	if cached, ok := fieldCache.Load(t); ok {
		return cached.([]fieldInfo)
	}
	fields := make([]fieldInfo, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		info := fieldInfo{name: f.Name, index: i}
		if tag, ok := f.Tag.Lookup("wire"); ok {
			name, opts, _ := strings.Cut(tag, ",")
			if name == "-" && opts == "" {
				continue
			}
			if name != "" {
				info.name = name
			}
			for opts != "" {
				var opt string
				opt, opts, _ = strings.Cut(opts, ",")
				if opt == "omitempty" {
					info.omitEmpty = true
				}
			}
		}
		fields = append(fields, info)
	}
	fieldCache.Store(t, fields)
	return fields
}
