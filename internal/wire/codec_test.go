package wire

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

// tagged is the kitchen-sink struct the property tests round-trip: every
// codec mapping, tags included, plus nested refs the DGC hook must see.
type tagged struct {
	B     bool    `wire:"b"`
	I     int64   `wire:"i"`
	U     uint16  `wire:"u"`
	F     float64 `wire:"f"`
	S     string  `wire:"s"`
	Blob  []byte  `wire:"blob"`
	Vec   []float64
	Words []string         `wire:"words"`
	Pairs map[string]int64 `wire:"pairs"`
	Inner *taggedInner     `wire:"inner"`
	Self  ids.ActivityID   `wire:"self"`
	Peers []ids.ActivityID `wire:"peers"`
	Raw   Value            `wire:"raw"`
	Skip  string           `wire:"-"`
	Opt   string           `wire:",omitempty"`
	small int              // unexported: ignored
}

type taggedInner struct {
	Name string `wire:"name"`
	Next ids.ActivityID
}

// Generate implements quick.Generator so the fuzz inputs exercise nil
// maps/slices/pointers and ref-bearing branches with equal probability.
func (tagged) Generate(r *rand.Rand, size int) reflect.Value {
	v := tagged{
		B:    r.Intn(2) == 0,
		I:    r.Int63() - r.Int63(),
		U:    uint16(r.Uint32()),
		F:    r.NormFloat64(),
		S:    randString(r),
		Self: randID(r),
		Raw:  List(Int(r.Int63n(100)), String("raw")),
	}
	if r.Intn(2) == 0 {
		v.Blob = randBytes(r)
	}
	if r.Intn(2) == 0 {
		v.Vec = []float64{r.Float64(), r.Float64()}
	}
	for i := r.Intn(4); i > 0; i-- {
		v.Words = append(v.Words, randString(r))
	}
	if n := r.Intn(4); n > 0 {
		v.Pairs = make(map[string]int64, n)
		for i := 0; i < n; i++ {
			v.Pairs[randString(r)] = r.Int63()
		}
	}
	if r.Intn(2) == 0 {
		v.Inner = &taggedInner{Name: randString(r), Next: randID(r)}
	}
	for i := r.Intn(3); i > 0; i-- {
		v.Peers = append(v.Peers, randID(r))
	}
	return reflect.ValueOf(v)
}

func randString(r *rand.Rand) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzäöü-_ 0123456789"
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = alphabet[r.Intn(len(alphabet))]
	}
	return string(b)
}

func randBytes(r *rand.Rand) []byte {
	b := make([]byte, 1+r.Intn(16))
	r.Read(b)
	return b
}

func randID(r *rand.Rand) ids.ActivityID {
	return ids.ActivityID{Node: ids.NodeID(1 + r.Intn(64)), Seq: uint32(1 + r.Intn(1<<16))}
}

// refCount returns how many Ref nodes the struct marshals to — the number
// of OnRef callbacks a decode must fire.
func (v tagged) refCount() int {
	n := 1 + len(v.Peers) // Self + Peers
	if v.Inner != nil {
		n++ // Inner.Next
	}
	return n + len(v.Raw.Refs(nil))
}

// normalize maps a round-tripped struct back onto the semantic identity
// the codec promises: empty and nil slices/maps are indistinguishable on
// the wire, and []float64 survives via the packed blob representation.
func normalize(v tagged) tagged {
	v.Skip = ""
	v.small = 0
	if len(v.Blob) == 0 {
		v.Blob = nil
	}
	if len(v.Vec) == 0 {
		v.Vec = nil
	}
	if len(v.Words) == 0 {
		v.Words = nil
	}
	if len(v.Pairs) == 0 {
		v.Pairs = nil
	}
	if len(v.Peers) == 0 {
		v.Peers = nil
	}
	return v
}

// TestCodecRoundTripProperty is the satellite property test: arbitrary
// tagged structs survive Marshal → Encode → Decode → Unmarshal, and every
// Ref is reported through Decoder.OnRef exactly once.
func TestCodecRoundTripProperty(t *testing.T) {
	prop := func(in tagged) bool {
		mv, err := Marshal(in)
		if err != nil {
			t.Logf("Marshal: %v", err)
			return false
		}
		buf := Encode(nil, mv)

		seen := make(map[ids.ActivityID]int)
		var total int
		dec := Decoder{OnRef: func(target ids.ActivityID) {
			seen[target]++
			total++
		}}
		decoded, err := dec.Decode(buf)
		if err != nil {
			t.Logf("Decode: %v", err)
			return false
		}

		var out tagged
		out.Skip = "must survive, tag skips it"
		if err := Unmarshal(decoded, &out); err != nil {
			t.Logf("Unmarshal: %v", err)
			return false
		}
		out.Skip = ""

		want := normalize(in)
		if !reflect.DeepEqual(normalize(out), want) {
			t.Logf("round-trip mismatch:\n in=%+v\nout=%+v", want, normalize(out))
			return false
		}
		if total != in.refCount() {
			t.Logf("OnRef fired %d times, want %d", total, in.refCount())
			return false
		}
		// Exactly once per Ref *occurrence*: multiplicity must match the
		// marshaled value's own ref inventory.
		wantMult := make(map[ids.ActivityID]int)
		for _, id := range mv.Refs(nil) {
			wantMult[id]++
		}
		if !reflect.DeepEqual(seen, wantMult) {
			t.Logf("OnRef multiset %v, want %v", seen, wantMult)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzCodecDecodeUnmarshal feeds arbitrary bytes through Decode and, when
// they parse, through Unmarshal into the kitchen-sink struct: neither may
// panic, and a successful decode must re-encode to an equal value.
func FuzzCodecDecodeUnmarshal(f *testing.F) {
	seedStruct, err := Marshal(tagged{
		I: 7, S: "seed", Vec: []float64{1, 2}, Self: ids.ActivityID{Node: 1, Seq: 2},
		Inner: &taggedInner{Name: "x", Next: ids.ActivityID{Node: 3, Seq: 4}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(Encode(nil, seedStruct))
	f.Add(Encode(nil, List(Int(1), Dict(map[string]Value{"k": Float(2.5)}))))
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var refs int
		dec := Decoder{OnRef: func(ids.ActivityID) { refs++ }}
		v, err := dec.Decode(data)
		if err != nil {
			return
		}
		if got := len(v.Refs(nil)); got != refs {
			t.Fatalf("OnRef fired %d times for a value containing %d refs", refs, got)
		}
		round, err := dec.Decode(Encode(nil, v))
		if err != nil || !round.Equal(v) {
			t.Fatalf("re-encode round-trip failed: %v (err %v)", round, err)
		}
		var out tagged
		_ = Unmarshal(v, &out) // must not panic; errors are fine
		var anything any
		if err := Unmarshal(v, &anything); err != nil {
			t.Fatalf("Unmarshal into any must accept every model value: %v", err)
		}
	})
}

func TestMarshalScalarsAndPassthrough(t *testing.T) {
	id := ids.ActivityID{Node: 5, Seq: 17}
	cases := []struct {
		in   any
		want Value
	}{
		{nil, Null()},
		{true, Bool(true)},
		{int(-3), Int(-3)},
		{int8(7), Int(7)},
		{uint64(9), Int(9)},
		{3.5, Float(3.5)},
		{float32(2), Float(2)},
		{"hi", String("hi")},
		{[]byte{1, 2}, Bytes([]byte{1, 2})},
		{[]float64{1, 2}, Floats([]float64{1, 2})},
		{[]int{1, 2}, List(Int(1), Int(2))},
		{[2]string{"a", "b"}, List(String("a"), String("b"))},
		{map[string]bool{"x": true}, Dict(map[string]Value{"x": Bool(true)})},
		{id, Ref(id)},
		{Ref(id), Ref(id)},
		{String("passthrough"), String("passthrough")},
		{(*taggedInner)(nil), Null()},
	}
	for _, c := range cases {
		got, err := Marshal(c.in)
		if err != nil {
			t.Fatalf("Marshal(%#v): %v", c.in, err)
		}
		if !got.Equal(c.want) {
			t.Errorf("Marshal(%#v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMarshalErrors(t *testing.T) {
	for _, in := range []any{
		make(chan int),
		func() {},
		map[int]string{1: "x"},
		uint64(math.MaxUint64),
		struct{ C chan int }{},
	} {
		if _, err := Marshal(in); !errors.Is(err, ErrMarshal) {
			t.Errorf("Marshal(%T) err = %v, want ErrMarshal", in, err)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var s string
	if err := Unmarshal(Int(1), &s); !errors.Is(err, ErrUnmarshal) {
		t.Errorf("int→string err = %v, want ErrUnmarshal", err)
	}
	var i8 int8
	if err := Unmarshal(Int(1000), &i8); !errors.Is(err, ErrUnmarshal) {
		t.Errorf("overflow err = %v, want ErrUnmarshal", err)
	}
	var u uint8
	if err := Unmarshal(Int(-1), &u); !errors.Is(err, ErrUnmarshal) {
		t.Errorf("negative→uint err = %v, want ErrUnmarshal", err)
	}
	if err := Unmarshal(Int(1), (*int)(nil)); !errors.Is(err, ErrUnmarshal) {
		t.Errorf("nil target err = %v, want ErrUnmarshal", err)
	}
	var notPtr int
	if err := Unmarshal(Int(1), notPtr); !errors.Is(err, ErrUnmarshal) {
		t.Errorf("non-pointer target err = %v, want ErrUnmarshal", err)
	}
	var id ids.ActivityID
	if err := Unmarshal(Int(1), &id); !errors.Is(err, ErrUnmarshal) {
		t.Errorf("int→ActivityID err = %v, want ErrUnmarshal", err)
	}
}

func TestUnmarshalPartialStruct(t *testing.T) {
	// Absent dict keys leave fields untouched; unknown keys are ignored.
	v := Dict(map[string]Value{"i": Int(9), "unknown": String("x")})
	out := tagged{S: "keep me"}
	if err := Unmarshal(v, &out); err != nil {
		t.Fatal(err)
	}
	if out.I != 9 || out.S != "keep me" {
		t.Fatalf("partial unmarshal: %+v", out)
	}
}

func TestUnmarshalIntoAny(t *testing.T) {
	id := ids.ActivityID{Node: 2, Seq: 3}
	v := Dict(map[string]Value{
		"n":   Int(4),
		"f":   Float(0.5),
		"who": Ref(id),
		"l":   List(Bool(true), Null()),
	})
	var out any
	if err := Unmarshal(v, &out); err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"n":   int64(4),
		"f":   0.5,
		"who": id,
		"l":   []any{true, nil},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("got %#v, want %#v", out, want)
	}
}

func TestUnmarshalFloatSliceForms(t *testing.T) {
	// Both the packed-blob and the plain-list representations must land in
	// []float64.
	want := []float64{1.5, -2.5}
	var a, b []float64
	if err := Unmarshal(Floats(want), &a); err != nil || !reflect.DeepEqual(a, want) {
		t.Fatalf("packed: %v %v", a, err)
	}
	if err := Unmarshal(List(Float(1.5), Float(-2.5)), &b); err != nil || !reflect.DeepEqual(b, want) {
		t.Fatalf("list: %v %v", b, err)
	}
	var bad []float64
	if err := Unmarshal(Bytes([]byte{1, 2, 3}), &bad); !errors.Is(err, ErrUnmarshal) {
		t.Fatalf("odd blob err = %v, want ErrUnmarshal", err)
	}
}
