// Cached-plan codec: the allocation-lean fast path of the struct codec.
//
// RegisterType compiles a per-struct-type plan once — the sorted wire
// names, the field indices and a small kind tag per field — so hot-path
// Marshal/Unmarshal walk a flat field table instead of re-deriving the
// mapping reflectively on every call. A plan marshal emits the
// sorted-pairs dict representation with the plan's shared key slice, so
// the steady-state cost of marshaling a registered struct is one []Value
// allocation; a plan unmarshal of a canonically ordered dict is a single
// merge walk over two sorted key lists and allocates nothing for scalar
// fields.
//
// Wire bytes are unchanged: both dict representations encode to the same
// canonical sorted-key bytes, and field kinds replicate the reflection
// codec's semantics exactly (FuzzPlanCodecParity holds the two paths
// byte-identical). Reflection survives in the plan compiler, in the
// fallback for unregistered types, and per-field for the rare field
// types the flat table does not special-case.
package wire

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"

	"repro/internal/ids"
)

// planKind tags the fast-path treatment of one struct field. pkFallback
// routes the field through the generic reflection codec, so a plan never
// changes what lands on the wire — only how fast it gets there.
type planKind uint8

const (
	pkFallback planKind = iota
	pkBool
	pkInt
	pkUint
	pkFloat
	pkString
	pkBytes
	pkFloats
	pkValue
	pkActivityID
	pkFutureRef
)

// planField is one entry of the flat encode/decode table.
type planField struct {
	key       string // wire name (tag-renamed, sorted)
	index     int    // struct field index
	omitEmpty bool
	kind      planKind
}

// plan is the compiled codec of one registered struct type.
type plan struct {
	typ reflect.Type
	// keys holds the wire names in canonical (sorted) order. Every
	// marshal without omitted fields shares this one slice as the dict's
	// dkeys, so repeated marshals of the same type allocate no key
	// storage at all.
	keys   []string
	fields []planField // aligned with keys
}

// planCache maps reflect.Type → *plan for every registered struct type.
var planCache sync.Map

// planFor returns the compiled plan for t, or nil when t was never
// registered.
func planFor(t reflect.Type) *plan {
	if p, ok := planCache.Load(t); ok {
		return p.(*plan)
	}
	return nil
}

// RegisterType compiles and caches the encode/decode plan for the type
// of sample, walking through pointers, slices, arrays and map values to
// the underlying struct and recursing into nested struct field types.
// Non-struct types are ignored, so generic call sites can register their
// Req/Resp parameters unconditionally. Registration is idempotent and
// safe for concurrent use; unregistered types keep working through the
// reflection fallback.
func RegisterType(sample any) {
	if sample == nil {
		return
	}
	registerType(reflect.TypeOf(sample), 0)
}

func registerType(t reflect.Type, depth int) {
	if depth > maxDepth {
		return
	}
	for {
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map:
			t = t.Elem()
			continue
		}
		break
	}
	if t.Kind() != reflect.Struct {
		return
	}
	switch t {
	case valueType, activityIDType, futureRefType:
		return
	}
	if t.Implements(futureSourceType) {
		// Marshaled as a future identity, never as a field dict.
		return
	}
	if _, ok := planCache.Load(t); ok {
		return
	}
	planCache.Store(t, compilePlan(t))
	for i := 0; i < t.NumField(); i++ {
		if f := t.Field(i); f.IsExported() {
			registerType(f.Type, depth+1)
		}
	}
}

// compilePlan builds the flat field table: fieldsOf order re-sorted by
// wire name (the canonical dict order) with a fast-path kind per field.
func compilePlan(t reflect.Type) *plan {
	fields := fieldsOf(t)
	p := &plan{
		typ:    t,
		keys:   make([]string, 0, len(fields)),
		fields: make([]planField, 0, len(fields)),
	}
	for _, f := range fields {
		p.fields = append(p.fields, planField{
			key:       f.name,
			index:     f.index,
			omitEmpty: f.omitEmpty,
			kind:      classifyField(t.Field(f.index).Type),
		})
	}
	sort.Slice(p.fields, func(i, j int) bool { return p.fields[i].key < p.fields[j].key })
	for _, f := range p.fields {
		p.keys = append(p.keys, f.key)
	}
	return p
}

// classifyField picks the fast-path treatment for a field type,
// mirroring marshalValue's dispatch order: the special wire types first,
// FutureSource implementors to the fallback, then the kind switch.
// Anything without an exact fast-path twin (slices of structs, maps,
// pointers, interfaces, nested structs) stays on the reflection codec.
func classifyField(t reflect.Type) planKind {
	switch t {
	case valueType:
		return pkValue
	case activityIDType:
		return pkActivityID
	case futureRefType:
		return pkFutureRef
	}
	if t.Implements(futureSourceType) {
		return pkFallback
	}
	switch t.Kind() {
	case reflect.Bool:
		return pkBool
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return pkInt
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return pkUint
	case reflect.Float32, reflect.Float64:
		return pkFloat
	case reflect.String:
		return pkString
	case reflect.Slice:
		switch t.Elem().Kind() {
		case reflect.Uint8:
			return pkBytes
		case reflect.Float64:
			return pkFloats
		}
	}
	return pkFallback
}

// marshal encodes one struct value along the plan. The produced dict is
// in sorted-pairs form; with no omitted fields its key slice is the
// plan's shared keys, so the only allocation is the value slice.
func (p *plan) marshal(rv reflect.Value) (Value, error) {
	n := len(p.fields)
	vals := make([]Value, n)
	cnt := 0
	var keys []string // nil until a field is omitted; then a private copy
	for i := range p.fields {
		f := &p.fields[i]
		fv := rv.Field(f.index)
		if f.omitEmpty && fv.IsZero() {
			if keys == nil {
				keys = append(make([]string, 0, n-1), p.keys[:cnt]...)
			}
			continue
		}
		// encodeInto writes the field's value straight into its slot;
		// passing Values through return slots would copy the full struct
		// once per field (runtime.duffcopy, visible in the call profile).
		if err := f.encodeInto(&vals[cnt], fv); err != nil {
			return Null(), fmt.Errorf("field %s: %w", f.key, err)
		}
		cnt++
		if keys != nil {
			keys = append(keys, f.key)
		}
	}
	if keys == nil {
		keys = p.keys
	}
	return Value{kind: KindDict, dkeys: keys, elems: vals[:cnt]}, nil
}

func (f *planField) encodeInto(dst *Value, fv reflect.Value) error {
	switch f.kind {
	case pkBool:
		*dst = Bool(fv.Bool())
	case pkInt:
		*dst = Int(fv.Int())
	case pkUint:
		u := fv.Uint()
		if u > math.MaxInt64 {
			return fmt.Errorf("%w: %d overflows int64", ErrMarshal, u)
		}
		*dst = Int(int64(u))
	case pkFloat:
		*dst = Float(fv.Float())
	case pkString:
		*dst = String(fv.String())
	case pkBytes:
		*dst = Bytes(fv.Bytes())
	case pkFloats:
		*dst = Floats(fv.Convert(floatsType).Interface().([]float64))
	case pkValue:
		*dst = fv.Interface().(Value)
	case pkActivityID:
		*dst = Ref(fv.Interface().(ids.ActivityID))
	case pkFutureRef:
		*dst = FutureVal(fv.Interface().(FutureRef))
	default:
		ev, err := marshalValue(fv)
		if err != nil {
			return err
		}
		*dst = ev
	}
	return nil
}

var floatsType = reflect.TypeOf([]float64(nil))

// unmarshal decodes a dict into one struct value along the plan. The
// caller (unmarshalValue) has already established v.Kind() == KindDict.
// Absent keys leave their fields untouched; unknown keys are ignored —
// exactly the reflection codec's contract.
func (p *plan) unmarshal(v Value, rv reflect.Value) error {
	if v.dict != nil {
		for i := range p.fields {
			f := &p.fields[i]
			fv, present := v.getOK(f.key)
			if !present {
				continue
			}
			if err := f.decode(&fv, rv.Field(f.index)); err != nil {
				return fmt.Errorf("field %s: %w", f.key, err)
			}
		}
		return nil
	}
	// Pairs form: both key lists are sorted, so one merge walk pairs
	// every present field with its value — no map, no per-key search.
	j := 0
	for i := range p.fields {
		f := &p.fields[i]
		for j < len(v.dkeys) && v.dkeys[j] < f.key {
			j++
		}
		if j < len(v.dkeys) && v.dkeys[j] == f.key {
			if err := f.decode(&v.elems[j], rv.Field(f.index)); err != nil {
				return fmt.Errorf("field %s: %w", f.key, err)
			}
			j++
		}
	}
	return nil
}

// decode takes its value by pointer (into the pairs slice or a local) so
// the per-field fast paths never copy a full Value; only the reflection
// fallback pays the copy.
func (f *planField) decode(v *Value, rv reflect.Value) error {
	if v.IsNull() {
		// Null is the universal zero (see unmarshalValue).
		rv.SetZero()
		return nil
	}
	switch f.kind {
	case pkBool:
		if v.Kind() != KindBool {
			return mismatch(*v, rv.Type())
		}
		rv.SetBool(v.AsBool())
		return nil
	case pkInt:
		if v.Kind() != KindInt {
			return mismatch(*v, rv.Type())
		}
		if rv.OverflowInt(v.AsInt()) {
			return fmt.Errorf("%w: %d overflows %s", ErrUnmarshal, v.AsInt(), rv.Type())
		}
		rv.SetInt(v.AsInt())
		return nil
	case pkUint:
		if v.Kind() != KindInt {
			return mismatch(*v, rv.Type())
		}
		i := v.AsInt()
		if i < 0 || rv.OverflowUint(uint64(i)) {
			return fmt.Errorf("%w: %d overflows %s", ErrUnmarshal, i, rv.Type())
		}
		rv.SetUint(uint64(i))
		return nil
	case pkFloat:
		switch v.Kind() {
		case KindFloat:
			rv.SetFloat(v.AsFloat())
		case KindInt:
			rv.SetFloat(float64(v.AsInt()))
		default:
			return mismatch(*v, rv.Type())
		}
		return nil
	case pkString:
		if v.Kind() != KindString {
			return mismatch(*v, rv.Type())
		}
		rv.SetString(v.AsString())
		return nil
	default:
		return unmarshalValue(*v, rv)
	}
}
