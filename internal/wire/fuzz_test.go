package wire

// FuzzUnmarshal: the PR 3 hardening fuzzer aimed squarely at the struct
// codec's unmarshal side (FuzzCodecDecodeUnmarshal covers the decoder;
// this one drives Unmarshal across a battery of target shapes and checks
// the marshal⇄unmarshal round trip on everything it accepts).

import (
	"testing"

	"repro/internal/ids"
)

// fuzzTargets is the battery of Go shapes the fuzzer tries to unmarshal
// into: scalars, slices, maps, nested structs, pointers, passthrough
// types.
type fuzzNested struct {
	Name string           `wire:"name"`
	IDs  []ids.ActivityID `wire:"ids,omitempty"`
	Meta map[string]int64 `wire:"meta,omitempty"`
	Raw  Value            `wire:"raw"`
	Next *fuzzNested      `wire:"next"`
	Skip string           `wire:"-"`
	Mix  map[string]any   `wire:"mix,omitempty"`
	Vec  []float64        `wire:"vec,omitempty"`
	Blob []byte           `wire:"blob,omitempty"`
}

// FuzzUnmarshal feeds arbitrary encodings through Decode and then through
// Unmarshal into every target shape. Nothing may panic; and any value a
// typed target accepts must survive Marshal → Unmarshal again unchanged
// at the wire level (the codec cannot invent or lose structure the DGC's
// OnRef hook would see).
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: canonical encodings of values that exercise every
	// branch of the target battery.
	seeds := []Value{
		Null(),
		Bool(true),
		Int(-42),
		Float(3.5),
		String("seed"),
		Bytes([]byte{1, 2, 3}),
		Floats([]float64{1, 2, 4}),
		List(Int(1), String("two"), Ref(ids.ActivityID{Node: 3, Seq: 4})),
		Dict(map[string]Value{
			"name": String("n"),
			"ids":  List(Ref(ids.ActivityID{Node: 1, Seq: 1})),
			"meta": Dict(map[string]Value{"k": Int(9)}),
			"raw":  Ref(ids.ActivityID{Node: 7, Seq: 7}),
			"next": Dict(map[string]Value{"name": String("inner"), "raw": Null()}),
			"vec":  Floats([]float64{0.5}),
			"blob": Bytes([]byte("blob")),
		}),
	}
	for _, v := range seeds {
		f.Add(Encode(nil, v))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var dec Decoder
		v, err := dec.Decode(data)
		if err != nil {
			return
		}
		// None of these may panic; errors are the codec doing its job.
		var (
			b    bool
			i    int64
			u    uint16
			fl   float64
			s    string
			bs   []byte
			fs   []float64
			l    []any
			m    map[string]string
			st   fuzzNested
			pst  *fuzzNested
			id   ids.ActivityID
			vals []Value
		)
		_ = Unmarshal(v, &b)
		_ = Unmarshal(v, &i)
		_ = Unmarshal(v, &u)
		_ = Unmarshal(v, &fl)
		_ = Unmarshal(v, &s)
		_ = Unmarshal(v, &bs)
		_ = Unmarshal(v, &fs)
		_ = Unmarshal(v, &l)
		_ = Unmarshal(v, &m)
		_ = Unmarshal(v, &id)
		_ = Unmarshal(v, &vals)
		if err := Unmarshal(v, &pst); err == nil && !v.IsNull() {
			// A struct the codec accepted must re-marshal cleanly, and the
			// re-marshaled value must unmarshal to the same struct again:
			// no one-way doors in the typed façade.
			back, err := Marshal(pst)
			if err != nil {
				t.Fatalf("re-marshal of accepted struct failed: %v", err)
			}
			var again *fuzzNested
			if err := Unmarshal(back, &again); err != nil {
				t.Fatalf("re-unmarshal failed: %v", err)
			}
			final, err := Marshal(again)
			if err != nil {
				t.Fatalf("final marshal failed: %v", err)
			}
			if !final.Equal(back) {
				t.Fatalf("marshal⇄unmarshal not a fixpoint:\n%v\n%v", back, final)
			}
		}
		_ = Unmarshal(v, &st)
	})
}
