package wire

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	buf := Encode(nil, v)
	var d Decoder
	got, err := d.Decode(buf)
	if err != nil {
		t.Fatalf("Decode(%v): %v", v, err)
	}
	return got
}

func TestRoundTripScalars(t *testing.T) {
	values := []Value{
		Null(),
		Bool(true),
		Bool(false),
		Int(0),
		Int(-1),
		Int(math.MaxInt64),
		Int(math.MinInt64),
		Float(0),
		Float(-1.5),
		Float(math.Inf(1)),
		String(""),
		String("héllo"),
		Bytes(nil),
		Bytes([]byte{0, 1, 2, 255}),
		Ref(ids.ActivityID{Node: 3, Seq: 9}),
	}
	for _, v := range values {
		got := roundTrip(t, v)
		if !got.Equal(v) {
			t.Errorf("round-trip %v = %v", v, got)
		}
	}
}

func TestRoundTripNaN(t *testing.T) {
	got := roundTrip(t, Float(math.NaN()))
	if !math.IsNaN(got.AsFloat()) {
		t.Fatalf("NaN round-trip = %v", got)
	}
	if !got.Equal(Float(math.NaN())) {
		t.Fatal("Equal must treat NaN float values as equal for round-trip checks")
	}
}

func TestRoundTripNested(t *testing.T) {
	v := Dict(map[string]Value{
		"xs":  List(Int(1), Int(2), String("three")),
		"ref": Ref(ids.ActivityID{Node: 1, Seq: 2}),
		"sub": Dict(map[string]Value{"k": Bytes([]byte("blob"))}),
		"nil": Null(),
	})
	got := roundTrip(t, v)
	if !got.Equal(v) {
		t.Fatalf("round-trip mismatch:\n got %v\nwant %v", got, v)
	}
}

// randomValue builds an arbitrary value of bounded depth for property
// tests.
func randomValue(r *rand.Rand, depth int) Value {
	max := 9
	if depth <= 0 {
		max = 6 // no containers at the leaves
	}
	switch r.Intn(max) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63() - r.Int63())
	case 3:
		return Float(r.NormFloat64())
	case 4:
		b := make([]byte, r.Intn(16))
		r.Read(b)
		return String(string(b))
	case 5:
		return Ref(ids.ActivityID{Node: ids.NodeID(r.Uint32()), Seq: r.Uint32()})
	case 6:
		b := make([]byte, r.Intn(32))
		r.Read(b)
		return Bytes(b)
	case 7:
		n := r.Intn(4)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1)
		}
		return List(elems...)
	default:
		n := r.Intn(4)
		m := make(map[string]Value, n)
		for i := 0; i < n; i++ {
			key := string(rune('a' + r.Intn(26)))
			m[key] = randomValue(r, depth-1)
		}
		return Dict(m)
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomValue(r, 4))
		},
	}
	prop := func(v Value) bool {
		buf := Encode(nil, v)
		var d Decoder
		got, err := d.Decode(buf)
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomValue(r, 4))
		},
	}
	prop := func(v Value) bool {
		return EncodedSize(v) == len(Encode(nil, v))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecoderOnRefHook(t *testing.T) {
	inner := ids.ActivityID{Node: 1, Seq: 1}
	outer := ids.ActivityID{Node: 2, Seq: 7}
	v := List(Ref(inner), Dict(map[string]Value{"r": Ref(outer)}), Int(3))
	buf := Encode(nil, v)

	var seen []ids.ActivityID
	d := Decoder{OnRef: func(target ids.ActivityID) { seen = append(seen, target) }}
	if _, err := d.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("OnRef fired %d times, want 2 (%v)", len(seen), seen)
	}
	want := map[ids.ActivityID]bool{inner: true, outer: true}
	for _, id := range seen {
		if !want[id] {
			t.Fatalf("unexpected ref %v reported", id)
		}
	}
}

func TestRefsTraversal(t *testing.T) {
	a := ids.ActivityID{Node: 1, Seq: 1}
	b := ids.ActivityID{Node: 1, Seq: 2}
	v := Dict(map[string]Value{
		"x": Ref(a),
		"y": List(Ref(b), Ref(a)),
		"z": Int(0),
	})
	got := v.Refs(nil)
	if len(got) != 3 {
		t.Fatalf("Refs returned %v, want 3 targets", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad tag", []byte{0xEE}, ErrBadTag},
		{"zero tag", []byte{0x00}, ErrBadTag},
		{"truncated bool", []byte{byte(KindBool)}, ErrTruncated},
		{"truncated float", []byte{byte(KindFloat), 1, 2, 3}, ErrTruncated},
		{"truncated string", []byte{byte(KindString), 5, 'a'}, ErrTruncated},
		{"huge list count", []byte{byte(KindList), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, ErrTruncated},
	}
	var d Decoder
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := d.Decode(tt.buf)
			if !errors.Is(err, tt.want) {
				t.Fatalf("Decode error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeTrailing(t *testing.T) {
	buf := Encode(nil, Int(1))
	buf = append(buf, 0xAB)
	var d Decoder
	if _, err := d.Decode(buf); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func TestDecodePrefix(t *testing.T) {
	buf := Encode(nil, Int(42))
	buf = Encode(buf, String("after"))
	var d Decoder
	v, rest, err := d.DecodePrefix(buf)
	if err != nil {
		t.Fatal(err)
	}
	if v.AsInt() != 42 {
		t.Fatalf("first value = %v", v)
	}
	v2, err := d.Decode(rest)
	if err != nil {
		t.Fatal(err)
	}
	if v2.AsString() != "after" {
		t.Fatalf("second value = %v", v2)
	}
}

func TestDecodeTooDeep(t *testing.T) {
	// Hand-craft nesting deeper than maxDepth: list(list(list(...))).
	var buf []byte
	for i := 0; i < maxDepth+2; i++ {
		buf = append(buf, byte(KindList), 1)
	}
	buf = append(buf, byte(KindNull))
	var d Decoder
	if _, err := d.Decode(buf); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("err = %v, want ErrTooDeep", err)
	}
}

func TestDeepCopyIndependence(t *testing.T) {
	orig := Dict(map[string]Value{"xs": List(Bytes([]byte{1, 2, 3}))})
	cp := DeepCopy(orig)
	if !cp.Equal(orig) {
		t.Fatal("DeepCopy must be structurally equal")
	}
	// Mutating the copy's blob must not affect the original.
	cp.Get("xs").At(0).AsBytes()[0] = 99
	if orig.Get("xs").At(0).AsBytes()[0] == 99 {
		t.Fatal("DeepCopy shared the underlying byte slice")
	}
}

func TestFloatsPackUnpack(t *testing.T) {
	xs := []float64{0, 1.5, -2.25, math.Pi}
	v := Floats(xs)
	got := v.AsFloats()
	if len(got) != len(xs) {
		t.Fatalf("AsFloats len = %d, want %d", len(got), len(xs))
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("AsFloats[%d] = %v, want %v", i, got[i], xs[i])
		}
	}
	rt := roundTrip(t, v)
	if !rt.Equal(v) {
		t.Fatal("Floats blob did not survive round-trip")
	}
}

func TestAccessorsWrongKind(t *testing.T) {
	v := Int(7)
	if v.AsBool() || v.AsString() != "" || v.AsBytes() != nil || v.AsFloat() != 0 {
		t.Fatal("wrong-kind accessors must return zero values")
	}
	if _, ok := v.AsRef(); ok {
		t.Fatal("AsRef on int must report !ok")
	}
	if !v.At(0).IsNull() || !v.Get("k").IsNull() {
		t.Fatal("At/Get on scalar must return null")
	}
	if Null().Len() != 0 {
		t.Fatal("Len of null must be 0")
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KindNull {
		t.Fatal("zero Value must be null")
	}
	got := roundTrip(t, v)
	if !got.IsNull() {
		t.Fatal("zero Value must round-trip as null")
	}
}

func TestDictKeysSortedAndEncodingDeterministic(t *testing.T) {
	m := map[string]Value{"b": Int(2), "a": Int(1), "c": Int(3)}
	v := Dict(m)
	keys := v.Keys()
	if !reflect.DeepEqual(keys, []string{"a", "b", "c"}) {
		t.Fatalf("Keys = %v, want sorted", keys)
	}
	e1 := Encode(nil, v)
	e2 := Encode(nil, Dict(m))
	if string(e1) != string(e2) {
		t.Fatal("dict encoding must be deterministic")
	}
}
