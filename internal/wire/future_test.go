package wire

// Tests and fuzzing for the first-class future value kind (KindFuture):
// codec round trips, the Refs/FutureRefs walks, the OnRef/OnFuture decode
// hooks, and the struct-codec passthrough forms.

import (
	"testing"

	"repro/internal/ids"
)

func testFR(fn, fs, on, os uint32) FutureRef {
	return FutureRef{
		ID:    ids.FutureID{Node: ids.NodeID(fn), Seq: fs},
		Owner: ids.ActivityID{Node: ids.NodeID(on), Seq: os},
	}
}

func TestFutureValueRoundTrip(t *testing.T) {
	fr := testFR(3, 41, 7, 9)
	v := FutureVal(fr)
	if v.Kind() != KindFuture {
		t.Fatalf("kind = %v", v.Kind())
	}
	buf := Encode(nil, v)
	var dec Decoder
	got, err := dec.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("round trip: %v != %v", got, v)
	}
	back, ok := got.AsFutureRef()
	if !ok || back != fr {
		t.Fatalf("AsFutureRef = %v, %v", back, ok)
	}
	if len(Encode(nil, v)) != EncodedSize(v) {
		t.Fatalf("EncodedSize mismatch")
	}
}

func TestFutureValueDecodeHooks(t *testing.T) {
	fr := testFR(2, 5, 4, 8)
	v := List(Ref(ids.ActivityID{Node: 1, Seq: 1}), FutureVal(fr))
	var refs []ids.ActivityID
	var futs []FutureRef
	dec := Decoder{
		OnRef:    func(target ids.ActivityID) { refs = append(refs, target) },
		OnFuture: func(got FutureRef) { futs = append(futs, got) },
	}
	if _, err := dec.Decode(Encode(nil, v)); err != nil {
		t.Fatal(err)
	}
	// OnRef must see the plain ref AND the future's owner (holding a
	// future holds a reference to its owner, §2.2 completeness).
	if len(refs) != 2 || refs[0] != (ids.ActivityID{Node: 1, Seq: 1}) || refs[1] != fr.Owner {
		t.Fatalf("OnRef saw %v", refs)
	}
	if len(futs) != 1 || futs[0] != fr {
		t.Fatalf("OnFuture saw %v", futs)
	}
}

func TestFutureValueWalks(t *testing.T) {
	fr1, fr2 := testFR(1, 1, 9, 1), testFR(2, 2, 9, 2)
	v := Dict(map[string]Value{
		"a": FutureVal(fr1),
		"b": List(Int(1), FutureVal(fr2)),
		"c": Ref(ids.ActivityID{Node: 5, Seq: 5}),
	})
	refs := v.Refs(nil)
	if len(refs) != 3 {
		t.Fatalf("Refs = %v", refs)
	}
	if refs[0] != fr1.Owner || refs[1] != fr2.Owner {
		t.Fatalf("future owners missing from Refs: %v", refs)
	}
	frs := v.FutureRefs(nil)
	if len(frs) != 2 || frs[0] != fr1 || frs[1] != fr2 {
		t.Fatalf("FutureRefs = %v", frs)
	}
	if got := DeepCopy(v); !got.Equal(v) {
		t.Fatalf("DeepCopy lost structure: %v", got)
	}
}

// fakeFuture implements FutureSource for the marshal passthrough test.
type fakeFuture struct {
	fr FutureRef
	ok bool
}

func (f *fakeFuture) WireFutureRef() (FutureRef, bool) { return f.fr, f.ok }

func TestFutureCodecPassthrough(t *testing.T) {
	fr := testFR(6, 12, 6, 3)
	type payload struct {
		Fut  FutureRef `wire:"fut"`
		Name string    `wire:"name"`
	}
	v, err := Marshal(payload{Fut: fr, Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.Get("fut").AsFutureRef()
	if !ok || got != fr {
		t.Fatalf("marshaled fut = %v", v.Get("fut"))
	}
	var back payload
	if err := Unmarshal(v, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fut != fr || back.Name != "x" {
		t.Fatalf("unmarshal = %+v", back)
	}
	// A runtime handle marshals through the FutureSource interface; one
	// with no wire identity marshals as Null.
	hv, err := Marshal(&fakeFuture{fr: fr, ok: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := hv.AsFutureRef(); !ok || got != fr {
		t.Fatalf("FutureSource marshal = %v", hv)
	}
	nv, err := Marshal(&fakeFuture{})
	if err != nil || !nv.IsNull() {
		t.Fatalf("identity-less future marshal = %v, %v", nv, err)
	}
	var nilFut *fakeFuture
	nv, err = Marshal(struct{ F *fakeFuture }{F: nilFut})
	if err != nil || !nv.Get("F").IsNull() {
		t.Fatalf("nil future field marshal = %v, %v", nv, err)
	}
	// any-target unmarshal yields the FutureRef itself.
	var dyn any
	if err := Unmarshal(FutureVal(fr), &dyn); err != nil {
		t.Fatal(err)
	}
	if got, ok := dyn.(FutureRef); !ok || got != fr {
		t.Fatalf("any unmarshal = %#v", dyn)
	}
}

// FuzzFutureValue round-trips arbitrary bytes through the decoder and,
// for every accepted value, checks that encode(decode(x)) is a fixpoint,
// that the Refs walk agrees with the OnRef hook (future owners included),
// and that the FutureRefs walk agrees with the OnFuture hook. This is the
// CI gate for the future-value encoding (WIRE.md §6).
func FuzzFutureValue(f *testing.F) {
	seeds := []Value{
		FutureVal(testFR(1, 1, 1, 1)),
		FutureVal(testFR(0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF)),
		FutureVal(FutureRef{}),
		List(FutureVal(testFR(2, 3, 4, 5)), Ref(ids.ActivityID{Node: 1, Seq: 2})),
		Dict(map[string]Value{
			"f": FutureVal(testFR(9, 9, 9, 9)),
			"l": List(Int(1), FutureVal(testFR(8, 7, 6, 5))),
		}),
	}
	for _, v := range seeds {
		f.Add(Encode(nil, v))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var hookRefs []ids.ActivityID
		var hookFuts []FutureRef
		dec := Decoder{
			OnRef:    func(target ids.ActivityID) { hookRefs = append(hookRefs, target) },
			OnFuture: func(fr FutureRef) { hookFuts = append(hookFuts, fr) },
		}
		v, err := dec.Decode(data)
		if err != nil {
			return
		}
		enc := Encode(nil, v)
		again, err := dec.Decode(enc) // hooks fire twice; compare halves below
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if !again.Equal(v) {
			t.Fatalf("decode(encode(v)) != v:\n%v\n%v", again, v)
		}
		half := len(hookRefs) / 2
		walkRefs := v.Refs(nil)
		if len(walkRefs) != half {
			t.Fatalf("Refs walk (%d) disagrees with OnRef (%d)", len(walkRefs), half)
		}
		halfF := len(hookFuts) / 2
		walkFuts := v.FutureRefs(nil)
		if len(walkFuts) != halfF {
			t.Fatalf("FutureRefs walk (%d) disagrees with OnFuture (%d)", len(walkFuts), halfF)
		}
		// The second hook half came from decoding the canonical encoding,
		// whose order matches the deterministic walk (sorted dict keys).
		for i, fr := range walkFuts {
			if hookFuts[halfF+i] != fr {
				t.Fatalf("FutureRefs[%d] = %v, OnFuture saw %v", i, fr, hookFuts[halfF+i])
			}
		}
		// A future value must survive the struct codec both ways.
		var fr FutureRef
		if fv, ok := v.AsFutureRef(); ok {
			if err := Unmarshal(v, &fr); err != nil || fr != fv {
				t.Fatalf("FutureRef unmarshal = %v, %v", fr, err)
			}
			back, err := Marshal(fr)
			if err != nil || !back.Equal(v) {
				t.Fatalf("FutureRef marshal = %v, %v", back, err)
			}
		}
	})
}
