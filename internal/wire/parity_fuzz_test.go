package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"

	"repro/internal/ids"
)

// parityPlanMsg covers every plan fast-path kind (bool, int, narrow int,
// uint, float, narrow float, string, bytes, floats, Value, ActivityID,
// FutureRef), an omitempty field, and a fallback-kind field (the map) —
// one struct whose marshal walks the whole planKind switch.
type parityPlanMsg struct {
	B   bool             `wire:"b"`
	I   int64            `wire:"i"`
	I32 int32            `wire:"i32"`
	U   uint64           `wire:"u"`
	F   float64          `wire:"f"`
	F32 float32          `wire:"f32"`
	S   string           `wire:"s"`
	Raw []byte           `wire:"raw"`
	Fs  []float64        `wire:"fs"`
	V   Value            `wire:"v"`
	Act ids.ActivityID   `wire:"act"`
	Fut FutureRef        `wire:"fut"`
	Opt string           `wire:"opt,omitempty"`
	M   map[string]int64 `wire:"m"`
}

// parityReflMsg is the field-for-field mirror of parityPlanMsg. It is
// never registered, so marshaling it always takes the reflection
// fallback — the differential oracle for the cached-plan codec.
type parityReflMsg struct {
	B   bool             `wire:"b"`
	I   int64            `wire:"i"`
	I32 int32            `wire:"i32"`
	U   uint64           `wire:"u"`
	F   float64          `wire:"f"`
	F32 float32          `wire:"f32"`
	S   string           `wire:"s"`
	Raw []byte           `wire:"raw"`
	Fs  []float64        `wire:"fs"`
	V   Value            `wire:"v"`
	Act ids.ActivityID   `wire:"act"`
	Fut FutureRef        `wire:"fut"`
	Opt string           `wire:"opt,omitempty"`
	M   map[string]int64 `wire:"m"`
}

func init() { RegisterType(parityPlanMsg{}) }

// FuzzPlanCodecParity feeds the same arbitrary value through the
// cached-plan encoder (registered type) and the reflection fallback
// (identical unregistered mirror type) and requires byte-identical
// canonical encodings, matching error behavior, and a re-marshal after
// decode that reproduces the same bytes from both unmarshal branches
// (pairs-form merge walk and map-form lookup).
func FuzzPlanCodecParity(f *testing.F) {
	f.Add(false, int64(0), int32(0), uint64(0), 0.0, float32(0), "", []byte(nil), []byte(nil), uint8(0), uint32(0), uint32(0), "", "", int64(0))
	f.Add(true, int64(-7), int32(42), uint64(9), 2.5, float32(1.5), "hello", []byte{1, 2, 3}, []byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f}, uint8(1), uint32(3), uint32(8), "present", "k", int64(11))
	f.Add(true, int64(math.MaxInt64), int32(math.MinInt32), uint64(math.MaxUint64), math.Inf(-1), float32(math.MaxFloat32), "√", []byte("bytes"), []byte("0123456789abcdef"), uint8(2), uint32(1), uint32(1), "", "key", int64(-1))
	f.Fuzz(func(t *testing.T, b bool, i int64, i32 int32, u uint64, fl float64, f32 float32, s string, raw, fsRaw []byte, vsel uint8, node, seq uint32, opt, mk string, mv int64) {
		if planFor(reflect.TypeOf(parityPlanMsg{})) == nil {
			t.Fatal("parityPlanMsg lost its plan")
		}
		if planFor(reflect.TypeOf(parityReflMsg{})) != nil {
			t.Fatal("parityReflMsg must stay unregistered")
		}
		fs := make([]float64, 0, len(fsRaw)/8)
		for len(fsRaw) >= 8 {
			fs = append(fs, math.Float64frombits(binary.LittleEndian.Uint64(fsRaw)))
			fsRaw = fsRaw[8:]
		}
		var v Value
		switch vsel % 4 {
		case 0:
			v = Null()
		case 1:
			v = Int(i)
		case 2:
			v = List(String(s), Float(fl))
		case 3:
			v = Dict(map[string]Value{"inner": Bytes(raw)})
		}
		act := ids.ActivityID{Node: ids.NodeID(node), Seq: seq}
		fut := FutureRef{ID: ids.FutureID{Node: ids.NodeID(seq), Seq: node}, Owner: act}
		m := map[string]int64{mk: mv}

		plan := parityPlanMsg{B: b, I: i, I32: i32, U: u, F: fl, F32: f32, S: s,
			Raw: raw, Fs: fs, V: v, Act: act, Fut: fut, Opt: opt, M: m}
		refl := parityReflMsg{B: b, I: i, I32: i32, U: u, F: fl, F32: f32, S: s,
			Raw: raw, Fs: fs, V: v, Act: act, Fut: fut, Opt: opt, M: m}

		pv, perr := Marshal(plan)
		rv, rerr := Marshal(refl)
		if (perr != nil) != (rerr != nil) {
			t.Fatalf("marshal error divergence: plan=%v refl=%v", perr, rerr)
		}
		if perr != nil {
			return // e.g. uint overflow — both paths rejected it
		}
		pb := Encode(nil, pv)
		rb := Encode(nil, rv)
		if !bytes.Equal(pb, rb) {
			t.Fatalf("encoding divergence:\nplan %x\nrefl %x", pb, rb)
		}

		// Decode the canonical bytes (pairs-form dict) and unmarshal into
		// both types: the plan's sorted merge walk against the reflection
		// decoder.
		var dec Decoder
		decoded, err := dec.Decode(pb)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		var backP parityPlanMsg
		var backR parityReflMsg
		if err := Unmarshal(decoded, &backP); err != nil {
			t.Fatalf("plan unmarshal: %v", err)
		}
		if err := Unmarshal(decoded, &backR); err != nil {
			t.Fatalf("refl unmarshal: %v", err)
		}
		remarshal := func(x any) []byte {
			mv, err := Marshal(x)
			if err != nil {
				t.Fatalf("re-marshal %T: %v", x, err)
			}
			return Encode(nil, mv)
		}
		if got := remarshal(backP); !bytes.Equal(got, pb) {
			t.Fatalf("plan round trip diverged:\nwant %x\ngot  %x", pb, got)
		}
		if got := remarshal(backR); !bytes.Equal(got, pb) {
			t.Fatalf("refl round trip diverged:\nwant %x\ngot  %x", pb, got)
		}

		// The reflection marshal of the mirror type produced a map-form
		// dict: unmarshaling it into the registered type exercises the
		// plan's map-form branch, which must agree with the merge walk.
		var backP2 parityPlanMsg
		if err := Unmarshal(rv, &backP2); err != nil {
			t.Fatalf("plan unmarshal (map form): %v", err)
		}
		if got := remarshal(backP2); !bytes.Equal(got, pb) {
			t.Fatalf("map-form round trip diverged:\nwant %x\ngot  %x", pb, got)
		}
	})
}
