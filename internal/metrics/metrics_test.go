package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestRecorderSeries(t *testing.T) {
	r := NewRecorder()
	r.Record("idle", 0, 1)
	r.Record("idle", time.Second, 2)
	r.Record("collected", time.Second, 1)
	if got := r.Get("idle").Last(); got != 2 {
		t.Fatalf("Last = %v", got)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "collected" || got[1] != "idle" {
		t.Fatalf("Names = %v", got)
	}
	if r.Get("missing") != nil {
		t.Fatal("missing series must be nil")
	}
	var empty Series
	if empty.Last() != 0 {
		t.Fatal("empty series Last must be 0")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 0, 1)
	r.Record("a", 2*time.Second, 3)
	r.Record("b", 2*time.Second, 10)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "seconds,a,b\n0.0,1,\n2.0,3,10\n"
	if got != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", got, want)
	}
	// Selecting one series.
	sb.Reset()
	if err := r.WriteCSV(&sb, "a"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "seconds,a\n") {
		t.Fatalf("selected CSV = %q", sb.String())
	}
}

func TestBytes(t *testing.T) {
	tests := []struct {
		n    uint64
		want string
	}{
		{512, "512 B"},
		{2_048, "2.05 KB"},
		{1_699_000_000 / 1000, "1.70 MB"},
		{2_063_000_000, "2.06 GB"},
	}
	for _, tt := range tests {
		if got := Bytes(tt.n); got != tt.want {
			t.Errorf("Bytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}

func TestPercent(t *testing.T) {
	// The paper's EP row: 717.92 vs 69.75 → 929.28 %.
	if got := Percent(717.92, 69.75); got != "929.28 %" {
		t.Fatalf("Percent = %q, want the paper's 929.28 %%", got)
	}
	if got := Percent(3190.00, 3529.45); got != "-9.62 %" {
		t.Fatalf("Percent = %q, want the paper's -9.62 %%", got)
	}
	if got := Percent(1, 0); got != "n/a" {
		t.Fatalf("Percent by zero = %q", got)
	}
}

func TestTable(t *testing.T) {
	var tb Table
	tb.Header = []string{"Kernel", "No DGC", "DGC", "Overhead"}
	tb.AddRow("CG", "194351.81 MB", "223639.83 MB", "15.07 %")
	tb.AddRow("EP", "69.75 MB", "717.92 MB", "929.28 %")
	var sb strings.Builder
	if err := tb.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "Kernel") || !strings.Contains(lines[2], "CG") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	// Columns aligned: "No DGC" column starts at the same offset in every
	// row.
	col := strings.Index(lines[0], "No DGC")
	if !strings.HasPrefix(lines[2][col:], "194351.81") {
		t.Fatalf("misaligned table:\n%s", out)
	}
}
