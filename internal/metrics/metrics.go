// Package metrics provides the measurement plumbing of the evaluation
// harness: time-series recording (Fig. 10's idle/collected curves), byte
// formatting, and aligned table rendering for the Fig. 8/9 style reports.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is one time-series sample.
type Point struct {
	// T is the offset from the start of the experiment.
	T time.Duration
	// V is the sampled value.
	V float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// Last returns the most recent value (0 when empty).
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Recorder accumulates named time series.
type Recorder struct {
	series map[string]*Series
	names  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Record appends a sample to the named series (created on first use).
func (r *Recorder) Record(name string, t time.Duration, v float64) {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Get returns the named series (nil if absent).
func (r *Recorder) Get(name string) *Series {
	return r.series[name]
}

// Names returns the recorded series names, sorted.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// WriteCSV renders the selected series (all when names is empty) as CSV
// with a time column in seconds. Series are aligned on the union of their
// timestamps; missing values are left empty.
func (r *Recorder) WriteCSV(w io.Writer, names ...string) error {
	if len(names) == 0 {
		names = r.Names()
	}
	ts := make(map[time.Duration]bool)
	for _, n := range names {
		s := r.series[n]
		if s == nil {
			continue
		}
		for _, p := range s.Points {
			ts[p.T] = true
		}
	}
	order := make([]time.Duration, 0, len(ts))
	for t := range ts {
		order = append(order, t)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	if _, err := fmt.Fprintf(w, "seconds,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	// Index points per series for lookup.
	idx := make(map[string]map[time.Duration]float64, len(names))
	for _, n := range names {
		m := make(map[time.Duration]float64)
		if s := r.series[n]; s != nil {
			for _, p := range s.Points {
				m[p.T] = p.V
			}
		}
		idx[n] = m
	}
	for _, t := range order {
		cells := make([]string, 0, len(names)+1)
		cells = append(cells, fmt.Sprintf("%.1f", t.Seconds()))
		for _, n := range names {
			if v, ok := idx[n][t]; ok {
				cells = append(cells, formatFloat(v))
			} else {
				cells = append(cells, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

// Bytes renders a byte count in the paper's MB (10^6) convention.
func Bytes(n uint64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2f GB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2f MB", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.2f KB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Percent renders an overhead ratio the way the paper's tables do.
func Percent(with, without float64) string {
	if without == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f %%", (with-without)/without*100)
}

// Table renders aligned text tables for the experiment reports.
type Table struct {
	Header []string
	rows   [][]string
}

// AddRow appends a row (stringifying each cell with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, w2 := range widths {
		total += w2 + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
