package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ids"
)

func aid(node, seq uint32) ids.ActivityID {
	return ids.ActivityID{Node: ids.NodeID(node), Seq: seq}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindCheckpoint, ID: aid(1, 1), Payload: []byte("hello")},
		{Kind: KindTombstone, ID: aid(7, 42)},
		{Kind: KindCheckpoint, ID: aid(2, 9), Payload: bytes.Repeat([]byte{0xAB}, 300)},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		if n != want.framedSize() {
			t.Fatalf("record %d: consumed %d, want %d", i, n, want.framedSize())
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestRecordCorruption(t *testing.T) {
	frame := AppendRecord(nil, Record{Kind: KindCheckpoint, ID: aid(1, 1), Payload: []byte("payload")})
	// Every truncation is ErrShort or (for a mangled header) ErrCorrupt —
	// never a successful decode of garbage.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeRecord(frame[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Every single-byte flip must fail the CRC (or the shape check).
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0xFF
		if _, _, err := DecodeRecord(mut); err == nil {
			// Flipping a length byte can still fail; succeeding means the
			// CRC validated a different body — impossible for 1 byte.
			t.Fatalf("bit flip at %d decoded successfully", i)
		}
	}
}

func TestFileStorePersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(aid(1, 1), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(aid(2, 1), []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(aid(1, 1), []byte("one-v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(aid(2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[aid(1, 1)]) != "one-v2" {
		t.Fatalf("reloaded %v, want only A1.1=one-v2", got)
	}
	// Deleting an absent key is a no-op, not an error.
	if err := s2.Delete(aid(9, 9)); err != nil {
		t.Fatal(err)
	}
}

func TestFileStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.CompactThreshold = 1 // compact as soon as dead bytes dominate
	payload := bytes.Repeat([]byte{0x5A}, 128)
	for i := 0; i < 50; i++ {
		if err := s.Put(aid(3, 1), payload); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "ckpt-3.log")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	one := int64(Record{Kind: KindCheckpoint, ID: aid(3, 1), Payload: payload}.framedSize())
	if info.Size() > 2*one {
		t.Fatalf("log is %d bytes after 50 superseded puts; compaction should keep it under %d", info.Size(), 2*one)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted segment replays to the same state.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[aid(3, 1)], payload) {
		t.Fatalf("compacted reload = %v entries", len(got))
	}
}

func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(aid(1, 1), []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(aid(1, 2), []byte("also-keep")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage after the last full record.
	path := filepath.Join(dir, "ckpt-1.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[aid(1, 1)]) != "keep" || string(got[aid(1, 2)]) != "also-keep" {
		t.Fatalf("torn-tail reload = %v", got)
	}
	// The tail was truncated away, so appending resumes on a clean log.
	if err := s2.Put(aid(1, 3), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	got, err = s3.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got[aid(1, 3)]) != "new" {
		t.Fatalf("post-truncate reload = %v", got)
	}
}

func TestFileStoreClosed(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(aid(1, 1), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Load(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Load after Close = %v, want ErrClosed", err)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	payload := []byte("x")
	if err := s.Put(aid(1, 1), payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'y' // the store must have copied
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if string(got[aid(1, 1)]) != "x" {
		t.Fatalf("stored payload aliased the caller's buffer")
	}
	if err := s.Delete(aid(1, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(aid(1, 1), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
}

// TestFileStoreCrashAtEveryOffset is the store half of the
// crash-at-every-offset torture (the Env.Recover half lives in
// internal/active): for every possible truncation point of a real log,
// reopening must yield a consistent record prefix — each surviving
// payload is exactly one of the values that was actually written, and
// the number of surviving entries never exceeds what the full log held.
func TestFileStoreCrashAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	written := map[ids.ActivityID][]string{}
	for i := uint32(1); i <= 3; i++ {
		for v := 0; v < 2; v++ {
			payload := fmt.Sprintf("a%d-v%d", i, v)
			if err := s.Put(aid(1, i), []byte(payload)); err != nil {
				t.Fatal(err)
			}
			written[aid(1, i)] = append(written[aid(1, i)], payload)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, "ckpt-1.log"))
	if err != nil {
		t.Fatal(err)
	}

	check := func(t *testing.T, data []byte) {
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, "ckpt-1.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		cs, err := NewFileStore(cdir)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer cs.Close()
		got, err := cs.Load()
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if len(got) > 3 {
			t.Fatalf("restored %d entries from a 3-activity log", len(got))
		}
		for id, payload := range got {
			ok := false
			for _, w := range written[id] {
				if string(payload) == w {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("restored %v=%q, never written", id, payload)
			}
		}
	}
	for cut := 0; cut <= len(full); cut++ {
		check(t, full[:cut])
	}
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xFF
		check(t, mut)
	}
}
