package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/ids"
)

// FileStore is the production backend: one append-only checkpoint log
// per birth node (ckpt-<node>.log under the store directory). Every Put
// and Delete appends one framed record and fsyncs, so an acknowledged
// checkpoint survives a crash at any later instant. Opening the store
// replays each log front to back, truncates any torn tail back to the
// longest valid record prefix, and keeps the surviving payloads in
// memory — Load serves from that write-through map, and compaction
// rewrites a log from it.
//
// Compaction: superseded checkpoints and tombstoned entries are dead
// bytes. When a log's dead bytes exceed both its live bytes and
// CompactThreshold, the live records are written to a fresh temporary
// segment, fsynced, and atomically renamed over the old log — a reader
// (or a crash) sees either the old segment or the new one, never a mix.
type FileStore struct {
	dir string
	// CompactThreshold is the dead-byte floor below which a log is never
	// compacted (so small logs do not churn). Zero means 64 KiB. Set it
	// before the first Put/Delete; it is read under the store lock.
	CompactThreshold int64

	mu     sync.Mutex
	files  map[ids.NodeID]*logFile
	live   map[ids.ActivityID][]byte
	closed bool
}

// logFile is one per-node segment: its append handle, current length,
// and the framed size of each live record in it (dead bytes = size − Σ
// live sizes).
type logFile struct {
	path    string
	f       *os.File
	size    int64
	recSize map[ids.ActivityID]int64
}

// NewFileStore opens (creating if needed) a checkpoint store rooted at
// dir, replaying every existing log. A log with a torn or corrupt tail
// is truncated back to its longest valid record prefix — the state as of
// the last acknowledged write before the crash.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &FileStore{
		dir:   dir,
		files: make(map[ids.NodeID]*logFile),
		live:  make(map[ids.ActivityID][]byte),
	}
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.log"))
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	sort.Strings(paths)
	for _, path := range paths {
		var node uint32
		if _, err := fmt.Sscanf(filepath.Base(path), "ckpt-%d.log", &node); err != nil {
			continue // not one of ours
		}
		if err := s.replay(ids.NodeID(node), path); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// replay loads one log into the live map, truncating past the longest
// valid record prefix, and opens it for appending.
func (s *FileStore) replay(node ids.NodeID, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: replay %s: %w", path, err)
	}
	lf := &logFile{path: path, recSize: make(map[ids.ActivityID]int64)}
	valid := 0
	for valid < len(data) {
		rec, n, decErr := DecodeRecord(data[valid:])
		if decErr != nil {
			break // torn or corrupt tail: keep the valid prefix
		}
		s.applyToLive(lf, rec)
		valid += n
	}
	if valid < len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return fmt.Errorf("store: truncate torn tail of %s: %w", path, err)
		}
	}
	lf.size = int64(valid)
	lf.f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen %s: %w", path, err)
	}
	s.files[node] = lf
	return nil
}

// applyToLive folds one replayed or freshly written record into the live
// map and the segment's record-size accounting.
func (s *FileStore) applyToLive(lf *logFile, rec Record) {
	switch rec.Kind {
	case KindCheckpoint:
		s.live[rec.ID] = rec.Payload
		lf.recSize[rec.ID] = int64(rec.framedSize())
	case KindTombstone:
		delete(s.live, rec.ID)
		delete(lf.recSize, rec.ID)
	}
}

// logFor returns (creating if needed) the append segment of a node.
// Caller holds s.mu.
func (s *FileStore) logFor(node ids.NodeID) (*logFile, error) {
	if lf, ok := s.files[node]; ok {
		return lf, nil
	}
	path := filepath.Join(s.dir, fmt.Sprintf("ckpt-%d.log", uint32(node)))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	lf := &logFile{path: path, f: f, recSize: make(map[ids.ActivityID]int64)}
	s.files[node] = lf
	return lf, nil
}

// append writes one framed record durably to the segment.
func (lf *logFile) append(frame []byte) error {
	if _, err := lf.f.Write(frame); err != nil {
		return fmt.Errorf("store: append %s: %w", lf.path, err)
	}
	if err := lf.f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", lf.path, err)
	}
	lf.size += int64(len(frame))
	return nil
}

// Put implements Store.
func (s *FileStore) Put(id ids.ActivityID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	lf, err := s.logFor(id.Node)
	if err != nil {
		return err
	}
	rec := Record{Kind: KindCheckpoint, ID: id, Payload: append([]byte(nil), payload...)}
	if err := lf.append(AppendRecord(nil, rec)); err != nil {
		return err
	}
	s.applyToLive(lf, rec)
	return s.maybeCompactLocked(lf)
}

// Delete implements Store.
func (s *FileStore) Delete(id ids.ActivityID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.live[id]; !ok {
		return nil // nothing durable to erase; skip the tombstone write
	}
	lf, err := s.logFor(id.Node)
	if err != nil {
		return err
	}
	rec := Record{Kind: KindTombstone, ID: id}
	if err := lf.append(AppendRecord(nil, rec)); err != nil {
		return err
	}
	s.applyToLive(lf, rec)
	return s.maybeCompactLocked(lf)
}

// Load implements Store.
func (s *FileStore) Load() (map[ids.ActivityID][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make(map[ids.ActivityID][]byte, len(s.live))
	for id, payload := range s.live {
		out[id] = append([]byte(nil), payload...)
	}
	return out, nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, lf := range s.files {
		if lf.f == nil {
			continue
		}
		if err := lf.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// maybeCompactLocked rewrites a segment from its live records when the
// dead bytes dominate: superseded checkpoints and tombstones carry no
// information once a newer record exists, so the fresh segment holds one
// checkpoint per surviving activity. The rewrite goes to <log>.tmp,
// fsyncs, and renames over the old segment — atomic on every POSIX
// filesystem, so a crash anywhere leaves either the old or the new
// segment intact. Caller holds s.mu.
func (s *FileStore) maybeCompactLocked(lf *logFile) error {
	min := s.CompactThreshold
	if min <= 0 {
		min = 64 << 10
	}
	var liveBytes int64
	for _, sz := range lf.recSize {
		liveBytes += sz
	}
	dead := lf.size - liveBytes
	if dead < min || dead <= liveBytes {
		return nil
	}
	// Deterministic record order keeps compacted segments reproducible.
	keys := make([]ids.ActivityID, 0, len(lf.recSize))
	for id := range lf.recSize {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	var buf []byte
	for _, id := range keys {
		buf = AppendRecord(buf, Record{Kind: KindCheckpoint, ID: id, Payload: s.live[id]})
	}
	tmpPath := lf.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact %s: %w", lf.path, err)
	}
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact %s: %w", lf.path, err)
	}
	if err := os.Rename(tmpPath, lf.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: compact %s: %w", lf.path, err)
	}
	syncDir(s.dir) // make the rename itself durable (best effort)
	old := lf.f
	lf.f, err = os.OpenFile(lf.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		lf.f = old // keep appending to the (renamed-over) handle rather than fail
		return fmt.Errorf("store: reopen compacted %s: %w", lf.path, err)
	}
	old.Close()
	lf.size = int64(len(buf))
	for _, id := range keys {
		lf.recSize[id] = int64(Record{Kind: KindCheckpoint, ID: id, Payload: s.live[id]}.framedSize())
	}
	return nil
}

// syncDir fsyncs a directory so a just-completed rename survives power
// loss. Some platforms refuse to sync directories; that only weakens the
// guarantee to what those platforms can give.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	d.Close()
}
