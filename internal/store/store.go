// Package store is the durable checkpoint layer of the active-object
// runtime: a pluggable Store interface with a production append-only
// file backend (FileStore) and an in-memory backend for tests
// (MemStore).
//
// A checkpoint is an opaque payload keyed by activity identifier — the
// runtime serializes an activity with the same envelope codec live
// migration uses (WIRE.md §7) and hands the bytes here. The store's only
// contract is last-write-wins durability per key: Put replaces, Delete
// tombstones, Load returns the surviving set. Records are framed with a
// length prefix and a CRC (WIRE.md §11) so a torn write at any byte
// boundary is detected and the log recovers to the longest valid prefix.
package store

import (
	"errors"

	"repro/internal/ids"
)

// Store errors.
var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrCorrupt reports a record whose shape or CRC does not check out.
	ErrCorrupt = errors.New("store: corrupt checkpoint record")
	// ErrShort reports a record cut off mid-frame — the torn tail a crash
	// during an append leaves behind. Recovery treats everything before
	// it as valid and discards the tail.
	ErrShort = errors.New("store: truncated checkpoint record")
)

// Store persists one checkpoint payload per activity. Implementations
// must be safe for concurrent use: every node of an environment
// checkpoints into the same store.
type Store interface {
	// Put durably saves the latest checkpoint of id, replacing any
	// previous one.
	Put(id ids.ActivityID, payload []byte) error
	// Delete tombstones id's checkpoint (graceful termination, migration
	// to a new identity, failover adoption). Deleting an absent key is a
	// no-op.
	Delete(id ids.ActivityID) error
	// Load returns the latest surviving checkpoint of every activity.
	// The returned map and payloads are the caller's to keep.
	Load() (map[ids.ActivityID][]byte, error)
	// Close releases the backend's resources. A closed store refuses
	// further operations with ErrClosed.
	Close() error
}
