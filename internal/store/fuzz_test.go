package store

import (
	"bytes"
	"testing"
)

// FuzzCheckpointRecord walks DecodeRecord over arbitrary bytes exactly
// the way log replay does: decode, advance by the consumed count, stop
// at the first error. Properties pinned down:
//
//   - decode never panics and never over-consumes the buffer;
//   - every successfully decoded record canonically re-encodes to the
//     exact frame bytes it was read from (so compaction rewrites are
//     byte-identical to fresh appends);
//   - a decode error is always one of the two declared sentinels.
func FuzzCheckpointRecord(f *testing.F) {
	f.Add(AppendRecord(nil, Record{Kind: KindCheckpoint, ID: aid(1, 1), Payload: []byte("seed")}))
	f.Add(AppendRecord(nil, Record{Kind: KindTombstone, ID: aid(7, 42)}))
	two := AppendRecord(nil, Record{Kind: KindCheckpoint, ID: aid(2, 3), Payload: bytes.Repeat([]byte{0xC3}, 40)})
	two = AppendRecord(two, Record{Kind: KindCheckpoint, ID: aid(2, 4)})
	f.Add(two)
	f.Add(two[:len(two)-3]) // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				if err != ErrShort && err != ErrCorrupt {
					t.Fatalf("unexpected error type at %d: %v", off, err)
				}
				break
			}
			if n <= 0 || off+n > len(data) {
				t.Fatalf("consumed %d of %d remaining", n, len(data)-off)
			}
			if rec.framedSize() != n {
				t.Fatalf("framedSize %d != consumed %d", rec.framedSize(), n)
			}
			if got := AppendRecord(nil, rec); !bytes.Equal(got, data[off:off+n]) {
				t.Fatalf("re-encode mismatch at %d:\n got %x\nwant %x", off, got, data[off:off+n])
			}
			off += n
		}
	})
}
