package store

// Checkpoint log record framing (WIRE.md §11). Every log entry is
//
//	uint32 LE  body length
//	uint32 LE  CRC-32 (IEEE) of the body
//	body       kind byte | activity ID (node uint32 LE, seq uint32 LE) | payload
//
// The length prefix lets a reader skip to the next record without
// understanding the payload; the CRC turns any torn or bit-flipped write
// into a detectable corruption instead of a silently wrong restore. A
// log is replayed front to back and stops at the first record that fails
// either check — the longest valid prefix is the recovered state, which
// is exactly the write-ahead-log contract the crash-at-every-offset
// torture test pins down.

import (
	"encoding/binary"
	"hash/crc32"

	"repro/internal/ids"
)

// Record kinds.
const (
	// KindCheckpoint carries an activity's serialized checkpoint; the
	// latest one per activity wins.
	KindCheckpoint byte = 1
	// KindTombstone erases every earlier checkpoint of the activity
	// (graceful termination, migration, failover adoption).
	KindTombstone byte = 2
)

const (
	headerSize = 8     // length + CRC
	bodyFixed  = 1 + 8 // kind + activity ID
	// MaxRecordBody bounds one record's body so a garbage length prefix
	// cannot demand an absurd allocation from the replay loop.
	MaxRecordBody = 64 << 20
)

// Record is one decoded checkpoint-log entry.
type Record struct {
	Kind    byte
	ID      ids.ActivityID
	Payload []byte
}

// framedSize returns the on-disk size of the record.
func (r Record) framedSize() int {
	return headerSize + bodyFixed + len(r.Payload)
}

// AppendRecord frames one record onto buf and returns the extended
// buffer.
func AppendRecord(buf []byte, r Record) []byte {
	bodyLen := bodyFixed + len(r.Payload)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(bodyLen))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC patched below
	bodyAt := len(buf)
	buf = append(buf, r.Kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.ID.Node))
	buf = binary.LittleEndian.AppendUint32(buf, r.ID.Seq)
	buf = append(buf, r.Payload...)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.ChecksumIEEE(buf[bodyAt:]))
	return buf
}

// DecodeRecord decodes the first record in buf, returning it and the
// bytes consumed. ErrShort means the buffer ends mid-record (a clean
// crash point: everything before it is intact); ErrCorrupt means the
// record is structurally present but fails its shape or CRC check. The
// payload is copied out of buf.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < headerSize {
		return Record{}, 0, ErrShort
	}
	bodyLen := binary.LittleEndian.Uint32(buf)
	crc := binary.LittleEndian.Uint32(buf[4:])
	if bodyLen < bodyFixed || bodyLen > MaxRecordBody {
		return Record{}, 0, ErrCorrupt
	}
	if len(buf)-headerSize < int(bodyLen) {
		return Record{}, 0, ErrShort
	}
	body := buf[headerSize : headerSize+int(bodyLen)]
	if crc32.ChecksumIEEE(body) != crc {
		return Record{}, 0, ErrCorrupt
	}
	if body[0] != KindCheckpoint && body[0] != KindTombstone {
		return Record{}, 0, ErrCorrupt
	}
	r := Record{
		Kind: body[0],
		ID: ids.ActivityID{
			Node: ids.NodeID(binary.LittleEndian.Uint32(body[1:])),
			Seq:  binary.LittleEndian.Uint32(body[5:]),
		},
	}
	if int(bodyLen) > bodyFixed {
		r.Payload = append([]byte(nil), body[bodyFixed:]...)
	}
	return r, headerSize + int(bodyLen), nil
}
