package store

import (
	"sync"

	"repro/internal/ids"
)

// MemStore is the in-memory backend: the Store contract without the
// disk, for tests and for the loadgen restart-chaos arm (where the
// "durability" under test is the runtime's restore path, not the
// filesystem). Payloads are copied on both sides, so a caller can never
// alias the stored bytes.
type MemStore struct {
	mu     sync.Mutex
	m      map[ids.ActivityID][]byte
	closed bool
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[ids.ActivityID][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(id ids.ActivityID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.m[id] = append([]byte(nil), payload...)
	return nil
}

// Delete implements Store.
func (s *MemStore) Delete(id ids.ActivityID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	delete(s.m, id)
	return nil
}

// Load implements Store.
func (s *MemStore) Load() (map[ids.ActivityID][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make(map[ids.ActivityID][]byte, len(s.m))
	for id, payload := range s.m {
		out[id] = append([]byte(nil), payload...)
	}
	return out, nil
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Len returns the number of stored checkpoints (test helper).
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
