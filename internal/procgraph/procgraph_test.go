package procgraph

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func cfg() Config {
	return Config{
		TTB:  30 * time.Second,
		TTA:  150 * time.Second,
		Seed: 1,
	}
}

func TestWholeProcessAcyclicCollected(t *testing.T) {
	w := NewWorld(cfg())
	p := w.NewProcess(1)
	a := p.NewActivity()
	b := p.NewActivity()
	a.Link(b) // intra-process only
	w.RunFor(20 * time.Minute)
	if !p.Terminated() || !a.Terminated() || !b.Terminated() {
		t.Fatal("fully idle unreferenced process not collected")
	}
}

func TestBusyActivityPinsWholeProcess(t *testing.T) {
	w := NewWorld(cfg())
	p := w.NewProcess(1)
	a := p.NewActivity()
	busy := p.NewActivity()
	busy.SetBusy()
	_ = a
	w.RunFor(time.Hour)
	if p.Terminated() {
		t.Fatal("process with a busy activity collected")
	}
	busy.SetIdle()
	w.RunFor(20 * time.Minute)
	if !p.Terminated() {
		t.Fatal("process not collected once every activity idle")
	}
}

func TestCrossProcessCycleCollected(t *testing.T) {
	// Activities x ∈ P1, y ∈ P2 with x→y and y→x: a process-level
	// 2-cycle, fully idle: collected by the lifted algorithm.
	w := NewWorld(cfg())
	p1 := w.NewProcess(1)
	p2 := w.NewProcess(2)
	x := p1.NewActivity()
	y := p2.NewActivity()
	x.Link(y)
	y.Link(x)
	w.RunFor(30 * time.Minute)
	if !p1.Terminated() || !p2.Terminated() {
		t.Fatalf("idle cross-process cycle not collected: p1=%v p2=%v",
			p1.Collector(), p2.Collector())
	}
}

func TestEdgeLiftingCounts(t *testing.T) {
	// Two activity edges toward the same process lift to ONE process
	// edge; it persists until both are dropped (formula (2)).
	w := NewWorld(cfg())
	p1 := w.NewProcess(1)
	p2 := w.NewProcess(2)
	x1 := p1.NewActivity()
	x2 := p1.NewActivity()
	y := p2.NewActivity()
	x1.Link(y)
	x2.Link(y)
	// Let at least one beat pass: before the mandatory first DGC message,
	// a dropped edge would be retained by the §3.1 must-send-once rule.
	w.RunFor(2 * time.Minute)
	if got := p1.Collector().Referenced(); len(got) != 1 {
		t.Fatalf("process edges = %v, want 1 lifted edge", got)
	}
	x1.Unlink(y)
	if got := p1.Collector().Referenced(); len(got) != 1 {
		t.Fatal("process edge dropped while an activity edge remains")
	}
	x2.Unlink(y)
	if got := p1.Collector().Referenced(); len(got) != 0 {
		t.Fatalf("process edge survived both drops: %v", got)
	}
	// Unlinking a non-existent edge is a no-op.
	x2.Unlink(y)
}

// TestPrecisionLossVsReferenceGraph is the §4.1 limitation, demonstrated
// side by side: a garbage activity cycle spanning two processes, one of
// which also hosts an unrelated *live* activity.
//
//   - Process graph: the live activity keeps its whole process busy, so
//     the (lifted) cycle never satisfies the Garbage property — leaked.
//   - Reference graph (internal/sim): the same shape is collected,
//     because the no-sharing property lets the DGC see that the live
//     activity is not part of the cycle's referencer closure.
func TestPrecisionLossVsReferenceGraph(t *testing.T) {
	// Process-graph run.
	pw := NewWorld(cfg())
	p1 := pw.NewProcess(1)
	p2 := pw.NewProcess(2)
	x := p1.NewActivity()
	y := p2.NewActivity()
	x.Link(y)
	y.Link(x)
	liveOne := p1.NewActivity() // unrelated but co-located, permanently busy
	liveOne.SetBusy()
	pw.RunFor(4 * time.Hour)
	if p1.Terminated() || p2.Terminated() {
		t.Fatal("process graph collected a process hosting a live activity")
	}

	// Fine-grained run of the same shape.
	sw := sim.NewWorld(sim.Config{TTB: 30 * time.Second, TTA: 150 * time.Second, Seed: 1})
	sx := sw.NewActivity(1)
	sy := sw.NewActivity(2)
	sx.Link(sy.ID())
	sy.Link(sx.ID())
	sLive := sw.NewActivity(1) // same node as sx
	sLive.SetBusy()
	sw.RunFor(4 * time.Hour)
	if !sx.Terminated() || !sy.Terminated() {
		t.Fatal("reference graph failed to collect the garbage cycle")
	}
	if sLive.Terminated() {
		t.Fatal("live activity collected")
	}
}

func TestProcessCollectionIsAllOrNothing(t *testing.T) {
	w := NewWorld(cfg())
	p := w.NewProcess(1)
	acts := make([]*Activity, 5)
	for i := range acts {
		acts[i] = p.NewActivity()
	}
	w.RunFor(20 * time.Minute)
	if w.CollectedProcesses() != 1 {
		t.Fatal("process not collected")
	}
	for i, a := range acts {
		if !a.Terminated() {
			t.Fatalf("activity %d survived its process", i)
		}
	}
}

func TestGlobalIDsDistinctFromProcessIdentity(t *testing.T) {
	w := NewWorld(cfg())
	p := w.NewProcess(3)
	a := p.NewActivity()
	if a.GlobalID() == procActivityID(3) {
		t.Fatal("activity identity collides with the process' reserved DGC identity")
	}
}
