// Package procgraph implements the paper's §4.1 "Process Graph" variant:
// when the no-sharing property is not available, the reference graph
// cannot be built per activity without stopping threads or modifying the
// local GC, so the DGC runs on the coarser graph of address spaces —
// formula (2): every activity-level edge x→y lifts to a process-level
// edge Proc(x)→Proc(y).
//
// The same core.Collector drives it: one collector per process, whose
// "activity" is the whole address space — idle iff every hosted activity
// is idle, terminated ⇒ the whole process' activities are destroyed. The
// documented cost of the coarsening is precision: a garbage cycle
// spanning processes that also host live activities is never collected
// (tested side by side with the fine-grained collector).
package procgraph

import (
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ids"
)

// Config parameterizes a process-graph world. TTB/TTA have the same
// meaning as for the fine-grained collector.
type Config struct {
	TTB  time.Duration
	TTA  time.Duration
	Seed int64
	// Latency is the one-way inter-process latency (nil = zero).
	Latency func(a, b ids.NodeID) time.Duration
	// OnEvent receives the process-level collector events.
	OnEvent func(core.Event)
}

// World simulates processes hosting activities, collected at process
// granularity.
type World struct {
	eng   *des.Engine
	cfg   Config
	procs map[ids.NodeID]*Process
}

// NewWorld creates an empty world.
func NewWorld(cfg Config) *World {
	return &World{
		eng:   des.New(time.Unix(0, 0), cfg.Seed),
		cfg:   cfg,
		procs: make(map[ids.NodeID]*Process),
	}
}

// Engine exposes the event engine.
func (w *World) Engine() *des.Engine { return w.eng }

// RunFor advances virtual time.
func (w *World) RunFor(d time.Duration) { w.eng.RunFor(d) }

// Process is one address space. Its DGC identity is the reserved
// activity (node, seq=1).
type Process struct {
	w         *World
	id        ids.NodeID
	collector *core.Collector
	acts      map[uint32]*Activity
	nextSeq   uint32
	// outEdges counts activity-level edges per destination process; the
	// process edge exists while the count is positive (formula (2)).
	outEdges   map[ids.NodeID]int
	terminated bool
}

// NewProcess creates a process and starts its beat.
func (w *World) NewProcess(id ids.NodeID) *Process {
	p := &Process{
		w:        w,
		id:       id,
		acts:     make(map[uint32]*Activity),
		outEdges: make(map[ids.NodeID]int),
	}
	cfg := core.Config{TTB: w.cfg.TTB, TTA: w.cfg.TTA, OnEvent: w.cfg.OnEvent}
	p.collector = core.New(procActivityID(id), cfg, p.allIdle, w.eng.Now())
	w.procs[id] = p
	phase := time.Duration(w.eng.Rand().Int63n(int64(w.cfg.TTB) + 1))
	w.eng.After(phase, p.beat)
	return p
}

// procActivityID is the reserved DGC identity of a process.
func procActivityID(node ids.NodeID) ids.ActivityID {
	return ids.ActivityID{Node: node, Seq: 1}
}

// ID returns the process identifier.
func (p *Process) ID() ids.NodeID { return p.id }

// Terminated reports whether the whole process was collected.
func (p *Process) Terminated() bool { return p.terminated }

// Collector exposes the process-level collector.
func (p *Process) Collector() *core.Collector { return p.collector }

// allIdle is the process' idleness: every hosted activity idle.
func (p *Process) allIdle() bool {
	for _, a := range p.acts {
		if !a.idle {
			return false
		}
	}
	return true
}

func (p *Process) beat() {
	if p.terminated {
		return
	}
	w := p.w
	res := p.collector.Tick(w.eng.Now())
	if res.Terminated {
		// The whole address space goes: every hosted activity with it.
		p.terminated = true
		for _, a := range p.acts {
			a.terminated = true
		}
		return
	}
	for _, ob := range res.Messages {
		ob := ob
		dst, ok := w.procs[ob.To.Node]
		if !ok {
			continue
		}
		w.eng.After(w.latency(p.id, dst.id), func() {
			if dst.terminated {
				return
			}
			resp := dst.collector.HandleMessage(ob.Msg, w.eng.Now())
			w.eng.After(w.latency(dst.id, p.id), func() {
				if !p.terminated {
					p.collector.HandleResponse(ob.To, resp, w.eng.Now())
				}
			})
		})
	}
	next := res.NextBeat
	if next <= 0 {
		next = w.cfg.TTB
	}
	w.eng.After(next, p.beat)
}

func (w *World) latency(a, b ids.NodeID) time.Duration {
	if a == b || w.cfg.Latency == nil {
		return 0
	}
	return w.cfg.Latency(a, b)
}

// Activity is one activity hosted by a process. Only its idleness and its
// outgoing activity-level edges matter: the DGC itself never sees it.
type Activity struct {
	proc       *Process
	seq        uint32
	idle       bool
	terminated bool
	// refs counts outgoing edges per target activity (global id), to lift
	// and unlift process edges correctly.
	refs map[ids.ActivityID]int
}

// NewActivity creates an idle activity in the process.
func (p *Process) NewActivity() *Activity {
	p.nextSeq++
	a := &Activity{proc: p, seq: p.nextSeq, idle: true, refs: make(map[ids.ActivityID]int)}
	p.acts[a.seq] = a
	return a
}

// GlobalID returns the activity's identity (distinct from the process'
// reserved seq 1: activities start at seq 2).
func (a *Activity) GlobalID() ids.ActivityID {
	return ids.ActivityID{Node: a.proc.id, Seq: a.seq + 1}
}

// Terminated reports whether the activity's process was collected.
func (a *Activity) Terminated() bool { return a.terminated }

// SetBusy / SetIdle flip the activity's idleness. The process becomes
// idle only when all activities are; becoming idle increments the
// process-level clock (occasion #1 lifted to the process).
func (a *Activity) SetBusy() { a.idle = false }

// SetIdle marks the activity idle and, if this makes the whole process
// idle, performs the process-level clock increment.
func (a *Activity) SetIdle() {
	if a.idle || a.terminated {
		return
	}
	a.idle = true
	if a.proc.allIdle() {
		a.proc.collector.BecomeIdle(a.proc.w.eng.Now())
	}
}

// Link records an activity-level edge a→target and lifts it to the
// process graph if it is the first edge toward that process.
func (a *Activity) Link(target *Activity) {
	if a.terminated {
		return
	}
	a.refs[target.GlobalID()]++
	if target.proc == a.proc {
		return // intra-process edges never reach the DGC
	}
	p := a.proc
	p.outEdges[target.proc.id]++
	if p.outEdges[target.proc.id] == 1 {
		p.collector.AddReferenced(procActivityID(target.proc.id), p.w.eng.Now())
	}
}

// Unlink removes an activity-level edge and unlifts the process edge when
// it was the last one (the stub-tag death at process granularity).
func (a *Activity) Unlink(target *Activity) {
	gid := target.GlobalID()
	if a.refs[gid] == 0 {
		return
	}
	a.refs[gid]--
	if a.refs[gid] == 0 {
		delete(a.refs, gid)
	}
	if target.proc == a.proc {
		return
	}
	p := a.proc
	p.outEdges[target.proc.id]--
	if p.outEdges[target.proc.id] == 0 {
		delete(p.outEdges, target.proc.id)
		p.collector.LostReferenced(procActivityID(target.proc.id), p.w.eng.Now())
	}
}

// CollectedProcesses returns how many processes terminated.
func (w *World) CollectedProcesses() int {
	var n int
	for _, p := range w.procs {
		if p.terminated {
			n++
		}
	}
	return n
}
