// Package grid models the Grid'5000 deployment of the paper's §5.1: three
// sites (Bordeaux, Sophia, Rennes) with the measured intra- and inter-site
// round-trip latencies, and 128 nodes split 49/39/40.
package grid

import (
	"time"

	"repro/internal/ids"
)

// Site is one cluster.
type Site struct {
	// Name identifies the site.
	Name string
	// Nodes is the number of machines at the site.
	Nodes int
	// IntraRTT is the measured round-trip latency inside the site.
	IntraRTT time.Duration
}

// Topology is a multi-site deployment: nodes are numbered 1..NumNodes()
// and assigned to sites in contiguous blocks.
type Topology struct {
	sites    []Site
	interRTT map[[2]string]time.Duration
	siteOf   []int // node index (0-based) → site index
}

// New builds a topology. interRTT keys are unordered site-name pairs
// (stored both ways).
func New(sites []Site, interRTT map[[2]string]time.Duration) *Topology {
	t := &Topology{
		sites:    make([]Site, len(sites)),
		interRTT: make(map[[2]string]time.Duration, 2*len(interRTT)),
	}
	copy(t.sites, sites)
	for k, v := range interRTT {
		t.interRTT[k] = v
		t.interRTT[[2]string{k[1], k[0]}] = v
	}
	for i, s := range sites {
		for j := 0; j < s.Nodes; j++ {
			t.siteOf = append(t.siteOf, i)
		}
	}
	return t
}

// Grid5000 returns the paper's testbed (§5.1): Bordeaux (49 nodes, RTT
// 0.2ms), Sophia (39 nodes, RTT 0.1ms), Rennes (40 nodes, RTT 0.1ms);
// inter-site RTTs 8ms Rennes–Bordeaux, 10ms Bordeaux–Sophia, 20ms
// Rennes–Sophia.
func Grid5000() *Topology {
	return New(
		[]Site{
			{Name: "bordeaux", Nodes: 49, IntraRTT: 200 * time.Microsecond},
			{Name: "sophia", Nodes: 39, IntraRTT: 100 * time.Microsecond},
			{Name: "rennes", Nodes: 40, IntraRTT: 100 * time.Microsecond},
		},
		map[[2]string]time.Duration{
			{"rennes", "bordeaux"}: 8 * time.Millisecond,
			{"bordeaux", "sophia"}: 10 * time.Millisecond,
			{"rennes", "sophia"}:   20 * time.Millisecond,
		},
	)
}

// NumNodes returns the total number of nodes.
func (t *Topology) NumNodes() int { return len(t.siteOf) }

// SiteOf returns the site name hosting node (nodes are 1-based; unknown
// nodes map to the first site).
func (t *Topology) SiteOf(node ids.NodeID) string {
	i := int(node) - 1
	if i < 0 || i >= len(t.siteOf) {
		i = 0
	}
	return t.sites[t.siteOf[i]].Name
}

// RTT returns the round-trip latency between two nodes.
func (t *Topology) RTT(a, b ids.NodeID) time.Duration {
	ia, ib := t.siteIndex(a), t.siteIndex(b)
	if ia == ib {
		return t.sites[ia].IntraRTT
	}
	return t.interRTT[[2]string{t.sites[ia].Name, t.sites[ib].Name}]
}

// Latency returns the one-way latency between two nodes (RTT/2), the form
// the transports consume.
func (t *Topology) Latency(a, b ids.NodeID) time.Duration {
	if a == b {
		return 0
	}
	return t.RTT(a, b) / 2
}

// MaxComm returns an upper bound on one-way communication time across the
// topology, for the TTA > 2·TTB + MaxComm formula (§3.1).
func (t *Topology) MaxComm() time.Duration {
	var max time.Duration
	for i := range t.sites {
		if r := t.sites[i].IntraRTT / 2; r > max {
			max = r
		}
		for j := range t.sites {
			if i == j {
				continue
			}
			if r := t.interRTT[[2]string{t.sites[i].Name, t.sites[j].Name}] / 2; r > max {
				max = r
			}
		}
	}
	return max
}

func (t *Topology) siteIndex(node ids.NodeID) int {
	i := int(node) - 1
	if i < 0 || i >= len(t.siteOf) {
		return 0
	}
	return t.siteOf[i]
}

// RoundRobin assigns m activities to the topology's nodes round-robin (the
// paper's NAS deployment, §5.2). The result maps activity index → node ID
// (1-based).
func (t *Topology) RoundRobin(m int) []ids.NodeID {
	out := make([]ids.NodeID, m)
	n := t.NumNodes()
	for i := 0; i < m; i++ {
		out[i] = ids.NodeID(i%n + 1)
	}
	return out
}

// Scaled returns a topology with every node count divided by factor (at
// least one node per site), for laptop-scale versions of the paper runs.
func (t *Topology) Scaled(factor int) *Topology {
	if factor < 1 {
		factor = 1
	}
	sites := make([]Site, len(t.sites))
	copy(sites, t.sites)
	for i := range sites {
		sites[i].Nodes = (sites[i].Nodes + factor - 1) / factor
		if sites[i].Nodes < 1 {
			sites[i].Nodes = 1
		}
	}
	inter := make(map[[2]string]time.Duration, len(t.interRTT))
	for k, v := range t.interRTT {
		inter[k] = v
	}
	return New(sites, inter)
}
