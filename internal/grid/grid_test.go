package grid

import (
	"testing"
	"time"

	"repro/internal/ids"
)

func TestGrid5000Shape(t *testing.T) {
	topo := Grid5000()
	if got := topo.NumNodes(); got != 128 {
		t.Fatalf("NumNodes = %d, want 128 (49+39+40)", got)
	}
	if s := topo.SiteOf(1); s != "bordeaux" {
		t.Fatalf("SiteOf(1) = %q", s)
	}
	if s := topo.SiteOf(49); s != "bordeaux" {
		t.Fatalf("SiteOf(49) = %q", s)
	}
	if s := topo.SiteOf(50); s != "sophia" {
		t.Fatalf("SiteOf(50) = %q", s)
	}
	if s := topo.SiteOf(88); s != "sophia" {
		t.Fatalf("SiteOf(88) = %q", s)
	}
	if s := topo.SiteOf(89); s != "rennes" {
		t.Fatalf("SiteOf(89) = %q", s)
	}
	if s := topo.SiteOf(128); s != "rennes" {
		t.Fatalf("SiteOf(128) = %q", s)
	}
}

func TestGrid5000RTTs(t *testing.T) {
	topo := Grid5000()
	tests := []struct {
		a, b ids.NodeID
		want time.Duration
	}{
		{1, 2, 200 * time.Microsecond},   // intra-Bordeaux
		{50, 51, 100 * time.Microsecond}, // intra-Sophia
		{89, 90, 100 * time.Microsecond}, // intra-Rennes
		{1, 89, 8 * time.Millisecond},    // Bordeaux–Rennes
		{1, 50, 10 * time.Millisecond},   // Bordeaux–Sophia
		{89, 50, 20 * time.Millisecond},  // Rennes–Sophia
	}
	for _, tt := range tests {
		if got := topo.RTT(tt.a, tt.b); got != tt.want {
			t.Errorf("RTT(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := topo.RTT(tt.b, tt.a); got != tt.want {
			t.Errorf("RTT(%v, %v) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
		}
		if got := topo.Latency(tt.a, tt.b); got != tt.want/2 {
			t.Errorf("Latency(%v, %v) = %v, want RTT/2", tt.a, tt.b, got)
		}
	}
	if got := topo.Latency(5, 5); got != 0 {
		t.Errorf("self latency = %v, want 0", got)
	}
}

func TestMaxComm(t *testing.T) {
	topo := Grid5000()
	if got := topo.MaxComm(); got != 10*time.Millisecond { // half of the 20ms Rennes–Sophia RTT
		t.Fatalf("MaxComm = %v, want 10ms", got)
	}
}

func TestRoundRobin(t *testing.T) {
	topo := Grid5000()
	placement := topo.RoundRobin(256)
	if len(placement) != 256 {
		t.Fatalf("len = %d", len(placement))
	}
	if placement[0] != 1 || placement[127] != 128 || placement[128] != 1 {
		t.Fatalf("round-robin wrong: %v %v %v", placement[0], placement[127], placement[128])
	}
	counts := map[ids.NodeID]int{}
	for _, n := range placement {
		counts[n]++
	}
	for n, c := range counts {
		if c != 2 {
			t.Fatalf("node %v got %d activities, want 2", n, c)
		}
	}
}

func TestScaled(t *testing.T) {
	topo := Grid5000().Scaled(8)
	// ceil(49/8)=7, ceil(39/8)=5, ceil(40/8)=5 → 17 nodes.
	if got := topo.NumNodes(); got != 17 {
		t.Fatalf("scaled NumNodes = %d, want 17", got)
	}
	// Latencies survive scaling.
	if got := topo.RTT(1, ids.NodeID(topo.NumNodes())); got == 0 {
		t.Fatal("scaled inter-site RTT must be nonzero")
	}
	if Grid5000().Scaled(0).NumNodes() != 128 {
		t.Fatal("factor < 1 must clamp to 1")
	}
	if Grid5000().Scaled(10_000).NumNodes() != 3 {
		t.Fatal("huge factor must keep one node per site")
	}
}

func TestUnknownNodeFallsBack(t *testing.T) {
	topo := Grid5000()
	if s := topo.SiteOf(0); s != "bordeaux" {
		t.Fatalf("SiteOf(0) = %q", s)
	}
	if s := topo.SiteOf(999); s != "bordeaux" {
		t.Fatalf("SiteOf(999) = %q", s)
	}
}
