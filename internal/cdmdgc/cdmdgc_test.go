package cdmdgc

import (
	"testing"
	"time"

	"repro/internal/ids"
)

func cfg() Config {
	return Config{
		DetectEvery: 30 * time.Second,
		HopLatency:  10 * time.Millisecond,
		Seed:        1,
	}
}

func id(seq uint32) ids.ActivityID { return ids.ActivityID{Node: 1, Seq: seq} }

func ring(w *World, n int) []*Activity {
	acts := make([]*Activity, n)
	for i := range acts {
		acts[i] = w.NewActivity(id(uint32(i + 1)))
	}
	for i := range acts {
		acts[i].Link(acts[(i+1)%n])
	}
	return acts
}

func TestCycleCollected(t *testing.T) {
	w := NewWorld(cfg())
	acts := ring(w, 6)
	w.RunFor(10 * time.Minute)
	for i, a := range acts {
		if !a.Terminated() {
			t.Fatalf("ring member %d not collected", i)
		}
	}
	if w.Collected() != 6 {
		t.Fatalf("collected = %d", w.Collected())
	}
}

func TestBusyMemberVetoes(t *testing.T) {
	w := NewWorld(cfg())
	acts := ring(w, 5)
	acts[2].SetBusy()
	w.RunFor(time.Hour)
	for i, a := range acts {
		if a.Terminated() {
			t.Fatalf("live ring member %d collected", i)
		}
	}
	acts[2].SetIdle()
	w.RunFor(30 * time.Minute)
	if w.Collected() != 5 {
		t.Fatalf("ring not collected after veto lifted: %d", w.Collected())
	}
}

func TestBusyExternalReferencerVetoes(t *testing.T) {
	w := NewWorld(cfg())
	acts := ring(w, 3)
	root := w.NewActivity(id(99))
	root.SetBusy()
	root.Link(acts[0])
	w.RunFor(time.Hour)
	if w.Collected() != 0 {
		t.Fatal("cycle referenced by busy root collected")
	}
	root.Unlink(acts[0])
	w.RunFor(30 * time.Minute)
	if w.Collected() != 3 {
		t.Fatalf("cycle not collected after root dropped: %d", w.Collected())
	}
}

func TestMessageSizeGrowsWithCycle(t *testing.T) {
	max := func(n int) int {
		w := NewWorld(cfg())
		ring(w, n)
		w.RunFor(time.Hour)
		if w.Collected() != n {
			t.Fatalf("ring of %d not collected", n)
		}
		return w.MaxCDMBytes
	}
	m8 := max(8)
	m64 := max(64)
	if m64 <= m8 {
		t.Fatalf("CDM size did not grow with the cycle: %d vs %d", m8, m64)
	}
	// Linear growth: a 64-ring CDM carries ~64 IDs ≈ 8× a ~8-ring one.
	if m64 < 4*m8 {
		t.Fatalf("CDM growth sub-linear?! %d vs %d", m8, m64)
	}
}

func TestWireSize(t *testing.T) {
	m := &CDM{
		Originator: id(1),
		Visited:    map[ids.ActivityID]bool{id(1): true, id(2): true},
		Deps:       map[ids.ActivityID]bool{id(3): true},
	}
	if got := m.WireSize(); got != 16+8*3 {
		t.Fatalf("WireSize = %d, want 40", got)
	}
}

func TestSortedIDs(t *testing.T) {
	w := NewWorld(cfg())
	w.NewActivity(id(2))
	w.NewActivity(id(1))
	got := w.SortedIDs()
	if len(got) != 2 || !got[0].Less(got[1]) {
		t.Fatalf("SortedIDs = %v", got)
	}
}
