// Package cdmdgc implements a simplified comparator in the style of Veiga
// & Ferreira's "Asynchronous Complete Distributed Garbage Collection"
// (IPDPS 2005), the related work the paper contrasts itself against in
// §6: cycle detection messages (CDMs) that traverse the reference graph
// and *grow* a view of it — visited activities plus their still
// unresolved dependencies (referencers not yet visited). A cycle is
// garbage when a CDM has no unresolved dependencies left.
//
// The paper's critique, which this package exists to quantify: "the
// growth of the message is limited only by the total size of the
// distributed system, so the communication overhead can become large" —
// versus the paper's fixed 25-byte messages. BenchmarkCDMMessageGrowth
// measures exactly that.
//
// Simplifications (documented, acceptable for a complexity comparator):
// the harness runs on the deterministic DES; referencer lists are
// maintained by the same heartbeat mechanism as the main algorithm and
// are read directly; a CDM reaching a busy activity is dropped and the
// detection restarts later. Unlike Veiga & Ferreira's full algorithm, no
// effort is made to tolerate concurrent mutation during a traversal —
// the benchmark graphs are quiescent, which favours the comparator.
package cdmdgc

import (
	"sort"
	"time"

	"repro/internal/des"
	"repro/internal/ids"
)

// CDM is one cycle detection message.
type CDM struct {
	// Originator started the detection.
	Originator ids.ActivityID
	// Visited holds every activity the CDM has traversed (all idle).
	Visited map[ids.ActivityID]bool
	// Deps holds the referencers seen but not yet visited: the unknown
	// part of the graph.
	Deps map[ids.ActivityID]bool
}

// WireSize is the encoded size: two 8-byte IDs of header plus 8 bytes per
// carried identifier — the quantity that grows with the graph.
func (m *CDM) WireSize() int {
	return 16 + 8*(len(m.Visited)+len(m.Deps))
}

// Config parameterizes a World.
type Config struct {
	// DetectEvery is the period at which idle activities (re)start
	// detections, comparable to the paper's TTB.
	DetectEvery time.Duration
	// HopLatency is the per-hop message latency.
	HopLatency time.Duration
	Seed       int64
}

// World is the DES harness for the comparator.
type World struct {
	eng  *des.Engine
	cfg  Config
	acts map[ids.ActivityID]*Activity

	// Traffic accounting.
	CDMBytes    uint64
	CDMMessages uint64
	// MaxCDMBytes is the largest single message observed.
	MaxCDMBytes int

	collected int
}

// NewWorld creates an empty world.
func NewWorld(cfg Config) *World {
	return &World{
		eng:  des.New(time.Unix(0, 0), cfg.Seed),
		cfg:  cfg,
		acts: make(map[ids.ActivityID]*Activity),
	}
}

// RunFor advances virtual time.
func (w *World) RunFor(d time.Duration) { w.eng.RunFor(d) }

// Collected returns the number of terminated activities.
func (w *World) Collected() int { return w.collected }

// Activity is one simulated active object under the CDM collector.
type Activity struct {
	w           *World
	id          ids.ActivityID
	idle        bool
	terminated  bool
	referencers map[ids.ActivityID]bool
	referenced  map[ids.ActivityID]bool
	// detecting dedupes concurrent detections from this originator.
	detecting bool
}

// NewActivity creates an idle activity.
func (w *World) NewActivity(id ids.ActivityID) *Activity {
	a := &Activity{
		w:           w,
		id:          id,
		idle:        true,
		referencers: make(map[ids.ActivityID]bool),
		referenced:  make(map[ids.ActivityID]bool),
	}
	w.acts[id] = a
	phase := time.Duration(w.eng.Rand().Int63n(int64(w.cfg.DetectEvery) + 1))
	w.eng.After(phase, a.maybeDetect)
	return a
}

// ID returns the activity identifier.
func (a *Activity) ID() ids.ActivityID { return a.id }

// Terminated reports collection.
func (a *Activity) Terminated() bool { return a.terminated }

// SetBusy pins the activity busy.
func (a *Activity) SetBusy() { a.idle = false }

// SetIdle returns it to idleness.
func (a *Activity) SetIdle() { a.idle = true }

// Link records an edge a→b on both endpoints (the reference-listing part
// is assumed, as in Veiga & Ferreira).
func (a *Activity) Link(b *Activity) {
	a.referenced[b.id] = true
	b.referencers[a.id] = true
}

// Unlink removes the edge.
func (a *Activity) Unlink(b *Activity) {
	delete(a.referenced, b.id)
	delete(b.referencers, a.id)
}

// maybeDetect periodically starts a detection from an idle activity with
// referencers (a cycle candidate).
func (a *Activity) maybeDetect() {
	if a.terminated {
		return
	}
	if a.idle && len(a.referencers) > 0 && !a.detecting {
		a.detecting = true
		m := &CDM{
			Originator: a.id,
			Visited:    map[ids.ActivityID]bool{a.id: true},
			Deps:       make(map[ids.ActivityID]bool),
		}
		for r := range a.referencers {
			if !m.Visited[r] {
				m.Deps[r] = true
			}
		}
		a.forward(m)
	}
	a.w.eng.After(a.w.cfg.DetectEvery, a.maybeDetect)
}

// forward sends the CDM to one unresolved dependency (deterministically
// the smallest, for reproducibility). An empty dependency set means the
// whole recursive referencer closure is visited and idle: garbage.
func (a *Activity) forward(m *CDM) {
	w := a.w
	if len(m.Deps) == 0 {
		// Consensus equivalent: terminate every visited activity.
		for id := range m.Visited {
			if v, ok := w.acts[id]; ok && !v.terminated {
				v.terminated = true
				w.collected++
			}
		}
		if o, ok := w.acts[m.Originator]; ok {
			o.detecting = false
		}
		return
	}
	var next ids.ActivityID
	first := true
	for id := range m.Deps {
		if first || id.Less(next) {
			next = id
			first = false
		}
	}
	size := m.WireSize()
	w.CDMBytes += uint64(size)
	w.CDMMessages++
	if size > w.MaxCDMBytes {
		w.MaxCDMBytes = size
	}
	w.eng.After(w.cfg.HopLatency, func() {
		dst, ok := w.acts[next]
		if !ok || dst.terminated {
			// Stale dependency: drop the detection; it will restart.
			if o, okO := w.acts[m.Originator]; okO {
				o.detecting = false
			}
			return
		}
		dst.receive(m)
	})
}

// receive processes a CDM at an activity: a busy activity vetoes the
// detection; an idle one resolves itself, adds its referencers as new
// dependencies, and forwards.
func (dst *Activity) receive(m *CDM) {
	w := dst.w
	if !dst.idle {
		if o, ok := w.acts[m.Originator]; ok {
			o.detecting = false
		}
		return
	}
	m.Visited[dst.id] = true
	delete(m.Deps, dst.id)
	for r := range dst.referencers {
		if !m.Visited[r] {
			m.Deps[r] = true
		}
	}
	dst.forward(m)
}

// SortedIDs is a test helper returning the activity IDs in order.
func (w *World) SortedIDs() []ids.ActivityID {
	out := make([]ids.ActivityID, 0, len(w.acts))
	for id := range w.acts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
