// Package ids defines the identifiers used across the distributed system:
// node identifiers, activity identifiers, and generators for both.
//
// Activity identifiers are totally ordered. The order is used by the
// distributed garbage collector to break ties between activity clocks with
// equal values (the paper's "named" Lamport clock, §3.2), so it must be a
// strict total order that every process computes identically.
package ids

import (
	"fmt"
	"sync/atomic"
)

// NodeID identifies a process (an address space) in the distributed system.
// The paper calls these JVMs; the simulation calls them nodes.
type NodeID uint32

// String implements fmt.Stringer.
func (n NodeID) String() string {
	return fmt.Sprintf("node-%d", uint32(n))
}

// ActivityID uniquely identifies an active object in the whole distributed
// system. It is comparable (usable as a map key) and totally ordered via
// Less. The zero value is reserved as "no activity" (see Nil).
type ActivityID struct {
	// Node is the process on which the activity was created. Activities do
	// not migrate in this model, so Node is also where the activity lives.
	Node NodeID
	// Seq is the per-node creation sequence number, starting at 1.
	Seq uint32
}

// Nil is the zero ActivityID, meaning "no activity".
var Nil ActivityID

// IsNil reports whether the identifier is the reserved zero value.
func (a ActivityID) IsNil() bool {
	return a == ActivityID{}
}

// Less defines the global total order on activity identifiers.
func (a ActivityID) Less(b ActivityID) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Seq < b.Seq
}

// Compare returns -1, 0 or +1 following the same order as Less.
func (a ActivityID) Compare(b ActivityID) int {
	switch {
	case a == b:
		return 0
	case a.Less(b):
		return -1
	default:
		return 1
	}
}

// String implements fmt.Stringer. Examples: "A2.7" is the 7th activity
// created on node 2.
func (a ActivityID) String() string {
	if a.IsNil() {
		return "A<nil>"
	}
	return fmt.Sprintf("A%d.%d", uint32(a.Node), a.Seq)
}

// Generator hands out fresh activity identifiers for one node. It is safe
// for concurrent use.
type Generator struct {
	node NodeID
	next atomic.Uint32
}

// NewGenerator returns a generator producing identifiers scoped to node.
func NewGenerator(node NodeID) *Generator {
	return &Generator{node: node}
}

// Node returns the node the generator allocates for.
func (g *Generator) Node() NodeID {
	return g.node
}

// Next returns a fresh, never-before-returned activity identifier.
func (g *Generator) Next() ActivityID {
	return ActivityID{Node: g.node, Seq: g.next.Add(1)}
}

// SkipTo advances the generator so the next identifier returned by Next
// has Seq at least first. Recovery re-creates activities under their
// original identifiers; skipping past the highest restored sequence
// keeps fresh spawns on the same node from colliding with them. SkipTo
// never moves the generator backwards.
func (g *Generator) SkipTo(first uint32) {
	if first == 0 {
		return
	}
	want := first - 1
	for {
		cur := g.next.Load()
		if cur >= want || g.next.CompareAndSwap(cur, want) {
			return
		}
	}
}

// NodeGenerator hands out fresh node identifiers. It is safe for concurrent
// use.
type NodeGenerator struct {
	next atomic.Uint32
}

// Next returns a fresh node identifier (starting at 1; 0 is reserved).
func (g *NodeGenerator) Next() NodeID {
	return NodeID(g.next.Add(1))
}

// SkipTo advances the generator so the next identifier returned by Next is
// at least first. Processes sharing one network use disjoint ranges so
// their identifiers (and the total order built on them) never collide.
// SkipTo never moves the generator backwards.
func (g *NodeGenerator) SkipTo(first NodeID) {
	if first == 0 {
		return
	}
	want := uint32(first) - 1
	for {
		cur := g.next.Load()
		if cur >= want || g.next.CompareAndSwap(cur, want) {
			return
		}
	}
}

// FutureID identifies a future on the node that created it (its *home*
// node: where the asynchronous call originated and where the result
// update is first delivered). Futures are first-class wire values, so the
// identifier — like ActivityID — must be meaningful system-wide. The zero
// value is reserved as "no future" (a one-way call).
type FutureID struct {
	// Node is the home node: the process that created the future and the
	// root of its value-propagation chain.
	Node NodeID
	// Seq is the per-node creation sequence number, starting at 1.
	Seq uint32
}

// IsZero reports whether the identifier is the reserved "no future" value.
func (f FutureID) IsZero() bool { return f == FutureID{} }

// String implements fmt.Stringer. Example: "F2.7" is the 7th future
// created on node 2.
func (f FutureID) String() string {
	if f.IsZero() {
		return "F<nil>"
	}
	return fmt.Sprintf("F%d.%d", uint32(f.Node), f.Seq)
}
