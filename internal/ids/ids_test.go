package ids

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestNilActivityID(t *testing.T) {
	if !Nil.IsNil() {
		t.Fatal("Nil.IsNil() = false, want true")
	}
	id := ActivityID{Node: 1, Seq: 1}
	if id.IsNil() {
		t.Fatalf("%v.IsNil() = true, want false", id)
	}
}

func TestActivityIDString(t *testing.T) {
	tests := []struct {
		id   ActivityID
		want string
	}{
		{ActivityID{}, "A<nil>"},
		{ActivityID{Node: 2, Seq: 7}, "A2.7"},
		{ActivityID{Node: 1, Seq: 1}, "A1.1"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.id, got, tt.want)
		}
	}
}

func TestNodeIDString(t *testing.T) {
	if got := NodeID(3).String(); got != "node-3" {
		t.Errorf("NodeID(3).String() = %q, want %q", got, "node-3")
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	// Irreflexive, asymmetric, transitive, total: checked on random triples.
	prop := func(a, b, c ActivityID) bool {
		if a.Less(a) {
			return false // irreflexive
		}
		if a.Less(b) && b.Less(a) {
			return false // asymmetric
		}
		if a != b && !a.Less(b) && !b.Less(a) {
			return false // total
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false // transitive
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareConsistentWithLess(t *testing.T) {
	prop := func(a, b ActivityID) bool {
		c := a.Compare(b)
		switch {
		case a == b:
			return c == 0
		case a.Less(b):
			return c == -1
		default:
			return c == 1
		}
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLessOrdersByNodeFirst(t *testing.T) {
	a := ActivityID{Node: 1, Seq: 100}
	b := ActivityID{Node: 2, Seq: 1}
	if !a.Less(b) {
		t.Errorf("want %v < %v (node dominates seq)", a, b)
	}
}

func TestGeneratorUnique(t *testing.T) {
	g := NewGenerator(4)
	if g.Node() != 4 {
		t.Fatalf("g.Node() = %v, want 4", g.Node())
	}
	const n = 1000
	seen := make(map[ActivityID]bool, n)
	for i := 0; i < n; i++ {
		id := g.Next()
		if id.Node != 4 {
			t.Fatalf("id.Node = %v, want 4", id.Node)
		}
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
	}
}

func TestGeneratorConcurrent(t *testing.T) {
	g := NewGenerator(1)
	const workers, per = 8, 500
	var mu sync.Mutex
	all := make([]ActivityID, 0, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ActivityID, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, g.Next())
			}
			mu.Lock()
			all = append(all, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Fatalf("duplicate id %v under concurrency", all[i])
		}
	}
}

func TestNodeGenerator(t *testing.T) {
	var g NodeGenerator
	first := g.Next()
	if first != 1 {
		t.Fatalf("first node id = %v, want 1 (0 is reserved)", first)
	}
	if g.Next() == first {
		t.Fatal("node generator returned duplicate")
	}
}
