package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// recorder is a test handler recording deliveries.
type recorder struct {
	mu     sync.Mutex
	oneWay []string
	calls  []string
	reply  []byte
}

func (r *recorder) HandleOneWay(from ids.NodeID, class Class, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.oneWay = append(r.oneWay, string(payload))
}

func (r *recorder) HandleCall(from ids.NodeID, class Class, payload []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, string(payload))
	return r.reply
}

func (r *recorder) received() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.oneWay))
	copy(out, r.oneWay)
	return out
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func TestSendDelivers(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var rec recorder
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	if err := ep.Send(2, ClassApp, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rec.received()) == 1 })
	if rec.received()[0] != "hi" {
		t.Fatalf("received %v", rec.received())
	}
}

func TestSendFIFOOrder(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var rec recorder
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	const k = 200
	for i := 0; i < k; i++ {
		if err := ep.Send(2, ClassApp, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(rec.received()) == k })
	got := rec.received()
	for i := 0; i < k; i++ {
		if got[i] != string([]byte{byte(i)}) {
			t.Fatalf("out-of-order delivery at %d", i)
		}
	}
}

func TestCallRoundTrip(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	rec := recorder{reply: []byte("pong")}
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	resp, err := ep.Call(2, ClassDGC, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "pong" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestIntraNodeDirectAndUnaccounted(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	rec := recorder{reply: []byte("r")}
	ep := n.Register(1, &rec)
	if err := ep.Send(1, ClassApp, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Call(1, ClassDGC, []byte("y")); err != nil {
		t.Fatal(err)
	}
	// Intra-node delivery is synchronous.
	if len(rec.received()) != 1 {
		t.Fatal("intra-node Send must deliver synchronously")
	}
	if total := n.Snapshot().Total(); total != 0 {
		t.Fatalf("intra-node traffic was accounted: %d bytes", total)
	}
}

func TestAccountingPerClass(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	rec := recorder{reply: []byte("12345")}
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	if err := ep.Send(2, ClassApp, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Call(2, ClassDGC, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	snap := n.Snapshot()
	if snap.Bytes[ClassApp] != 100 {
		t.Fatalf("app bytes = %d, want 100", snap.Bytes[ClassApp])
	}
	if snap.Bytes[ClassDGC] != 15 { // 10 out + 5 back
		t.Fatalf("dgc bytes = %d, want 15", snap.Bytes[ClassDGC])
	}
	if snap.Messages[ClassDGC] != 2 {
		t.Fatalf("dgc messages = %d, want 2 (msg + response)", snap.Messages[ClassDGC])
	}
	if snap.Total() != 115 {
		t.Fatalf("total = %d, want 115", snap.Total())
	}
	n.ResetCounters()
	if n.Snapshot().Total() != 0 {
		t.Fatal("ResetCounters did not zero counters")
	}
}

func TestUnknownNode(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	ep := n.Register(1, &recorder{})
	if err := ep.Send(99, ClassApp, nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
	if _, err := ep.Call(99, ClassApp, nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestReachabilityRules(t *testing.T) {
	// Node 2 is behind a NAT: only 1 → 2 connections are allowed.
	n := New(Config{
		Reachable: func(src, dst ids.NodeID) bool {
			return !(src == 2 && dst == 1)
		},
	})
	defer n.Close()
	rec1 := recorder{reply: []byte("r1")}
	rec2 := recorder{reply: []byte("r2")}
	ep1 := n.Register(1, &rec1)
	ep2 := n.Register(2, &rec2)

	// Forward direction works, including the response riding back.
	resp, err := ep1.Call(2, ClassDGC, []byte("m"))
	if err != nil || string(resp) != "r2" {
		t.Fatalf("forward call failed: %v %q", err, resp)
	}
	// Reverse direction is blocked.
	if err := ep2.Send(1, ClassApp, []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if _, err := ep2.Call(1, ClassApp, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestLatencyAppliedToSend(t *testing.T) {
	const lat = 30 * time.Millisecond
	n := New(Config{
		Latency: func(_, _ ids.NodeID) time.Duration { return lat },
	})
	defer n.Close()
	var rec recorder
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	start := time.Now()
	if err := ep.Send(2, ClassApp, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(rec.received()) == 1 })
	if elapsed := time.Since(start); elapsed < lat {
		t.Fatalf("delivered after %v, want >= %v", elapsed, lat)
	}
}

func TestCallPaysRoundTripLatency(t *testing.T) {
	const lat = 20 * time.Millisecond
	n := New(Config{
		Latency: func(_, _ ids.NodeID) time.Duration { return lat },
	})
	defer n.Close()
	rec := recorder{reply: []byte("r")}
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	start := time.Now()
	if _, err := ep.Call(2, ClassDGC, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*lat {
		t.Fatalf("call took %v, want >= %v (RTT)", elapsed, 2*lat)
	}
}

func TestMaxCommConfigured(t *testing.T) {
	n := New(Config{MaxComm: 42 * time.Millisecond})
	defer n.Close()
	if got := n.MaxComm(); got != 42*time.Millisecond {
		t.Fatalf("MaxComm = %v, want 42ms", got)
	}
}

func TestMaxCommDerived(t *testing.T) {
	n := New(Config{
		Latency: func(src, dst ids.NodeID) time.Duration {
			if src == 1 && dst == 2 {
				return 7 * time.Millisecond
			}
			return time.Millisecond
		},
	})
	defer n.Close()
	n.Register(1, &recorder{})
	n.Register(2, &recorder{})
	if got := n.MaxComm(); got != 7*time.Millisecond {
		t.Fatalf("MaxComm = %v, want 7ms", got)
	}
}

func TestCloseRejectsTraffic(t *testing.T) {
	n := New(Config{})
	ep := n.Register(1, &recorder{})
	n.Register(2, &recorder{})
	n.Close()
	if err := ep.Send(2, ClassApp, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// Idempotent close.
	n.Close()
}

func TestClassString(t *testing.T) {
	if ClassApp.String() != "app" || ClassDGC.String() != "dgc" || ClassFuture.String() != "future" {
		t.Fatal("class names wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class must still format")
	}
}

func TestConcurrentSendersDistinctPairs(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	var rec recorder
	n.Register(10, &rec)
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		ep := n.Register(ids.NodeID(s+1), &recorder{})
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := ep.Send(10, ClassApp, []byte{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(ep)
	}
	wg.Wait()
	waitFor(t, func() bool { return len(rec.received()) == senders*per })
}

func TestDeregisterMakesNodeUnreachable(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	rec := recorder{reply: []byte("r")}
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	if _, err := ep.Call(2, ClassDGC, []byte("m")); err != nil {
		t.Fatal(err)
	}
	n.Deregister(2)
	if err := ep.Send(2, ClassApp, []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Send after Deregister = %v, want ErrUnknownNode", err)
	}
	if _, err := ep.Call(2, ClassDGC, nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Call after Deregister = %v, want ErrUnknownNode", err)
	}
	// Re-registering revives the node (restart).
	n.Register(2, &rec)
	if _, err := ep.Call(2, ClassDGC, []byte("m")); err != nil {
		t.Fatalf("Call after re-register = %v", err)
	}
}

func TestKillNodeIsBidirectional(t *testing.T) {
	n := New(Config{})
	defer n.Close()
	rec1 := recorder{reply: []byte("r1")}
	rec2 := recorder{reply: []byte("r2")}
	ep1 := n.Register(1, &rec1)
	ep2 := n.Register(2, &rec2)
	if _, err := ep1.Call(2, ClassDGC, []byte("pre")); err != nil {
		t.Fatal(err)
	}

	n.KillNode(2)

	// Traffic toward the victim vanishes: sends drop silently (a crashed
	// machine acks nothing), calls fail like an unreachable host.
	if err := ep1.Send(2, ClassApp, []byte("x")); err != nil {
		t.Fatalf("Send toward killed = %v, want silent drop", err)
	}
	if _, err := ep1.Call(2, ClassDGC, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Call toward killed = %v, want ErrUnreachable", err)
	}

	// Traffic FROM the victim vanishes too: a dead machine must not keep
	// proving itself alive through its own runtime's outbound frames.
	if err := ep2.Send(1, ClassApp, []byte("ghost")); err != nil {
		t.Fatalf("Send from killed = %v, want silent drop", err)
	}
	if _, err := ep2.Call(1, ClassDGC, nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Call from killed = %v, want ErrUnreachable", err)
	}
	time.Sleep(10 * time.Millisecond)
	if got := rec1.received(); len(got) != 0 {
		t.Fatalf("killed node's sends were delivered: %v", got)
	}
	if got := rec2.received(); len(got) != 0 {
		t.Fatalf("sends toward killed node were delivered: %v", got)
	}
}

func TestLinkScheduleSerializesInterfaces(t *testing.T) {
	base := time.Unix(1000, 0)
	clk := vclock.NewManual(base)
	n := New(Config{Clock: clk, PerMessage: 10 * time.Millisecond})
	defer n.Close()

	// Three messages from the same source to the same destination: each
	// claims the next tx slot (10ms apart), then the next rx slot — the
	// k-th delivery lands at base + (k+1)×10ms.
	for k, want := range []time.Duration{20, 30, 40} {
		got := n.linkSchedule(1, 2, 0)
		if got.Sub(base) != want*time.Millisecond {
			t.Fatalf("msg %d deliverAt = +%v, want +%vms", k, got.Sub(base), want)
		}
	}

	// Distinct sources contend only at the shared receiver.
	n2 := New(Config{Clock: clk, PerMessage: 10 * time.Millisecond})
	defer n2.Close()
	if got := n2.linkSchedule(1, 3, 0); got.Sub(base) != 20*time.Millisecond {
		t.Fatalf("src1 deliverAt = +%v, want +20ms", got.Sub(base))
	}
	if got := n2.linkSchedule(2, 3, 0); got.Sub(base) != 30*time.Millisecond {
		t.Fatalf("src2 deliverAt = +%v, want +30ms", got.Sub(base))
	}

	// PerByte extends the occupancy with payload size.
	n3 := New(Config{Clock: clk, PerByte: time.Millisecond})
	defer n3.Close()
	if got := n3.linkSchedule(1, 2, 5); got.Sub(base) != 10*time.Millisecond {
		t.Fatalf("5-byte deliverAt = +%v, want +10ms", got.Sub(base))
	}

	// Without interface costs the schedule degenerates to now + latency.
	n4 := New(Config{Clock: clk, Latency: func(_, _ ids.NodeID) time.Duration { return 7 * time.Millisecond }})
	defer n4.Close()
	if got := n4.linkSchedule(1, 2, 99); got.Sub(base) != 7*time.Millisecond {
		t.Fatalf("latency-only deliverAt = +%v, want +7ms", got.Sub(base))
	}
}

func TestPerMessageDeliveryEndToEnd(t *testing.T) {
	n := New(Config{PerMessage: 3 * time.Millisecond})
	defer n.Close()
	var rec recorder
	n.Register(2, &rec)
	ep := n.Register(1, &recorder{})
	start := time.Now()
	const k = 5
	for i := 0; i < k; i++ {
		if err := ep.Send(2, ClassApp, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return len(rec.received()) == k })
	// tx slots at 3,6,..,15ms; the last rx slot opens at 18ms.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("%d messages delivered in %v, want ≥ 15ms of interface serialization", k, elapsed)
	}
	got := rec.received()
	for i := 0; i < k; i++ {
		if got[i] != string([]byte{byte(i)}) {
			t.Fatalf("out-of-order delivery at %d", i)
		}
	}
}
