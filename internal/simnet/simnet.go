// Package simnet provides the in-memory network substrate the live runtime
// communicates over: the simulation-grade implementation of the
// transport.Transport contract. It reproduces the properties the paper's
// algorithm depends on and the instrumentation its evaluation uses:
//
//   - FIFO ordered delivery per (source, destination) pair, like the TCP
//     connections of RMI ("DGC messages and responses cannot race with
//     application messages as they are sent over the same FIFO connection",
//     §3.2);
//   - request/response exchange over the connection opened by the caller,
//     so a referenced activity never needs connectivity back to its
//     referencers (firewall/NAT asymmetry, §2.2);
//   - configurable one-way latency derived from a per-site RTT matrix
//     (§5.1) with an explicit MaxComm upper bound for the TTA formula;
//   - payload byte accounting per traffic class, the stand-in for the
//     paper's instrumented SOCKS proxy (§5): intra-process messages are
//     delivered directly and not accounted, as in the paper;
//   - optional interface serialization (PerMessage/PerByte): messages
//     occupy their sender's and receiver's interface in turn, modeling
//     the per-packet overhead and finite bandwidth real deployments
//     have — the regime where fan-out topology matters.
//
// The sibling internal/tcpnet implements the same contract over real TCP
// connections; internal/active runs over either.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ids"
	"repro/internal/transport"
	"repro/internal/vclock"
)

// Class partitions traffic for accounting; see transport.Class.
type Class = transport.Class

// Traffic classes, re-exported from the transport contract.
const (
	// ClassApp is application traffic: requests and their payloads.
	ClassApp = transport.ClassApp
	// ClassDGC is DGC messages and DGC responses.
	ClassDGC = transport.ClassDGC
	// ClassFuture is future-update traffic (results flowing back).
	ClassFuture = transport.ClassFuture
	numClasses  = transport.NumClasses
)

// Errors returned by the network, shared with every transport backend so
// callers can errors.Is without knowing the substrate.
var (
	// ErrUnreachable indicates the reachability rules forbid src → dst.
	ErrUnreachable = transport.ErrUnreachable
	// ErrUnknownNode indicates the destination was never registered.
	ErrUnknownNode = transport.ErrUnknownNode
	// ErrClosed indicates the network has been shut down.
	ErrClosed = transport.ErrClosed
)

// Handler receives traffic on behalf of a node; see transport.Handler.
type Handler = transport.Handler

// Config parameterizes a Network.
type Config struct {
	// Clock provides time; defaults to the real clock.
	Clock vclock.Clock
	// Latency returns the one-way latency between two distinct nodes.
	// Defaults to zero latency. Intra-node delivery is always immediate.
	Latency func(src, dst ids.NodeID) time.Duration
	// Reachable reports whether src may open a connection to dst. Defaults
	// to full reachability. Replies are always allowed back over an
	// established exchange.
	Reachable func(src, dst ids.NodeID) bool
	// MaxComm is an upper bound on one-way communication time, used by the
	// DGC deadline formula. If zero, it is taken as the maximum of Latency
	// over registered node pairs at the time MaxComm() is called.
	MaxComm time.Duration
	// PerMessage is the fixed interface cost of one message: every message
	// occupies its sender's and its receiver's network interface for this
	// long (plus PerByte × size), and messages serialize at both
	// interfaces — the store-and-forward model of real per-packet overhead
	// (syscall, interrupt, protocol processing). Zero, the default, models
	// infinitely fast interfaces. A SendBatch pays the fixed cost once per
	// batch: exactly the frame coalescing batching exists to buy.
	PerMessage time.Duration
	// PerByte extends the interface occupancy per payload byte — the
	// bandwidth stand-in. Zero means unlimited bandwidth.
	PerByte time.Duration
}

// Counters is a snapshot of accounted traffic; see transport.Counters.
type Counters = transport.Counters

// numShards is the routing-table shard count: handler lookups and queue
// get-or-creates for a destination contend only with traffic hashing to
// the same shard, not with every sender in the world (the seed's single
// routing mutex was the first thing the profiler surfaced once frames got
// cheap).
const numShards = 32

// shard is one slice of the routing state, keyed by destination node.
type shard struct {
	mu     sync.Mutex
	nodes  map[ids.NodeID]Handler
	queues map[pairKey]*pairQueue
}

// Network is the shared medium. Create with New, attach nodes with
// Register, stop with Close. It implements transport.Transport.
type Network struct {
	cfg Config

	closed atomic.Bool
	shards [numShards]shard
	wg     sync.WaitGroup

	// killed is the copy-on-write set of blackholed nodes (KillNode): the
	// pointer is nil until the first kill, so the per-send check is one
	// atomic load on the chaos-free hot path.
	killMu sync.Mutex
	killed atomic.Pointer[map[ids.NodeID]struct{}]

	// linkMu guards the interface-serialization state (PerMessage /
	// PerByte): the next instant each node's outbound and inbound
	// interface is free again.
	linkMu sync.Mutex
	txFree map[ids.NodeID]time.Time
	rxFree map[ids.NodeID]time.Time

	counters transport.CounterSet
}

var _ transport.Transport = (*Network)(nil)
var _ transport.BatchSender = (*Endpoint)(nil)

type pairKey struct {
	src, dst ids.NodeID
}

// New creates a network.
func New(cfg Config) *Network {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.Latency == nil {
		cfg.Latency = func(_, _ ids.NodeID) time.Duration { return 0 }
	}
	if cfg.Reachable == nil {
		cfg.Reachable = func(_, _ ids.NodeID) bool { return true }
	}
	n := &Network{cfg: cfg}
	if cfg.PerMessage > 0 || cfg.PerByte > 0 {
		n.txFree = make(map[ids.NodeID]time.Time)
		n.rxFree = make(map[ids.NodeID]time.Time)
	}
	for i := range n.shards {
		n.shards[i].nodes = make(map[ids.NodeID]Handler)
		n.shards[i].queues = make(map[pairKey]*pairQueue)
	}
	return n
}

// shardFor returns the routing shard owning destination node id.
func (n *Network) shardFor(id ids.NodeID) *shard {
	return &n.shards[uint32(id)%numShards]
}

// MaxComm returns the configured or derived upper bound on one-way
// communication time.
func (n *Network) MaxComm() time.Duration {
	if n.cfg.MaxComm > 0 {
		return n.cfg.MaxComm
	}
	var nodes []ids.NodeID
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		for id := range s.nodes {
			nodes = append(nodes, id)
		}
		s.mu.Unlock()
	}
	var max time.Duration
	for _, a := range nodes {
		for _, b := range nodes {
			if a == b {
				continue
			}
			if l := n.cfg.Latency(a, b); l > max {
				max = l
			}
		}
	}
	return max
}

// Register attaches a handler for node and returns its endpoint. Replacing
// an existing registration is allowed (used when a node restarts in tests).
func (n *Network) Register(node ids.NodeID, h Handler) transport.Endpoint {
	s := n.shardFor(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[node] = h
	return &Endpoint{net: n, node: node}
}

// Deregister detaches a node: subsequent traffic toward it fails with
// ErrUnknownNode. Used to simulate machine crashes (§4.2: an undetected
// failure is indistinguishable from silence for the DGC).
func (n *Network) Deregister(node ids.NodeID) {
	s := n.shardFor(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.nodes, node)
}

// Close stops delivery and waits for in-flight queue goroutines to drain.
func (n *Network) Close() {
	if n.closed.Swap(true) {
		return
	}
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		for _, q := range s.queues {
			q.close()
		}
		s.mu.Unlock()
	}
	n.wg.Wait()
}

// KillNode hard-kills a node at the network level: the chaos hook for
// deterministic failure-detection tests. One-way messages toward the
// node are accepted and silently dropped (a machine that died mid-beat
// acknowledges nothing), request/response exchanges fail fast with
// ErrUnreachable (the RST a dead peer's kernel would send), and the
// victim's own outbound traffic vanishes the same way — its runtime may
// keep running in-process, but nothing it emits can prove it alive.
// Unlike
// Deregister the victim never reports ErrUnknownNode — to senders it is
// indistinguishable from a live-but-silent peer, which is exactly what a
// failure detector must cope with (§4.2). A kill lasts until ReviveNode
// (the restart chaos hook); without one it is permanent for the
// network's lifetime.
func (n *Network) KillNode(node ids.NodeID) {
	n.killMu.Lock()
	defer n.killMu.Unlock()
	next := make(map[ids.NodeID]struct{})
	if old := n.killed.Load(); old != nil {
		for k := range *old {
			next[k] = struct{}{}
		}
	}
	next[node] = struct{}{}
	n.killed.Store(&next)
}

// ReviveNode lifts a KillNode blackhole: the restart chaos hook for
// crash-recovery tests, modelling the machine coming back up under the
// same identity. The revived node's handler registration is untouched —
// a restarting runtime re-registers itself anyway.
func (n *Network) ReviveNode(node ids.NodeID) {
	n.killMu.Lock()
	defer n.killMu.Unlock()
	old := n.killed.Load()
	if old == nil {
		return
	}
	if _, ok := (*old)[node]; !ok {
		return
	}
	next := make(map[ids.NodeID]struct{}, len(*old)-1)
	for k := range *old {
		if k != node {
			next[k] = struct{}{}
		}
	}
	n.killed.Store(&next)
}

// isKilled reports whether node has been blackholed by KillNode.
func (n *Network) isKilled(node ids.NodeID) bool {
	m := n.killed.Load()
	if m == nil {
		return false
	}
	_, ok := (*m)[node]
	return ok
}

// Snapshot returns the accounted traffic so far.
func (n *Network) Snapshot() Counters {
	return n.counters.Snapshot()
}

// ResetCounters zeroes the traffic counters (used between benchmark
// phases).
func (n *Network) ResetCounters() {
	n.counters.Reset()
}

func (n *Network) account(class Class, size int) {
	n.counters.Account(class, size)
}

func (n *Network) handlerFor(node ids.NodeID) (Handler, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	s := n.shardFor(node)
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.nodes[node]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, node)
	}
	return h, nil
}

// route resolves dst's handler and the pair's delivery queue in one shard
// critical section (queues are sharded by destination, so both live in the
// same shard).
func (n *Network) route(src, dst ids.NodeID) (Handler, *pairQueue, error) {
	s := n.shardFor(dst)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n.closed.Load() {
		return nil, nil, ErrClosed
	}
	h, ok := s.nodes[dst]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %v", ErrUnknownNode, dst)
	}
	key := pairKey{src: src, dst: dst}
	q, okQ := s.queues[key]
	if !okQ {
		q = newPairQueue()
		s.queues[key] = q
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			q.run(n.cfg.Clock)
		}()
	}
	return h, q, nil
}

// linkSchedule computes when a message of the given size, sent now,
// reaches dst's handler: it claims the next free slot on src's outbound
// interface, travels the pair latency, then claims the next free slot
// on dst's inbound interface (store-and-forward). With no interface
// costs configured this degenerates to now + latency. Per-interface
// times are monotone, so FIFO order within a pair is preserved.
func (n *Network) linkSchedule(src, dst ids.NodeID, bytes int) time.Time {
	now := n.cfg.Clock.Now()
	if n.txFree == nil {
		return now.Add(n.cfg.Latency(src, dst))
	}
	occ := n.cfg.PerMessage + time.Duration(bytes)*n.cfg.PerByte
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	tx := n.txFree[src]
	if tx.Before(now) {
		tx = now
	}
	tx = tx.Add(occ)
	n.txFree[src] = tx
	arrive := tx.Add(n.cfg.Latency(src, dst))
	rx := n.rxFree[dst]
	if rx.Before(arrive) {
		rx = arrive
	}
	rx = rx.Add(occ)
	n.rxFree[dst] = rx
	return rx
}

// Endpoint is a node's attachment point to the network. It implements
// transport.Endpoint.
type Endpoint struct {
	net  *Network
	node ids.NodeID
}

// Node returns the endpoint's node identifier.
func (e *Endpoint) Node() ids.NodeID { return e.node }

// Send transmits a one-way message to dst with FIFO ordering relative to
// all other traffic from this node to dst.
func (e *Endpoint) Send(dst ids.NodeID, class Class, payload []byte) error {
	if e.net.isKilled(dst) || e.net.isKilled(e.node) {
		// A killed machine acknowledges nothing and emits nothing: the
		// send is accepted and the bytes vanish (not accounted — they
		// never hit a wire). The source-side check matters for detection
		// tests: a victim's own runtime keeps trying to send until its
		// goroutines are reaped, and none of that may prove it alive.
		return nil
	}
	if e.node == dst {
		// Intra-process: direct delivery, not accounted (paper §5).
		h, err := e.net.handlerFor(dst)
		if err != nil {
			return err
		}
		h.HandleOneWay(e.node, class, payload)
		return nil
	}
	if !e.net.cfg.Reachable(e.node, dst) {
		// Resolve first so an unknown node still reports ErrUnknownNode.
		if _, err := e.net.handlerFor(dst); err != nil {
			return err
		}
		return fmt.Errorf("%w: %v -> %v", ErrUnreachable, e.node, dst)
	}
	h, q, err := e.net.route(e.node, dst)
	if err != nil {
		return err
	}
	e.net.account(class, len(payload))
	return q.push(item{
		deliverAt: e.net.linkSchedule(e.node, dst, len(payload)),
		fn:        func() { h.HandleOneWay(e.node, class, payload) },
	})
}

// SendBatch transmits several one-way messages to dst as one delivery:
// the whole batch pays the pair latency once and is handed to the
// destination handler message by message, in order, without releasing the
// pair's FIFO slot in between. Accounting stays per inner message and per
// class, so the §5 counters are identical to the unbatched path.
func (e *Endpoint) SendBatch(dst ids.NodeID, items []transport.BatchItem) error {
	if len(items) == 0 {
		return nil
	}
	if e.net.isKilled(dst) || e.net.isKilled(e.node) {
		return nil // see Send: a killed machine neither receives nor sends
	}
	if e.node == dst {
		h, err := e.net.handlerFor(dst)
		if err != nil {
			return err
		}
		for _, it := range items {
			h.HandleOneWay(e.node, it.Class, it.Payload)
		}
		return nil
	}
	if !e.net.cfg.Reachable(e.node, dst) {
		if _, err := e.net.handlerFor(dst); err != nil {
			return err
		}
		return fmt.Errorf("%w: %v -> %v", ErrUnreachable, e.node, dst)
	}
	h, q, err := e.net.route(e.node, dst)
	if err != nil {
		return err
	}
	total := 0
	for _, it := range items {
		e.net.account(it.Class, len(it.Payload))
		total += len(it.Payload)
	}
	batch := items[:len(items):len(items)]
	// One frame on the wire: the batch pays the fixed interface cost
	// once, plus bandwidth for every byte in it.
	return q.push(item{
		deliverAt: e.net.linkSchedule(e.node, dst, total),
		fn: func() {
			for _, it := range batch {
				h.HandleOneWay(e.node, it.Class, it.Payload)
			}
		},
	})
}

// Call performs a request/response exchange with dst. The response travels
// back over the same logical connection, so it is permitted even when the
// reachability rules forbid dst → src connections.
func (e *Endpoint) Call(dst ids.NodeID, class Class, payload []byte) ([]byte, error) {
	if e.net.isKilled(dst) || e.net.isKilled(e.node) {
		// An exchange against (or from) a dead peer fails fast, like a
		// connection reset — the signal failure detectors feed on.
		return nil, fmt.Errorf("%w: %v (killed)", ErrUnreachable, dst)
	}
	if e.node == dst {
		h, err := e.net.handlerFor(dst)
		if err != nil {
			return nil, err
		}
		return h.HandleCall(e.node, class, payload), nil
	}
	if !e.net.cfg.Reachable(e.node, dst) {
		if _, err := e.net.handlerFor(dst); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v -> %v", ErrUnreachable, e.node, dst)
	}
	h, q, err := e.net.route(e.node, dst)
	if err != nil {
		return nil, err
	}
	e.net.account(class, len(payload))
	type result struct {
		resp []byte
	}
	done := make(chan result, 1)
	err = q.push(item{
		deliverAt: e.net.linkSchedule(e.node, dst, len(payload)),
		fn: func() {
			resp := h.HandleCall(e.node, class, payload)
			done <- result{resp: resp}
		},
	})
	if err != nil {
		return nil, err
	}
	r := <-done
	// The response pays the return latency on the same connection.
	if l := e.net.cfg.Latency(dst, e.node); l > 0 {
		e.net.cfg.Clock.Sleep(l)
	}
	e.net.account(class, len(r.resp))
	return r.resp, nil
}

// item is one queued delivery.
type item struct {
	deliverAt time.Time
	fn        func()
}

// pairQueue delivers items for one ordered node pair in FIFO order, each no
// earlier than its deliverAt time.
type pairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []item
	closed bool
}

func newPairQueue() *pairQueue {
	q := &pairQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *pairQueue) push(it item) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	return nil
}

func (q *pairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *pairQueue) run(clock vclock.Clock) {
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.items) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		it := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()

		if wait := it.deliverAt.Sub(clock.Now()); wait > 0 {
			clock.Sleep(wait)
		}
		it.fn()
	}
}
