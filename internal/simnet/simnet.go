// Package simnet provides the in-memory network substrate the live runtime
// communicates over. It reproduces the properties the paper's algorithm
// depends on and the instrumentation its evaluation uses:
//
//   - FIFO ordered delivery per (source, destination) pair, like the TCP
//     connections of RMI ("DGC messages and responses cannot race with
//     application messages as they are sent over the same FIFO connection",
//     §3.2);
//   - request/response exchange over the connection opened by the caller,
//     so a referenced activity never needs connectivity back to its
//     referencers (firewall/NAT asymmetry, §2.2);
//   - configurable one-way latency derived from a per-site RTT matrix
//     (§5.1) with an explicit MaxComm upper bound for the TTA formula;
//   - payload byte accounting per traffic class, the stand-in for the
//     paper's instrumented SOCKS proxy (§5): intra-process messages are
//     delivered directly and not accounted, as in the paper.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ids"
	"repro/internal/vclock"
)

// Class partitions traffic for accounting, mirroring how the paper
// separates application payload from DGC overhead.
type Class uint8

// Traffic classes.
const (
	// ClassApp is application traffic: requests and their payloads.
	ClassApp Class = iota + 1
	// ClassDGC is DGC messages and DGC responses.
	ClassDGC
	// ClassFuture is future-update traffic (results flowing back).
	ClassFuture
	numClasses = 3
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassApp:
		return "app"
	case ClassDGC:
		return "dgc"
	case ClassFuture:
		return "future"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Errors returned by the transport.
var (
	// ErrUnreachable indicates the reachability rules forbid src → dst.
	ErrUnreachable = errors.New("simnet: destination unreachable")
	// ErrUnknownNode indicates the destination was never registered.
	ErrUnknownNode = errors.New("simnet: unknown node")
	// ErrClosed indicates the network has been shut down.
	ErrClosed = errors.New("simnet: network closed")
)

// Handler receives traffic on behalf of a node.
type Handler interface {
	// HandleOneWay processes a one-way message.
	HandleOneWay(from ids.NodeID, class Class, payload []byte)
	// HandleCall processes a request/response exchange and returns the
	// response payload, which travels back over the same connection.
	HandleCall(from ids.NodeID, class Class, payload []byte) []byte
}

// Config parameterizes a Network.
type Config struct {
	// Clock provides time; defaults to the real clock.
	Clock vclock.Clock
	// Latency returns the one-way latency between two distinct nodes.
	// Defaults to zero latency. Intra-node delivery is always immediate.
	Latency func(src, dst ids.NodeID) time.Duration
	// Reachable reports whether src may open a connection to dst. Defaults
	// to full reachability. Replies are always allowed back over an
	// established exchange.
	Reachable func(src, dst ids.NodeID) bool
	// MaxComm is an upper bound on one-way communication time, used by the
	// DGC deadline formula. If zero, it is taken as the maximum of Latency
	// over registered node pairs at the time MaxComm() is called.
	MaxComm time.Duration
}

// Counters is a snapshot of accounted traffic.
type Counters struct {
	// Bytes maps each class to total payload bytes (both directions of
	// calls included).
	Bytes map[Class]uint64
	// Messages maps each class to the number of payloads transferred.
	Messages map[Class]uint64
}

// Total returns the total accounted bytes across classes.
func (c Counters) Total() uint64 {
	var t uint64
	for _, b := range c.Bytes {
		t += b
	}
	return t
}

// Network is the shared medium. Create with New, attach nodes with
// Register, stop with Close.
type Network struct {
	cfg Config

	mu     sync.Mutex
	nodes  map[ids.NodeID]Handler
	queues map[pairKey]*pairQueue
	closed bool
	wg     sync.WaitGroup

	statsMu  sync.Mutex
	bytes    [numClasses + 1]uint64
	messages [numClasses + 1]uint64
}

type pairKey struct {
	src, dst ids.NodeID
}

// New creates a network.
func New(cfg Config) *Network {
	if cfg.Clock == nil {
		cfg.Clock = vclock.Real{}
	}
	if cfg.Latency == nil {
		cfg.Latency = func(_, _ ids.NodeID) time.Duration { return 0 }
	}
	if cfg.Reachable == nil {
		cfg.Reachable = func(_, _ ids.NodeID) bool { return true }
	}
	return &Network{
		cfg:    cfg,
		nodes:  make(map[ids.NodeID]Handler),
		queues: make(map[pairKey]*pairQueue),
	}
}

// MaxComm returns the configured or derived upper bound on one-way
// communication time.
func (n *Network) MaxComm() time.Duration {
	if n.cfg.MaxComm > 0 {
		return n.cfg.MaxComm
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	var max time.Duration
	for a := range n.nodes {
		for b := range n.nodes {
			if a == b {
				continue
			}
			if l := n.cfg.Latency(a, b); l > max {
				max = l
			}
		}
	}
	return max
}

// Register attaches a handler for node and returns its endpoint. Replacing
// an existing registration is allowed (used when a node restarts in tests).
func (n *Network) Register(node ids.NodeID, h Handler) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[node] = h
	return &Endpoint{net: n, node: node}
}

// Deregister detaches a node: subsequent traffic toward it fails with
// ErrUnknownNode. Used to simulate machine crashes (§4.2: an undetected
// failure is indistinguishable from silence for the DGC).
func (n *Network) Deregister(node ids.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, node)
}

// Close stops delivery and waits for in-flight queue goroutines to drain.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for _, q := range n.queues {
		q.close()
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// Snapshot returns the accounted traffic so far.
func (n *Network) Snapshot() Counters {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	c := Counters{Bytes: make(map[Class]uint64), Messages: make(map[Class]uint64)}
	for cls := Class(1); cls <= numClasses; cls++ {
		c.Bytes[cls] = n.bytes[cls]
		c.Messages[cls] = n.messages[cls]
	}
	return c
}

// ResetCounters zeroes the traffic counters (used between benchmark
// phases).
func (n *Network) ResetCounters() {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	for i := range n.bytes {
		n.bytes[i] = 0
		n.messages[i] = 0
	}
}

func (n *Network) account(class Class, size int) {
	n.statsMu.Lock()
	n.bytes[class] += uint64(size)
	n.messages[class]++
	n.statsMu.Unlock()
}

func (n *Network) handlerFor(node ids.NodeID) (Handler, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	h, ok := n.nodes[node]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownNode, node)
	}
	return h, nil
}

func (n *Network) queueFor(src, dst ids.NodeID) (*pairQueue, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	key := pairKey{src: src, dst: dst}
	q, ok := n.queues[key]
	if !ok {
		q = newPairQueue()
		n.queues[key] = q
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			q.run(n.cfg.Clock)
		}()
	}
	return q, nil
}

// Endpoint is a node's attachment point to the network.
type Endpoint struct {
	net  *Network
	node ids.NodeID
}

// Node returns the endpoint's node identifier.
func (e *Endpoint) Node() ids.NodeID { return e.node }

// Send transmits a one-way message to dst with FIFO ordering relative to
// all other traffic from this node to dst.
func (e *Endpoint) Send(dst ids.NodeID, class Class, payload []byte) error {
	h, err := e.net.handlerFor(dst)
	if err != nil {
		return err
	}
	if e.node == dst {
		// Intra-process: direct delivery, not accounted (paper §5).
		h.HandleOneWay(e.node, class, payload)
		return nil
	}
	if !e.net.cfg.Reachable(e.node, dst) {
		return fmt.Errorf("%w: %v -> %v", ErrUnreachable, e.node, dst)
	}
	e.net.account(class, len(payload))
	q, err := e.net.queueFor(e.node, dst)
	if err != nil {
		return err
	}
	deliverAt := e.net.cfg.Clock.Now().Add(e.net.cfg.Latency(e.node, dst))
	return q.push(item{
		deliverAt: deliverAt,
		fn:        func() { h.HandleOneWay(e.node, class, payload) },
	})
}

// Call performs a request/response exchange with dst. The response travels
// back over the same logical connection, so it is permitted even when the
// reachability rules forbid dst → src connections.
func (e *Endpoint) Call(dst ids.NodeID, class Class, payload []byte) ([]byte, error) {
	h, err := e.net.handlerFor(dst)
	if err != nil {
		return nil, err
	}
	if e.node == dst {
		return h.HandleCall(e.node, class, payload), nil
	}
	if !e.net.cfg.Reachable(e.node, dst) {
		return nil, fmt.Errorf("%w: %v -> %v", ErrUnreachable, e.node, dst)
	}
	e.net.account(class, len(payload))
	q, err := e.net.queueFor(e.node, dst)
	if err != nil {
		return nil, err
	}
	type result struct {
		resp []byte
	}
	done := make(chan result, 1)
	deliverAt := e.net.cfg.Clock.Now().Add(e.net.cfg.Latency(e.node, dst))
	err = q.push(item{
		deliverAt: deliverAt,
		fn: func() {
			resp := h.HandleCall(e.node, class, payload)
			done <- result{resp: resp}
		},
	})
	if err != nil {
		return nil, err
	}
	r := <-done
	// The response pays the return latency on the same connection.
	if l := e.net.cfg.Latency(dst, e.node); l > 0 {
		e.net.cfg.Clock.Sleep(l)
	}
	e.net.account(class, len(r.resp))
	return r.resp, nil
}

// item is one queued delivery.
type item struct {
	deliverAt time.Time
	fn        func()
}

// pairQueue delivers items for one ordered node pair in FIFO order, each no
// earlier than its deliverAt time.
type pairQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []item
	closed bool
}

func newPairQueue() *pairQueue {
	q := &pairQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *pairQueue) push(it item) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	return nil
}

func (q *pairQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (q *pairQueue) run(clock vclock.Clock) {
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.items) == 0 && q.closed {
			q.mu.Unlock()
			return
		}
		it := q.items[0]
		q.items = q.items[1:]
		q.mu.Unlock()

		if wait := it.deliverAt.Sub(clock.Now()); wait > 0 {
			clock.Sleep(wait)
		}
		it.fn()
	}
}
