package vclock

import (
	"testing"
	"time"
)

func TestRealNowMonotonic(t *testing.T) {
	var c Real
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	var c Real
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("Real.After(1ms) did not fire within 1s")
	}
}

func TestManualNowAndAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if got := m.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	m.Advance(3 * time.Second)
	if got := m.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Now() after advance = %v, want %v", got, start.Add(3*time.Second))
	}
}

func TestManualAfterFiresInOrder(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	c2 := m.After(2 * time.Second)
	c1 := m.After(1 * time.Second)
	if m.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", m.Pending())
	}
	m.Advance(90 * time.Second)
	t1 := <-c1
	t2 := <-c2
	if t1 != t2 {
		// Both fire at the advanced "now"; they must at least both fire.
		t.Logf("fire times differ: %v vs %v (acceptable)", t1, t2)
	}
	if m.Pending() != 0 {
		t.Fatalf("Pending() = %d after firing, want 0", m.Pending())
	}
}

func TestManualAfterPartialAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	c1 := m.After(1 * time.Second)
	c5 := m.After(5 * time.Second)
	m.Advance(2 * time.Second)
	select {
	case <-c1:
	default:
		t.Fatal("1s timer did not fire after 2s advance")
	}
	select {
	case <-c5:
		t.Fatal("5s timer fired after only 2s advance")
	default:
	}
	m.Advance(10 * time.Second)
	select {
	case <-c5:
	default:
		t.Fatal("5s timer did not fire after 12s total advance")
	}
}

func TestManualAfterZeroFiresImmediately(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	select {
	case <-m.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestManualSleepUnblocksOnAdvance(t *testing.T) {
	m := NewManual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		m.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to register its timer.
	deadline := time.Now().Add(time.Second)
	for m.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestScaledCompressesSleep(t *testing.T) {
	s := NewScaled(1000)
	start := time.Now()
	s.Sleep(time.Second) // should take ~1ms of wall time
	if wall := time.Since(start); wall > 500*time.Millisecond {
		t.Fatalf("scaled Sleep(1s) took %v of wall time, want ≪ 500ms", wall)
	}
}

func TestScaledNowExpandsElapsed(t *testing.T) {
	s := NewScaled(1000)
	a := s.Now()
	time.Sleep(5 * time.Millisecond)
	b := s.Now()
	if elapsed := b.Sub(a); elapsed < 1*time.Second {
		t.Fatalf("scaled elapsed = %v, want >= 1s (5ms wall x1000)", elapsed)
	}
}

func TestScaledFactorClamped(t *testing.T) {
	s := NewScaled(0)
	if s.factor != 1 {
		t.Fatalf("factor = %d, want clamped to 1", s.factor)
	}
}
