// Package vclock abstracts time so that the same code can run against the
// wall clock, a scaled wall clock (live benchmarks compress the paper's
// 30-second TTB into tens of milliseconds), or a manually driven clock used
// by deterministic tests.
//
// The DGC algorithm only depends on duration *ratios* (TTA > 2·TTB +
// MaxComm), so uniform scaling preserves every race the formula guards
// against; see DESIGN.md §3.
package vclock

import (
	"sync"
	"time"
)

// Clock is the minimal time source the runtime needs.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that receives the then-current time once d
	// has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
}

// Real is the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Manual is a test clock driven explicitly through Advance. Timers fire
// synchronously inside Advance, in deadline order. The zero value is not
// usable; call NewManual.
type Manual struct {
	mu     sync.Mutex
	now    time.Time
	timers []*manualTimer
}

type manualTimer struct {
	deadline time.Time
	ch       chan time.Time
}

var _ Clock = (*Manual)(nil)

// NewManual returns a manual clock positioned at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// After implements Clock.
func (m *Manual) After(d time.Duration) <-chan time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := &manualTimer{deadline: m.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- m.now
		return t.ch
	}
	m.timers = append(m.timers, t)
	return t.ch
}

// Sleep implements Clock. Sleep on a manual clock blocks until some other
// goroutine advances the clock past the deadline.
func (m *Manual) Sleep(d time.Duration) {
	<-m.After(d)
}

// Advance moves the clock forward by d, firing expired timers in deadline
// order.
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	var fire []*manualTimer
	rest := m.timers[:0]
	for _, t := range m.timers {
		if !t.deadline.After(now) {
			fire = append(fire, t)
		} else {
			rest = append(rest, t)
		}
	}
	m.timers = rest
	m.mu.Unlock()

	for i := 1; i < len(fire); i++ {
		for j := i; j > 0 && fire[j].deadline.Before(fire[j-1].deadline); j-- {
			fire[j], fire[j-1] = fire[j-1], fire[j]
		}
	}
	for _, t := range fire {
		t.ch <- now
	}
}

// Pending returns the number of timers that have not fired yet. Useful for
// test assertions.
func (m *Manual) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.timers)
}

// Scaled is a wall clock whose durations are divided by Factor: a Sleep of
// 30s with Factor 1000 sleeps 30ms. Now reports wall time re-expanded by
// Factor from the clock's origin so that elapsed durations measured with
// Now are in "paper seconds".
type Scaled struct {
	origin time.Time
	factor int64
}

var _ Clock = (*Scaled)(nil)

// NewScaled returns a clock that runs factor times faster than wall time.
// factor must be >= 1.
func NewScaled(factor int64) *Scaled {
	if factor < 1 {
		factor = 1
	}
	return &Scaled{origin: time.Now(), factor: factor}
}

// Now implements Clock; it returns the origin plus the scaled elapsed time.
func (s *Scaled) Now() time.Time {
	return s.origin.Add(time.Since(s.origin) * time.Duration(s.factor))
}

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	real := d / time.Duration(s.factor)
	out := make(chan time.Time, 1)
	go func() {
		time.Sleep(real)
		out <- s.Now()
	}()
	return out
}

// Sleep implements Clock.
func (s *Scaled) Sleep(d time.Duration) {
	time.Sleep(d / time.Duration(s.factor))
}
