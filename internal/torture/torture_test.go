package torture

import (
	"testing"
	"time"

	"repro/internal/core"
)

// smallParams is a laptop-scale torture run: 8 machines × 4 slaves, 2
// minutes of exchanges.
func smallParams() Params {
	return Params{
		Machines:         8,
		SlavesPerMachine: 4,
		ActiveFor:        2 * time.Minute,
		MeanIterationGap: 10 * time.Second,
		ServiceTime:      50 * time.Millisecond,
		HeldRefs:         3,
		RequestBytes:     64,
		TTB:              30 * time.Second,
		TTA:              150 * time.Second,
		Seed:             1,
		SampleEvery:      10 * time.Second,
		MaxRunFor:        4 * time.Hour,
	}
}

func TestSmallTortureFullyCollected(t *testing.T) {
	res := Run(smallParams())
	if res.Total != 33 {
		t.Fatalf("total = %d, want 33", res.Total)
	}
	if !res.CollectedAll {
		t.Fatalf("not fully collected: reasons=%v", res.Reasons)
	}
	// Everything dies after the active phase, within detection + wave +
	// dying-grace time.
	if res.LastCollectedAt < 2*time.Minute {
		t.Fatalf("collection finished before the active phase ended: %v", res.LastCollectedAt)
	}
	if res.LastCollectedAt > 30*time.Minute {
		t.Fatalf("collection took too long: %v", res.LastCollectedAt)
	}
	// The master/slave graph contains cycles (master ↔ slaves, ring):
	// cyclic collection must have participated.
	cyclic := res.Reasons[core.ReasonCyclic] + res.Reasons[core.ReasonNotified]
	if cyclic == 0 {
		t.Fatalf("no cyclic collections in a cyclic graph: %v", res.Reasons)
	}
	if res.Traffic.DGCBytes == 0 || res.Traffic.AppBytes == 0 {
		t.Fatalf("traffic not accounted: %+v", res.Traffic)
	}
}

func TestTortureCurveShape(t *testing.T) {
	res := Run(smallParams())
	if len(res.Samples) == 0 {
		t.Fatal("no samples")
	}
	// Idle count must ramp up as slaves finish, then drop to zero as
	// collection completes (Fig. 10 shape).
	var peakIdle, lastIdle int
	for _, s := range res.Samples {
		if s.Idle > peakIdle {
			peakIdle = s.Idle
		}
		lastIdle = s.Idle
	}
	if peakIdle < res.Total/2 {
		t.Fatalf("idle peak = %d, want a ramp toward %d", peakIdle, res.Total)
	}
	if lastIdle != 0 {
		t.Fatalf("idle count at end = %d, want 0", lastIdle)
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Collected != res.Total {
		t.Fatalf("final collected = %d, want %d", last.Collected, res.Total)
	}
}

func TestTortureDeterministic(t *testing.T) {
	a := Run(smallParams())
	b := Run(smallParams())
	if a.Traffic != b.Traffic || a.LastCollectedAt != b.LastCollectedAt {
		t.Fatalf("non-deterministic torture: %+v vs %+v", a.Traffic, b.Traffic)
	}
}

func TestSlowerBeatSlowerCollection(t *testing.T) {
	fast := smallParams()
	slow := smallParams()
	slow.TTB = 300 * time.Second
	slow.TTA = 1500 * time.Second
	slow.SampleEvery = 60 * time.Second
	fr := Run(fast)
	sr := Run(slow)
	if !fr.CollectedAll || !sr.CollectedAll {
		t.Fatalf("runs incomplete: fast=%v slow=%v", fr.CollectedAll, sr.CollectedAll)
	}
	// Fig. 10(a) vs 10(b): the 10× slower beat stretches collection by
	// roughly an order of magnitude.
	if sr.LastCollectedAt < 2*fr.LastCollectedAt {
		t.Fatalf("slow beat not slower: fast=%v slow=%v", fr.LastCollectedAt, sr.LastCollectedAt)
	}
}

func TestPaperParams(t *testing.T) {
	p := PaperParams(30*time.Second, 150*time.Second)
	if p.Machines != 128 || p.SlavesPerMachine != 50 {
		t.Fatalf("paper scale wrong: %+v", p)
	}
	if p.Machines*p.SlavesPerMachine+1 != 6401 {
		t.Fatal("paper total must be 6401")
	}
}
