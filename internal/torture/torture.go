// Package torture implements the paper's §5.3 DGC stress test: a
// master/slave application where slaves continuously exchange references
// between themselves and the master for a fixed active phase (ten minutes
// in the paper), building a large and very dynamic reference graph, then
// all become idle — and the DGC must reclaim all 6 401 activities.
//
// The workload runs on the deterministic DES harness (internal/sim) at the
// paper's full scale: 128 machines × 50 slaves + 1 master, TTB/TTA of
// 30/150 s (Fig. 10a) or 300/1500 s (Fig. 10b).
package torture

import (
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/ids"
	"repro/internal/sim"
)

// Params configures a torture run. The zero value is not valid; use
// PaperParams or fill every field.
type Params struct {
	// Machines is the number of nodes (the paper uses 128).
	Machines int
	// SlavesPerMachine is the number of slave activities per node (50).
	SlavesPerMachine int
	// ActiveFor is the reference-exchange phase duration (600 s).
	ActiveFor time.Duration
	// MeanIterationGap is the average pause between two exchange
	// iterations of one slave.
	MeanIterationGap time.Duration
	// ServiceTime is how long serving one request keeps an activity busy.
	ServiceTime time.Duration
	// HeldRefs caps how many exchanged references one slave retains; the
	// oldest is dropped beyond that (its stub dies at the next local
	// collection).
	HeldRefs int
	// RequestBytes sizes the exchange request payload ("the only data
	// exchanged ... consists in the remote references", §5.3).
	RequestBytes int
	// TTB, TTA are the DGC parameters.
	TTB time.Duration
	TTA time.Duration
	// Seed drives the deterministic randomness.
	Seed int64
	// SampleEvery is the Fig. 10 curve sampling period.
	SampleEvery time.Duration
	// MaxRunFor bounds the total virtual time simulated.
	MaxRunFor time.Duration
}

// PaperParams returns the full-scale Fig. 10 configuration for the given
// TTB/TTA pair.
func PaperParams(ttb, tta time.Duration) Params {
	return Params{
		Machines:         128,
		SlavesPerMachine: 50,
		ActiveFor:        600 * time.Second,
		MeanIterationGap: 30 * time.Second,
		ServiceTime:      50 * time.Millisecond,
		HeldRefs:         3,
		RequestBytes:     64,
		TTB:              ttb,
		TTA:              tta,
		Seed:             1,
		SampleEvery:      10 * time.Second,
		MaxRunFor:        24 * time.Hour,
	}
}

// Result summarizes a run.
type Result struct {
	// Total is the number of activities (slaves + master).
	Total int
	// CollectedAll reports whether everything was reclaimed.
	CollectedAll bool
	// LastCollectedAt is the virtual time of the final termination.
	LastCollectedAt time.Duration
	// Traffic is the accounted inter-node traffic.
	Traffic sim.Traffic
	// Samples is the idle/collected curve (Fig. 10).
	Samples []sim.Sample
	// Reasons counts terminations per reason.
	Reasons map[core.Reason]int
}

// slave is the scripted behaviour state of one activity.
type slave struct {
	act *sim.Activity
	// held maps a referenced peer to the number of live stubs; the edge is
	// dropped when the count reaches zero (the shared-tag rule, §2.2).
	held map[ids.ActivityID]int
	// order is the FIFO of held references for eviction.
	order []ids.ActivityID
	cap   int
}

func newSlave(act *sim.Activity, capacity int) *slave {
	return &slave{act: act, held: make(map[ids.ActivityID]int), cap: capacity}
}

// hold acquires a reference (deserialization: Link) and evicts beyond
// capacity.
func (s *slave) hold(target ids.ActivityID) {
	if s.act.Terminated() {
		return
	}
	s.act.Link(target)
	s.held[target]++
	s.order = append(s.order, target)
	for len(s.order) > s.cap {
		old := s.order[0]
		s.order = s.order[1:]
		s.held[old]--
		if s.held[old] == 0 {
			delete(s.held, old)
			s.act.Unlink(old)
		}
	}
}

// pick returns a random currently-held reference.
func (s *slave) pick(rnd func(int) int) (ids.ActivityID, bool) {
	if len(s.order) == 0 {
		return ids.Nil, false
	}
	return s.order[rnd(len(s.order))], true
}

// Run executes the torture workload and returns its result.
func Run(p Params) Result {
	topo := grid.Grid5000()
	w := sim.NewWorld(sim.Config{
		TTB:         p.TTB,
		TTA:         p.TTA,
		Seed:        p.Seed,
		Latency:     topo.Latency,
		SampleEvery: p.SampleEvery,
	})
	eng := w.Engine()
	rnd := eng.Rand()

	// The master lives on node 1; slaves are spread over all machines.
	master := w.NewActivity(1)
	master.SetServiceTime(p.ServiceTime)
	masterState := newSlave(master, p.HeldRefs*64) // the master retains many more refs

	total := p.Machines * p.SlavesPerMachine
	slaves := make([]*slave, total)
	for i := 0; i < total; i++ {
		node := ids.NodeID(i%p.Machines + 1)
		act := w.NewActivity(node)
		act.SetServiceTime(p.ServiceTime)
		slaves[i] = newSlave(act, p.HeldRefs)
	}

	// Initial graph: the master references every slave (it created them);
	// every slave references the master and its ring successor, so no
	// slave can be wrongly orphaned mid-run.
	for i, s := range slaves {
		masterState.hold(s.act.ID())
		s.hold(master.ID())
		s.hold(slaves[(i+1)%total].act.ID())
	}

	// Exchange iterations: each slave periodically sends one of its held
	// references to another held peer (or the master), which then holds
	// it. The initiating slave is made busy through a self-request, as a
	// real initiation would be.
	states := make(map[ids.ActivityID]*slave, total+1)
	states[master.ID()] = masterState
	for _, s := range slaves {
		states[s.act.ID()] = s
	}
	start := eng.Now()
	var schedule func(s *slave)
	schedule = func(s *slave) {
		gap := time.Duration(float64(p.MeanIterationGap) * (0.5 + rnd.Float64()))
		eng.After(gap, func() {
			if eng.Now().Sub(start) >= p.ActiveFor || s.act.Terminated() {
				return
			}
			// The iteration itself keeps the slave busy for one service.
			w.Request(s.act, s.act, 0, func() {
				dest, ok1 := s.pick(rnd.Intn)
				given, ok2 := s.pick(rnd.Intn)
				if ok1 && ok2 {
					destState, known := states[dest]
					if known && !destState.act.Terminated() {
						w.Request(s.act, destState.act, p.RequestBytes, func() {
							destState.hold(given)
						})
					}
				}
			})
			schedule(s)
		})
	}
	for _, s := range slaves {
		schedule(s)
	}

	w.StartSampling()
	want := total + 1
	ok, _ := w.RunUntilCollected(want, p.MaxRunFor)
	// Let the sampler record the tail of the curve.
	w.RunFor(2 * p.TTA)

	res := Result{
		Total:        want,
		CollectedAll: ok,
		Traffic:      w.Traffic(),
		Samples:      w.Samples(),
		Reasons:      w.CollectedBy(),
	}
	if ok {
		// The last sample where Collected increased bounds the final
		// termination time.
		for _, s := range w.Samples() {
			if s.Collected > 0 {
				res.LastCollectedAt = s.T
			}
		}
		for i := len(res.Samples) - 1; i > 0; i-- {
			if res.Samples[i].Collected > res.Samples[i-1].Collected {
				res.LastCollectedAt = res.Samples[i].T
				break
			}
		}
	}
	return res
}
