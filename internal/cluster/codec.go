package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ids"
)

// Membership envelope kinds: the first byte of every ClassCluster
// payload (WIRE.md §8). Join/lease are request/response exchanges against
// a seed; node events are gossip (relayed once per news item per
// process); ping/pong is the suspect-path liveness probe.
const (
	// MsgJoin asks a seed for a node-ID lease and the current member map.
	MsgJoin byte = iota + 1
	// MsgJoinOK answers a join with the granted lease and the members.
	MsgJoinOK
	// MsgLease asks the seed for a further node-ID block.
	MsgLease
	// MsgLeaseOK answers a lease request.
	MsgLeaseOK
	// MsgNodeUp announces a node (and the address of its process).
	MsgNodeUp
	// MsgNodeDead announces a detected failure.
	MsgNodeDead
	// MsgNodeLeft announces a graceful departure.
	MsgNodeLeft
	// MsgPing probes a suspect node.
	MsgPing
	// MsgPong answers a probe.
	MsgPong
	// MsgAck acknowledges a gossip exchange with nothing to add.
	MsgAck
	// MsgErr reports a refused request; the error text follows.
	MsgErr
	// MsgRebinds announces activity relocations (old → new IDs) so every
	// process can retarget stale references without waiting for a
	// forwarder that is about to disappear (graceful leave).
	MsgRebinds
)

// ErrBadEnvelope reports a malformed or unexpected cluster payload.
var ErrBadEnvelope = errors.New("cluster: bad envelope")

// Member is one (node, process address) entry of the cluster map. The
// address is empty for members of a single-process (simnet) cluster.
type Member struct {
	Node ids.NodeID
	Addr string
}

// Join is the payload of MsgJoin.
type Join struct {
	// Addr is the joining process's listen address (empty on substrates
	// without process addressing).
	Addr string
	// Want is the requested node-ID block size.
	Want int
}

// JoinOK is the payload of MsgJoinOK.
type JoinOK struct {
	First   ids.NodeID
	Count   int
	Members []Member
}

// Lease is the payload of MsgLease.
type Lease struct {
	Want int
}

// LeaseOK is the payload of MsgLeaseOK.
type LeaseOK struct {
	First ids.NodeID
	Count int
}

// NodeEvent is the payload of MsgNodeUp / MsgNodeDead / MsgNodeLeft. Addr
// is only meaningful for node-up.
type NodeEvent struct {
	Node ids.NodeID
	Addr string
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) < n {
		return "", nil, ErrBadEnvelope
	}
	return string(buf[sz : sz+int(n)]), buf[sz+int(n):], nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 {
		return 0, nil, ErrBadEnvelope
	}
	return n, buf[sz:], nil
}

// EncodeJoin encodes a join request.
func EncodeJoin(j Join) []byte {
	buf := []byte{MsgJoin}
	buf = appendString(buf, j.Addr)
	return binary.AppendUvarint(buf, uint64(j.Want))
}

// DecodeJoin decodes a MsgJoin payload.
func DecodeJoin(p []byte) (Join, error) {
	if len(p) < 1 || p[0] != MsgJoin {
		return Join{}, ErrBadEnvelope
	}
	addr, rest, err := readString(p[1:])
	if err != nil {
		return Join{}, err
	}
	want, _, err := readUvarint(rest)
	if err != nil {
		return Join{}, err
	}
	return Join{Addr: addr, Want: int(want)}, nil
}

// EncodeJoinOK encodes a join response.
func EncodeJoinOK(ok JoinOK) []byte {
	buf := []byte{MsgJoinOK}
	buf = binary.AppendUvarint(buf, uint64(ok.First))
	buf = binary.AppendUvarint(buf, uint64(ok.Count))
	buf = binary.AppendUvarint(buf, uint64(len(ok.Members)))
	for _, m := range ok.Members {
		buf = binary.AppendUvarint(buf, uint64(m.Node))
		buf = appendString(buf, m.Addr)
	}
	return buf
}

// DecodeJoinOK decodes a MsgJoinOK payload.
func DecodeJoinOK(p []byte) (JoinOK, error) {
	if len(p) < 1 || p[0] != MsgJoinOK {
		return JoinOK{}, ErrBadEnvelope
	}
	rest := p[1:]
	first, rest, err := readUvarint(rest)
	if err != nil {
		return JoinOK{}, err
	}
	count, rest, err := readUvarint(rest)
	if err != nil {
		return JoinOK{}, err
	}
	n, rest, err := readUvarint(rest)
	if err != nil || n > uint64(len(rest)) { // each member needs ≥ 2 bytes
		return JoinOK{}, ErrBadEnvelope
	}
	out := JoinOK{First: ids.NodeID(first), Count: int(count), Members: make([]Member, 0, n)}
	for i := uint64(0); i < n; i++ {
		var node uint64
		node, rest, err = readUvarint(rest)
		if err != nil {
			return JoinOK{}, err
		}
		var addr string
		addr, rest, err = readString(rest)
		if err != nil {
			return JoinOK{}, err
		}
		out.Members = append(out.Members, Member{Node: ids.NodeID(node), Addr: addr})
	}
	return out, nil
}

// EncodeLease encodes a lease request.
func EncodeLease(l Lease) []byte {
	return binary.AppendUvarint([]byte{MsgLease}, uint64(l.Want))
}

// DecodeLease decodes a MsgLease payload.
func DecodeLease(p []byte) (Lease, error) {
	if len(p) < 1 || p[0] != MsgLease {
		return Lease{}, ErrBadEnvelope
	}
	want, _, err := readUvarint(p[1:])
	if err != nil {
		return Lease{}, err
	}
	return Lease{Want: int(want)}, nil
}

// EncodeLeaseOK encodes a lease response.
func EncodeLeaseOK(ok LeaseOK) []byte {
	buf := []byte{MsgLeaseOK}
	buf = binary.AppendUvarint(buf, uint64(ok.First))
	return binary.AppendUvarint(buf, uint64(ok.Count))
}

// DecodeLeaseOK decodes a MsgLeaseOK payload.
func DecodeLeaseOK(p []byte) (LeaseOK, error) {
	if len(p) < 1 || p[0] != MsgLeaseOK {
		return LeaseOK{}, ErrBadEnvelope
	}
	first, rest, err := readUvarint(p[1:])
	if err != nil {
		return LeaseOK{}, err
	}
	count, _, err := readUvarint(rest)
	if err != nil {
		return LeaseOK{}, err
	}
	return LeaseOK{First: ids.NodeID(first), Count: int(count)}, nil
}

// EncodeNodeEvent encodes a node-up/dead/left gossip payload; kind must
// be MsgNodeUp, MsgNodeDead or MsgNodeLeft.
func EncodeNodeEvent(kind byte, ev NodeEvent) []byte {
	buf := []byte{kind}
	buf = binary.AppendUvarint(buf, uint64(ev.Node))
	return appendString(buf, ev.Addr)
}

// DecodeNodeEvent decodes a node event, returning its kind.
func DecodeNodeEvent(p []byte) (byte, NodeEvent, error) {
	if len(p) < 1 || (p[0] != MsgNodeUp && p[0] != MsgNodeDead && p[0] != MsgNodeLeft) {
		return 0, NodeEvent{}, ErrBadEnvelope
	}
	node, rest, err := readUvarint(p[1:])
	if err != nil {
		return 0, NodeEvent{}, err
	}
	addr, _, err := readString(rest)
	if err != nil {
		return 0, NodeEvent{}, err
	}
	return p[0], NodeEvent{Node: ids.NodeID(node), Addr: addr}, nil
}

// Rebind is one activity relocation: references to Old should retarget
// to New.
type Rebind struct {
	Old ids.ActivityID
	New ids.ActivityID
}

// EncodeRebinds encodes a MsgRebinds payload.
func EncodeRebinds(rebinds []Rebind) []byte {
	buf := []byte{MsgRebinds}
	buf = binary.AppendUvarint(buf, uint64(len(rebinds)))
	for _, r := range rebinds {
		buf = binary.AppendUvarint(buf, uint64(r.Old.Node))
		buf = binary.AppendUvarint(buf, uint64(r.Old.Seq))
		buf = binary.AppendUvarint(buf, uint64(r.New.Node))
		buf = binary.AppendUvarint(buf, uint64(r.New.Seq))
	}
	return buf
}

// DecodeRebinds decodes a MsgRebinds payload.
func DecodeRebinds(p []byte) ([]Rebind, error) {
	if len(p) < 1 || p[0] != MsgRebinds {
		return nil, ErrBadEnvelope
	}
	n, rest, err := readUvarint(p[1:])
	if err != nil || n > uint64(len(rest)) { // each rebind needs ≥ 4 bytes
		return nil, ErrBadEnvelope
	}
	out := make([]Rebind, 0, n)
	for i := uint64(0); i < n; i++ {
		var vals [4]uint64
		for j := range vals {
			vals[j], rest, err = readUvarint(rest)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, Rebind{
			Old: ids.ActivityID{Node: ids.NodeID(vals[0]), Seq: uint32(vals[1])},
			New: ids.ActivityID{Node: ids.NodeID(vals[2]), Seq: uint32(vals[3])},
		})
	}
	return out, nil
}

// EncodePing returns the probe payload.
func EncodePing() []byte { return []byte{MsgPing} }

// EncodePong returns the probe answer.
func EncodePong() []byte { return []byte{MsgPong} }

// EncodeAck returns the gossip acknowledgement.
func EncodeAck() []byte { return []byte{MsgAck} }

// EncodeErr encodes a refusal with its reason.
func EncodeErr(msg string) []byte {
	return appendString([]byte{MsgErr}, msg)
}

// DecodeResponse interprets the response payload of a cluster exchange:
// nil error for MsgJoinOK/MsgLeaseOK/MsgPong/MsgAck (the caller decodes
// the body it expects), the carried error for MsgErr, ErrBadEnvelope for
// anything else.
func DecodeResponse(p []byte) error {
	if len(p) < 1 {
		return fmt.Errorf("%w: empty response", ErrBadEnvelope)
	}
	switch p[0] {
	case MsgJoinOK, MsgLeaseOK, MsgPong, MsgAck:
		return nil
	case MsgErr:
		msg, _, err := readString(p[1:])
		if err != nil {
			return err
		}
		return fmt.Errorf("cluster: %s", msg)
	default:
		return fmt.Errorf("%w: kind %d", ErrBadEnvelope, p[0])
	}
}
