package cluster

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/ids"
)

func TestHealthLifecycle(t *testing.T) {
	h := NewHealth(HealthConfig{SuspectAfter: 100 * time.Millisecond, DeadAfter: 200 * time.Millisecond})
	t0 := time.Unix(0, 0)
	h.Add(1, t0)
	if got := h.StateOf(1); got != StateAlive {
		t.Fatalf("after Add: state = %v, want alive", got)
	}

	// Fresh contact keeps the member alive through a tick.
	h.Observe(1, t0.Add(50*time.Millisecond))
	probe, dead := h.Tick(t0.Add(120 * time.Millisecond))
	if len(probe) != 0 || len(dead) != 0 {
		t.Fatalf("tick with fresh contact: probe=%v dead=%v", probe, dead)
	}

	// Silence past SuspectAfter suspects (and schedules a probe).
	probe, dead = h.Tick(t0.Add(200 * time.Millisecond))
	if !reflect.DeepEqual(probe, []ids.NodeID{1}) || len(dead) != 0 {
		t.Fatalf("tick past suspect threshold: probe=%v dead=%v", probe, dead)
	}
	if got := h.StateOf(1); got != StateSuspect {
		t.Fatalf("state = %v, want suspect", got)
	}

	// A successful probe resurrects the suspect.
	h.Observe(1, t0.Add(210*time.Millisecond))
	if got := h.StateOf(1); got != StateAlive {
		t.Fatalf("after probe success: state = %v, want alive", got)
	}

	// Suspect past DeadAfter dies; the transition is reported exactly once.
	h.ObserveFailure(1, t0.Add(300*time.Millisecond))
	probe, dead = h.Tick(t0.Add(501 * time.Millisecond))
	if len(probe) != 0 || !reflect.DeepEqual(dead, []ids.NodeID{1}) {
		t.Fatalf("tick past dead threshold: probe=%v dead=%v", probe, dead)
	}
	if _, dead2 := h.Tick(t0.Add(600 * time.Millisecond)); len(dead2) != 0 {
		t.Fatalf("death reported twice: %v", dead2)
	}

	// Death is final: neither Observe nor Add resurrects.
	h.Observe(1, t0.Add(700*time.Millisecond))
	h.Add(1, t0.Add(700*time.Millisecond))
	if got := h.StateOf(1); got != StateDead {
		t.Fatalf("after post-death contact: state = %v, want dead", got)
	}
}

func TestHealthSuspectDeadlineDoesNotSlip(t *testing.T) {
	h := NewHealth(HealthConfig{SuspectAfter: 100 * time.Millisecond, DeadAfter: 100 * time.Millisecond})
	t0 := time.Unix(0, 0)
	h.Add(7, t0)
	h.ObserveFailure(7, t0.Add(10*time.Millisecond))
	// Repeated failures must not reset the countdown.
	h.ObserveFailure(7, t0.Add(90*time.Millisecond))
	_, dead := h.Tick(t0.Add(115 * time.Millisecond))
	if !reflect.DeepEqual(dead, []ids.NodeID{7}) {
		t.Fatalf("dead = %v, want [7] (suspectAt must not slip forward)", dead)
	}
}

func TestHealthMarkDeadAndLeft(t *testing.T) {
	h := NewHealth(HealthConfig{SuspectAfter: time.Second, DeadAfter: time.Second})
	now := time.Unix(0, 0)
	h.Add(1, now)
	h.Add(2, now)
	if !h.MarkDead(1) {
		t.Fatal("first MarkDead must report a change")
	}
	if h.MarkDead(1) {
		t.Fatal("second MarkDead must be a no-op")
	}
	if !h.MarkLeft(2) || h.MarkLeft(2) {
		t.Fatal("MarkLeft must change exactly once")
	}
	// Tombstone for a member never heard of: late node-up cannot resurrect.
	if !h.MarkDead(9) {
		t.Fatal("MarkDead on unknown member must install a tombstone")
	}
	h.Add(9, now)
	if got := h.StateOf(9); got != StateDead {
		t.Fatalf("state(9) = %v, want dead", got)
	}
	snap := h.Snapshot()
	if snap[1] != StateDead || snap[2] != StateLeft || snap[9] != StateDead {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestLeaserDisjointBlocks(t *testing.T) {
	l := NewLeaser(1)
	f1, c1 := l.Grant(64)
	f2, c2 := l.Grant(64)
	if f1 != 1 || c1 != 64 {
		t.Fatalf("first grant = (%v, %d)", f1, c1)
	}
	if f2 != 65 || c2 != 64 {
		t.Fatalf("second grant = (%v, %d), overlaps the first", f2, c2)
	}
	if f, c := l.Grant(0); f != 129 || c != 1 {
		t.Fatalf("zero-size grant = (%v, %d), want clamped to 1", f, c)
	}
	// Node 0 is reserved for process-addressed traffic.
	if f, _ := NewLeaser(0).Grant(1); f != 1 {
		t.Fatalf("leaser from 0 granted %v, want 1", f)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	j := Join{Addr: "127.0.0.1:4242", Want: 64}
	gotJ, err := DecodeJoin(EncodeJoin(j))
	if err != nil || gotJ != j {
		t.Fatalf("join round-trip = %+v, %v", gotJ, err)
	}

	ok := JoinOK{First: 65, Count: 64, Members: []Member{
		{Node: 1, Addr: "127.0.0.1:1111"},
		{Node: 2, Addr: ""},
	}}
	gotOK, err := DecodeJoinOK(EncodeJoinOK(ok))
	if err != nil || !reflect.DeepEqual(gotOK, ok) {
		t.Fatalf("joinOK round-trip = %+v, %v", gotOK, err)
	}

	lease := Lease{Want: 32}
	gotL, err := DecodeLease(EncodeLease(lease))
	if err != nil || gotL != lease {
		t.Fatalf("lease round-trip = %+v, %v", gotL, err)
	}
	lok := LeaseOK{First: 129, Count: 32}
	gotLOK, err := DecodeLeaseOK(EncodeLeaseOK(lok))
	if err != nil || gotLOK != lok {
		t.Fatalf("leaseOK round-trip = %+v, %v", gotLOK, err)
	}

	for _, kind := range []byte{MsgNodeUp, MsgNodeDead, MsgNodeLeft} {
		ev := NodeEvent{Node: 42, Addr: "10.0.0.1:99"}
		gotKind, gotEv, err := DecodeNodeEvent(EncodeNodeEvent(kind, ev))
		if err != nil || gotKind != kind || gotEv != ev {
			t.Fatalf("event %d round-trip = (%d, %+v, %v)", kind, gotKind, gotEv, err)
		}
	}

	rebinds := []Rebind{
		{Old: ids.ActivityID{Node: 2, Seq: 7}, New: ids.ActivityID{Node: 3, Seq: 12}},
		{Old: ids.ActivityID{Node: 2, Seq: 9}, New: ids.ActivityID{Node: 4, Seq: 1}},
	}
	gotR, err := DecodeRebinds(EncodeRebinds(rebinds))
	if err != nil || !reflect.DeepEqual(gotR, rebinds) {
		t.Fatalf("rebinds round-trip = %+v, %v", gotR, err)
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	if _, err := DecodeJoin(nil); err == nil {
		t.Fatal("DecodeJoin(nil) must fail")
	}
	if _, err := DecodeJoin([]byte{MsgJoin, 0xFF}); err == nil {
		t.Fatal("truncated join must fail")
	}
	if _, err := DecodeJoinOK([]byte{MsgJoinOK, 1, 64, 200}); err == nil {
		t.Fatal("joinOK with absurd member count must fail")
	}
	if _, _, err := DecodeNodeEvent([]byte{MsgPing}); err == nil {
		t.Fatal("event decode of a ping must fail")
	}
	if _, err := DecodeRebinds([]byte{MsgRebinds, 200}); err == nil {
		t.Fatal("rebinds with absurd pair count must fail")
	}
	if _, err := DecodeRebinds([]byte{MsgRebinds, 1, 2, 3}); err == nil {
		t.Fatal("truncated rebinds must fail")
	}
}

func TestDecodeResponse(t *testing.T) {
	for _, p := range [][]byte{EncodePong(), EncodeAck(), EncodeLeaseOK(LeaseOK{First: 1, Count: 1})} {
		if err := DecodeResponse(p); err != nil {
			t.Fatalf("DecodeResponse(%v) = %v", p, err)
		}
	}
	if err := DecodeResponse(EncodeErr("not the seed")); err == nil {
		t.Fatal("MsgErr must surface an error")
	}
	if err := DecodeResponse(nil); err == nil {
		t.Fatal("empty response must fail")
	}
	if err := DecodeResponse([]byte{0xEE}); err == nil {
		t.Fatal("unknown kind must fail")
	}
}
