// Package cluster holds the pure state machines of the elastic cluster
// runtime: per-peer health tracking (failure detection), node-ID leasing
// (seed-owned allocation of disjoint identifier ranges) and the wire
// codecs of the membership envelopes. It deliberately knows nothing about
// transports or activities — internal/active wires these machines to its
// driver and envelopes, so they stay unit-testable with plain values.
//
// The failure detector piggybacks on traffic that already flows: every
// successful exchange with a peer is an Observe, every failed one an
// ObserveFailure, and the DGC's TTB-periodic heartbeats (paper §3.1)
// guarantee that referenced peers are exercised every beat. No new
// periodic message class exists on the happy path; only a peer that has
// gone silent past the suspect threshold is probed explicitly.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ids"
)

// State is the health of one peer node as seen from here.
type State uint8

// Peer health states. Death and departure are final: a node that was
// declared dead stays dead even if late traffic from it arrives (a
// replacement must join under a fresh leased identifier), matching the
// paper's §4.2 stance that an undetected failure is indistinguishable
// from silence — once the detector commits to "dead", the runtime purges
// state that cannot be resurrected consistently.
const (
	// StateUnknown is the zero value: the node is not a known member.
	StateUnknown State = iota
	// StateAlive means recent traffic (or a successful probe) proves the
	// peer up.
	StateAlive
	// StateSuspect means the peer missed its contact deadline or failed an
	// exchange; it is probed and has until the dead threshold to answer.
	StateSuspect
	// StateDead means the peer was declared failed; final.
	StateDead
	// StateLeft means the peer departed gracefully via Leave; final.
	StateLeft
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateUnknown:
		return "unknown"
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// HealthConfig parameterizes the failure detector.
type HealthConfig struct {
	// SuspectAfter is how long a member may go without observed contact
	// before it is suspected and probed.
	SuspectAfter time.Duration
	// DeadAfter is how long a member may stay suspect (without a
	// successful contact resetting it) before it is declared dead.
	DeadAfter time.Duration
}

// peerState is the detector's record for one member.
type peerState struct {
	state       State
	lastContact time.Time
	suspectAt   time.Time
}

// Health is the per-peer failure detector: a map of member node → health
// state machine. All methods are safe for concurrent use.
type Health struct {
	cfg HealthConfig

	mu    sync.Mutex
	peers map[ids.NodeID]*peerState
}

// NewHealth creates a detector.
func NewHealth(cfg HealthConfig) *Health {
	return &Health{cfg: cfg, peers: make(map[ids.NodeID]*peerState)}
}

// Add registers a member as alive with contact time now. Adding a node
// that is already tracked refreshes nothing (in particular it cannot
// resurrect a dead or left member: identifiers are never reused).
func (h *Health) Add(node ids.NodeID, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.peers[node]; ok {
		return
	}
	h.peers[node] = &peerState{state: StateAlive, lastContact: now}
}

// Observe records proof of life: an inbound message from the peer or a
// successful exchange with it. It clears a suspicion but never
// resurrects a dead or left member.
func (h *Health) Observe(node ids.NodeID, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[node]
	if !ok || p.state == StateDead || p.state == StateLeft {
		return
	}
	p.state = StateAlive
	p.lastContact = now
	p.suspectAt = time.Time{}
}

// ObserveFailure records a failed exchange with the peer: an alive member
// becomes suspect (starting its dead countdown); an already-suspect
// member keeps its original suspicion time so repeated failures do not
// push the deadline out.
func (h *Health) ObserveFailure(node ids.NodeID, now time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[node]
	if !ok || p.state != StateAlive {
		return
	}
	p.state = StateSuspect
	p.suspectAt = now
}

// Tick advances the detector: members silent past SuspectAfter become
// suspect, members suspect past DeadAfter become dead. It returns the
// members that should be probed (every current suspect) and the members
// that transitioned to dead in this tick — the caller owns the cleanup
// and gossip for those exactly once.
func (h *Health) Tick(now time.Time) (probe, dead []ids.NodeID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for node, p := range h.peers {
		switch p.state {
		case StateAlive:
			if h.cfg.SuspectAfter > 0 && now.Sub(p.lastContact) >= h.cfg.SuspectAfter {
				p.state = StateSuspect
				p.suspectAt = now
				probe = append(probe, node)
			}
		case StateSuspect:
			if h.cfg.DeadAfter > 0 && now.Sub(p.suspectAt) >= h.cfg.DeadAfter {
				p.state = StateDead
				dead = append(dead, node)
			} else {
				probe = append(probe, node)
			}
		}
	}
	return probe, dead
}

// MarkDead forces a member dead (gossip from a peer that detected the
// failure first). It reports whether the state changed, so the caller
// can run cleanup and relay the news exactly once.
func (h *Health) MarkDead(node ids.NodeID) bool {
	return h.force(node, StateDead)
}

// MarkLeft records a graceful departure. It reports whether the state
// changed.
func (h *Health) MarkLeft(node ids.NodeID) bool {
	return h.force(node, StateLeft)
}

func (h *Health) force(node ids.NodeID, s State) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[node]
	if !ok {
		// News about a member never heard of still installs the tombstone,
		// so late node-up gossip cannot resurrect it.
		h.peers[node] = &peerState{state: s}
		return true
	}
	if p.state == StateDead || p.state == StateLeft {
		return false
	}
	p.state = s
	return true
}

// StateOf returns the tracked state of node (StateUnknown if untracked).
func (h *Health) StateOf(node ids.NodeID) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.peers[node]; ok {
		return p.state
	}
	return StateUnknown
}

// Snapshot returns the state of every tracked member.
func (h *Health) Snapshot() map[ids.NodeID]State {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[ids.NodeID]State, len(h.peers))
	for node, p := range h.peers {
		out[node] = p.state
	}
	return out
}

// Leaser allocates disjoint node-identifier blocks. The seed process owns
// the single leaser of a cluster; every process (the seed included) draws
// its node IDs from granted blocks, so identifiers — and the DGC's total
// order on activity IDs — never collide across processes, replacing the
// hand-split Config.FirstNode ranges.
type Leaser struct {
	mu   sync.Mutex
	next uint32
}

// NewLeaser creates a leaser whose first grant starts at first (clamped
// to 1: node 0 is reserved for process-addressed traffic).
func NewLeaser(first ids.NodeID) *Leaser {
	if first < 1 {
		first = 1
	}
	return &Leaser{next: uint32(first)}
}

// SkipTo advances the leaser so the next grant starts at least at first.
// A restarted seed calls this after recovery so fresh grants never
// collide with node identifiers embedded in recovered activity IDs.
// SkipTo never moves the leaser backwards.
func (l *Leaser) SkipTo(first ids.NodeID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if uint32(first) > l.next {
		l.next = uint32(first)
	}
}

// Grant leases a block of n consecutive node IDs and returns its first
// identifier. n is clamped to at least 1.
func (l *Leaser) Grant(n int) (ids.NodeID, int) {
	if n < 1 {
		n = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	first := l.next
	l.next += uint32(n)
	return ids.NodeID(first), n
}
