// Package lamport implements the named Lamport "activity clock" of the
// paper's §3.2: a logical clock whose value is tagged with the identifier
// of the activity that last incremented it (the clock's owner).
//
// The owner tag yields a strict total order: clocks compare first by value
// and then by owner identifier. The distributed garbage collector uses this
// order to merge clocks (an activity adopts any strictly greater clock seen
// in a DGC message) and uses ownership to decide which activity may break a
// garbage cycle (only the idle owner of the agreed-upon "final activity
// clock" may).
package lamport

import (
	"fmt"

	"repro/internal/ids"
)

// Clock is a named Lamport logical clock. The zero value is the minimal
// clock (value 0, nil owner) and is valid.
type Clock struct {
	// Value is the logical time.
	Value uint64
	// Owner identifies the activity that performed the increment producing
	// this value. It breaks ties between equal values.
	Owner ids.ActivityID
}

// Tick returns the clock obtained when owner increments c:
// ID:Value becomes owner:Value+1 (paper §3.2, "Activity Clock").
func (c Clock) Tick(owner ids.ActivityID) Clock {
	return Clock{Value: c.Value + 1, Owner: owner}
}

// Less reports whether c is strictly smaller than o: by value first, then
// by owner identifier.
func (c Clock) Less(o Clock) bool {
	if c.Value != o.Value {
		return c.Value < o.Value
	}
	return c.Owner.Less(o.Owner)
}

// Equal reports whether the two clocks are identical (same value and same
// owner). Two clocks with equal values but different owners are NOT equal;
// the consensus requires exact agreement.
func (c Clock) Equal(o Clock) bool {
	return c == o
}

// Max returns the greater of the two clocks under the total order.
func Max(a, b Clock) Clock {
	if a.Less(b) {
		return b
	}
	return a
}

// Merge returns the clock an activity should hold after observing o while
// holding c: the maximum of the two. It also reports whether the result
// differs from c (i.e. whether the observation advanced the clock), which
// is the condition under which the collector must drop its spanning-tree
// parent (Algorithm 3).
func Merge(c, o Clock) (Clock, bool) {
	if c.Less(o) {
		return o, true
	}
	return c, false
}

// String implements fmt.Stringer, matching the paper's "A:9" notation.
func (c Clock) String() string {
	return fmt.Sprintf("%s:%d", c.Owner, c.Value)
}
