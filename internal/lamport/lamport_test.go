package lamport

import (
	"testing"
	"testing/quick"

	"repro/internal/ids"
)

var (
	aid = ids.ActivityID{Node: 1, Seq: 1}
	bid = ids.ActivityID{Node: 1, Seq: 2}
	cid = ids.ActivityID{Node: 2, Seq: 1}
)

func TestZeroClockIsMinimal(t *testing.T) {
	var zero Clock
	prop := func(c Clock) bool {
		return !c.Less(zero) || c == zero
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTickIncrementsAndOwns(t *testing.T) {
	c := Clock{Value: 8, Owner: aid}
	got := c.Tick(bid)
	want := Clock{Value: 9, Owner: bid}
	if got != want {
		t.Fatalf("Tick = %v, want %v", got, want)
	}
	if !c.Less(got) {
		t.Fatal("tick must produce a strictly greater clock")
	}
}

func TestTickFromFigure5(t *testing.T) {
	// Paper Fig. 5: B holds A:8; after losing referencer A it increments to
	// B:9.
	c := Clock{Value: 8, Owner: aid}
	got := c.Tick(bid)
	if got.Value != 9 || got.Owner != bid {
		t.Fatalf("got %v, want %v:9", got, bid)
	}
}

func TestLessValueDominatesOwner(t *testing.T) {
	lo := Clock{Value: 3, Owner: cid}
	hi := Clock{Value: 4, Owner: aid}
	if !lo.Less(hi) {
		t.Fatalf("want %v < %v (value dominates)", lo, hi)
	}
}

func TestLessTieBrokenByOwner(t *testing.T) {
	x := Clock{Value: 5, Owner: aid}
	y := Clock{Value: 5, Owner: bid}
	if !x.Less(y) {
		t.Fatalf("want %v < %v (owner breaks tie)", x, y)
	}
	if y.Less(x) {
		t.Fatal("order must be asymmetric")
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	prop := func(a, b, c Clock) bool {
		if a.Less(a) {
			return false
		}
		if a != b && !a.Less(b) && !b.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualRequiresSameOwner(t *testing.T) {
	x := Clock{Value: 5, Owner: aid}
	y := Clock{Value: 5, Owner: bid}
	if x.Equal(y) {
		t.Fatal("clocks with different owners must not be equal")
	}
	if !x.Equal(x) {
		t.Fatal("clock must equal itself")
	}
}

func TestMaxAndMerge(t *testing.T) {
	lo := Clock{Value: 1, Owner: aid}
	hi := Clock{Value: 2, Owner: bid}
	if Max(lo, hi) != hi || Max(hi, lo) != hi {
		t.Fatal("Max must return the greater clock regardless of order")
	}
	merged, advanced := Merge(lo, hi)
	if merged != hi || !advanced {
		t.Fatalf("Merge(lo, hi) = %v, %v; want hi, true", merged, advanced)
	}
	merged, advanced = Merge(hi, lo)
	if merged != hi || advanced {
		t.Fatalf("Merge(hi, lo) = %v, %v; want hi, false", merged, advanced)
	}
	merged, advanced = Merge(hi, hi)
	if merged != hi || advanced {
		t.Fatal("Merge with itself must not report advancement")
	}
}

func TestMergeProperties(t *testing.T) {
	prop := func(a, b Clock) bool {
		m, adv := Merge(a, b)
		// m is an upper bound of both.
		if m.Less(a) || m.Less(b) {
			return false
		}
		// advancement iff strictly greater than a.
		return adv == a.Less(m)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	c := Clock{Value: 9, Owner: bid}
	if got, want := c.String(), "A1.2:9"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
